// Benchmarks regenerating the paper's evaluation, one per figure (see
// DESIGN.md §4 and EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// The full parameter sweeps with mean±σ tables live in cmd/davix-bench;
// these testing.B entries measure the same workloads at benchmark-friendly
// sizes and let `go test -bench` regenerate every figure's comparison.
package davix

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"godavix/internal/bench"
	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/netsim"
	"godavix/internal/pool"
	"godavix/internal/rangev"
	"godavix/internal/rootio"
	"godavix/internal/storage"
	"godavix/internal/wire"
	"godavix/internal/xrootd"
)

// benchSpec is the dataset used by the Figure 4 benchmarks: the paper's
// 12000 events at reduced payload size (see DESIGN.md substitutions).
var benchSpec = rootio.SynthSpec{Events: 3000, Branches: 8, MeanPayload: 48, Seed: 1}

const benchWindow = 500

// BenchmarkFig4AnalysisJob reproduces Figure 4: the ROOT-style analysis
// job over each link class, davix/HTTP vs the XRootD-like baseline.
func BenchmarkFig4AnalysisJob(b *testing.B) {
	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.PAN(), netsim.WAN()} {
		env, err := bench.NewEnv(prof, httpserv.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := env.InstallDataset(bench.DatasetPath, benchSpec); err != nil {
			b.Fatal(err)
		}

		b.Run(prof.Name+"/HTTP", func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
				if err != nil {
					b.Fatal(err)
				}
				f, err := env.OpenHTTP(ctx, client, bench.DatasetPath)
				if err != nil {
					b.Fatal(err)
				}
				res, err := bench.RunAnalysis(bench.HTTPSource(f), 1.0, benchWindow, nil)
				if err != nil {
					b.Fatal(err)
				}
				client.Close()
				b.ReportMetric(float64(res.Fills), "fills/op")
			}
		})
		b.Run(prof.Name+"/XRootD", func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				client := env.NewXrdClient()
				f, err := env.OpenXrd(ctx, client, bench.DatasetPath)
				if err != nil {
					b.Fatal(err)
				}
				res, err := bench.RunAnalysis(bench.XrdSource(ctx, f), 1.0, benchWindow, nil)
				if err != nil {
					b.Fatal(err)
				}
				client.Close()
				b.ReportMetric(float64(res.Fills), "fills/op")
			}
		})
		env.Close()
	}
}

// BenchmarkFig4FractionSweep covers the paper's "a fraction or the
// totality" wording: 10%, 50% and 100% of the events over the WAN.
func BenchmarkFig4FractionSweep(b *testing.B) {
	env, err := bench.NewEnv(netsim.WAN(), httpserv.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	if _, err := env.InstallDataset(bench.DatasetPath, benchSpec); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, fraction := range []float64{0.1, 0.5, 1.0} {
		b.Run(fmt.Sprintf("HTTP/%.0f%%", fraction*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
				if err != nil {
					b.Fatal(err)
				}
				f, err := env.OpenHTTP(ctx, client, bench.DatasetPath)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bench.RunAnalysis(bench.HTTPSource(f), fraction, benchWindow, nil); err != nil {
					b.Fatal(err)
				}
				client.Close()
			}
		})
	}
}

// BenchmarkFig1Pipelining measures the head-of-line blocking of Figure 1:
// a slow request followed by fast ones, under strict pipelining versus the
// davix pooled dispatch.
func BenchmarkFig1Pipelining(b *testing.B) {
	const nFast = 8
	slow := 10 * time.Millisecond
	setup := func(b *testing.B) *bench.Env {
		env, err := bench.NewEnv(netsim.PAN(), httpserv.Options{})
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, 1024)
		env.Store.Put("/slow", payload)
		for i := 0; i < nFast; i++ {
			env.Store.Put(fmt.Sprintf("/obj%d", i), payload)
		}
		env.HTTPServer.SetFault("/slow", httpserv.Fault{Delay: slow})
		return env
	}

	b.Run("pipelined", func(b *testing.B) {
		env := setup(b)
		defer env.Close()
		for i := 0; i < b.N; i++ {
			conn, err := env.Net.Dial(bench.HTTPAddr)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range append([]string{"/slow"}, objPaths(nFast)...) {
				if err := wire.NewRequest("GET", bench.HTTPAddr, p).Write(conn); err != nil {
					b.Fatal(err)
				}
			}
			br := bufio.NewReader(conn)
			for j := 0; j < nFast+1; j++ {
				resp, err := wire.ReadResponse(br, "GET")
				if err != nil {
					b.Fatal(err)
				}
				resp.Discard()
			}
			conn.Close()
		}
	})
	b.Run("pooled", func(b *testing.B) {
		env := setup(b)
		defer env.Close()
		client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			done := make(chan error, nFast+1)
			go func() {
				_, err := client.Get(ctx, bench.HTTPAddr, "/slow")
				done <- err
			}()
			for _, p := range objPaths(nFast) {
				go func(p string) {
					_, err := client.Get(ctx, bench.HTTPAddr, p)
					done <- err
				}(p)
			}
			for j := 0; j < nFast+1; j++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func objPaths(n int) []string {
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/obj%d", i)
	}
	return paths
}

// BenchmarkFig2SessionRecycling measures Figure 2: sequential requests on
// a recycled KeepAlive session versus a fresh connection per request.
func BenchmarkFig2SessionRecycling(b *testing.B) {
	for _, mode := range []struct {
		name      string
		keepAlive bool
	}{{"recycled", true}, {"per-request", false}} {
		b.Run(mode.name, func(b *testing.B) {
			env, err := bench.NewEnv(netsim.PAN(), httpserv.Options{DisableKeepAlive: !mode.keepAlive})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			env.Store.Put("/obj", make([]byte, 16<<10))
			client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Get(ctx, bench.HTTPAddr, "/obj"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3VectoredIO measures Figure 3: K scattered fragment reads as
// individual ranged GETs, one davix multi-range request, and one xrootd
// readv.
func BenchmarkFig3VectoredIO(b *testing.B) {
	blob := make([]byte, 4<<20)
	rand.New(rand.NewSource(1)).Read(blob)
	for _, k := range []int{16, 128} {
		env, err := bench.NewEnv(netsim.PAN(), httpserv.Options{})
		if err != nil {
			b.Fatal(err)
		}
		env.Store.Put("/blob", blob)
		ranges := make([]rangev.Range, k)
		dsts := make([][]byte, k)
		rng := rand.New(rand.NewSource(int64(k)))
		for i := range ranges {
			ranges[i] = rangev.Range{Off: rng.Int63n(int64(len(blob) - 256)), Len: 256}
			dsts[i] = make([]byte, 256)
		}
		ctx := context.Background()

		b.Run(fmt.Sprintf("individual/K=%d", k), func(b *testing.B) {
			client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range ranges {
					if _, err := client.GetRange(ctx, bench.HTTPAddr, "/blob", r.Off, r.Len); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("vectored/K=%d", k), func(b *testing.B) {
			client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.ReadVec(ctx, bench.HTTPAddr, "/blob", ranges, dsts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("xrootd-readv/K=%d", k), func(b *testing.B) {
			client := env.NewXrdClient()
			defer client.Close()
			f, err := client.Open(ctx, "/blob")
			if err != nil {
				b.Fatal(err)
			}
			src := bench.XrdSource(ctx, f)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := src.ReadVec(ranges, dsts); err != nil {
					b.Fatal(err)
				}
			}
		})
		env.Close()
	}
}

// BenchmarkMetalinkFailover measures the §2.4 failover cost: reads with a
// healthy primary versus reads that must fail over to a second replica.
func BenchmarkMetalinkFailover(b *testing.B) {
	run := func(b *testing.B, killPrimary bool) {
		n := netsim.New(netsim.PAN())
		blob := make([]byte, 64<<10)
		for _, addr := range []string{"dpm1:80", "dpm2:80"} {
			st := newStoreWith(b, "/f", blob)
			srv := httpserv.New(st, httpserv.Options{})
			l, err := n.Listen(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go srv.Serve(l)
		}
		fedSrv := httpserv.New(newStoreWith(b, "/unused", nil), httpserv.Options{
			Metalinks: staticMetalink(int64(len(blob))),
		})
		fl, err := n.Listen("fed:80")
		if err != nil {
			b.Fatal(err)
		}
		defer fl.Close()
		go fedSrv.Serve(fl)

		if killPrimary {
			n.SetDown("dpm1:80", true)
		}
		client, err := New(Options{Dialer: n, Strategy: StrategyFailover, MetalinkHost: "fed:80"})
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.GetRange(ctx, "http://dpm1:80/f", 0, 4096); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("healthy-primary", func(b *testing.B) { run(b, false) })
	b.Run("primary-dead", func(b *testing.B) { run(b, true) })
}

// BenchmarkMultiStream measures the §2.4 multi-stream download against a
// single-stream GET of the same object across 3 replicas.
func BenchmarkMultiStream(b *testing.B) {
	blob := make([]byte, 4<<20)
	rand.New(rand.NewSource(2)).Read(blob)
	n := netsim.New(netsim.PAN())
	replicas := []string{"dpm1:80", "dpm2:80", "dpm3:80"}
	for _, addr := range replicas {
		st := newStoreWith(b, "/big", blob)
		srv := httpserv.New(st, httpserv.Options{})
		l, err := n.Listen(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		go srv.Serve(l)
	}
	fedSrv := httpserv.New(newStoreWith(b, "/unused", nil), httpserv.Options{
		Metalinks: staticMetalink(int64(len(blob))),
	})
	fl, err := n.Listen("fed:80")
	if err != nil {
		b.Fatal(err)
	}
	defer fl.Close()
	go fedSrv.Serve(fl)

	client, err := New(Options{
		Dialer: n, Strategy: StrategyMultiStream,
		MetalinkHost: "fed:80", MaxStreams: 3, ChunkSize: 512 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	b.Run("single-stream", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := client.Get(ctx, "http://dpm1:80/big"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multi-stream", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := client.DownloadMultiStream(ctx, "http://dpm1:80/big"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- micro-benchmarks of the core building blocks ---

// BenchmarkRangeCoalesce measures the data-sieving pass.
func BenchmarkRangeCoalesce(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ranges := make([]rangev.Range, 1024)
	for i := range ranges {
		ranges[i] = rangev.Range{Off: rng.Int63n(1 << 30), Len: rng.Int63n(4096) + 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rangev.Coalesce(ranges, 4096)
	}
}

// BenchmarkWireResponseParse measures HTTP response header+body parsing.
func BenchmarkWireResponseParse(b *testing.B) {
	raw := "HTTP/1.1 206 Partial Content\r\nContent-Length: 4096\r\n" +
		"Content-Range: bytes 0-4095/1048576\r\nContent-Type: application/octet-stream\r\n\r\n" +
		strings.Repeat("x", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := wire.ReadResponse(bufio.NewReader(strings.NewReader(raw)), "GET")
		if err != nil {
			b.Fatal(err)
		}
		resp.Discard()
	}
}

// BenchmarkRNTWriteRead measures the event file format end to end.
func BenchmarkRNTWriteRead(b *testing.B) {
	spec := rootio.SynthSpec{Events: 500, Branches: 4, MeanPayload: 64, Seed: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		img, err := rootio.Synthesize(spec)
		if err != nil {
			b.Fatal(err)
		}
		r, err := rootio.OpenReader(rootio.BytesSource(img))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadEvent(250, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// helpers

func newStoreWith(b *testing.B, path string, data []byte) *storage.MemStore {
	b.Helper()
	st := storage.NewMemStore()
	if data != nil {
		if err := st.Put(path, data); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

func staticMetalink(size int64) httpserv.MetalinkProvider {
	return func(p string) *metalink.Metalink {
		return &metalink.Metalink{
			Name: "f", Size: size,
			URLs: []metalink.URL{
				{Loc: "http://dpm1:80" + p, Priority: 1},
				{Loc: "http://dpm2:80" + p, Priority: 2},
				{Loc: "http://dpm3:80" + p, Priority: 3},
			},
		}
	}
}

// BenchmarkPoolBorrowReturn measures the dispatch fast path: borrowing and
// returning a warm pooled connection.
func BenchmarkPoolBorrowReturn(b *testing.B) {
	n := netsim.New(netsim.Ideal())
	l, err := n.Listen("s:80")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	p := pool.New(n, pool.Options{})
	defer p.Close()
	ctx := context.Background()
	c, err := p.Get(ctx, "s:80")
	if err != nil {
		b.Fatal(err)
	}
	p.Put(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.Get(ctx, "s:80")
		if err != nil {
			b.Fatal(err)
		}
		p.Put(c)
	}
}

// BenchmarkXrootdFrameCodec measures binary frame encode+decode.
func BenchmarkXrootdFrameCodec(b *testing.B) {
	chunks := make([]xrootd.Chunk, 128)
	for i := range chunks {
		chunks[i] = xrootd.Chunk{Handle: 1, Offset: int64(i) * 4096, Length: 256}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xrootd.DecodeChunksForTest(xrootd.EncodeChunksForTest(chunks)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeCacheScan measures a full in-memory TreeCache event scan
// (decompression + scatter, no network).
func BenchmarkTreeCacheScan(b *testing.B) {
	img, err := rootio.Synthesize(rootio.SynthSpec{Events: 2000, Branches: 6, MeanPayload: 64, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := rootio.OpenReader(rootio.BytesSource(img))
		if err != nil {
			b.Fatal(err)
		}
		tc := rootio.NewTreeCache(r, 500, nil)
		for ev := uint64(0); ev < 2000; ev++ {
			if _, err := tc.Event(ev); err != nil {
				b.Fatal(err)
			}
		}
		tc.Close()
	}
}
