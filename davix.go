// Package davix is a Go implementation of the libdavix I/O library
// (Devresse & Furano, CERN 2014): an HTTP/WebDAV data-access layer
// optimized for high-performance-computing workloads.
//
// It provides:
//
//   - a dynamic connection pool with thread-safe request dispatch and
//     aggressive KeepAlive session recycling (paper §2.2);
//   - vectored random-access reads packed into HTTP/1.1 multi-range
//     requests, fed by TreeCache-style gathering (paper §2.3);
//   - Metalink-based transparent replica fail-over and multi-stream
//     parallel downloads (paper §2.4);
//   - POSIX-like remote file operations over plain HTTP/WebDAV: Open,
//     ReadAt, vectored Read, Stat, List, Put, Delete, Mkdir;
//   - an optional client-side block cache with single-flight miss
//     coalescing, sequential read-ahead prefetch, and a TTL'd stat cache
//     with negative entries, hiding round trips on high-RTT links
//     (Options.CacheSize, BlockSize, ReadAhead, StatTTL; see CacheStats);
//   - a parallel namespace engine: Walk fans PROPFINDs out across pooled
//     connections while preserving serial emission order, multistatus
//     bodies are decoded streaming off the wire, and List/Walk results
//     prime the stat cache (Options.WalkParallelism);
//   - a parallel transfer engine: streaming uploads that never materialize
//     the body (PutReader), multi-stream chunked uploads over Content-Range
//     PUTs (UploadMultiStream, Options.UploadParallelism), client-mediated
//     pull-mode third-party copy (CopyStream), and zero-materialization
//     downloads to any io.WriterAt (DownloadMultiStreamTo);
//   - a layered resilience engine every operation executes through:
//     pooled-connection stale-recycle replays, redirect following with loop
//     detection and cross-host credential hygiene, bounded retry with
//     backoff (Options.Retry), Metalink replica failover, and a per-host
//     health scoreboard that demotes flapping nodes and re-probes them
//     (Options.HealthThreshold) — all observable via Client.Metrics();
//   - self-healing transfers: hedged chunk reads race a straggling
//     replica against the next-ranked one under a live-P99-derived (or
//     fixed) latency budget (Options.HedgeDelay), and checkpointed resume
//     journals per-chunk digests to a sidecar so an interrupted transfer
//     re-verifies and re-fetches only what is missing or corrupt
//     (Options.Resume);
//   - an observability plane: httptrace-style per-event hooks
//     (Options.Trace), structured logging of every engine decision through
//     log/slog (Options.Logger), a unified counter snapshot spanning
//     engine, cache and pool (Client.Snapshot), and zero-dependency
//     exposition as Prometheus text (Client.MetricsHandler) or expvar JSON
//     (Client.PublishExpvar).
//
// Quickstart:
//
//	client, err := davix.New(davix.Options{})         // real TCP
//	f, err := client.Open(ctx, "http://host:80/data/f.rnt")
//	buf := make([]byte, 4096)
//	n, err := f.ReadAt(buf, 0)
//
// All heavy lifting lives in internal packages; this package is the
// stable public surface.
package davix

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"godavix/internal/blockcache"
	"godavix/internal/core"
	"godavix/internal/metalink"
	"godavix/internal/obs"
	"godavix/internal/pool"
	"godavix/internal/rangev"
	"godavix/internal/s3"
)

// Range designates one fragment of a remote resource for vectored reads.
type Range = rangev.Range

// Info describes a remote resource.
type Info = core.Info

// Strategy selects the replica-usage policy (paper §2.4).
type Strategy = core.Strategy

// Replica strategies.
const (
	// StrategyFailover transparently retries unavailable resources on the
	// next Metalink replica (default; zero cost while healthy).
	StrategyFailover = core.StrategyFailover
	// StrategyMultiStream downloads chunks from several replicas in
	// parallel.
	StrategyMultiStream = core.StrategyMultiStream
	// StrategyNone disables Metalink processing.
	StrategyNone = core.StrategyNone
)

// Sentinel errors re-exported for errors.Is.
var (
	// ErrNotFound reports a 404 from the server.
	ErrNotFound = core.ErrNotFound
	// ErrAllReplicasFailed reports an exhausted Metalink failover.
	ErrAllReplicasFailed = core.ErrAllReplicasFailed
	// ErrTooManyRedirects reports a redirect chain past MaxRedirects.
	ErrTooManyRedirects = core.ErrTooManyRedirects
	// ErrRedirectLoop reports a redirect cycle (A→B→A), detected on the
	// first revisited target instead of burning the MaxRedirects budget.
	ErrRedirectLoop = core.ErrRedirectLoop
)

// StatusError is the typed error for non-success HTTP statuses.
type StatusError = core.StatusError

// Dialer establishes transport connections. netsim.Network implements it
// for simulations; the zero Options uses real TCP.
type Dialer = pool.Dialer

// Options configures a Client. The zero value dials real TCP with the
// failover strategy enabled.
type Options struct {
	// Dialer overrides the transport (nil = TCP via net.Dialer).
	Dialer Dialer

	// MaxIdlePerHost bounds pooled idle connections per host (default 64).
	MaxIdlePerHost int
	// MaxPerHost caps concurrent connections per host (0 = grow with
	// concurrency, the paper's default behaviour).
	MaxPerHost int
	// IdleTTL expires pooled idle connections (default 60s).
	IdleTTL time.Duration

	// RequestTimeout bounds each request round trip (0 = none).
	RequestTimeout time.Duration

	// CoalesceGap is the vectored-read data-sieving threshold in bytes.
	CoalesceGap int64
	// MaxRangesPerRequest splits huge vectored reads (default 256).
	MaxRangesPerRequest int
	// VectorParallelism bounds how many multi-range batches of one
	// vectored read run concurrently on separate pooled connections
	// (0 = one per batch capped by MaxPerHost; 1 = serial).
	VectorParallelism int
	// WalkParallelism bounds how many PROPFINDs a Walk keeps in flight
	// concurrently (0 = 8 capped by MaxPerHost; 1 = serial recursion).
	// Entry delivery order is identical at every setting.
	WalkParallelism int
	// UploadParallelism bounds how many ChunkSize chunks of one
	// UploadMultiStream or pull-mode CopyStream are in flight concurrently
	// as Content-Range PUTs (0 = 4 capped by MaxPerHost; 1 = the serial
	// single-stream PUT, byte-identical on the wire to Put).
	UploadParallelism int

	// Strategy selects the replica policy (default StrategyFailover).
	Strategy Strategy
	// MetalinkHost, when set, is the federation endpoint consulted for
	// replica lists ("fed.example.org:80").
	MetalinkHost string
	// MaxStreams bounds multi-stream parallelism (default 4).
	MaxStreams int
	// ChunkSize is the multi-stream chunk size (default 1 MiB).
	ChunkSize int64

	// UserAgent overrides the User-Agent header.
	UserAgent string

	// MaxRedirects bounds followed 3xx redirects (default 5); DPM-style
	// head nodes redirect data operations to disk nodes.
	MaxRedirects int
	// Retry bounds the engine's retry-with-backoff layer for idempotent
	// operations. The zero value means no retries (Attempts normalized to
	// 1), today's behaviour; set Attempts > 1 to absorb transient 5xx and
	// transport failures with exponential backoff.
	Retry RetryPolicy
	// HealthThreshold is how many consecutive host-level failures demote
	// a host on the per-host health scoreboard: replica rings then prefer
	// other hosts until a half-open probe readmits it. 0 uses the default
	// of 3; negative disables the scoreboard.
	HealthThreshold int
	// HealthProbeAfter is how long a demoted host stays skipped before
	// one probe request is let through (default 2s).
	HealthProbeAfter time.Duration
	// Auth attaches Bearer or Basic credentials to every request.
	Auth *Credentials
	// VerifyChecksums enables end-to-end adler32 verification of full
	// GETs and multi-stream downloads.
	VerifyChecksums bool
	// VerifyTransfers enables inline end-to-end integrity for streaming
	// transfers: incremental digests accumulate per chunk as the bytes
	// move and combine into the whole-object value (adler32/crc32 combine
	// math), verified against the server's Digest/Want-Digest headers or
	// checksum property at zero extra reads. Failures surface as
	// ErrChecksumMismatch naming the offending byte span; a server
	// checksum in an unimplemented algorithm fails with
	// ErrChecksumUnsupported instead of being skipped. Verification must
	// observe every byte in userspace, so it routes transfers onto the
	// pooled-buffer path instead of the kernel sendfile/splice fast path.
	VerifyTransfers bool
	// HedgeDelay tunes hedged chunk reads for multi-replica downloads: a
	// chunk read that outlives this latency budget is raced against a
	// duplicate request to the next-ranked healthy replica; the first
	// complete result wins and the loser is cancelled. Zero (the default)
	// derives the budget from the engine's live chunk-read P99 once enough
	// samples exist; positive fixes the budget; negative disables hedging.
	// Snapshot reports HedgesIssued/HedgeWins/HedgeWastedBytes.
	HedgeDelay time.Duration
	// Resume enables checkpointed transfers: multi-stream downloads to (and
	// uploads from) a local *os.File journal each completed chunk's offset,
	// length and digest to a "<file>.davix-ck" sidecar. An interrupted
	// transfer restarted with Resume still on re-verifies the journaled
	// chunks against the bytes actually on disk and moves only what is
	// missing or corrupt; the sidecar is removed on completion. The journal
	// is never trusted without re-verification, so a torn journal write or
	// an unflushed page can never yield a phantom-complete chunk.
	Resume bool
	// S3 signs every request with AWS Signature V4 (cloud-storage mode).
	S3 *S3Credentials
	// TLS, when non-nil, upgrades every pooled connection to TLS with this
	// configuration. A session cache shared across the pool's host shards
	// is installed when the config does not bring its own, so reconnects
	// resume sessions instead of paying full handshakes.
	TLS *tls.Config

	// CacheSize enables the shared client-side block cache: total bytes
	// of remote data kept in memory across all files (0 = no caching,
	// today's behaviour). Reads served from cache cost no round trip;
	// concurrent misses on one block issue a single GET.
	CacheSize int64
	// BlockSize is the cache page granularity (default 64 KiB).
	BlockSize int64
	// ReadAhead asynchronously prefetches this many blocks ahead of a
	// detected sequential scan (0 disables; needs CacheSize > 0).
	ReadAhead int
	// PrefetchDepth enables learned prefetch: > 0 swaps the cache's
	// sequential read-ahead for a stride/sparse planner keeping that many
	// predicted reads in flight, accepts layout hints from readers
	// (File.PrefetchHint), and sizes the asynchronous window pipeline
	// rootio's TreeCache runs over File.ReadVecAsyncCtx. 0 keeps the
	// historical behaviour exactly.
	PrefetchDepth int
	// PrefetchBudget caps the speculative bytes in flight at once so
	// speculation never starves demand reads (0 = 16 MiB when
	// PrefetchDepth > 0, unlimited otherwise; negative = unlimited).
	PrefetchBudget int64
	// StatTTL caches Stat/Open metadata — 404s included, as negative
	// entries — for this duration (0 disables).
	StatTTL time.Duration

	// Trace, when non-nil, receives a callback for every engine event:
	// operation start/end, wire requests, connection acquisition, redirect
	// hops, retries, replica failovers, breaker trips, cache hits and
	// misses, and per-chunk progress of multi-stream transfers. Callbacks
	// run inline on hot paths (concurrently during multi-stream transfers)
	// and must be fast and thread-safe. Unset hooks cost one nil check.
	Trace *ClientTrace
	// Logger, when non-nil, records every trace event as a structured
	// log/slog record: engine decisions (retry, failover, breaker trip) at
	// Warn, completed operations at Info, per-request and per-chunk detail
	// at Debug. Composes with Trace — both observe every event.
	Logger *slog.Logger
}

// CacheStats are the client cache counters; see Client.CacheStats.
type CacheStats = blockcache.Stats

// ClientTrace is the httptrace-style hook set invoked at each engine
// event; see Options.Trace. The zero value (or nil) observes nothing.
type ClientTrace = obs.ClientTrace

// Direction distinguishes download from upload chunk events.
type Direction = obs.Direction

// Chunk-event directions.
const (
	// Down marks a download (GET) chunk event.
	Down = obs.Down
	// Up marks an upload (PUT) chunk event.
	Up = obs.Up
)

// BytePath tells a TransferPath trace hook which copy machinery moved a
// transfer span's payload.
type BytePath = obs.BytePath

// Byte paths reported by the TransferPath trace hook.
const (
	// PathKernel marks payload moved by the kernel zero-copy fast path
	// (sendfile/splice) without entering userspace.
	PathKernel = obs.PathKernel
	// PathPooled marks payload copied through pooled userspace buffers.
	PathPooled = obs.PathPooled
)

// Snapshot is the unified client stat surface: engine, cache and pool
// counters captured in one call; see Client.Snapshot.
type Snapshot = core.Snapshot

// RetryPolicy bounds the retry-with-backoff layer; see Options.Retry.
type RetryPolicy = core.RetryPolicy

// Metrics is the client-wide observability snapshot; see Client.Metrics.
type Metrics = core.Metrics

// OpStats is one operation's latency summary inside Metrics.Ops.
type OpStats = core.OpStats

// S3Credentials identify an AWS SigV4 principal.
type S3Credentials = s3.Credentials

// Credentials carries request authentication (Bearer token or HTTP Basic).
type Credentials = core.Credentials

// ErrChecksumMismatch reports a failed end-to-end integrity check.
var ErrChecksumMismatch = core.ErrChecksumMismatch

// ErrChecksumUnsupported reports a server checksum in an algorithm this
// client does not implement, surfaced when Options.VerifyTransfers demands
// verification rather than silently skipping it.
var ErrChecksumUnsupported = core.ErrChecksumUnsupported

// ChecksumError is the concrete error behind ErrChecksumMismatch: it names
// the offending byte span and both digest values. Retrieve with errors.As.
type ChecksumError = core.ChecksumError

// ErrFileClosed reports use of a File after Close.
var ErrFileClosed = core.ErrFileClosed

// CheckpointSuffix names the resume journal a checkpointed transfer keeps
// next to its local file ("<file>" + CheckpointSuffix); see Options.Resume.
const CheckpointSuffix = core.CheckpointSuffix

// tcpDialer adapts net.Dialer to the pool.Dialer interface.
type tcpDialer struct{ d net.Dialer }

func (t *tcpDialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	return t.d.DialContext(ctx, "tcp", addr)
}

// Client is the davix entry point. It is safe for concurrent use; all
// requests share one dynamic connection pool.
type Client struct {
	core *core.Client
}

// New creates a Client.
func New(opts Options) (*Client, error) {
	d := opts.Dialer
	if d == nil {
		d = &tcpDialer{}
	}
	c, err := core.NewClient(core.Options{
		Dialer: d,
		Pool: pool.Options{
			MaxIdlePerHost: opts.MaxIdlePerHost,
			MaxPerHost:     opts.MaxPerHost,
			IdleTTL:        opts.IdleTTL,
		},
		RequestTimeout:      opts.RequestTimeout,
		CoalesceGap:         opts.CoalesceGap,
		MaxRangesPerRequest: opts.MaxRangesPerRequest,
		VectorParallelism:   opts.VectorParallelism,
		WalkParallelism:     opts.WalkParallelism,
		UploadParallelism:   opts.UploadParallelism,
		Strategy:            opts.Strategy,
		MetalinkHost:        opts.MetalinkHost,
		MaxStreams:          opts.MaxStreams,
		ChunkSize:           opts.ChunkSize,
		UserAgent:           opts.UserAgent,
		MaxRedirects:        opts.MaxRedirects,
		RetryPolicy:         opts.Retry,
		HealthThreshold:     opts.HealthThreshold,
		HealthProbeAfter:    opts.HealthProbeAfter,
		Auth:                opts.Auth,
		VerifyChecksums:     opts.VerifyChecksums,
		VerifyTransfers:     opts.VerifyTransfers,
		HedgeDelay:          opts.HedgeDelay,
		Resume:              opts.Resume,
		S3:                  opts.S3,
		TLS:                 opts.TLS,
		CacheSize:           opts.CacheSize,
		BlockSize:           opts.BlockSize,
		ReadAhead:           opts.ReadAhead,
		PrefetchDepth:       opts.PrefetchDepth,
		PrefetchBudget:      opts.PrefetchBudget,
		StatTTL:             opts.StatTTL,
		Trace:               opts.Trace,
		Logger:              opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Client{core: c}, nil
}

// Close releases all pooled connections.
func (c *Client) Close() { c.core.Close() }

// PoolStats reports connection pool counters.
func (c *Client) PoolStats() (dials, reuses, discards int64) {
	st := c.core.PoolStats()
	return st.Dials, st.Reuses, st.Discards
}

// CacheStats reports block-cache and stat-cache counters (hits, misses,
// evictions, prefetches, single-flight joins). All zeros when caching is
// disabled.
func (c *Client) CacheStats() CacheStats { return c.core.CacheStats() }

// Metrics snapshots the client-wide engine counters — requests, retries,
// redirects, failovers, breaker trips, wire bytes up/down — and per-op
// latency quantiles. Safe to call concurrently with in-flight operations.
func (c *Client) Metrics() Metrics { return c.core.Metrics() }

// Snapshot captures all three stat surfaces — engine metrics, cache
// counters, pool counters — in one call, the shape the exposition
// endpoints serve. Safe to call concurrently with in-flight operations.
func (c *Client) Snapshot() Snapshot { return c.core.Snapshot() }

// MetricsHandler returns an http.Handler serving this client's Snapshot in
// the Prometheus text exposition format, every metric prefixed with
// namespace ("davix_client_requests_total ..."). Zero dependencies — mount
// it on any mux as /metrics.
func (c *Client) MetricsHandler(namespace string) http.Handler {
	return obs.MetricsHandler(namespace, func() obs.Snapshot { return c.core.Snapshot().Expo() })
}

// PublishExpvar exports this client's Snapshot under name in the
// process-wide expvar registry (served by /debug/vars as JSON).
// Re-publishing a name replaces its source, so closed-and-rebuilt clients
// can keep one stable name.
func (c *Client) PublishExpvar(name string) {
	core := c.core
	obs.PublishExpvar(name, func() obs.Snapshot { return core.Snapshot().Expo() })
}

// splitURL parses "http://host:port/path" (scheme optional).
func splitURL(url string) (host, path string, err error) {
	host, path, err = metalink.SplitURL(url)
	if err != nil {
		return "", "", err
	}
	if host == "" {
		return "", "", errors.New("davix: empty host in URL")
	}
	return host, path, nil
}

// Get fetches the whole object at url.
func (c *Client) Get(ctx context.Context, url string) ([]byte, error) {
	host, path, err := splitURL(url)
	if err != nil {
		return nil, err
	}
	return c.core.Get(ctx, host, path)
}

// GetRange fetches length bytes at offset off from url.
func (c *Client) GetRange(ctx context.Context, url string, off, length int64) ([]byte, error) {
	host, path, err := splitURL(url)
	if err != nil {
		return nil, err
	}
	return c.core.GetRange(ctx, host, path, off, length)
}

// Put stores data at url.
func (c *Client) Put(ctx context.Context, url string, data []byte) error {
	host, path, err := splitURL(url)
	if err != nil {
		return err
	}
	return c.core.Put(ctx, host, path, data)
}

// PutReader streams size bytes from r to url without materializing the
// body in memory: the upload is sent with Expect: 100-continue, so
// head-node redirects are followed before any body byte is consumed from
// the (possibly non-seekable) reader. size < 0 uploads a source of unknown
// length with chunked transfer encoding.
func (c *Client) PutReader(ctx context.Context, url string, r io.Reader, size int64) error {
	host, path, err := splitURL(url)
	if err != nil {
		return err
	}
	return c.core.PutReader(ctx, host, path, r, size)
}

// UploadMultiStream stores size bytes from src at url by PUTting
// ChunkSize chunks concurrently with Content-Range headers over pooled
// connections (see Options.UploadParallelism) — the write-side twin of the
// multi-stream download. Servers that reject ranged PUTs fall back
// transparently to a single-stream upload; UploadParallelism=1 is
// byte-identical on the wire to Put.
func (c *Client) UploadMultiStream(ctx context.Context, url string, src io.ReaderAt, size int64) error {
	host, path, err := splitURL(url)
	if err != nil {
		return err
	}
	return c.core.UploadMultiStream(ctx, host, path, src, size)
}

// DownloadMultiStreamTo downloads url into w without materializing the
// object: chunks stream through pooled buffers straight to their offsets
// (memory stays O(chunk), not O(file)), spread over the Metalink replicas
// when available. Chunks complete out of order, so w must tolerate
// concurrent disjoint WriteAt calls (os.File does). Returns the object
// size written.
func (c *Client) DownloadMultiStreamTo(ctx context.Context, url string, w io.WriterAt) (int64, error) {
	host, path, err := splitURL(url)
	if err != nil {
		return 0, err
	}
	return c.core.DownloadMultiStreamTo(ctx, host, path, w)
}

// CopyStream copies srcURL to destURL through this client — pull-mode
// third-party copy, complementing the push-mode Copy for destinations the
// source server cannot reach. Ranged GETs from the source (with Metalink
// replica failover) are pipelined into ranged PUTs at the destination
// through pooled buffers; the object is never materialized client-side.
func (c *Client) CopyStream(ctx context.Context, srcURL, destURL string) error {
	host, path, err := splitURL(srcURL)
	if err != nil {
		return err
	}
	return c.core.CopyStream(ctx, host, path, destURL)
}

// Delete removes the object at url.
func (c *Client) Delete(ctx context.Context, url string) error {
	host, path, err := splitURL(url)
	if err != nil {
		return err
	}
	return c.core.Delete(ctx, host, path)
}

// Mkdir creates a collection at url (WebDAV MKCOL).
func (c *Client) Mkdir(ctx context.Context, url string) error {
	host, path, err := splitURL(url)
	if err != nil {
		return err
	}
	return c.core.Mkdir(ctx, host, path)
}

// Stat describes the resource at url.
func (c *Client) Stat(ctx context.Context, url string) (Info, error) {
	host, path, err := splitURL(url)
	if err != nil {
		return Info{}, err
	}
	return c.core.Stat(ctx, host, path)
}

// List returns the entries of the collection at url (PROPFIND depth 1).
func (c *Client) List(ctx context.Context, url string) ([]Info, error) {
	host, path, err := splitURL(url)
	if err != nil {
		return nil, err
	}
	return c.core.List(ctx, host, path)
}

// ReadVec performs one vectored multi-range read: ranges[i] lands in
// dsts[i] (paper §2.3).
func (c *Client) ReadVec(ctx context.Context, url string, ranges []Range, dsts [][]byte) error {
	host, path, err := splitURL(url)
	if err != nil {
		return err
	}
	return c.core.ReadVec(ctx, host, path, ranges, dsts)
}

// DownloadMultiStream fetches url using the multi-stream strategy:
// parallel chunk downloads spread over the Metalink replicas (paper §2.4).
func (c *Client) DownloadMultiStream(ctx context.Context, url string) ([]byte, error) {
	host, path, err := splitURL(url)
	if err != nil {
		return nil, err
	}
	return c.core.DownloadMultiStream(ctx, host, path)
}

// SkipDir prunes a subtree when returned from a Walk callback.
var SkipDir = core.SkipDir

// Walk traverses the namespace under url depth-first, calling fn for every
// entry (davix-ls -r behaviour). fn may return SkipDir to prune. Directory
// listings are fetched concurrently (see Options.WalkParallelism), but fn
// is always called sequentially, in the exact serial-walk order.
func (c *Client) Walk(ctx context.Context, url string, fn func(Info) error) error {
	host, path, err := splitURL(url)
	if err != nil {
		return err
	}
	return c.core.Walk(ctx, host, path, fn)
}

// Copy asks the source server to push srcURL's object to destURL (WebDAV
// third-party copy): the bytes flow server-to-server.
func (c *Client) Copy(ctx context.Context, srcURL, destURL string) error {
	host, path, err := splitURL(srcURL)
	if err != nil {
		return err
	}
	return c.core.Copy(ctx, host, path, destURL)
}

// File is a remote object opened for random-access reads. It embeds the
// engine file, exposing io.Reader / io.ReaderAt / io.Seeker plus ReadVec,
// with transparent Metalink failover.
type File = core.File

// Open stats url and returns a File for random-access reads.
func (c *Client) Open(ctx context.Context, url string) (*File, error) {
	host, path, err := splitURL(url)
	if err != nil {
		return nil, err
	}
	return c.core.Open(ctx, host, path)
}
