module godavix

go 1.22
