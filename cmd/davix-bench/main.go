// Command davix-bench regenerates every figure of the paper's evaluation
// on the simulated testbed, printing one table per experiment.
//
// Usage:
//
//	davix-bench                           # every experiment, default sizes
//	davix-bench -experiment fig4          # just Figure 4
//	davix-bench -experiment fig4 -fractions 0.1,0.5,1.0
//	davix-bench -repeats 10 -events 12000
//	davix-bench -experiment meta -json BENCH_meta.json
//
// Experiments: fig1, fig2, fig3, fig4, fig4async, gap, failover,
// multistream, window, poolsize, prefetch, federation, cache, vecpar,
// meta, xfer, resil, obs, zerocopy, server, chaos, analysis, all.
//
// The analysis experiment compares the cold-cache event loop across HTTP
// prefetch configurations (none, naive read-ahead, learned sync, learned
// async pipelined) against the xrootd async baseline; -prefetch-depth sets
// how many windows the pipelined configuration keeps in flight.
//
// With -json, every table produced by the run is also written to the given
// file as a JSON array — CI uses this to track the performance trajectory
// across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"godavix/internal/bench"
	"godavix/internal/rootio"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	jsonPath := flag.String("json", "", "also write the run's tables to this file as JSON")
	repeats := flag.Int("repeats", 5, "measurement repeats per configuration")
	events := flag.Int("events", 12000, "events in the synthetic dataset")
	branches := flag.Int("branches", 12, "branches in the synthetic dataset")
	meanPayload := flag.Int("mean-payload", 64, "mean branch payload bytes")
	window := flag.Uint64("window", 3000, "TreeCache window in events")
	fractionsArg := flag.String("fractions", "1.0", "comma-separated event fractions for fig4")
	clients := flag.Int("clients", 128, "admission limit / client count for the server load scenario")
	prefetchDepth := flag.Int("prefetch-depth", 3, "window pipeline depth for the analysis experiment's learned-async configuration")
	flag.Parse()

	var fractions []float64
	for _, f := range strings.Split(*fractionsArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v > 1 {
			log.Fatalf("davix-bench: bad fraction %q", f)
		}
		fractions = append(fractions, v)
	}

	opts := bench.Options{
		Repeats: *repeats,
		Spec: rootio.SynthSpec{
			Events:      *events,
			Branches:    *branches,
			MeanPayload: *meanPayload,
			Seed:        1,
		},
		Window:        *window,
		Fractions:     fractions,
		Clients:       *clients,
		PrefetchDepth: *prefetchDepth,
	}

	type exp struct {
		name string
		run  func(bench.Options) (*bench.Table, error)
	}
	all := []exp{
		{"fig1", bench.Fig1},
		{"fig2", bench.Fig2},
		{"fig3", bench.Fig3},
		{"fig4", bench.Fig4},
		{"fig4async", bench.Fig4HTTPAsync},
		{"gap", bench.Fig3GapAblation},
		{"failover", bench.Failover},
		{"multistream", bench.MultiStream},
		{"window", bench.WindowAblation},
		{"poolsize", bench.PoolSizeAblation},
		{"prefetch", bench.PrefetchAblation},
		{"federation", bench.FederationCompare},
		{"cache", bench.CacheBench},
		{"vecpar", bench.VecPar},
		{"meta", bench.Meta},
		{"xfer", bench.Xfer},
		{"resil", bench.Resil},
		{"obs", bench.Obs},
		{"zerocopy", bench.Zerocopy},
		{"server", bench.ServerLoad},
		{"chaos", bench.Chaos},
		{"analysis", bench.Analysis},
	}

	ran := 0
	var tables []*bench.Table
	for _, e := range all {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran++
		fmt.Fprintf(os.Stderr, "running %s...\n", e.name)
		table, err := e.run(opts)
		if err != nil {
			log.Fatalf("davix-bench: %s: %v", e.name, err)
		}
		table.Render(os.Stdout)
		tables = append(tables, table)
	}
	if ran == 0 {
		log.Fatalf("davix-bench: unknown experiment %q", *experiment)
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(tables, "", " ")
		if err != nil {
			log.Fatalf("davix-bench: marshal tables: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			log.Fatalf("davix-bench: write %s: %v", *jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}
