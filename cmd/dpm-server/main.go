// Command dpm-server runs the DPM-like HTTP/WebDAV storage server on a
// real TCP port, serving a directory tree. It supports GET/PUT/DELETE,
// single- and multi-range reads, MKCOL and PROPFIND — everything the davix
// client needs.
//
// Every request is access-logged as a structured log/slog line, and a
// debug surface is mounted alongside the data namespace: /metrics
// (Prometheus text format), /debug/vars (expvar JSON) and /debug/pprof
// (Go profiling). -no-debug turns the surface off, -quiet the access log.
//
// Overload protection is opt-in via the -max-inflight family of flags:
// with an in-flight limit set, excess requests queue briefly and are then
// shed with 503 + Retry-After, per-client fairness caps apply, upload
// stall detection cuts slow-loris writers, and abandoned partial uploads
// are reaped.
//
// Usage:
//
//	dpm-server -addr :8080 -root /tmp/dpmdata
//	dpm-server -addr :8080 -root /tmp/dpmdata -no-keepalive   # Figure 2 baseline
//	dpm-server -addr :8080 -root /tmp/dpmdata -max-inflight 256 -per-client 16 -per-client-rate 200
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"

	"godavix/internal/httpserv"
	"godavix/internal/obs"
	"godavix/internal/storage"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	root := flag.String("root", "", "directory to serve (required)")
	noKeepAlive := flag.Bool("no-keepalive", false, "disable HTTP keep-alive (close every connection)")
	token := flag.String("token", "", "require this bearer token on every request")
	noDebug := flag.Bool("no-debug", false, "disable /metrics, /debug/vars and /debug/pprof")
	quiet := flag.Bool("quiet", false, "disable the per-request access log")
	maxInflight := flag.Int("max-inflight", 0, "admission limit: max requests in flight (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue depth (default: max-inflight)")
	queueWait := flag.Duration("queue-wait", 0, "max time a request may queue for a slot (default 100ms)")
	perClient := flag.Int("per-client", 0, "max concurrent requests per client (0 = unlimited)")
	perClientRate := flag.Float64("per-client-rate", 0, "sustained requests/s per client (0 = unlimited)")
	perClientBurst := flag.Int("per-client-burst", 0, "per-client rate burst (default: rate rounded up)")
	requestBudget := flag.Duration("request-budget", 0, "whole-request deadline (0 = none)")
	bodyStall := flag.Duration("body-stall", 0, "kill uploads whose body stalls this long (0 = off)")
	partialTTL := flag.Duration("partial-ttl", 0, "reap idle partial uploads after this long (default 1m)")
	flag.Parse()

	if *root == "" {
		fmt.Fprintln(os.Stderr, "dpm-server: -root is required")
		flag.Usage()
		os.Exit(2)
	}
	store, err := storage.NewDiskStore(*root)
	if err != nil {
		log.Fatalf("dpm-server: %v", err)
	}
	opts := httpserv.Options{
		DisableKeepAlive: *noKeepAlive,
		Limits: httpserv.Limits{
			MaxInFlight:          *maxInflight,
			QueueDepth:           *queueDepth,
			QueueWait:            *queueWait,
			PerClientConcurrency: *perClient,
			PerClientRate:        *perClientRate,
			PerClientBurst:       *perClientBurst,
			RequestBudget:        *requestBudget,
			BodyStallTimeout:     *bodyStall,
			PartialTTL:           *partialTTL,
		},
	}
	if *token != "" {
		want := "Bearer " + *token
		opts.Authorize = func(a string) bool { return a == want }
	}
	if !*quiet {
		trace := obs.SlogServerTrace(slog.New(slog.NewTextHandler(os.Stderr, nil)))
		opts.Trace = trace
	}
	srv := httpserv.New(store, opts)
	defer srv.Close()

	// Wrap the data namespace in the debug surface and the access log.
	// The log is outermost, so hits on /metrics and /debug/* are logged
	// like any data request.
	var h http.Handler = srv
	if !*noDebug {
		h = obs.DebugMux("dpmserver", srv.Snapshot, h)
	}
	if !*quiet {
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		h = obs.AccessLog(logger, h)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dpm-server: %v", err)
	}
	log.Printf("dpm-server: serving %s on %s (keepalive=%v debug=%v)", *root, l.Addr(), !*noKeepAlive, !*noDebug)
	if err := srv.ServeHandler(l, h); err != nil {
		log.Fatalf("dpm-server: %v", err)
	}
}
