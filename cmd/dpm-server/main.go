// Command dpm-server runs the DPM-like HTTP/WebDAV storage server on a
// real TCP port, serving a directory tree. It supports GET/PUT/DELETE,
// single- and multi-range reads, MKCOL and PROPFIND — everything the davix
// client needs.
//
// Usage:
//
//	dpm-server -addr :8080 -root /tmp/dpmdata
//	dpm-server -addr :8080 -root /tmp/dpmdata -no-keepalive   # Figure 2 baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"godavix/internal/httpserv"
	"godavix/internal/storage"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	root := flag.String("root", "", "directory to serve (required)")
	noKeepAlive := flag.Bool("no-keepalive", false, "disable HTTP keep-alive (close every connection)")
	token := flag.String("token", "", "require this bearer token on every request")
	flag.Parse()

	if *root == "" {
		fmt.Fprintln(os.Stderr, "dpm-server: -root is required")
		flag.Usage()
		os.Exit(2)
	}
	store, err := storage.NewDiskStore(*root)
	if err != nil {
		log.Fatalf("dpm-server: %v", err)
	}
	opts := httpserv.Options{DisableKeepAlive: *noKeepAlive}
	if *token != "" {
		want := "Bearer " + *token
		opts.Authorize = func(a string) bool { return a == want }
	}
	srv := httpserv.New(store, opts)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dpm-server: %v", err)
	}
	log.Printf("dpm-server: serving %s on %s (keepalive=%v)", *root, l.Addr(), !*noKeepAlive)
	if err := srv.Serve(l); err != nil {
		log.Fatalf("dpm-server: %v", err)
	}
}
