// Command davix-get is the CLI companion of the davix library (the analog
// of the davix-get/davix-put/davix-ls tools shipped with libdavix). It
// talks plain HTTP/WebDAV to any server.
//
// Usage:
//
//	davix-get http://host:8080/store/f            # download to stdout
//	davix-get -o out.bin http://host:8080/store/f # download to file
//	davix-get -put in.bin http://host:8080/store/f
//	davix-get -stat http://host:8080/store/f
//	davix-get -ls   http://host:8080/store/
//	davix-get -mkdir http://host:8080/newdir
//	davix-get -rm    http://host:8080/store/f
//	davix-get -multistream -metalink-host fed:80 http://host:8080/big
//	davix-get -o out.bin -resume http://host:8080/big  # pick up where an
//	                                                   # interrupted run stopped
//	davix-get -v http://host:8080/store/f          # live engine events on stderr
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"godavix"
)

// verboseTrace builds the -v trace: live per-chunk progress and engine
// decisions (redirects, retries, failovers) printed to stderr as they
// happen. Chunk callbacks run concurrently during multi-stream transfers,
// so the byte total is an atomic.
func verboseTrace(chunkBytes *atomic.Int64) *davix.ClientTrace {
	return &davix.ClientTrace{
		Redirect: func(op, fromHost, location string) {
			fmt.Fprintf(os.Stderr, "davix-get: %s redirected from %s to %s\n", op, fromHost, location)
		},
		Retry: func(op, host string, attempt int, err error) {
			fmt.Fprintf(os.Stderr, "davix-get: %s retry %d on %s: %v\n", op, attempt, host, err)
		},
		Failover: func(fromHost, toHost string, err error) {
			fmt.Fprintf(os.Stderr, "davix-get: failover %s -> %s: %v\n", fromHost, toHost, err)
		},
		ChunkDone: func(dir davix.Direction, path string, idx int, off, length int64, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "davix-get: chunk %d (%s) at %d failed: %v\n", idx, dir, off, err)
				return
			}
			total := chunkBytes.Add(length)
			fmt.Fprintf(os.Stderr, "davix-get: chunk %d (%s) done: %d bytes at offset %d (%d total)\n",
				idx, dir, length, off, total)
		},
		TransferPath: func(dir davix.Direction, path string, bp davix.BytePath, bytes int64) {
			fmt.Fprintf(os.Stderr, "davix-get: %d bytes (%s) moved via %s path\n", bytes, dir, bp)
		},
		HedgeIssued: func(path string, idx int, off, length int64, toHost string) {
			fmt.Fprintf(os.Stderr, "davix-get: chunk %d slow, hedging %d bytes at %d against %s\n",
				idx, length, off, toHost)
		},
		HedgeSettled: func(path string, idx int, hedgeWon bool, wasted int64) {
			winner := "original"
			if hedgeWon {
				winner = "hedge"
			}
			fmt.Fprintf(os.Stderr, "davix-get: chunk %d hedge settled: %s won, %d bytes wasted\n",
				idx, winner, wasted)
		},
		Resume: func(dir davix.Direction, path string, resumed int64, verified, failed int) {
			fmt.Fprintf(os.Stderr, "davix-get: resume (%s): %d bytes intact across %d chunks, %d chunks failed re-verification\n",
				dir, resumed, verified, failed)
		},
	}
}

// printSummary renders the client's unified snapshot after a -v run.
func printSummary(s davix.Snapshot) {
	fmt.Fprintf(os.Stderr, "davix-get: %d requests, %d retries, %d redirects, %d failovers, %d bytes up, %d bytes down\n",
		s.Engine.Requests, s.Engine.Retries, s.Engine.Redirects, s.Engine.Failovers,
		s.Engine.BytesUp, s.Engine.BytesDown)
	fmt.Fprintf(os.Stderr, "davix-get: byte path: %d kernel down, %d pooled down, %d kernel up, %d pooled up; %d transfers verified, %d mismatches\n",
		s.Engine.KernelBytesDown, s.Engine.PooledBytesDown,
		s.Engine.KernelBytesUp, s.Engine.PooledBytesUp,
		s.Engine.TransfersVerified, s.Engine.ChecksumMismatches)
	if s.Engine.HedgesIssued > 0 || s.Engine.ResumedBytes > 0 || s.Engine.ResumeVerifyFailures > 0 {
		fmt.Fprintf(os.Stderr, "davix-get: self-heal: %d hedges (%d won, %d bytes wasted), %d bytes resumed, %d resume re-verify failures\n",
			s.Engine.HedgesIssued, s.Engine.HedgeWins, s.Engine.HedgeWastedBytes,
			s.Engine.ResumedBytes, s.Engine.ResumeVerifyFailures)
	}
	fmt.Fprintf(os.Stderr, "davix-get: pool: %d dials, %d reuses, %d discards\n",
		s.Pool.Dials, s.Pool.Reuses, s.Pool.Discards)
	for _, q := range s.Expo().Quantiles {
		fmt.Fprintf(os.Stderr, "davix-get: %-14s n=%-4d p50=%v p99=%v\n", q.Op, q.Count, q.P50, q.P99)
	}
}

func main() {
	out := flag.String("o", "", "write downloaded data to this file (default stdout)")
	putFile := flag.String("put", "", "upload this local file to the URL")
	doStat := flag.Bool("stat", false, "stat the URL")
	doLs := flag.Bool("ls", false, "list the collection at the URL")
	recursive := flag.Bool("r", false, "with -ls: recurse into subcollections")
	doRm := flag.Bool("rm", false, "delete the URL")
	doMkdir := flag.Bool("mkdir", false, "create a collection at the URL")
	multiStream := flag.Bool("multistream", false, "download with the multi-stream strategy")
	metalinkHost := flag.String("metalink-host", "", "federation host consulted for Metalinks")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	token := flag.String("token", "", "bearer token for Authorization")
	user := flag.String("user", "", "username for HTTP Basic auth (with -password)")
	password := flag.String("password", "", "password for HTTP Basic auth")
	verify := flag.Bool("verify", false, "verify checksums end to end (inline digests on streaming transfers)")
	resume := flag.Bool("resume", false, "with -o or -put: checkpoint chunk completions to a sidecar and resume an interrupted transfer from it")
	hedge := flag.Duration("hedge", 0, "hedged-read latency budget for multi-replica downloads (0 auto-derives from live P99, negative disables)")
	s3Key := flag.String("s3-key", "", "AWS access key (SigV4 signing, with -s3-secret)")
	s3Secret := flag.String("s3-secret", "", "AWS secret key")
	s3Region := flag.String("s3-region", "us-east-1", "AWS region for SigV4 scope")
	copyTo := flag.String("copy-to", "", "third-party copy the URL to this destination URL")
	verbose := flag.Bool("v", false, "print live engine events and a transfer summary to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "davix-get: exactly one URL argument required")
		flag.Usage()
		os.Exit(2)
	}
	url := flag.Arg(0)

	var creds *davix.Credentials
	if *token != "" {
		creds = &davix.Credentials{Bearer: *token}
	} else if *user != "" {
		creds = &davix.Credentials{Username: *user, Password: *password}
	}
	var s3creds *davix.S3Credentials
	if *s3Key != "" {
		s3creds = &davix.S3Credentials{AccessKey: *s3Key, SecretKey: *s3Secret, Region: *s3Region}
	}
	var chunkBytes atomic.Int64
	var trace *davix.ClientTrace
	if *verbose {
		trace = verboseTrace(&chunkBytes)
	}
	client, err := davix.New(davix.Options{
		RequestTimeout:  *timeout,
		MetalinkHost:    *metalinkHost,
		Auth:            creds,
		VerifyChecksums: *verify,
		VerifyTransfers: *verify,
		HedgeDelay:      *hedge,
		Resume:          *resume,
		S3:              s3creds,
		Trace:           trace,
	})
	if err != nil {
		log.Fatalf("davix-get: %v", err)
	}
	defer client.Close()
	if *verbose {
		defer func() { printSummary(client.Snapshot()) }()
	}
	ctx := context.Background()

	switch {
	case *copyTo != "":
		if err := client.Copy(ctx, url, *copyTo); err != nil {
			log.Fatalf("davix-get: copy: %v", err)
		}
		fmt.Fprintf(os.Stderr, "copied %s -> %s (server to server)\n", url, *copyTo)

	case *putFile != "":
		// Stream straight from the open file: the body never materializes
		// in client memory, and on a plain-TCP connection the kernel
		// sendfile path moves it without a userspace copy.
		f, err := os.Open(*putFile)
		if err != nil {
			log.Fatalf("davix-get: %v", err)
		}
		st, err := f.Stat()
		if err != nil {
			log.Fatalf("davix-get: %v", err)
		}
		if *resume {
			// Checkpointed chunked upload: completions journal to a sidecar
			// next to the source, so a rerun re-sends only what is missing.
			err = client.UploadMultiStream(ctx, url, f, st.Size())
		} else {
			err = client.PutReader(ctx, url, f, st.Size())
		}
		if err != nil {
			log.Fatalf("davix-get: put: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "uploaded %d bytes to %s\n", st.Size(), url)

	case *doStat:
		inf, err := client.Stat(ctx, url)
		if err != nil {
			log.Fatalf("davix-get: stat: %v", err)
		}
		kind := "file"
		if inf.Dir {
			kind = "collection"
		}
		fmt.Printf("%s\t%s\t%d bytes\tmod %s\t%s\n", inf.Path, kind, inf.Size,
			inf.ModTime.Format(time.RFC3339), inf.Checksum)

	case *doLs:
		printEntry := func(e davix.Info) {
			marker := ""
			if e.Dir {
				marker = "/"
			}
			fmt.Printf("%10d  %s  %s%s\n", e.Size, e.ModTime.Format("2006-01-02 15:04"), e.Path, marker)
		}
		if *recursive {
			err := client.Walk(ctx, url, func(e davix.Info) error {
				printEntry(e)
				return nil
			})
			if err != nil {
				log.Fatalf("davix-get: ls -r: %v", err)
			}
			break
		}
		entries, err := client.List(ctx, url)
		if err != nil {
			log.Fatalf("davix-get: ls: %v", err)
		}
		for _, e := range entries {
			printEntry(e)
		}

	case *doRm:
		if err := client.Delete(ctx, url); err != nil {
			log.Fatalf("davix-get: rm: %v", err)
		}

	case *doMkdir:
		if err := client.Mkdir(ctx, url); err != nil {
			log.Fatalf("davix-get: mkdir: %v", err)
		}

	default:
		if *out != "" {
			// Download straight into the opened file: chunks scatter to
			// their offsets without the object ever materializing in client
			// memory, and with -verify off the kernel splice path moves the
			// payload without a userspace copy (-v shows which path ran).
			// With -resume the existing bytes must survive the reopen —
			// they are what the checkpoint journal re-verifies against.
			var f *os.File
			var err error
			if *resume {
				f, err = os.OpenFile(*out, os.O_RDWR|os.O_CREATE, 0o644)
			} else {
				f, err = os.Create(*out)
			}
			if err != nil {
				log.Fatalf("davix-get: %v", err)
			}
			n, err := client.DownloadMultiStreamTo(ctx, url, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatalf("davix-get: %v", err)
			}
			fmt.Fprintf(os.Stderr, "downloaded %d bytes to %s\n", n, *out)
			break
		}
		var data []byte
		var err error
		if *multiStream {
			data, err = client.DownloadMultiStream(ctx, url)
		} else {
			data, err = client.Get(ctx, url)
		}
		if err != nil {
			log.Fatalf("davix-get: %v", err)
		}
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatalf("davix-get: %v", err)
		}
	}
}
