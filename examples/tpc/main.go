// TPC: the WLCG data-management features around the core paper — a DPM
// head node redirecting data operations to its disk node, bearer-token
// authorization, end-to-end checksum verification, and third-party COPY
// where the bytes flow server-to-server without transiting the client.
//
// Run with: go run ./examples/tpc
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"godavix"
	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/storage"
)

const token = "Bearer wlcg-demo-token"

func main() {
	fabric := netsim.New(netsim.LAN())
	ctx := context.Background()

	authorize := func(a string) bool { return a == token }

	// Site A: head node + disk node (DPM style). The head node owns the
	// namespace; GET/PUT are redirected to the disk node.
	diskStore := storage.NewMemStore()
	disk := httpserv.New(diskStore, httpserv.Options{Authorize: authorize})
	serve(fabric, "diskA:80", disk)

	// The head node pushes third-party copies through its own client.
	headCopier, err := core.NewClient(core.Options{
		Dialer: fabric, Strategy: core.StrategyNone,
		Auth: &core.Credentials{Bearer: "wlcg-demo-token"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer headCopier.Close()
	head := httpserv.New(diskStore, httpserv.Options{
		Authorize: authorize,
		Copier:    headCopier,
		Redirect: func(method, p string) (string, bool) {
			// Namespace ops stay here; object data lives on the disk node.
			return "http://diskA:80" + p, true
		},
	})
	serve(fabric, "headA:80", head)

	// Site B: a plain storage server at another site.
	siteBStore := storage.NewMemStore()
	serve(fabric, "siteB:80", httpserv.New(siteBStore, httpserv.Options{Authorize: authorize}))

	// The user's client: token auth + checksum verification.
	client, err := davix.New(davix.Options{
		Dialer:          fabric,
		Auth:            &davix.Credentials{Bearer: "wlcg-demo-token"},
		VerifyChecksums: true,
		Strategy:        davix.StrategyNone,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 1. Upload via the head node: the PUT is redirected to the disk node.
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(9)).Read(payload)
	if err := client.Put(ctx, "http://headA:80/store/run42.rnt", payload); err != nil {
		log.Fatal(err)
	}
	if _, _, err := diskStore.Get("/store/run42.rnt"); err != nil {
		log.Fatal("object did not land on the disk node")
	}
	fmt.Println("[1] PUT via head node redirected to diskA (data on disk node)")

	// 2. Download through the head node with checksum verification.
	got, err := client.Get(ctx, "http://headA:80/store/run42.rnt")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("payload mismatch")
	}
	fmt.Println("[2] GET via head node: redirect followed, adler32 verified")

	// 3. Unauthorized access is refused.
	anon, _ := davix.New(davix.Options{Dialer: fabric})
	defer anon.Close()
	if _, err := anon.Get(ctx, "http://headA:80/store/run42.rnt"); err == nil {
		log.Fatal("anonymous access succeeded?!")
	} else {
		fmt.Printf("[3] anonymous GET rejected: %v\n", err)
	}

	// 4. Third-party copy to site B: one COPY request; the head node
	//    pushes the bytes directly.
	if err := client.Copy(ctx, "http://headA:80/store/run42.rnt", "http://siteB:80/import/run42.rnt"); err != nil {
		log.Fatal(err)
	}
	landed, _, err := siteBStore.Get("/import/run42.rnt")
	if err != nil || !bytes.Equal(landed, payload) {
		log.Fatal("third-party copy failed")
	}
	fmt.Printf("[4] third-party COPY headA→siteB: %.1f MiB moved server-to-server\n",
		float64(len(landed))/(1<<20))

	dials, reuses, _ := client.PoolStats()
	fmt.Printf("    client pool: %d dials, %d recycled requests\n", dials, reuses)
}

func serve(n *netsim.Network, addr string, srv *httpserv.Server) {
	l, err := n.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
}
