// Quickstart: bring up a DPM-like storage server on a simulated network,
// then use the public davix API for the basic object lifecycle — put, stat,
// ranged get, vectored read, list, delete — with a ClientTrace watching
// every request, redirect and retry as it happens.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"godavix"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/storage"
)

func main() {
	// A simulated LAN: 0.2 ms RTT, 1 Gb/s, TCP handshakes and slow start
	// modeled. Swap for a real net.Dialer by leaving Options.Dialer nil
	// and pointing the URLs at a real dpm-server.
	fabric := netsim.New(netsim.LAN())

	// Storage server.
	server := httpserv.New(storage.NewMemStore(), httpserv.Options{})
	l, err := fabric.Listen("dpm1:80")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go server.Serve(l)

	// davix client, with trace hooks subscribed: every wire request and any
	// redirect/retry/failover prints as it happens. Set Options.Logger to a
	// *slog.Logger instead (or as well) for structured log lines.
	trace := &davix.ClientTrace{
		Request: func(method, host, path string) {
			fmt.Printf("TRACE  %s %s%s\n", method, host, path)
		},
		Redirect: func(op, fromHost, location string) {
			fmt.Printf("TRACE  %s redirected %s -> %s\n", op, fromHost, location)
		},
		Retry: func(op, host string, attempt int, err error) {
			fmt.Printf("TRACE  %s retry #%d on %s: %v\n", op, attempt, host, err)
		},
		OpDone: func(op, host, path string, d time.Duration, err error) {
			fmt.Printf("TRACE  %s %s%s done in %v err=%v\n", op, host, path, d, err)
		},
	}
	client, err := davix.New(davix.Options{Dialer: fabric, Trace: trace})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	// PUT an object.
	payload := []byte("the quick brown fox jumps over the lazy gopher")
	if err := client.Mkdir(ctx, "http://dpm1:80/store"); err != nil {
		log.Fatal(err)
	}
	if err := client.Put(ctx, "http://dpm1:80/store/hello.txt", payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PUT    /store/hello.txt (%d bytes)\n", len(payload))

	// STAT it.
	inf, err := client.Stat(ctx, "http://dpm1:80/store/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STAT   size=%d checksum=%s\n", inf.Size, inf.Checksum)

	// Ranged GET: bytes 4..8.
	part, err := client.GetRange(ctx, "http://dpm1:80/store/hello.txt", 4, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RANGE  [4,+5) = %q\n", part)

	// Vectored read: three scattered fragments in ONE multi-range request.
	ranges := []davix.Range{{Off: 0, Len: 3}, {Off: 10, Len: 5}, {Off: 40, Len: 6}}
	dsts := [][]byte{make([]byte, 3), make([]byte, 5), make([]byte, 6)}
	if err := client.ReadVec(ctx, "http://dpm1:80/store/hello.txt", ranges, dsts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VECTOR %q %q %q (one round trip)\n", dsts[0], dsts[1], dsts[2])
	for i, r := range ranges {
		if !bytes.Equal(dsts[i], payload[r.Off:r.End()]) {
			log.Fatalf("fragment %d mismatch", i)
		}
	}

	// File API with Seek/Read.
	f, err := client.Open(ctx, "http://dpm1:80/store/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := f.ReadAt(buf, 35); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FILE   ReadAt(35) = %q, size=%d\n", buf, f.Size())

	// LIST the collection.
	entries, err := client.List(ctx, "http://dpm1:80/store")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("LIST   %s (%d bytes)\n", e.Path, e.Size)
	}

	// DELETE and verify.
	if err := client.Delete(ctx, "http://dpm1:80/store/hello.txt"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("DELETE /store/hello.txt")

	// One unified snapshot: engine counters, cache stats and pool stats in a
	// single coherent read. client.MetricsHandler("davix") serves the same
	// numbers as a Prometheus /metrics endpoint.
	snap := client.Snapshot()
	fmt.Printf("POOL   %d TCP connections served %d recycled requests\n",
		snap.Pool.Dials, snap.Pool.Dials+snap.Pool.Reuses)
	fmt.Printf("STATS  %d requests, %d bytes up, %d bytes down\n",
		snap.Engine.Requests, snap.Engine.BytesUp, snap.Engine.BytesDown)
}
