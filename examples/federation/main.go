// Federation: the paper's §2.4 resilience story end to end. Three replica
// servers hold the same dataset behind a DynaFed-style federation that
// serves Metalinks. A davix client reads through the primary; we then kill
// the primary mid-session and watch the read transparently fail over. A
// multi-stream download then pulls chunks from all replicas in parallel.
//
// Run with: go run ./examples/federation
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"godavix"
	"godavix/internal/core"
	"godavix/internal/fed"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/storage"
)

func main() {
	fabric := netsim.New(netsim.PAN())
	const path = "/store/dataset.bin"
	blob := make([]byte, 2<<20)
	rand.New(rand.NewSource(42)).Read(blob)

	// Three replicas.
	replicas := []string{"dpm1:80", "dpm2:80", "dpm3:80"}
	var endpoints []fed.Endpoint
	servers := map[string]*httpserv.Server{}
	for i, addr := range replicas {
		st := storage.NewMemStore()
		st.Put(path, blob)
		srv := httpserv.New(st, httpserv.Options{})
		l, err := fabric.Listen(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		go srv.Serve(l)
		servers[addr] = srv
		endpoints = append(endpoints, fed.Endpoint{Host: addr, Priority: i + 1})
		fmt.Printf("replica %d: http://%s%s\n", i+1, addr, path)
	}

	// The federation front-end health-checks replicas and serves Metalinks.
	probe, err := core.NewClient(core.Options{Dialer: fabric, Strategy: core.StrategyNone})
	if err != nil {
		log.Fatal(err)
	}
	defer probe.Close()
	federation := fed.New(probe, endpoints, fed.Options{HealthTTL: 50 * time.Millisecond})
	fedSrv := httpserv.New(storage.NewMemStore(), httpserv.Options{Metalinks: federation.MetalinkFor})
	fl, err := fabric.Listen("fed:80")
	if err != nil {
		log.Fatal(err)
	}
	defer fl.Close()
	go fedSrv.Serve(fl)
	fmt.Println("federation: http://fed:80 (DynaFed-style metalink source)")

	// The analysis client, failover strategy, metalinks from the federation.
	client, err := davix.New(davix.Options{
		Dialer:       fabric,
		Strategy:     davix.StrategyFailover,
		MetalinkHost: "fed:80",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	// 1. Healthy read through the primary.
	f, err := client.Open(ctx, "http://dpm1:80"+path)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	start := time.Now()
	if _, err := f.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[1] healthy read via dpm1: 64 KiB in %v (no metalink traffic)\n",
		time.Since(start).Round(time.Millisecond))

	// 2. Kill the primary; the same File keeps working.
	fabric.SetDown("dpm1:80", true)
	fmt.Println("[2] dpm1 goes DOWN")
	time.Sleep(60 * time.Millisecond) // health cache refresh
	start = time.Now()
	if _, err := f.ReadAt(buf, 64<<10); err != nil {
		log.Fatalf("failover read failed: %v", err)
	}
	if !bytes.Equal(buf, blob[64<<10:128<<10]) {
		log.Fatal("failover returned wrong bytes")
	}
	fmt.Printf("    read transparently served by a replica in %v\n",
		time.Since(start).Round(time.Millisecond))

	// 3. Kill the second replica too: still fine.
	fabric.SetDown("dpm2:80", true)
	fmt.Println("[3] dpm2 goes DOWN too")
	time.Sleep(60 * time.Millisecond)
	if _, err := f.ReadAt(buf, 128<<10); err != nil {
		log.Fatalf("second failover failed: %v", err)
	}
	fmt.Println("    read still succeeds (last replica standing)")

	// 4. Revive everything and do a multi-stream download.
	fabric.SetDown("dpm1:80", false)
	fabric.SetDown("dpm2:80", false)
	time.Sleep(60 * time.Millisecond)
	fmt.Println("[4] all replicas back; multi-stream download:")
	start = time.Now()
	data, err := client.DownloadMultiStream(ctx, "http://dpm1:80"+path)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(data, blob) {
		log.Fatal("multi-stream content mismatch")
	}
	elapsed := time.Since(start)
	fmt.Printf("    %.1f MiB in %v (%.1f MiB/s), chunks served by:",
		float64(len(data))/(1<<20), elapsed.Round(time.Millisecond),
		float64(len(data))/(1<<20)/elapsed.Seconds())
	for _, addr := range replicas {
		fmt.Printf(" %s=%d", addr, servers[addr].RequestsByMethod("GET"))
	}
	fmt.Println()
	fmt.Println("\nread succeeded as long as one replica was reachable — §2.4's guarantee")
}
