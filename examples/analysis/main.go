// Analysis: the paper's §3 experiment in miniature. A synthetic HEP event
// file (RNT format, compressed baskets) is served over a simulated WAN by
// both a DPM-like HTTP server and an XRootD-like server; the same ROOT-
// style analysis (full event scan through a TreeCache) runs over each
// transport and the execution times are compared — Figure 4, live.
//
// This example keeps the HTTP path synchronous (one blocking multi-range
// request per window) to reproduce the paper's published gap. The HTTP
// path is no longer limited to that: with davix.Options.PrefetchDepth (and
// bench.HTTPSourcePipelined) the TreeCache pipelines upcoming windows as
// cancellable background vectored reads — `davix-bench -experiment
// analysis` measures that configuration against the xrootd baseline.
//
// Run with: go run ./examples/analysis
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"godavix/internal/bench"
	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/rootio"
)

func main() {
	spec := rootio.SynthSpec{Events: 6000, Branches: 8, MeanPayload: 64, Seed: 7}

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.WAN()} {
		env, err := bench.NewEnv(prof, httpserv.Options{})
		if err != nil {
			log.Fatal(err)
		}
		size, err := env.InstallDataset(bench.DatasetPath, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s link (RTT %v), dataset %.1f MiB, %d events ---\n",
			prof.Name, prof.RTT, float64(size)/(1<<20), spec.Events)

		// davix / HTTP: TreeCache gathers each window into one multi-range
		// request (synchronous vectored reads).
		httpClient, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
		if err != nil {
			log.Fatal(err)
		}
		ctx := context.Background()
		hf, err := env.OpenHTTP(ctx, httpClient, bench.DatasetPath)
		if err != nil {
			log.Fatal(err)
		}
		hres, err := bench.RunAnalysis(bench.HTTPSource(hf), 1.0, 1500, nil)
		if err != nil {
			log.Fatal(err)
		}
		httpClient.Close()

		// XRootD baseline: same TreeCache, but the async readv lets the
		// next window transfer while this one is processed.
		xc := env.NewXrdClient()
		xf, err := env.OpenXrd(ctx, xc, bench.DatasetPath)
		if err != nil {
			log.Fatal(err)
		}
		xres, err := bench.RunAnalysis(bench.XrdSource(ctx, xf), 1.0, 1500, nil)
		if err != nil {
			log.Fatal(err)
		}
		xc.Close()

		if hres.Sum != xres.Sum {
			log.Fatalf("physics results differ: %d != %d", hres.Sum, xres.Sum)
		}
		fmt.Printf("  davix/HTTP : %8s  (%d vectored fills, %d GETs)\n",
			round(hres.Duration), hres.Fills, env.HTTPServer.RequestsByMethod("GET"))
		fmt.Printf("  XRootD-like: %8s  (%d vectored fills, %d readv)\n",
			round(xres.Duration), xres.Fills, env.XrdServer.ReadVs())
		diff := float64(hres.Duration-xres.Duration) / float64(xres.Duration) * 100
		fmt.Printf("  HTTP vs XRootD: %+.1f%%  (paper: LAN ≈ parity, WAN ≈ +17.5%%)\n", diff)
		fmt.Printf("  physics checksum: %d (identical on both transports)\n", hres.Sum)
		env.Close()
	}
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
