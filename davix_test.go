package davix

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/netsim"
	"godavix/internal/storage"
)

// startFabric brings up a DPM server on a simulated network and returns a
// public-API client wired to it.
func startFabric(t *testing.T, opts Options) (*netsim.Network, *storage.MemStore, *Client) {
	t.Helper()
	n := netsim.New(netsim.Ideal())
	st := storage.NewMemStore()
	srv := httpserv.New(st, httpserv.Options{})
	l, err := n.Listen("dpm1:80")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)

	opts.Dialer = n
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return n, st, c
}

func TestPublicLifecycle(t *testing.T) {
	_, _, c := startFabric(t, Options{Strategy: StrategyNone})
	ctx := context.Background()

	if err := c.Mkdir(ctx, "http://dpm1:80/data"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, "http://dpm1:80/data/f", []byte("public api")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "http://dpm1:80/data/f")
	if err != nil || string(got) != "public api" {
		t.Fatalf("get = %q err=%v", got, err)
	}
	inf, err := c.Stat(ctx, "http://dpm1:80/data/f")
	if err != nil || inf.Size != 10 {
		t.Fatalf("stat = %+v err=%v", inf, err)
	}
	ls, err := c.List(ctx, "http://dpm1:80/data")
	if err != nil || len(ls) != 1 {
		t.Fatalf("list = %+v err=%v", ls, err)
	}
	if err := c.Delete(ctx, "http://dpm1:80/data/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "http://dpm1:80/data/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicFileAndVectored(t *testing.T) {
	_, st, c := startFabric(t, Options{Strategy: StrategyNone, CoalesceGap: 64})
	ctx := context.Background()

	blob := make([]byte, 32<<10)
	rand.New(rand.NewSource(1)).Read(blob)
	st.Put("/f", blob)

	f, err := c.Open(ctx, "http://dpm1:80/f")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(blob)) {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 100)
	if _, err := f.ReadAt(buf, 5000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blob[5000:5100]) {
		t.Fatal("ReadAt mismatch")
	}

	ranges := []Range{{Off: 10, Len: 20}, {Off: 1000, Len: 50}, {Off: 30000, Len: 100}}
	dsts := [][]byte{make([]byte, 20), make([]byte, 50), make([]byte, 100)}
	if err := c.ReadVec(ctx, "http://dpm1:80/f", ranges, dsts); err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		if !bytes.Equal(dsts[i], blob[r.Off:r.End()]) {
			t.Fatalf("range %d mismatch", i)
		}
	}

	// Sequential io.Reader usage.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(all, blob) {
		t.Fatalf("ReadAll: %d bytes err=%v", len(all), err)
	}
}

func TestPublicGetRange(t *testing.T) {
	_, st, c := startFabric(t, Options{Strategy: StrategyNone})
	st.Put("/f", []byte("0123456789"))
	got, err := c.GetRange(context.Background(), "http://dpm1:80/f", 3, 4)
	if err != nil || string(got) != "3456" {
		t.Fatalf("got %q err=%v", got, err)
	}
}

func TestPublicPoolStats(t *testing.T) {
	_, st, c := startFabric(t, Options{Strategy: StrategyNone})
	st.Put("/f", []byte("x"))
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := c.Get(ctx, "http://dpm1:80/f"); err != nil {
			t.Fatal(err)
		}
	}
	dials, reuses, _ := c.PoolStats()
	if dials != 1 || reuses != 3 {
		t.Fatalf("dials=%d reuses=%d", dials, reuses)
	}
}

// TestPublicObservability exercises the public observability surface in
// one pass: Options.Trace receives events, Snapshot unifies the three stat
// surfaces, and MetricsHandler serves them as Prometheus text.
func TestPublicObservability(t *testing.T) {
	var requests, cacheHits int64
	var mu sync.Mutex
	_, st, c := startFabric(t, Options{
		Strategy:  StrategyNone,
		CacheSize: 1 << 20,
		Trace: &ClientTrace{
			Request:  func(method, host, path string) { mu.Lock(); requests++; mu.Unlock() },
			CacheHit: func(key string, blocks int64) { mu.Lock(); cacheHits += blocks; mu.Unlock() },
		},
	})
	st.Put("/f", []byte("observable payload"))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.GetRange(ctx, "http://dpm1:80/f", 0, 10); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	gotReqs, gotHits := requests, cacheHits
	mu.Unlock()
	if gotReqs == 0 {
		t.Error("trace saw no requests")
	}
	if gotHits == 0 {
		t.Error("trace saw no cache hits (reads 2-3 should hit)")
	}

	s := c.Snapshot()
	if s.Engine.Requests == 0 || s.Pool.Dials == 0 || s.Cache.Hits == 0 {
		t.Fatalf("snapshot misses a surface: %+v", s)
	}

	rec := httptest.NewRecorder()
	c.MetricsHandler("davix_client").ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"davix_client_requests_total",
		"davix_client_cache_hits_total",
		"davix_client_pool_dials_total",
		`davix_client_op_latency_seconds{op="GET(range)",quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestPublicBadURLs(t *testing.T) {
	_, _, c := startFabric(t, Options{})
	ctx := context.Background()
	for _, u := range []string{"ftp://h/f", "http:///f"} {
		if _, err := c.Get(ctx, u); err == nil {
			t.Errorf("accepted %q", u)
		}
	}
}

func TestPublicFailoverIntegration(t *testing.T) {
	n := netsim.New(netsim.Ideal())
	blob := []byte("replicated")
	for _, addr := range []string{"dpm1:80", "dpm2:80"} {
		st := storage.NewMemStore()
		st.Put("/f", blob)
		srv := httpserv.New(st, httpserv.Options{})
		l, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go srv.Serve(l)
	}
	ml := &metalink.Metalink{
		Name: "f", Size: int64(len(blob)),
		URLs: []metalink.URL{
			{Loc: "http://dpm1:80/f", Priority: 1},
			{Loc: "http://dpm2:80/f", Priority: 2},
		},
	}
	fedSrv := httpserv.New(storage.NewMemStore(), httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})
	fl, err := n.Listen("fed:80")
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	go fedSrv.Serve(fl)

	c, err := New(Options{Dialer: n, Strategy: StrategyFailover, MetalinkHost: "fed:80"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	n.SetDown("dpm1:80", true)
	got, err := c.Get(ctx, "http://dpm1:80/f")
	if err != nil || string(got) != "replicated" {
		t.Fatalf("failover get = %q err=%v", got, err)
	}
}

func TestPublicWalkAndCopy(t *testing.T) {
	n := netsim.New(netsim.Ideal())
	stores := map[string]*storage.MemStore{}
	var copier *Client
	for _, addr := range []string{"src:80", "dst:80"} {
		st := storage.NewMemStore()
		stores[addr] = st
		opts := httpserv.Options{}
		if addr == "src:80" {
			// The source site pushes third-party copies via its own client.
			cc, err := New(Options{Dialer: n, Strategy: StrategyNone})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cc.Close)
			copier = cc
			opts.Copier = cc.core
		}
		srv := httpserv.New(st, opts)
		l, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go srv.Serve(l)
	}
	_ = copier
	stores["src:80"].Put("/tree/a/f1", []byte("1"))
	stores["src:80"].Put("/tree/f2", []byte("22"))

	c, err := New(Options{Dialer: n, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	var seen []string
	err = c.Walk(ctx, "http://src:80/tree", func(inf Info) error {
		seen = append(seen, inf.Path)
		return nil
	})
	if err != nil || len(seen) != 4 {
		t.Fatalf("walk = %v err=%v", seen, err)
	}

	if err := c.Copy(ctx, "http://src:80/tree/f2", "http://dst:80/imported/f2"); err != nil {
		t.Fatal(err)
	}
	got, _, err := stores["dst:80"].Get("/imported/f2")
	if err != nil || string(got) != "22" {
		t.Fatalf("copied content = %q err=%v", got, err)
	}
}

func TestPublicAuthAndChecksums(t *testing.T) {
	n := netsim.New(netsim.Ideal())
	st := storage.NewMemStore()
	st.Put("/f", []byte("locked"))
	srv := httpserv.New(st, httpserv.Options{
		Authorize: func(a string) bool { return a == "Bearer tok" },
	})
	l, err := n.Listen("s:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	c, err := New(Options{
		Dialer:          n,
		Strategy:        StrategyNone,
		Auth:            &Credentials{Bearer: "tok"},
		VerifyChecksums: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Get(context.Background(), "http://s:80/f")
	if err != nil || string(got) != "locked" {
		t.Fatalf("got %q err=%v", got, err)
	}
}

func TestPublicCacheOptionsAndStats(t *testing.T) {
	_, st, c := startFabric(t, Options{
		Strategy:  StrategyNone,
		CacheSize: 1 << 20,
		BlockSize: 1 << 10,
		ReadAhead: 2,
		StatTTL:   time.Minute,
	})
	ctx := context.Background()

	blob := make([]byte, 8<<10)
	rand.New(rand.NewSource(9)).Read(blob)
	st.Put("/f", blob)

	f, err := c.Open(ctx, "http://dpm1:80/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	for i := 0; i < 3; i++ {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf, blob[:2048]) {
		t.Fatal("cached read corrupt")
	}
	cs := c.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("cache stats = %+v, want hits and misses", cs)
	}
	if _, err := c.Stat(ctx, "http://dpm1:80/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(ctx, "http://dpm1:80/f"); err != nil {
		t.Fatal(err)
	}
	if cs := c.CacheStats(); cs.StatHits == 0 {
		t.Fatalf("stat cache never hit: %+v", cs)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrFileClosed) {
		t.Fatalf("ReadAt after Close = %v, want ErrFileClosed", err)
	}
}

// TestPublicWalkParallelism: the WalkParallelism option must not change
// the emission order seen through the public API.
func TestPublicWalkParallelism(t *testing.T) {
	n, st, _ := startFabric(t, Options{Strategy: StrategyNone})
	for _, p := range []string{"/ns/b/x", "/ns/b/y", "/ns/a/z", "/ns/top"} {
		st.Put(p, []byte("d"))
	}

	walk := func(par int) []string {
		c, err := New(Options{Dialer: n, Strategy: StrategyNone, WalkParallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var paths []string
		err = c.Walk(context.Background(), "http://dpm1:80/ns", func(inf Info) error {
			paths = append(paths, inf.Path)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return paths
	}
	serial := walk(1)
	parallel := walk(6)
	if len(serial) != 7 {
		t.Fatalf("serial walk = %v", serial)
	}
	for i := range serial {
		if parallel[i] != serial[i] {
			t.Fatalf("order diverged at %d: %q vs %q", i, parallel[i], serial[i])
		}
	}
}

// writerAtBuf is a minimal concurrent-safe io.WriterAt over a fixed buffer.
type writerAtBuf struct {
	mu sync.Mutex
	b  []byte
}

func (w *writerAtBuf) WriteAt(p []byte, off int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	copy(w.b[off:], p)
	return len(p), nil
}

// TestPublicTransferEngine drives the four transfer APIs end to end
// through the public surface: streaming put, multi-stream upload,
// zero-materialization download, and pull-mode copy.
func TestPublicTransferEngine(t *testing.T) {
	n, st, c := startFabric(t, Options{
		Strategy:          StrategyNone,
		ChunkSize:         4 << 10,
		UploadParallelism: 4,
	})
	// A second server to copy to.
	st2 := storage.NewMemStore()
	srv2 := httpserv.New(st2, httpserv.Options{})
	l2, err := n.Listen("dpm2:80")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l2.Close() })
	go srv2.Serve(l2)

	ctx := context.Background()
	blob := make([]byte, 48<<10)
	rand.New(rand.NewSource(71)).Read(blob)

	if err := c.PutReader(ctx, "http://dpm1:80/t/streamed", bytes.NewBuffer(blob), int64(len(blob))); err != nil {
		t.Fatal(err)
	}
	if got, _, err := st.Get("/t/streamed"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("PutReader stored %d bytes err=%v", len(got), err)
	}

	if err := c.UploadMultiStream(ctx, "http://dpm1:80/t/ms", bytes.NewReader(blob), int64(len(blob))); err != nil {
		t.Fatal(err)
	}
	if got, _, err := st.Get("/t/ms"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("UploadMultiStream stored %d bytes err=%v", len(got), err)
	}

	w := &writerAtBuf{b: make([]byte, len(blob))}
	nn, err := c.DownloadMultiStreamTo(ctx, "http://dpm1:80/t/ms", w)
	if err != nil || nn != int64(len(blob)) || !bytes.Equal(w.b, blob) {
		t.Fatalf("DownloadMultiStreamTo n=%d err=%v", nn, err)
	}

	if err := c.CopyStream(ctx, "http://dpm1:80/t/ms", "http://dpm2:80/t/copied"); err != nil {
		t.Fatal(err)
	}
	if got, _, err := st2.Get("/t/copied"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("CopyStream stored %d bytes err=%v", len(got), err)
	}
}

// TestPublicMetricsAndRetry: Options.Retry reaches the engine and
// Client.Metrics() reports what the client actually did.
func TestPublicMetricsAndRetry(t *testing.T) {
	n := netsim.New(netsim.Ideal())
	st := storage.NewMemStore()
	srv := httpserv.New(st, httpserv.Options{})
	l, err := n.Listen("dpm1:80")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)

	c, err := New(Options{
		Dialer:   n,
		Strategy: StrategyNone,
		Retry: RetryPolicy{
			Attempts:    3,
			BaseBackoff: time.Millisecond,
			Jitter:      func(time.Duration) time.Duration { return 0 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()

	st.Put("/f", []byte("observable"))
	srv.SetFault("/f", httpserv.Fault{Status: 503, Remaining: 1})
	got, err := c.Get(ctx, "http://dpm1:80/f")
	if err != nil || string(got) != "observable" {
		t.Fatalf("get = %q err=%v", got, err)
	}

	m := c.Metrics()
	if m.Requests != 2 || m.Retries != 1 {
		t.Fatalf("requests=%d retries=%d, want 2/1", m.Requests, m.Retries)
	}
	if m.BytesUp <= 0 || m.BytesDown <= 0 {
		t.Fatalf("bytes up/down = %d/%d", m.BytesUp, m.BytesDown)
	}
	if op := m.Ops["GET"]; op.Count != 1 || op.P50 <= 0 {
		t.Fatalf("Ops[GET] = %+v", op)
	}
}
