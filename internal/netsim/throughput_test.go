package netsim

import (
	"io"
	"testing"
	"time"
)

// TestBandwidthShapingThroughput: measured throughput must sit near the
// configured rate — within a factor of two above, never wildly below.
func TestBandwidthShapingThroughput(t *testing.T) {
	const bw = 64 << 20 // 64 MiB/s
	n := New(Profile{RTT: time.Millisecond, Bandwidth: bw})
	l, _ := n.Listen("s:1")
	defer l.Close()
	const size = 8 << 20
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		var sent int
		for sent < size {
			c.Write(buf)
			sent += len(buf)
		}
		c.Close()
	}()
	c, err := n.Dial("s:1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, _ := io.Copy(io.Discard, c)
	elapsed := time.Since(start).Seconds()
	if got < size {
		t.Fatalf("received %d bytes", got)
	}
	rate := float64(got) / elapsed
	if rate > bw*2 {
		t.Fatalf("throughput %.1f MiB/s exceeds 2x configured %.1f MiB/s", rate/(1<<20), float64(bw)/(1<<20))
	}
	if rate < bw/4 {
		t.Fatalf("throughput %.1f MiB/s below 1/4 of configured", rate/(1<<20))
	}
}

// TestUnlimitedBandwidthIsFast: the ideal profile moves data at memory
// speed (sanity check that shaping is actually bypassed).
func TestUnlimitedBandwidthIsFast(t *testing.T) {
	n := New(Ideal())
	l, _ := n.Listen("s:1")
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Write(make([]byte, 16<<20))
		c.Close()
	}()
	c, _ := n.Dial("s:1")
	start := time.Now()
	io.Copy(io.Discard, c)
	if time.Since(start) > time.Second {
		t.Fatalf("ideal network took %v for 16 MiB", time.Since(start))
	}
}
