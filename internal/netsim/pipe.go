package netsim

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// segment is a chunk of bytes scheduled to become readable at a given time.
type segment struct {
	data []byte
	at   time.Time
}

// segQueue is one direction of a simulated connection: a time-ordered queue
// of segments written by the peer, plus close/abort/deadline state.
type segQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	segs     []segment
	closed   bool // peer closed: EOF after draining
	aborted  bool // connection reset: error immediately
	deadline time.Time
	timer    *time.Timer
}

func newSegQueue() *segQueue {
	q := &segQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

var errTimeout = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netsim: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// ErrAborted is returned from reads and writes on a connection that was
// killed via Conn.Abort (simulating a connection reset).
var ErrAborted = errors.New("netsim: connection aborted")

func (q *segQueue) push(data []byte, at time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.aborted {
		return
	}
	q.segs = append(q.segs, segment{data: data, at: at})
	q.cond.Broadcast()
}

// pop blocks until data is available and its arrival time has passed,
// the queue is closed/aborted, or the deadline expires. Data that has
// already arrived is delivered even when the deadline has passed: the
// deadline models a peer that stopped sending, so it must only interrupt
// reads that would otherwise block. Checking it against wall time before
// looking at arrived segments would turn scheduling hiccups of the
// simulation process itself (GC, a busy runtime under hundreds of
// simulated clients) into spurious timeouts that no real kernel, which
// buffers arriving bytes while the process is off-CPU, would produce.
func (q *segQueue) pop(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.aborted {
			return 0, ErrAborted
		}
		if len(q.segs) > 0 {
			seg := &q.segs[0]
			wait := time.Until(seg.at)
			if wait <= 0 {
				n := copy(p, seg.data)
				if n == len(seg.data) {
					q.segs = q.segs[1:]
				} else {
					seg.data = seg.data[n:]
				}
				return n, nil
			}
			if !q.deadline.IsZero() && !time.Now().Before(q.deadline) {
				return 0, errTimeout
			}
			// Data exists but has not "arrived" yet: sleep outside the
			// lock-free fast path by waking ourselves when it lands (or
			// when the deadline fires, whichever comes first).
			if !q.deadline.IsZero() {
				if d := time.Until(q.deadline); d < wait {
					wait = d
				}
			}
			q.wakeAfter(wait)
			q.cond.Wait()
			continue
		}
		if q.closed {
			return 0, io.EOF
		}
		if !q.deadline.IsZero() && !time.Now().Before(q.deadline) {
			return 0, errTimeout
		}
		if !q.deadline.IsZero() {
			q.wakeAfter(time.Until(q.deadline))
		}
		q.cond.Wait()
	}
}

// wakeAfter arranges a broadcast after d so waiters re-check state.
// Caller holds q.mu.
func (q *segQueue) wakeAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if q.timer != nil {
		q.timer.Stop()
	}
	q.timer = time.AfterFunc(d, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
}

func (q *segQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *segQueue) abort() {
	q.mu.Lock()
	q.aborted = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *segQueue) setDeadline(t time.Time) {
	q.mu.Lock()
	q.deadline = t
	q.cond.Broadcast()
	q.mu.Unlock()
}

// buffered reports the number of bytes queued (arrived or in flight).
func (q *segQueue) buffered() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, s := range q.segs {
		n += len(s.data)
	}
	return n
}

// Addr is the net.Addr implementation for simulated endpoints.
type Addr string

// Network returns "sim".
func (Addr) Network() string { return "sim" }

// String returns the simulated address.
func (a Addr) String() string { return string(a) }

// Conn is one endpoint of a simulated full-duplex connection.
// It implements net.Conn.
type Conn struct {
	recv *segQueue // what we read
	peer *segQueue // what the other side reads

	local, remote Addr

	sendMu sync.Mutex
	shaper shaper

	closeOnce sync.Once
	closed    chan struct{}

	writeDeadline atomicTime
}

type atomicTime struct {
	mu sync.Mutex
	t  time.Time
}

func (a *atomicTime) get() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.t
}

func (a *atomicTime) set(t time.Time) {
	a.mu.Lock()
	a.t = t
	a.mu.Unlock()
}

// newConnPair creates the two endpoints of a connection shaped by prof.
func newConnPair(prof Profile, client, server Addr) (*Conn, *Conn) {
	aq, bq := newSegQueue(), newSegQueue()
	now := time.Now()
	c := &Conn{
		recv: aq, peer: bq,
		local: client, remote: server,
		shaper: newShaper(prof, now),
		closed: make(chan struct{}),
	}
	s := &Conn{
		recv: bq, peer: aq,
		local: server, remote: client,
		shaper: newShaper(prof, now),
		closed: make(chan struct{}),
	}
	return c, s
}

// Read reads data written by the peer once its simulated arrival time has
// passed.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := c.recv.pop(p)
	if err != nil && err != io.EOF && err != ErrAborted {
		err = &net.OpError{Op: "read", Net: "sim", Addr: c.remote, Err: err}
	}
	return n, err
}

// Write schedules p for delivery to the peer after the shaped delay.
// The write itself returns immediately (models kernel send buffering).
func (c *Conn) Write(p []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, &net.OpError{Op: "write", Net: "sim", Addr: c.remote, Err: os.ErrClosed}
	default:
	}
	if d := c.writeDeadline.get(); !d.IsZero() && !time.Now().Before(d) {
		return 0, &net.OpError{Op: "write", Net: "sim", Addr: c.remote, Err: errTimeout}
	}
	if len(p) == 0 {
		return 0, nil
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	c.sendMu.Lock()
	at := c.shaper.schedule(time.Now(), len(buf))
	c.sendMu.Unlock()
	c.peer.push(buf, at)
	return len(p), nil
}

// Close closes the connection; the peer observes EOF after draining
// in-flight data.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.peer.close()
		c.recv.close()
	})
	return nil
}

// Abort kills the connection immediately: both sides' pending and future
// I/O fails with ErrAborted. It models a connection reset / node crash.
func (c *Conn) Abort() {
	c.closeOnce.Do(func() { close(c.closed) })
	c.peer.abort()
	c.recv.abort()
}

// LocalAddr returns the simulated local address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the simulated remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.recv.setDeadline(t)
	c.writeDeadline.set(t)
	return nil
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.recv.setDeadline(t)
	return nil
}

// SetWriteDeadline sets the write deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.writeDeadline.set(t)
	return nil
}

// Buffered reports how many bytes are queued toward this endpoint,
// including bytes still "in flight". Useful in tests.
func (c *Conn) Buffered() int { return c.recv.buffered() }
