package netsim

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// echoServer accepts one connection and echoes everything back.
func echoServer(t *testing.T, l net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
}

func TestDialRequiresListener(t *testing.T) {
	n := New(Ideal())
	if _, err := n.Dial("nobody:1"); err == nil {
		t.Fatal("expected dial error for missing listener")
	}
}

func TestRoundTripBytes(t *testing.T) {
	n := New(Ideal())
	l, err := n.Listen("echo:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	echoServer(t, l)

	c, err := n.Dial("echo:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := []byte("hello simulated world")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
}

// TestOrderingAndIntegrity is the core property: bytes arrive uncorrupted
// and in order regardless of write sizing.
func TestOrderingAndIntegrity(t *testing.T) {
	prop := func(chunks [][]byte) bool {
		n := New(Profile{Name: "t", RTT: 100 * time.Microsecond})
		l, err := n.Listen("s:1")
		if err != nil {
			return false
		}
		defer l.Close()

		var want bytes.Buffer
		for _, c := range chunks {
			want.Write(c)
		}

		done := make(chan []byte, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				done <- nil
				return
			}
			defer c.Close()
			b, _ := io.ReadAll(c)
			done <- b
		}()

		c, err := n.Dial("s:1")
		if err != nil {
			return false
		}
		for _, chunk := range chunks {
			if _, err := c.Write(chunk); err != nil {
				return false
			}
		}
		c.Close()
		got := <-done
		return bytes.Equal(got, want.Bytes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseGivesEOFAfterDrain(t *testing.T) {
	n := New(Profile{RTT: time.Millisecond})
	l, _ := n.Listen("s:1")
	defer l.Close()

	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("tail"))
		c.Close()
	}()

	c, err := n.Dial("s:1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "tail" {
		t.Fatalf("got %q, want %q", b, "tail")
	}
}

func TestAbortFailsBothSides(t *testing.T) {
	n := New(Ideal())
	l, _ := n.Listen("s:1")
	defer l.Close()

	srvConn := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvConn <- c
	}()
	c, err := n.Dial("s:1")
	if err != nil {
		t.Fatal(err)
	}
	s := <-srvConn
	c.(*Conn).Abort()

	if _, err := s.Read(make([]byte, 1)); err != ErrAborted {
		t.Fatalf("server read err = %v, want ErrAborted", err)
	}
	if _, err := c.Read(make([]byte, 1)); err != ErrAborted {
		t.Fatalf("client read err = %v, want ErrAborted", err)
	}
}

func TestSetDownRefusesDialsAndKillsConns(t *testing.T) {
	n := New(Ideal())
	l, _ := n.Listen("s:1")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()

	c, err := n.Dial("s:1")
	if err != nil {
		t.Fatal(err)
	}
	n.SetDown("s:1", true)
	if _, err := n.Dial("s:1"); err == nil {
		t.Fatal("expected dial to down host to fail")
	}
	if _, err := c.Read(make([]byte, 1)); err != ErrAborted {
		t.Fatalf("existing conn read err = %v, want ErrAborted", err)
	}

	n.SetDown("s:1", false)
	if _, err := n.Dial("s:1"); err != nil {
		t.Fatalf("dial after recovery: %v", err)
	}
}

func TestReadDeadline(t *testing.T) {
	n := New(Ideal())
	l, _ := n.Listen("s:1")
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		_ = c // never writes
	}()
	c, err := n.Dial("s:1")
	if err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	_, err = c.Read(make([]byte, 1))
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout net.Error", err)
	}
	// Clearing the deadline makes the connection usable again.
	c.SetReadDeadline(time.Time{})
}

func TestDialContextCancel(t *testing.T) {
	p := Ideal()
	p.RTT = time.Second
	p.HandshakeRTTs = 5
	n := New(p)
	l, _ := n.Listen("s:1")
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.DialContext(ctx, "s:1")
	if err == nil {
		t.Fatal("expected context cancellation")
	}
	if time.Since(start) > time.Second {
		t.Fatal("dial did not honour context")
	}
}

func TestHandshakeCostsRTT(t *testing.T) {
	rtt := 20 * time.Millisecond
	n := New(Profile{RTT: rtt, HandshakeRTTs: 1})
	l, _ := n.Listen("s:1")
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := n.Dial("s:1"); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < rtt {
		t.Fatalf("dial took %v, want >= %v handshake", got, rtt)
	}
}

func TestPropagationDelayApplied(t *testing.T) {
	rtt := 30 * time.Millisecond
	n := New(Profile{RTT: rtt})
	l, _ := n.Listen("s:1")
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		c.Write([]byte("x"))
	}()
	c, err := n.Dial("s:1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < rtt/2 {
		t.Fatalf("one-way delivery took %v, want >= %v", got, rtt/2)
	}
}

// TestSlowStartPenalizesFreshConnections verifies the core economics of
// session recycling: sending the same payload twice on one connection is
// faster the second time, and a warmed connection beats a fresh one.
func TestSlowStartPenalizesFreshConnections(t *testing.T) {
	prof := Profile{
		RTT:       10 * time.Millisecond,
		Bandwidth: 1 << 30,
		SlowStart: true,
		InitCwnd:  1024,
		MaxCwnd:   1 << 20,
	}
	payload := 64 * 1024 // crosses several cwnd doublings

	transferTime := func(s *shaper, n int) time.Duration {
		now := time.Now()
		at := s.schedule(now, n)
		return at.Sub(now)
	}

	s := newShaper(prof, time.Now())
	first := transferTime(&s, payload)
	// Drain link-busy state for a fair second measurement.
	s.linkFree = time.Now()
	second := transferTime(&s, payload)
	if second >= first {
		t.Fatalf("warm transfer (%v) not faster than cold (%v)", second, first)
	}
	// After pushing well past MaxCwnd worth of data the window is fully open.
	s.linkFree = time.Now()
	s.schedule(time.Now(), 4<<20)
	if !s.warm() {
		t.Fatal("shaper should be warm after 4 MiB")
	}
}

func TestShaperNoSlowStartWhenDisabled(t *testing.T) {
	prof := Profile{RTT: 10 * time.Millisecond, Bandwidth: 1 << 30}
	s := newShaper(prof, time.Now())
	now := time.Now()
	at := s.schedule(now, 1<<20)
	// Only propagation + serialization: ~5ms + ~1ms.
	if at.Sub(now) > 20*time.Millisecond {
		t.Fatalf("unexpected stall without slow start: %v", at.Sub(now))
	}
}

func TestConcurrentConnections(t *testing.T) {
	n := New(Profile{RTT: time.Millisecond})
	l, _ := n.Listen("s:1")
	defer l.Close()
	echoServer(t, l)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial("s:1")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte(i)}, 1000)
			if _, err := c.Write(msg); err != nil {
				t.Error(err)
				return
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(c, got); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("conn %d corrupted echo", i)
			}
		}(i)
	}
	wg.Wait()
	if n.Dials() != 16 {
		t.Fatalf("Dials() = %d, want 16", n.Dials())
	}
}

func TestProfilesOrdered(t *testing.T) {
	lan, pan, wan := LAN(), PAN(), WAN()
	if !(lan.RTT < pan.RTT && pan.RTT < wan.RTT) {
		t.Fatalf("profile RTTs not ordered: %v %v %v", lan.RTT, pan.RTT, wan.RTT)
	}
	for _, p := range []Profile{lan, pan, wan} {
		if p.effMaxCwnd() <= 0 {
			t.Fatalf("%s: expected derived BDP cap", p.Name)
		}
		if !p.SlowStart || p.HandshakeRTTs != 1 {
			t.Fatalf("%s: expected slow start and 1 handshake RTT", p.Name)
		}
	}
}

func TestHostProfileOverride(t *testing.T) {
	n := New(Ideal())
	n.SetHostProfile("far:1", Profile{RTT: 40 * time.Millisecond, HandshakeRTTs: 1})
	l, _ := n.Listen("far:1")
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := n.Dial("far:1"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("host profile override not applied to handshake")
	}
}

func TestListenDuplicateAddr(t *testing.T) {
	n := New(Ideal())
	l, err := n.Listen("s:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("s:1"); err == nil {
		t.Fatal("expected duplicate listen to fail")
	}
	l.Close()
	if _, err := n.Listen("s:1"); err != nil {
		t.Fatalf("listen after close: %v", err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	n := New(Ideal())
	l, _ := n.Listen("s:1")
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c, err := n.Dial("s:1")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("expected write after close to fail")
	}
}
