package netsim

import "time"

// shaper converts byte counts into delivery times according to a Profile.
// It models, per connection direction:
//
//   - propagation delay: RTT/2 added to every segment;
//   - serialization delay: bytes / Bandwidth, with the link busy until the
//     previous segment finished transmitting;
//   - TCP slow start: a fresh connection may only have cwnd bytes
//     outstanding per RTT window; every window boundary costs one RTT of
//     stall and doubles cwnd up to MaxCwnd.
//
// The slow-start state persists across requests on the same connection,
// which is precisely what makes the paper's session recycling profitable.
type shaper struct {
	prof     Profile
	linkFree time.Time // when the serializing link becomes idle
	cwnd     int64     // current congestion window (bytes per RTT)
	inWindow int64     // bytes sent in the current window
}

func newShaper(p Profile, now time.Time) shaper {
	return shaper{
		prof:     p,
		linkFree: now,
		cwnd:     p.effInitCwnd(),
	}
}

// schedule returns the arrival time of an n-byte segment written at now and
// advances the shaper state.
func (s *shaper) schedule(now time.Time, n int) time.Time {
	start := now
	if s.linkFree.After(start) {
		start = s.linkFree
	}

	var stall time.Duration
	if s.prof.SlowStart && s.prof.RTT > 0 {
		stall = s.slowStartStall(int64(n))
	}

	var tx time.Duration
	if s.prof.Bandwidth > 0 {
		tx = time.Duration(float64(n) / float64(s.prof.Bandwidth) * float64(time.Second))
	}

	s.linkFree = start.Add(stall + tx)
	return s.linkFree.Add(s.prof.RTT / 2)
}

// slowStartStall charges one RTT for every congestion-window boundary the
// n new bytes cross, doubling cwnd at each boundary until MaxCwnd.
func (s *shaper) slowStartStall(n int64) time.Duration {
	maxCwnd := s.prof.effMaxCwnd()
	var stall time.Duration
	for n > 0 {
		if maxCwnd > 0 && s.cwnd >= maxCwnd {
			// Window fully opened: the bandwidth term alone governs.
			s.inWindow += n
			return stall
		}
		room := s.cwnd - s.inWindow
		if n <= room {
			s.inWindow += n
			return stall
		}
		// Fill this window, then wait one RTT for the ACK clock and
		// double the window.
		n -= room
		stall += s.prof.RTT
		s.cwnd *= 2
		if maxCwnd > 0 && s.cwnd > maxCwnd {
			s.cwnd = maxCwnd
		}
		s.inWindow = 0
	}
	return stall
}

// warm reports whether the window has fully opened (no more slow-start
// penalty on this connection).
func (s *shaper) warm() bool {
	maxCwnd := s.prof.effMaxCwnd()
	return !s.prof.SlowStart || maxCwnd == 0 || s.cwnd >= maxCwnd
}
