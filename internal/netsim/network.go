package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrHostDown is returned by Dial when the target host has been marked
// unavailable with SetDown, modelling the paper's "offline server" case.
var ErrHostDown = errors.New("netsim: host down")

// ErrNoListener is returned by Dial when nothing listens on the address.
var ErrNoListener = errors.New("netsim: connection refused")

// Network is an in-process fabric of simulated hosts. Servers Listen on
// string addresses ("dpm1:80"); clients Dial them. Every connection is
// shaped by the Network's Profile (or a per-host override).
//
// A Network is safe for concurrent use.
type Network struct {
	prof Profile

	mu        sync.Mutex
	listeners map[string]*Listener
	down      map[string]bool
	hostProf  map[string]Profile
	dials     int64
	conns     []*Conn
}

// New creates a Network whose connections are shaped by prof.
func New(prof Profile) *Network {
	return &Network{
		prof:      prof,
		listeners: make(map[string]*Listener),
		down:      make(map[string]bool),
		hostProf:  make(map[string]Profile),
	}
}

// Profile returns the network's default profile.
func (n *Network) Profile() Profile { return n.prof }

// SetHostProfile overrides the link profile used when dialing addr,
// letting one fabric host e.g. both a LAN replica and a WAN replica.
func (n *Network) SetHostProfile(addr string, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hostProf[addr] = p
}

// SetDown marks addr unreachable (true) or reachable (false). New dials to
// a down host fail with ErrHostDown; established connections are aborted.
func (n *Network) SetDown(addr string, down bool) {
	n.mu.Lock()
	n.down[addr] = down
	var victims []*Conn
	if down {
		for _, c := range n.conns {
			if string(c.remote) == addr || string(c.local) == addr {
				victims = append(victims, c)
			}
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Abort()
	}
}

// Dials reports how many successful Dial calls have completed; benchmarks
// use it to count connection establishment (Figure 2).
func (n *Network) Dials() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dials
}

// Listen starts accepting connections on addr with the default accept
// backlog.
func (n *Network) Listen(addr string) (net.Listener, error) {
	return n.ListenBacklog(addr, 16)
}

// ListenBacklog starts accepting connections on addr with an explicit
// accept backlog — the simulated SYN queue. Load benchmarks dialing
// hundreds of clients at once need a deeper backlog than the default 16 so
// connection setup is not serialized by Dial blocking on the accept
// channel.
func (n *Network) ListenBacklog(addr string, backlog int) (net.Listener, error) {
	if backlog < 1 {
		backlog = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("netsim: address %s already in use", addr)
	}
	l := &Listener{
		net:    n,
		addr:   Addr(addr),
		accept: make(chan *Conn, backlog),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to addr, paying the profile's handshake cost.
func (n *Network) Dial(addr string) (net.Conn, error) {
	return n.DialContext(context.Background(), addr)
}

// DialContext connects to addr, honouring ctx cancellation during the
// simulated handshake.
func (n *Network) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	n.mu.Lock()
	if n.down[addr] {
		n.mu.Unlock()
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr(addr), Err: ErrHostDown}
	}
	l, ok := n.listeners[addr]
	prof := n.prof
	if hp, ok2 := n.hostProf[addr]; ok2 {
		prof = hp
	}
	n.mu.Unlock()
	if !ok {
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr(addr), Err: ErrNoListener}
	}

	// Pay the TCP handshake: HandshakeRTTs full round trips.
	if hs := time.Duration(prof.HandshakeRTTs) * prof.RTT; hs > 0 {
		t := time.NewTimer(hs)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}

	client, server := newConnPair(prof, Addr(fmt.Sprintf("client-%d", nextConnID())), Addr(addr))

	select {
	case l.accept <- server:
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr(addr), Err: ErrNoListener}
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	n.mu.Lock()
	n.dials++
	n.conns = append(n.conns, client, server)
	n.mu.Unlock()
	return client, nil
}

var (
	connIDMu sync.Mutex
	connID   int64
)

func nextConnID() int64 {
	connIDMu.Lock()
	defer connIDMu.Unlock()
	connID++
	return connID
}

// Listener implements net.Listener for a simulated address.
type Listener struct {
	net    *Network
	addr   Addr
	accept chan *Conn
	done   chan struct{}
	once   sync.Once
}

// Accept waits for an inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "sim", Addr: l.addr, Err: net.ErrClosed}
	}
}

// Close stops the listener and removes it from the fabric.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, string(l.addr))
		l.net.mu.Unlock()
	})
	return nil
}

// Addr returns the listener's simulated address.
func (l *Listener) Addr() net.Addr { return l.addr }
