// Package netsim provides an in-process simulated network used to reproduce
// the paper's three network classes (LAN, PAN-European, WAN) without real
// geography. Connections created through a Network behave like TCP streams
// with configurable round-trip time, per-connection bandwidth, a TCP
// slow-start model, and connection-handshake cost. Faults (host outages,
// connection aborts) can be injected to exercise the Metalink failover paths.
//
// Latencies are scaled down from the paper's real-world values (milliseconds
// instead of tens/hundreds of milliseconds) so that benchmarks complete
// quickly; every protocol round trip is still paid, so the relative shapes
// of the paper's results are preserved.
package netsim

import "time"

// Profile describes the link characteristics applied to each simulated
// connection. The zero value is an ideal network: no latency, no bandwidth
// limit, free handshakes.
type Profile struct {
	// Name identifies the profile in reports ("LAN", "PAN", "WAN", ...).
	Name string

	// RTT is the round-trip time between the two endpoints. One half is
	// charged to every segment in each direction; Dial additionally pays
	// HandshakeRTTs full round trips.
	RTT time.Duration

	// Bandwidth is the per-connection link rate in bytes per second.
	// Zero means unlimited.
	Bandwidth int64

	// HandshakeRTTs is the number of round trips charged when establishing
	// a new connection (TCP SYN/SYN-ACK = 1). Zero means free dials.
	HandshakeRTTs int

	// SlowStart enables the TCP slow-start model: a fresh connection may
	// only have InitCwnd bytes in flight per RTT, doubling every window
	// until MaxCwnd. Reusing a warmed-up connection (the paper's session
	// recycling) avoids paying these extra windows again.
	SlowStart bool

	// InitCwnd is the initial congestion window in bytes (default 14600,
	// i.e. 10 MSS as in modern Linux).
	InitCwnd int64

	// MaxCwnd caps congestion-window growth, conventionally near the
	// bandwidth-delay product. Zero derives it from Bandwidth*RTT, or
	// disables the cap when Bandwidth is unlimited.
	MaxCwnd int64
}

// Paper §3 network classes, scaled 1:25 from the quoted upper bounds
// (5 ms, 50 ms, 300 ms) so a full Figure-4 run takes seconds, not hours.
// The 1 Gb/s link of the paper's testbed is kept as-is.
const latencyScale = 25

// LAN models the paper's "CERN<->CERN" gigabit Ethernet class (<5 ms RTT).
func LAN() Profile {
	return Profile{
		Name:          "LAN",
		RTT:           5 * time.Millisecond / latencyScale,
		Bandwidth:     125 << 20, // ~1 Gb/s
		HandshakeRTTs: 1,
		SlowStart:     true,
		InitCwnd:      14600,
	}
}

// PAN models the paper's "UK(GLAS)<->CERN" GEANT class (<50 ms RTT).
// Effective per-stream bandwidth on the shared GEANT path is below the
// local gigabit link.
func PAN() Profile {
	return Profile{
		Name:          "PAN",
		RTT:           50 * time.Millisecond / latencyScale,
		Bandwidth:     60 << 20,
		HandshakeRTTs: 1,
		SlowStart:     true,
		InitCwnd:      14600,
	}
}

// WAN models the paper's "USA(BNL)<->CERN" transatlantic class (<300 ms
// RTT). Per-stream bandwidth on the shared transatlantic path is far below
// the local link, which is why the paper's WAN rows are the slowest for
// both protocols.
func WAN() Profile {
	return Profile{
		Name:          "WAN",
		RTT:           300 * time.Millisecond / latencyScale,
		Bandwidth:     32 << 20,
		HandshakeRTTs: 1,
		SlowStart:     true,
		InitCwnd:      14600,
	}
}

// Ideal is a zero-cost network, useful in unit tests that assert semantics
// rather than timing.
func Ideal() Profile { return Profile{Name: "ideal"} }

// effMaxCwnd resolves the congestion-window cap.
func (p Profile) effMaxCwnd() int64 {
	if p.MaxCwnd > 0 {
		return p.MaxCwnd
	}
	if p.Bandwidth > 0 && p.RTT > 0 {
		bdp := int64(float64(p.Bandwidth) * p.RTT.Seconds())
		if bdp < p.effInitCwnd() {
			bdp = p.effInitCwnd()
		}
		return bdp
	}
	return 0 // unlimited
}

func (p Profile) effInitCwnd() int64 {
	if p.InitCwnd > 0 {
		return p.InitCwnd
	}
	return 14600
}
