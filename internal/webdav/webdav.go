// Package webdav implements the minimal WebDAV (RFC 4918) document subset
// davix needs for namespace operations: PROPFIND multistatus responses with
// size, type and modification time properties. The HTTP server encodes
// these documents; the davix client decodes them for Stat and List.
package webdav

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"time"
	"unicode/utf8"
)

// ContentType is the MIME type used for WebDAV XML bodies.
const ContentType = "application/xml; charset=utf-8"

// TimeLayout is the getlastmodified property format (RFC 1123).
const TimeLayout = time.RFC1123

// Entry is one resource description extracted from (or destined for) a
// multistatus document.
type Entry struct {
	// Href is the resource path.
	Href string
	// Size is the content length (0 for collections).
	Size int64
	// Dir reports whether the resource is a collection.
	Dir bool
	// ModTime is the last modification time (zero if absent).
	ModTime time.Time
}

// Multistatus wire structures.
type msDoc struct {
	XMLName   xml.Name     `xml:"DAV: multistatus"`
	Responses []msResponse `xml:"response"`
}

type msResponse struct {
	Href     string       `xml:"href"`
	Propstat []msPropstat `xml:"propstat"`
}

type msPropstat struct {
	Prop   msProp `xml:"prop"`
	Status string `xml:"status"`
}

type msProp struct {
	ContentLength *int64          `xml:"getcontentlength"`
	LastModified  string          `xml:"getlastmodified"`
	ResourceType  *msResourceType `xml:"resourcetype"`
}

type msResourceType struct {
	Collection *struct{} `xml:"collection"`
}

// EncodeMultistatus renders entries as a 207 multistatus body.
func EncodeMultistatus(entries []Entry) ([]byte, error) {
	doc := msDoc{}
	for _, e := range entries {
		prop := msProp{}
		if e.Dir {
			prop.ResourceType = &msResourceType{Collection: &struct{}{}}
		} else {
			size := e.Size
			prop.ContentLength = &size
		}
		if !e.ModTime.IsZero() {
			prop.LastModified = e.ModTime.UTC().Format(TimeLayout)
		}
		doc.Responses = append(doc.Responses, msResponse{
			Href: e.Href,
			Propstat: []msPropstat{{
				Prop:   prop,
				Status: "HTTP/1.1 200 OK",
			}},
		})
	}
	out, err := xml.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// MultistatusWriter streams a multistatus document entry by entry — the
// generation-side mirror of DecodeMultistatusStream. Where
// EncodeMultistatus materializes the whole 207 body (O(entries) memory, a
// problem for a collection listing millions of objects), this writer emits
// each <response> as it is produced and never holds more than one entry.
// The document shape is byte-identical to EncodeMultistatus's output, so
// every existing decoder accepts it unchanged.
//
// Usage: NewMultistatusWriter, WriteEntry per resource, then Close (which
// emits the document frame even when no entries were written). Errors
// stick: after a write failure every later call reports the same error.
type MultistatusWriter struct {
	w       *bufio.Writer
	started bool
	closed  bool
	err     error
}

// NewMultistatusWriter returns a writer streaming a multistatus document
// to w.
func NewMultistatusWriter(w io.Writer) *MultistatusWriter {
	return &MultistatusWriter{w: bufio.NewWriter(w)}
}

// start emits the document header and root element opening.
func (mw *MultistatusWriter) start() {
	mw.w.WriteString(xml.Header)
	mw.w.WriteString(`<multistatus xmlns="DAV:">`)
	mw.started = true
}

// WriteEntry emits one <response> element for e.
func (mw *MultistatusWriter) WriteEntry(e Entry) error {
	if mw.err != nil {
		return mw.err
	}
	if mw.closed {
		mw.err = fmt.Errorf("webdav: WriteEntry after Close")
		return mw.err
	}
	if !mw.started {
		mw.start()
	}
	w := mw.w
	w.WriteString("\n <response>\n  <href>")
	xml.EscapeText(w, []byte(e.Href))
	w.WriteString("</href>\n  <propstat>\n   <prop>")
	if !e.Dir {
		w.WriteString("\n    <getcontentlength>")
		w.WriteString(strconv.FormatInt(e.Size, 10))
		w.WriteString("</getcontentlength>")
	}
	// Always emitted, empty for a zero time — exactly what the marshaled
	// (non-omitempty) struct field produces.
	w.WriteString("\n    <getlastmodified>")
	if !e.ModTime.IsZero() {
		xml.EscapeText(w, []byte(e.ModTime.UTC().Format(TimeLayout)))
	}
	w.WriteString("</getlastmodified>")
	if e.Dir {
		w.WriteString("\n    <resourcetype>\n     <collection></collection>\n    </resourcetype>")
	}
	w.WriteString("\n   </prop>\n   <status>HTTP/1.1 200 OK</status>\n  </propstat>\n </response>")
	mw.err = w.Flush()
	return mw.err
}

// Close terminates the document and flushes. An entry-less document closes
// to the same compact frame EncodeMultistatus produces for no entries.
func (mw *MultistatusWriter) Close() error {
	if mw.err != nil {
		return mw.err
	}
	if mw.closed {
		return nil
	}
	mw.closed = true
	if !mw.started {
		mw.start()
		mw.w.WriteString("</multistatus>")
	} else {
		mw.w.WriteString("\n</multistatus>")
	}
	mw.err = mw.w.Flush()
	return mw.err
}

// Element local names the multistatus schema cares about, as byte slices
// so the token loop compares without allocating.
var (
	elMultistatus = []byte("multistatus")
	elResponse    = []byte("response")
	elHref        = []byte("href")
	elLength      = []byte("getcontentlength")
	elModified    = []byte("getlastmodified")
	elCollection  = []byte("collection")
)

// DecodeMultistatusStream parses a multistatus document into entries, in
// document order, straight off r — the body is never materialized and no
// intermediate document is built. The tag scanner is hand-rolled (like the
// HTTP codec in internal/wire) because encoding/xml allocates a token box
// and name string per tag, which dominates the cost of decoding large
// collections; this path allocates a handful of objects per entry.
// Namespace prefixes are ignored: only local element names matter, which
// accepts both this package's default-namespace encoding and the
// "<D:multistatus xmlns:D=...>" style real WebDAV servers emit.
func DecodeMultistatusStream(r io.Reader) ([]Entry, error) {
	s := newMsScanner(r)
	var (
		entries  []Entry
		cur      Entry
		inResp   bool
		depth    int // element depth inside the current <response>
		field    int // leaf property currently being captured
		open     int // overall element depth: must return to 0 by EOF
		rootSeen bool
	)
	for {
		kind, err := s.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("webdav: %w", err)
		}
		switch kind {
		case msStart:
			open++
			if !rootSeen {
				// The document element must be a multistatus, as the
				// legacy decoder's xml.Unmarshal enforced.
				if !bytes.Equal(s.name, elMultistatus) {
					return nil, fmt.Errorf("webdav: document element is <%s>, want <multistatus>", s.name)
				}
				rootSeen = true
			}
			if !inResp {
				if bytes.Equal(s.name, elResponse) {
					inResp = true
					cur = Entry{}
					depth = 0
				}
				continue
			}
			depth++
			switch {
			case bytes.Equal(s.name, elHref):
				field = fHref
				s.startCapture()
			case bytes.Equal(s.name, elLength):
				field = fLength
				s.startCapture()
			case bytes.Equal(s.name, elModified):
				field = fModified
				s.startCapture()
			case bytes.Equal(s.name, elCollection):
				cur.Dir = true
			}
		case msEnd:
			open--
			if open < 0 {
				return nil, fmt.Errorf("webdav: unbalanced </%s>", s.name)
			}
			if !inResp {
				continue
			}
			if depth == 0 {
				if bytes.Equal(s.name, elResponse) {
					entries = append(entries, cur)
					inResp = false
				}
				continue
			}
			depth--
			ended := fNone
			switch {
			case bytes.Equal(s.name, elHref):
				ended = fHref
			case bytes.Equal(s.name, elLength):
				ended = fLength
			case bytes.Equal(s.name, elModified):
				ended = fModified
			}
			if ended == fNone || ended != field {
				continue
			}
			text := s.stopCapture()
			switch field {
			case fHref:
				cur.Href = string(text)
			case fLength:
				n, err := strconv.ParseInt(string(bytes.TrimSpace(text)), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("webdav: getcontentlength %q: %w", text, err)
				}
				cur.Size = n
			case fModified:
				// Unparsable times are dropped, matching DecodeMultistatus.
				if ts, err := time.Parse(TimeLayout, string(text)); err == nil {
					cur.ModTime = ts
				}
			}
			field = fNone
		}
	}
	if !rootSeen {
		return nil, fmt.Errorf("webdav: %w: no multistatus element", io.ErrUnexpectedEOF)
	}
	if open != 0 {
		// The body ended before the document element closed — a dropped
		// connection on a close-delimited response must never read as a
		// complete (possibly shorter) listing.
		return nil, fmt.Errorf("webdav: %w: %d elements unclosed", io.ErrUnexpectedEOF, open)
	}
	return entries, nil
}

// Scanner token kinds.
const (
	msStart = iota
	msEnd
)

// Captured property fields.
const (
	fNone = iota
	fHref
	fLength
	fModified
)

// msScanner is a minimal XML tag scanner for multistatus documents: it
// yields start/end tags with prefix-stripped local names and accumulates
// entity-decoded character data on demand. It reuses its buffers across
// tokens, so returned names and text are only valid until the next call.
type msScanner struct {
	br *bufio.Reader

	// name is the local name of the last start or end tag.
	name []byte
	// pendEnd is set when the last tag was self-closing: the matching
	// virtual end tag is emitted on the next call, from pendName.
	pendEnd  bool
	pendName []byte

	capture bool
	text    []byte
}

func newMsScanner(r io.Reader) *msScanner {
	return &msScanner{br: bufio.NewReader(r)}
}

// startCapture begins accumulating character data into the text buffer.
func (s *msScanner) startCapture() {
	s.capture = true
	s.text = s.text[:0]
}

// stopCapture ends accumulation and returns the collected bytes (valid
// until the next startCapture).
func (s *msScanner) stopCapture() []byte {
	s.capture = false
	return s.text
}

// next advances to the next start or end tag. Character data between tags
// is accumulated into text while capture is on. Returns io.EOF cleanly at
// end of input, io.ErrUnexpectedEOF when the input ends inside a token.
func (s *msScanner) next() (int, error) {
	if s.pendEnd {
		s.pendEnd = false
		s.name = s.pendName
		return msEnd, nil
	}
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return 0, err // io.EOF at a token boundary is the clean end
		}
		if c != '<' {
			if s.capture {
				if c == '&' {
					if err := s.appendEntity(); err != nil {
						return 0, err
					}
				} else {
					s.text = append(s.text, c)
				}
			}
			continue
		}
		c, err = s.br.ReadByte()
		if err != nil {
			return 0, io.ErrUnexpectedEOF
		}
		switch c {
		case '?':
			if err := s.skipUntil("?>"); err != nil {
				return 0, err
			}
		case '!':
			if err := s.markup(); err != nil {
				return 0, err
			}
		case '/':
			if err := s.readName('>'); err != nil {
				return 0, err
			}
			return msEnd, nil
		default:
			if err := s.br.UnreadByte(); err != nil {
				return 0, err
			}
			return s.startTag()
		}
	}
}

// startTag scans "<name attrs...>" or "<name attrs.../>", with the opening
// '<' already consumed.
func (s *msScanner) startTag() (int, error) {
	if err := s.readName(0); err != nil {
		return 0, err
	}
	// Skip attributes, respecting quoted values that may contain '>'.
	var quote byte
	selfClose := false
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return 0, io.ErrUnexpectedEOF
		}
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
			selfClose = false
		case '/':
			selfClose = true
		case '>':
			if selfClose {
				s.pendEnd = true
				s.pendName = append(s.pendName[:0], s.name...)
			}
			return msStart, nil
		default:
			selfClose = false
		}
	}
}

// readName scans an element name into s.name, stripping any namespace
// prefix. term, when non-zero, is the only byte allowed to end the name
// (the end-tag case); otherwise whitespace, '/' and '>' end it and are
// pushed back for the attribute scanner.
func (s *msScanner) readName(term byte) error {
	s.name = s.name[:0]
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return io.ErrUnexpectedEOF
		}
		switch {
		case c == ':':
			// Namespace prefix: restart the local name.
			s.name = s.name[:0]
		case c == term:
			return nil
		case term == 0 && (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '/' || c == '>'):
			return s.br.UnreadByte()
		case term != 0 && (c == ' ' || c == '\t' || c == '\r' || c == '\n'):
			// Whitespace before the end-tag '>' is legal; skip to it.
		default:
			s.name = append(s.name, c)
		}
	}
}

// markup handles "<!" constructs: comments, CDATA sections (captured as
// text) and other declarations (skipped).
func (s *msScanner) markup() error {
	peek, _ := s.br.Peek(7)
	if len(peek) >= 2 && peek[0] == '-' && peek[1] == '-' {
		s.br.Discard(2)
		return s.skipUntil("-->")
	}
	if len(peek) >= 7 && string(peek) == "[CDATA[" {
		s.br.Discard(7)
		return s.cdata()
	}
	// Other declaration (<!DOCTYPE ...>): skip to '>', respecting quotes.
	var quote byte
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return io.ErrUnexpectedEOF
		}
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '>':
			return nil
		}
	}
}

// cdata copies a CDATA section into the text buffer (when capturing) until
// the "]]>" terminator. A two-byte lookbehind window makes overlapping
// near-matches exact: content may freely end in "]" or "]]" (e.g.
// "/data/x[1]" arriving as "/data/x[1]]]>").
func (s *msScanner) cdata() error {
	var a, b byte // the two most recent bytes, not yet committed as text
	seen := 0
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return io.ErrUnexpectedEOF
		}
		if seen >= 2 && a == ']' && b == ']' && c == '>' {
			return nil
		}
		if seen >= 2 && s.capture {
			// a can no longer be part of the terminator; commit it.
			s.text = append(s.text, a)
		}
		a, b = b, c
		seen++
	}
}

// skipUntil discards input through term ("?>" or "-->"), using the same
// exact lookbehind matching as cdata so runs of the terminator's first
// byte ("---->") cannot slip past.
func (s *msScanner) skipUntil(term string) error {
	var a, b byte
	seen := 0
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return io.ErrUnexpectedEOF
		}
		seen++
		switch len(term) {
		case 2:
			if seen >= 2 && b == term[0] && c == term[1] {
				return nil
			}
		default: // 3
			if seen >= 3 && a == term[0] && b == term[1] && c == term[2] {
				return nil
			}
		}
		a, b = b, c
	}
}

// appendEntity decodes one character reference ("&amp;", "&#xA;", ...) into
// the text buffer, with the leading '&' already consumed.
func (s *msScanner) appendEntity() error {
	var ref [12]byte
	n := 0
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return io.ErrUnexpectedEOF
		}
		if c == ';' {
			break
		}
		if n == len(ref) {
			return fmt.Errorf("webdav: character reference too long: &%s", ref[:n])
		}
		ref[n] = c
		n++
	}
	ent := string(ref[:n])
	switch ent {
	case "amp":
		s.text = append(s.text, '&')
	case "lt":
		s.text = append(s.text, '<')
	case "gt":
		s.text = append(s.text, '>')
	case "quot":
		s.text = append(s.text, '"')
	case "apos":
		s.text = append(s.text, '\'')
	default:
		if n < 2 || ref[0] != '#' {
			return fmt.Errorf("webdav: unknown entity &%s;", ent)
		}
		num := ent[1:]
		base := 10
		if num[0] == 'x' || num[0] == 'X' {
			num, base = num[1:], 16
		}
		v, err := strconv.ParseUint(num, base, 21)
		if err != nil {
			return fmt.Errorf("webdav: bad character reference &%s;: %v", ent, err)
		}
		s.text = utf8.AppendRune(s.text, rune(v))
	}
	return nil
}

// DecodeMultistatus parses a multistatus body into entries, in document
// order.
func DecodeMultistatus(data []byte) ([]Entry, error) {
	var doc msDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("webdav: %w", err)
	}
	entries := make([]Entry, 0, len(doc.Responses))
	for _, r := range doc.Responses {
		e := Entry{Href: r.Href}
		for _, ps := range r.Propstat {
			if ps.Prop.ContentLength != nil {
				e.Size = *ps.Prop.ContentLength
			}
			if ps.Prop.ResourceType != nil && ps.Prop.ResourceType.Collection != nil {
				e.Dir = true
			}
			if ps.Prop.LastModified != "" {
				if t, err := time.Parse(TimeLayout, ps.Prop.LastModified); err == nil {
					e.ModTime = t
				}
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}
