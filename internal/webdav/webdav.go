// Package webdav implements the minimal WebDAV (RFC 4918) document subset
// davix needs for namespace operations: PROPFIND multistatus responses with
// size, type and modification time properties. The HTTP server encodes
// these documents; the davix client decodes them for Stat and List.
package webdav

import (
	"encoding/xml"
	"fmt"
	"time"
)

// ContentType is the MIME type used for WebDAV XML bodies.
const ContentType = "application/xml; charset=utf-8"

// TimeLayout is the getlastmodified property format (RFC 1123).
const TimeLayout = time.RFC1123

// Entry is one resource description extracted from (or destined for) a
// multistatus document.
type Entry struct {
	// Href is the resource path.
	Href string
	// Size is the content length (0 for collections).
	Size int64
	// Dir reports whether the resource is a collection.
	Dir bool
	// ModTime is the last modification time (zero if absent).
	ModTime time.Time
}

// Multistatus wire structures.
type msDoc struct {
	XMLName   xml.Name     `xml:"DAV: multistatus"`
	Responses []msResponse `xml:"response"`
}

type msResponse struct {
	Href     string       `xml:"href"`
	Propstat []msPropstat `xml:"propstat"`
}

type msPropstat struct {
	Prop   msProp `xml:"prop"`
	Status string `xml:"status"`
}

type msProp struct {
	ContentLength *int64          `xml:"getcontentlength"`
	LastModified  string          `xml:"getlastmodified"`
	ResourceType  *msResourceType `xml:"resourcetype"`
}

type msResourceType struct {
	Collection *struct{} `xml:"collection"`
}

// EncodeMultistatus renders entries as a 207 multistatus body.
func EncodeMultistatus(entries []Entry) ([]byte, error) {
	doc := msDoc{}
	for _, e := range entries {
		prop := msProp{}
		if e.Dir {
			prop.ResourceType = &msResourceType{Collection: &struct{}{}}
		} else {
			size := e.Size
			prop.ContentLength = &size
		}
		if !e.ModTime.IsZero() {
			prop.LastModified = e.ModTime.UTC().Format(TimeLayout)
		}
		doc.Responses = append(doc.Responses, msResponse{
			Href: e.Href,
			Propstat: []msPropstat{{
				Prop:   prop,
				Status: "HTTP/1.1 200 OK",
			}},
		})
	}
	out, err := xml.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// DecodeMultistatus parses a multistatus body into entries, in document
// order.
func DecodeMultistatus(data []byte) ([]Entry, error) {
	var doc msDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("webdav: %w", err)
	}
	entries := make([]Entry, 0, len(doc.Responses))
	for _, r := range doc.Responses {
		e := Entry{Href: r.Href}
		for _, ps := range r.Propstat {
			if ps.Prop.ContentLength != nil {
				e.Size = *ps.Prop.ContentLength
			}
			if ps.Prop.ResourceType != nil && ps.Prop.ResourceType.Collection != nil {
				e.Dir = true
			}
			if ps.Prop.LastModified != "" {
				if t, err := time.Parse(TimeLayout, ps.Prop.LastModified); err == nil {
					e.ModTime = t
				}
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}
