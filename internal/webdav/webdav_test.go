package webdav

import (
	"testing"
	"time"
)

func TestMultistatusRoundTrip(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	in := []Entry{
		{Href: "/store", Dir: true, ModTime: now},
		{Href: "/store/f.rnt", Size: 700 << 20, ModTime: now},
		{Href: "/store/empty", Size: 0},
	}
	body, err := EncodeMultistatus(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultistatus(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("entries = %d", len(got))
	}
	if !got[0].Dir || got[0].Href != "/store" {
		t.Fatalf("dir entry = %+v", got[0])
	}
	if got[1].Dir || got[1].Size != 700<<20 {
		t.Fatalf("file entry = %+v", got[1])
	}
	if !got[0].ModTime.Equal(now) {
		t.Fatalf("modtime = %v, want %v", got[0].ModTime, now)
	}
	if got[2].Size != 0 || got[2].Dir {
		t.Fatalf("empty entry = %+v", got[2])
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeMultistatus([]byte("<<<<")); err == nil {
		t.Fatal("expected xml error")
	}
}

func TestDecodeEmptyDoc(t *testing.T) {
	body, err := EncodeMultistatus(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultistatus(body)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}
