package webdav

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestMultistatusRoundTrip(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	in := []Entry{
		{Href: "/store", Dir: true, ModTime: now},
		{Href: "/store/f.rnt", Size: 700 << 20, ModTime: now},
		{Href: "/store/empty", Size: 0},
	}
	body, err := EncodeMultistatus(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultistatus(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("entries = %d", len(got))
	}
	if !got[0].Dir || got[0].Href != "/store" {
		t.Fatalf("dir entry = %+v", got[0])
	}
	if got[1].Dir || got[1].Size != 700<<20 {
		t.Fatalf("file entry = %+v", got[1])
	}
	if !got[0].ModTime.Equal(now) {
		t.Fatalf("modtime = %v, want %v", got[0].ModTime, now)
	}
	if got[2].Size != 0 || got[2].Dir {
		t.Fatalf("empty entry = %+v", got[2])
	}
}

// TestStreamDecodeMatchesLegacy asserts the streaming decoder produces
// byte-identical entries to the materialize-then-Unmarshal path.
func TestStreamDecodeMatchesLegacy(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	in := []Entry{
		{Href: "/store", Dir: true, ModTime: now},
		{Href: "/store/f.rnt", Size: 700 << 20, ModTime: now},
		{Href: "/store/empty", Size: 0},
		{Href: "/store/sub", Dir: true},
	}
	body, err := EncodeMultistatus(in)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := DecodeMultistatus(body)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := DecodeMultistatusStream(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(legacy) {
		t.Fatalf("streamed %d entries, legacy %d", len(streamed), len(legacy))
	}
	for i := range legacy {
		if streamed[i] != legacy[i] {
			t.Fatalf("entry %d: streamed %+v != legacy %+v", i, streamed[i], legacy[i])
		}
	}
}

// TestStreamDecodePrefixedNamespaces accepts the "<D:...>" prefixed style
// real WebDAV servers emit.
func TestStreamDecodePrefixedNamespaces(t *testing.T) {
	doc := `<?xml version="1.0"?>
<D:multistatus xmlns:D="DAV:">
 <D:response>
  <D:href>/data/run1</D:href>
  <D:propstat><D:prop><D:resourcetype><D:collection/></D:resourcetype></D:prop>
   <D:status>HTTP/1.1 200 OK</D:status></D:propstat>
 </D:response>
 <D:response>
  <D:href>/data/run1/a.rnt</D:href>
  <D:propstat><D:prop><D:getcontentlength>42</D:getcontentlength></D:prop>
   <D:status>HTTP/1.1 200 OK</D:status></D:propstat>
 </D:response>
</D:multistatus>`
	got, err := DecodeMultistatusStream(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Dir || got[0].Href != "/data/run1" ||
		got[1].Dir || got[1].Size != 42 || got[1].Href != "/data/run1/a.rnt" {
		t.Fatalf("entries = %+v", got)
	}
}

// TestStreamDecodeEscapedHrefs: character references in hrefs must decode
// exactly as the legacy path does (the encoder escapes &<>'" and emits
// numeric references).
func TestStreamDecodeEscapedHrefs(t *testing.T) {
	in := []Entry{
		{Href: `/store/a&b <c> "d" 'e'`, Size: 9},
		{Href: "/store/plain", Size: 1},
	}
	body, err := EncodeMultistatus(in)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := DecodeMultistatus(body)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := DecodeMultistatusStream(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 2 || streamed[0] != legacy[0] || streamed[1] != legacy[1] {
		t.Fatalf("streamed %+v, legacy %+v", streamed, legacy)
	}
	if streamed[0].Href != in[0].Href {
		t.Fatalf("href = %q, want %q", streamed[0].Href, in[0].Href)
	}
}

// TestStreamDecodeCommentsAndCDATA: comments are skipped, CDATA content is
// captured verbatim.
func TestStreamDecodeCommentsAndCDATA(t *testing.T) {
	doc := `<?xml version="1.0"?>
<multistatus xmlns="DAV:"><!-- a comment with <tags> & ampersands -->
 <response>
  <href><![CDATA[/data/raw&stuff]]></href>
  <propstat><prop><getcontentlength>7</getcontentlength></prop></propstat>
 </response>
</multistatus>`
	got, err := DecodeMultistatusStream(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Href != "/data/raw&stuff" || got[0].Size != 7 {
		t.Fatalf("entries = %+v", got)
	}
}

// TestStreamDecodeCDATATrailingBrackets: CDATA content ending in "]" or
// "]]" must not confuse the "]]>" terminator match, and comment/PI
// terminators must survive runs of their first byte.
func TestStreamDecodeCDATATrailingBrackets(t *testing.T) {
	for _, tc := range []struct{ cdata, want string }{
		{"/data/x[1]", "/data/x[1]"},
		{"/data/y]]", "/data/y]]"},
		{"]", "]"},
		{"a]b]>c", "a]b]>c"},
	} {
		doc := `<multistatus xmlns="DAV:"><!-- dashes ----><?pi ??>
 <response><href><![CDATA[` + tc.cdata + `]]></href></response></multistatus>`
		got, err := DecodeMultistatusStream(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("cdata %q: %v", tc.cdata, err)
		}
		if len(got) != 1 || got[0].Href != tc.want {
			t.Fatalf("cdata %q: entries = %+v", tc.cdata, got)
		}
	}
}

// TestStreamDecodeGarbage covers malformed inputs: non-XML noise, a bad
// size property, and a mid-tag cut.
func TestStreamDecodeGarbage(t *testing.T) {
	for _, bad := range []string{
		"<<<<",
		`<multistatus xmlns="DAV:"><response><href>/f</href><propstat><prop>` +
			`<getcontentlength>forty-two</getcontentlength></prop></propstat></response></multistatus>`,
		`<multistatus xmlns="DAV:"><resp`,
		"",                    // empty body under a 207
		"proxy error page",    // no XML at all
		`<html><body></html>`, // wrong document element
		`</multistatus>`,      // end tag with nothing open
		`<multistatus xmlns="DAV:">` + // cut between two responses
			`<response><href>/a</href></response>`,
	} {
		if _, err := DecodeMultistatusStream(strings.NewReader(bad)); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

// TestStreamDecodeTruncated asserts a body cut inside a response entry is
// reported instead of silently dropping the partial entry.
func TestStreamDecodeTruncated(t *testing.T) {
	body, err := EncodeMultistatus([]Entry{
		{Href: "/a", Size: 1},
		{Href: "/b", Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := DecodeMultistatusStream(bytes.NewReader(body))
	if err != nil || len(full) != 2 {
		t.Fatalf("full decode: %v entries, err=%v", full, err)
	}
	// Cut the document inside the second <response>.
	cut := bytes.LastIndex(body, []byte("<href>"))
	if cut < 0 {
		t.Fatal("no href marker")
	}
	if _, err := DecodeMultistatusStream(bytes.NewReader(body[:cut+3])); err == nil {
		t.Fatal("truncated document decoded without error")
	}
}

func TestStreamDecodeEmptyDoc(t *testing.T) {
	body, err := EncodeMultistatus(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultistatusStream(bytes.NewReader(body))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}

// TestMultistatusWriterMatchesEncode asserts the streaming encoder emits
// byte-identical documents to the materializing EncodeMultistatus across
// entry shapes: files, collections, zero mod times, and hrefs needing
// escaping.
func TestMultistatusWriterMatchesEncode(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	for name, in := range map[string][]Entry{
		"empty": nil,
		"mixed": {
			{Href: "/store", Dir: true, ModTime: now},
			{Href: "/store/f.rnt", Size: 700 << 20, ModTime: now},
			{Href: "/store/empty", Size: 0},
			{Href: "/store/sub", Dir: true},
		},
		"escaped": {
			{Href: `/store/a&b <c> "d" 'e'`, Size: 9, ModTime: now},
		},
		"single-dir": {
			{Href: "/top", Dir: true},
		},
	} {
		want, err := EncodeMultistatus(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		mw := NewMultistatusWriter(&buf)
		for _, e := range in {
			if err := mw.WriteEntry(e); err != nil {
				t.Fatalf("%s: WriteEntry: %v", name, err)
			}
		}
		if err := mw.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("%s: streamed document differs from EncodeMultistatus\nstreamed:\n%s\nwant:\n%s",
				name, buf.Bytes(), want)
		}
	}
}

// TestMultistatusWriterDecodes round-trips a streamed document through both
// decoders.
func TestMultistatusWriterDecodes(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	in := []Entry{
		{Href: "/store", Dir: true, ModTime: now},
		{Href: `/store/a&b`, Size: 42, ModTime: now},
	}
	var buf bytes.Buffer
	mw := NewMultistatusWriter(&buf)
	for _, e := range in {
		if err := mw.WriteEntry(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	for name, dec := range map[string]func() ([]Entry, error){
		"legacy": func() ([]Entry, error) { return DecodeMultistatus(buf.Bytes()) },
		"stream": func() ([]Entry, error) { return DecodeMultistatusStream(bytes.NewReader(buf.Bytes())) },
	} {
		got, err := dec()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(in) {
			t.Fatalf("%s: %d entries, want %d", name, len(got), len(in))
		}
		for i := range in {
			if got[i].Href != in[i].Href || got[i].Size != in[i].Size ||
				got[i].Dir != in[i].Dir || !got[i].ModTime.Equal(in[i].ModTime) {
				t.Fatalf("%s: entry %d = %+v, want %+v", name, i, got[i], in[i])
			}
		}
	}
}

// TestMultistatusWriterMisuse: writing after Close is an error, Close is
// idempotent.
func TestMultistatusWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	mw := NewMultistatusWriter(&buf)
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := mw.WriteEntry(Entry{Href: "/x"}); err == nil {
		t.Fatal("WriteEntry after Close succeeded")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeMultistatus([]byte("<<<<")); err == nil {
		t.Fatal("expected xml error")
	}
}

func TestDecodeEmptyDoc(t *testing.T) {
	body, err := EncodeMultistatus(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultistatus(body)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}
