// Package xrootd implements an XRootD-inspired binary data-access protocol,
// the HPC-specific baseline the paper compares davix against (§2.2, §3).
//
// Like the real XRootD, the protocol multiplexes concurrent requests over a
// single TCP connection using 16-bit stream identifiers (responses may
// arrive out of order), supports vectored reads (kXR_readv analogue), and
// the client offers an asynchronous sliding-window readahead — the feature
// the paper credits for XRootD's advantage on high-latency WAN links.
//
// The wire format is not byte-compatible with real XRootD; it reproduces
// the architectural properties the paper discusses (multiplexing, vectored
// and asynchronous I/O) with an independent, compact framing.
package xrootd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Magic opens the client handshake.
	Magic = 0x784f4f54 // "xROT"
	// Version is the protocol version exchanged at handshake.
	Version = 1
	// MaxFrame bounds a frame payload.
	MaxFrame = 64 << 20
)

// Request opcodes.
const (
	ReqLogin uint16 = iota + 1
	ReqOpen
	ReqStat
	ReqRead
	ReqReadV
	ReqClose
)

// Response status codes.
const (
	StatusOK uint16 = iota
	StatusNotFound
	StatusBadRequest
	StatusIOError
)

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("xrootd: frame exceeds MaxFrame")
	ErrBadHandshake  = errors.New("xrootd: bad handshake")
)

// requestHeader is the fixed 24-byte request frame header.
//
//	0:2   streamID
//	2:4   opcode
//	4:8   file handle
//	8:16  offset
//	16:20 length
//	20:24 payload length
type requestFrame struct {
	Stream  uint16
	Op      uint16
	Handle  uint32
	Offset  uint64
	Length  uint32
	Payload []byte
}

const reqHeaderLen = 24

func writeRequest(w io.Writer, f *requestFrame) error {
	if len(f.Payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [reqHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], f.Stream)
	binary.BigEndian.PutUint16(hdr[2:4], f.Op)
	binary.BigEndian.PutUint32(hdr[4:8], f.Handle)
	binary.BigEndian.PutUint64(hdr[8:16], f.Offset)
	binary.BigEndian.PutUint32(hdr[16:20], f.Length)
	binary.BigEndian.PutUint32(hdr[20:24], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

func readRequest(r io.Reader) (*requestFrame, error) {
	var hdr [reqHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	f := &requestFrame{
		Stream: binary.BigEndian.Uint16(hdr[0:2]),
		Op:     binary.BigEndian.Uint16(hdr[2:4]),
		Handle: binary.BigEndian.Uint32(hdr[4:8]),
		Offset: binary.BigEndian.Uint64(hdr[8:16]),
		Length: binary.BigEndian.Uint32(hdr[16:20]),
	}
	plen := binary.BigEndian.Uint32(hdr[20:24])
	if plen > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if plen > 0 {
		f.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// responseFrame is the fixed 8-byte response header plus payload.
//
//	0:2 streamID
//	2:4 status
//	4:8 payload length
type responseFrame struct {
	Stream  uint16
	Status  uint16
	Payload []byte
}

const respHeaderLen = 8

func writeResponse(w io.Writer, f *responseFrame) error {
	if len(f.Payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [respHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], f.Stream)
	binary.BigEndian.PutUint16(hdr[2:4], f.Status)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

func readResponse(r io.Reader) (*responseFrame, error) {
	var hdr [respHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	f := &responseFrame{
		Stream: binary.BigEndian.Uint16(hdr[0:2]),
		Status: binary.BigEndian.Uint16(hdr[2:4]),
	}
	plen := binary.BigEndian.Uint32(hdr[4:8])
	if plen > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if plen > 0 {
		f.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Chunk is one element of a vectored read (kXR_readv analogue).
type Chunk struct {
	// Handle identifies the open file.
	Handle uint32
	// Offset is the byte offset within the file.
	Offset int64
	// Length is the number of bytes to read.
	Length int32
}

const chunkWireLen = 16

// encodeChunks serializes a readv chunk list.
func encodeChunks(chunks []Chunk) []byte {
	buf := make([]byte, len(chunks)*chunkWireLen)
	for i, c := range chunks {
		base := i * chunkWireLen
		binary.BigEndian.PutUint32(buf[base:base+4], c.Handle)
		binary.BigEndian.PutUint64(buf[base+4:base+12], uint64(c.Offset))
		binary.BigEndian.PutUint32(buf[base+12:base+16], uint32(c.Length))
	}
	return buf
}

// decodeChunks parses a readv chunk list.
func decodeChunks(payload []byte) ([]Chunk, error) {
	if len(payload)%chunkWireLen != 0 {
		return nil, fmt.Errorf("xrootd: readv payload length %d not a multiple of %d", len(payload), chunkWireLen)
	}
	chunks := make([]Chunk, len(payload)/chunkWireLen)
	for i := range chunks {
		base := i * chunkWireLen
		chunks[i] = Chunk{
			Handle: binary.BigEndian.Uint32(payload[base : base+4]),
			Offset: int64(binary.BigEndian.Uint64(payload[base+4 : base+12])),
			Length: int32(binary.BigEndian.Uint32(payload[base+12 : base+16])),
		}
	}
	return chunks, nil
}

// statusErr converts a response status into an error.
func statusErr(status uint16, context string) error {
	switch status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return fmt.Errorf("xrootd: %s: %w", context, ErrNotFound)
	case StatusBadRequest:
		return fmt.Errorf("xrootd: %s: bad request", context)
	default:
		return fmt.Errorf("xrootd: %s: i/o error", context)
	}
}

// ErrNotFound reports a missing path, comparable with errors.Is.
var ErrNotFound = errors.New("not found")
