package xrootd

import (
	"context"
	"io"
	"sync"
)

// Readahead wraps a File with the sliding-window buffering algorithm the
// paper credits for XRootD's performance on high-latency links: while the
// caller consumes block N, blocks N+1..N+Depth are already being fetched
// asynchronously, so network round trips overlap with the application's
// processing instead of serializing with it.
type Readahead struct {
	file *File

	// BlockSize is the fetch granularity (default 512 KiB).
	blockSize int64
	// Depth is how many blocks ahead to prefetch (default 2).
	depth int

	mu     sync.Mutex
	blocks map[int64]*raBlock

	hits, misses int64
}

// raBlock is a block fetch in flight or completed.
type raBlock struct {
	ready chan struct{}
	data  []byte
	err   error
}

// NewReadahead wraps f. blockSize ≤ 0 selects 512 KiB; depth ≤ 0 selects 2.
// depth == 0 with an explicit negative blocksize is not special-cased; use
// DepthNone to disable prefetching for ablation runs.
func NewReadahead(f *File, blockSize int64, depth int) *Readahead {
	if blockSize <= 0 {
		blockSize = 512 << 10
	}
	if depth < 0 {
		depth = 2
	}
	return &Readahead{
		file:      f,
		blockSize: blockSize,
		depth:     depth,
		blocks:    make(map[int64]*raBlock),
	}
}

// DepthNone disables prefetching (pure demand paging), the ablation
// baseline showing where XRootD's WAN advantage comes from.
const DepthNone = 0

// Size returns the underlying file size.
func (r *Readahead) Size() int64 { return r.file.Size() }

// HitRate returns cache hits and misses so far.
func (r *Readahead) HitRate() (hits, misses int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// fetchBlock ensures the block starting at blockOff is being fetched and
// returns its record.
func (r *Readahead) fetchBlock(ctx context.Context, idx int64) *raBlock {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fetchBlockLocked(ctx, idx)
}

func (r *Readahead) fetchBlockLocked(ctx context.Context, idx int64) *raBlock {
	if b, ok := r.blocks[idx]; ok {
		return b
	}
	off := idx * r.blockSize
	length := r.blockSize
	if off+length > r.file.Size() {
		length = r.file.Size() - off
	}
	b := &raBlock{ready: make(chan struct{})}
	r.blocks[idx] = b
	if length <= 0 {
		b.err = io.EOF
		close(b.ready)
		return b
	}
	go func() {
		data := make([]byte, length)
		_, err := r.file.ReadAt(ctx, data, off)
		if err == io.EOF {
			err = nil
		}
		b.data, b.err = data, err
		close(b.ready)
	}()
	return b
}

// ReadAt serves p from the block cache, prefetching the next window. It is
// optimized for (mostly) sequential scans; random access still works but
// thrashes the window.
func (r *Readahead) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off >= r.file.Size() {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && off < r.file.Size() {
		idx := off / r.blockSize

		r.mu.Lock()
		_, cached := r.blocks[idx]
		if cached {
			r.hits++
		} else {
			r.misses++
		}
		b := r.fetchBlockLocked(ctx, idx)
		// Slide the window forward.
		last := (r.file.Size() - 1) / r.blockSize
		for d := int64(1); d <= int64(r.depth); d++ {
			if idx+d <= last {
				r.fetchBlockLocked(ctx, idx+d)
			}
		}
		// Evict blocks behind the current position beyond one block of
		// slack, bounding memory to roughly (depth+2) blocks.
		for k := range r.blocks {
			if k < idx-1 {
				delete(r.blocks, k)
			}
		}
		r.mu.Unlock()

		select {
		case <-b.ready:
		case <-ctx.Done():
			return total, ctx.Err()
		}
		if b.err != nil {
			return total, b.err
		}
		within := off - idx*r.blockSize
		if within >= int64(len(b.data)) {
			return total, io.EOF
		}
		n := copy(p[total:], b.data[within:])
		total += n
		off += int64(n)
	}
	if total < len(p) {
		return total, io.EOF
	}
	return total, nil
}
