package xrootd

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"godavix/internal/pool"
)

// This file implements the XRootD federation mechanism the paper contrasts
// with davix's Metalink approach (§2.4): "XRootD data servers can be
// federated hierarchically into a global virtual namespace. In case of
// unavailability of a resource in the closest data repository, the XRootD
// federation mechanism will locate a second available replica of this
// resource and redirect the client there."
//
// A Manager is the redirector node: clients send it Locate requests and
// get back the address of a live data server holding the path. A Cluster
// is the client-side wrapper that talks to the manager and transparently
// re-locates when its current data server fails.

// ReqLocate asks a manager for a data server holding the path in the
// payload; the response payload is the server address ("dpm1:1094").
const ReqLocate uint16 = 100

// ErrNoReplica is returned when no federated server holds the resource.
var ErrNoReplica = errors.New("xrootd: no live replica in federation")

// Manager is the federation redirector. It health-checks its data servers
// through the fabric and answers Locate requests with the first live
// server that can stat the requested path.
type Manager struct {
	dialer  pool.Dialer
	servers []string

	mu      sync.Mutex
	clients map[string]*Client
	health  map[string]managerHealth
	ttl     time.Duration

	locates int64
}

type managerHealth struct {
	alive bool
	at    time.Time
}

// NewManager creates a Manager federating the given data servers, probed
// through d. healthTTL bounds probe caching (0 selects 2s).
func NewManager(d pool.Dialer, servers []string, healthTTL time.Duration) *Manager {
	if healthTTL == 0 {
		healthTTL = 2 * time.Second
	}
	return &Manager{
		dialer:  d,
		servers: append([]string(nil), servers...),
		clients: make(map[string]*Client),
		health:  make(map[string]managerHealth),
		ttl:     healthTTL,
	}
}

// Locates reports how many Locate requests were answered.
func (m *Manager) Locates() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.locates
}

// clientFor returns (creating lazily) the manager's client for addr.
func (m *Manager) clientFor(addr string) *Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.clients[addr]
	if !ok {
		c = NewClient(m.dialer, addr)
		m.clients[addr] = c
	}
	return c
}

// locate returns the first live server holding path.
func (m *Manager) locate(ctx context.Context, path string) (string, error) {
	for _, addr := range m.servers {
		m.mu.Lock()
		h, ok := m.health[addr]
		fresh := ok && time.Since(h.at) < m.ttl
		m.mu.Unlock()
		if fresh && !h.alive {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, m.ttl)
		_, _, err := m.clientFor(addr).Stat(pctx, path)
		cancel()
		alive := err == nil || errors.Is(err, ErrNotFound)
		m.mu.Lock()
		m.health[addr] = managerHealth{alive: alive, at: time.Now()}
		m.mu.Unlock()
		if err == nil {
			return addr, nil
		}
	}
	return "", ErrNoReplica
}

// Serve accepts redirector connections on l.
func (m *Manager) Serve(l net.Listener) error {
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go m.serveConn(c)
	}
}

func (m *Manager) serveConn(c net.Conn) {
	defer c.Close()
	var hs [8]byte
	if _, err := io.ReadFull(c, hs[:]); err != nil {
		return
	}
	if binary.BigEndian.Uint32(hs[0:4]) != Magic {
		return
	}
	binary.BigEndian.PutUint32(hs[4:8], Version)
	if _, err := c.Write(hs[:]); err != nil {
		return
	}
	var wmu sync.Mutex
	for {
		req, err := readRequest(c)
		if err != nil {
			return
		}
		go func(req *requestFrame) {
			resp := &responseFrame{Stream: req.Stream, Status: StatusOK}
			switch req.Op {
			case ReqLogin:
				// accepted
			case ReqLocate:
				m.mu.Lock()
				m.locates++
				m.mu.Unlock()
				addr, err := m.locate(context.Background(), string(req.Payload))
				if err != nil {
					resp.Status = StatusNotFound
				} else {
					resp.Payload = []byte(addr)
				}
			default:
				// A redirector serves no data; point clients at Locate.
				resp.Status = StatusBadRequest
			}
			wmu.Lock()
			writeResponse(c, resp)
			wmu.Unlock()
		}(req)
	}
}

// Cluster is the client side of the federation: it asks the manager where
// a path lives, opens it on that data server, and transparently
// re-locates when the server dies — the behaviour the paper credits the
// XRootD federation with.
type Cluster struct {
	dialer  pool.Dialer
	manager *Client

	mu      sync.Mutex
	clients map[string]*Client
}

// NewCluster creates a Cluster using the manager at managerAddr.
func NewCluster(d pool.Dialer, managerAddr string) *Cluster {
	return &Cluster{
		dialer:  d,
		manager: NewClient(d, managerAddr),
		clients: make(map[string]*Client),
	}
}

// Close shuts down the manager connection and every data-server client.
func (cl *Cluster) Close() {
	cl.manager.Close()
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, c := range cl.clients {
		c.Close()
	}
}

func (cl *Cluster) clientFor(addr string) *Client {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	c, ok := cl.clients[addr]
	if !ok {
		c = NewClient(cl.dialer, addr)
		cl.clients[addr] = c
	}
	return c
}

// Locate asks the manager for a live server holding path.
func (cl *Cluster) Locate(ctx context.Context, path string) (string, error) {
	resp, err := cl.manager.call(ctx, &requestFrame{Op: ReqLocate, Payload: []byte(path)})
	if err != nil {
		return "", err
	}
	if resp.Status != StatusOK {
		return "", fmt.Errorf("locate %s: %w", path, ErrNoReplica)
	}
	return string(resp.Payload), nil
}

// ClusterFile is a federated file handle that re-locates on failure.
type ClusterFile struct {
	cluster *Cluster
	path    string

	mu   sync.Mutex
	addr string
	file *File
}

// Open locates and opens path somewhere in the federation.
func (cl *Cluster) Open(ctx context.Context, path string) (*ClusterFile, error) {
	cf := &ClusterFile{cluster: cl, path: path}
	if err := cf.relocate(ctx); err != nil {
		return nil, err
	}
	return cf, nil
}

// relocate (re)binds the handle to a live data server.
func (cf *ClusterFile) relocate(ctx context.Context) error {
	addr, err := cf.cluster.Locate(ctx, cf.path)
	if err != nil {
		return err
	}
	f, err := cf.cluster.clientFor(addr).Open(ctx, cf.path)
	if err != nil {
		return err
	}
	cf.mu.Lock()
	cf.addr, cf.file = addr, f
	cf.mu.Unlock()
	return nil
}

// Server returns the data server currently bound.
func (cf *ClusterFile) Server() string {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.addr
}

// Size returns the file size.
func (cf *ClusterFile) Size() int64 {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.file.Size()
}

// ReadAt reads at off, re-locating once if the bound server fails.
func (cf *ClusterFile) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	cf.mu.Lock()
	f := cf.file
	cf.mu.Unlock()
	n, err := f.ReadAt(ctx, p, off)
	if err == nil || err == io.EOF || errors.Is(err, context.Canceled) {
		return n, err
	}
	// The data server died: ask the manager for another replica.
	if rerr := cf.relocate(ctx); rerr != nil {
		return 0, errors.Join(err, rerr)
	}
	cf.mu.Lock()
	f = cf.file
	cf.mu.Unlock()
	return f.ReadAt(ctx, p, off)
}
