package xrootd

// EncodeChunksForTest and DecodeChunksForTest expose the readv chunk codec
// for the repository-level benchmarks.
func EncodeChunksForTest(chunks []Chunk) []byte { return encodeChunks(chunks) }

// DecodeChunksForTest parses a readv chunk list.
func DecodeChunksForTest(payload []byte) ([]Chunk, error) { return decodeChunks(payload) }
