package xrootd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"godavix/internal/storage"
)

// Server serves the xrootd-like protocol over a storage.Store. Each
// connection carries multiplexed streams: requests are handled
// concurrently and responses are written in completion order, tagged with
// the request's stream ID — the multiplexing that classic HTTP/1.1 lacks
// (paper Figure 1, right side).
type Server struct {
	store storage.Store

	requests atomic.Int64
	reads    atomic.Int64
	readvs   atomic.Int64
}

// NewServer creates a Server over store.
func NewServer(store storage.Store) *Server {
	return &Server{store: store}
}

// Requests reports the total number of requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

// Reads reports how many single-read requests were served.
func (s *Server) Reads() int64 { return s.reads.Load() }

// ReadVs reports how many vectored-read requests were served.
func (s *Server) ReadVs() int64 { return s.readvs.Load() }

// Serve accepts connections on l until it is closed.
func (s *Server) Serve(l net.Listener) error {
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(c)
	}
}

// session is per-connection state: the open file handle table.
type session struct {
	mu       sync.Mutex
	nextFH   uint32
	handles  map[uint32]string // handle -> path
	loggedIn bool
}

func (s *Server) serveConn(c net.Conn) {
	defer c.Close()

	// Handshake: 8 bytes magic+version, echoed with the server version.
	var hs [8]byte
	if _, err := io.ReadFull(c, hs[:]); err != nil {
		return
	}
	if binary.BigEndian.Uint32(hs[0:4]) != Magic {
		return
	}
	binary.BigEndian.PutUint32(hs[0:4], Magic)
	binary.BigEndian.PutUint32(hs[4:8], Version)
	if _, err := c.Write(hs[:]); err != nil {
		return
	}

	sess := &session{nextFH: 1, handles: make(map[uint32]string)}
	br := bufio.NewReaderSize(c, 64<<10)
	var wmu sync.Mutex // serializes response frames
	var wg sync.WaitGroup
	defer wg.Wait()

	send := func(resp *responseFrame) {
		wmu.Lock()
		defer wmu.Unlock()
		writeResponse(c, resp)
	}

	for {
		req, err := readRequest(br)
		if err != nil {
			return
		}
		s.requests.Add(1)
		// Handle each request concurrently: a slow request must not block
		// responses for later ones (no head-of-line blocking).
		wg.Add(1)
		go func(req *requestFrame) {
			defer wg.Done()
			send(s.handle(sess, req))
		}(req)
	}
}

func (s *Server) handle(sess *session, req *requestFrame) *responseFrame {
	resp := &responseFrame{Stream: req.Stream, Status: StatusOK}
	if req.Op != ReqLogin {
		sess.mu.Lock()
		authed := sess.loggedIn
		sess.mu.Unlock()
		if !authed {
			resp.Status = StatusBadRequest
			return resp
		}
	}
	switch req.Op {
	case ReqLogin:
		sess.mu.Lock()
		sess.loggedIn = true
		sess.mu.Unlock()

	case ReqOpen:
		path := string(req.Payload)
		data, inf, err := s.store.Get(path)
		if err != nil {
			resp.Status = storeStatus(err)
			return resp
		}
		_ = data
		sess.mu.Lock()
		fh := sess.nextFH
		sess.nextFH++
		sess.handles[fh] = path
		sess.mu.Unlock()
		resp.Payload = make([]byte, 12)
		binary.BigEndian.PutUint32(resp.Payload[0:4], fh)
		binary.BigEndian.PutUint64(resp.Payload[4:12], uint64(inf.Size))

	case ReqStat:
		inf, err := s.store.Stat(string(req.Payload))
		if err != nil {
			resp.Status = storeStatus(err)
			return resp
		}
		resp.Payload = make([]byte, 9)
		binary.BigEndian.PutUint64(resp.Payload[0:8], uint64(inf.Size))
		if inf.Dir {
			resp.Payload[8] = 1
		}

	case ReqRead:
		s.reads.Add(1)
		path, ok := sess.path(req.Handle)
		if !ok {
			resp.Status = StatusBadRequest
			return resp
		}
		data, _, err := s.store.Get(path)
		if err != nil {
			resp.Status = storeStatus(err)
			return resp
		}
		resp.Payload = sliceRange(data, int64(req.Offset), int64(req.Length))

	case ReqReadV:
		s.readvs.Add(1)
		chunks, err := decodeChunks(req.Payload)
		if err != nil {
			resp.Status = StatusBadRequest
			return resp
		}
		var total int
		for _, ck := range chunks {
			total += int(ck.Length)
		}
		if total > MaxFrame {
			resp.Status = StatusBadRequest
			return resp
		}
		out := make([]byte, 0, total)
		// One store lookup per distinct handle, not per chunk.
		byHandle := make(map[uint32][]byte, 1)
		for _, ck := range chunks {
			data, ok := byHandle[ck.Handle]
			if !ok {
				path, okP := sess.path(ck.Handle)
				if !okP {
					resp.Status = StatusBadRequest
					return resp
				}
				var err error
				data, _, err = s.store.Get(path)
				if err != nil {
					resp.Status = storeStatus(err)
					return resp
				}
				byHandle[ck.Handle] = data
			}
			part := sliceRange(data, ck.Offset, int64(ck.Length))
			if int64(len(part)) < int64(ck.Length) {
				resp.Status = StatusBadRequest
				return resp
			}
			out = append(out, part...)
		}
		resp.Payload = out

	case ReqClose:
		sess.mu.Lock()
		delete(sess.handles, req.Handle)
		sess.mu.Unlock()

	default:
		resp.Status = StatusBadRequest
	}
	return resp
}

func (sess *session) path(fh uint32) (string, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	p, ok := sess.handles[fh]
	return p, ok
}

func storeStatus(err error) uint16 {
	if errors.Is(err, storage.ErrNotFound) {
		return StatusNotFound
	}
	if errors.Is(err, storage.ErrIsDir) || errors.Is(err, storage.ErrNotDir) {
		return StatusBadRequest
	}
	return StatusIOError
}

// sliceRange returns data[off:off+length] clamped to the data size.
func sliceRange(data []byte, off, length int64) []byte {
	if off >= int64(len(data)) || off < 0 {
		return nil
	}
	end := off + length
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[off:end]
}
