package xrootd

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"godavix/internal/netsim"
	"godavix/internal/storage"
)

// fedEnv: two data servers + a manager on one fabric.
type fedTestEnv struct {
	net     *netsim.Network
	stores  map[string]*storage.MemStore
	manager *Manager
}

func newFedTestEnv(t *testing.T, servers ...string) *fedTestEnv {
	t.Helper()
	e := &fedTestEnv{
		net:    netsim.New(netsim.Ideal()),
		stores: map[string]*storage.MemStore{},
	}
	for _, addr := range servers {
		st := storage.NewMemStore()
		srv := NewServer(st)
		l, err := e.net.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go srv.Serve(l)
		e.stores[addr] = st
	}
	e.manager = NewManager(e.net, servers, 20*time.Millisecond)
	ml, err := e.net.Listen("mgr:1094")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ml.Close() })
	go e.manager.Serve(ml)
	return e
}

func TestClusterLocateAndRead(t *testing.T) {
	e := newFedTestEnv(t, "ds1:1094", "ds2:1094")
	blob := make([]byte, 8192)
	rand.New(rand.NewSource(1)).Read(blob)
	e.stores["ds1:1094"].Put("/f", blob)
	e.stores["ds2:1094"].Put("/f", blob)

	cl := NewCluster(e.net, "mgr:1094")
	defer cl.Close()
	ctx := context.Background()

	f, err := cl.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if f.Server() != "ds1:1094" {
		t.Fatalf("bound to %s, want first server", f.Server())
	}
	if f.Size() != 8192 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 100)
	if _, err := f.ReadAt(ctx, buf, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blob[500:600]) {
		t.Fatal("content mismatch")
	}
	if e.manager.Locates() != 1 {
		t.Fatalf("locates = %d", e.manager.Locates())
	}
}

func TestClusterLocatesHolderOnly(t *testing.T) {
	e := newFedTestEnv(t, "ds1:1094", "ds2:1094")
	// Only ds2 holds the file.
	e.stores["ds2:1094"].Put("/only2", []byte("here"))

	cl := NewCluster(e.net, "mgr:1094")
	defer cl.Close()
	f, err := cl.Open(context.Background(), "/only2")
	if err != nil {
		t.Fatal(err)
	}
	if f.Server() != "ds2:1094" {
		t.Fatalf("bound to %s", f.Server())
	}
}

func TestClusterFailoverOnServerDeath(t *testing.T) {
	e := newFedTestEnv(t, "ds1:1094", "ds2:1094")
	blob := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(blob)
	e.stores["ds1:1094"].Put("/f", blob)
	e.stores["ds2:1094"].Put("/f", blob)

	cl := NewCluster(e.net, "mgr:1094")
	defer cl.Close()
	ctx := context.Background()
	f, err := cl.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}

	// Kill the bound server mid-session.
	e.net.SetDown("ds1:1094", true)
	time.Sleep(25 * time.Millisecond) // manager health cache expiry

	buf := make([]byte, 256)
	if _, err := f.ReadAt(ctx, buf, 1024); err != nil {
		t.Fatalf("federated failover read: %v", err)
	}
	if !bytes.Equal(buf, blob[1024:1280]) {
		t.Fatal("failover content mismatch")
	}
	if f.Server() != "ds2:1094" {
		t.Fatalf("rebound to %s, want ds2", f.Server())
	}
}

func TestClusterNoReplicaAnywhere(t *testing.T) {
	e := newFedTestEnv(t, "ds1:1094")
	cl := NewCluster(e.net, "mgr:1094")
	defer cl.Close()
	_, err := cl.Open(context.Background(), "/ghost")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v", err)
	}
}

func TestClusterAllServersDead(t *testing.T) {
	e := newFedTestEnv(t, "ds1:1094", "ds2:1094")
	blob := []byte("data")
	e.stores["ds1:1094"].Put("/f", blob)
	e.stores["ds2:1094"].Put("/f", blob)

	cl := NewCluster(e.net, "mgr:1094")
	defer cl.Close()
	ctx := context.Background()
	f, err := cl.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	e.net.SetDown("ds1:1094", true)
	e.net.SetDown("ds2:1094", true)
	time.Sleep(25 * time.Millisecond)
	if _, err := f.ReadAt(ctx, make([]byte, 4), 0); err == nil {
		t.Fatal("read succeeded with every server dead")
	}
}

func TestManagerRefusesDataOps(t *testing.T) {
	e := newFedTestEnv(t, "ds1:1094")
	e.stores["ds1:1094"].Put("/f", []byte("x"))
	// Talk to the manager as if it were a data server.
	c := NewClient(e.net, "mgr:1094")
	defer c.Close()
	if _, err := c.Open(context.Background(), "/f"); err == nil {
		t.Fatal("manager served an Open")
	}
}
