package xrootd

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"godavix/internal/netsim"
	"godavix/internal/storage"
)

type env struct {
	net    *netsim.Network
	store  *storage.MemStore
	server *Server
	client *Client
}

func newEnv(t *testing.T, prof netsim.Profile) *env {
	t.Helper()
	e := &env{
		net:   netsim.New(prof),
		store: storage.NewMemStore(),
	}
	e.server = NewServer(e.store)
	l, err := e.net.Listen("xrd:1094")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go e.server.Serve(l)
	e.client = NewClient(e.net, "xrd:1094")
	t.Cleanup(func() { e.client.Close() })
	return e
}

func TestFrameRoundTrip(t *testing.T) {
	prop := func(stream, op uint16, handle uint32, offset uint64, length uint32, payload []byte) bool {
		var buf bytes.Buffer
		in := &requestFrame{Stream: stream, Op: op, Handle: handle, Offset: offset, Length: length, Payload: payload}
		if err := writeRequest(&buf, in); err != nil {
			return false
		}
		out, err := readRequest(&buf)
		if err != nil {
			return false
		}
		return out.Stream == stream && out.Op == op && out.Handle == handle &&
			out.Offset == offset && out.Length == length && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseFrameRoundTrip(t *testing.T) {
	prop := func(stream, status uint16, payload []byte) bool {
		var buf bytes.Buffer
		if err := writeResponse(&buf, &responseFrame{Stream: stream, Status: status, Payload: payload}); err != nil {
			return false
		}
		out, err := readResponse(&buf)
		if err != nil {
			return false
		}
		return out.Stream == stream && out.Status == status && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkCodecRoundTrip(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		chunks := make([]Chunk, int(n%64)+1)
		for i := range chunks {
			chunks[i] = Chunk{Handle: r.Uint32(), Offset: r.Int63(), Length: r.Int31()}
		}
		got, err := decodeChunks(encodeChunks(chunks))
		if err != nil || len(got) != len(chunks) {
			return false
		}
		for i := range chunks {
			if got[i] != chunks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeChunks(make([]byte, 7)); err == nil {
		t.Fatal("odd-length payload accepted")
	}
}

func TestOpenStatReadClose(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	blob := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(blob)
	e.store.Put("/store/f", blob)
	ctx := context.Background()

	size, dir, err := e.client.Stat(ctx, "/store/f")
	if err != nil || size != 4096 || dir {
		t.Fatalf("stat = %d %v %v", size, dir, err)
	}

	f, err := e.client.Open(ctx, "/store/f")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4096 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 100)
	if _, err := f.ReadAt(ctx, buf, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blob[1000:1100]) {
		t.Fatal("read content mismatch")
	}
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Read on a closed handle fails.
	if _, err := f.ReadAt(ctx, buf, 0); err == nil {
		t.Fatal("read after close succeeded")
	}
}

func TestOpenMissing(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	_, err := e.client.Open(context.Background(), "/none")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	_, _, err = e.client.Stat(context.Background(), "/none")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat err = %v", err)
	}
}

func TestReadAtEOF(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	e.store.Put("/f", []byte("abc"))
	ctx := context.Background()
	f, err := e.client.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(ctx, make([]byte, 1), 10); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
	n, err := f.ReadAt(ctx, make([]byte, 10), 1)
	if n != 2 || err != io.EOF {
		t.Fatalf("partial: n=%d err=%v", n, err)
	}
}

func TestReadVScattersChunks(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	blob := make([]byte, 64<<10)
	rand.New(rand.NewSource(2)).Read(blob)
	e.store.Put("/f", blob)
	ctx := context.Background()

	f, err := e.client.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	chunks := make([]Chunk, 100)
	dsts := make([][]byte, len(chunks))
	for i := range chunks {
		off := rng.Int63n(int64(len(blob) - 256))
		chunks[i] = Chunk{Offset: off, Length: int32(rng.Intn(255) + 1)}
		dsts[i] = make([]byte, chunks[i].Length)
	}
	if err := f.ReadV(ctx, chunks, dsts); err != nil {
		t.Fatal(err)
	}
	for i, ck := range chunks {
		if !bytes.Equal(dsts[i], blob[ck.Offset:ck.Offset+int64(ck.Length)]) {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
	if e.server.ReadVs() != 1 {
		t.Fatalf("server readv count = %d, want 1", e.server.ReadVs())
	}
}

// TestMultiplexingOutOfOrder: a slow request must not block a fast one
// issued later on the same connection — the anti-HOL property of Figure 1.
func TestMultiplexingOutOfOrder(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	// Big payload (slow under bandwidth shaping) and a tiny one.
	big := make([]byte, 8<<20)
	e.store.Put("/big", big)
	e.store.Put("/small", []byte("s"))
	ctx := context.Background()

	fb, err := e.client.Open(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := e.client.Open(ctx, "/small")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	bigDone := make(chan time.Time, 1)
	smallDone := make(chan time.Time, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		buf := make([]byte, len(big))
		if _, err := fb.ReadAt(ctx, buf, 0); err != nil {
			t.Error(err)
		}
		bigDone <- time.Now()
	}()
	time.Sleep(2 * time.Millisecond) // let the big request hit the wire first
	go func() {
		defer wg.Done()
		if _, err := fs.ReadAt(ctx, make([]byte, 1), 0); err != nil {
			t.Error(err)
		}
		smallDone <- time.Now()
	}()
	wg.Wait()
	// Both succeeded on one connection.
	if e.net.Dials() != 1 {
		t.Fatalf("dials = %d, want 1 (single multiplexed conn)", e.net.Dials())
	}
	_ = <-bigDone
	_ = <-smallDone
}

func TestConcurrentRequestsSingleConnection(t *testing.T) {
	e := newEnv(t, netsim.Profile{RTT: time.Millisecond})
	blob := make([]byte, 32<<10)
	rand.New(rand.NewSource(4)).Read(blob)
	e.store.Put("/f", blob)
	ctx := context.Background()

	f, err := e.client.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * 1000
			buf := make([]byte, 100)
			if _, err := f.ReadAt(ctx, buf, off); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if !bytes.Equal(buf, blob[off:off+100]) {
				t.Errorf("read %d content mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	if e.net.Dials() != 1 {
		t.Fatalf("dials = %d, want 1", e.net.Dials())
	}
}

func TestServerDownGivesError(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	e.store.Put("/f", []byte("x"))
	ctx := context.Background()
	f, err := e.client.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	e.net.SetDown("xrd:1094", true)
	if _, err := f.ReadAt(ctx, make([]byte, 1), 0); err == nil {
		t.Fatal("expected error after server death")
	}
	// Recovery: server back up, client reconnects lazily.
	e.net.SetDown("xrd:1094", false)
	f2, err := e.client.Open(ctx, "/f")
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if _, err := f2.ReadAt(ctx, make([]byte, 1), 0); err != nil {
		t.Fatalf("read after reconnect: %v", err)
	}
}

func TestContextCancelDuringCall(t *testing.T) {
	e := newEnv(t, netsim.Profile{RTT: 200 * time.Millisecond})
	e.store.Put("/f", []byte("x"))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.client.Open(ctx, "/f")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadaheadSequentialScan(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	blob := make([]byte, 300<<10)
	rand.New(rand.NewSource(5)).Read(blob)
	e.store.Put("/f", blob)
	ctx := context.Background()

	f, err := e.client.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReadahead(f, 64<<10, 2)
	out := make([]byte, 0, len(blob))
	buf := make([]byte, 10_000)
	var off int64
	for {
		n, err := ra.ReadAt(ctx, buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out, blob) {
		t.Fatal("sequential scan content mismatch")
	}
	hits, misses := ra.HitRate()
	if hits == 0 || misses == 0 {
		t.Fatalf("hit/miss = %d/%d; prefetch not exercised", hits, misses)
	}
}

func TestReadaheadRandomAccessCorrect(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	blob := make([]byte, 128<<10)
	rand.New(rand.NewSource(6)).Read(blob)
	e.store.Put("/f", blob)
	ctx := context.Background()

	f, _ := e.client.Open(ctx, "/f")
	ra := NewReadahead(f, 16<<10, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		off := rng.Int63n(int64(len(blob) - 100))
		buf := make([]byte, 100)
		if _, err := ra.ReadAt(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blob[off:off+100]) {
			t.Fatalf("random read %d mismatch at %d", i, off)
		}
	}
}

func TestReadaheadDepthNoneStillCorrect(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	blob := make([]byte, 64<<10)
	rand.New(rand.NewSource(8)).Read(blob)
	e.store.Put("/f", blob)
	ctx := context.Background()

	f, _ := e.client.Open(ctx, "/f")
	ra := NewReadahead(f, 16<<10, DepthNone)
	buf := make([]byte, len(blob))
	if _, err := ra.ReadAt(ctx, buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blob) {
		t.Fatal("content mismatch without prefetch")
	}
}

// TestReadaheadCrossBlockRead verifies reads spanning block boundaries.
func TestReadaheadCrossBlockRead(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	blob := make([]byte, 40_000)
	rand.New(rand.NewSource(9)).Read(blob)
	e.store.Put("/f", blob)
	ctx := context.Background()

	f, _ := e.client.Open(ctx, "/f")
	ra := NewReadahead(f, 10_000, 1)
	buf := make([]byte, 25_000)
	if _, err := ra.ReadAt(ctx, buf, 5_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blob[5_000:30_000]) {
		t.Fatal("cross-block read mismatch")
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	c, err := e.net.Dial("xrd:1094")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("GET / HTTP/1.1\r\n"))
	// Server must close the connection without a handshake reply.
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := io.ReadFull(c, buf); err == nil {
		t.Fatal("server answered a garbage handshake")
	}
}

// TestLoginRequired: data operations before login are refused.
func TestLoginRequired(t *testing.T) {
	e := newEnv(t, netsim.Ideal())
	e.store.Put("/f", []byte("x"))
	c, err := e.net.Dial("xrd:1094")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hs [8]byte
	binaryBigEndianPutUint32(hs[0:4], Magic)
	binaryBigEndianPutUint32(hs[4:8], Version)
	c.Write(hs[:])
	io.ReadFull(c, hs[:])
	// Stat without login.
	writeRequest(c, &requestFrame{Stream: 1, Op: ReqStat, Payload: []byte("/f")})
	resp, err := readResponse(c)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBadRequest {
		t.Fatalf("unauthenticated stat status = %d", resp.Status)
	}
}

func binaryBigEndianPutUint32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
