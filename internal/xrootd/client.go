package xrootd

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"godavix/internal/pool"
)

// Client speaks the xrootd-like protocol to one server over a single
// multiplexed connection. Concurrent requests are tagged with stream IDs
// and may complete out of order — the "modern multiplexing" of the paper's
// Figure 1 that plain HTTP/1.1 pipelining cannot provide.
//
// A Client is safe for concurrent use.
type Client struct {
	dialer pool.Dialer
	addr   string

	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	wmu     sync.Mutex // serializes frame writes
	pending map[uint16]chan *responseFrame
	nextSID uint16
	connErr error
	closed  bool

	requests int64
}

// NewClient creates a Client for the server at addr, dialing through d.
// The connection is established lazily on first use.
func NewClient(d pool.Dialer, addr string) *Client {
	return &Client{dialer: d, addr: addr, pending: make(map[uint16]chan *responseFrame)}
}

// Requests reports how many requests this client has issued.
func (c *Client) Requests() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests
}

// connect establishes and handshakes the connection if needed.
// Caller must NOT hold c.mu.
func (c *Client) connect(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("xrootd: client closed")
	}
	if c.conn != nil {
		return c.connErr
	}
	nc, err := c.dialer.DialContext(ctx, c.addr)
	if err != nil {
		return err
	}
	var hs [8]byte
	binary.BigEndian.PutUint32(hs[0:4], Magic)
	binary.BigEndian.PutUint32(hs[4:8], Version)
	if _, err := nc.Write(hs[:]); err != nil {
		nc.Close()
		return err
	}
	if _, err := io.ReadFull(nc, hs[:]); err != nil {
		nc.Close()
		return fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if binary.BigEndian.Uint32(hs[0:4]) != Magic {
		nc.Close()
		return ErrBadHandshake
	}
	c.conn = nc
	c.bw = bufio.NewWriterSize(nc, 64<<10)
	c.connErr = nil
	go c.readLoop(nc)

	// Login on the fresh connection (stream 0 is reserved for it here).
	ch := make(chan *responseFrame, 1)
	c.pending[0] = ch
	c.requests++
	c.wmu.Lock()
	err = writeRequest(c.bw, &requestFrame{Stream: 0, Op: ReqLogin, Payload: []byte("godavix")})
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.teardownLocked(err)
		return err
	}
	c.mu.Unlock()
	resp, ok := <-ch
	c.mu.Lock()
	if !ok {
		return c.connErr
	}
	return statusErr(resp.Status, "login")
}

// readLoop dispatches inbound frames to their pending stream channels.
func (c *Client) readLoop(nc net.Conn) {
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		resp, err := readResponse(br)
		if err != nil {
			c.mu.Lock()
			// Only tear down if this loop's connection is still current;
			// a reconnect may already have replaced it.
			if c.conn == nc {
				c.teardownLocked(err)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Stream]
		if ok {
			delete(c.pending, resp.Stream)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// teardownLocked fails all pending requests and drops the connection.
// Caller holds c.mu.
func (c *Client) teardownLocked(err error) {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	c.connErr = err
	for sid, ch := range c.pending {
		close(ch)
		delete(c.pending, sid)
	}
}

// call sends one request and waits for its response.
func (c *Client) call(ctx context.Context, req *requestFrame) (*responseFrame, error) {
	if err := c.connect(ctx); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.conn == nil {
		err := c.connErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("xrootd: connection lost")
		}
		return nil, err
	}
	// Allocate a stream ID not currently pending.
	for {
		c.nextSID++
		if c.nextSID == 0 {
			c.nextSID = 1
		}
		if _, busy := c.pending[c.nextSID]; !busy {
			break
		}
	}
	sid := c.nextSID
	req.Stream = sid
	ch := make(chan *responseFrame, 1)
	c.pending[sid] = ch
	c.requests++
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeRequest(c.bw, req)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		c.teardownLocked(err)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.connErr
			c.mu.Unlock()
			return nil, fmt.Errorf("xrootd: connection lost: %w", err)
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, sid)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Stat returns the size of path and whether it is a directory.
func (c *Client) Stat(ctx context.Context, path string) (size int64, dir bool, err error) {
	resp, err := c.call(ctx, &requestFrame{Op: ReqStat, Payload: []byte(path)})
	if err != nil {
		return 0, false, err
	}
	if err := statusErr(resp.Status, "stat "+path); err != nil {
		return 0, false, err
	}
	if len(resp.Payload) < 9 {
		return 0, false, errors.New("xrootd: short stat response")
	}
	return int64(binary.BigEndian.Uint64(resp.Payload[0:8])), resp.Payload[8] == 1, nil
}

// File is an open remote file handle.
type File struct {
	client *Client
	handle uint32
	size   int64
	path   string
}

// Open opens path for reading.
func (c *Client) Open(ctx context.Context, path string) (*File, error) {
	resp, err := c.call(ctx, &requestFrame{Op: ReqOpen, Payload: []byte(path)})
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp.Status, "open "+path); err != nil {
		return nil, err
	}
	if len(resp.Payload) < 12 {
		return nil, errors.New("xrootd: short open response")
	}
	return &File{
		client: c,
		handle: binary.BigEndian.Uint32(resp.Payload[0:4]),
		size:   int64(binary.BigEndian.Uint64(resp.Payload[4:12])),
		path:   path,
	}, nil
}

// Size returns the file size at open time.
func (f *File) Size() int64 { return f.size }

// Path returns the remote path.
func (f *File) Path() string { return f.path }

// ReadAt reads len(p) bytes at offset off.
func (f *File) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off >= f.size {
		return 0, io.EOF
	}
	resp, err := f.client.call(ctx, &requestFrame{
		Op:     ReqRead,
		Handle: f.handle,
		Offset: uint64(off),
		Length: uint32(len(p)),
	})
	if err != nil {
		return 0, err
	}
	if err := statusErr(resp.Status, "read "+f.path); err != nil {
		return 0, err
	}
	n := copy(p, resp.Payload)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// ReadV performs a vectored read: each chunk's bytes are written into the
// matching dsts buffer. One request, one response, any number of chunks —
// the kXR_readv analogue.
func (f *File) ReadV(ctx context.Context, chunks []Chunk, dsts [][]byte) error {
	done := f.ReadVAsync(ctx, chunks, dsts)
	return <-done
}

// ReadVAsync issues the vectored read without waiting: the returned
// channel yields the single completion error. This is the hook the
// sliding-window/TreeCache prefetch uses to overlap network latency with
// computation, which the paper identifies as XRootD's WAN advantage.
func (f *File) ReadVAsync(ctx context.Context, chunks []Chunk, dsts [][]byte) <-chan error {
	done := make(chan error, 1)
	if len(chunks) != len(dsts) {
		done <- fmt.Errorf("xrootd: %d chunks but %d buffers", len(chunks), len(dsts))
		return done
	}
	for i := range chunks {
		chunks[i].Handle = f.handle
		if int64(len(dsts[i])) < int64(chunks[i].Length) {
			done <- fmt.Errorf("xrootd: buffer %d too small", i)
			return done
		}
	}
	go func() {
		resp, err := f.client.call(ctx, &requestFrame{
			Op:      ReqReadV,
			Handle:  f.handle,
			Payload: encodeChunks(chunks),
		})
		if err != nil {
			done <- err
			return
		}
		if err := statusErr(resp.Status, "readv "+f.path); err != nil {
			done <- err
			return
		}
		off := 0
		for i, ck := range chunks {
			if off+int(ck.Length) > len(resp.Payload) {
				done <- errors.New("xrootd: short readv response")
				return
			}
			copy(dsts[i][:ck.Length], resp.Payload[off:off+int(ck.Length)])
			off += int(ck.Length)
		}
		done <- nil
	}()
	return done
}

// Close releases the remote handle.
func (f *File) Close(ctx context.Context) error {
	resp, err := f.client.call(ctx, &requestFrame{Op: ReqClose, Handle: f.handle})
	if err != nil {
		return err
	}
	return statusErr(resp.Status, "close "+f.path)
}

// Close shuts the client connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.teardownLocked(errors.New("xrootd: client closed"))
	return nil
}
