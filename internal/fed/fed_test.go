package fed

import (
	"context"
	"testing"
	"time"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/netsim"
	"godavix/internal/storage"
)

type env struct {
	net    *netsim.Network
	client *core.Client
	stores map[string]*storage.MemStore
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{net: netsim.New(netsim.Ideal()), stores: map[string]*storage.MemStore{}}
	c, err := core.NewClient(core.Options{Dialer: e.net, Strategy: core.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	e.client = c
	return e
}

func (e *env) startServer(t *testing.T, addr string) *httpserv.Server {
	t.Helper()
	st := storage.NewMemStore()
	srv := httpserv.New(st, httpserv.Options{})
	l, err := e.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	e.stores[addr] = st
	return srv
}

func TestMetalinkListsLiveReplicasInPriorityOrder(t *testing.T) {
	e := newEnv(t)
	e.startServer(t, "dpm1:80")
	e.startServer(t, "dpm2:80")
	e.stores["dpm1:80"].Put("/store/f", []byte("data!"))
	e.stores["dpm2:80"].Put("/store/f", []byte("data!"))

	f := New(e.client, []Endpoint{
		{Host: "dpm2:80", Priority: 2},
		{Host: "dpm1:80", Priority: 1},
	}, Options{})

	ml := f.MetalinkFor("/store/f")
	if ml == nil {
		t.Fatal("no metalink")
	}
	if len(ml.URLs) != 2 {
		t.Fatalf("urls = %+v", ml.URLs)
	}
	if ml.URLs[0].Loc != "http://dpm1:80/store/f" {
		t.Fatalf("priority order wrong: %+v", ml.URLs)
	}
	if ml.Size != 5 || ml.Checksum == "" {
		t.Fatalf("metadata: size=%d checksum=%q", ml.Size, ml.Checksum)
	}
}

func TestMetalinkSkipsDeadEndpoint(t *testing.T) {
	e := newEnv(t)
	e.startServer(t, "dpm1:80")
	e.startServer(t, "dpm2:80")
	e.stores["dpm1:80"].Put("/f", []byte("x"))
	e.stores["dpm2:80"].Put("/f", []byte("x"))
	e.net.SetDown("dpm1:80", true)

	f := New(e.client, []Endpoint{
		{Host: "dpm1:80", Priority: 1},
		{Host: "dpm2:80", Priority: 2},
	}, Options{})
	ml := f.MetalinkFor("/f")
	if ml == nil || len(ml.URLs) != 1 || ml.URLs[0].Loc != "http://dpm2:80/f" {
		t.Fatalf("metalink = %+v", ml)
	}
}

func TestMetalinkSkipsEndpointWithoutReplica(t *testing.T) {
	e := newEnv(t)
	e.startServer(t, "dpm1:80")
	e.startServer(t, "dpm2:80")
	e.stores["dpm2:80"].Put("/f", []byte("x")) // only dpm2 holds it

	f := New(e.client, []Endpoint{
		{Host: "dpm1:80", Priority: 1},
		{Host: "dpm2:80", Priority: 2},
	}, Options{})
	ml := f.MetalinkFor("/f")
	if ml == nil || len(ml.URLs) != 1 || ml.URLs[0].Loc != "http://dpm2:80/f" {
		t.Fatalf("metalink = %+v", ml)
	}
}

func TestMetalinkNilWhenNowhere(t *testing.T) {
	e := newEnv(t)
	e.startServer(t, "dpm1:80")
	f := New(e.client, []Endpoint{{Host: "dpm1:80", Priority: 1}}, Options{})
	if ml := f.MetalinkFor("/ghost"); ml != nil {
		t.Fatalf("metalink = %+v", ml)
	}
}

func TestPrefixMapping(t *testing.T) {
	e := newEnv(t)
	e.startServer(t, "dpm1:80")
	e.stores["dpm1:80"].Put("/pool1/data/f", []byte("x"))

	f := New(e.client, []Endpoint{{Host: "dpm1:80", Prefix: "/pool1", Priority: 1}}, Options{})
	ml := f.MetalinkFor("/data/f")
	if ml == nil || ml.URLs[0].Loc != "http://dpm1:80/pool1/data/f" {
		t.Fatalf("metalink = %+v", ml)
	}
}

func TestHealthCacheTTL(t *testing.T) {
	e := newEnv(t)
	e.startServer(t, "dpm1:80")
	e.stores["dpm1:80"].Put("/f", []byte("x"))

	f := New(e.client, []Endpoint{{Host: "dpm1:80", Priority: 1}}, Options{HealthTTL: time.Hour})
	f.MetalinkFor("/f")
	f.MetalinkFor("/f")
	f.MetalinkFor("/f")
	if got := f.Probes(); got != 1 {
		t.Fatalf("probes = %d, want 1 (TTL caching)", got)
	}
}

func TestHealthRecoveryAfterTTL(t *testing.T) {
	e := newEnv(t)
	e.startServer(t, "dpm1:80")
	e.stores["dpm1:80"].Put("/f", []byte("x"))
	e.net.SetDown("dpm1:80", true)

	f := New(e.client, []Endpoint{{Host: "dpm1:80", Priority: 1}},
		Options{HealthTTL: 20 * time.Millisecond, ProbeTimeout: 100 * time.Millisecond})
	if ml := f.MetalinkFor("/f"); ml != nil {
		t.Fatalf("dead endpoint listed: %+v", ml)
	}
	e.net.SetDown("dpm1:80", false)
	time.Sleep(30 * time.Millisecond)
	if ml := f.MetalinkFor("/f"); ml == nil {
		t.Fatal("recovered endpoint still considered dead after TTL")
	}
}

// TestEndToEndWithFailoverClient wires federation + davix failover: client
// reads through a dead primary and lands on the live replica.
func TestEndToEndWithFailoverClient(t *testing.T) {
	e := newEnv(t)
	e.startServer(t, "dpm1:80")
	e.startServer(t, "dpm2:80")
	blob := []byte("federated payload")
	e.stores["dpm1:80"].Put("/store/f", blob)
	e.stores["dpm2:80"].Put("/store/f", blob)

	f := New(e.client, []Endpoint{
		{Host: "dpm1:80", Priority: 1},
		{Host: "dpm2:80", Priority: 2},
	}, Options{HealthTTL: 10 * time.Millisecond})

	// Federation front-end served over HTTP.
	fedSrv := httpserv.New(storage.NewMemStore(), httpserv.Options{Metalinks: f.MetalinkFor})
	l, err := e.net.Listen("fed:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go fedSrv.Serve(l)

	// Analysis client with failover through the federation.
	ac, err := core.NewClient(core.Options{
		Dialer:       e.net,
		Strategy:     core.StrategyFailover,
		MetalinkHost: "fed:80",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()

	ctx := context.Background()
	file, err := ac.Open(ctx, "dpm1:80", "/store/f")
	if err != nil {
		t.Fatal(err)
	}
	e.net.SetDown("dpm1:80", true)
	time.Sleep(15 * time.Millisecond) // let the health cache expire

	buf := make([]byte, len(blob))
	if _, err := file.ReadAt(buf, 0); err != nil {
		t.Fatalf("federated failover read: %v", err)
	}
	if string(buf) != string(blob) {
		t.Fatalf("content = %q", buf)
	}

	// Sanity: the federation's own metalink no longer lists dpm1.
	ml := f.MetalinkFor("/store/f")
	if ml == nil {
		t.Fatal("no metalink after primary death")
	}
	for _, u := range ml.URLs {
		if u.Loc == "http://dpm1:80/store/f" {
			t.Fatal("dead primary still listed")
		}
	}
	_ = metalink.MediaType
}
