// Package fed implements a DynaFed-style dynamic storage federation
// (paper §2.4): a front-end that knows a set of storage endpoints, health-
// checks them, and serves Metalink documents listing the live replicas of
// any requested path in priority order. Combined with davix's failover
// engine it guarantees that "a read operation on a resource will succeed
// as long as one replica of this resource is remotely accessible".
package fed

import (
	"context"
	"errors"
	"path"
	"sort"
	"sync"
	"time"

	"godavix/internal/core"
	"godavix/internal/metalink"
)

// Endpoint is one federated storage server.
type Endpoint struct {
	// Host is the server address ("dpm1:80").
	Host string
	// Prefix is prepended to federated paths on this endpoint
	// (e.g. "/pool1"); empty means the namespace maps 1:1.
	Prefix string
	// Priority orders replicas in generated Metalinks (1 = preferred).
	Priority int
}

// Options tunes the federation.
type Options struct {
	// HealthTTL caches per-endpoint health probes for this long
	// (default 2s; the paper's DynaFed also caches endpoint state).
	HealthTTL time.Duration
	// ProbeTimeout bounds each health/stat probe (default 2s).
	ProbeTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.HealthTTL == 0 {
		o.HealthTTL = 2 * time.Second
	}
	if o.ProbeTimeout == 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	return o
}

// Federation aggregates endpoints into a virtual namespace.
type Federation struct {
	client    *core.Client
	endpoints []Endpoint
	opts      Options

	mu     sync.Mutex
	health map[string]healthEntry // host -> last probe
	probes int64
}

type healthEntry struct {
	alive bool
	at    time.Time
}

// New creates a Federation probing endpoints through client.
func New(client *core.Client, endpoints []Endpoint, opts Options) *Federation {
	eps := append([]Endpoint(nil), endpoints...)
	sort.SliceStable(eps, func(i, j int) bool { return eps[i].Priority < eps[j].Priority })
	return &Federation{
		client:    client,
		endpoints: eps,
		opts:      opts.withDefaults(),
		health:    make(map[string]healthEntry),
	}
}

// Probes reports how many endpoint probes were issued (tests/benches).
func (f *Federation) Probes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.probes
}

// alive reports whether host responds, using the TTL cache.
func (f *Federation) alive(ctx context.Context, host string) bool {
	f.mu.Lock()
	if e, ok := f.health[host]; ok && time.Since(e.at) < f.opts.HealthTTL {
		f.mu.Unlock()
		return e.alive
	}
	f.probes++
	f.mu.Unlock()

	pctx, cancel := context.WithTimeout(ctx, f.opts.ProbeTimeout)
	defer cancel()
	// Probe the namespace root; any HTTP answer (even 404/405) proves the
	// server is up — only transport errors mean dead.
	_, err := f.client.Stat(pctx, host, "/")
	alive := err == nil || !isTransportErr(err)

	f.mu.Lock()
	f.health[host] = healthEntry{alive: alive, at: time.Now()}
	f.mu.Unlock()
	return alive
}

// isTransportErr distinguishes connection-level failures (host dead) from
// HTTP status errors (host alive, resource-level answer).
func isTransportErr(err error) bool {
	var se *core.StatusError
	return !errors.As(err, &se)
}

// MetalinkFor builds the Metalink document for a federated path: every
// live endpoint that actually holds the resource, ordered by priority.
// Returns nil when no live replica holds it (the HTTP front-end then
// answers 404). The signature matches httpserv.MetalinkProvider.
func (f *Federation) MetalinkFor(p string) *metalink.Metalink {
	ctx := context.Background()
	ml := &metalink.Metalink{Name: path.Base(p), Size: -1}
	for _, ep := range f.endpoints {
		if !f.alive(ctx, ep.Host) {
			continue
		}
		rp := ep.Prefix + p
		pctx, cancel := context.WithTimeout(ctx, f.opts.ProbeTimeout)
		inf, err := f.client.Stat(pctx, ep.Host, rp)
		cancel()
		if err != nil {
			continue
		}
		if ml.Size < 0 {
			ml.Size = inf.Size
			ml.Checksum = inf.Checksum
		}
		ml.URLs = append(ml.URLs, metalink.URL{
			Loc:      "http://" + ep.Host + rp,
			Priority: ep.Priority,
		})
	}
	if len(ml.URLs) == 0 {
		return nil
	}
	return ml
}

// Endpoints returns the configured endpoints (sorted by priority).
func (f *Federation) Endpoints() []Endpoint {
	return append([]Endpoint(nil), f.endpoints...)
}
