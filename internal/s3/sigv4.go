// Package s3 implements AWS Signature Version 4 request signing and
// verification. The paper motivates HTTP data access precisely because it
// unlocks "interactions with commercial cloud storage providers like
// Amazon Simple Storage Service" (§1); the real davix grew S3 signature
// support for that reason, and this package provides the same capability
// for the Go client and the test server.
//
// The implementation follows the canonical-request / string-to-sign /
// signing-key derivation of the SigV4 specification, using the
// UNSIGNED-PAYLOAD content hash convention for streaming bodies.
package s3

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"godavix/internal/wire"
)

// UnsignedPayload is the x-amz-content-sha256 value for streaming bodies.
const UnsignedPayload = "UNSIGNED-PAYLOAD"

// TimeFormat is the x-amz-date format (ISO 8601 basic).
const TimeFormat = "20060102T150405Z"

// Credentials identify an S3 principal.
type Credentials struct {
	// AccessKey is the public key id.
	AccessKey string
	// SecretKey is the signing secret.
	SecretKey string
	// Region scopes the signature (default "us-east-1").
	Region string
	// Service scopes the signature (default "s3").
	Service string
}

func (c Credentials) withDefaults() Credentials {
	if c.Region == "" {
		c.Region = "us-east-1"
	}
	if c.Service == "" {
		c.Service = "s3"
	}
	return c
}

// hmacSHA256 computes HMAC-SHA256(key, data).
func hmacSHA256(key, data []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(data)
	return h.Sum(nil)
}

func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SigningKey derives the date/region/service-scoped signing key.
func SigningKey(secret, date, region, service string) []byte {
	kDate := hmacSHA256([]byte("AWS4"+secret), []byte(date))
	kRegion := hmacSHA256(kDate, []byte(region))
	kService := hmacSHA256(kRegion, []byte(service))
	return hmacSHA256(kService, []byte("aws4_request"))
}

// signedHeaderNames are the headers included in every signature.
var signedHeaderNames = []string{"host", "x-amz-content-sha256", "x-amz-date"}

// canonicalQuery renders the query string in canonical (sorted) form.
func canonicalQuery(rawQuery string) string {
	if rawQuery == "" {
		return ""
	}
	parts := strings.Split(rawQuery, "&")
	sort.Strings(parts)
	for i, p := range parts {
		if !strings.Contains(p, "=") {
			parts[i] = p + "="
		}
	}
	return strings.Join(parts, "&")
}

// canonicalRequest builds the SigV4 canonical request string.
func canonicalRequest(method, path, host, date, payloadHash string) string {
	p := path
	rawQuery := ""
	if i := strings.IndexByte(p, '?'); i >= 0 {
		p, rawQuery = p[:i], p[i+1:]
	}
	if p == "" {
		p = "/"
	}
	var b strings.Builder
	b.WriteString(method)
	b.WriteByte('\n')
	b.WriteString(p)
	b.WriteByte('\n')
	b.WriteString(canonicalQuery(rawQuery))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "host:%s\n", host)
	fmt.Fprintf(&b, "x-amz-content-sha256:%s\n", payloadHash)
	fmt.Fprintf(&b, "x-amz-date:%s\n", date)
	b.WriteByte('\n')
	b.WriteString(strings.Join(signedHeaderNames, ";"))
	b.WriteByte('\n')
	b.WriteString(payloadHash)
	return b.String()
}

// Sign attaches SigV4 authentication headers to req: X-Amz-Date,
// X-Amz-Content-Sha256 (UNSIGNED-PAYLOAD) and Authorization.
func Sign(req *wire.Request, creds Credentials, now time.Time) {
	creds = creds.withDefaults()
	amzDate := now.UTC().Format(TimeFormat)
	shortDate := amzDate[:8]
	payloadHash := UnsignedPayload

	if req.Header == nil {
		req.Header = wire.Header{}
	}
	req.Header.Set("X-Amz-Date", amzDate)
	req.Header.Set("X-Amz-Content-Sha256", payloadHash)

	creq := canonicalRequest(req.Method, req.Path, req.Host, amzDate, payloadHash)
	scope := fmt.Sprintf("%s/%s/%s/aws4_request", shortDate, creds.Region, creds.Service)
	sts := fmt.Sprintf("AWS4-HMAC-SHA256\n%s\n%s\n%s", amzDate, scope, sha256Hex([]byte(creq)))
	key := SigningKey(creds.SecretKey, shortDate, creds.Region, creds.Service)
	sig := hex.EncodeToString(hmacSHA256(key, []byte(sts)))

	req.Header.Set("Authorization", fmt.Sprintf(
		"AWS4-HMAC-SHA256 Credential=%s/%s, SignedHeaders=%s, Signature=%s",
		creds.AccessKey, scope, strings.Join(signedHeaderNames, ";"), sig))
}

// VerifyRequest checks an inbound request's SigV4 signature.
// secretFor maps an access key to its secret ("" = unknown key).
// maxSkew bounds the acceptable clock difference (0 selects 15 minutes,
// the S3 default).
func VerifyRequest(method, path, host, authorization, amzDate, payloadHash string,
	secretFor func(accessKey string) string, now time.Time, maxSkew time.Duration) error {
	if maxSkew == 0 {
		maxSkew = 15 * time.Minute
	}
	const prefix = "AWS4-HMAC-SHA256 "
	if !strings.HasPrefix(authorization, prefix) {
		return fmt.Errorf("s3: not a SigV4 authorization header")
	}
	fields := map[string]string{}
	for _, part := range strings.Split(authorization[len(prefix):], ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("s3: malformed authorization field %q", part)
		}
		fields[k] = v
	}
	credParts := strings.Split(fields["Credential"], "/")
	if len(credParts) != 5 || credParts[4] != "aws4_request" {
		return fmt.Errorf("s3: malformed credential scope %q", fields["Credential"])
	}
	accessKey, shortDate, region, service := credParts[0], credParts[1], credParts[2], credParts[3]

	secret := secretFor(accessKey)
	if secret == "" {
		return fmt.Errorf("s3: unknown access key %q", accessKey)
	}
	reqTime, err := time.Parse(TimeFormat, amzDate)
	if err != nil {
		return fmt.Errorf("s3: bad x-amz-date %q", amzDate)
	}
	if skew := now.Sub(reqTime); skew > maxSkew || skew < -maxSkew {
		return fmt.Errorf("s3: request time skew %v exceeds %v", skew, maxSkew)
	}
	if !strings.HasPrefix(amzDate, shortDate) {
		return fmt.Errorf("s3: date scope mismatch")
	}

	creq := canonicalRequest(method, path, host, amzDate, payloadHash)
	scope := fmt.Sprintf("%s/%s/%s/aws4_request", shortDate, region, service)
	sts := fmt.Sprintf("AWS4-HMAC-SHA256\n%s\n%s\n%s", amzDate, scope, sha256Hex([]byte(creq)))
	key := SigningKey(secret, shortDate, region, service)
	want := hex.EncodeToString(hmacSHA256(key, []byte(sts)))

	if !hmac.Equal([]byte(want), []byte(fields["Signature"])) {
		return fmt.Errorf("s3: signature mismatch")
	}
	return nil
}
