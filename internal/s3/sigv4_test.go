package s3

import (
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"godavix/internal/wire"
)

// TestSigningKeyVector checks the published AWS SigV4 key-derivation test
// vector (secret wJalrXUtnFEMI/K7MDENG+bPxRfiCYEXAMPLEKEY, 20150830,
// us-east-1, iam).
func TestSigningKeyVector(t *testing.T) {
	key := SigningKey("wJalrXUtnFEMI/K7MDENG+bPxRfiCYEXAMPLEKEY", "20150830", "us-east-1", "iam")
	want := "c4afb1cc5771d871763a393e44b703571b55cc28424d1a5e86da6ed3c154a4b9"
	if got := hex.EncodeToString(key); got != want {
		t.Fatalf("signing key = %s, want %s", got, want)
	}
}

func testCreds() Credentials {
	return Credentials{
		AccessKey: "AKIDEXAMPLE",
		SecretKey: "wJalrXUtnFEMI/K7MDENG+bPxRfiCYEXAMPLEKEY",
		Region:    "eu-west-1",
	}
}

func secretFor(key string) string {
	if key == "AKIDEXAMPLE" {
		return "wJalrXUtnFEMI/K7MDENG+bPxRfiCYEXAMPLEKEY"
	}
	return ""
}

func TestSignVerifyRoundTrip(t *testing.T) {
	now := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	req := wire.NewRequest("GET", "bucket.s3:80", "/store/f.rnt?versionId=3&acl")
	Sign(req, testCreds(), now)

	if req.Header.Get("X-Amz-Date") == "" || req.Header.Get("Authorization") == "" {
		t.Fatalf("headers = %+v", req.Header)
	}
	err := VerifyRequest("GET", req.Path, req.Host,
		req.Header.Get("Authorization"), req.Header.Get("X-Amz-Date"),
		req.Header.Get("X-Amz-Content-Sha256"), secretFor, now.Add(time.Minute), 0)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	now := time.Now().UTC()
	req := wire.NewRequest("GET", "h:80", "/obj")
	Sign(req, testCreds(), now)
	auth := req.Header.Get("Authorization")
	date := req.Header.Get("X-Amz-Date")

	cases := []struct {
		name                     string
		method, path, host, a, d string
	}{
		{"method", "PUT", "/obj", "h:80", auth, date},
		{"path", "GET", "/other", "h:80", auth, date},
		{"host", "GET", "/obj", "evil:80", auth, date},
		{"sig", "GET", "/obj", "h:80", auth[:len(auth)-2] + "ff", date},
	}
	for _, c := range cases {
		err := VerifyRequest(c.method, c.path, c.host, c.a, c.d, UnsignedPayload, secretFor, now, 0)
		if err == nil {
			t.Errorf("%s tampering accepted", c.name)
		}
	}
}

func TestVerifyRejectsClockSkew(t *testing.T) {
	now := time.Now().UTC()
	req := wire.NewRequest("GET", "h:80", "/obj")
	Sign(req, testCreds(), now)
	err := VerifyRequest("GET", "/obj", "h:80",
		req.Header.Get("Authorization"), req.Header.Get("X-Amz-Date"),
		UnsignedPayload, secretFor, now.Add(time.Hour), 0)
	if err == nil || !strings.Contains(err.Error(), "skew") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsUnknownKey(t *testing.T) {
	now := time.Now().UTC()
	creds := testCreds()
	creds.AccessKey = "AKIDUNKNOWN"
	req := wire.NewRequest("GET", "h:80", "/obj")
	Sign(req, creds, now)
	err := VerifyRequest("GET", "/obj", "h:80",
		req.Header.Get("Authorization"), req.Header.Get("X-Amz-Date"),
		UnsignedPayload, secretFor, now, 0)
	if err == nil || !strings.Contains(err.Error(), "unknown access key") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsGarbageHeader(t *testing.T) {
	now := time.Now().UTC()
	for _, a := range []string{"", "Bearer x", "AWS4-HMAC-SHA256 nonsense"} {
		if err := VerifyRequest("GET", "/", "h:80", a, now.Format(TimeFormat), UnsignedPayload, secretFor, now, 0); err == nil {
			t.Errorf("accepted %q", a)
		}
	}
}

func TestCanonicalQuerySorted(t *testing.T) {
	if got := canonicalQuery("b=2&a=1&flag"); got != "a=1&b=2&flag=" {
		t.Fatalf("canonical query = %q", got)
	}
	if got := canonicalQuery(""); got != "" {
		t.Fatalf("empty query = %q", got)
	}
}

// TestSignVerifyProperty: any method/path/time combination round-trips.
func TestSignVerifyProperty(t *testing.T) {
	methods := []string{"GET", "PUT", "DELETE", "HEAD"}
	prop := func(pathSeed uint16, methodSeed uint8, offset int16) bool {
		now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(offset) * time.Second)
		method := methods[int(methodSeed)%len(methods)]
		path := "/obj" + strings.Repeat("x", int(pathSeed%32))
		req := wire.NewRequest(method, "h:80", path)
		Sign(req, testCreds(), now)
		return VerifyRequest(method, path, "h:80",
			req.Header.Get("Authorization"), req.Header.Get("X-Amz-Date"),
			UnsignedPayload, secretFor, now, 0) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
