// Package metalink implements the subset of the Metalink download
// description format (RFC 5854) used by davix for replica failover and
// multi-stream downloads (paper §2.4).
//
// A Metalink document describes one resource: its name, size, checksum, and
// an ordered list of replica URLs. davix fetches the Metalink for an
// unavailable resource and either fails over replica-by-replica or streams
// different chunks from different replicas in parallel.
package metalink

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// MediaType is the MIME type for Metalink documents, used in Accept and
// Content-Type headers.
const MediaType = "application/metalink+xml"

// Namespace is the RFC 5854 XML namespace.
const Namespace = "urn:ietf:params:xml:ns:metalink"

// URL is one replica location with its selection priority (lower is
// preferred, as in RFC 5854).
type URL struct {
	// Loc is the replica URL ("http://dpm2:80/store/f.rnt").
	Loc string
	// Priority orders replicas; 1 is most preferred.
	Priority int
}

// Metalink describes one resource and its replicas.
type Metalink struct {
	// Name is the resource file name.
	Name string
	// Size is the resource size in bytes (-1 when unknown).
	Size int64
	// Checksum is the content checksum ("adler32:xxxxxxxx"), optional.
	Checksum string
	// URLs lists replica locations.
	URLs []URL
}

// Decode errors.
var (
	ErrNoFile = errors.New("metalink: document contains no file element")
	ErrNoURLs = errors.New("metalink: file has no replica URLs")
)

// xml wire structures (RFC 5854 subset).
type xmlMetalink struct {
	XMLName xml.Name  `xml:"metalink"`
	Xmlns   string    `xml:"xmlns,attr"`
	Files   []xmlFile `xml:"file"`
}

type xmlFile struct {
	Name   string    `xml:"name,attr"`
	Size   *int64    `xml:"size"`
	Hashes []xmlHash `xml:"hash"`
	URLs   []xmlURL  `xml:"url"`
}

type xmlHash struct {
	Type  string `xml:"type,attr"`
	Value string `xml:",chardata"`
}

type xmlURL struct {
	Priority int    `xml:"priority,attr,omitempty"`
	Loc      string `xml:",chardata"`
}

// Encode renders m as a Metalink XML document.
func Encode(m *Metalink) ([]byte, error) {
	if len(m.URLs) == 0 {
		return nil, ErrNoURLs
	}
	xf := xmlFile{Name: m.Name}
	if m.Size >= 0 {
		size := m.Size
		xf.Size = &size
	}
	if m.Checksum != "" {
		typ, val, ok := strings.Cut(m.Checksum, ":")
		if !ok {
			typ, val = "adler32", m.Checksum
		}
		xf.Hashes = []xmlHash{{Type: typ, Value: val}}
	}
	for _, u := range m.URLs {
		xf.URLs = append(xf.URLs, xmlURL{Priority: u.Priority, Loc: u.Loc})
	}
	doc := xmlMetalink{Xmlns: Namespace, Files: []xmlFile{xf}}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// Decode parses a Metalink XML document. Only the first file element is
// considered; URLs are returned sorted by ascending priority (stable, so
// document order breaks ties).
func Decode(data []byte) (*Metalink, error) {
	var doc xmlMetalink
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("metalink: %w", err)
	}
	if len(doc.Files) == 0 {
		return nil, ErrNoFile
	}
	xf := doc.Files[0]
	m := &Metalink{Name: xf.Name, Size: -1}
	if xf.Size != nil {
		m.Size = *xf.Size
	}
	if len(xf.Hashes) > 0 {
		h := xf.Hashes[0]
		m.Checksum = strings.TrimSpace(h.Type) + ":" + strings.TrimSpace(h.Value)
	}
	for _, u := range xf.URLs {
		loc := strings.TrimSpace(u.Loc)
		if loc == "" {
			continue
		}
		m.URLs = append(m.URLs, URL{Loc: loc, Priority: u.Priority})
	}
	if len(m.URLs) == 0 {
		return nil, ErrNoURLs
	}
	sort.SliceStable(m.URLs, func(i, j int) bool { return m.URLs[i].Priority < m.URLs[j].Priority })
	return m, nil
}

// SplitURL separates a replica URL into host ("dpm1:80") and path
// ("/store/f.rnt"). Only http:// URLs are supported; the scheme is optional.
func SplitURL(u string) (host, path string, err error) {
	s := strings.TrimPrefix(u, "http://")
	if strings.Contains(s, "://") {
		return "", "", fmt.Errorf("metalink: unsupported scheme in %q", u)
	}
	host, path, ok := strings.Cut(s, "/")
	if !ok {
		return s, "/", nil
	}
	if host == "" {
		return "", "", fmt.Errorf("metalink: missing host in %q", u)
	}
	return host, "/" + path, nil
}
