package metalink

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Metalink {
	return &Metalink{
		Name:     "f.rnt",
		Size:     700 << 20,
		Checksum: "adler32:0011aabb",
		URLs: []URL{
			{Loc: "http://dpm1:80/store/f.rnt", Priority: 1},
			{Loc: "http://dpm2:80/store/f.rnt", Priority: 2},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sample()
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), Namespace) {
		t.Fatal("namespace missing from document")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestDecodeSortsByPriority(t *testing.T) {
	m := &Metalink{
		Name: "f",
		Size: 1,
		URLs: []URL{
			{Loc: "http://c/f", Priority: 3},
			{Loc: "http://a/f", Priority: 1},
			{Loc: "http://b/f", Priority: 2},
		},
	}
	data, _ := Encode(m)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"http://a/f", "http://b/f", "http://c/f"}
	for i, u := range got.URLs {
		if u.Loc != order[i] {
			t.Fatalf("order = %+v", got.URLs)
		}
	}
}

func TestDecodeStableTieBreak(t *testing.T) {
	doc := `<?xml version="1.0"?>
<metalink xmlns="urn:ietf:params:xml:ns:metalink">
 <file name="f"><size>1</size>
  <url priority="1">http://first/f</url>
  <url priority="1">http://second/f</url>
 </file>
</metalink>`
	got, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got.URLs[0].Loc != "http://first/f" {
		t.Fatalf("tie break not stable: %+v", got.URLs)
	}
}

func TestDecodeMissingPieces(t *testing.T) {
	if _, err := Decode([]byte(`<metalink xmlns="x"></metalink>`)); err != ErrNoFile {
		t.Fatalf("err = %v", err)
	}
	doc := `<metalink xmlns="x"><file name="f"><size>1</size></file></metalink>`
	if _, err := Decode([]byte(doc)); err != ErrNoURLs {
		t.Fatalf("err = %v", err)
	}
	if _, err := Decode([]byte("not xml at all")); err == nil {
		t.Fatal("expected xml error")
	}
}

func TestDecodeUnknownSize(t *testing.T) {
	doc := `<metalink xmlns="x"><file name="f"><url>http://a/f</url></file></metalink>`
	got, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != -1 {
		t.Fatalf("size = %d, want -1", got.Size)
	}
}

func TestEncodeRequiresURLs(t *testing.T) {
	if _, err := Encode(&Metalink{Name: "f"}); err != ErrNoURLs {
		t.Fatalf("err = %v", err)
	}
}

func TestSplitURL(t *testing.T) {
	cases := []struct {
		in, host, path string
		wantErr        bool
	}{
		{"http://dpm1:80/store/f.rnt", "dpm1:80", "/store/f.rnt", false},
		{"dpm1:80/store/f.rnt", "dpm1:80", "/store/f.rnt", false},
		{"http://host:1", "host:1", "/", false},
		{"ftp://h/f", "", "", true},
		{"http:///f", "", "", true},
	}
	for _, c := range cases {
		host, path, err := SplitURL(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("SplitURL(%q) err = %v", c.in, err)
			continue
		}
		if err == nil && (host != c.host || path != c.path) {
			t.Errorf("SplitURL(%q) = %q %q, want %q %q", c.in, host, path, c.host, c.path)
		}
	}
}

// TestRoundTripProperty: arbitrary replica sets survive encode/decode.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%8) + 1
		m := &Metalink{Name: "obj", Size: r.Int63()}
		for i := 0; i < count; i++ {
			m.URLs = append(m.URLs, URL{
				Loc:      "http://host" + string(rune('a'+i)) + ":80/p",
				Priority: i + 1,
			})
		}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
