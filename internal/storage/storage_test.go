package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// stores returns both implementations so every test runs against each.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMemStore(), "disk": disk}
}

func TestPutGetStat(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("event data")
			if err := s.Put("/store/run1/f.rnt", data); err != nil {
				t.Fatal(err)
			}
			got, inf, err := s.Get("/store/run1/f.rnt")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("data = %q", got)
			}
			if inf.Size != int64(len(data)) || inf.Dir || inf.Name != "f.rnt" {
				t.Fatalf("info = %+v", inf)
			}
			if inf.Checksum != Checksum(data) {
				t.Fatalf("checksum = %q", inf.Checksum)
			}
			st, err := s.Stat("/store/run1/f.rnt")
			if err != nil || st.Size != inf.Size {
				t.Fatalf("stat = %+v err=%v", st, err)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, _, err := s.Get("/nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v", err)
			}
			if _, err := s.Stat("/nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("stat err = %v", err)
			}
		})
	}
}

func TestPutOverwrite(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/f", []byte("v1"))
			s.Put("/f", []byte("version2"))
			got, inf, err := s.Get("/f")
			if err != nil || string(got) != "version2" || inf.Size != 8 {
				t.Fatalf("got %q %+v %v", got, inf, err)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/d/f", []byte("x"))
			if err := s.Delete("/d/f"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Stat("/d/f"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v", err)
			}
			if err := s.Delete("/d/f"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete err = %v", err)
			}
		})
	}
}

func TestDeleteNonEmptyDirFails(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/d/f", []byte("x"))
			if err := s.Delete("/d"); err == nil {
				t.Fatal("expected non-empty dir delete to fail")
			}
		})
	}
}

func TestListSorted(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/dir/c", []byte("3"))
			s.Put("/dir/a", []byte("1"))
			s.Put("/dir/b", []byte("2"))
			infos, err := s.List("/dir")
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 3 || infos[0].Name != "a" || infos[2].Name != "c" {
				t.Fatalf("list = %+v", infos)
			}
		})
	}
}

func TestListFileFails(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s.Put("/f", []byte("x"))
			if _, err := s.List("/f"); err == nil {
				t.Fatal("expected list on file to fail")
			}
		})
	}
}

func TestMkdirSemantics(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Mkdir("/newdir"); err != nil {
				t.Fatal(err)
			}
			inf, err := s.Stat("/newdir")
			if err != nil || !inf.Dir {
				t.Fatalf("stat = %+v err=%v", inf, err)
			}
			if err := s.Mkdir("/newdir"); !errors.Is(err, ErrExists) {
				t.Fatalf("duplicate mkdir err = %v", err)
			}
			if err := s.Mkdir("/a/b/c"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("mkdir without parents err = %v", err)
			}
		})
	}
}

func TestGetDirFails(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s.Mkdir("/d")
			if _, _, err := s.Get("/d"); !errors.Is(err, ErrIsDir) {
				t.Fatalf("err = %v", err)
			}
		})
	}
}

func TestClean(t *testing.T) {
	cases := map[string]string{
		"foo":      "/foo",
		"/a//b/":   "/a/b",
		"/a/../b":  "/b",
		"":         "/",
		"/../../x": "/x",
		"/a/./b":   "/a/b",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiskStoreEscapePrevented(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("/../../outside", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The object must land inside the root, reachable at its cleaned path.
	if _, _, err := s.Get("/outside"); err != nil {
		t.Fatalf("cleaned path not found: %v", err)
	}
}

func TestChecksumFormat(t *testing.T) {
	c := Checksum([]byte("hello"))
	if len(c) != len("adler32:")+8 || c[:8] != "adler32:" {
		t.Fatalf("checksum = %q", c)
	}
	if Checksum([]byte("hello")) != c {
		t.Fatal("checksum not deterministic")
	}
	if Checksum([]byte("hellp")) == c {
		t.Fatal("checksum collision on different data")
	}
}

// TestMemStoreRoundTripProperty: put-then-get returns exactly what was put,
// for arbitrary path suffixes and payloads.
func TestMemStoreRoundTripProperty(t *testing.T) {
	s := NewMemStore()
	i := 0
	prop := func(data []byte) bool {
		i++
		p := fmt.Sprintf("/prop/%d/obj", i)
		if err := s.Put(p, data); err != nil {
			return false
		}
		got, inf, err := s.Get(p)
		return err == nil && bytes.Equal(got, data) && inf.Size == int64(len(data))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMemStoreIsolation: mutating the caller's buffer after Put must not
// change stored content.
func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	buf := []byte("immutable")
	s.Put("/f", buf)
	buf[0] = 'X'
	got, _, _ := s.Get("/f")
	if string(got) != "immutable" {
		t.Fatalf("stored data aliased caller buffer: %q", got)
	}
}

func TestPutIntoFileAsDirFails(t *testing.T) {
	s := NewMemStore()
	s.Put("/f", []byte("x"))
	if err := s.Put("/f/child", []byte("y")); err == nil {
		t.Fatal("expected put under a file to fail")
	}
}
