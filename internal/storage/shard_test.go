package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// findShardPair returns two object paths under dir that hash to different
// shards, so two-key tests genuinely exercise multi-shard ordering.
func findShardPair(t *testing.T, dir string) (a, b string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		a = fmt.Sprintf("%s/pair-a-%d.rnt", dir, i)
		b = fmt.Sprintf("%s/pair-b-%d.rnt", dir, i)
		if shardIdx(Clean(a)) != shardIdx(Clean(b)) {
			return a, b
		}
	}
	t.Fatal("no cross-shard path pair found")
	return "", ""
}

func TestCopyMoveBasics(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("/src/a.rnt", []byte("payload")); err != nil {
				t.Fatal(err)
			}

			if err := s.Copy("/src/a.rnt", "/dst/deep/b.rnt"); err != nil {
				t.Fatalf("Copy: %v", err)
			}
			data, inf, err := s.Get("/dst/deep/b.rnt")
			if err != nil {
				t.Fatalf("Get copy: %v", err)
			}
			if !bytes.Equal(data, []byte("payload")) {
				t.Fatalf("copy content = %q", data)
			}
			if inf.Checksum != Checksum([]byte("payload")) {
				t.Fatalf("copy checksum = %q", inf.Checksum)
			}
			if _, err := s.Stat("/src/a.rnt"); err != nil {
				t.Fatalf("source gone after Copy: %v", err)
			}

			if err := s.Move("/src/a.rnt", "/moved/c.rnt"); err != nil {
				t.Fatalf("Move: %v", err)
			}
			if _, err := s.Stat("/src/a.rnt"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("source after Move: err=%v", err)
			}
			if _, _, err := s.Get("/moved/c.rnt"); err != nil {
				t.Fatalf("Get moved: %v", err)
			}

			if err := s.Copy("/nope.rnt", "/x.rnt"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Copy missing src: err=%v", err)
			}
			if err := s.Move("/nope.rnt", "/x.rnt"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Move missing src: err=%v", err)
			}
		})
	}
}

func TestCopySelfAndDirErrors(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("/d/f.rnt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Copy("/d/f.rnt", "/d/f.rnt"); err != nil {
		t.Fatalf("self copy: %v", err)
	}
	if err := s.Copy("/d", "/elsewhere"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("copy dir: err=%v", err)
	}
	if err := s.Move("/d/f.rnt", "/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("move onto dir: err=%v", err)
	}
}

// TestCopyBothOrdersNoDeadlock runs concurrent Copy(a,b) and Copy(b,a)
// where a and b hash to different shards — the direct lock-order test for
// the ordered two-key acquisition. Without index-ordered locking this
// deadlocks almost immediately.
func TestCopyBothOrdersNoDeadlock(t *testing.T) {
	s := NewMemStore()
	a, b := findShardPair(t, "/ns")
	if err := s.Put(a, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, []byte("beta")); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					if g%2 == 0 {
						_ = s.Copy(a, b)
					} else {
						_ = s.Copy(b, a)
					}
				}
			}(g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("two-key copy storm deadlocked")
	}
	// Both objects still resolvable, contents from the alpha/beta set.
	for _, p := range []string{a, b} {
		data, _, err := s.Get(p)
		if err != nil {
			t.Fatalf("Get %s after storm: %v", p, err)
		}
		if got := string(data); got != "alpha" && got != "beta" {
			t.Fatalf("%s = %q after storm", p, got)
		}
	}
}

// TestNamespaceStorm hammers overlapping paths with concurrent
// Put/Delete/Copy/Move/List/Stat and then verifies the namespace is
// consistent: every listed child stats, every surviving object carries the
// checksum of its own bytes (no torn/lost updates).
func TestNamespaceStorm(t *testing.T) {
	s := NewMemStore()
	const (
		workers = 16
		iters   = 300
		nPaths  = 12
	)
	paths := make([]string, nPaths)
	for i := range paths {
		paths[i] = fmt.Sprintf("/storm/dir%d/obj%d.rnt", i%3, i)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := paths[(w*31+i)%nPaths]
				q := paths[(w*17+i*7)%nPaths]
				switch (w + i) % 5 {
				case 0:
					_ = s.Put(p, []byte(fmt.Sprintf("v-%d-%d", w, i)))
				case 1:
					_ = s.Delete(p)
				case 2:
					_ = s.Copy(p, q)
				case 3:
					_ = s.Move(p, q)
				default:
					_, _ = s.Stat(p)
					_, _ = s.List("/storm")
				}
			}
		}(w)
	}
	wg.Wait()

	// Consistency sweep: everything reachable by List must Stat and Get
	// coherently, and data/checksum must agree (no torn writes).
	var walk func(dir string)
	walk = func(dir string) {
		infos, err := s.List(dir)
		if err != nil {
			t.Fatalf("List %s: %v", dir, err)
		}
		for _, inf := range infos {
			if inf.Dir {
				walk(inf.Path)
				continue
			}
			data, ginf, err := s.Get(inf.Path)
			if err != nil {
				t.Fatalf("listed child %s does not Get: %v", inf.Path, err)
			}
			if ginf.Checksum != Checksum(data) {
				t.Fatalf("%s: checksum %q != content checksum %q (torn update)",
					inf.Path, ginf.Checksum, Checksum(data))
			}
		}
	}
	walk("/")
}

// TestPutDeleteNoPhantom checks the atomic entry+parent-registration
// invariant: after a concurrent Put/Delete duel, either the object exists
// and is listed, or it neither stats nor appears in its parent listing.
func TestPutDeleteNoPhantom(t *testing.T) {
	s := NewMemStore()
	const p = "/duel/obj.rnt"
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if w%2 == 0 {
					_ = s.Put(p, []byte("x"))
				} else {
					_ = s.Delete(p)
				}
			}
		}(w)
	}
	wg.Wait()

	_, statErr := s.Stat(p)
	infos, listErr := s.List("/duel")
	if listErr != nil {
		t.Fatalf("List: %v", listErr)
	}
	listed := false
	for _, inf := range infos {
		if inf.Name == "obj.rnt" {
			listed = true
		}
	}
	if (statErr == nil) != listed {
		t.Fatalf("phantom entry: stat err=%v, listed=%v", statErr, listed)
	}
}
