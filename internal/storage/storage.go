// Package storage provides the object-store backend shared by the HTTP
// (DPM-like) and XRootD-like servers: a hierarchical namespace of immutable
// byte blobs with stat metadata and checksums. Two implementations are
// provided: an in-memory store for simulations and tests, and a disk store
// for the standalone server binaries.
package storage

import (
	"errors"
	"fmt"
	"hash/adler32"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Common errors, comparable with errors.Is.
var (
	ErrNotFound = errors.New("storage: not found")
	ErrIsDir    = errors.New("storage: is a directory")
	ErrNotDir   = errors.New("storage: not a directory")
	ErrExists   = errors.New("storage: already exists")
)

// Info describes a namespace entry.
type Info struct {
	// Name is the base name of the entry.
	Name string
	// Path is the full cleaned path ("/store/f.rnt").
	Path string
	// Size is the object size in bytes (0 for directories).
	Size int64
	// ModTime is the last modification time.
	ModTime time.Time
	// Dir reports whether the entry is a directory.
	Dir bool
	// Checksum is the Adler-32 checksum of the content, rendered as
	// "adler32:%08x" (the WLCG convention); empty for directories.
	Checksum string
}

// Store is the namespace interface served over HTTP and xrootd.
type Store interface {
	// Get returns the full content of the object at p.
	Get(p string) ([]byte, Info, error)
	// Put creates or replaces the object at p, creating parents.
	Put(p string, data []byte) error
	// Delete removes the object or empty directory at p.
	Delete(p string) error
	// Stat describes the entry at p.
	Stat(p string) (Info, error)
	// List returns the direct children of the directory at p, sorted by name.
	List(p string) ([]Info, error)
	// Mkdir creates a directory at p (parents required to exist).
	Mkdir(p string) error
}

// Checksum renders the WLCG-style Adler-32 checksum of data.
func Checksum(data []byte) string {
	return fmt.Sprintf("adler32:%08x", adler32.Checksum(data))
}

// Clean canonicalizes an object path to a rooted, slash-separated form.
func Clean(p string) string {
	p = path.Clean("/" + strings.TrimSpace(p))
	return p
}

// memEntry is a node in the in-memory namespace tree.
type memEntry struct {
	data     []byte
	checksum string // computed once at Put
	modTime  time.Time
	dir      bool
	children map[string]*memEntry
}

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu   sync.RWMutex
	root *memEntry
	now  func() time.Time
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		root: &memEntry{dir: true, children: map[string]*memEntry{}},
		now:  time.Now,
	}
}

// lookup walks to the entry at p. Caller holds at least a read lock.
func (s *MemStore) lookup(p string) (*memEntry, error) {
	cur := s.root
	for _, part := range splitPath(p) {
		if !cur.dir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, ErrNotFound
		}
		cur = next
	}
	return cur, nil
}

func splitPath(p string) []string {
	p = strings.Trim(Clean(p), "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

func (s *MemStore) infoFor(p string, e *memEntry) Info {
	p = Clean(p)
	inf := Info{
		Name:    path.Base(p),
		Path:    p,
		ModTime: e.modTime,
		Dir:     e.dir,
	}
	if !e.dir {
		inf.Size = int64(len(e.data))
		inf.Checksum = e.checksum
	}
	return inf
}

// Get implements Store.
func (s *MemStore) Get(p string) ([]byte, Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, err := s.lookup(p)
	if err != nil {
		return nil, Info{}, err
	}
	if e.dir {
		return nil, Info{}, ErrIsDir
	}
	// Callers must not mutate the returned slice; the HTTP and xrootd
	// servers only read it.
	return e.data, s.infoFor(p, e), nil
}

// Put implements Store, creating parent directories as needed.
func (s *MemStore) Put(p string, data []byte) error {
	buf := make([]byte, len(data))
	copy(buf, data)
	return s.PutOwned(p, buf)
}

// PutOwned stores data at p taking ownership of the slice: the caller must
// not retain or mutate it afterwards. It skips Put's defensive copy, which
// matters to the test server's assembled multi-MiB ranged uploads.
func (s *MemStore) PutOwned(p string, data []byte) error {
	parts := splitPath(p)
	if len(parts) == 0 {
		return ErrIsDir
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur.children[part]
		if !ok {
			next = &memEntry{dir: true, children: map[string]*memEntry{}, modTime: s.now()}
			cur.children[part] = next
		}
		if !next.dir {
			return ErrNotDir
		}
		cur = next
	}
	name := parts[len(parts)-1]
	if e, ok := cur.children[name]; ok && e.dir {
		return ErrIsDir
	}
	cur.children[name] = &memEntry{data: data, checksum: Checksum(data), modTime: s.now()}
	return nil
}

// Delete implements Store. Directories must be empty.
func (s *MemStore) Delete(p string) error {
	parts := splitPath(p)
	if len(parts) == 0 {
		return ErrIsDir
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	parent := s.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := parent.children[part]
		if !ok || !next.dir {
			return ErrNotFound
		}
		parent = next
	}
	name := parts[len(parts)-1]
	e, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if e.dir && len(e.children) > 0 {
		return fmt.Errorf("storage: directory not empty: %s", Clean(p))
	}
	delete(parent.children, name)
	return nil
}

// Stat implements Store.
func (s *MemStore) Stat(p string) (Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, err := s.lookup(p)
	if err != nil {
		return Info{}, err
	}
	return s.infoFor(p, e), nil
}

// List implements Store.
func (s *MemStore) List(p string) ([]Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, err := s.lookup(p)
	if err != nil {
		return nil, err
	}
	if !e.dir {
		return nil, ErrNotDir
	}
	out := make([]Info, 0, len(e.children))
	base := Clean(p)
	for name, child := range e.children {
		out = append(out, s.infoFor(path.Join(base, name), child))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir implements Store.
func (s *MemStore) Mkdir(p string) error {
	parts := splitPath(p)
	if len(parts) == 0 {
		return ErrExists
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	parent := s.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := parent.children[part]
		if !ok || !next.dir {
			return ErrNotFound
		}
		parent = next
	}
	name := parts[len(parts)-1]
	if _, ok := parent.children[name]; ok {
		return ErrExists
	}
	parent.children[name] = &memEntry{dir: true, children: map[string]*memEntry{}, modTime: s.now()}
	return nil
}

// DiskStore is a Store rooted at a filesystem directory.
type DiskStore struct {
	root string
}

// NewDiskStore creates (if needed) and wraps root as a Store.
func NewDiskStore(root string) (*DiskStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	return &DiskStore{root: abs}, nil
}

func (s *DiskStore) fsPath(p string) string {
	return filepath.Join(s.root, filepath.FromSlash(strings.TrimPrefix(Clean(p), "/")))
}

func mapFSErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return ErrNotFound
	case errors.Is(err, fs.ErrExist):
		return ErrExists
	default:
		return err
	}
}

// Get implements Store.
func (s *DiskStore) Get(p string) ([]byte, Info, error) {
	fp := s.fsPath(p)
	st, err := os.Stat(fp)
	if err != nil {
		return nil, Info{}, mapFSErr(err)
	}
	if st.IsDir() {
		return nil, Info{}, ErrIsDir
	}
	data, err := os.ReadFile(fp)
	if err != nil {
		return nil, Info{}, mapFSErr(err)
	}
	return data, s.infoFromFS(p, st, data), nil
}

func (s *DiskStore) infoFromFS(p string, st fs.FileInfo, data []byte) Info {
	inf := Info{
		Name:    path.Base(Clean(p)),
		Path:    Clean(p),
		ModTime: st.ModTime(),
		Dir:     st.IsDir(),
	}
	if !st.IsDir() {
		inf.Size = st.Size()
		if data != nil {
			inf.Checksum = Checksum(data)
		}
	}
	return inf
}

// Put implements Store.
func (s *DiskStore) Put(p string, data []byte) error {
	fp := s.fsPath(p)
	if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
		return err
	}
	return os.WriteFile(fp, data, 0o644)
}

// Delete implements Store.
func (s *DiskStore) Delete(p string) error {
	fp := s.fsPath(p)
	if _, err := os.Stat(fp); err != nil {
		return mapFSErr(err)
	}
	return mapFSErr(os.Remove(fp))
}

// Stat implements Store.
func (s *DiskStore) Stat(p string) (Info, error) {
	st, err := os.Stat(s.fsPath(p))
	if err != nil {
		return Info{}, mapFSErr(err)
	}
	return s.infoFromFS(p, st, nil), nil
}

// List implements Store.
func (s *DiskStore) List(p string) ([]Info, error) {
	entries, err := os.ReadDir(s.fsPath(p))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		st, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, s.infoFromFS(path.Join(Clean(p), e.Name()), st, nil))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir implements Store.
func (s *DiskStore) Mkdir(p string) error {
	fp := s.fsPath(p)
	if _, err := os.Stat(fp); err == nil {
		return ErrExists
	}
	return mapFSErr(os.Mkdir(fp, 0o755))
}
