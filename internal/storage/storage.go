// Package storage provides the object-store backend shared by the HTTP
// (DPM-like) and XRootD-like servers: a hierarchical namespace of immutable
// byte blobs with stat metadata and checksums. Two implementations are
// provided: an in-memory store for simulations and tests, and a disk store
// for the standalone server binaries.
package storage

import (
	"errors"
	"fmt"
	"hash/adler32"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Common errors, comparable with errors.Is.
var (
	ErrNotFound = errors.New("storage: not found")
	ErrIsDir    = errors.New("storage: is a directory")
	ErrNotDir   = errors.New("storage: not a directory")
	ErrExists   = errors.New("storage: already exists")
)

// Info describes a namespace entry.
type Info struct {
	// Name is the base name of the entry.
	Name string
	// Path is the full cleaned path ("/store/f.rnt").
	Path string
	// Size is the object size in bytes (0 for directories).
	Size int64
	// ModTime is the last modification time.
	ModTime time.Time
	// Dir reports whether the entry is a directory.
	Dir bool
	// Checksum is the Adler-32 checksum of the content, rendered as
	// "adler32:%08x" (the WLCG convention); empty for directories.
	Checksum string
}

// Store is the namespace interface served over HTTP and xrootd.
type Store interface {
	// Get returns the full content of the object at p.
	Get(p string) ([]byte, Info, error)
	// Put creates or replaces the object at p, creating parents.
	Put(p string, data []byte) error
	// Delete removes the object or empty directory at p.
	Delete(p string) error
	// Stat describes the entry at p.
	Stat(p string) (Info, error)
	// List returns the direct children of the directory at p, sorted by name.
	List(p string) ([]Info, error)
	// Mkdir creates a directory at p (parents required to exist).
	Mkdir(p string) error
	// Copy duplicates the object at src to dst, creating dst's parents.
	Copy(src, dst string) error
	// Move renames the object at src to dst, creating dst's parents. The
	// source entry is gone once dst exists.
	Move(src, dst string) error
}

// Checksum renders the WLCG-style Adler-32 checksum of data.
func Checksum(data []byte) string {
	return fmt.Sprintf("adler32:%08x", adler32.Checksum(data))
}

// Clean canonicalizes an object path to a rooted, slash-separated form.
func Clean(p string) string {
	p = path.Clean("/" + strings.TrimSpace(p))
	return p
}

// memEntry is one namespace entry in the flat sharded map: an immutable
// blob (files; data is never mutated after insertion, so readers may share
// the slice) or a directory with its registered child names.
type memEntry struct {
	data     []byte
	checksum string // computed once at Put
	modTime  time.Time
	dir      bool
	children map[string]bool // child base names; dirs only
}

// memShards spreads the namespace over independent locks (the same FNV-1a
// pattern as internal/pool's host shards). A power of two so the hash maps
// with a mask; 32 shards keep one hot directory from serializing writes to
// the rest of the namespace under thousands of concurrent gateway requests.
const memShards = 32

// memShard guards the subset of paths hashing onto it.
type memShard struct {
	mu      sync.RWMutex
	entries map[string]*memEntry
}

// MemStore is an in-memory Store, safe for concurrent use. The namespace is
// a flat map from clean path to entry, fnv-sharded by path: operations on
// paths in different shards never contend. Structural operations that touch
// several paths (registering an object in its parent directory, Copy/Move)
// acquire every involved shard in index order — the ordered multi-key
// discipline that makes deadlock impossible regardless of which direction
// concurrent Copy("/a","/b") and Copy("/b","/a") run.
type MemStore struct {
	shards [memShards]memShard
	now    func() time.Time
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	s := &MemStore{now: time.Now}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*memEntry)
	}
	root := s.shardFor("/")
	root.entries["/"] = &memEntry{dir: true, children: map[string]bool{}, modTime: s.now()}
	return s
}

// shardIdx hashes a clean path (FNV-1a) onto its shard index.
func shardIdx(p string) int {
	h := uint32(2166136261)
	for i := 0; i < len(p); i++ {
		h = (h ^ uint32(p[i])) * 16777619
	}
	return int(h & (memShards - 1))
}

func (s *MemStore) shardFor(p string) *memShard { return &s.shards[shardIdx(p)] }

// lockAll write-locks the shards of every path in order of shard index,
// each shard once, and returns the unlock. Taking multi-path locks only
// through this helper is what guarantees lock-order safety: two goroutines
// locking overlapping path sets always acquire the shared shards in the
// same (index) order.
func (s *MemStore) lockAll(paths ...string) (unlock func()) {
	var idxs []int
	for _, p := range paths {
		idxs = append(idxs, shardIdx(p))
	}
	sort.Ints(idxs)
	locked := idxs[:0]
	for _, i := range idxs {
		if len(locked) > 0 && locked[len(locked)-1] == i {
			continue // same shard: one lock covers both paths
		}
		s.shards[i].mu.Lock()
		locked = append(locked, i)
	}
	return func() {
		for j := len(locked) - 1; j >= 0; j-- {
			s.shards[locked[j]].mu.Unlock()
		}
	}
}

func splitPath(p string) []string {
	p = strings.Trim(Clean(p), "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

func infoFor(p string, e *memEntry) Info {
	p = Clean(p)
	inf := Info{
		Name:    path.Base(p),
		Path:    p,
		ModTime: e.modTime,
		Dir:     e.dir,
	}
	if !e.dir {
		inf.Size = int64(len(e.data))
		inf.Checksum = e.checksum
	}
	return inf
}

// getEntry reads the entry at clean path p under its shard's read lock.
func (s *MemStore) getEntry(p string) *memEntry {
	sh := s.shardFor(p)
	sh.mu.RLock()
	e := sh.entries[p]
	sh.mu.RUnlock()
	return e
}

// ensureDir walks down to clean path dir, creating missing directories and
// registering each in its parent, one ordered parent+child shard pair at a
// time. A parent vanishing mid-walk (concurrent Delete of a just-created
// empty directory) restarts the walk; the bound only guards against a bug
// ever looping forever.
func (s *MemStore) ensureDir(dir string) error {
	parts := splitPath(dir)
restart:
	for attempt := 0; attempt < 1000; attempt++ {
		cur := "/"
		for _, part := range parts {
			child := cur + part
			if cur != "/" {
				child = cur + "/" + part
			}
			unlock := s.lockAll(cur, child)
			pe := s.shardFor(cur).entries[cur]
			if pe == nil {
				unlock()
				continue restart
			}
			if !pe.dir {
				unlock()
				return ErrNotDir
			}
			ce := s.shardFor(child).entries[child]
			switch {
			case ce == nil:
				s.shardFor(child).entries[child] = &memEntry{
					dir: true, children: map[string]bool{}, modTime: s.now(),
				}
				pe.children[part] = true
			case !ce.dir:
				unlock()
				return ErrNotDir
			default:
				pe.children[part] = true // idempotent re-registration
			}
			unlock()
			cur = child
		}
		return nil
	}
	return fmt.Errorf("storage: ensureDir %s: namespace churn did not settle", dir)
}

// Get implements Store.
func (s *MemStore) Get(p string) ([]byte, Info, error) {
	p = Clean(p)
	e := s.getEntry(p)
	if e == nil {
		return nil, Info{}, ErrNotFound
	}
	if e.dir {
		return nil, Info{}, ErrIsDir
	}
	// Callers must not mutate the returned slice; the HTTP and xrootd
	// servers only read it.
	return e.data, infoFor(p, e), nil
}

// Put implements Store, creating parent directories as needed.
func (s *MemStore) Put(p string, data []byte) error {
	buf := make([]byte, len(data))
	copy(buf, data)
	return s.PutOwned(p, buf)
}

// PutOwned stores data at p taking ownership of the slice: the caller must
// not retain or mutate it afterwards. It skips Put's defensive copy, which
// matters to the test server's assembled multi-MiB ranged uploads.
func (s *MemStore) PutOwned(p string, data []byte) error {
	p = Clean(p)
	if p == "/" {
		return ErrIsDir
	}
	entry := &memEntry{data: data, checksum: Checksum(data), modTime: s.now()}
	return s.insert(p, entry, false)
}

// insert places entry at clean path p, creating parents and registering p
// in its parent directory under one ordered parent+child lock — the write
// and the registration are atomic, so a concurrent Delete can never leave
// a statable-but-unlisted phantom. exclusive refuses to replace an
// existing entry (Mkdir semantics).
func (s *MemStore) insert(p string, entry *memEntry, exclusive bool) error {
	parent := path.Dir(p)
	name := path.Base(p)
	for attempt := 0; attempt < 1000; attempt++ {
		if !entry.dir {
			if err := s.ensureDir(parent); err != nil {
				return err
			}
		}
		unlock := s.lockAll(parent, p)
		pe := s.shardFor(parent).entries[parent]
		if pe == nil {
			unlock()
			if entry.dir {
				// Mkdir requires parents to exist.
				return ErrNotFound
			}
			continue // parent deleted between ensureDir and lock: re-ensure
		}
		if !pe.dir {
			unlock()
			if entry.dir {
				return ErrNotFound
			}
			return ErrNotDir
		}
		old := s.shardFor(p).entries[p]
		if old != nil && (old.dir || exclusive) {
			unlock()
			if exclusive {
				return ErrExists
			}
			return ErrIsDir
		}
		s.shardFor(p).entries[p] = entry
		pe.children[name] = true
		unlock()
		return nil
	}
	return fmt.Errorf("storage: insert %s: namespace churn did not settle", p)
}

// Delete implements Store. Directories must be empty. The entry removal and
// its deregistration from the parent happen under one ordered lock pair.
func (s *MemStore) Delete(p string) error {
	p = Clean(p)
	if p == "/" {
		return ErrIsDir
	}
	parent := path.Dir(p)
	name := path.Base(p)
	unlock := s.lockAll(parent, p)
	defer unlock()
	e := s.shardFor(p).entries[p]
	if e == nil {
		return ErrNotFound
	}
	if e.dir && len(e.children) > 0 {
		return fmt.Errorf("storage: directory not empty: %s", p)
	}
	delete(s.shardFor(p).entries, p)
	if pe := s.shardFor(parent).entries[parent]; pe != nil && pe.dir {
		delete(pe.children, name)
	}
	return nil
}

// Stat implements Store.
func (s *MemStore) Stat(p string) (Info, error) {
	p = Clean(p)
	e := s.getEntry(p)
	if e == nil {
		return Info{}, ErrNotFound
	}
	return infoFor(p, e), nil
}

// List implements Store. The child-name snapshot is taken under the
// directory's shard lock; each child is then described under its own
// shard's lock (one vanishing concurrently is simply skipped).
func (s *MemStore) List(p string) ([]Info, error) {
	p = Clean(p)
	sh := s.shardFor(p)
	sh.mu.RLock()
	e := sh.entries[p]
	if e == nil {
		sh.mu.RUnlock()
		return nil, ErrNotFound
	}
	if !e.dir {
		sh.mu.RUnlock()
		return nil, ErrNotDir
	}
	names := make([]string, 0, len(e.children))
	for name := range e.children {
		names = append(names, name)
	}
	sh.mu.RUnlock()

	out := make([]Info, 0, len(names))
	for _, name := range names {
		cp := path.Join(p, name)
		if ce := s.getEntry(cp); ce != nil {
			out = append(out, infoFor(cp, ce))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir implements Store.
func (s *MemStore) Mkdir(p string) error {
	p = Clean(p)
	if p == "/" {
		return ErrExists
	}
	return s.insert(p, &memEntry{dir: true, children: map[string]bool{}, modTime: s.now()}, true)
}

// Copy implements Store: dst becomes a new object with src's bytes. Blobs
// are immutable, so the copy shares the data slice. Source, destination and
// destination parent shards are taken in one ordered acquisition, making
// the read-src/write-dst/register-dst step atomic.
func (s *MemStore) Copy(src, dst string) error {
	return s.twoKey(src, dst, false)
}

// Move implements Store: src is renamed to dst. The removal of src (entry +
// parent registration) and the creation of dst are one atomic step under
// the ordered multi-shard lock — no moment exists where both or neither
// path holds the object.
func (s *MemStore) Move(src, dst string) error {
	return s.twoKey(src, dst, true)
}

// twoKey is the shared Copy/Move implementation: ensure dst's parents, then
// lock the up-to-four involved shards (src, src parent, dst, dst parent) in
// index order and perform every mutation inside.
func (s *MemStore) twoKey(src, dst string, remove bool) error {
	src, dst = Clean(src), Clean(dst)
	if src == "/" || dst == "/" {
		return ErrIsDir
	}
	if src == dst {
		e := s.getEntry(src)
		switch {
		case e == nil:
			return ErrNotFound
		case e.dir:
			return ErrIsDir
		}
		return nil
	}
	srcParent, dstParent := path.Dir(src), path.Dir(dst)
	srcName, dstName := path.Base(src), path.Base(dst)
	for attempt := 0; attempt < 1000; attempt++ {
		if err := s.ensureDir(dstParent); err != nil {
			return err
		}
		unlock := s.lockAll(src, srcParent, dst, dstParent)
		se := s.shardFor(src).entries[src]
		if se == nil {
			unlock()
			return ErrNotFound
		}
		if se.dir {
			unlock()
			return ErrIsDir
		}
		de := s.shardFor(dst).entries[dst]
		if de != nil && de.dir {
			unlock()
			return ErrIsDir
		}
		dpe := s.shardFor(dstParent).entries[dstParent]
		if dpe == nil || !dpe.dir {
			unlock()
			continue // destination parent vanished: re-ensure and retry
		}
		s.shardFor(dst).entries[dst] = &memEntry{
			data: se.data, checksum: se.checksum, modTime: s.now(),
		}
		dpe.children[dstName] = true
		if remove {
			delete(s.shardFor(src).entries, src)
			if spe := s.shardFor(srcParent).entries[srcParent]; spe != nil && spe.dir {
				delete(spe.children, srcName)
			}
		}
		unlock()
		return nil
	}
	return fmt.Errorf("storage: copy %s -> %s: namespace churn did not settle", src, dst)
}

// DiskStore is a Store rooted at a filesystem directory.
type DiskStore struct {
	root string
}

// NewDiskStore creates (if needed) and wraps root as a Store.
func NewDiskStore(root string) (*DiskStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	return &DiskStore{root: abs}, nil
}

func (s *DiskStore) fsPath(p string) string {
	return filepath.Join(s.root, filepath.FromSlash(strings.TrimPrefix(Clean(p), "/")))
}

func mapFSErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return ErrNotFound
	case errors.Is(err, fs.ErrExist):
		return ErrExists
	default:
		return err
	}
}

// Get implements Store.
func (s *DiskStore) Get(p string) ([]byte, Info, error) {
	fp := s.fsPath(p)
	st, err := os.Stat(fp)
	if err != nil {
		return nil, Info{}, mapFSErr(err)
	}
	if st.IsDir() {
		return nil, Info{}, ErrIsDir
	}
	data, err := os.ReadFile(fp)
	if err != nil {
		return nil, Info{}, mapFSErr(err)
	}
	return data, s.infoFromFS(p, st, data), nil
}

func (s *DiskStore) infoFromFS(p string, st fs.FileInfo, data []byte) Info {
	inf := Info{
		Name:    path.Base(Clean(p)),
		Path:    Clean(p),
		ModTime: st.ModTime(),
		Dir:     st.IsDir(),
	}
	if !st.IsDir() {
		inf.Size = st.Size()
		if data != nil {
			inf.Checksum = Checksum(data)
		}
	}
	return inf
}

// Put implements Store.
func (s *DiskStore) Put(p string, data []byte) error {
	fp := s.fsPath(p)
	if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
		return err
	}
	return os.WriteFile(fp, data, 0o644)
}

// Delete implements Store.
func (s *DiskStore) Delete(p string) error {
	fp := s.fsPath(p)
	if _, err := os.Stat(fp); err != nil {
		return mapFSErr(err)
	}
	return mapFSErr(os.Remove(fp))
}

// Stat implements Store.
func (s *DiskStore) Stat(p string) (Info, error) {
	st, err := os.Stat(s.fsPath(p))
	if err != nil {
		return Info{}, mapFSErr(err)
	}
	return s.infoFromFS(p, st, nil), nil
}

// List implements Store.
func (s *DiskStore) List(p string) ([]Info, error) {
	entries, err := os.ReadDir(s.fsPath(p))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		st, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, s.infoFromFS(path.Join(Clean(p), e.Name()), st, nil))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mkdir implements Store.
func (s *DiskStore) Mkdir(p string) error {
	fp := s.fsPath(p)
	if _, err := os.Stat(fp); err == nil {
		return ErrExists
	}
	return mapFSErr(os.Mkdir(fp, 0o755))
}

// Copy implements Store by reading src and writing dst.
func (s *DiskStore) Copy(src, dst string) error {
	data, inf, err := s.Get(src)
	if err != nil {
		return err
	}
	_ = inf
	return s.Put(dst, data)
}

// Move implements Store via rename, creating dst's parents.
func (s *DiskStore) Move(src, dst string) error {
	sp := s.fsPath(src)
	st, err := os.Stat(sp)
	if err != nil {
		return mapFSErr(err)
	}
	if st.IsDir() {
		return ErrIsDir
	}
	dp := s.fsPath(dst)
	if err := os.MkdirAll(filepath.Dir(dp), 0o755); err != nil {
		return err
	}
	return mapFSErr(os.Rename(sp, dp))
}
