package core

import (
	"bytes"
	"context"
	"io"
	"testing"

	"godavix/internal/httpserv"
	"godavix/internal/metalink"
)

// TestAbortedRequestFailsCleanly: the server crashes before answering; the
// client must surface a transport error, not hang or panic.
func TestAbortedRequestFailsCleanly(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", []byte("x"))
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Abort: true, Remaining: 1})

	_, err := e.client.Get(context.Background(), dpm1, "/f")
	if err == nil {
		t.Fatal("expected transport error from aborted connection")
	}
	// Next request works (fault expired, fresh connection dialed).
	got, err := e.client.Get(context.Background(), dpm1, "/f")
	if err != nil || string(got) != "x" {
		t.Fatalf("recovery get = %q err=%v", got, err)
	}
}

// TestMidBodyTruncationDetected: the body is cut after half the declared
// Content-Length; the client must report an error, never short data.
func TestMidBodyTruncationDetected(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := make([]byte, 64<<10)
	for i := range blob {
		blob[i] = byte(i)
	}
	e.stores[dpm1].Put("/f", blob)
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{TruncateBody: 32 << 10, Remaining: 1})

	_, err := e.client.Get(context.Background(), dpm1, "/f")
	if err == nil {
		t.Fatal("truncated body not detected")
	}
	got, err := e.client.Get(context.Background(), dpm1, "/f")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("recovery get: %d bytes err=%v", len(got), err)
	}
}

// TestMidBodyCutFailsOverToReplica: a replica dying mid-transfer is an
// unavailability signal; the read must complete from the second replica.
func TestMidBodyCutFailsOverToReplica(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	blob := make([]byte, 32<<10)
	for i := range blob {
		blob[i] = byte(i * 7)
	}
	e.stores[dpm1].Put("/f", blob)
	e.stores["dpm2:80"].Put("/f", blob)
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: mlFor("http://dpm2:80/f")})

	// Primary always cuts transfers of /f halfway.
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{TruncateBody: 16 << 10})

	got, err := e.client.Get(context.Background(), dpm1, "/f")
	if err != nil {
		t.Fatalf("failover after mid-body cut: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("content mismatch after failover")
	}
}

// TestFileReadRetriesThroughCut: File.ReadAt across a mid-body cut with
// replicas behind a federation.
func TestFileReadRetriesThroughCut(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	blob := make([]byte, 16<<10)
	for i := range blob {
		blob[i] = byte(i * 3)
	}
	e.stores[dpm1].Put("/f", blob)
	e.stores["dpm2:80"].Put("/f", blob)
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: mlFor("http://dpm2:80/f")})

	ctx := context.Background()
	f, err := e.client.Open(ctx, dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Abort: true})

	buf := make([]byte, len(blob))
	if _, err := io.ReadFull(io.NewSectionReader(readAtAdapter{f}, 0, f.Size()), buf); err != nil {
		t.Fatalf("sectioned read with aborting primary: %v", err)
	}
	if !bytes.Equal(buf, blob) {
		t.Fatal("content mismatch")
	}
}

// readAtAdapter strips the context from File.ReadAt for io.SectionReader.
type readAtAdapter struct{ f *File }

func (a readAtAdapter) ReadAt(p []byte, off int64) (int, error) { return a.f.ReadAt(p, off) }

// TestMultiStreamCancelsSiblingsOnError: when one chunk fails for a reason
// no replica can fix, the sibling streams must be cancelled instead of
// draining the whole work queue — the server must not see anywhere near one
// request per chunk.
func TestMultiStreamCancelsSiblingsOnError(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80", ChunkSize: 256, MaxStreams: 2})
	blob := make([]byte, 64<<8) // 64 chunks
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", blob)
	ml := &metalink.Metalink{
		Name: "f", Size: int64(len(blob)),
		URLs: []metalink.URL{{Loc: "http://dpm1:80/f", Priority: 1}},
	}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})

	// Exactly one chunk GET hits a semantic (non-retryable) failure; every
	// other chunk would succeed, so without cancellation the sibling stream
	// happily drains the remaining ~63 chunks before the error surfaces.
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 403, Remaining: 1})

	_, err := e.client.DownloadMultiStream(context.Background(), dpm1, "/f")
	if err == nil {
		t.Fatal("expected error")
	}
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got > 8 {
		t.Fatalf("server saw %d chunk GETs after first failure; siblings not cancelled", got)
	}
}
