package core

import (
	"bytes"
	"context"
	"log/slog"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/obs"
)

// eventLog records trace callbacks as strings, safely across the
// concurrent chunk workers.
type eventLog struct {
	mu     sync.Mutex
	events []string
}

func (l *eventLog) add(s string) {
	l.mu.Lock()
	l.events = append(l.events, s)
	l.mu.Unlock()
}

func (l *eventLog) count(prefix string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if strings.HasPrefix(e, prefix) {
			n++
		}
	}
	return n
}

// TestTraceEventsThroughRedirect: a GET bounced by a head node must emit
// the full event sequence — op start, a request and conn-acquired per hop,
// the redirect with its Location, and an op done carrying the result.
func TestTraceEventsThroughRedirect(t *testing.T) {
	log := &eventLog{}
	var opErr error
	trace := &obs.ClientTrace{
		OpStart: func(op, host, path string) { log.add("start " + op + " " + host + path) },
		OpDone: func(op, host, path string, d time.Duration, err error) {
			opErr = err
			log.add("done " + op + " " + host + path)
		},
		Request:      func(method, host, path string) { log.add("req " + method + " " + host + path) },
		ConnAcquired: func(host string, reused bool) { log.add("conn " + host) },
		Redirect:     func(op, fromHost, location string) { log.add("redirect " + op + " " + fromHost + " -> " + location) },
	}
	e := newEnv(t, Options{Strategy: StrategyNone, Trace: trace})
	e.startServer(t, "disk1:80", httpserv.Options{})
	startHeadNode(t, e, "head:80", "disk1:80")
	e.stores["disk1:80"].Put("/pool/f", []byte("data"))

	got, err := e.client.Get(context.Background(), "head:80", "/pool/f")
	if err != nil || string(got) != "data" {
		t.Fatalf("get: %q err=%v", got, err)
	}
	for want, n := range map[string]int{
		"start GET head:80/pool/f":                       1,
		"done GET head:80/pool/f":                        1,
		"redirect GET head:80 -> http://disk1:80/pool/f": 1,
	} {
		if c := log.count(want); c != n {
			t.Errorf("event %q seen %d times, want %d\nevents: %v", want, c, n, log.events)
		}
	}
	// One request and one connection per hop.
	if c := log.count("req GET "); c != 2 {
		t.Errorf("request events = %d, want 2 (one per hop)\nevents: %v", c, log.events)
	}
	if c := log.count("conn "); c != 2 {
		t.Errorf("conn-acquired events = %d, want 2\nevents: %v", c, log.events)
	}
	if opErr != nil {
		t.Errorf("OpDone err = %v, want nil", opErr)
	}
}

// TestTraceUploadChunkBytesSumToSize: the ChunkDone events of a
// multi-stream upload must tile the object exactly — offsets contiguous
// from zero, lengths summing to the (deliberately unaligned) size.
func TestTraceUploadChunkBytesSumToSize(t *testing.T) {
	type span struct{ off, ln int64 }
	var mu sync.Mutex
	var spans []span
	var starts atomic.Int64
	trace := &obs.ClientTrace{
		ChunkStart: func(dir obs.Direction, path string, idx int, off, ln int64) {
			if dir == obs.Up {
				starts.Add(1)
			}
		},
		ChunkDone: func(dir obs.Direction, path string, idx int, off, ln int64, err error) {
			if dir != obs.Up {
				return
			}
			if err != nil {
				t.Errorf("chunk %d failed: %v", idx, err)
				return
			}
			mu.Lock()
			spans = append(spans, span{off, ln})
			mu.Unlock()
		},
	}
	e := newEnv(t, Options{Trace: trace, ChunkSize: 32 << 10, UploadParallelism: 4})
	e.startServer(t, dpm1, httpserv.Options{})

	const size = (256 << 10) + 12345
	blob := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(blob)
	if err := e.client.UploadMultiStream(context.Background(), dpm1, "/store/big", bytes.NewReader(blob), size); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	var next, total int64
	for _, s := range spans {
		if s.off != next {
			t.Fatalf("chunk at offset %d, want %d (gap or overlap)\nspans: %v", s.off, next, spans)
		}
		next = s.off + s.ln
		total += s.ln
	}
	if total != size {
		t.Fatalf("chunk bytes sum to %d, want %d", total, size)
	}
	if int64(len(spans)) != starts.Load() {
		t.Fatalf("chunk starts = %d, dones = %d", starts.Load(), len(spans))
	}
}

// TestBytesUpCountedOnceThroughRedirect: a PUT whose body crosses the wire
// twice (full write to the head node, 302, full write to the disk node)
// must charge BytesUp for the settled exchange only — the abandoned hop's
// bytes are dropped, not double-counted.
func TestBytesUpCountedOnceThroughRedirect(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, "disk1:80", httpserv.Options{})
	startHeadNode(t, e, "head:80", "disk1:80")

	const size = 256 << 10
	blob := make([]byte, size)
	if err := e.client.Put(context.Background(), "head:80", "/pool/big", blob); err != nil {
		t.Fatal(err)
	}
	up := e.client.Metrics().BytesUp
	if up < size {
		t.Fatalf("BytesUp = %d, want >= body size %d", up, size)
	}
	// Headers are a few hundred bytes; anything near 2x the body means the
	// abandoned head-node hop was counted too.
	if up > size+size/2 {
		t.Fatalf("BytesUp = %d for a %d-byte body: redirect hop double-counted", up, size)
	}
}

// TestTraceConcurrentWithSnapshots races everything satellite-3 worries
// about: trace callbacks firing from concurrent chunk workers while other
// goroutines snapshot the metrics histograms mid-write. Run with -race.
func TestTraceConcurrentWithSnapshots(t *testing.T) {
	var events atomic.Int64
	bump := func() { events.Add(1) }
	trace := &obs.ClientTrace{
		OpStart:      func(string, string, string) { bump() },
		OpDone:       func(string, string, string, time.Duration, error) { bump() },
		Request:      func(string, string, string) { bump() },
		ConnAcquired: func(string, bool) { bump() },
		ChunkStart:   func(obs.Direction, string, int, int64, int64) { bump() },
		ChunkDone:    func(obs.Direction, string, int, int64, int64, error) { bump() },
	}
	e := newEnv(t, Options{Trace: trace, ChunkSize: 16 << 10, UploadParallelism: 4, CacheSize: 1 << 20})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	const size = 128 << 10
	blob := make([]byte, size)
	rand.New(rand.NewSource(8)).Read(blob)

	done := make(chan struct{})
	var snapErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			s := e.client.Snapshot()
			if s.Engine.Requests < 0 {
				snapErr = context.Canceled // impossible; keeps the read observable
				return
			}
		}
	}()
	for i := 0; i < 4; i++ {
		if err := e.client.UploadMultiStream(ctx, dpm1, "/store/r", bytes.NewReader(blob), size); err != nil {
			t.Fatal(err)
		}
		if _, err := e.client.Get(ctx, dpm1, "/store/r"); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if events.Load() == 0 {
		t.Fatal("no trace events recorded")
	}
}

// TestLoggerRecordsOperations: Options.Logger alone (no Trace) must record
// engine activity as structured slog lines.
func TestLoggerRecordsOperations(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	e := newEnv(t, Options{Logger: logger})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/store/f", []byte("data"))

	if _, err := e.client.Get(context.Background(), dpm1, "/store/f"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"davix op", "op=GET", "davix request", "davix conn acquired"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsSnapshotUnderHistogramWrites hammers one op histogram from
// many goroutines while snapshotting: counts must be monotonic and the
// quantiles derived from a coherent bucket view (run with -race).
func TestMetricsSnapshotUnderHistogramWrites(t *testing.T) {
	m := &metrics{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.observe("GET", time.Duration(rng.Intn(1_000_000))*time.Microsecond)
			}
		}(int64(i))
	}
	var last int64
	for i := 0; i < 100; i++ {
		s := m.snapshot()
		if got := s.Ops["GET"].Count; got < last {
			t.Fatalf("op count went backwards: %d -> %d", last, got)
		} else {
			last = got
		}
	}
	close(stop)
	wg.Wait()
}
