package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"godavix/internal/bufpool"
	"godavix/internal/digest"
	"godavix/internal/obs"
)

// Checkpointed resume: a multi-stream transfer journals every completed
// chunk (offset, length, digest) to a sidecar file next to the local
// *os.File. An interrupted transfer restarted with the same geometry loads
// the journal, re-verifies each journaled chunk against the bytes actually
// on disk, and transfers only what is missing or no longer matches. The
// journal is trusted for nothing: a record only skips work after its chunk
// re-hashes to the recorded digest, so neither a torn journal write, a
// lying record, nor data the OS never flushed can ever yield a
// phantom-complete chunk.
//
// Sidecar layout, all big endian:
//
//	header:  magic "DAVIXCK1" | dir byte | size int64 |
//	         algo,aux,id length-prefixed strings | crc32(IEEE) of the above
//	record:  off int64 | ln int64 | sum uint32 | crc32(IEEE) of the 20 bytes
//
// Records are fixed 24-byte appends; the header crc pins the transfer
// identity (direction, object size, digest algorithm, server checksum or
// upload destination+id), so a journal from a different transfer is
// discarded wholesale instead of partially believed.

// CheckpointSuffix names the sidecar journal next to the local file of a
// resumable transfer ("<file>" + CheckpointSuffix).
const CheckpointSuffix = ".davix-ck"

var ckMagic = [8]byte{'D', 'A', 'V', 'I', 'X', 'C', 'K', '1'}

const ckRecSize = 24

// ckAppendHook, when non-nil, intercepts the raw record write — the test
// seam for injected torn-write/failed-fsync faults.
var ckAppendHook func(f *os.File, rec []byte) (int, error)

// ckHeader is the transfer identity a journal is bound to.
type ckHeader struct {
	dir  byte   // 'D' download, 'U' upload
	size int64  // object size
	algo string // chunk digest algorithm
	aux  string // server checksum (downloads) / "host path" (uploads)
	id   string // upload id to reattach to the server-side assembly
}

func (h ckHeader) encode() []byte {
	b := make([]byte, 0, 64)
	b = append(b, ckMagic[:]...)
	b = append(b, h.dir)
	b = binary.BigEndian.AppendUint64(b, uint64(h.size))
	for _, s := range []string{h.algo, h.aux, h.id} {
		b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeCkHeader reads and validates a header from the start of b,
// returning it and its encoded length.
func decodeCkHeader(b []byte) (ckHeader, int, bool) {
	var h ckHeader
	if len(b) < len(ckMagic)+1+8 || [8]byte(b[:8]) != ckMagic {
		return h, 0, false
	}
	h.dir = b[8]
	h.size = int64(binary.BigEndian.Uint64(b[9:]))
	p := 17
	for _, dst := range []*string{&h.algo, &h.aux, &h.id} {
		if len(b) < p+2 {
			return h, 0, false
		}
		n := int(binary.BigEndian.Uint16(b[p:]))
		p += 2
		if len(b) < p+n {
			return h, 0, false
		}
		*dst = string(b[p : p+n])
		p += n
	}
	if len(b) < p+4 || binary.BigEndian.Uint32(b[p:]) != crc32.ChecksumIEEE(b[:p]) {
		return h, 0, false
	}
	return h, p + 4, true
}

// ckRecord is one journaled chunk completion.
type ckRecord struct {
	off, ln int64
	sum     uint32
}

// checkpoint is an open journal. Appends are best-effort: a journal write
// failure marks the checkpoint dead and the transfer proceeds unjournaled —
// resume safety comes from re-verification, never from the journal itself.
type checkpoint struct {
	name string
	f    *os.File
	mu   sync.Mutex
	recs int
	dead bool
}

// openCheckpoint opens (or creates) the sidecar at name for the transfer
// identified by want. An existing journal whose header does not match —
// different direction, size, algorithm or aux identity — is reset rather
// than partially believed; a matching one yields its intact records, with
// the id the previous session recorded. Record scanning stops at the first
// torn or corrupt record and truncates it away so later appends never
// interleave with garbage.
func openCheckpoint(name string, want ckHeader) (*checkpoint, []ckRecord, ckHeader, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, want, err
	}
	ck := &checkpoint{name: name, f: f}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		os.Remove(name)
		return nil, nil, want, err
	}

	reset := func() (*checkpoint, []ckRecord, ckHeader, error) {
		enc := want.encode()
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, want, err
		}
		if _, err := f.WriteAt(enc, 0); err != nil {
			f.Close()
			return nil, nil, want, err
		}
		if _, err := f.Seek(int64(len(enc)), io.SeekStart); err != nil {
			f.Close()
			return nil, nil, want, err
		}
		return ck, nil, want, nil
	}

	hdr, hlen, ok := decodeCkHeader(raw)
	// The aux identity (server checksum for downloads) is only a mismatch
	// when both sides actually have one: a replica fleet that cannot answer
	// a checksum probe right now — say, mid 503 storm, exactly when resume
	// matters most — must not condemn a valid journal. The per-chunk
	// re-hash against local bytes remains the trust anchor either way.
	auxMismatch := hdr.aux != want.aux && hdr.aux != "" && want.aux != ""
	if !ok || hdr.dir != want.dir || hdr.size != want.size || hdr.algo != want.algo || auxMismatch {
		return reset()
	}
	var recs []ckRecord
	good := hlen
	for p := hlen; p+ckRecSize <= len(raw); p += ckRecSize {
		rec := raw[p : p+ckRecSize]
		if binary.BigEndian.Uint32(rec[20:]) != crc32.ChecksumIEEE(rec[:20]) {
			break
		}
		r := ckRecord{
			off: int64(binary.BigEndian.Uint64(rec[0:])),
			ln:  int64(binary.BigEndian.Uint64(rec[8:])),
			sum: binary.BigEndian.Uint32(rec[16:]),
		}
		if r.off < 0 || r.ln <= 0 || r.off+r.ln > hdr.size {
			break
		}
		recs = append(recs, r)
		good = p + ckRecSize
	}
	if good < len(raw) {
		if err := f.Truncate(int64(good)); err != nil {
			return reset()
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		return reset()
	}
	ck.recs = len(recs)
	return ck, recs, hdr, nil
}

// append journals one completed chunk. Failures (including injected
// torn-write faults) permanently stop journaling for this transfer; the
// already-written prefix stays valid because every record is individually
// checksummed.
func (ck *checkpoint) append(off, ln int64, sum uint32) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.dead {
		return
	}
	var rec [ckRecSize]byte
	binary.BigEndian.PutUint64(rec[0:], uint64(off))
	binary.BigEndian.PutUint64(rec[8:], uint64(ln))
	binary.BigEndian.PutUint32(rec[16:], sum)
	binary.BigEndian.PutUint32(rec[20:], crc32.ChecksumIEEE(rec[:20]))
	write := ckAppendHook
	if write == nil {
		write = func(f *os.File, b []byte) (int, error) { return f.Write(b) }
	}
	if _, err := write(ck.f, rec[:]); err != nil {
		ck.dead = true
		return
	}
	if err := ck.f.Sync(); err != nil {
		ck.dead = true
		return
	}
	ck.recs++
}

// close finishes the journal. keep=true preserves a sidecar that holds
// records so the interrupted transfer can resume; an empty journal is
// always removed — a cancelled transfer that completed nothing must not
// leave an orphaned sidecar behind.
func (ck *checkpoint) close(keep bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.f.Close()
	if !keep || ck.recs == 0 {
		os.Remove(ck.name)
	}
}

// chunkSpans returns the chunk grid a transfer will fetch: offset → length
// for every chunk of [start, size) at cs granularity.
func chunkSpans(start, size, cs int64) map[int64]int64 {
	spans := make(map[int64]int64, (size-start+cs-1)/cs)
	for off := start; off < size; off += cs {
		spans[off] = min(cs, size-off)
	}
	return spans
}

// verifyJournal re-checks journaled records against the local bytes at
// src, returning digest-proven chunks keyed by offset. Records that do not
// sit exactly on the current chunk grid are ignored (a geometry change —
// different ChunkSize — makes them useless, not suspect); records whose
// bytes no longer hash to the recorded digest count as verify failures and
// their chunks are re-transferred.
func (c *Client) verifyJournal(recs []ckRecord, src io.ReaderAt, spans map[int64]int64, algo string, dir obs.Direction, path string) map[int64]uint32 {
	if len(recs) == 0 {
		return nil
	}
	skip := make(map[int64]uint32, len(recs))
	var resumed int64
	failed := 0
	for _, r := range recs {
		if ln, ok := spans[r.off]; !ok || ln != r.ln {
			continue
		}
		if _, dup := skip[r.off]; dup {
			continue
		}
		b := bufpool.Get(int(r.ln))
		_, err := src.ReadAt(b[:r.ln], r.off)
		match := err == nil && digest.Sum32(algo, b[:r.ln]) == r.sum
		bufpool.Put(b)
		if !match {
			failed++
			c.metrics.resumeVerifyFailures.Add(1)
			continue
		}
		skip[r.off] = r.sum
		resumed += r.ln
	}
	c.metrics.resumedBytes.Add(resumed)
	c.trace.EmitResume(dir, path, resumed, len(skip), failed)
	return skip
}

// downloadCheckpoint opens the resume journal for a download of size bytes
// into f, verifying any journaled chunks against the file's current
// content. Returns a nil checkpoint when resume is off or the target is
// not a plain file.
func (c *Client) downloadCheckpoint(w io.WriterAt, path string, size int64, algo, want string) (*checkpoint, map[int64]uint32) {
	if !c.opts.Resume {
		return nil, nil
	}
	f, ok := w.(*os.File)
	if !ok || f.Name() == "" {
		return nil, nil
	}
	hdr := ckHeader{dir: 'D', size: size, algo: algo, aux: want}
	ck, recs, _, err := openCheckpoint(f.Name()+CheckpointSuffix, hdr)
	if err != nil {
		return nil, nil
	}
	return ck, c.verifyJournal(recs, f, chunkSpans(0, size, c.opts.ChunkSize), algo, obs.Down, path)
}

// uploadCheckpoint opens the resume journal for an upload of size bytes
// from src to host/path, verifying journaled chunks against the current
// source bytes (an edited source invalidates its records chunk by chunk).
// The previous session's upload id is returned so the resumed chunks
// reattach to the same server-side partial assembly; a fresh journal
// records the caller-proposed id.
func (c *Client) uploadCheckpoint(src io.ReaderAt, host, path string, size, probeLen int64, proposedID string) (*checkpoint, map[int64]uint32, string) {
	if !c.opts.Resume {
		return nil, nil, proposedID
	}
	f, ok := src.(*os.File)
	if !ok || f.Name() == "" {
		return nil, nil, proposedID
	}
	hdr := ckHeader{dir: 'U', size: size, algo: digest.Adler32, aux: host + " " + path, id: proposedID}
	ck, recs, got, err := openCheckpoint(f.Name()+CheckpointSuffix, hdr)
	if err != nil {
		return nil, nil, proposedID
	}
	id := proposedID
	if got.id != "" {
		id = got.id
	}
	spans := chunkSpans(probeLen, size, c.opts.ChunkSize)
	return ck, c.verifyJournal(recs, f, spans, digest.Adler32, obs.Up, path), id
}

// String renders a record for debugging.
func (r ckRecord) String() string {
	return fmt.Sprintf("ck[%d+%d %08x]", r.off, r.ln, r.sum)
}
