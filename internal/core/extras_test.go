package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"testing"

	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/rangev"
	"godavix/internal/storage"
)

// startHeadNode brings up a DPM-style head node that redirects data
// operations for /pool/* to the given disk node.
func startHeadNode(t *testing.T, e *testEnv, addr, diskAddr string) {
	t.Helper()
	st := storage.NewMemStore()
	srv := httpserv.New(st, httpserv.Options{
		Redirect: func(method, p string) (string, bool) {
			return "http://" + diskAddr + p, true
		},
	})
	l, err := e.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	e.stores[addr] = st
	e.srvs[addr] = srv
}

func TestRedirectFollowedForGet(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, "disk1:80", httpserv.Options{})
	startHeadNode(t, e, "head:80", "disk1:80")
	e.stores["disk1:80"].Put("/pool/f", []byte("disk node data"))

	ctx := context.Background()
	got, err := e.client.Get(ctx, "head:80", "/pool/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "disk node data" {
		t.Fatalf("got %q", got)
	}
	// The head node served only the redirect; the disk node served data.
	if e.srvs["disk1:80"].RequestsByMethod("GET") != 1 {
		t.Fatal("disk node did not serve the GET")
	}
}

func TestRedirectFollowedForPutAndRanges(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, "disk1:80", httpserv.Options{})
	startHeadNode(t, e, "head:80", "disk1:80")
	ctx := context.Background()

	if err := e.client.Put(ctx, "head:80", "/pool/obj", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	// Data must have landed on the disk node.
	got, _, err := e.stores["disk1:80"].Get("/pool/obj")
	if err != nil || string(got) != "0123456789" {
		t.Fatalf("disk store: %q err=%v", got, err)
	}

	part, err := e.client.GetRange(ctx, "head:80", "/pool/obj", 2, 4)
	if err != nil || string(part) != "2345" {
		t.Fatalf("range via redirect = %q err=%v", part, err)
	}

	// Vectored read through the redirecting head node.
	ranges := []rangev.Range{{Off: 0, Len: 2}, {Off: 8, Len: 2}}
	dsts := [][]byte{make([]byte, 2), make([]byte, 2)}
	if err := e.client.ReadVec(ctx, "head:80", "/pool/obj", ranges, dsts); err != nil {
		t.Fatal(err)
	}
	if string(dsts[0]) != "01" || string(dsts[1]) != "89" {
		t.Fatalf("vectored via redirect = %q %q", dsts[0], dsts[1])
	}
}

func TestRedirectLoopDetected(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, MaxRedirects: 3})
	// head redirects to itself forever: detected on the first revisit, not
	// after burning the whole MaxRedirects budget.
	startHeadNode(t, e, "loop:80", "loop:80")
	_, err := e.client.Get(context.Background(), "loop:80", "/pool/f")
	if !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("err = %v", err)
	}
	if got := e.srvs["loop:80"].Requests(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (fail fast on the cycle)", got)
	}
}

func TestRedirectWithoutLocationFails(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", []byte("x"))
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: http.StatusFound})
	_, err := e.client.Get(context.Background(), dpm1, "/f")
	if err == nil {
		t.Fatal("expected error for Location-less redirect")
	}
}

func TestBearerAuth(t *testing.T) {
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		Auth:     &Credentials{Bearer: "wlcg-token-123"},
	})
	e.startServer(t, dpm1, httpserv.Options{
		Authorize: func(a string) bool { return a == "Bearer wlcg-token-123" },
	})
	e.stores[dpm1].Put("/f", []byte("secret"))
	ctx := context.Background()

	got, err := e.client.Get(ctx, dpm1, "/f")
	if err != nil || string(got) != "secret" {
		t.Fatalf("authorized get: %q err=%v", got, err)
	}

	// A client without credentials is rejected with 401.
	anon, err := NewClient(Options{Dialer: e.net, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	_, err = anon.Get(ctx, dpm1, "/f")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 401 {
		t.Fatalf("anonymous err = %v", err)
	}
}

func TestBasicAuth(t *testing.T) {
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		Auth:     &Credentials{Username: "alice", Password: "s3cret"},
	})
	// "alice:s3cret" base64 = YWxpY2U6czNjcmV0
	e.startServer(t, dpm1, httpserv.Options{
		Authorize: func(a string) bool { return a == "Basic YWxpY2U6czNjcmV0" },
	})
	e.stores[dpm1].Put("/f", []byte("x"))
	if _, err := e.client.Get(context.Background(), dpm1, "/f"); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumVerification(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, VerifyChecksums: true})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := []byte("verified payload")
	e.stores[dpm1].Put("/f", blob)
	ctx := context.Background()

	got, err := e.client.Get(ctx, dpm1, "/f")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("get: %v", err)
	}

	// A lying server: correct data advertised under a wrong checksum.
	// Simulate by serving through a raw handler is heavy; instead verify
	// the checker directly and via a corrupted store entry with a stale
	// checksum header captured from the original object.
	if err := verifyChecksum(blob, storage.Checksum(blob), "/f", false); err != nil {
		t.Fatalf("matching checksum rejected: %v", err)
	}
	if err := verifyChecksum([]byte("tampered!"), storage.Checksum(blob), "/f", false); !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("mismatch not detected: %v", err)
	}
	// Unknown algorithms are skipped opportunistically but fail strict mode.
	if err := verifyChecksum(blob, "sha256:00", "/f", false); err != nil {
		t.Fatalf("unknown algo rejected in lax mode: %v", err)
	}
	if err := verifyChecksum(blob, "sha256:00", "/f", true); !errors.Is(err, ErrChecksumUnsupported) {
		t.Fatalf("unknown algo in strict mode: got %v, want ErrChecksumUnsupported", err)
	}
	// Malformed values must never pass verification, strict or not.
	if err := verifyChecksum(blob, "garbage-no-colon", "/f", false); err == nil {
		t.Fatal("malformed (no colon) accepted")
	}
	if err := verifyChecksum(blob, "md5:abcdef", "/f", false); err == nil {
		t.Fatal("wrong-length md5 accepted")
	}
	if err := verifyChecksum(blob, "adler32:zzzzzzzz", "/f", false); err == nil {
		t.Fatal("non-hex adler32 accepted")
	}
	// The mismatch error names the offending byte span.
	err = verifyChecksum([]byte("tampered!"), storage.Checksum(blob), "/f", false)
	var ce *ChecksumError
	if !errors.As(err, &ce) || ce.Length != int64(len("tampered!")) {
		t.Fatalf("mismatch error lacks span: %v", err)
	}
}

func TestThirdPartyCopy(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	// The source server needs its own client to push with.
	copier, err := NewClient(Options{Dialer: e.net, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	defer copier.Close()
	e.startServer(t, "src:80", httpserv.Options{Copier: copier})
	e.startServer(t, "dst:80", httpserv.Options{})

	blob := make([]byte, 256<<10)
	rand.New(rand.NewSource(1)).Read(blob)
	e.stores["src:80"].Put("/data/big", blob)

	ctx := context.Background()
	if err := e.client.Copy(ctx, "src:80", "/data/big", "http://dst:80/landed/big"); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores["dst:80"].Get("/landed/big")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("dest content: %d bytes err=%v", len(got), err)
	}
	// The data flowed server-to-server: the requesting client issued only
	// the COPY.
	if e.srvs["src:80"].RequestsByMethod("COPY") != 1 {
		t.Fatal("COPY not served by source")
	}
	if e.srvs["dst:80"].RequestsByMethod("PUT") != 1 {
		t.Fatal("PUT not pushed to destination")
	}
}

func TestThirdPartyCopyErrors(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, "plain:80", httpserv.Options{}) // no Copier
	ctx := context.Background()

	err := e.client.Copy(ctx, "plain:80", "/f", "http://dst:80/f")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotImplemented {
		t.Fatalf("copy without copier err = %v", err)
	}

	copier, _ := NewClient(Options{Dialer: e.net, Strategy: StrategyNone})
	defer copier.Close()
	e.startServer(t, "src:80", httpserv.Options{Copier: copier})
	e.stores["src:80"].Put("/f", []byte("x"))

	// Missing destination header cannot happen via Copy(); bad dest URL can.
	if err := e.client.Copy(ctx, "src:80", "/f", "ftp://nope/f"); err == nil {
		t.Fatal("bad destination accepted")
	}
	// Unreachable destination: 502.
	err = e.client.Copy(ctx, "src:80", "/f", "http://ghost:80/f")
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Fatalf("unreachable dest err = %v", err)
	}
	// Missing source: 404.
	err = e.client.Copy(ctx, "src:80", "/missing", "http://dst:80/f")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing source err = %v", err)
	}
}

func TestRedirectAcrossFailover(t *testing.T) {
	// Head node redirecting to a dead disk node: the dial failure must be
	// classified as replica-unavailable and fail over via metalink.
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, "disk1:80", httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	startHeadNode(t, e, "head:80", "disk1:80")

	blob := []byte("survives redirect failure")
	e.stores["disk1:80"].Put("/pool/f", blob)
	e.stores["dpm2:80"].Put("/pool/f", blob)

	ml := mlFor("http://dpm2:80/pool/f")
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: ml})

	e.net.SetDown("disk1:80", true)
	got, err := e.client.Get(context.Background(), "head:80", "/pool/f")
	if err != nil {
		t.Fatalf("failover after redirect: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("got %q", got)
	}
}

// mlFor builds a MetalinkProvider listing the given replica URLs.
func mlFor(urls ...string) httpserv.MetalinkProvider {
	return func(p string) *metalink.Metalink {
		doc := &metalink.Metalink{Name: "f", Size: -1}
		for i, u := range urls {
			doc.URLs = append(doc.URLs, metalink.URL{Loc: u, Priority: i + 1})
		}
		return doc
	}
}
