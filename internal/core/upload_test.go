package core

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/pool"
	"godavix/internal/storage"
)

// uploadBlob builds a deterministic payload of n bytes.
func uploadBlob(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestPutReaderStreamsKnownSize(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := uploadBlob(96<<10, 31)
	// bytes.Buffer is deliberately non-seekable: the body must stream.
	if err := e.client.PutReader(ctx, dpm1, "/up", bytes.NewBuffer(blob), int64(len(blob))); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores[dpm1].Get("/up")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("stored %d bytes err=%v", len(got), err)
	}
	if puts := e.srvs[dpm1].RequestsByMethod("PUT"); puts != 1 {
		t.Fatalf("server PUTs = %d, want 1", puts)
	}
}

func TestPutReaderUnknownSizeUsesChunked(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})

	blob := uploadBlob(40<<10, 32)
	if err := e.client.PutReader(context.Background(), dpm1, "/chunked", bytes.NewBuffer(blob), -1); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores[dpm1].Get("/chunked")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("stored %d bytes err=%v", len(got), err)
	}
}

// countingReader counts the bytes drained from the wrapped reader, to
// prove a redirect hop never consumed the body.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func TestPutReaderFollowsRedirectBeforeBody(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, "disk1:80", httpserv.Options{})
	startHeadNode(t, e, "head:80", "disk1:80")

	blob := uploadBlob(32<<10, 33)
	cr := &countingReader{r: bytes.NewBuffer(blob)}
	if err := e.client.PutReader(context.Background(), "head:80", "/pool/up", cr, int64(len(blob))); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores["disk1:80"].Get("/pool/up")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("disk store: %d bytes err=%v", len(got), err)
	}
	// The redirect verdict arrived before the body was streamed: the
	// reader was drained exactly once, for the disk-node hop.
	if cr.n != int64(len(blob)) {
		t.Fatalf("reader consumed %d bytes, want %d (redirect must not re-read)", cr.n, len(blob))
	}
	if puts := e.srvs["disk1:80"].RequestsByMethod("PUT"); puts != 1 {
		t.Fatalf("disk node PUTs = %d, want 1", puts)
	}
}

func TestUploadMultiStreamReassembly(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, UploadParallelism: 4})
	e.startServer(t, dpm1, httpserv.Options{})

	blob := uploadBlob(64<<10, 34) // 16 chunks
	if err := e.client.UploadMultiStream(context.Background(), dpm1, "/ms", bytes.NewReader(blob), int64(len(blob))); err != nil {
		t.Fatal(err)
	}
	got, inf, err := e.stores[dpm1].Get("/ms")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("stored %d bytes err=%v", len(got), err)
	}
	if inf.Checksum != storage.Checksum(blob) {
		t.Fatalf("checksum %q after reassembly", inf.Checksum)
	}
	if puts := e.srvs[dpm1].RequestsByMethod("PUT"); puts != 16 {
		t.Fatalf("server PUTs = %d, want 16 (one per chunk)", puts)
	}
}

func TestUploadMultiStreamOddSizes(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 1000, UploadParallelism: 3})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	for _, n := range []int{1, 999, 1000, 1001, 2500, 10007} {
		blob := uploadBlob(n, int64(n))
		if err := e.client.UploadMultiStream(ctx, dpm1, "/odd", bytes.NewReader(blob), int64(n)); err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		got, _, err := e.stores[dpm1].Get("/odd")
		if err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("size %d: stored %d bytes err=%v", n, len(got), err)
		}
	}
}

func TestUploadMultiStreamReusesRedirectTarget(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, UploadParallelism: 4})
	e.startServer(t, "disk1:80", httpserv.Options{})
	startHeadNode(t, e, "head:80", "disk1:80")

	blob := uploadBlob(64<<10, 35) // 16 chunks
	if err := e.client.UploadMultiStream(context.Background(), "head:80", "/pool/ms", bytes.NewReader(blob), int64(len(blob))); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores["disk1:80"].Get("/pool/ms")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("disk store: %d bytes err=%v", len(got), err)
	}
	// Only the probe chunk paid the head-node redirect; the 15 siblings
	// went straight to the resolved disk node.
	if headPuts := e.srvs["head:80"].RequestsByMethod("PUT"); headPuts != 1 {
		t.Fatalf("head node PUTs = %d, want 1 (probe only)", headPuts)
	}
	if diskPuts := e.srvs["disk1:80"].RequestsByMethod("PUT"); diskPuts != 16 {
		t.Fatalf("disk node PUTs = %d, want 16", diskPuts)
	}
}

// recordDialer captures every byte written to any connection it dials.
type recordDialer struct {
	inner pool.Dialer
	mu    sync.Mutex
	buf   bytes.Buffer
}

func (d *recordDialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	c, err := d.inner.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &recordConn{Conn: c, d: d}, nil
}

type recordConn struct {
	net.Conn
	d *recordDialer
}

func (c *recordConn) Write(p []byte) (int, error) {
	c.d.mu.Lock()
	c.d.buf.Write(p)
	c.d.mu.Unlock()
	return c.Conn.Write(p)
}

// captureWire runs op against a fresh single-server testbed with a
// recording dialer and returns every request byte the client wrote.
func captureWire(t *testing.T, op func(ctx context.Context, c *Client) error) []byte {
	t.Helper()
	n := netsim.New(netsim.Ideal())
	st := storage.NewMemStore()
	srv := httpserv.New(st, httpserv.Options{})
	l, err := n.Listen(dpm1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)

	rd := &recordDialer{inner: n}
	c, err := NewClient(Options{Dialer: rd, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := op(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	rd.mu.Lock()
	defer rd.mu.Unlock()
	return append([]byte(nil), rd.buf.Bytes()...)
}

// TestSerialUploadWireIdenticalToPut: with UploadParallelism=1 the
// multi-stream entry point must put the exact seed PUT on the wire — same
// request line, same headers, same body framing — so fidelity benchmarks
// measure the paper's single-stream upload, not an approximation of it.
func TestSerialUploadWireIdenticalToPut(t *testing.T) {
	blob := uploadBlob(24<<10, 36)
	seed := captureWire(t, func(ctx context.Context, c *Client) error {
		return c.Put(ctx, dpm1, "/wire", blob)
	})
	serial := captureWire(t, func(ctx context.Context, c *Client) error {
		c.opts.UploadParallelism = 1
		return c.UploadMultiStream(ctx, dpm1, "/wire", bytes.NewReader(blob), int64(len(blob)))
	})
	if !bytes.Equal(seed, serial) {
		t.Fatalf("serial upload diverged from seed PUT on the wire:\nseed   %d bytes\nserial %d bytes", len(seed), len(serial))
	}
}

// TestUploadMidChunkFailureCancelsSiblings: one sibling chunk hits a
// semantic failure after the probe; the other in-flight streams must be
// cancelled instead of draining the remaining work queue, and the object
// must never be committed.
func TestUploadMidChunkFailureCancelsSiblings(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 256, UploadParallelism: 2})
	e.startServer(t, dpm1, httpserv.Options{})

	blob := uploadBlob(64<<8, 37) // 64 chunks
	// Probe passes (After: 1), the next chunk PUT gets a non-retryable 403.
	e.srvs[dpm1].SetFault("/cancel", httpserv.Fault{Status: 403, After: 1, Remaining: 1})

	err := e.client.UploadMultiStream(context.Background(), dpm1, "/cancel", bytes.NewReader(blob), int64(len(blob)))
	if err == nil {
		t.Fatal("expected error from failing chunk")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 403 {
		t.Fatalf("err = %v, want the 403 StatusError", err)
	}
	puts := e.srvs[dpm1].RequestsByMethod("PUT")
	if puts > 8 {
		t.Fatalf("server saw %d chunk PUTs after first failure; siblings not cancelled", puts)
	}
	// No straggler keeps uploading after the error surfaced.
	time.Sleep(50 * time.Millisecond)
	if now := e.srvs[dpm1].RequestsByMethod("PUT"); now != puts {
		t.Fatalf("PUTs grew %d -> %d after the upload returned", puts, now)
	}
	if _, err := e.stores[dpm1].Stat("/cancel"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("partial upload was committed: %v", err)
	}
}

// TestUploadCancelledNeverReportsSuccess: cancelling the caller's context
// mid-upload must surface context.Canceled, and the object must not be
// committed as complete.
func TestUploadCancelledNeverReportsSuccess(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 256, UploadParallelism: 2})
	e.startServer(t, dpm1, httpserv.Options{})
	e.srvs[dpm1].SetFault("*", httpserv.Fault{Delay: 5 * time.Millisecond})

	blob := uploadBlob(64<<8, 38) // 64 chunks x 5ms: plenty of time to cancel
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	err := e.client.UploadMultiStream(ctx, dpm1, "/cancelled", bytes.NewReader(blob), int64(len(blob)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, serr := e.stores[dpm1].Stat("/cancelled"); !errors.Is(serr, storage.ErrNotFound) {
		t.Fatal("cancelled upload committed the object")
	}
}

// TestUploadFallsBackWhenRangedPutUnsupported: a server refusing
// Content-Range PUTs (RFC 9110 400) must degrade the multi-stream upload
// to the single-stream path transparently.
func TestUploadFallsBackWhenRangedPutUnsupported(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, UploadParallelism: 4})
	e.startServer(t, dpm1, httpserv.Options{DisableRangedPut: true})

	blob := uploadBlob(64<<10, 39)
	if err := e.client.UploadMultiStream(context.Background(), dpm1, "/fb", bytes.NewReader(blob), int64(len(blob))); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores[dpm1].Get("/fb")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("stored %d bytes err=%v", len(got), err)
	}
	// Exactly the rejected probe plus one whole-body PUT.
	if puts := e.srvs[dpm1].RequestsByMethod("PUT"); puts != 2 {
		t.Fatalf("server PUTs = %d, want 2 (probe + fallback)", puts)
	}
}

// bufWriterAt is an in-memory io.WriterAt tolerating concurrent disjoint
// writes, standing in for an os.File destination.
type bufWriterAt struct {
	mu sync.Mutex
	b  []byte
}

func (w *bufWriterAt) WriteAt(p []byte, off int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if int(off)+len(p) > len(w.b) {
		return 0, errors.New("write past end")
	}
	copy(w.b[off:], p)
	return len(p), nil
}

func TestDownloadMultiStreamToWritesThrough(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80", ChunkSize: 4 << 10, MaxStreams: 4})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	blob := uploadBlob(64<<10, 40)
	e.stores[dpm1].Put("/f", blob)
	e.stores["dpm2:80"].Put("/f", blob)
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: mlFor("http://dpm1:80/f", "http://dpm2:80/f")})

	w := &bufWriterAt{b: make([]byte, len(blob))}
	n, err := e.client.DownloadMultiStreamTo(context.Background(), dpm1, "/f", w)
	if err != nil || n != int64(len(blob)) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(w.b, blob) {
		t.Fatal("content mismatch")
	}
	// Both replicas served chunks: the load was spread.
	if e.srvs[dpm1].RequestsByMethod("GET") == 0 || e.srvs["dpm2:80"].RequestsByMethod("GET") == 0 {
		t.Fatal("chunks were not spread over the replicas")
	}
}

func TestDownloadMultiStreamToWithoutMetalink(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, MaxStreams: 4})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := uploadBlob(48<<10, 41)
	e.stores[dpm1].Put("/solo", blob)

	w := &bufWriterAt{b: make([]byte, len(blob))}
	n, err := e.client.DownloadMultiStreamTo(context.Background(), dpm1, "/solo", w)
	if err != nil || n != int64(len(blob)) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(w.b, blob) {
		t.Fatal("content mismatch")
	}
}

func TestCopyStreamPullParallel(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, UploadParallelism: 4})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	blob := uploadBlob(32<<10, 42) // 8 chunks
	e.stores[dpm1].Put("/src", blob)

	if err := e.client.CopyStream(context.Background(), dpm1, "/src", "http://dpm2:80/dst"); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores["dpm2:80"].Get("/dst")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("dest stored %d bytes err=%v", len(got), err)
	}
	// Client-mediated pull: the source served ranged GETs, the destination
	// assembled ranged PUTs, and no server-side COPY was involved.
	if gets := e.srvs[dpm1].RequestsByMethod("GET"); gets != 8 {
		t.Fatalf("source GETs = %d, want 8", gets)
	}
	if puts := e.srvs["dpm2:80"].RequestsByMethod("PUT"); puts != 8 {
		t.Fatalf("dest PUTs = %d, want 8", puts)
	}
	if e.srvs[dpm1].RequestsByMethod("COPY") != 0 {
		t.Fatal("pull copy must not use server-side COPY")
	}
}

func TestCopyStreamPipeFallback(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, UploadParallelism: 4})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{DisableRangedPut: true})
	blob := uploadBlob(32<<10, 43)
	e.stores[dpm1].Put("/src", blob)

	if err := e.client.CopyStream(context.Background(), dpm1, "/src", "http://dpm2:80/dst"); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores["dpm2:80"].Get("/dst")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("dest stored %d bytes err=%v", len(got), err)
	}
	// The rejected probe plus one streaming whole-body PUT.
	if puts := e.srvs["dpm2:80"].RequestsByMethod("PUT"); puts != 2 {
		t.Fatalf("dest PUTs = %d, want 2 (probe + pipe fallback)", puts)
	}
}

func TestCopyStreamSerialMode(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, UploadParallelism: 1})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	blob := uploadBlob(32<<10, 44)
	e.stores[dpm1].Put("/src", blob)

	if err := e.client.CopyStream(context.Background(), dpm1, "/src", "http://dpm2:80/dst"); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores["dpm2:80"].Get("/dst")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("dest stored %d bytes err=%v", len(got), err)
	}
	if puts := e.srvs["dpm2:80"].RequestsByMethod("PUT"); puts != 1 {
		t.Fatalf("dest PUTs = %d, want 1 (single streamed PUT)", puts)
	}
}

// TestCopyStreamSourceFailover: the pull copy's read side walks the
// Metalink replica ring when the primary is unavailable.
func TestCopyStreamSourceFailover(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80", ChunkSize: 4 << 10, UploadParallelism: 4})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	e.startServer(t, "dpm3:80", httpserv.Options{})
	blob := uploadBlob(32<<10, 45)
	e.stores[dpm1].Put("/f", blob)
	e.stores["dpm2:80"].Put("/f", blob)
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: mlFor("http://dpm2:80/f")})

	// The primary refuses every request for /f with a retryable 503.
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503})

	if err := e.client.CopyStream(context.Background(), dpm1, "/f", "http://dpm3:80/copy"); err != nil {
		t.Fatalf("pull copy with dead primary: %v", err)
	}
	got, _, err := e.stores["dpm3:80"].Get("/copy")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("dest stored %d bytes err=%v", len(got), err)
	}
}

// TestCopyInvalidatesDestinationCaches: the push-mode Copy rewrites the
// destination, so this client's cached blocks and stat entries (negative
// ones included) for the destination must be dropped.
func TestCopyInvalidatesDestinationCaches(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, "dpm2:80", httpserv.Options{})
	// The source server pushes through a client on the same fabric.
	pusher, err := NewClient(Options{Dialer: e.net, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pusher.Close)
	e.startServer(t, dpm1, httpserv.Options{Copier: pusher})

	ctx := context.Background()
	oldData := []byte("old")
	newData := []byte("fresh content, longer than before")
	e.stores[dpm1].Put("/s", newData)
	e.stores["dpm2:80"].Put("/d", oldData)

	// Warm the caches with the destination's pre-copy state, positive and
	// negative.
	if got, err := e.client.GetRange(ctx, "dpm2:80", "/d", 0, 16); err != nil || !bytes.Equal(got, oldData) {
		t.Fatalf("warm read = %q err=%v", got, err)
	}
	if inf, err := e.client.Stat(ctx, "dpm2:80", "/d"); err != nil || inf.Size != int64(len(oldData)) {
		t.Fatalf("warm stat = %+v err=%v", inf, err)
	}
	if _, err := e.client.Stat(ctx, "dpm2:80", "/d2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("warm negative stat = %v", err)
	}

	if err := e.client.Copy(ctx, dpm1, "/s", "http://dpm2:80/d"); err != nil {
		t.Fatal(err)
	}
	if err := e.client.Copy(ctx, dpm1, "/s", "http://dpm2:80/d2"); err != nil {
		t.Fatal(err)
	}

	// Without invalidation these would be stale ("old", size 3) or a stuck
	// negative entry.
	inf, err := e.client.Stat(ctx, "dpm2:80", "/d")
	if err != nil || inf.Size != int64(len(newData)) {
		t.Fatalf("stat after copy = %+v err=%v (stale stat cache)", inf, err)
	}
	got, err := e.client.GetRange(ctx, "dpm2:80", "/d", 0, int64(len(newData)))
	if err != nil || !bytes.Equal(got, newData) {
		t.Fatalf("read after copy = %q err=%v (stale block cache)", got, err)
	}
	if inf, err = e.client.Stat(ctx, "dpm2:80", "/d2"); err != nil || inf.Size != int64(len(newData)) {
		t.Fatalf("stat of copied-over 404 = %+v err=%v (negative entry stuck)", inf, err)
	}
}

// TestPutPrimesStatCacheAndBlocks: after an upload the writer knows the
// object's new state, so a put-then-stat and a put-then-read must be pure
// memory hits.
func TestPutPrimesStatCacheAndBlocks(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := uploadBlob(4<<10, 46)
	if err := e.client.Put(ctx, dpm1, "/primed", blob); err != nil {
		t.Fatal(err)
	}
	inf, err := e.client.Stat(ctx, dpm1, "/primed")
	if err != nil || inf.Size != int64(len(blob)) {
		t.Fatalf("stat after put = %+v err=%v", inf, err)
	}
	// The primed entry carries the checksum of the uploaded bytes, exactly
	// what the server's HEAD would have reported.
	if inf.Checksum != storage.Checksum(blob) {
		t.Fatalf("primed checksum = %q, want %q", inf.Checksum, storage.Checksum(blob))
	}
	if heads := e.srvs[dpm1].RequestsByMethod("HEAD"); heads != 0 {
		t.Fatalf("server HEADs = %d, want 0 (stat cache primed by Put)", heads)
	}
	got, err := e.client.GetRange(ctx, dpm1, "/primed", 0, int64(len(blob)))
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("read after put = %d bytes err=%v", len(got), err)
	}
	if gets := e.srvs[dpm1].RequestsByMethod("GET"); gets != 0 {
		t.Fatalf("server GETs = %d, want 0 (blocks written through by Put)", gets)
	}
}

// TestUploadMultiStreamPrimesStatCache: a commit-signalling server (some
// chunk answered 201 Created) needs no verification round trip, and the
// writer's knowledge of the new size primes the stat cache — follow-up
// Stats cost zero requests.
func TestUploadMultiStreamPrimesStatCache(t *testing.T) {
	opts := cachedOptions()
	opts.ChunkSize = 4 << 10
	opts.UploadParallelism = 4
	e := newEnv(t, opts)
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := uploadBlob(32<<10, 47)
	if err := e.client.UploadMultiStream(ctx, dpm1, "/msprime", bytes.NewReader(blob), int64(len(blob))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		inf, err := e.client.Stat(ctx, dpm1, "/msprime")
		if err != nil || inf.Size != int64(len(blob)) {
			t.Fatalf("stat after upload = %+v err=%v", inf, err)
		}
	}
	if heads := e.srvs[dpm1].RequestsByMethod("HEAD"); heads != 0 {
		t.Fatalf("server HEADs = %d, want 0 (201 commit signal primes the cache)", heads)
	}
}

// TestUploadPhantomSuccessCaught: when every chunk gets a 2xx receipt but
// no 201 commit ever arrives (here: a fault swallows one chunk's bytes,
// so the assembly never completes), the upload must verify with the
// server and report failure instead of phantom success.
func TestUploadPhantomSuccessCaught(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, UploadParallelism: 2})
	e.startServer(t, dpm1, httpserv.Options{})

	// One non-probe chunk PUT is answered 202 by the fault layer without
	// its bytes ever reaching the assembly.
	e.srvs[dpm1].SetFault("/phantom", httpserv.Fault{Status: 202, After: 1, Remaining: 1})

	blob := uploadBlob(32<<10, 48)
	err := e.client.UploadMultiStream(context.Background(), dpm1, "/phantom", bytes.NewReader(blob), int64(len(blob)))
	if err == nil {
		t.Fatal("upload with a swallowed chunk reported success")
	}
	if _, serr := e.stores[dpm1].Stat("/phantom"); !errors.Is(serr, storage.ErrNotFound) {
		t.Fatal("incomplete assembly was committed")
	}

	// Same failure overwriting an existing object of the SAME size: the
	// verification HEAD sees a matching size, so only the checksum
	// comparison can tell the stale predecessor from the new content.
	old := uploadBlob(32<<10, 49)
	e.stores[dpm1].Put("/phantom2", old)
	e.srvs[dpm1].SetFault("/phantom2", httpserv.Fault{Status: 202, After: 1, Remaining: 1})
	err = e.client.UploadMultiStream(context.Background(), dpm1, "/phantom2", bytes.NewReader(blob), int64(len(blob)))
	if err == nil {
		t.Fatal("failed same-size overwrite reported success (checksum not compared)")
	}
	if got, _, _ := e.stores[dpm1].Get("/phantom2"); !bytes.Equal(got, old) {
		t.Fatal("server object changed despite incomplete upload")
	}
}

// TestConcurrentUploadsRace exercises the upload engine under the race
// detector: many goroutines uploading distinct objects over one shared
// client and pool.
func TestConcurrentUploadsRace(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 1 << 10, UploadParallelism: 3})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			blob := uploadBlob(10<<10, int64(100+id))
			path := fmt.Sprintf("/race/%d", id)
			if err := e.client.UploadMultiStream(ctx, dpm1, path, bytes.NewReader(blob), int64(len(blob))); err != nil {
				t.Errorf("upload %d: %v", id, err)
				return
			}
			got, _, err := e.stores[dpm1].Get(path)
			if err != nil || !bytes.Equal(got, blob) {
				t.Errorf("upload %d: stored %d bytes err=%v", id, len(got), err)
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentUploadsSamePathDoNotInterleave: two clients racing
// multi-stream uploads of different content to one path must each keep
// their own server-side assembly (X-Upload-Id); the committed object is
// one upload or the other in full, never a blend.
func TestConcurrentUploadsSamePathDoNotInterleave(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 1 << 10, UploadParallelism: 2})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blobA := uploadBlob(16<<10, 61)
	blobB := uploadBlob(16<<10, 62) // same size, different bytes
	var wg sync.WaitGroup
	for _, blob := range [][]byte{blobA, blobB} {
		wg.Add(1)
		go func(b []byte) {
			defer wg.Done()
			if err := e.client.UploadMultiStream(ctx, dpm1, "/contested", bytes.NewReader(b), int64(len(b))); err != nil {
				t.Errorf("upload: %v", err)
			}
		}(blob)
	}
	wg.Wait()
	got, _, err := e.stores[dpm1].Get("/contested")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blobA) && !bytes.Equal(got, blobB) {
		t.Fatal("committed object is a blend of the two uploads")
	}
}

// rawPutServer accepts connections on a netsim listener and serves PUTs
// without ever sending a 100 Continue interim. With earlyFinal it answers
// 201 right after the headers without reading the body at all.
func rawPutServer(t *testing.T, e *testEnv, addr string, earlyFinal bool, gotBody *int64) {
	t.Helper()
	l, err := e.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				var contentLength int64
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					line = strings.TrimRight(line, "\r\n")
					if line == "" {
						break
					}
					if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
						contentLength, _ = strconv.ParseInt(v, 10, 64)
					}
				}
				if !earlyFinal {
					// Stay silent through the client's expect-continue
					// wait, then drain the body it sends anyway.
					n, err := io.CopyN(io.Discard, br, contentLength)
					atomic.AddInt64(gotBody, n)
					if err != nil {
						return
					}
				}
				c.Write([]byte("HTTP/1.1 201 Created\r\nContent-Length: 0\r\n\r\n"))
			}(conn)
		}
	}()
}

// TestPutReaderServerOmits100Continue: RFC 9110 lets a server skip the
// interim response entirely; after expectContinueWait the client must send
// the body anyway and complete the upload.
func TestPutReaderServerOmits100Continue(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the 1s expect-continue timeout")
	}
	e := newEnv(t, Options{Strategy: StrategyNone})
	var gotBody int64
	rawPutServer(t, e, "silent:80", false, &gotBody)

	blob := uploadBlob(8<<10, 63)
	start := time.Now()
	if err := e.client.PutReader(context.Background(), "silent:80", "/f", bytes.NewBuffer(blob), int64(len(blob))); err != nil {
		t.Fatalf("PutReader against silent server: %v", err)
	}
	if atomic.LoadInt64(&gotBody) != int64(len(blob)) {
		t.Fatalf("server received %d body bytes, want %d", gotBody, len(blob))
	}
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Fatalf("completed in %v — body sent before the expect-continue wait?", waited)
	}
}

// TestPutReaderImmediateFinal2xx: a server may accept the PUT with a final
// 2xx before the body is sent; that is success, not an error.
func TestPutReaderImmediateFinal2xx(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	var gotBody int64
	rawPutServer(t, e, "eager:80", true, &gotBody)

	blob := uploadBlob(4<<10, 64)
	if err := e.client.PutReader(context.Background(), "eager:80", "/f", bytes.NewBuffer(blob), int64(len(blob))); err != nil {
		t.Fatalf("PutReader against early-2xx server: %v", err)
	}
}
