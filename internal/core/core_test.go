package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"testing"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/netsim"
	"godavix/internal/rangev"
	"godavix/internal/storage"
)

// testEnv wires a netsim fabric, one or more DPM servers, and a client.
type testEnv struct {
	net    *netsim.Network
	client *Client
	stores map[string]*storage.MemStore
	srvs   map[string]*httpserv.Server
}

// startServer launches a DPM server on addr over the fabric.
func (e *testEnv) startServer(t *testing.T, addr string, opts httpserv.Options) {
	t.Helper()
	st := storage.NewMemStore()
	srv := httpserv.New(st, opts)
	l, err := e.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	e.stores[addr] = st
	e.srvs[addr] = srv
}

func newEnv(t *testing.T, copts Options) *testEnv {
	t.Helper()
	e := &testEnv{
		net:    netsim.New(netsim.Ideal()),
		stores: map[string]*storage.MemStore{},
		srvs:   map[string]*httpserv.Server{},
	}
	copts.Dialer = e.net
	c, err := NewClient(copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	e.client = c
	return e
}

const dpm1 = "dpm1:80"

func TestGetPutDeleteRoundTrip(t *testing.T) {
	e := newEnv(t, Options{})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	data := []byte("high energy physics payload")
	if err := e.client.Put(ctx, dpm1, "/store/f", data); err != nil {
		t.Fatal(err)
	}
	got, err := e.client.Get(ctx, dpm1, "/store/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if err := e.client.Delete(ctx, dpm1, "/store/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.client.Get(ctx, dpm1, "/store/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestSessionRecyclingAcrossRequests(t *testing.T) {
	e := newEnv(t, Options{})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	e.stores[dpm1].Put("/f", []byte("x"))
	for i := 0; i < 10; i++ {
		if _, err := e.client.Get(ctx, dpm1, "/f"); err != nil {
			t.Fatal(err)
		}
	}
	if dials := e.net.Dials(); dials != 1 {
		t.Fatalf("network dials = %d, want 1 (session recycling)", dials)
	}
	st := e.client.PoolStats()
	if st.Reuses != 9 {
		t.Fatalf("pool reuses = %d, want 9", st.Reuses)
	}
}

func TestNoKeepAliveServerForcesRedial(t *testing.T) {
	e := newEnv(t, Options{})
	e.startServer(t, dpm1, httpserv.Options{DisableKeepAlive: true})
	ctx := context.Background()

	e.stores[dpm1].Put("/f", []byte("x"))
	for i := 0; i < 5; i++ {
		if _, err := e.client.Get(ctx, dpm1, "/f"); err != nil {
			t.Fatal(err)
		}
	}
	if dials := e.net.Dials(); dials != 5 {
		t.Fatalf("network dials = %d, want 5 without keep-alive", dials)
	}
}

func TestGetRange(t *testing.T) {
	e := newEnv(t, Options{})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := make([]byte, 1000)
	rand.New(rand.NewSource(1)).Read(blob)
	e.stores[dpm1].Put("/f", blob)

	got, err := e.client.GetRange(ctx, dpm1, "/f", 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob[100:150]) {
		t.Fatal("range content mismatch")
	}

	// Range beyond EOF is clamped by the server (206 of the tail).
	got, err = e.client.GetRange(ctx, dpm1, "/f", 990, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob[990:]) {
		t.Fatalf("tail range = %d bytes", len(got))
	}
}

func TestReadVecScattersExactBytes(t *testing.T) {
	e := newEnv(t, Options{CoalesceGap: 32})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := make([]byte, 64<<10)
	rand.New(rand.NewSource(2)).Read(blob)
	e.stores[dpm1].Put("/f", blob)

	rng := rand.New(rand.NewSource(3))
	ranges := make([]rangev.Range, 200)
	dsts := make([][]byte, len(ranges))
	for i := range ranges {
		off := rng.Int63n(int64(len(blob) - 512))
		ranges[i] = rangev.Range{Off: off, Len: rng.Int63n(511) + 1}
		dsts[i] = make([]byte, ranges[i].Len)
	}
	if err := e.client.ReadVec(ctx, dpm1, "/f", ranges, dsts); err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		if !bytes.Equal(dsts[i], blob[r.Off:r.End()]) {
			t.Fatalf("range %d mismatch", i)
		}
	}
	// The entire vectored read must have used very few HTTP requests.
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got > 3 {
		t.Fatalf("GET requests = %d, expected few (vectored)", got)
	}
}

func TestReadVecSingleFrame(t *testing.T) {
	e := newEnv(t, Options{})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := []byte("abcdefghijklmnopqrstuvwxyz")
	e.stores[dpm1].Put("/f", blob)

	ranges := []rangev.Range{{Off: 2, Len: 3}, {Off: 5, Len: 5}} // touching: one frame
	dsts := [][]byte{make([]byte, 3), make([]byte, 5)}
	if err := e.client.ReadVec(ctx, dpm1, "/f", ranges, dsts); err != nil {
		t.Fatal(err)
	}
	if string(dsts[0]) != "cde" || string(dsts[1]) != "fghij" {
		t.Fatalf("dsts = %q %q", dsts[0], dsts[1])
	}
}

func TestReadVecBatching(t *testing.T) {
	e := newEnv(t, Options{MaxRangesPerRequest: 4})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := make([]byte, 8192)
	rand.New(rand.NewSource(4)).Read(blob)
	e.stores[dpm1].Put("/f", blob)

	// 10 widely-spaced fragments → 10 frames → 3 batches of ≤4.
	ranges := make([]rangev.Range, 10)
	dsts := make([][]byte, 10)
	for i := range ranges {
		ranges[i] = rangev.Range{Off: int64(i) * 800, Len: 16}
		dsts[i] = make([]byte, 16)
	}
	if err := e.client.ReadVec(ctx, dpm1, "/f", ranges, dsts); err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		if !bytes.Equal(dsts[i], blob[r.Off:r.End()]) {
			t.Fatalf("range %d mismatch", i)
		}
	}
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got != 3 {
		t.Fatalf("GET requests = %d, want 3 batches", got)
	}
}

func TestReadVecValidation(t *testing.T) {
	e := newEnv(t, Options{})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()
	if err := e.client.ReadVec(ctx, dpm1, "/f", nil, nil); err == nil {
		t.Fatal("empty ranges accepted")
	}
	err := e.client.ReadVec(ctx, dpm1, "/f",
		[]rangev.Range{{Off: 0, Len: 8}}, [][]byte{make([]byte, 4)})
	if err == nil {
		t.Fatal("small destination accepted")
	}
}

func TestStatAndList(t *testing.T) {
	e := newEnv(t, Options{})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	e.client.Mkdir(ctx, dpm1, "/data")
	e.client.Put(ctx, dpm1, "/data/a", []byte("1"))
	e.client.Put(ctx, dpm1, "/data/bb", []byte("22"))

	inf, err := e.client.Stat(ctx, dpm1, "/data/bb")
	if err != nil {
		t.Fatal(err)
	}
	if inf.Size != 2 || inf.Dir {
		t.Fatalf("stat = %+v", inf)
	}
	if inf.Checksum == "" {
		t.Fatal("checksum header not propagated")
	}

	ls, err := e.client.List(ctx, dpm1, "/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 || ls[0].Path != "/data/a" || ls[1].Size != 2 {
		t.Fatalf("list = %+v", ls)
	}

	if _, err := e.client.Stat(ctx, dpm1, "/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat missing err = %v", err)
	}
}

// oneShotServer serves exactly one canned HTTP response per connection and
// then closes it *without* Connection: close — the classic stale-keepalive
// scenario the Do retry path must absorb.
func oneShotServer(t *testing.T, l net.Listener, body string) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				// Read the request head (best effort).
				c.Read(buf)
				fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
			}(c)
		}
	}()
}

func TestRetryOnStaleRecycledConnection(t *testing.T) {
	e := newEnv(t, Options{})
	l, err := e.net.Listen("flaky:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	oneShotServer(t, l, "ok")
	ctx := context.Background()

	// First request succeeds and the connection is recycled (the response
	// claimed keep-alive). The server then silently closed it.
	for i := 0; i < 3; i++ {
		got, err := e.client.Get(ctx, "flaky:80", "/f")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if string(got) != "ok" {
			t.Fatalf("request %d body = %q", i, got)
		}
	}
}

func TestFailoverToSecondReplica(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})

	blob := []byte("replicated payload")
	e.stores[dpm1].Put("/store/f", blob)
	e.stores["dpm2:80"].Put("/store/f", blob)

	ml := &metalink.Metalink{
		Name: "f", Size: int64(len(blob)),
		URLs: []metalink.URL{
			{Loc: "http://dpm1:80/store/f", Priority: 1},
			{Loc: "http://dpm2:80/store/f", Priority: 2},
		},
	}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(p string) *metalink.Metalink {
			if p == "/store/f" {
				return ml
			}
			return nil
		},
	})

	ctx := context.Background()
	// Healthy primary: no metalink traffic at all (failover is free).
	f, err := e.client.Open(ctx, dpm1, "/store/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := e.srvs["fed:80"].Requests(); got != 0 {
		t.Fatalf("federation contacted %d times while primary healthy", got)
	}

	// Kill the primary: reads must transparently move to dpm2.
	e.net.SetDown(dpm1, true)
	e.client.CloseIdlePool(dpm1)
	buf2 := make([]byte, len(blob))
	n, err := f.ReadAt(buf2, 0)
	if err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if !bytes.Equal(buf2[:n], blob) {
		t.Fatalf("failover content = %q", buf2[:n])
	}
	if got := e.srvs["fed:80"].Requests(); got == 0 {
		t.Fatal("federation never consulted for metalink")
	}
}

func TestFailoverAllReplicasDead(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, dpm1, httpserv.Options{})
	ml := &metalink.Metalink{
		Name: "f", Size: 1,
		URLs: []metalink.URL{{Loc: "http://dpm1:80/f", Priority: 1}},
	}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})
	e.stores[dpm1].Put("/f", []byte("x"))
	e.net.SetDown(dpm1, true)

	ctx := context.Background()
	_, err := e.client.Open(ctx, dpm1, "/f")
	if !errors.Is(err, ErrAllReplicasFailed) {
		t.Fatalf("err = %v, want ErrAllReplicasFailed", err)
	}
}

func TestFailoverNotTriggeredOn404(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink {
			t.Error("metalink consulted for a 404")
			return nil
		},
	})
	ctx := context.Background()
	_, err := e.client.Open(ctx, dpm1, "/definitely-missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailoverOn503(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(p string) *metalink.Metalink {
			return &metalink.Metalink{
				Name: "f", Size: 4,
				URLs: []metalink.URL{{Loc: "http://dpm2:80/f", Priority: 1}},
			}
		},
	})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	e.stores[dpm1].Put("/f", []byte("data"))
	e.stores["dpm2:80"].Put("/f", []byte("data"))
	// Primary serves 503s (overloaded) but can still hand out metalinks.
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503})

	ctx := context.Background()
	f, err := e.client.Open(ctx, dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Fatalf("got %q", got)
	}
}

func TestFileReadSeek(t *testing.T) {
	e := newEnv(t, Options{})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := []byte("0123456789abcdef")
	e.stores[dpm1].Put("/f", blob)
	ctx := context.Background()

	f, err := e.client.Open(ctx, dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(blob)) {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(f, buf); err != nil || string(buf) != "0123" {
		t.Fatalf("read1 = %q err=%v", buf, err)
	}
	if _, err := f.Seek(10, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(f, buf); err != nil || string(buf) != "abcd" {
		t.Fatalf("read2 = %q err=%v", buf, err)
	}
	if _, err := f.Seek(-2, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	n, err := f.Read(make([]byte, 10))
	if n != 2 || (err != nil && err != io.EOF) {
		t.Fatalf("tail read n=%d err=%v", n, err)
	}
	// Read past EOF.
	if _, err := f.ReadAt(buf, f.Size()); err != io.EOF {
		t.Fatalf("past-EOF err = %v", err)
	}
}

func TestMultiStreamDownload(t *testing.T) {
	e := newEnv(t, Options{
		MetalinkHost: "fed:80",
		ChunkSize:    1 << 10,
		MaxStreams:   3,
	})
	blob := make([]byte, 10<<10+37) // not chunk-aligned
	rand.New(rand.NewSource(5)).Read(blob)

	replicas := []string{"dpm1:80", "dpm2:80", "dpm3:80"}
	var urls []metalink.URL
	for i, r := range replicas {
		e.startServer(t, r, httpserv.Options{})
		e.stores[r].Put("/f", blob)
		urls = append(urls, metalink.URL{Loc: "http://" + r + "/f", Priority: i + 1})
	}
	ml := &metalink.Metalink{Name: "f", Size: int64(len(blob)), URLs: urls}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})

	ctx := context.Background()
	got, err := e.client.DownloadMultiStream(ctx, "dpm1:80", "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("multi-stream content mismatch")
	}
	// Load is spread: every replica served something.
	for _, r := range replicas {
		if e.srvs[r].RequestsByMethod("GET") == 0 {
			t.Fatalf("replica %s served nothing", r)
		}
	}
}

func TestMultiStreamSurvivesDeadReplica(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80", ChunkSize: 512, MaxStreams: 2})
	blob := make([]byte, 4<<10)
	rand.New(rand.NewSource(6)).Read(blob)

	for _, r := range []string{"dpm1:80", "dpm2:80"} {
		e.startServer(t, r, httpserv.Options{})
		e.stores[r].Put("/f", blob)
	}
	ml := &metalink.Metalink{
		Name: "f", Size: int64(len(blob)),
		URLs: []metalink.URL{
			{Loc: "http://dpm1:80/f", Priority: 1},
			{Loc: "http://dpm2:80/f", Priority: 2},
		},
	}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})
	e.net.SetDown("dpm2:80", true)

	ctx := context.Background()
	got, err := e.client.DownloadMultiStream(ctx, "dpm1:80", "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("content mismatch with dead replica")
	}
}

func TestRequestTimeout(t *testing.T) {
	e := newEnv(t, Options{RequestTimeout: 30 * time.Millisecond})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/slow", []byte("x"))
	e.srvs[dpm1].SetFault("/slow", httpserv.Fault{Delay: 500 * time.Millisecond})

	ctx := context.Background()
	start := time.Now()
	_, err := e.client.Get(ctx, dpm1, "/slow")
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > 300*time.Millisecond {
		t.Fatalf("timeout too late: %v", time.Since(start))
	}
}

func TestNewClientRequiresDialer(t *testing.T) {
	if _, err := NewClient(Options{}); err == nil {
		t.Fatal("expected error without dialer")
	}
}

func TestGetMetalinkDirect(t *testing.T) {
	e := newEnv(t, Options{})
	ml := &metalink.Metalink{
		Name: "f", Size: 9,
		URLs: []metalink.URL{{Loc: "http://dpm1:80/f", Priority: 1}},
	}
	e.startServer(t, dpm1, httpserv.Options{
		Metalinks: func(p string) *metalink.Metalink {
			if p == "/f" {
				return ml
			}
			return nil
		},
	})
	got, err := e.client.GetMetalink(context.Background(), dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 9 || len(got.URLs) != 1 {
		t.Fatalf("metalink = %+v", got)
	}
	if _, err := e.client.GetMetalink(context.Background(), dpm1, "/none"); err == nil {
		t.Fatal("expected error for missing metalink")
	}
}

// TestMetalinkProbeNeverDrainsPayload guards the discovery probe's byte
// cost: a server with no Metalink support answers the negotiated GET with
// the object body itself, and GetMetalink must give up after the headers
// (ErrNoMetalink) instead of draining an object-sized body. A multi-stream
// download against such a server must likewise pay for the payload roughly
// once, not once per probe.
func TestMetalinkProbeNeverDrainsPayload(t *testing.T) {
	e := newEnv(t, Options{ChunkSize: 1 << 20, MaxStreams: 4})
	e.startServer(t, dpm1, httpserv.Options{}) // no Metalinks provider
	size := int64(8) << 20
	blob := make([]byte, size)
	rand.New(rand.NewSource(65)).Read(blob)
	e.stores[dpm1].Put("/store/big", blob)

	ctx := context.Background()
	if _, err := e.client.GetMetalink(ctx, dpm1, "/store/big"); !errors.Is(err, ErrNoMetalink) {
		t.Fatalf("err = %v, want ErrNoMetalink", err)
	}
	// The probe read headers plus at most the 64KiB salvage drain.
	if got := e.client.Metrics().BytesDown; got > 128<<10 {
		t.Fatalf("probe drained %d bytes from an %d-byte object", got, size)
	}

	f, err := os.CreateTemp(t.TempDir(), "mlprobe-*.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := e.client.DownloadMultiStreamTo(ctx, dpm1, "/store/big", f)
	if err != nil || n != size {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("content mismatch")
	}
	// One payload plus probe salvage + headers, never two payloads.
	if bd := e.client.Metrics().BytesDown; bd > size+256<<10 {
		t.Fatalf("BytesDown = %d for one %d-byte download: probe drained the body", bd, size)
	}
}
