package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/metalink"
)

// hedgeEnv wires three replicas behind a metalink federation and stores blob
// at /f on each, returning the ready-to-use test environment.
func hedgeEnv(t *testing.T, copts Options, blob []byte) *testEnv {
	t.Helper()
	e := newEnv(t, copts)
	replicas := []string{"dpm1:80", "dpm2:80", "dpm3:80"}
	var urls []metalink.URL
	for i, r := range replicas {
		e.startServer(t, r, httpserv.Options{})
		e.stores[r].Put("/f", blob)
		urls = append(urls, metalink.URL{Loc: "http://" + r + "/f", Priority: i + 1})
	}
	ml := &metalink.Metalink{Name: "f", Size: int64(len(blob)), URLs: urls}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})
	return e
}

func TestHedgeStandbySelection(t *testing.T) {
	ring := []Replica{
		{Host: "a:80", Path: "/1"},
		{Host: "a:80", Path: "/2"}, // alternate path on the primary's host
		{Host: "b:80", Path: "/3"},
	}
	standby, ok := hedgeStandby(ring, 0)
	if !ok || standby.Host != "b:80" {
		t.Fatalf("standby = %+v ok=%v, want b:80 (same-host replicas skipped)", standby, ok)
	}
	// Ring of one host: nothing worth racing.
	if _, ok := hedgeStandby(ring[:2], 0); ok {
		t.Fatal("single-host ring must not offer a standby")
	}
}

func TestHedgeBudgetModes(t *testing.T) {
	c := newEnv(t, Options{HedgeDelay: -1}).client
	if _, ok := c.hedgeBudget(); ok {
		t.Fatal("negative HedgeDelay must disable hedging")
	}

	c2 := newEnv(t, Options{HedgeDelay: 25 * time.Millisecond}).client
	if d, ok := c2.hedgeBudget(); !ok || d != 25*time.Millisecond {
		t.Fatalf("fixed budget = %v ok=%v, want 25ms", d, ok)
	}

	// Auto mode: disabled on a cold histogram, live P99 once it holds
	// hedgeMinSamples observations.
	c3 := newEnv(t, Options{}).client
	if _, ok := c3.hedgeBudget(); ok {
		t.Fatal("auto budget must stay off until the chunk histogram warms up")
	}
	for i := 0; i < hedgeMinSamples; i++ {
		c3.metrics.observe(specChunk.op, 2*time.Millisecond)
	}
	d, ok := c3.hedgeBudget()
	if !ok || d <= 0 {
		t.Fatalf("auto budget = %v ok=%v, want live P99 > 0", d, ok)
	}
}

func TestHedgedReadBeatsSlowReplica(t *testing.T) {
	blob := make([]byte, 64<<10)
	rand.New(rand.NewSource(41)).Read(blob)
	e := hedgeEnv(t, Options{
		MetalinkHost: "fed:80",
		ChunkSize:    8 << 10,
		MaxStreams:   4,
		HedgeDelay:   10 * time.Millisecond,
	}, blob)
	// dpm2 answers, slowly — the failure mode the health scoreboard cannot
	// see. Chunks whose ring primary is dpm2 blow the 10ms budget and race a
	// duplicate against another host.
	e.srvs["dpm2:80"].SetFault("/f", httpserv.Fault{Delay: 150 * time.Millisecond, Remaining: -1})

	got, err := e.client.DownloadMultiStream(context.Background(), "dpm1:80", "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("hedged download corrupted content")
	}
	m := e.client.Metrics()
	if m.HedgesIssued == 0 || m.HedgeWins == 0 {
		t.Fatalf("hedges issued=%d wins=%d, want both > 0", m.HedgesIssued, m.HedgeWins)
	}
}

func TestHedgeDisabledIssuesNone(t *testing.T) {
	blob := make([]byte, 32<<10)
	rand.New(rand.NewSource(43)).Read(blob)
	e := hedgeEnv(t, Options{
		MetalinkHost: "fed:80",
		ChunkSize:    8 << 10,
		MaxStreams:   4,
		HedgeDelay:   -1,
	}, blob)
	e.srvs["dpm2:80"].SetFault("/f", httpserv.Fault{Delay: 30 * time.Millisecond, Remaining: -1})

	got, err := e.client.DownloadMultiStream(context.Background(), "dpm1:80", "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("content mismatch")
	}
	if m := e.client.Metrics(); m.HedgesIssued != 0 {
		t.Fatalf("hedges issued = %d with hedging disabled", m.HedgesIssued)
	}
}
