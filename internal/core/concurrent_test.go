package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"godavix/internal/httpserv"
	"godavix/internal/pool"
	"godavix/internal/rangev"
)

// TestConcurrentVectorReadsUnderCap hammers one client with parallel
// ReadVec and GetRange traffic (each ReadVec itself fanning out batches)
// and asserts the two load-bearing invariants of the parallel pipeline:
// the pool never exceeds MaxPerHost connections to the host, and every
// scatter is byte-exact. Run under -race this also proves the batch
// goroutines never write overlapping destination bytes.
func TestConcurrentVectorReadsUnderCap(t *testing.T) {
	const maxPerHost = 4
	env := newEnv(t, Options{
		Strategy:            StrategyNone,
		MaxRangesPerRequest: 4, // force multi-batch vector reads
		Pool:                pool.Options{MaxPerHost: maxPerHost},
	})
	env.startServer(t, "dpm1:80", httpserv.Options{})
	blob := make([]byte, 1<<20)
	rand.New(rand.NewSource(11)).Read(blob)
	if err := env.stores["dpm1:80"].Put("/blob", blob); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var peak atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(env.client.pool.ActiveCount("dpm1:80")); n > peak.Load() {
				peak.Store(n)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 15; i++ {
				if i%3 == 2 {
					off := rng.Int63n(int64(len(blob)) - 4096)
					got, err := env.client.GetRange(ctx, "dpm1:80", "/blob", off, 4096)
					if err != nil {
						t.Error(err)
						return
					}
					if !bytes.Equal(got, blob[off:off+4096]) {
						t.Errorf("GetRange mismatch at %d", off)
						return
					}
					continue
				}
				k := rng.Intn(24) + 8
				ranges := make([]rangev.Range, k)
				dsts := make([][]byte, k)
				for j := range ranges {
					ranges[j] = rangev.Range{Off: rng.Int63n(int64(len(blob)) - 256), Len: rng.Int63n(255) + 1}
					dsts[j] = make([]byte, ranges[j].Len)
				}
				if err := env.client.ReadVec(ctx, "dpm1:80", "/blob", ranges, dsts); err != nil {
					t.Error(err)
					return
				}
				for j := range ranges {
					if !bytes.Equal(dsts[j], blob[ranges[j].Off:ranges[j].End()]) {
						t.Errorf("ReadVec mismatch: range %d [%d,+%d)", j, ranges[j].Off, ranges[j].Len)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)

	if p := peak.Load(); p > maxPerHost {
		t.Fatalf("pool peaked at %d connections, cap is %d", p, maxPerHost)
	}
	if p := env.client.pool.ActiveCount("dpm1:80"); p > maxPerHost {
		t.Fatalf("active count %d exceeds cap %d after run", p, maxPerHost)
	}
}

// TestReadVecParallelCancelNeverSucceeds: a cancelled context must never
// yield a nil error from a parallel vectored read — batches drained by the
// cancellation leave dsts unfilled, and a silent success would let
// readVecCached poison the block cache with garbage.
func TestReadVecParallelCancelNeverSucceeds(t *testing.T) {
	env := newEnv(t, Options{
		Strategy:            StrategyNone,
		MaxRangesPerRequest: 2,
	})
	env.startServer(t, "dpm1:80", httpserv.Options{})
	blob := make([]byte, 256<<10)
	if err := env.stores["dpm1:80"].Put("/blob", blob); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := 12
	ranges := make([]rangev.Range, k)
	dsts := make([][]byte, k)
	for i := range ranges {
		ranges[i] = rangev.Range{Off: int64(i) * 8192, Len: 64}
		dsts[i] = make([]byte, 64)
	}
	for i := 0; i < 50; i++ {
		if err := env.client.ReadVec(ctx, "dpm1:80", "/blob", ranges, dsts); err == nil {
			t.Fatal("cancelled ReadVec reported success")
		}
	}
}

// TestReadVecParallelFirstErrorWins: when one batch fails, ReadVec returns
// the genuine batch error (here a 404 every replica would reproduce), not a
// sibling's context cancellation.
func TestReadVecParallelFirstErrorWins(t *testing.T) {
	env := newEnv(t, Options{
		Strategy:            StrategyNone,
		MaxRangesPerRequest: 2,
	})
	env.startServer(t, "dpm1:80", httpserv.Options{})
	blob := make([]byte, 64<<10)
	if err := env.stores["dpm1:80"].Put("/blob", blob); err != nil {
		t.Fatal(err)
	}

	// Ranges far apart: many frames, many batches; the read targets a path
	// that vanishes mid-test is hard to stage, so use a missing object —
	// every batch 404s and the first error must surface as ErrNotFound.
	k := 16
	ranges := make([]rangev.Range, k)
	dsts := make([][]byte, k)
	for i := range ranges {
		ranges[i] = rangev.Range{Off: int64(i) * 4096, Len: 16}
		dsts[i] = make([]byte, 16)
	}
	err := env.client.ReadVec(context.Background(), "dpm1:80", "/missing", ranges, dsts)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrAllReplicasFailed) {
		t.Fatalf("err = %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("sibling cancellation leaked: %v", err)
	}
}
