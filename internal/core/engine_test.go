package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/s3"
	"godavix/internal/storage"
)

// startRecordingServer launches a server that records the Authorization
// header of every request it sees, in arrival order.
func startRecordingServer(t *testing.T, e *testEnv, addr string, opts httpserv.Options) *[]string {
	t.Helper()
	var mu sync.Mutex
	var seen []string
	opts.Authorize = func(a string) bool {
		mu.Lock()
		seen = append(seen, a)
		mu.Unlock()
		return true
	}
	e.startServer(t, addr, opts)
	return &seen
}

// TestRedirectCycleAcrossHosts: an A→B→A 302 cycle must fail fast with
// ErrRedirectLoop — one request per distinct target, not MaxRedirects hops.
func TestRedirectCycleAcrossHosts(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, MaxRedirects: 10})
	startHeadNode(t, e, "a:80", "b:80")
	startHeadNode(t, e, "b:80", "a:80")

	_, err := e.client.Get(context.Background(), "a:80", "/pool/f")
	if !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("err = %v, want ErrRedirectLoop", err)
	}
	if got := e.srvs["a:80"].Requests(); got != 1 {
		t.Fatalf("a:80 saw %d requests, want 1", got)
	}
	if got := e.srvs["b:80"].Requests(); got != 1 {
		t.Fatalf("b:80 saw %d requests, want 1", got)
	}
}

// TestCrossHostRedirectDropsAuthorization: Bearer/Basic credentials belong
// to the host the caller addressed; a redirect hop to a different host (the
// head node bouncing to a neighbouring disk node) must not receive them.
func TestCrossHostRedirectDropsAuthorization(t *testing.T) {
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		Auth:     &Credentials{Bearer: "wlcg-token-123"},
	})
	diskSeen := startRecordingServer(t, e, "disk1:80", httpserv.Options{})
	headSeen := startRecordingServer(t, e, "head:80", httpserv.Options{
		Redirect: func(method, p string) (string, bool) {
			return "http://disk1:80" + p, true
		},
	})
	e.stores["disk1:80"].Put("/pool/f", []byte("data"))

	got, err := e.client.Get(context.Background(), "head:80", "/pool/f")
	if err != nil || string(got) != "data" {
		t.Fatalf("get via redirect: %q err=%v", got, err)
	}
	if len(*headSeen) != 1 || (*headSeen)[0] != "Bearer wlcg-token-123" {
		t.Fatalf("head node auth = %q, want the bearer token", *headSeen)
	}
	if len(*diskSeen) != 1 || (*diskSeen)[0] != "" {
		t.Fatalf("disk node auth = %q, want empty (credential must not cross hosts)", *diskSeen)
	}
}

// TestSameHostRedirectKeepsAuthorization: a redirect that stays on the
// original host (path-level bounce) keeps the credentials.
func TestSameHostRedirectKeepsAuthorization(t *testing.T) {
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		Auth:     &Credentials{Bearer: "tok"},
	})
	seen := startRecordingServer(t, e, "self:80", httpserv.Options{
		Redirect: func(method, p string) (string, bool) {
			if p == "/pool/a" {
				return "http://self:80/pool/b", true
			}
			return "", false
		},
	})
	e.stores["self:80"].Put("/pool/b", []byte("data"))

	got, err := e.client.Get(context.Background(), "self:80", "/pool/a")
	if err != nil || string(got) != "data" {
		t.Fatalf("get via same-host redirect: %q err=%v", got, err)
	}
	if len(*seen) != 2 || (*seen)[0] != "Bearer tok" || (*seen)[1] != "Bearer tok" {
		t.Fatalf("auth per hop = %q, want the token on both same-host hops", *seen)
	}
}

// TestS3ResignsPerRedirectHop: SigV4 signatures cover the Host header, so a
// redirect hop must carry a signature computed for the hop's host — both
// the head node and the disk node verify independently.
func TestS3ResignsPerRedirectHop(t *testing.T) {
	creds := &s3.Credentials{AccessKey: "AKID1", SecretKey: "topsecret"}
	e := newEnv(t, Options{Strategy: StrategyNone, S3: creds})
	e.startServer(t, "disk1:80", httpserv.Options{S3Secrets: s3Secrets})
	st := storage.NewMemStore()
	srv := httpserv.New(st, httpserv.Options{
		S3Secrets: s3Secrets,
		Redirect: func(method, p string) (string, bool) {
			return "http://disk1:80" + p, true
		},
	})
	l, err := e.net.Listen("head:80")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	e.srvs["head:80"] = srv

	ctx := context.Background()
	// PUT through the redirect: both hops verify their own-host signature.
	if err := e.client.Put(ctx, "head:80", "/pool/obj", []byte("signed")); err != nil {
		t.Fatalf("signed put via redirect: %v", err)
	}
	got, err := e.client.Get(ctx, "head:80", "/pool/obj")
	if err != nil || string(got) != "signed" {
		t.Fatalf("signed get via redirect: %q err=%v", got, err)
	}
	// A signature minted for the head node must not verify on the disk
	// node: prove the disk node actually checks by sending it the wrong
	// host's signature directly.
	if _, err := e.client.Get(ctx, "disk1:80", "/pool/obj"); err != nil {
		t.Fatalf("direct signed get: %v", err)
	}
}

// TestRetryPolicyRetriesRetryableStatus: with a retry budget, transient
// 5xx answers are retried with backoff against the same replica until the
// budget runs out or the request succeeds.
func TestRetryPolicyRetriesRetryableStatus(t *testing.T) {
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		RetryPolicy: RetryPolicy{
			Attempts:    3,
			BaseBackoff: time.Millisecond,
			Jitter:      func(time.Duration) time.Duration { return 0 },
		},
	})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", []byte("eventually"))
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503, Remaining: 2})

	got, err := e.client.Get(context.Background(), dpm1, "/f")
	if err != nil || string(got) != "eventually" {
		t.Fatalf("get = %q err=%v", got, err)
	}
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got != 3 {
		t.Fatalf("server saw %d GETs, want 3 (two retries)", got)
	}
	if m := e.client.Metrics(); m.Retries != 2 {
		t.Fatalf("Metrics.Retries = %d, want 2", m.Retries)
	}
}

// TestRetryPolicyBudgetExhausted: the budget bounds the attempts, and the
// final error is the real failure.
func TestRetryPolicyBudgetExhausted(t *testing.T) {
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		RetryPolicy: RetryPolicy{
			Attempts:    2,
			BaseBackoff: time.Millisecond,
			Jitter:      func(time.Duration) time.Duration { return 0 },
		},
	})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", []byte("x"))
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503})

	_, err := e.client.Get(context.Background(), dpm1, "/f")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("err = %v, want 503", err)
	}
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got != 2 {
		t.Fatalf("server saw %d GETs, want 2", got)
	}
}

// TestRetryPolicyDefaultNoRetry: the zero-value policy (Attempts
// normalized to 1) reproduces the seed's no-retry semantics exactly.
func TestRetryPolicyDefaultNoRetry(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", []byte("x"))
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503, Remaining: 1})

	if _, err := e.client.Get(context.Background(), dpm1, "/f"); err == nil {
		t.Fatal("expected 503 to surface without retries")
	}
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got != 1 {
		t.Fatalf("server saw %d GETs, want 1 (no retry at default settings)", got)
	}
	if m := e.client.Metrics(); m.Retries != 0 {
		t.Fatalf("Metrics.Retries = %d, want 0", m.Retries)
	}
}

// TestRetryPolicyNoRetryOnSemanticFailure: 404s are deterministic; no
// budget may be spent on them.
func TestRetryPolicyNoRetryOnSemanticFailure(t *testing.T) {
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		RetryPolicy: RetryPolicy{
			Attempts:    5,
			BaseBackoff: time.Millisecond,
			Jitter:      func(time.Duration) time.Duration { return 0 },
		},
	})
	e.startServer(t, dpm1, httpserv.Options{})

	if _, err := e.client.Get(context.Background(), dpm1, "/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got != 1 {
		t.Fatalf("server saw %d GETs for a 404, want 1", got)
	}
}

// TestRetryBackoffSequence: the exponential schedule doubles from
// BaseBackoff and clamps at CapBackoff; the injected jitter sees exactly
// that deterministic sequence.
func TestRetryBackoffSequence(t *testing.T) {
	var mu sync.Mutex
	var seen []time.Duration
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		RetryPolicy: RetryPolicy{
			Attempts:    4,
			BaseBackoff: 10 * time.Millisecond,
			CapBackoff:  25 * time.Millisecond,
			Jitter: func(d time.Duration) time.Duration {
				mu.Lock()
				seen = append(seen, d)
				mu.Unlock()
				return 0 // deterministic and instant for the test
			},
		},
	})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", []byte("x"))
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 502, Remaining: 3})

	if _, err := e.client.Get(context.Background(), dpm1, "/f"); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(seen) != len(want) {
		t.Fatalf("jitter saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

// TestOptionsNormalization: New validates and normalizes every Options
// field once, so nonsense values never reach the hot path.
func TestOptionsNormalization(t *testing.T) {
	cases := []struct {
		name  string
		in    Options
		check func(t *testing.T, o Options)
	}{
		{"zero value gets documented defaults", Options{}, func(t *testing.T, o Options) {
			if o.MaxRangesPerRequest != 256 || o.MaxRedirects != 5 || o.MaxStreams != 4 {
				t.Errorf("defaults = ranges %d redirects %d streams %d", o.MaxRangesPerRequest, o.MaxRedirects, o.MaxStreams)
			}
			if o.ChunkSize != 1<<20 || o.UserAgent != "godavix/1.0" {
				t.Errorf("chunk %d ua %q", o.ChunkSize, o.UserAgent)
			}
			if o.RetryPolicy.Attempts != 1 {
				t.Errorf("RetryPolicy.Attempts = %d, want 1 (no retries)", o.RetryPolicy.Attempts)
			}
			if o.HealthThreshold != 3 || o.HealthProbeAfter != 2*time.Second {
				t.Errorf("health = %d/%v", o.HealthThreshold, o.HealthProbeAfter)
			}
		}},
		{"negative sizes and counts collapse to defaults", Options{
			MaxRangesPerRequest: -7, MaxRedirects: -1, MaxStreams: -2, ChunkSize: -64,
			CoalesceGap: -5, RequestTimeout: -time.Second,
		}, func(t *testing.T, o Options) {
			if o.MaxRangesPerRequest != 256 || o.MaxRedirects != 5 || o.MaxStreams != 4 || o.ChunkSize != 1<<20 {
				t.Errorf("negatives not normalized: %+v", o)
			}
			if o.CoalesceGap != 0 || o.RequestTimeout != 0 {
				t.Errorf("gap %d timeout %v", o.CoalesceGap, o.RequestTimeout)
			}
		}},
		{"negative parallelism means derive from pool", Options{
			VectorParallelism: -3, WalkParallelism: -1, UploadParallelism: -9,
		}, func(t *testing.T, o Options) {
			if o.VectorParallelism != 0 || o.WalkParallelism != 0 || o.UploadParallelism != 0 {
				t.Errorf("parallelism = %d/%d/%d, want 0/0/0", o.VectorParallelism, o.WalkParallelism, o.UploadParallelism)
			}
		}},
		{"negative cache knobs disable like zero", Options{
			CacheSize: -1, BlockSize: -2, ReadAhead: -3, StatTTL: -time.Minute,
		}, func(t *testing.T, o Options) {
			if o.CacheSize != 0 || o.BlockSize != 0 || o.ReadAhead != 0 || o.StatTTL != 0 {
				t.Errorf("cache knobs = %d/%d/%d/%v", o.CacheSize, o.BlockSize, o.ReadAhead, o.StatTTL)
			}
		}},
		{"zero retry fields get documented defaults", Options{
			RetryPolicy: RetryPolicy{Attempts: 4},
		}, func(t *testing.T, o Options) {
			if o.RetryPolicy.BaseBackoff != 50*time.Millisecond || o.RetryPolicy.CapBackoff != 2*time.Second {
				t.Errorf("backoff = %v/%v", o.RetryPolicy.BaseBackoff, o.RetryPolicy.CapBackoff)
			}
		}},
		{"cap below base is raised to base", Options{
			RetryPolicy: RetryPolicy{Attempts: 2, BaseBackoff: time.Second, CapBackoff: time.Millisecond},
		}, func(t *testing.T, o Options) {
			if o.RetryPolicy.CapBackoff != time.Second {
				t.Errorf("cap = %v, want raised to base", o.RetryPolicy.CapBackoff)
			}
		}},
		{"negative health threshold stays disabled", Options{
			HealthThreshold: -1,
		}, func(t *testing.T, o Options) {
			if o.HealthThreshold != -1 {
				t.Errorf("threshold = %d, want -1 (disabled)", o.HealthThreshold)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.check(t, tc.in.withDefaults())
		})
	}
}

// TestMetricsCounters: one redirected read and one failed-over read leave
// the exact engine trail in the snapshot.
func TestMetricsCounters(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, "disk1:80", httpserv.Options{})
	startHeadNode(t, e, "head:80", "disk1:80")
	e.stores["disk1:80"].Put("/pool/f", []byte("payload"))

	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	e.stores["dpm2:80"].Put("/r", []byte("replica"))
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: mlFor("http://dpm2:80/r")})
	e.net.SetDown(dpm1, true)

	ctx := context.Background()
	if _, err := e.client.Get(ctx, "head:80", "/pool/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.client.Get(ctx, dpm1, "/r"); err != nil {
		t.Fatal(err)
	}

	m := e.client.Metrics()
	if m.Redirects != 1 {
		t.Fatalf("Redirects = %d, want 1", m.Redirects)
	}
	if m.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", m.Failovers)
	}
	if m.Requests < 4 {
		t.Fatalf("Requests = %d, want >= 4", m.Requests)
	}
	if m.BytesUp <= 0 || m.BytesDown <= 0 {
		t.Fatalf("bytes = up %d down %d, want > 0", m.BytesUp, m.BytesDown)
	}
	op, ok := m.Ops["GET"]
	if !ok || op.Count != 2 {
		t.Fatalf("Ops[GET] = %+v, want Count 2", op)
	}
	if op.P50 <= 0 || op.P99 < op.P50 {
		t.Fatalf("quantiles = P50 %v P99 %v", op.P50, op.P99)
	}
}

// TestMetricsConcurrentSnapshots: snapshots race against live traffic;
// run under -race this proves Metrics() never needs a lock.
func TestMetricsConcurrentSnapshots(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := bytes.Repeat([]byte("m"), 8<<10)
	e.stores[dpm1].Put("/f", blob)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g%2 == 0 {
					if _, err := e.client.Get(ctx, dpm1, "/f"); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := e.client.GetRange(ctx, dpm1, "/f", int64(i)*16, 16); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m := e.client.Metrics()
				if m.Requests < 0 || m.BytesDown < 0 {
					t.Error("impossible snapshot")
					return
				}
			}
		}()
	}
	wg.Wait()

	m := e.client.Metrics()
	if m.Requests != 160 {
		t.Fatalf("Requests = %d, want 160", m.Requests)
	}
	if got := m.Ops["GET"].Count + m.Ops["GET(range)"].Count; got != 160 {
		t.Fatalf("op counts = %d, want 160", got)
	}
}

// TestHealthScoreboardDemotesAndReprobes: a flapping replica is demoted
// after HealthThreshold consecutive failures (ops stop paying its latency),
// then re-admitted by a half-open probe once it recovers.
func TestHealthScoreboardDemotesAndReprobes(t *testing.T) {
	e := newEnv(t, Options{
		MetalinkHost:     "fed:80",
		HealthThreshold:  2,
		HealthProbeAfter: 50 * time.Millisecond,
	})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	blob := []byte("replicated")
	e.stores[dpm1].Put("/f", blob)
	e.stores["dpm2:80"].Put("/f", blob)
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: mlFor("http://dpm1:80/f", "http://dpm2:80/f")})

	// The primary answers everything with 503 until further notice.
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503})

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		got, err := e.client.GetRange(ctx, dpm1, "/f", 0, 4)
		if err != nil || !bytes.Equal(got, blob[:4]) {
			t.Fatalf("read %d: %q err=%v", i, got, err)
		}
	}
	// Reads 1-2 paid the sick primary and tripped the breaker; reads 3-5
	// must not have touched it at all.
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got != 2 {
		t.Fatalf("primary saw %d GETs, want 2 (demoted after threshold)", got)
	}
	if m := e.client.Metrics(); m.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", m.BreakerTrips)
	}

	// The primary recovers; after the cooldown one half-open probe
	// re-admits it.
	e.srvs[dpm1].ClearFault("/f")
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if _, err := e.client.GetRange(ctx, dpm1, "/f", 0, 4); err != nil {
			t.Fatalf("post-recovery read %d: %v", i, err)
		}
	}
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got != 4 {
		t.Fatalf("primary saw %d GETs after recovery, want 4 (probe + closed breaker)", got)
	}
	if m := e.client.Metrics(); m.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips after recovery = %d, want still 1", m.BreakerTrips)
	}
}

// TestHealthScoreboardDisabled: HealthThreshold < 0 keeps the seed
// behaviour — every operation pays the sick primary, nothing ever trips.
func TestHealthScoreboardDisabled(t *testing.T) {
	e := newEnv(t, Options{
		MetalinkHost:    "fed:80",
		HealthThreshold: -1,
	})
	e.startServer(t, dpm1, httpserv.Options{})
	e.startServer(t, "dpm2:80", httpserv.Options{})
	blob := []byte("replicated")
	e.stores[dpm1].Put("/f", blob)
	e.stores["dpm2:80"].Put("/f", blob)
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: mlFor("http://dpm2:80/f")})
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503})

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := e.client.GetRange(ctx, dpm1, "/f", 0, 4); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got != 5 {
		t.Fatalf("primary saw %d GETs, want 5 (scoreboard disabled)", got)
	}
	if m := e.client.Metrics(); m.BreakerTrips != 0 {
		t.Fatalf("BreakerTrips = %d, want 0", m.BreakerTrips)
	}
}

// TestChunkRingSkipsDemotedReplica: a multi-stream download across a sick
// replica stops sending chunks its way once the scoreboard demotes it —
// one dead disk node must not cost every chunk a failed round trip.
func TestChunkRingSkipsDemotedReplica(t *testing.T) {
	e := newEnv(t, Options{
		MetalinkHost:     "fed:80",
		ChunkSize:        512,
		MaxStreams:       2,
		HealthThreshold:  2,
		HealthProbeAfter: time.Minute,
	})
	blob := bytes.Repeat([]byte("chunky!!"), 4<<10) // 32 KiB -> 64 chunks
	for _, r := range []string{"dpm1:80", "dpm2:80"} {
		e.startServer(t, r, httpserv.Options{})
		e.stores[r].Put("/f", blob)
	}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: mlFor("http://dpm1:80/f", "http://dpm2:80/f"),
	})
	// dpm1 rejects every data request.
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503})

	got, err := e.client.DownloadMultiStream(context.Background(), dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("content mismatch")
	}
	// Without the scoreboard roughly half the 64 chunks would start at
	// dpm1 and pay a 503 round trip; with it only the pre-demotion few do.
	if got := e.srvs[dpm1].RequestsByMethod("GET"); got > 6 {
		t.Fatalf("sick replica saw %d GETs, want <= 6 (ring skips demoted host)", got)
	}
}

// TestBreakerSkippedPrimaryStillLastResort: when the breaker has demoted
// the primary and no other replica can serve, the engine must still try
// the primary rather than fail outright.
func TestBreakerSkippedPrimaryStillLastResort(t *testing.T) {
	e := newEnv(t, Options{
		MetalinkHost:     "fed:80",
		HealthThreshold:  1,
		HealthProbeAfter: time.Hour, // no half-open window during the test
	})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", []byte("solo"))
	e.startServer(t, "fed:80", httpserv.Options{Metalinks: mlFor("http://dpm1:80/f")})

	ctx := context.Background()
	// Trip the breaker with one failing read.
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{Status: 503, Remaining: 1})
	if _, err := e.client.GetRange(ctx, dpm1, "/f", 0, 4); err == nil {
		t.Fatal("expected the tripping read to fail")
	}
	// The primary is demoted but it is the only replica: the next read
	// must go through (and close the breaker again).
	got, err := e.client.GetRange(ctx, dpm1, "/f", 0, 4)
	if err != nil || string(got) != "solo" {
		t.Fatalf("last-resort read = %q err=%v", got, err)
	}
}

// TestMetalinkReplicaOrderPrefersHealthy: order() moves demoted hosts
// behind healthy ones without dropping or reordering within a class.
func TestMetalinkReplicaOrderPrefersHealthy(t *testing.T) {
	b := newHealthBoard(1, time.Hour)
	var m metrics
	b.fail("b:80", &m)
	reps := []Replica{{Host: "a:80", Path: "/f"}, {Host: "b:80", Path: "/f"}, {Host: "c:80", Path: "/f"}}
	got := b.order(reps)
	want := []Replica{{Host: "a:80", Path: "/f"}, {Host: "c:80", Path: "/f"}, {Host: "b:80", Path: "/f"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if m.breakerTrips.Load() != 1 {
		t.Fatalf("trips = %d", m.breakerTrips.Load())
	}
	// Healthy again: original order restored.
	b.ok("b:80")
	if fmt.Sprint(b.order(reps)) != fmt.Sprint(reps) {
		t.Fatalf("order after recovery = %v, want original", b.order(reps))
	}
}
