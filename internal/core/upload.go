package core

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/adler32"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"godavix/internal/bufpool"
	"godavix/internal/digest"
	"godavix/internal/obs"
	"godavix/internal/pool"
	"godavix/internal/wire"
)

// defaultUploadParallelism is the chunk fan-out used when
// Options.UploadParallelism is zero, capped by Pool.MaxPerHost.
const defaultUploadParallelism = 4

// uploadProbeLen caps the first slice of a multi-stream upload. The probe
// must complete before the siblings launch (it discovers the redirect
// target and ranged-PUT support), so it carries at most this much data —
// its round trip costs O(RTT), not O(chunk), keeping the serial prefix of
// the upload negligible.
const uploadProbeLen = 64 << 10

// expectContinueWait bounds how long a streaming PUT waits for the
// server's 100 Continue before sending the body anyway — RFC 9110
// §10.1.1 requires not waiting indefinitely, since servers may omit the
// interim response entirely. Matches net/http's default.
const expectContinueWait = time.Second

// newUploadID mints the X-Upload-Id chunked uploads carry so the server
// can keep concurrent uploads to the same path in separate assemblies.
func newUploadID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// uploadParallelism resolves the chunk fan-out for an upload or pull-mode
// copy that splits into nChunks Content-Range PUTs. An explicit
// Options.UploadParallelism wins; the default is defaultUploadParallelism
// capped by the pool's MaxPerHost, so uploads never starve other traffic
// of pool slots.
func (c *Client) uploadParallelism(nChunks int) int {
	par := c.opts.UploadParallelism
	if par <= 0 {
		par = defaultUploadParallelism
		if m := c.opts.Pool.MaxPerHost; m > 0 && par > m {
			par = m
		}
	}
	if par > nChunks {
		par = nChunks
	}
	return par
}

// primeAfterWrite restores cache coherence after this client stored size
// bytes at host/path: stale blocks and stat entries (negative 404s
// included) are dropped, and — because the writer knows the new size — the
// stat cache is re-primed so a put-then-stat storm is a memory hit. The
// primed entry follows the PutIfAbsent upgrade rules: a concurrent richer
// fill (a live HEAD result) is never overwritten. date, when non-empty, is
// the server's Date header from the upload response — the closest
// observable approximation of the new mtime; otherwise the client clock is
// used. checksum, when non-empty, is computed client-side from the
// uploaded bytes (Put has them in hand); streaming uploads prime without
// one. A negative size (streaming upload of unknown length) only
// invalidates. Returns the block cache's post-invalidation generation for
// write-through callers.
func (c *Client) primeAfterWrite(host, path string, size int64, date, checksum string) uint64 {
	gen := c.invalidateCache(host, path)
	if c.statc == nil || size < 0 {
		return gen
	}
	mt := time.Now()
	if date != "" {
		if t, err := time.Parse(time.RFC1123, date); err == nil {
			mt = t
		}
	}
	c.statc.PutIfAbsent(cacheKey(host, path), Info{Path: path, Size: size, ModTime: mt, Checksum: checksum})
	return gen
}

// finishPut consumes a successful-or-not PUT response: status check, body
// drain, connection recycle, then post-write cache coherence (invalidate
// plus stat-cache priming with the known size, checksum when the caller
// has one, and the server's Date). Returns the post-invalidation block
// generation for write-through callers.
func (c *Client) finishPut(resp *Response, host, path string, size int64, checksum string) (uint64, error) {
	if resp.StatusCode/100 != 2 {
		return 0, statusErr(resp, "PUT", path)
	}
	date := resp.Header.Get("Date")
	if _, err := resp.ReadAllAndClose(); err != nil {
		return 0, err
	}
	return c.primeAfterWrite(host, path, size, date, checksum), nil
}

// PutReader streams size bytes from r to host/path without materializing
// the body: the upload is sent with Expect: 100-continue, so head-node
// redirects arrive before any body byte leaves the client and the
// (non-seekable) reader is never consumed by an aborted hop. size < 0
// streams with chunked transfer encoding for sources of unknown length.
//
// A file-backed r of useful size on a plain-TCP connection is handed to
// the kernel sendfile path — the payload never crosses userspace (see
// Metrics.KernelBytesUp). With Options.VerifyTransfers the body is instead
// tee'd through an incremental digest as it streams (forcing the pooled
// path: verification must observe every byte); the digest primes the stat
// cache and, when the server echoes a Digest header for what it stored, is
// compared against it — a mismatch fails with ErrChecksumMismatch at zero
// extra reads.
func (c *Client) PutReader(ctx context.Context, host, path string, r io.Reader, size int64) error {
	if size == 0 {
		return c.Put(ctx, host, path, nil)
	}
	body := r
	var h hash.Hash
	if c.opts.VerifyTransfers {
		h, _ = digest.New(digest.Adler32)
		body = io.TeeReader(r, h)
	}
	resp, err := c.putStream(ctx, host, path, body, size)
	if err != nil {
		return err
	}
	checksum, echoed := "", ""
	if h != nil && size > 0 {
		checksum = fmt.Sprintf("adler32:%08x", h.(hash.Hash32).Sum32())
		echoed = resp.Header.Get("Digest")
	}
	if _, err = c.finishPut(resp, host, path, size, checksum); err != nil {
		return err
	}
	if h != nil && size > 0 {
		if want, ok := digest.FromDigestHeader(echoed, digest.Adler32); ok {
			got := h.(hash.Hash32).Sum32()
			if got != binary.BigEndian.Uint32(want.Sum) {
				c.metrics.checksumMismatches.Add(1)
				return &ChecksumError{
					Path: path, Algo: digest.Adler32, Off: 0, Length: size,
					Got:  fmt.Sprintf("%08x", got),
					Want: hex.EncodeToString(want.Sum),
				}
			}
			c.metrics.transfersVerified.Add(1)
		}
	}
	return nil
}

// putStream drives the Expect: 100-continue upload across redirect hops.
// The interim-verdict flow cannot ride exec (the body must be held back
// until the server speaks), so the chain applies the same hop policies
// itself: hop cap, loop detection, per-hop health recording, and — via
// prepare's authHost scoping — no credential forwarding to cross-host hops.
func (c *Client) putStream(ctx context.Context, host, path string, body io.Reader, size int64) (resp *Response, err error) {
	start := time.Now()
	origin, originPath := host, path
	c.trace.EmitOpStart("PUT(stream)", origin, originPath)
	defer func() {
		d := time.Since(start)
		c.metrics.observe("PUT(stream)", d)
		c.trace.EmitOpDone("PUT(stream)", origin, originPath, d, err)
	}()
	tracker := hopTracker{max: c.opts.MaxRedirects}
	for {
		var redirect string
		resp, redirect, err = c.putStreamOnce(ctx, origin, host, path, body, size)
		c.recordHealth(host, err)
		if err != nil {
			return nil, err
		}
		if redirect == "" {
			return resp, nil
		}
		c.metrics.redirects.Add(1)
		c.trace.EmitRedirect("PUT(stream)", host, redirect)
		host, path, err = tracker.follow(host, path, redirect)
		if err != nil {
			return nil, err
		}
	}
}

// putStreamOnce performs one hop of a streaming PUT: headers first, then —
// after the server's 100 Continue, or after expectContinueWait if the
// server never speaks (RFC 9110 allows omitting the interim) — the body.
// A redirect or refusal before the body leaves the reader untouched, so
// the caller can replay it against the next target; an immediate final
// 2xx (a server accepting without the body) is returned as the response.
// The returned redirect is the Location of a 3xx interim verdict.
// originHost scopes Bearer/Basic credentials to the chain's first host.
func (c *Client) putStreamOnce(ctx context.Context, originHost, host, path string, body io.Reader, size int64) (*Response, string, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := c.pool.Get(ctx, host)
		if err != nil {
			return nil, "", err
		}
		reused := conn.Uses() > 1
		c.trace.EmitConnAcquired(host, reused)

		req := wire.NewRequest("PUT", host, path)
		req.Body = body
		req.ContentLength = size
		req.Header.Set("Expect", "100-continue")
		c.prepare(req, originHost)
		c.metrics.requests.Add(1)
		c.trace.EmitRequest("PUT", host, path)
		if err := c.applyDeadline(ctx, conn); err != nil {
			c.pool.Discard(conn)
			return nil, "", err
		}

		// Write headers, then wait — boundedly — for the server to speak.
		// Peek consumes nothing, so a silent server cannot desync the
		// stream: on timeout we simply proceed to the body.
		var interim *wire.Response
		err = req.WriteHeader(conn.NetConn())
		if err == nil {
			if perr := c.awaitInterim(ctx, conn); perr == nil {
				interim, err = wire.ReadResponse(conn.Reader(), "PUT")
			} else if !isTimeout(perr) {
				err = perr
			}
		}
		if err != nil {
			c.pool.Discard(conn)
			lastErr = fmt.Errorf("davix: streaming PUT: %w", err)
			// The body has not been touched, so a stale recycled
			// connection justifies one transparent retry, like Do.
			if attempt > 0 || !reused || ctx.Err() != nil {
				break
			}
			// The replay is about to happen; count it only now.
			c.metrics.retries.Add(1)
			c.trace.EmitRetry("PUT(stream)", host, 1, lastErr)
			continue
		}

		if interim != nil && interim.StatusCode != 100 {
			// A final verdict before the body was sent. The server may
			// still believe size bytes are coming on this connection, so
			// it must never be recycled.
			if interim.StatusCode/100 == 2 {
				// Accepted without wanting the body (legal per RFC 9110).
				interim.KeepAlive = false // forces Close to discard conn
				return &Response{Response: interim, conn: conn, client: c}, "", nil
			}
			code, status := interim.StatusCode, interim.Status
			loc := interim.Header.Get("Location")
			c.pool.Discard(conn)
			if isRedirect(code) {
				if loc == "" {
					return nil, "", fmt.Errorf("davix: redirect %d without Location from %s", code, host)
				}
				return nil, loc, nil
			}
			return nil, "", &StatusError{Code: code, Status: status, Method: "PUT", Path: path}
		}

		// 100 Continue (or a silent server): stream the body, then read
		// the real response, skipping any late interim.
		bp := obs.PathPooled
		if req.DirectBody(conn.NetConn()) && kernelEligible(conn.NetConn()) {
			bp = obs.PathKernel
		}
		if err := req.WriteBody(conn.NetConn()); err != nil {
			c.pool.Discard(conn)
			return nil, "", fmt.Errorf("davix: streaming PUT body: %w", err)
		}
		c.recordBytePath(obs.Up, path, bp, size)
		final, err := wire.ReadResponse(conn.Reader(), "PUT")
		for err == nil && final.StatusCode == 100 {
			final, err = wire.ReadResponse(conn.Reader(), "PUT")
		}
		if err != nil {
			c.pool.Discard(conn)
			return nil, "", fmt.Errorf("davix: streaming PUT response: %w", err)
		}
		return &Response{Response: final, conn: conn, client: c}, "", nil
	}
	return nil, "", lastErr
}

// awaitInterim waits up to expectContinueWait (bounded further by the
// connection's standing deadline) for the first byte of the server's
// interim response, without consuming it. A timeout return means the
// server stayed silent and the caller should send the body.
func (c *Client) awaitInterim(ctx context.Context, conn *pool.Conn) error {
	if conn.Reader().Buffered() > 0 {
		return nil
	}
	nc := conn.NetConn()
	wait := time.Now().Add(expectContinueWait)
	if standing := c.deadlineFor(ctx); !standing.IsZero() && standing.Before(wait) {
		wait = standing
	}
	if err := nc.SetReadDeadline(wait); err != nil {
		return err
	}
	_, err := conn.Reader().Peek(1)
	// Restore the standing deadline whatever happened.
	if derr := c.applyDeadline(ctx, conn); derr != nil && err == nil {
		err = derr
	}
	return err
}

// isTimeout reports whether err is an I/O deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// UploadMultiStream stores size bytes from src at host/path by splitting
// the object into Options.ChunkSize chunks and PUTting them concurrently
// with Content-Range headers over pooled connections — the write-side twin
// of the §2.4 multi-stream download. The first chunk doubles as a probe:
// it resolves the head-node redirect target (reused by every sibling, so
// the redirect round trip is paid once) and detects ranged-PUT support. A
// destination that rejects ranged PUTs (RFC 9110 requires 400 from origins
// that cannot honour Content-Range on PUT) degrades transparently to the
// single-stream path. With UploadParallelism=1 the request is
// byte-identical on the wire to Put — the paper-faithful serial upload.
func (c *Client) UploadMultiStream(ctx context.Context, host, path string, src io.ReaderAt, size int64) error {
	if size < 0 {
		return errors.New("davix: UploadMultiStream needs a known size")
	}
	if size == 0 {
		return c.Put(ctx, host, path, nil)
	}
	cs := c.opts.ChunkSize
	nChunks := int((size + cs - 1) / cs)
	par := c.uploadParallelism(nChunks)
	if par <= 1 || nChunks <= 1 {
		return c.putSerial(ctx, host, path, src, size)
	}

	readChunk := func(_ context.Context, _ int, off int64, buf []byte) error {
		if n, err := src.ReadAt(buf, off); n < len(buf) {
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("davix: read upload chunk at %d: %w", off, err)
		}
		return nil
	}
	return c.multiStreamPut(ctx, host, path, size, par,
		readChunk,
		func() error { return c.putSerial(ctx, host, path, src, size) },
		func() string { return sourceAdler32(src, size) },
		src)
}

// multiStreamPut drives the shared orchestration of every chunked upload
// (UploadMultiStream and the pull-mode CopyStream): a small probe slice
// resolves the redirect target and ranged-PUT support, the remaining
// chunks fan out over par workers pulling bytes through readChunk into
// pooled buffers, fallback runs when the destination rejects ranged PUTs,
// and — unless some chunk answered 201 Created — verifyCommitted checks
// the object actually assembled (wantChecksum supplies the expected
// content checksum, lazily).
//
// resumeSrc, when a plain file and Options.Resume is on, enables the
// checkpoint journal: completed chunks are journaled, an interrupted
// upload resumed later re-verifies them against the current source bytes
// and re-sends only the rest under the journaled upload id, and a resume
// whose server-side partial assembly has meanwhile been reaped detects the
// phantom (no commit signal) and re-uploads from scratch once.
func (c *Client) multiStreamPut(ctx context.Context, host, path string, size int64, par int,
	readChunk func(ctx context.Context, idx int, off int64, buf []byte) error,
	fallback func() error,
	wantChecksum func() string,
	resumeSrc io.ReaderAt) error {

	uploadID := newUploadID()
	probeLen := min(uploadProbeLen, c.opts.ChunkSize, size)
	var created atomic.Bool

	var ck *checkpoint
	var skip map[int64]uint32
	if resumeSrc != nil {
		ck, skip, uploadID = c.uploadCheckpoint(resumeSrc, host, path, size, probeLen, uploadID)
	}
	closeCk := func(keep bool) {
		if ck != nil {
			ck.close(keep)
		}
	}

	// Inline integrity: with VerifyTransfers every chunk buffer — already
	// in hand for the PUT — is digested before it ships, and the per-chunk
	// sums combine into the whole-object adler32. That value replaces
	// wantChecksum's lazy re-read of the entire source (sourceAdler32) with
	// zero extra reads, and primes the stat cache on commit.
	var (
		rollupMu sync.Mutex
		rollup   *digest.Rollup
	)
	if c.opts.VerifyTransfers {
		rollup, _ = digest.NewRollup(digest.Adler32)
	}
	addSum := func(off int64, b []byte) {
		if rollup == nil {
			return
		}
		sum := digest.Sum32(digest.Adler32, b)
		rollupMu.Lock()
		rollup.Add(off, int64(len(b)), sum)
		rollupMu.Unlock()
	}
	rollupChecksum := func() string {
		sum, err := rollup.Sum(size)
		if err != nil {
			return ""
		}
		return fmt.Sprintf("adler32:%08x", sum)
	}

	// Only the destination's PUT verdict feeds the fallback
	// classification — a chunk-source read failure surfaces as-is (the
	// fallback would just re-fail on it).
	buf := bufpool.Get(int(probeLen))
	if err := readChunk(ctx, 0, 0, buf); err != nil {
		bufpool.Put(buf)
		closeCk(true)
		return err
	}
	addSum(0, buf)
	c.trace.EmitChunkStart(obs.Up, path, 0, 0, probeLen)
	probe, err := c.putRanged(ctx, host, path, buf, 0, size, uploadID)
	c.trace.EmitChunkDone(obs.Up, path, 0, 0, probeLen, err)
	bufpool.Put(buf)
	if err != nil {
		if rangedPutUnsupported(err) {
			// The serial fallback does not journal and commits in one
			// request — an old journal would only mislead a later resume.
			closeCk(false)
			return fallback()
		}
		closeCk(true)
		return err
	}
	c.recordBytePath(obs.Up, path, obs.PathPooled, probeLen)
	if probe.created {
		created.Store(true)
	}

	err = c.forEachChunk(ctx, probeLen, size, par, func(cctx context.Context, idx int, off, ln int64) error {
		if sum, ok := skip[off]; ok {
			// The journal proved the server already received these source
			// bytes under the resumed upload id.
			if rollup != nil {
				rollupMu.Lock()
				rollup.Add(off, ln, sum)
				rollupMu.Unlock()
			}
			return nil
		}
		buf := bufpool.Get(int(ln))
		defer bufpool.Put(buf)
		if err := readChunk(cctx, idx, off, buf); err != nil {
			return err
		}
		addSum(off, buf)
		// The probe was chunk 0; fan-out chunks number from 1.
		c.trace.EmitChunkStart(obs.Up, path, idx+1, off, ln)
		res, err := c.putRanged(cctx, probe.host, probe.path, buf, off, size, uploadID)
		c.trace.EmitChunkDone(obs.Up, path, idx+1, off, ln, err)
		if err != nil {
			return err
		}
		if ck != nil {
			ck.append(off, ln, digest.Sum32(digest.Adler32, buf))
		}
		c.recordBytePath(obs.Up, path, obs.PathPooled, ln)
		if res.created {
			created.Store(true)
		}
		return nil
	})
	if err != nil {
		closeCk(true)
		return err
	}
	if rollup != nil {
		wantChecksum = rollupChecksum
	}
	if !created.Load() {
		err := c.verifyCommitted(ctx, host, path, size, wantChecksum)
		if err != nil && errors.Is(err, errUploadNotCommitted) && len(skip) > 0 {
			// The server-side partial assembly the journal pointed at is
			// gone (TTL sweep, restart): self-heal with one clean
			// journal-free re-upload instead of surfacing the phantom.
			closeCk(false)
			return c.multiStreamPut(ctx, host, path, size, par, readChunk, fallback, wantChecksum, nil)
		}
		closeCk(err != nil)
		return err
	}
	checksum := ""
	if rollup != nil {
		checksum = rollupChecksum()
	}
	c.primeAfterWrite(host, path, size, "", checksum)
	closeCk(false)
	return nil
}

// errUploadNotCommitted marks a chunked upload whose final object never
// assembled on the server — the resume path uses it to tell a reaped
// partial assembly from a transport failure.
var errUploadNotCommitted = errors.New("davix: upload not committed")

// sourceAdler32 renders the WLCG-style checksum of the upload source, for
// commit verification ("" when the source cannot be re-read).
func sourceAdler32(src io.ReaderAt, size int64) string {
	h := adler32.New()
	if _, err := io.Copy(h, io.NewSectionReader(src, 0, size)); err != nil {
		return ""
	}
	return fmt.Sprintf("adler32:%08x", h.Sum32())
}

// verifyCommitted confirms a chunked upload actually assembled into the
// final object when no chunk answered 201 Created: per-chunk 202s only
// acknowledge receipt, and a server that dropped the partial assembly
// (restart, idle sweep, a concurrent whole-body PUT abandoning it) would
// otherwise yield a phantom success. Size alone cannot tell a committed
// upload from a same-size predecessor it was meant to overwrite, so when
// the server reports a checksum it is compared against wantChecksum —
// computed lazily, since this whole path only runs when no commit signal
// arrived. The closing HEAD doubles as the stat-cache prime, with the
// server's own metadata instead of a client approximation.
func (c *Client) verifyCommitted(ctx context.Context, host, path string, size int64, wantChecksum func() string) error {
	inf, err := c.statUncached(ctx, host, path)
	if err != nil {
		return fmt.Errorf("davix: upload verification: %w", err)
	}
	if inf.Size != size {
		return fmt.Errorf("%w: server reports %d bytes, want %d", errUploadNotCommitted, inf.Size, size)
	}
	if inf.Checksum != "" && wantChecksum != nil {
		if want := wantChecksum(); want != "" && sameAlgo(want, inf.Checksum) {
			if !strings.EqualFold(want, inf.Checksum) {
				c.metrics.checksumMismatches.Add(1)
				algo, wantHex, _ := strings.Cut(want, ":")
				_, gotHex, _ := strings.Cut(inf.Checksum, ":")
				return fmt.Errorf("%w: %w", errUploadNotCommitted, &ChecksumError{
					Path: path, Algo: strings.ToLower(algo), Off: 0, Length: size,
					Got: strings.ToLower(gotHex), Want: strings.ToLower(wantHex),
				})
			}
			c.metrics.transfersVerified.Add(1)
		}
	}
	c.invalidateCache(host, path)
	if c.statc != nil {
		c.statc.PutIfAbsent(cacheKey(host, path), inf)
	}
	return nil
}

// sameAlgo reports whether two "algo:hex" checksums use the same
// algorithm and are therefore comparable.
func sameAlgo(a, b string) bool {
	aa, _, ok1 := strings.Cut(a, ":")
	bb, _, ok2 := strings.Cut(b, ":")
	return ok1 && ok2 && strings.EqualFold(aa, bb)
}

// putSerial is the seed's whole-body PUT fed from a ReaderAt: one request,
// one connection, Content-Length framing — byte-identical on the wire to
// Put, and replayable across redirect hops because the source is seekable.
func (c *Client) putSerial(ctx context.Context, host, path string, src io.ReaderAt, size int64) error {
	return c.exec(ctx, host, path, specPut, func(h, p string) *wire.Request {
		req := wire.NewRequest("PUT", h, p)
		req.Body = io.NewSectionReader(src, 0, size)
		req.ContentLength = size
		return req
	}, func(_ Replica, resp *Response) error {
		_, err := c.finishPut(resp, host, path, size, "")
		return err
	})
}

// rangedPutResult reports one Content-Range PUT: the redirect-resolved
// target (so sibling chunks go there directly) and whether the server
// answered 201 Created — the commit signal distinguishing "assembled into
// the final object" from a 202 per-chunk receipt.
type rangedPutResult struct {
	host, path string
	created    bool
}

// putRanged PUTs data as the [off, off+len(data)) slice of a total-byte
// object (Content-Range PUT), following redirects. uploadID, when
// non-empty, travels as X-Upload-Id so the server keeps concurrent
// uploads to one path in separate assemblies.
func (c *Client) putRanged(ctx context.Context, host, path string, data []byte, off, total int64, uploadID string) (rangedPutResult, error) {
	cr := fmt.Sprintf("bytes %d-%d/%d", off, off+int64(len(data))-1, total)
	var res rangedPutResult
	err := c.exec(ctx, host, path, specPutRange, func(h, p string) *wire.Request {
		req := wire.NewRequest("PUT", h, p)
		req.Header.Set("Content-Range", cr)
		if uploadID != "" {
			req.Header.Set("X-Upload-Id", uploadID)
		}
		req.SetBodyBytes(data)
		return req
	}, func(landed Replica, resp *Response) error {
		if resp.StatusCode/100 != 2 {
			return statusErr(resp, "PUT", path)
		}
		created := resp.StatusCode == 201
		if _, err := resp.ReadAllAndClose(); err != nil {
			return err
		}
		// The redirect-resolved target lets sibling chunks go straight to
		// the disk node the head node designated.
		res = rangedPutResult{host: landed.Host, path: landed.Path, created: created}
		return nil
	})
	if err != nil {
		return rangedPutResult{}, err
	}
	return res, nil
}

// rangedPutUnsupported classifies err as "this server does not implement
// Content-Range on PUT" — the statuses compliant origins use to refuse a
// partial PUT — as opposed to a transient or semantic failure worth
// surfacing.
func rangedPutUnsupported(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	switch se.Code {
	case 400, 405, 416, 501:
		return true
	}
	return false
}

// forEachChunk runs fn once per Options.ChunkSize chunk of the [start,
// size) byte range of an object, across up to streams workers. The first
// chunk error cancels the siblings through a derived context: in-flight
// requests abort and queued chunks are abandoned. Parent-context
// cancellation surfaces as ctx.Err even when no worker recorded an error.
func (c *Client) forEachChunk(ctx context.Context, start, size int64, streams int, fn func(ctx context.Context, idx int, off, ln int64) error) error {
	cs := c.opts.ChunkSize
	nChunks := int((size - start + cs - 1) / cs)
	if nChunks <= 0 {
		return ctx.Err()
	}
	if streams > nChunks {
		streams = nChunks
	}
	if streams < 1 {
		streams = 1
	}

	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		next     atomic.Int64
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dctx.Err() == nil {
				idx := int(next.Add(1)) - 1
				if idx >= nChunks {
					return
				}
				off := start + int64(idx)*cs
				ln := min(cs, size-off)
				if err := fn(dctx, idx, off, ln); err != nil {
					setErr(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return firstErr
}
