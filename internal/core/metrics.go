package core

import (
	"context"
	"io"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"godavix/internal/bufpool"
	"godavix/internal/obs"
	"godavix/internal/pool"
)

// Metrics is a point-in-time snapshot of what the client has actually done
// on the wire: how many requests it issued, how often the resilience layers
// fired (retries, redirects, replica failovers, breaker trips), how many
// bytes moved, and how long each kind of operation took. Collected with
// plain atomics — snapshotting is safe (and cheap) while operations are in
// flight on other goroutines.
type Metrics struct {
	// Requests counts HTTP requests written to a connection. Redirect
	// hops, retry attempts and failover attempts each count: this is wire
	// traffic, not caller-level operations (see Ops for those).
	Requests int64
	// Retries counts extra attempts at the same target: transparent
	// stale-recycled-connection replays plus RetryPolicy backoff retries.
	Retries int64
	// Redirects counts followed 3xx hops.
	Redirects int64
	// Failovers counts switches to an alternate Metalink replica after
	// the preferred one failed or was breaker-skipped.
	Failovers int64
	// BreakerTrips counts per-host health-scoreboard demotions
	// (consecutive-failure threshold reached, host enters cooldown).
	BreakerTrips int64
	// BytesUp and BytesDown are the wire bytes (headers included) of every
	// settled exchange across the pooled connections. An exchange the
	// engine abandons and re-issues in full — a redirect hop bounced to
	// another node, a stale-recycled-connection replay — is excluded, so a
	// body that crosses the wire twice on the way to its final target is
	// charged once.
	BytesUp   int64
	BytesDown int64
	// KernelBytesUp/KernelBytesDown count transfer payload bytes the kernel
	// fast path moved (sendfile/splice — the bytes never crossed userspace);
	// PooledBytesUp/PooledBytesDown count payload bytes that went through
	// the pooled copy buffers instead. Only the streaming transfer paths
	// (DownloadMultiStreamTo to a file, PutReader/UploadMultiStream from a
	// file) classify their bytes; header traffic and byte-slice operations
	// never count here.
	KernelBytesUp   int64
	KernelBytesDown int64
	PooledBytesUp   int64
	PooledBytesDown int64
	// TransfersVerified counts transfers whose inline end-to-end digest
	// matched the server value; ChecksumMismatches counts the ones that
	// did not (each of those also failed with ErrChecksumMismatch).
	TransfersVerified  int64
	ChecksumMismatches int64
	// HedgesIssued counts chunk reads that outlived their latency budget
	// and got a duplicate request raced against a standby replica;
	// HedgeWins counts the races the standby won; HedgeWastedBytes counts
	// payload bytes the losing side had already delivered when it was
	// cancelled — the duplicate-traffic cost of hedging.
	HedgesIssued     int64
	HedgeWins        int64
	HedgeWastedBytes int64
	// PrefetchIssued counts speculative fetch requests put on the wire —
	// planner-driven cache read-ahead and pipelined window fills both
	// count; PrefetchBytes is the volume they asked for; and
	// PrefetchCancelled counts speculative fetches cancelled mid-flight
	// (pattern jump, retrain, shutdown).
	PrefetchIssued    int64
	PrefetchBytes     int64
	PrefetchCancelled int64
	// ResumedBytes counts bytes a checkpointed transfer proved intact
	// against their journaled digests and skipped re-transferring;
	// ResumeVerifyFailures counts journaled chunks whose digest no longer
	// matched on resume (those chunks were re-fetched, never trusted).
	ResumedBytes         int64
	ResumeVerifyFailures int64
	// Ops maps an operation label ("GET", "PUT(range)", "PROPFIND", ...)
	// to its latency distribution as experienced by the caller: one entry
	// per engine execution, retries and failover included.
	Ops map[string]OpStats
}

// OpStats summarizes one operation's caller-observed latency.
type OpStats struct {
	// Count is how many executions were recorded.
	Count int64
	// P50, P90 and P99 are latency quantiles, accurate to the histogram's
	// power-of-two bucket (each quantile is the upper bound of the bucket
	// the rank falls in).
	P50, P90, P99 time.Duration
}

// latBuckets spans 1µs to ~2.3h in power-of-two steps.
const latBuckets = 34

// opHist is a lock-free log2 latency histogram for one operation label.
// The sample count is the bucket sum — kept single-sourced so a snapshot
// taken mid-observe can never see a count/bucket mismatch.
type opHist struct {
	buckets [latBuckets]atomic.Int64
}

// bucketFor maps a duration to its log2-microsecond bucket.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

// bucketCeil is the upper latency bound of bucket b.
func bucketCeil(b int) time.Duration {
	return time.Duration(int64(1)<<uint(b)) * time.Microsecond
}

// quantile returns the latency below which fraction q of the recorded
// samples fall, to bucket resolution. counts is a coherent-enough copy.
func quantile(counts []int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, n := range counts {
		cum += n
		if cum >= rank {
			return bucketCeil(b)
		}
	}
	return bucketCeil(latBuckets - 1)
}

// metrics is the collector behind Client.Metrics. Every mutation is a
// single atomic add — the healthy path pays a handful of uncontended
// atomics per operation and nothing else.
type metrics struct {
	requests, retries, redirects, failovers, breakerTrips atomic.Int64
	bytesUp, bytesDown                                    atomic.Int64
	kernelBytesUp, kernelBytesDown                        atomic.Int64
	pooledBytesUp, pooledBytesDown                        atomic.Int64
	transfersVerified, checksumMismatches                 atomic.Int64
	hedgesIssued, hedgeWins, hedgeWastedBytes             atomic.Int64
	prefetchIssued, prefetchBytes, prefetchCancelled      atomic.Int64
	resumedBytes, resumeVerifyFailures                    atomic.Int64
	ops                                                   sync.Map // string -> *opHist
}

// histFor returns (allocating once) the histogram for op.
func (m *metrics) histFor(op string) *opHist {
	if h, ok := m.ops.Load(op); ok {
		return h.(*opHist)
	}
	h, _ := m.ops.LoadOrStore(op, &opHist{})
	return h.(*opHist)
}

// observe records one completed execution of op.
func (m *metrics) observe(op string, d time.Duration) {
	m.histFor(op).buckets[bucketFor(d)].Add(1)
}

// snapshot renders the public view.
func (m *metrics) snapshot() Metrics {
	s := Metrics{
		Requests:             m.requests.Load(),
		Retries:              m.retries.Load(),
		Redirects:            m.redirects.Load(),
		Failovers:            m.failovers.Load(),
		BreakerTrips:         m.breakerTrips.Load(),
		BytesUp:              m.bytesUp.Load(),
		BytesDown:            m.bytesDown.Load(),
		KernelBytesUp:        m.kernelBytesUp.Load(),
		KernelBytesDown:      m.kernelBytesDown.Load(),
		PooledBytesUp:        m.pooledBytesUp.Load(),
		PooledBytesDown:      m.pooledBytesDown.Load(),
		TransfersVerified:    m.transfersVerified.Load(),
		ChecksumMismatches:   m.checksumMismatches.Load(),
		HedgesIssued:         m.hedgesIssued.Load(),
		HedgeWins:            m.hedgeWins.Load(),
		HedgeWastedBytes:     m.hedgeWastedBytes.Load(),
		PrefetchIssued:       m.prefetchIssued.Load(),
		PrefetchBytes:        m.prefetchBytes.Load(),
		PrefetchCancelled:    m.prefetchCancelled.Load(),
		ResumedBytes:         m.resumedBytes.Load(),
		ResumeVerifyFailures: m.resumeVerifyFailures.Load(),
		Ops:                  map[string]OpStats{},
	}
	m.ops.Range(func(k, v any) bool {
		h := v.(*opHist)
		counts := make([]int64, latBuckets)
		var total int64
		for b := range h.buckets {
			n := h.buckets[b].Load()
			counts[b] = n
			total += n
		}
		s.Ops[k.(string)] = OpStats{
			Count: total,
			P50:   quantile(counts, total, 0.50),
			P90:   quantile(counts, total, 0.90),
			P99:   quantile(counts, total, 0.99),
		}
		return true
	})
	return s
}

// Metrics snapshots the client-wide counters and per-op latency quantiles.
// Safe to call concurrently with in-flight operations.
func (c *Client) Metrics() Metrics { return c.metrics.snapshot() }

// countingDialer wraps the user's Dialer so every connection reports its
// wire bytes (headers included) to the client metrics.
type countingDialer struct {
	d pool.Dialer
	m *metrics
}

func (cd countingDialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := cd.d.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: conn, m: cd.m}, nil
}

// countingConn stages each exchange's wire bytes in per-connection pending
// counters. Response.Close settles them: flush commits the exchange to the
// client-wide BytesUp/BytesDown, drop forgets an abandoned redirect hop so
// its re-sent request is not double-counted. An exchange that dies before
// reaching Close (a stale-connection replay, a failed dial-out) is
// discarded with the connection, pending bytes and all — only exchanges the
// engine kept count. The counters are atomics because an exchange's reads
// and writes can interleave with the pool reaper closing the conn.
type countingConn struct {
	net.Conn
	m                *metrics
	pendUp, pendDown atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.pendDown.Add(int64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.pendUp.Add(int64(n))
	}
	return n, err
}

// flush commits the pending exchange to the client-wide counters.
func (c *countingConn) flush() {
	if n := c.pendDown.Swap(0); n != 0 {
		c.m.bytesDown.Add(n)
	}
	if n := c.pendUp.Swap(0); n != 0 {
		c.m.bytesUp.Add(n)
	}
}

// drop forgets the pending exchange (abandoned redirect hop).
func (c *countingConn) drop() {
	c.pendDown.Store(0)
	c.pendUp.Store(0)
}

// Unwrap exposes the transport connection underneath the counting layer.
// The zero-copy download path hands the raw conn to os.File.ReadFrom so the
// kernel splice engages (an interface-embedding wrapper hides the
// syscall.Conn the runtime needs); the caller then accounts the moved bytes
// via addPendDown, keeping the exchange's wire accounting exact.
func (c *countingConn) Unwrap() net.Conn { return c.Conn }

// addPendDown stages n payload bytes read directly off the raw conn (past
// the counting Read) into the exchange's pending downlink counter.
func (c *countingConn) addPendDown(n int64) {
	if n > 0 {
		c.pendDown.Add(n)
	}
}

// ReadFrom forwards to the transport's own ReadFrom when it has one, so an
// io.Copy from an *os.File body lands in net.TCPConn.ReadFrom and the
// kernel sendfile path engages — the counting layer would otherwise hide
// the interface and silently force userspace copies. Bytes are staged into
// the pending uplink counter either way.
func (c *countingConn) ReadFrom(r io.Reader) (int64, error) {
	if rf, ok := c.Conn.(io.ReaderFrom); ok {
		n, err := rf.ReadFrom(r)
		c.pendUp.Add(n)
		return n, err
	}
	// No transport support: plain copy through the counting Write.
	buf := bufpool.Get(64 << 10)
	n, err := io.CopyBuffer(struct{ io.Writer }{c}, r, buf)
	bufpool.Put(buf)
	return n, err
}

// kernelEligible reports whether conn's transport can run kernel zero-copy
// against a file: the raw connection (beneath the counting layer) must
// expose a syscall descriptor for sendfile/splice — true for real TCP,
// false for netsim's in-memory pipes and for TLS (the record layer must see
// every byte).
func kernelEligible(conn net.Conn) bool {
	cc, ok := conn.(*countingConn)
	if !ok {
		return false
	}
	_, ok = cc.Unwrap().(syscall.Conn)
	return ok
}

// recordBytePath settles one transfer span's byte-path accounting: the
// Snapshot counters and the TransferPath trace event.
func (c *Client) recordBytePath(dir obs.Direction, path string, bp obs.BytePath, n int64) {
	if n <= 0 {
		return
	}
	switch {
	case dir == obs.Down && bp == obs.PathKernel:
		c.metrics.kernelBytesDown.Add(n)
	case dir == obs.Down && bp == obs.PathPooled:
		c.metrics.pooledBytesDown.Add(n)
	case dir == obs.Up && bp == obs.PathKernel:
		c.metrics.kernelBytesUp.Add(n)
	case dir == obs.Up && bp == obs.PathPooled:
		c.metrics.pooledBytesUp.Add(n)
	}
	c.trace.EmitTransferPath(dir, path, bp, n)
}
