package core

import (
	"context"
	"errors"
	"fmt"
	"hash/adler32"
	"io"
	"strconv"
	"time"

	"godavix/internal/metalink"
	"godavix/internal/webdav"
	"godavix/internal/wire"
)

// Info describes a remote resource, as learned from HEAD or PROPFIND.
type Info struct {
	// Path is the resource path on the server.
	Path string
	// Size is the content length in bytes.
	Size int64
	// Dir reports whether the resource is a WebDAV collection.
	Dir bool
	// ModTime is the last modification time (zero when unknown).
	ModTime time.Time
	// Checksum is the server-reported checksum, if any.
	Checksum string
}

// Get fetches the whole object at host/path, failing over to Metalink
// replicas when the host is unavailable (unless StrategyNone).
func (c *Client) Get(ctx context.Context, host, path string) ([]byte, error) {
	var gen uint64
	if c.cache != nil {
		gen = c.cache.Generation()
	}
	var out []byte
	err := c.withFailover(ctx, host, path, func(r Replica) error {
		b, err := c.getOnce(ctx, r.Host, r.Path)
		out = b
		return err
	})
	if err == nil && c.cache != nil {
		// A full-object GET covers every block, trailing partial included.
		c.cache.PutSpan(cacheKey(host, path), gen, 0, out, true)
	}
	return out, err
}

// getOnce fetches the whole object from exactly one replica, following
// head-node redirects and (optionally) verifying the server checksum.
func (c *Client) getOnce(ctx context.Context, host, path string) ([]byte, error) {
	resp, err := c.doFollow(ctx, host, path, func(h, p string) *wire.Request {
		return wire.NewRequest("GET", h, p)
	})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, statusErr(resp, "GET", path)
	}
	want := resp.Header.Get("X-Checksum")
	body, err := resp.ReadAllAndClose()
	if err != nil {
		return nil, err
	}
	if c.opts.VerifyChecksums && want != "" {
		if err := verifyChecksum(body, want, path); err != nil {
			return nil, err
		}
	}
	return body, nil
}

// GetRange fetches length bytes at offset off with replica failover. With
// the block cache enabled it is served block-aligned through the cache;
// like a range-clamping server it may return fewer bytes when the object
// ends inside the request.
func (c *Client) GetRange(ctx context.Context, host, path string, off, length int64) ([]byte, error) {
	if c.cache != nil {
		return c.getRangeCached(ctx, host, path, off, length)
	}
	var out []byte
	err := c.withFailover(ctx, host, path, func(r Replica) error {
		b, err := c.getRangeOnce(ctx, r.Host, r.Path, off, length)
		out = b
		return err
	})
	return out, err
}

// getRangeCached serves GetRange through the block cache. The object size
// is unknown here (-1): short blocks mark the end of the object.
func (c *Client) getRangeCached(ctx context.Context, host, path string, off, length int64) ([]byte, error) {
	if length <= 0 {
		return nil, nil
	}
	p := make([]byte, length)
	n, err := c.cache.ReadThrough(ctx, cacheKey(host, path), -1, p, off, c.cacheFetch(host, path))
	if err != nil {
		// A 416 on a later block after serving some bytes means the request
		// straddled the end of an object whose size is a block multiple —
		// the bytes already gathered ARE the short read a clamping server
		// would have sent.
		var se *StatusError
		if n > 0 && errors.As(err, &se) && se.Code == 416 {
			return p[:n], nil
		}
		return nil, err
	}
	if n == 0 {
		// The whole request sits past the end of a cached short block;
		// match the uncached server answer for an out-of-range request.
		return nil, &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: path}
	}
	return p[:n], nil
}

// getRangeOnce fetches one range from exactly one replica using a single
// Range request. Servers ignoring Range (status 200) are handled by
// slicing the full body.
func (c *Client) getRangeOnce(ctx context.Context, host, path string, off, length int64) ([]byte, error) {
	rangeVal := "bytes=" + strconv.FormatInt(off, 10) + "-" + strconv.FormatInt(off+length-1, 10)
	resp, err := c.doFollow(ctx, host, path, func(h, p string) *wire.Request {
		req := wire.NewRequest("GET", h, p)
		req.Header.Set("Range", rangeVal)
		return req
	})
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case 206:
		return resp.ReadAllAndClose()
	case 200:
		// Range-ignorant server: take the slice out of the full body.
		body, err := resp.ReadAllAndClose()
		if err != nil {
			return nil, err
		}
		if off >= int64(len(body)) {
			return nil, &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: path}
		}
		end := off + length
		if end > int64(len(body)) {
			end = int64(len(body))
		}
		return body[off:end], nil
	default:
		return nil, statusErr(resp, "GET", path)
	}
}

// getRangeInto fetches len(dst) bytes at offset off from exactly one
// replica, reading the response body directly into dst — no intermediate
// allocation or copy, which is what keeps the multi-stream download loop
// allocation-free per chunk. Returns the byte count delivered; like a
// clamping server it may be short when the object ends inside the request.
func (c *Client) getRangeInto(ctx context.Context, host, path string, off int64, dst []byte) (int, error) {
	rangeVal := "bytes=" + strconv.FormatInt(off, 10) + "-" + strconv.FormatInt(off+int64(len(dst))-1, 10)
	resp, err := c.doFollow(ctx, host, path, func(h, p string) *wire.Request {
		req := wire.NewRequest("GET", h, p)
		req.Header.Set("Range", rangeVal)
		return req
	})
	if err != nil {
		return 0, err
	}
	switch resp.StatusCode {
	case 206:
		n, err := io.ReadFull(resp.Body, dst)
		if err == io.ErrUnexpectedEOF {
			// The server clamped the range at end of object.
			err = nil
		}
		cerr := resp.Close()
		if err == nil {
			err = cerr
		}
		return n, err
	case 200:
		// Range-ignorant server: skip the prefix, read the slice.
		if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
			resp.Close()
			if err == io.EOF {
				return 0, &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: path}
			}
			return 0, err
		}
		n, err := io.ReadFull(resp.Body, dst)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			err = nil
		}
		cerr := resp.Close()
		if err == nil {
			err = cerr
		}
		if err == nil && n == 0 && len(dst) > 0 {
			// The whole request sits past end of object; match the 416 a
			// range-honouring server would have sent.
			return 0, &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: path}
		}
		return n, err
	default:
		return 0, statusErr(resp, "GET", path)
	}
}

// Put stores data at host/path, following head-node redirects to the
// disk node designated for the upload. On success the stat cache is primed
// with the known new size (a put-then-stat storm is a memory hit) and the
// uploaded bytes are written through to the block cache: this client just
// defined the object's content, so a put-then-read costs no round trip.
func (c *Client) Put(ctx context.Context, host, path string, data []byte) error {
	resp, err := c.doFollow(ctx, host, path, func(h, p string) *wire.Request {
		req := wire.NewRequest("PUT", h, p)
		req.SetBodyBytes(data)
		return req
	})
	if err != nil {
		return err
	}
	// The writer holds the uploaded bytes, so the primed stat entry can
	// carry their WLCG-style checksum too — but only a live stat cache
	// makes the O(size) hash worth paying.
	checksum := ""
	if c.statc != nil {
		checksum = fmt.Sprintf("adler32:%08x", adler32.Checksum(data))
	}
	gen, err := c.finishPut(resp, host, path, int64(len(data)), checksum)
	if err != nil {
		return err
	}
	if c.cache != nil && len(data) > 0 {
		// gen is finishPut's own invalidation generation, so a concurrent
		// writer's later invalidation — whose content should win — fences
		// this span out.
		c.cache.PutSpan(cacheKey(host, path), gen, 0, data, true)
	}
	return nil
}

// Delete removes the object at host/path.
func (c *Client) Delete(ctx context.Context, host, path string) error {
	req := wire.NewRequest("DELETE", host, path)
	resp, err := c.Do(ctx, host, req)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusErr(resp, "DELETE", path)
	}
	if _, err := resp.ReadAllAndClose(); err != nil {
		return err
	}
	c.invalidateCache(host, path)
	return nil
}

// Mkdir creates a WebDAV collection at host/path.
func (c *Client) Mkdir(ctx context.Context, host, path string) error {
	req := wire.NewRequest("MKCOL", host, path)
	resp, err := c.Do(ctx, host, req)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusErr(resp, "MKCOL", path)
	}
	if _, err := resp.ReadAllAndClose(); err != nil {
		return err
	}
	// A fresh collection must not keep answering from a negative entry.
	c.invalidateCache(host, path)
	return nil
}

// Copy asks the server at srcHost to push srcPath to destURL (WebDAV
// third-party copy, the WLCG HTTP-TPC push pattern): the data flows
// directly between the two storage servers, never through this client.
func (c *Client) Copy(ctx context.Context, srcHost, srcPath, destURL string) error {
	req := wire.NewRequest("COPY", srcHost, srcPath)
	req.Header.Set("Destination", destURL)
	resp, err := c.Do(ctx, srcHost, req)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusErr(resp, "COPY", srcPath)
	}
	if _, err = resp.ReadAllAndClose(); err != nil {
		return err
	}
	// The destination now holds different content: drop this client's
	// cached blocks and stat entries (negative 404s included) for it, so a
	// copy-then-stat or copy-then-read never serves the pre-copy state.
	if dHost, dPath, derr := metalink.SplitURL(destURL); derr == nil && dHost != "" {
		c.invalidateCache(dHost, dPath)
	}
	return nil
}

// Stat describes the resource at host/path using HEAD, falling back to
// PROPFIND for collections (HEAD reports no size/type for them). With
// Options.StatTTL set, results — including 404s, cached as negative
// entries — are served from the metadata cache for the TTL.
func (c *Client) Stat(ctx context.Context, host, path string) (Info, error) {
	if c.statc == nil {
		return c.statUncached(ctx, host, path)
	}
	key := cacheKey(host, path)
	if inf, cerr, ok := c.statc.Get(key); ok {
		return inf, cerr
	}
	inf, err := c.statUncached(ctx, host, path)
	switch {
	case err == nil:
		c.statc.Put(key, inf)
	case errors.Is(err, ErrNotFound):
		c.statc.PutError(key, err)
	}
	return inf, err
}

// statUncached performs the network Stat.
func (c *Client) statUncached(ctx context.Context, host, path string) (Info, error) {
	resp, err := c.doFollow(ctx, host, path, func(h, p string) *wire.Request {
		return wire.NewRequest("HEAD", h, p)
	})
	if err != nil {
		return Info{}, err
	}
	if resp.StatusCode != 200 {
		resp.Close()
		// Collections on some servers refuse HEAD; try PROPFIND.
		if resp.StatusCode == 404 {
			return Info{}, &StatusError{Code: 404, Status: resp.Status, Method: "HEAD", Path: path}
		}
		return c.statPropfind(ctx, host, path)
	}
	inf := Info{Path: path, Checksum: resp.Header.Get("X-Checksum")}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		inf.Size, _ = strconv.ParseInt(cl, 10, 64)
	}
	if lm := resp.Header.Get("Last-Modified"); lm != "" {
		if t, err := time.Parse(time.RFC1123, lm); err == nil {
			inf.ModTime = t
		}
	}
	resp.Close()
	return inf, nil
}

func (c *Client) statPropfind(ctx context.Context, host, path string) (Info, error) {
	entries, err := c.propfind(ctx, host, path, "0")
	if err != nil {
		return Info{}, err
	}
	if len(entries) == 0 {
		return Info{}, &StatusError{Code: 404, Status: "404 Not Found", Method: "PROPFIND", Path: path}
	}
	e := entries[0]
	return Info{Path: e.Href, Size: e.Size, Dir: e.Dir, ModTime: e.ModTime}, nil
}

// List returns the entries of the collection at host/path (PROPFIND depth
// 1, without the collection itself). With Options.StatTTL set, every entry
// primes the stat cache — a Walk- or List-then-Stat storm is then absorbed
// without re-hitting the server. Primed entries carry the PROPFIND
// properties (no checksum), the same as a Stat that fell back to PROPFIND;
// a live entry from a direct Stat is never overwritten, so a HEAD-won
// checksum survives its TTL.
func (c *Client) List(ctx context.Context, host, path string) ([]Info, error) {
	entries, err := c.propfind(ctx, host, path, "1")
	if err != nil {
		return nil, err
	}
	infos := make([]Info, 0, len(entries))
	for i, e := range entries {
		inf := Info{Path: e.Href, Size: e.Size, Dir: e.Dir, ModTime: e.ModTime}
		if c.statc != nil {
			c.statc.PutIfAbsent(cacheKey(host, inf.Path), inf)
		}
		if i == 0 && e.Dir {
			continue // the collection itself (primed above, not listed)
		}
		infos = append(infos, inf)
	}
	return infos, nil
}

func (c *Client) propfind(ctx context.Context, host, path, depth string) ([]webdav.Entry, error) {
	req := wire.NewRequest("PROPFIND", host, path)
	req.Header.Set("Depth", depth)
	resp, err := c.Do(ctx, host, req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != 207 {
		return nil, statusErr(resp, "PROPFIND", path)
	}
	if c.opts.LegacyPropfindDecode {
		body, err := resp.ReadAllAndClose()
		if err != nil {
			return nil, err
		}
		return webdav.DecodeMultistatus(body)
	}
	// Stream the multistatus document straight off the wire body: large
	// directory listings are decoded without materializing the XML.
	entries, err := webdav.DecodeMultistatusStream(resp.Body)
	cerr := resp.Close()
	if err != nil {
		return nil, fmt.Errorf("davix: PROPFIND %s: %w", path, err)
	}
	if cerr != nil {
		return nil, cerr
	}
	return entries, nil
}
