package core

import (
	"context"
	"errors"
	"fmt"
	"hash/adler32"
	"io"
	"strconv"
	"time"

	"godavix/internal/metalink"
	"godavix/internal/webdav"
	"godavix/internal/wire"
)

// Info describes a remote resource, as learned from HEAD or PROPFIND.
type Info struct {
	// Path is the resource path on the server.
	Path string
	// Size is the content length in bytes.
	Size int64
	// Dir reports whether the resource is a WebDAV collection.
	Dir bool
	// ModTime is the last modification time (zero when unknown).
	ModTime time.Time
	// Checksum is the server-reported checksum, if any.
	Checksum string
}

// Get fetches the whole object at host/path, failing over to Metalink
// replicas when the host is unavailable (unless StrategyNone).
func (c *Client) Get(ctx context.Context, host, path string) ([]byte, error) {
	var gen uint64
	if c.cache != nil {
		gen = c.cache.Generation()
	}
	var out []byte
	err := c.exec(ctx, host, path, specGet, func(h, p string) *wire.Request {
		return wire.NewRequest("GET", h, p)
	}, func(_ Replica, resp *Response) error {
		if resp.StatusCode != 200 {
			return statusErr(resp, "GET", path)
		}
		want := resp.Header.Get("X-Checksum")
		body, err := resp.ReadAllAndClose()
		if err != nil {
			return err
		}
		if c.opts.VerifyChecksums && want != "" {
			if err := verifyChecksum(body, want, path, c.opts.VerifyTransfers); err != nil {
				return err
			}
		}
		out = body
		return nil
	})
	if err == nil && c.cache != nil {
		// A full-object GET covers every block, trailing partial included.
		c.cache.PutSpan(cacheKey(host, path), gen, 0, out, true)
	}
	return out, err
}

// GetRange fetches length bytes at offset off with replica failover. With
// the block cache enabled it is served block-aligned through the cache;
// like a range-clamping server it may return fewer bytes when the object
// ends inside the request.
func (c *Client) GetRange(ctx context.Context, host, path string, off, length int64) ([]byte, error) {
	if c.cache != nil {
		return c.getRangeCached(ctx, host, path, off, length)
	}
	return c.getRange(ctx, host, path, off, length)
}

// getRangeCached serves GetRange through the block cache. The object size
// is unknown here (-1): short blocks mark the end of the object.
func (c *Client) getRangeCached(ctx context.Context, host, path string, off, length int64) ([]byte, error) {
	if length <= 0 {
		return nil, nil
	}
	p := make([]byte, length)
	n, err := c.cache.ReadThrough(ctx, cacheKey(host, path), -1, p, off, c.cacheFetch(host, path))
	if err != nil {
		// A 416 on a later block after serving some bytes means the request
		// straddled the end of an object whose size is a block multiple —
		// the bytes already gathered ARE the short read a clamping server
		// would have sent.
		var se *StatusError
		if n > 0 && errors.As(err, &se) && se.Code == 416 {
			return p[:n], nil
		}
		return nil, err
	}
	if n == 0 {
		// The whole request sits past the end of a cached short block;
		// match the uncached server answer for an out-of-range request.
		return nil, &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: path}
	}
	return p[:n], nil
}

// getRange fetches one range through the engine (redirects, retry budget
// and replica failover all apply). Servers ignoring Range (status 200) are
// handled by slicing the full body.
func (c *Client) getRange(ctx context.Context, host, path string, off, length int64) ([]byte, error) {
	rangeVal := "bytes=" + strconv.FormatInt(off, 10) + "-" + strconv.FormatInt(off+length-1, 10)
	var out []byte
	err := c.exec(ctx, host, path, specRange, func(h, p string) *wire.Request {
		req := wire.NewRequest("GET", h, p)
		req.Header.Set("Range", rangeVal)
		return req
	}, func(_ Replica, resp *Response) error {
		switch resp.StatusCode {
		case 206:
			b, err := resp.ReadAllAndClose()
			out = b
			return err
		case 200:
			// Range-ignorant server: take the slice out of the full body.
			body, err := resp.ReadAllAndClose()
			if err != nil {
				return err
			}
			if off >= int64(len(body)) {
				return &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: path}
			}
			end := off + length
			if end > int64(len(body)) {
				end = int64(len(body))
			}
			out = body[off:end]
			return nil
		default:
			return statusErr(resp, "GET", path)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// getRangeInto fetches len(dst) bytes at offset off from exactly one
// replica, reading the response body directly into dst — no intermediate
// allocation or copy, which is what keeps the multi-stream download loop
// allocation-free per chunk. Replica selection belongs to the caller
// (readChunkReplicas walks the health-ordered ring), so the engine applies
// redirects and the retry budget but no failover here. Returns the byte
// count delivered; like a clamping server it may be short when the object
// ends inside the request.
func (c *Client) getRangeInto(ctx context.Context, host, path string, off int64, dst []byte) (int, error) {
	rangeVal := "bytes=" + strconv.FormatInt(off, 10) + "-" + strconv.FormatInt(off+int64(len(dst))-1, 10)
	var n int
	err := c.exec(ctx, host, path, specChunk, func(h, p string) *wire.Request {
		req := wire.NewRequest("GET", h, p)
		req.Header.Set("Range", rangeVal)
		return req
	}, func(_ Replica, resp *Response) error {
		n = 0
		switch resp.StatusCode {
		case 206:
			m, err := io.ReadFull(resp.Body, dst)
			if err == io.ErrUnexpectedEOF {
				// The server clamped the range at end of object.
				err = nil
			}
			cerr := resp.Close()
			if err == nil {
				err = cerr
			}
			n = m
			return err
		case 200:
			// Range-ignorant server: skip the prefix, read the slice.
			if _, err := io.CopyN(io.Discard, resp.Body, off); err != nil {
				resp.Close()
				if err == io.EOF {
					return &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: path}
				}
				return err
			}
			m, err := io.ReadFull(resp.Body, dst)
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				err = nil
			}
			cerr := resp.Close()
			if err == nil {
				err = cerr
			}
			if err == nil && m == 0 && len(dst) > 0 {
				// The whole request sits past end of object; match the 416 a
				// range-honouring server would have sent.
				return &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: path}
			}
			n = m
			return err
		default:
			return statusErr(resp, "GET", path)
		}
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Put stores data at host/path, following head-node redirects to the
// disk node designated for the upload. On success the stat cache is primed
// with the known new size (a put-then-stat storm is a memory hit) and the
// uploaded bytes are written through to the block cache: this client just
// defined the object's content, so a put-then-read costs no round trip.
func (c *Client) Put(ctx context.Context, host, path string, data []byte) error {
	var gen uint64
	err := c.exec(ctx, host, path, specPut, func(h, p string) *wire.Request {
		req := wire.NewRequest("PUT", h, p)
		req.SetBodyBytes(data)
		return req
	}, func(_ Replica, resp *Response) error {
		// The writer holds the uploaded bytes, so the primed stat entry can
		// carry their WLCG-style checksum too — but only a live stat cache
		// makes the O(size) hash worth paying.
		checksum := ""
		if c.statc != nil {
			checksum = fmt.Sprintf("adler32:%08x", adler32.Checksum(data))
		}
		g, err := c.finishPut(resp, host, path, int64(len(data)), checksum)
		gen = g
		return err
	})
	if err != nil {
		return err
	}
	if c.cache != nil && len(data) > 0 {
		// gen is finishPut's own invalidation generation, so a concurrent
		// writer's later invalidation — whose content should win — fences
		// this span out.
		c.cache.PutSpan(cacheKey(host, path), gen, 0, data, true)
	}
	return nil
}

// Delete removes the object at host/path.
func (c *Client) Delete(ctx context.Context, host, path string) error {
	err := c.exec(ctx, host, path, specDelete, func(h, p string) *wire.Request {
		return wire.NewRequest("DELETE", h, p)
	}, func(_ Replica, resp *Response) error {
		if resp.StatusCode/100 != 2 {
			return statusErr(resp, "DELETE", path)
		}
		_, err := resp.ReadAllAndClose()
		return err
	})
	if err != nil {
		return err
	}
	c.invalidateCache(host, path)
	return nil
}

// Mkdir creates a WebDAV collection at host/path.
func (c *Client) Mkdir(ctx context.Context, host, path string) error {
	err := c.exec(ctx, host, path, specMkcol, func(h, p string) *wire.Request {
		return wire.NewRequest("MKCOL", h, p)
	}, func(_ Replica, resp *Response) error {
		if resp.StatusCode/100 != 2 {
			return statusErr(resp, "MKCOL", path)
		}
		_, err := resp.ReadAllAndClose()
		return err
	})
	if err != nil {
		return err
	}
	// A fresh collection must not keep answering from a negative entry.
	c.invalidateCache(host, path)
	return nil
}

// Copy asks the server at srcHost to push srcPath to destURL (WebDAV
// third-party copy, the WLCG HTTP-TPC push pattern): the data flows
// directly between the two storage servers, never through this client.
func (c *Client) Copy(ctx context.Context, srcHost, srcPath, destURL string) error {
	err := c.exec(ctx, srcHost, srcPath, specCopy, func(h, p string) *wire.Request {
		req := wire.NewRequest("COPY", h, p)
		req.Header.Set("Destination", destURL)
		return req
	}, func(_ Replica, resp *Response) error {
		if resp.StatusCode/100 != 2 {
			return statusErr(resp, "COPY", srcPath)
		}
		_, err := resp.ReadAllAndClose()
		return err
	})
	if err != nil {
		return err
	}
	// The destination now holds different content: drop this client's
	// cached blocks and stat entries (negative 404s included) for it, so a
	// copy-then-stat or copy-then-read never serves the pre-copy state.
	if dHost, dPath, derr := metalink.SplitURL(destURL); derr == nil && dHost != "" {
		c.invalidateCache(dHost, dPath)
	}
	return nil
}

// Stat describes the resource at host/path using HEAD, falling back to
// PROPFIND for collections (HEAD reports no size/type for them). With
// Options.StatTTL set, results — including 404s, cached as negative
// entries — are served from the metadata cache for the TTL.
func (c *Client) Stat(ctx context.Context, host, path string) (Info, error) {
	if c.statc == nil {
		return c.statUncached(ctx, host, path)
	}
	key := cacheKey(host, path)
	if inf, cerr, ok := c.statc.Get(key); ok {
		return inf, cerr
	}
	inf, err := c.statUncached(ctx, host, path)
	switch {
	case err == nil:
		c.statc.Put(key, inf)
	case errors.Is(err, ErrNotFound):
		c.statc.PutError(key, err)
	}
	return inf, err
}

// statUncached performs the network Stat.
func (c *Client) statUncached(ctx context.Context, host, path string) (Info, error) {
	var inf Info
	tryPropfind := false
	err := c.exec(ctx, host, path, specHead, func(h, p string) *wire.Request {
		return wire.NewRequest("HEAD", h, p)
	}, func(_ Replica, resp *Response) error {
		tryPropfind = false
		if resp.StatusCode != 200 {
			status := resp.Status
			code := resp.StatusCode
			resp.Close()
			if code == 404 {
				return &StatusError{Code: 404, Status: status, Method: "HEAD", Path: path}
			}
			// Collections on some servers refuse HEAD (and some frontends
			// 5xx it while PROPFIND works fine): fall back rather than
			// surface the status. Retryable statuses were already charged
			// to the health scoreboard by the engine; the PROPFIND gets
			// its own retry budget.
			tryPropfind = true
			return nil
		}
		inf = Info{Path: path, Checksum: resp.Header.Get("X-Checksum")}
		if cl := resp.Header.Get("Content-Length"); cl != "" {
			inf.Size, _ = strconv.ParseInt(cl, 10, 64)
		}
		if lm := resp.Header.Get("Last-Modified"); lm != "" {
			if t, err := time.Parse(time.RFC1123, lm); err == nil {
				inf.ModTime = t
			}
		}
		resp.Close()
		return nil
	})
	if err != nil {
		return Info{}, err
	}
	if tryPropfind {
		return c.statPropfind(ctx, host, path)
	}
	return inf, nil
}

func (c *Client) statPropfind(ctx context.Context, host, path string) (Info, error) {
	entries, err := c.propfind(ctx, host, path, "0")
	if err != nil {
		return Info{}, err
	}
	if len(entries) == 0 {
		return Info{}, &StatusError{Code: 404, Status: "404 Not Found", Method: "PROPFIND", Path: path}
	}
	e := entries[0]
	return Info{Path: e.Href, Size: e.Size, Dir: e.Dir, ModTime: e.ModTime}, nil
}

// List returns the entries of the collection at host/path (PROPFIND depth
// 1, without the collection itself). With Options.StatTTL set, every entry
// primes the stat cache — a Walk- or List-then-Stat storm is then absorbed
// without re-hitting the server. Primed entries carry the PROPFIND
// properties (no checksum), the same as a Stat that fell back to PROPFIND;
// a live entry from a direct Stat is never overwritten, so a HEAD-won
// checksum survives its TTL.
func (c *Client) List(ctx context.Context, host, path string) ([]Info, error) {
	entries, err := c.propfind(ctx, host, path, "1")
	if err != nil {
		return nil, err
	}
	infos := make([]Info, 0, len(entries))
	for i, e := range entries {
		inf := Info{Path: e.Href, Size: e.Size, Dir: e.Dir, ModTime: e.ModTime}
		if c.statc != nil {
			c.statc.PutIfAbsent(cacheKey(host, inf.Path), inf)
		}
		if i == 0 && e.Dir {
			continue // the collection itself (primed above, not listed)
		}
		infos = append(infos, inf)
	}
	return infos, nil
}

func (c *Client) propfind(ctx context.Context, host, path, depth string) ([]webdav.Entry, error) {
	var entries []webdav.Entry
	err := c.exec(ctx, host, path, specPropfind, func(h, p string) *wire.Request {
		req := wire.NewRequest("PROPFIND", h, p)
		req.Header.Set("Depth", depth)
		return req
	}, func(_ Replica, resp *Response) error {
		if resp.StatusCode != 207 {
			return statusErr(resp, "PROPFIND", path)
		}
		if c.opts.LegacyPropfindDecode {
			body, err := resp.ReadAllAndClose()
			if err != nil {
				return err
			}
			entries, err = webdav.DecodeMultistatus(body)
			return err
		}
		// Stream the multistatus document straight off the wire body: large
		// directory listings are decoded without materializing the XML.
		es, err := webdav.DecodeMultistatusStream(resp.Body)
		cerr := resp.Close()
		if err != nil {
			return fmt.Errorf("davix: PROPFIND %s: %w", path, err)
		}
		if cerr != nil {
			return cerr
		}
		entries = es
		return nil
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}
