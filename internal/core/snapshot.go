package core

import (
	"sort"

	"godavix/internal/blockcache"
	"godavix/internal/obs"
	"godavix/internal/pool"
)

// Snapshot is the client's three stat surfaces — engine counters, cache
// counters, pool counters — captured in one call. Each component snapshot
// is internally consistent; the three are taken back to back, so counters
// that span components (a cache miss and the request it caused) can differ
// by whatever landed in between. Expo renders the whole thing for the
// exposition endpoints.
type Snapshot struct {
	// Engine is the request-engine view: requests, retries, redirects,
	// failovers, breaker trips, wire bytes, per-op latency.
	Engine Metrics `json:"engine"`
	// Cache is the block-cache and stat-cache view.
	Cache blockcache.Stats `json:"cache"`
	// Pool is the connection-pool view.
	Pool pool.Stats `json:"pool"`
}

// Snapshot captures engine, cache and pool counters in one call. Safe to
// call concurrently with in-flight operations.
func (c *Client) Snapshot() Snapshot {
	return Snapshot{
		Engine: c.Metrics(),
		Cache:  c.CacheStats(),
		Pool:   c.pool.Stats(),
	}
}

// Expo flattens the snapshot into the exposition shape served by /metrics
// and /debug/vars: one counter list spanning engine, cache and pool, plus
// the per-op latency quantiles sorted by op name.
func (s Snapshot) Expo() obs.Snapshot {
	out := obs.Snapshot{Counters: []obs.Counter{
		{Name: "requests_total", Help: "HTTP requests written to a connection (hops, retries and failover attempts each count).", Value: s.Engine.Requests},
		{Name: "retries_total", Help: "Extra attempts at the same target (stale-connection replays plus policy retries).", Value: s.Engine.Retries},
		{Name: "redirects_total", Help: "Followed 3xx hops.", Value: s.Engine.Redirects},
		{Name: "failovers_total", Help: "Switches to an alternate Metalink replica.", Value: s.Engine.Failovers},
		{Name: "breaker_trips_total", Help: "Per-host health-scoreboard demotions.", Value: s.Engine.BreakerTrips},
		{Name: "bytes_up_total", Help: "Wire bytes sent across settled exchanges (headers included).", Value: s.Engine.BytesUp},
		{Name: "bytes_down_total", Help: "Wire bytes received across settled exchanges (headers included).", Value: s.Engine.BytesDown},
		{Name: "kernel_bytes_up_total", Help: "Upload payload bytes moved by the kernel zero-copy path (sendfile/splice).", Value: s.Engine.KernelBytesUp},
		{Name: "kernel_bytes_down_total", Help: "Download payload bytes moved by the kernel zero-copy path (sendfile/splice).", Value: s.Engine.KernelBytesDown},
		{Name: "pooled_bytes_up_total", Help: "Upload payload bytes copied through pooled userspace buffers.", Value: s.Engine.PooledBytesUp},
		{Name: "pooled_bytes_down_total", Help: "Download payload bytes copied through pooled userspace buffers.", Value: s.Engine.PooledBytesDown},
		{Name: "transfers_verified_total", Help: "Transfers whose inline end-to-end digest matched the server value.", Value: s.Engine.TransfersVerified},
		{Name: "checksum_mismatches_total", Help: "Transfers failed by an inline digest mismatch.", Value: s.Engine.ChecksumMismatches},
		{Name: "hedges_issued_total", Help: "Chunk reads that outlived their latency budget and were raced against a standby replica.", Value: s.Engine.HedgesIssued},
		{Name: "hedge_wins_total", Help: "Hedged chunk races the standby replica won.", Value: s.Engine.HedgeWins},
		{Name: "hedge_wasted_bytes_total", Help: "Payload bytes the losing side of a hedged race had delivered when cancelled.", Value: s.Engine.HedgeWastedBytes},
		{Name: "prefetch_issued_total", Help: "Speculative fetch requests put on the wire (cache read-ahead plans and pipelined window fills).", Value: s.Engine.PrefetchIssued},
		{Name: "prefetch_bytes_total", Help: "Bytes requested by speculative fetches.", Value: s.Engine.PrefetchBytes},
		{Name: "prefetch_cancelled_total", Help: "Speculative fetches cancelled mid-flight (pattern jump, retrain, shutdown).", Value: s.Engine.PrefetchCancelled},
		{Name: "resumed_bytes_total", Help: "Bytes proven intact against a checkpoint journal and skipped on resume.", Value: s.Engine.ResumedBytes},
		{Name: "resume_verify_failures_total", Help: "Journaled chunks whose digest no longer matched on resume and were re-fetched.", Value: s.Engine.ResumeVerifyFailures},
		{Name: "cache_hits_total", Help: "Blocks served from the in-memory cache.", Value: s.Cache.Hits},
		{Name: "cache_misses_total", Help: "Blocks a demand read had to fetch.", Value: s.Cache.Misses},
		{Name: "cache_evictions_total", Help: "Blocks dropped to make room at capacity.", Value: s.Cache.Evictions},
		{Name: "cache_prefetched_total", Help: "Blocks fetched by the read-ahead engine.", Value: s.Cache.Prefetched},
		{Name: "cache_singleflight_joins_total", Help: "Reads that joined another reader's in-flight fetch.", Value: s.Cache.SingleFlightJoins},
		{Name: "cache_prefetch_issued_spans_total", Help: "Ranges the cache's speculative fetches carried.", Value: s.Cache.PrefetchIssuedSpans},
		{Name: "cache_prefetch_issued_bytes_total", Help: "Bytes the cache's speculative fetches requested.", Value: s.Cache.PrefetchIssuedBytes},
		{Name: "cache_prefetch_useful_bytes_total", Help: "Prefetched bytes a demand read later consumed.", Value: s.Cache.PrefetchUsefulBytes},
		{Name: "cache_prefetch_wasted_bytes_total", Help: "Prefetched bytes evicted or invalidated untouched.", Value: s.Cache.PrefetchWastedBytes},
		{Name: "cache_prefetch_cancelled_total", Help: "Cache speculation dropped before issue (budget exhaustion).", Value: s.Cache.PrefetchCancelled},
		{Name: "cache_bytes", Help: "Resident cache payload bytes.", Value: s.Cache.BytesCached, Gauge: true},
		{Name: "stat_hits_total", Help: "Metadata-cache hits (negative 404 hits included).", Value: s.Cache.StatHits},
		{Name: "stat_misses_total", Help: "Metadata-cache misses.", Value: s.Cache.StatMisses},
		{Name: "pool_dials_total", Help: "New transport connections established.", Value: s.Pool.Dials},
		{Name: "pool_reuses_total", Help: "Requests served on a recycled connection.", Value: s.Pool.Reuses},
		{Name: "pool_discards_total", Help: "Connections dropped (TTL, max-uses, error, overflow).", Value: s.Pool.Discards},
		{Name: "pool_tls_handshakes_total", Help: "Completed TLS handshakes.", Value: s.Pool.TLSHandshakes},
		{Name: "pool_tls_resumes_total", Help: "TLS handshakes that resumed a cached session.", Value: s.Pool.TLSResumes},
	}}
	ops := make([]string, 0, len(s.Engine.Ops))
	for op := range s.Engine.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := s.Engine.Ops[op]
		out.Quantiles = append(out.Quantiles, obs.Quantile{
			Op: op, Count: st.Count, P50: st.P50, P90: st.P90, P99: st.P99,
		})
	}
	return out
}
