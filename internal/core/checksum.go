package core

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"

	"godavix/internal/digest"
)

// ErrChecksumMismatch reports a failed end-to-end integrity check.
var ErrChecksumMismatch = errors.New("davix: checksum mismatch")

// ErrChecksumUnsupported reports a checksum whose algorithm the client does
// not implement. It surfaces only when Options.VerifyTransfers demands
// verification; opportunistic checks skip unknown algorithms silently.
var ErrChecksumUnsupported = errors.New("davix: unsupported checksum algorithm")

// ChecksumError is the concrete ErrChecksumMismatch: it names the resource,
// the algorithm, and the offending byte span — for a multi-stream transfer
// that is the chunk whose digest disagreed, narrowing a corrupt terabyte to
// one ChunkSize window.
type ChecksumError struct {
	// Path is the remote resource.
	Path string
	// Algo is the digest algorithm that disagreed.
	Algo string
	// Off and Length delimit the offending byte span [Off, Off+Length).
	Off, Length int64
	// Got and Want are the hex digests computed and expected.
	Got, Want string
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("davix: checksum mismatch: %s: bytes [%d,%d): got %s:%s want %s:%s",
		e.Path, e.Off, e.Off+e.Length, e.Algo, e.Got, e.Algo, e.Want)
}

func (e *ChecksumError) Unwrap() error { return ErrChecksumMismatch }

// verifyChecksum compares data against an "algo:hex" checksum string.
// Malformed values (non-hex payload, wrong digest length) always fail — a
// value that cannot be parsed must not pass verification. Unknown algorithms
// fail with ErrChecksumUnsupported when strict (Options.VerifyTransfers) and
// are skipped otherwise (the server may use one we do not implement).
func verifyChecksum(data []byte, want, path string, strict bool) error {
	cs, err := digest.Parse(want)
	if err != nil {
		if errors.Is(err, digest.ErrUnsupported) {
			if strict {
				return fmt.Errorf("%w: %s: %v", ErrChecksumUnsupported, path, err)
			}
			return nil
		}
		return fmt.Errorf("davix: %s: invalid checksum %q: %w", path, want, err)
	}
	h, err := digest.New(cs.Algo)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrChecksumUnsupported, path, err)
	}
	h.Write(data)
	got := h.Sum(nil)
	if !bytes.Equal(got, cs.Sum) {
		return &ChecksumError{
			Path: path, Algo: cs.Algo, Off: 0, Length: int64(len(data)),
			Got: hex.EncodeToString(got), Want: hex.EncodeToString(cs.Sum),
		}
	}
	return nil
}
