package core

import (
	"errors"
	"fmt"
	"hash/adler32"
	"strings"
)

// ErrChecksumMismatch reports a failed end-to-end integrity check.
var ErrChecksumMismatch = errors.New("davix: checksum mismatch")

// verifyChecksum compares data against a "algo:hex" checksum string.
// Unknown algorithms are skipped (the server may use one we do not
// implement); a present adler32 value must match.
func verifyChecksum(data []byte, want, path string) error {
	algo, val, ok := strings.Cut(want, ":")
	if !ok {
		return nil
	}
	if !strings.EqualFold(algo, "adler32") {
		return nil
	}
	got := fmt.Sprintf("%08x", adler32.Checksum(data))
	if !strings.EqualFold(got, val) {
		return fmt.Errorf("%w: %s: got adler32:%s want %s", ErrChecksumMismatch, path, got, want)
	}
	return nil
}
