package core

import (
	"context"
	"errors"
	"fmt"

	"godavix/internal/metalink"
	"godavix/internal/wire"
)

// ErrTooManyRedirects is returned when a redirect chain exceeds
// Options.MaxRedirects.
var ErrTooManyRedirects = errors.New("davix: too many redirects")

// isRedirect reports whether code is a followable 3xx.
func isRedirect(code int) bool {
	switch code {
	case 301, 302, 303, 307, 308:
		return true
	}
	return false
}

// doFollow executes a request built by build against host/path, following
// 3xx redirects up to Options.MaxRedirects. DPM-style storage systems
// answer data operations on the head node with a redirect to the disk
// node actually holding the data; davix follows transparently, keeping
// pooled sessions to both nodes warm.
//
// build is invoked once per hop so requests with bodies can be replayed.
func (c *Client) doFollow(ctx context.Context, host, path string, build func(host, path string) *wire.Request) (*Response, error) {
	resp, _, _, err := c.doFollowAt(ctx, host, path, build)
	return resp, err
}

// doFollowAt is doFollow returning, alongside the response, the host/path
// the request finally landed on after redirects. Multi-chunk uploads use
// the resolved target to send sibling chunks straight to the disk node the
// head node designated, reusing its pooled sessions instead of paying the
// redirect round trip once per chunk.
func (c *Client) doFollowAt(ctx context.Context, host, path string, build func(host, path string) *wire.Request) (*Response, string, string, error) {
	for hop := 0; hop <= c.opts.MaxRedirects; hop++ {
		resp, err := c.Do(ctx, host, build(host, path))
		if err != nil {
			return nil, "", "", err
		}
		if !isRedirect(resp.StatusCode) {
			return resp, host, path, nil
		}
		loc := resp.Header.Get("Location")
		resp.Discard()
		resp.Close()
		if loc == "" {
			return nil, "", "", fmt.Errorf("davix: redirect %d without Location from %s", resp.StatusCode, host)
		}
		h, p, err := metalink.SplitURL(loc)
		if err != nil {
			return nil, "", "", fmt.Errorf("davix: bad redirect Location %q: %w", loc, err)
		}
		host, path = h, p
	}
	return nil, "", "", fmt.Errorf("%w (> %d hops)", ErrTooManyRedirects, c.opts.MaxRedirects)
}
