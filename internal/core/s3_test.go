package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"godavix/internal/httpserv"
	"godavix/internal/s3"
)

func s3Secrets(key string) string {
	if key == "AKID1" {
		return "topsecret"
	}
	return ""
}

func newS3Env(t *testing.T) *testEnv {
	t.Helper()
	e := newEnv(t, Options{
		Strategy: StrategyNone,
		S3:       &s3.Credentials{AccessKey: "AKID1", SecretKey: "topsecret"},
	})
	e.startServer(t, dpm1, httpserv.Options{S3Secrets: s3Secrets})
	return e
}

// TestS3SignedLifecycle: the whole object lifecycle over SigV4-protected
// endpoints, through our custom HTTP client.
func TestS3SignedLifecycle(t *testing.T) {
	e := newS3Env(t)
	ctx := context.Background()

	data := []byte("bucket object")
	if err := e.client.Put(ctx, dpm1, "/bucket/key", data); err != nil {
		t.Fatal(err)
	}
	got, err := e.client.Get(ctx, dpm1, "/bucket/key")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get = %q err=%v", got, err)
	}
	inf, err := e.client.Stat(ctx, dpm1, "/bucket/key")
	if err != nil || inf.Size != int64(len(data)) {
		t.Fatalf("stat = %+v err=%v", inf, err)
	}
	// Ranged + vectored reads are signed per-request too.
	part, err := e.client.GetRange(ctx, dpm1, "/bucket/key", 7, 6)
	if err != nil || string(part) != "object" {
		t.Fatalf("range = %q err=%v", part, err)
	}
	if err := e.client.Delete(ctx, dpm1, "/bucket/key"); err != nil {
		t.Fatal(err)
	}
}

// TestS3UnsignedRejected: a client without credentials gets 403.
func TestS3UnsignedRejected(t *testing.T) {
	e := newS3Env(t)
	e.stores[dpm1].Put("/bucket/key", []byte("x"))

	anon, err := NewClient(Options{Dialer: e.net, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	_, err = anon.Get(context.Background(), dpm1, "/bucket/key")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 403 {
		t.Fatalf("err = %v", err)
	}
}

// TestS3WrongSecretRejected: a signature from the wrong secret fails.
func TestS3WrongSecretRejected(t *testing.T) {
	e := newS3Env(t)
	e.stores[dpm1].Put("/bucket/key", []byte("x"))

	bad, err := NewClient(Options{
		Dialer:   e.net,
		Strategy: StrategyNone,
		S3:       &s3.Credentials{AccessKey: "AKID1", SecretKey: "wrong"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	_, err = bad.Get(context.Background(), dpm1, "/bucket/key")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 403 {
		t.Fatalf("err = %v", err)
	}
}
