package core

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// StatusError reports a non-success HTTP status from the server.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Status is the status line reason.
	Status string
	// Method and Path identify the failed request.
	Method, Path string
	// RetryAfter is the server-advertised backoff from a Retry-After
	// header (503 shedding, 429), zero when none was sent. The retry
	// engine stretches its computed backoff to honour it, capped at
	// RetryPolicy.CapBackoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("davix: %s %s: %s", e.Method, e.Path, e.Status)
}

// ErrNotFound is wrapped by 404 StatusErrors so callers can errors.Is it.
var ErrNotFound = errors.New("davix: not found")

// Is maps 404 onto ErrNotFound.
func (e *StatusError) Is(target error) bool {
	return target == ErrNotFound && e.Code == 404
}

// parseRetryAfter parses a Retry-After header value: either delta-seconds
// ("120") or an HTTP-date (RFC 9110 §10.2.3), measured against now.
// Malformed values and dates in the past report zero.
func parseRetryAfter(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// retryableStatus reports whether a status code indicates the replica is
// unavailable (worth a Metalink failover) rather than a semantic failure
// like 404 or 403 that every replica would repeat.
func retryableStatus(code int) bool {
	switch code {
	case 500, 502, 503, 504:
		return true
	}
	return false
}

// ErrAllReplicasFailed is returned when the failover engine exhausts every
// replica listed in the Metalink.
var ErrAllReplicasFailed = errors.New("davix: all replicas failed")

// ErrTooManyRedirects is returned when a redirect chain exceeds
// Options.MaxRedirects.
var ErrTooManyRedirects = errors.New("davix: too many redirects")

// ErrRedirectLoop is returned when a redirect chain revisits a target it
// already passed through (A→B→A): the cycle would burn the whole
// MaxRedirects budget without ever terminating, so the engine fails fast.
var ErrRedirectLoop = errors.New("davix: redirect loop")

// ErrFileClosed is returned by File operations after Close, and by a
// second Close.
var ErrFileClosed = errors.New("davix: file already closed")

// ErrVectorUnsupported is returned when the server answers a multi-range
// request in a form the client cannot use (should not happen with
// standards-compliant servers; kept for diagnostics).
var ErrVectorUnsupported = errors.New("davix: server cannot satisfy vectored read")
