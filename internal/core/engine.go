// The request-execution engine: every operation the client performs — reads,
// vectored reads, namespace ops, puts, chunked uploads, copies — runs through
// exec(), which composes the resilience layers the paper describes as one
// coherent I/O stack (§2.2 pooled sessions with stale-connection recycling,
// DPM-style redirect following, bounded retry with backoff, §2.4 Metalink
// replica failover) over a per-host health scoreboard and the client-wide
// metrics collector.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"godavix/internal/metalink"
	"godavix/internal/obs"
	"godavix/internal/wire"
)

// reqSpec declares one operation's execution contract: how the engine may
// treat its requests. Operations declare a spec once; exec composes the
// layers the spec is eligible for.
type reqSpec struct {
	// op labels the operation in Metrics.Ops and latency quantiles.
	op string
	// method is the HTTP method, for error reporting.
	method string
	// idempotent marks the operation safe to retry: eligible for
	// RetryPolicy backoff retries after retryable failures. The builder is
	// re-invoked per attempt, so bodies must be replayable (rebuilt from
	// stable bytes or a seekable source) — which is also what lets the
	// stale-recycled-connection replay cover bodied requests.
	idempotent bool
	// follow makes the engine follow 3xx redirects (DPM head node -> disk
	// node), with loop detection and cross-host credential hygiene.
	follow bool
	// failover makes the engine retry the whole operation on the next
	// Metalink replica when a replica is unavailable.
	failover bool
}

// The specs of every engine operation.
var (
	specGet      = reqSpec{op: "GET", method: "GET", idempotent: true, follow: true, failover: true}
	specRange    = reqSpec{op: "GET(range)", method: "GET", idempotent: true, follow: true, failover: true}
	specChunk    = reqSpec{op: "GET(chunk)", method: "GET", idempotent: true, follow: true}
	specVector   = reqSpec{op: "GET(vector)", method: "GET", idempotent: true, follow: true}
	specMetalink = reqSpec{op: "GET(metalink)", method: "GET", idempotent: true}
	specHead     = reqSpec{op: "HEAD", method: "HEAD", idempotent: true, follow: true}
	specPropfind = reqSpec{op: "PROPFIND", method: "PROPFIND", idempotent: true}
	specPut      = reqSpec{op: "PUT", method: "PUT", idempotent: true, follow: true}
	specPutRange = reqSpec{op: "PUT(range)", method: "PUT", idempotent: true, follow: true}
	specDelete   = reqSpec{op: "DELETE", method: "DELETE", idempotent: true}
	// MKCOL is not idempotent (RFC 4918: a second MKCOL answers 405), so a
	// retry after a lost response would misreport a created collection as
	// failed — the engine must surface the first error instead.
	specMkcol = reqSpec{op: "MKCOL", method: "MKCOL"}
	specCopy  = reqSpec{op: "COPY", method: "COPY", idempotent: true}
)

// RetryPolicy bounds the engine's retry-with-backoff layer: how many times
// an idempotent operation is attempted against one replica before the error
// surfaces (or replica failover takes over). The zero value is normalized
// to Attempts=1 — no retries, the seed semantics.
type RetryPolicy struct {
	// Attempts caps tries against one replica per operation (1 = no
	// retry; 0 is normalized to 1).
	Attempts int
	// BaseBackoff is slept before the first retry and doubles each
	// further retry (default 50ms when Attempts > 1).
	BaseBackoff time.Duration
	// CapBackoff bounds the exponential growth (default 2s).
	CapBackoff time.Duration
	// Jitter maps each computed backoff to the duration actually slept.
	// Nil applies half-jitter (uniform in [d/2, d]); tests inject a
	// deterministic function.
	Jitter func(time.Duration) time.Duration
}

// backoff computes the (jittered) sleep before retry number n (1-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.CapBackoff {
			break
		}
	}
	if d > p.CapBackoff {
		d = p.CapBackoff
	}
	if p.Jitter != nil {
		return p.Jitter(d)
	}
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// retryDelay is the sleep before retry number n: the policy's jittered
// exponential backoff, stretched to any Retry-After the server advertised
// with the failure (a shedding gateway's 503 names when to come back).
// The server's ask is honoured up to CapBackoff so a hostile or confused
// header cannot park the client for minutes.
func retryDelay(p RetryPolicy, n int, err error) time.Duration {
	d := p.backoff(n)
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		ask := se.RetryAfter
		if ask > p.CapBackoff {
			ask = p.CapBackoff
		}
		if ask > d {
			d = ask
		}
	}
	return d
}

// exec runs one operation through the full layer stack. build produces the
// request for a given target (invoked once per hop and per attempt, so
// bodies are always fresh); handle consumes — and must close — the
// response, receiving the replica the request finally landed on after
// redirects. Operation latency (retries and failover included) is recorded
// under spec.op.
func (c *Client) exec(ctx context.Context, host, path string, spec reqSpec,
	build func(host, path string) *wire.Request,
	handle func(landed Replica, resp *Response) error) (err error) {

	start := time.Now()
	c.trace.EmitOpStart(spec.op, host, path)
	defer func() {
		d := time.Since(start)
		c.metrics.observe(spec.op, d)
		c.trace.EmitOpDone(spec.op, host, path, d, err)
	}()
	if spec.failover && c.opts.Strategy != StrategyNone {
		return c.withFailover(ctx, host, path, func(r Replica) error {
			return c.execAttempts(ctx, r, spec, build, handle)
		})
	}
	return c.execAttempts(ctx, Replica{Host: host, Path: path}, spec, build, handle)
}

// execAttempts is the retry-budget layer: the redirect-following execution
// is retried with exponential backoff while the RetryPolicy budget lasts
// and the failure looks transient. Only idempotent specs retry; the default
// Attempts=1 policy makes this layer free.
func (c *Client) execAttempts(ctx context.Context, rep Replica, spec reqSpec,
	build func(host, path string) *wire.Request,
	handle func(landed Replica, resp *Response) error) error {

	attempts := c.opts.RetryPolicy.Attempts
	if !spec.idempotent {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		err := c.execHops(ctx, rep, spec, build, handle)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= attempts || !retryableErr(err) || ctx.Err() != nil {
			return lastErr
		}
		c.metrics.retries.Add(1)
		c.trace.EmitRetry(spec.op, rep.Host, attempt, err)
		if err := sleepCtx(ctx, retryDelay(c.opts.RetryPolicy, attempt, err)); err != nil {
			return lastErr
		}
	}
}

// retryableErr reports whether err is worth a same-replica retry: the
// replica-unavailability class (transport errors, retryable 5xx), minus
// failures that are deterministic however often they are replayed.
func retryableErr(err error) bool {
	if errors.Is(err, ErrRedirectLoop) || errors.Is(err, ErrTooManyRedirects) {
		return false
	}
	return replicaUnavailable(err)
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// hopKey identifies one redirect target for loop detection.
type hopKey struct{ host, path string }

// hopTracker enforces the redirect-chain policies shared by exec and the
// streaming-PUT walk: the MaxRedirects hop cap and fail-fast detection of
// revisited (host, path) targets.
type hopTracker struct {
	max  int
	hops int
	seen map[hopKey]bool // allocated on the first redirect
}

// follow validates one redirect from (fromHost, fromPath) to loc and
// returns the next target, failing on malformed Locations, cycles, and
// chains past the hop cap.
func (t *hopTracker) follow(fromHost, fromPath, loc string) (host, path string, err error) {
	h, p, err := metalink.SplitURL(loc)
	if err != nil {
		return "", "", fmt.Errorf("davix: bad redirect Location %q: %w", loc, err)
	}
	if t.seen == nil {
		t.seen = map[hopKey]bool{{fromHost, fromPath}: true}
	}
	if t.seen[hopKey{h, p}] {
		return "", "", fmt.Errorf("%w: %s%s revisits %s%s", ErrRedirectLoop, fromHost, fromPath, h, p)
	}
	t.seen[hopKey{h, p}] = true
	if t.hops++; t.hops > t.max {
		return "", "", fmt.Errorf("%w (> %d hops)", ErrTooManyRedirects, t.max)
	}
	return h, p, nil
}

// execHops is the redirect layer: it executes the request against rep,
// following 3xx hops (when the spec allows) up to Options.MaxRedirects,
// failing fast on redirect cycles, and feeding the per-host health
// scoreboard with every hop's outcome. DPM-style storage answers data
// operations on the head node with a redirect to the disk node holding the
// data; the engine follows transparently, keeping pooled sessions to both
// nodes warm. Bearer/Basic credentials never cross to a host other than
// the one the chain started at (S3 requests are instead re-signed for each
// hop's host by prepare).
func (c *Client) execHops(ctx context.Context, rep Replica, spec reqSpec,
	build func(host, path string) *wire.Request,
	handle func(landed Replica, resp *Response) error) error {

	host, path := rep.Host, rep.Path
	tracker := hopTracker{max: c.opts.MaxRedirects}
	for {
		resp, err := c.doHop(ctx, spec, rep.Host, host, path, build)
		if err != nil {
			c.recordHealth(host, err)
			return err
		}
		if !spec.follow || !isRedirect(resp.StatusCode) {
			if retryableStatus(resp.StatusCode) {
				// The handler will surface this as a StatusError; charge
				// the host now so handlers that swallow it (HEAD→PROPFIND
				// fallback) still leave the failure on the scoreboard.
				c.health.fail(host, &c.metrics)
				return handle(Replica{Host: host, Path: path}, resp)
			}
			// Health is judged only after the handler has consumed the
			// body: a host that sends clean headers and then cuts every
			// transfer mid-body must still accumulate failures (and a
			// half-open probe must not be readmitted on headers alone).
			herr := handle(Replica{Host: host, Path: path}, resp)
			c.recordHealth(host, herr)
			return herr
		}
		// The hop answered as designed — it is healthy even though it
		// bounced us elsewhere.
		c.health.ok(host)
		c.metrics.redirects.Add(1)
		code := resp.StatusCode
		loc := resp.Header.Get("Location")
		c.trace.EmitRedirect(spec.op, host, loc)
		// The request is about to be re-sent in full to the next target;
		// charging this hop's exchange too would double-count its bytes.
		resp.dropWire = true
		resp.Discard()
		resp.Close()
		if loc == "" {
			return fmt.Errorf("davix: redirect %d without Location from %s", code, host)
		}
		host, path, err = tracker.follow(host, path, loc)
		if err != nil {
			return err
		}
	}
}

// doHop performs one hop's round trip on a pooled connection, replaying
// once on a stale recycled connection: the server may close a keep-alive
// session between requests, and only a reused connection justifies the
// transparent retry. The request is rebuilt per attempt, so bodied
// (replayable) requests get the same robustness as bodyless ones. The
// spec's method is stamped authoritatively (the builder cannot drift from
// the declared contract); originHost scopes Bearer/Basic credentials to
// the chain's first host.
func (c *Client) doHop(ctx context.Context, spec reqSpec, originHost, host, path string,
	build func(host, path string) *wire.Request) (*Response, error) {

	var lastErr error
	for attempt := 0; ; attempt++ {
		req := build(host, path)
		req.Method = spec.method
		resp, reused, err := c.doOnce(ctx, host, req, originHost)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt > 0 || !reused || ctx.Err() != nil {
			return nil, lastErr
		}
		// The replay is about to happen; count it only now.
		c.metrics.retries.Add(1)
		c.trace.EmitRetry(spec.op, host, 1, err)
	}
}

// --- Metalink replica failover (paper §2.4) ---

// Replica identifies one location of a resource.
type Replica struct {
	// Host is the server address ("dpm2:80").
	Host string
	// Path is the resource path on that server.
	Path string
}

// replicaUnavailable classifies err as "this replica is unavailable, try
// another" (paper §2.4: offline server, connection refused/reset, 5xx)
// versus a semantic failure every replica would reproduce (404, 403, bad
// request).
func replicaUnavailable(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return retryableStatus(se.Code)
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// Everything else (aborted connections, unexpected EOF, malformed
	// responses from a dying server) counts as replica unavailability —
	// except caller cancellation, which must propagate untouched.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// replicasFor resolves the replica list for host/path: the primary first,
// then the Metalink replicas in priority order (duplicates excluded).
// Metalink resolution failures degrade to primary-only.
func (c *Client) replicasFor(ctx context.Context, host, path string) []Replica {
	reps := []Replica{{Host: host, Path: path}}
	if c.opts.Strategy == StrategyNone {
		return reps
	}
	ml, err := c.GetMetalink(ctx, host, path)
	if err != nil {
		return reps
	}
	return metalinkReplicas(reps, ml)
}

// withFailover runs op against the primary replica and, if it reports
// unavailability, transparently retries against each Metalink replica in
// priority order — the paper's default "fail-over" strategy, which costs
// nothing while the primary is healthy. A primary whose health breaker is
// open is skipped up front (the Metalink replicas are consulted first and
// the primary demoted to last resort), so a known-dead node stops taxing
// every operation with its timeout.
func (c *Client) withFailover(ctx context.Context, host, path string, op func(Replica) error) error {
	primary := Replica{Host: host, Path: path}
	skipPrimary := c.opts.Strategy != StrategyNone && !c.health.acquire(host)
	var firstErr error
	if !skipPrimary {
		err := op(primary)
		// op may have been answered from a cache without any network I/O
		// (a Stat hitting the TTL stat cache): a half-open probe token
		// claimed by acquire must never stay latched, or the host could
		// never be probed again. Idempotent when the op did report.
		c.health.release(host)
		if err == nil || c.opts.Strategy == StrategyNone || !replicaUnavailable(err) {
			return err
		}
		firstErr = err
	}

	ml, mlErr := c.GetMetalink(ctx, host, path)
	if mlErr != nil {
		if firstErr == nil {
			// The breaker skipped the primary but no replica information
			// exists: the primary is still the only candidate.
			return op(primary)
		}
		return firstErr
	}
	tried := map[Replica]bool{primary: true}
	var ring []Replica
	for _, u := range ml.URLs {
		h, p, err := metalink.SplitURL(u.Loc)
		if err != nil {
			continue
		}
		rep := Replica{Host: h, Path: p}
		if tried[rep] {
			continue
		}
		tried[rep] = true
		ring = append(ring, rep)
	}
	if skipPrimary {
		// Last resort: the breaker's opinion must never make an operation
		// impossible.
		ring = append(ring, primary)
	}
	for _, rep := range c.health.order(ring) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		c.metrics.failovers.Add(1)
		c.trace.EmitFailover(host, rep.Host, firstErr)
		err := op(rep)
		if err == nil || !replicaUnavailable(err) {
			return err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return errors.Join(ErrAllReplicasFailed, firstErr)
}

// recordHealth feeds one request outcome to the scoreboard: success and
// semantic failures (the host answered) count as healthy, transport-level
// failures and retryable 5xx count against the host, and caller
// cancellation carries no signal at all.
func (c *Client) recordHealth(host string, err error) {
	switch {
	case err == nil:
		c.health.ok(host)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		c.health.release(host)
	case replicaUnavailable(err):
		c.health.fail(host, &c.metrics)
	default:
		c.health.ok(host)
	}
}

// --- per-host health scoreboard ---

// hostState values for hostHealth.state.
const (
	hostClosed int32 = iota // healthy: requests flow normally
	hostOpen                // demoted: skipped while alternatives exist
)

// hostHealth is one host's breaker: consecutive-failure count, open/closed
// state, and the half-open probe gate. All fields are atomics — the healthy
// path costs two uncontended loads.
type hostHealth struct {
	fails    atomic.Int32
	state    atomic.Int32
	openedAt atomic.Int64 // UnixNano of the last demotion/failed probe
	probing  atomic.Bool  // one in-flight half-open probe at a time
}

// healthBoard tracks per-host availability across the whole client:
// HealthThreshold consecutive failures demote a host (breaker opens,
// BreakerTrips increments); after HealthProbeAfter one probe request is let
// through (half-open) — its success restores the host, its failure re-arms
// the cooldown. Replica rings are ordered healthy-first so one dead disk
// node stops costing every chunk a timeout.
type healthBoard struct {
	threshold  int // <= 0 disables the scoreboard entirely
	probeAfter time.Duration
	// trace receives BreakerTrip events (nil-safe; set by NewClient).
	trace *obs.ClientTrace

	mu    sync.RWMutex
	hosts map[string]*hostHealth
	// open counts currently-demoted hosts, letting order() skip all work
	// (including its allocation) while every host is healthy.
	open atomic.Int32
}

func newHealthBoard(threshold int, probeAfter time.Duration) *healthBoard {
	return &healthBoard{threshold: threshold, probeAfter: probeAfter, hosts: map[string]*hostHealth{}}
}

// get returns host's entry, creating it on first sight.
func (b *healthBoard) get(host string) *hostHealth {
	b.mu.RLock()
	h := b.hosts[host]
	b.mu.RUnlock()
	if h != nil {
		return h
	}
	b.mu.Lock()
	if h = b.hosts[host]; h == nil {
		h = &hostHealth{}
		b.hosts[host] = h
	}
	b.mu.Unlock()
	return h
}

// ok records a successful (or semantically-answered) request to host.
func (b *healthBoard) ok(host string) {
	if b.threshold <= 0 {
		return
	}
	h := b.get(host)
	h.fails.Store(0)
	h.probing.Store(false)
	if h.state.Swap(hostClosed) == hostOpen {
		b.open.Add(-1)
	}
}

// fail records a host-level failure, demoting the host once the
// consecutive-failure threshold is reached.
func (b *healthBoard) fail(host string, m *metrics) {
	if b.threshold <= 0 {
		return
	}
	h := b.get(host)
	now := time.Now().UnixNano()
	if h.state.Load() == hostOpen {
		// A failed half-open probe (or a last-resort attempt): re-arm the
		// cooldown window.
		h.openedAt.Store(now)
		h.probing.Store(false)
		return
	}
	if int(h.fails.Add(1)) >= b.threshold && h.state.CompareAndSwap(hostClosed, hostOpen) {
		h.openedAt.Store(now)
		h.probing.Store(false)
		b.open.Add(1)
		m.breakerTrips.Add(1)
		b.trace.EmitBreakerTrip(host)
	}
}

// release clears the probe gate without recording an outcome (caller
// cancellation: no evidence either way).
func (b *healthBoard) release(host string) {
	if b.threshold <= 0 {
		return
	}
	b.get(host).probing.Store(false)
}

// healthy reports whether host's breaker is closed (ordering decisions).
func (b *healthBoard) healthy(host string) bool {
	if b.threshold <= 0 {
		return true
	}
	return b.get(host).state.Load() == hostClosed
}

// acquire reports whether a request to host should proceed: always for a
// healthy host; for a demoted one only once per cooldown window, as the
// half-open probe. Callers that acquire must issue the request, so the
// outcome (ok/fail/release) re-opens the gate.
func (b *healthBoard) acquire(host string) bool {
	if b.threshold <= 0 {
		return true
	}
	h := b.get(host)
	if h.state.Load() == hostClosed {
		return true
	}
	if time.Now().UnixNano()-h.openedAt.Load() < int64(b.probeAfter) {
		return false
	}
	return h.probing.CompareAndSwap(false, true)
}

// order returns reps with demoted hosts moved after healthy ones (stable
// within each class). While every host is healthy it returns reps
// unchanged, without allocating. Health is sampled once per host up front:
// a breaker flipping mid-sort must not hand the comparator inconsistent
// answers (and the board lookup is paid O(hosts), not O(n log n)).
func (b *healthBoard) order(reps []Replica) []Replica {
	if b.threshold <= 0 || b.open.Load() == 0 || len(reps) < 2 {
		return reps
	}
	healthy := make(map[string]bool, len(reps))
	for _, r := range reps {
		if _, ok := healthy[r.Host]; !ok {
			healthy[r.Host] = b.healthy(r.Host)
		}
	}
	out := make([]Replica, len(reps))
	copy(out, reps)
	sort.SliceStable(out, func(i, j int) bool {
		return healthy[out[i].Host] && !healthy[out[j].Host]
	})
	return out
}

// isRedirect reports whether code is a followable 3xx.
func isRedirect(code int) bool {
	switch code {
	case 301, 302, 303, 307, 308:
		return true
	}
	return false
}
