package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"godavix/internal/bufpool"
	"godavix/internal/metalink"
	"godavix/internal/obs"
)

// readChunkReplicas fetches [off, off+len(dst)) into dst, spreading load by
// starting at replica idx mod len(replicas) and walking the ring on
// unavailability, so one dead replica costs one retry per chunk rather than
// the whole transfer. The ring is health-ordered first and replicas whose
// breaker is open are skipped while alternatives exist — once the
// scoreboard has demoted a dead disk node, later chunks stop paying its
// timeout at all (a half-open probe re-admits it when it recovers).
func (c *Client) readChunkReplicas(ctx context.Context, replicas []Replica, idx int, off int64, dst []byte) (err error) {
	path := replicas[0].Path
	c.trace.EmitChunkStart(obs.Down, path, idx, off, int64(len(dst)))
	defer func() { c.trace.EmitChunkDone(obs.Down, path, idx, off, int64(len(dst)), err) }()
	// tryOne returns (done, err): done means the walk must stop — success,
	// caller cancellation, or a semantic failure every replica reproduces.
	tryOne := func(rep Replica) (bool, error) {
		n, err := c.getRangeInto(ctx, rep.Host, rep.Path, off, dst)
		if err == nil && n == len(dst) {
			return true, nil
		}
		if err == nil {
			err = fmt.Errorf("davix: short chunk from %s: %d < %d", rep.Host, n, len(dst))
		}
		return ctx.Err() != nil || !replicaUnavailable(err), err
	}

	ring := c.health.order(replicas)
	var lastErr error
	var skipped []Replica
	for attempt := 0; attempt < len(ring); attempt++ {
		rep := ring[(idx+attempt)%len(ring)]
		if len(ring) > 1 && !c.health.acquire(rep.Host) {
			skipped = append(skipped, rep)
			continue
		}
		done, err := tryOne(rep)
		if done && err == nil {
			return nil
		}
		lastErr = err
		if done {
			return errors.Join(ErrAllReplicasFailed, lastErr)
		}
	}
	// Last resort: the breaker-skipped replicas, in ring order — the
	// scoreboard must never make a chunk impossible when everything it
	// preferred has failed too.
	for _, rep := range skipped {
		done, err := tryOne(rep)
		if done && err == nil {
			return nil
		}
		lastErr = err
		if done {
			break
		}
	}
	return errors.Join(ErrAllReplicasFailed, lastErr)
}

// metalinkReplicas appends ml's locations to reps in priority order,
// skipping malformed URLs and duplicates of entries already present.
func metalinkReplicas(reps []Replica, ml *metalink.Metalink) []Replica {
	seen := make(map[Replica]bool, len(reps))
	for _, r := range reps {
		seen[r] = true
	}
	for _, u := range ml.URLs {
		h, p, err := metalink.SplitURL(u.Loc)
		if err != nil {
			continue
		}
		r := Replica{Host: h, Path: p}
		if !seen[r] {
			seen[r] = true
			reps = append(reps, r)
		}
	}
	return reps
}

// DownloadMultiStreamTo downloads host/path into w without materializing
// the object: every chunk is fetched into a pooled buffer (reusing the
// allocation-free getRangeInto read path) and written straight to its
// offset, so memory stays O(chunk × streams) regardless of object size.
// Chunks are spread over the Metalink replicas when one is available;
// without one they all stream from the primary, still in parallel over
// MaxStreams pooled connections. Chunks complete out of order, so w's
// WriteAt must tolerate concurrent disjoint writes (os.File does). Returns
// the object size written.
func (c *Client) DownloadMultiStreamTo(ctx context.Context, host, path string, w io.WriterAt) (int64, error) {
	replicas := []Replica{{Host: host, Path: path}}
	size := int64(-1)
	if c.opts.Strategy != StrategyNone {
		if ml, err := c.GetMetalink(ctx, host, path); err == nil {
			replicas = metalinkReplicas(replicas, ml)
			size = ml.Size
		}
	}
	if size < 0 {
		var inf Info
		var err error
		for _, r := range c.health.order(replicas) {
			if inf, err = c.Stat(ctx, r.Host, r.Path); err == nil {
				break
			}
		}
		if err != nil {
			return 0, fmt.Errorf("davix: cannot determine size: %w", err)
		}
		if inf.Dir {
			return 0, fmt.Errorf("davix: download %s: is a collection", path)
		}
		size = inf.Size
	}
	if size == 0 {
		return 0, nil
	}

	err := c.forEachChunk(ctx, 0, size, c.opts.MaxStreams, func(cctx context.Context, idx int, off, ln int64) error {
		buf := bufpool.Get(int(ln))
		defer bufpool.Put(buf)
		if err := c.readChunkReplicas(cctx, replicas, idx, off, buf); err != nil {
			return err
		}
		_, err := w.WriteAt(buf, off)
		return err
	})
	if err != nil {
		return 0, err
	}
	return size, nil
}

// CopyStream copies srcHost/srcPath to destURL through this client: the
// pull-mode third-party copy that complements the push-mode Copy. Ranged
// GETs from the source (with Metalink replica failover) are pipelined into
// Content-Range PUTs at the destination through pooled buffers, with the
// in-flight window bounded by Options.UploadParallelism — the object is
// never materialized in client memory. The first chunk probes the
// destination: it resolves the head-node redirect once for every sibling
// and detects ranged-PUT support. Destinations that reject ranged PUTs
// (and UploadParallelism=1) instead stream the chunks sequentially through
// one ordinary PUT — still O(chunk) memory.
func (c *Client) CopyStream(ctx context.Context, srcHost, srcPath, destURL string) error {
	dHost, dPath, err := metalink.SplitURL(destURL)
	if err != nil {
		return fmt.Errorf("davix: bad destination URL %q: %w", destURL, err)
	}
	if dHost == "" {
		return errors.New("davix: empty host in destination URL")
	}

	var inf Info
	err = c.withFailover(ctx, srcHost, srcPath, func(r Replica) error {
		var err error
		inf, err = c.Stat(ctx, r.Host, r.Path)
		return err
	})
	if err != nil {
		return err
	}
	if inf.Dir {
		return fmt.Errorf("davix: copy %s: is a collection", srcPath)
	}
	size := inf.Size
	if size == 0 {
		return c.Put(ctx, dHost, dPath, nil)
	}
	replicas := c.replicasFor(ctx, srcHost, srcPath)

	cs := c.opts.ChunkSize
	nChunks := int((size + cs - 1) / cs)
	par := c.uploadParallelism(nChunks)
	if par <= 1 || nChunks <= 1 {
		return c.copyStreamPipe(ctx, replicas, dHost, dPath, size)
	}

	// The source Stat's checksum (when its server reported one) is the
	// ground truth the destination must match if commit verification runs.
	want := inf.Checksum
	return c.multiStreamPut(ctx, dHost, dPath, size, par,
		func(cctx context.Context, idx int, off int64, buf []byte) error {
			return c.readChunkReplicas(cctx, replicas, idx, off, buf)
		},
		func() error { return c.copyStreamPipe(ctx, replicas, dHost, dPath, size) },
		func() string { return want })
}

// copyStreamPipe pulls the source sequentially, chunk by pooled chunk,
// into a pipe feeding one streaming PUT at the destination — the serial
// mode of the pull copy and the fallback for destinations without ranged
// PUT. Memory stays O(chunk); the object is never assembled.
func (c *Client) copyStreamPipe(ctx context.Context, replicas []Replica, dHost, dPath string, size int64) error {
	pr, pw := io.Pipe()
	go func() {
		cs := c.opts.ChunkSize
		var err error
		for off := int64(0); off < size; off += cs {
			ln := min(cs, size-off)
			buf := bufpool.Get(int(ln))
			if err = c.readChunkReplicas(ctx, replicas, int(off/cs), off, buf); err == nil {
				_, err = pw.Write(buf)
			}
			bufpool.Put(buf)
			if err != nil {
				break
			}
		}
		pw.CloseWithError(err)
	}()
	err := c.PutReader(ctx, dHost, dPath, pr, size)
	// Unblock the producer if the PUT failed before draining the pipe.
	pr.CloseWithError(errors.New("davix: copy aborted"))
	return err
}
