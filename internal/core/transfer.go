package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"godavix/internal/bufpool"
	"godavix/internal/digest"
	"godavix/internal/metalink"
	"godavix/internal/obs"
	"godavix/internal/wire"
)

// readChunkReplicas fetches [off, off+len(dst)) into dst, spreading load by
// starting at replica idx mod len(replicas) and walking the ring on
// unavailability, so one dead replica costs one retry per chunk rather than
// the whole transfer. The ring is health-ordered first and replicas whose
// breaker is open are skipped while alternatives exist — once the
// scoreboard has demoted a dead disk node, later chunks stop paying its
// timeout at all (a half-open probe re-admits it when it recovers).
func (c *Client) readChunkReplicas(ctx context.Context, replicas []Replica, idx int, off int64, dst []byte) (err error) {
	path := replicas[0].Path
	c.trace.EmitChunkStart(obs.Down, path, idx, off, int64(len(dst)))
	defer func() { c.trace.EmitChunkDone(obs.Down, path, idx, off, int64(len(dst)), err) }()
	if len(replicas) > 1 {
		if budget, ok := c.hedgeBudget(); ok {
			// The caller's chunk slice doubles as the primary leg's WriterAt;
			// the standby leg stays in its private buffer until it wins.
			ring := c.health.order(replicas)
			w := &chunkBuf{base: off, buf: dst}
			if _, handled, herr := c.scatterChunkHedged(ctx, ring, idx, off, int64(len(dst)), w, "", digest.Adler32, false, false, budget); handled {
				return herr
			}
		}
	}
	return c.walkReplicaRing(ctx, replicas, idx, func(rep Replica) (bool, error) {
		n, err := c.getRangeInto(ctx, rep.Host, rep.Path, off, dst)
		if err == nil && n == len(dst) {
			return true, nil
		}
		if err == nil {
			err = fmt.Errorf("davix: short chunk from %s: %d < %d", rep.Host, n, len(dst))
		}
		return ctx.Err() != nil || !replicaUnavailable(err), err
	})
}

// walkReplicaRing runs tryOne over the health-ordered replica ring starting
// at idx mod len(replicas). tryOne returns (done, err): done means the walk
// must stop — success, caller cancellation, or a semantic failure every
// replica reproduces.
func (c *Client) walkReplicaRing(ctx context.Context, replicas []Replica, idx int, tryOne func(Replica) (bool, error)) error {
	ring := c.health.order(replicas)
	var lastErr error
	var skipped []Replica
	for attempt := 0; attempt < len(ring); attempt++ {
		rep := ring[(idx+attempt)%len(ring)]
		if len(ring) > 1 && !c.health.acquire(rep.Host) {
			skipped = append(skipped, rep)
			continue
		}
		done, err := tryOne(rep)
		if done && err == nil {
			return nil
		}
		lastErr = err
		if done {
			return errors.Join(ErrAllReplicasFailed, lastErr)
		}
	}
	// Last resort: the breaker-skipped replicas, in ring order — the
	// scoreboard must never make a chunk impossible when everything it
	// preferred has failed too.
	for _, rep := range skipped {
		done, err := tryOne(rep)
		if done && err == nil {
			return nil
		}
		lastErr = err
		if done {
			break
		}
	}
	return errors.Join(ErrAllReplicasFailed, lastErr)
}

// metalinkReplicas appends ml's locations to reps in priority order,
// skipping malformed URLs and duplicates of entries already present.
func metalinkReplicas(reps []Replica, ml *metalink.Metalink) []Replica {
	seen := make(map[Replica]bool, len(reps))
	for _, r := range reps {
		seen[r] = true
	}
	for _, u := range ml.URLs {
		h, p, err := metalink.SplitURL(u.Loc)
		if err != nil {
			continue
		}
		r := Replica{Host: h, Path: p}
		if !seen[r] {
			seen[r] = true
			reps = append(reps, r)
		}
	}
	return reps
}

// scatterResult reports one streamed chunk fetch.
type scatterResult struct {
	n        int64  // payload bytes delivered
	sum      uint32 // chunk digest under the transfer algorithm
	summed   bool   // sum is valid (verification was on)
	verified bool   // the server sent a per-chunk Digest and it matched
}

// scatterChunkReplicas streams chunk idx covering [off, off+ln) straight
// into dst, walking the replica ring exactly like readChunkReplicas but
// without ever materializing the chunk. fastName names the target file for
// the kernel splice path ("" disables it); algo is the inline digest
// algorithm. sum tees the body through the chunk digest; perChunk
// additionally asks the server to commit to a per-range Digest and compares
// it inline (the costlier mode — the server must hash the range before its
// first body byte).
func (c *Client) scatterChunkReplicas(ctx context.Context, replicas []Replica, idx int, off, ln int64, dst io.WriterAt, fastName, algo string, sum, perChunk bool) (res scatterResult, err error) {
	path := replicas[0].Path
	c.trace.EmitChunkStart(obs.Down, path, idx, off, ln)
	defer func() { c.trace.EmitChunkDone(obs.Down, path, idx, off, ln, err) }()
	if len(replicas) > 1 {
		if budget, ok := c.hedgeBudget(); ok {
			ring := c.health.order(replicas)
			if r, handled, herr := c.scatterChunkHedged(ctx, ring, idx, off, ln, dst, fastName, algo, sum, perChunk, budget); handled {
				return r, herr
			}
			// Not settled by the race (no distinct standby host, or both
			// legs failed transiently): the serial walk below still owns
			// the chunk.
		}
	}
	err = c.walkReplicaRing(ctx, replicas, idx, func(rep Replica) (bool, error) {
		r, err := c.getRangeScatter(ctx, rep.Host, rep.Path, path, off, ln, dst, fastName, algo, sum, perChunk)
		if err == nil && r.n == ln {
			res = r
			return true, nil
		}
		if err == nil {
			err = fmt.Errorf("davix: short chunk from %s: %d < %d", rep.Host, r.n, ln)
		}
		return ctx.Err() != nil || !replicaUnavailable(err), err
	})
	return res, err
}

// getRangeScatter fetches [off, off+ln) from exactly one replica, streaming
// the body into dst at its object offset — the chunk never exists whole in
// client memory. objPath labels the transfer for byte-path accounting.
// Replica selection belongs to the caller; the engine applies redirects and
// the retry budget but no failover here.
func (c *Client) getRangeScatter(ctx context.Context, host, path, objPath string, off, ln int64, dst io.WriterAt, fastName, algo string, sum, perChunk bool) (scatterResult, error) {
	rangeVal := "bytes=" + strconv.FormatInt(off, 10) + "-" + strconv.FormatInt(off+ln-1, 10)
	var res scatterResult
	err := c.exec(ctx, host, path, specChunk, func(h, p string) *wire.Request {
		req := wire.NewRequest("GET", h, p)
		req.Header.Set("Range", rangeVal)
		if perChunk {
			req.Header.Set("Want-Digest", algo)
		}
		return req
	}, func(_ Replica, resp *Response) error {
		res = scatterResult{}
		skip := int64(0)
		switch resp.StatusCode {
		case 206:
		case 200:
			// Range-ignorant server: the body is the whole object; skip
			// the prefix and stream just our slice.
			skip = off
		default:
			return statusErr(resp, "GET", path)
		}
		return c.scatterBody(ctx, resp, skip, off, ln, dst, fastName, objPath, algo, sum, &res)
	})
	if err != nil {
		// res may still carry the partial byte count of the failed last
		// attempt — a cancelled hedge leg reports its wasted bytes this way.
		return scatterResult{n: res.n}, err
	}
	return res, nil
}

// scatterBody drains resp's payload slice into dst at offset off. Three
// shapes, fastest first:
//
//   - kernel: dst is a real file (fastName), nothing needs the bytes in
//     userspace (no digest), and the connection bottoms out in a socket —
//     Response.WriteBodyTo hands the raw conn to os.File.ReadFrom and the
//     runtime's splice moves the payload entirely inside the kernel.
//   - pooled: a 64 KiB pooled buffer streams body → dst.WriteAt at an
//     advancing offset, optionally teeing each read into the chunk digest.
//   - prefix-skip (skip > 0): a range-ignorant server sent the whole
//     object; the prefix is discarded, then the pooled path runs.
//
// Either way the chunk is never materialized and res reports exactly which
// bytes moved how (Snapshot counters + TransferPath trace event).
//
// Connection I/O is deadline-bounded, not ctx-bounded, so a cancelled
// sibling (first-error fan-out cancel, a hedged race's loser) would
// otherwise block until the request deadline: armAbort makes ctx
// cancellation slam the connection deadline so a blocked body read returns
// promptly. The slammed connection is poisoned and must be discarded, so
// every exit closes the response through closeResp.
func (c *Client) scatterBody(ctx context.Context, resp *Response, skip, off, ln int64, dst io.WriterAt, fastName, objPath, algo string, sum bool, res *scatterResult) error {
	closeResp := armAbort(ctx, resp)
	if skip > 0 {
		if _, err := io.CopyN(io.Discard, resp.Body, skip); err != nil {
			closeResp()
			if err == io.EOF {
				return &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: objPath}
			}
			return err
		}
	}
	var h hash.Hash
	if sum {
		h, _ = digest.New(algo)
	}

	// Kernel fast path: only for range-honouring responses (skip == 0 —
	// after a prefix skip the bufio layer is mid-object anyway) with no
	// digest to feed.
	if fastName != "" && h == nil && skip == 0 && kernelEligible(resp.conn.NetConn()) {
		if f, ferr := os.OpenFile(fastName, os.O_WRONLY, 0); ferr == nil {
			cc := resp.conn.NetConn().(*countingConn)
			_, err := f.Seek(off, io.SeekStart)
			var n, direct int64
			if err == nil {
				n, direct, err = resp.WriteBodyTo(f, cc.Unwrap())
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			// The direct bytes bypassed the counting Read; the buffered
			// prefix was already counted when bufio filled.
			cc.addPendDown(direct)
			c.recordBytePath(obs.Down, objPath, obs.PathKernel, direct)
			c.recordBytePath(obs.Down, objPath, obs.PathPooled, n-direct)
			cerr := closeResp()
			if err == nil {
				err = cerr
			}
			res.n = n
			return err
		}
		// Re-open failed (unlinked temp file, exotic fd): pooled path below.
	}

	buf := bufpool.Get(64 << 10)
	defer bufpool.Put(buf)
	pos := off
	var err error
	for pos < off+ln {
		b := buf
		if rem := off + ln - pos; rem < int64(len(b)) {
			b = b[:rem]
		}
		n, rerr := resp.Body.Read(b)
		if n > 0 {
			if _, werr := dst.WriteAt(b[:n], pos); werr != nil {
				closeResp()
				return werr
			}
			if h != nil {
				h.Write(b[:n])
			}
			pos += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			err = rerr
			break
		}
	}
	served := pos - off
	res.n = served
	c.recordBytePath(obs.Down, objPath, obs.PathPooled, served)
	cerr := closeResp()
	if err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if served == 0 && ln > 0 && skip > 0 {
		// The whole request sits past end of object; match the 416 a
		// range-honouring server would have sent.
		return &StatusError{Code: 416, Status: "416 Requested Range Not Satisfiable", Method: "GET", Path: objPath}
	}
	if h != nil {
		sum := h.Sum(nil)
		res.sum = binary.BigEndian.Uint32(sum)
		res.summed = true
		// A range-honouring server that answered Want-Digest committed to
		// the payload digest of this very response — compare at zero cost.
		if skip == 0 {
			if want, ok := digest.FromDigestHeader(resp.Header.Get("Digest"), algo); ok {
				if !bytes.Equal(sum, want.Sum) {
					c.metrics.checksumMismatches.Add(1)
					return &ChecksumError{
						Path: objPath, Algo: algo, Off: off, Length: served,
						Got: hex.EncodeToString(sum), Want: hex.EncodeToString(want.Sum),
					}
				}
				res.verified = true
			}
		}
	}
	return nil
}

// armAbort couples ctx cancellation to resp's connection: pool I/O is
// deadline-bounded, not ctx-bounded, so without this a reader blocked in
// resp.Body.Read would survive cancellation until the request deadline.
// When ctx is cancelled the hook slams the connection deadline into the
// past, failing the blocked read immediately. The returned closeResp must
// replace every resp.Close() on the caller's paths: it disarms the hook
// first and, when the hook already fired (or may be firing), marks the
// response non-keep-alive so the poisoned connection is discarded instead
// of recycled.
func armAbort(ctx context.Context, resp *Response) (closeResp func() error) {
	stop := context.AfterFunc(ctx, func() {
		resp.conn.NetConn().SetDeadline(time.Unix(1, 0))
	})
	closed := false
	return func() error {
		if closed {
			return nil
		}
		closed = true
		if !stop() {
			resp.KeepAlive = false
		}
		return resp.Close()
	}
}

// chunkSum remembers one streamed chunk's client-side digest so a
// whole-object mismatch can be localized afterwards.
type chunkSum struct {
	off, ln int64
	sum     uint32
}

// chunkServerDigest asks one replica for the digest of [off, off+ln)
// without re-reading the payload: a HEAD with Range and Want-Digest. ok is
// false when the server would not commit to a range digest.
func (c *Client) chunkServerDigest(ctx context.Context, host, path, algo string, off, ln int64) (uint32, bool) {
	rangeVal := "bytes=" + strconv.FormatInt(off, 10) + "-" + strconv.FormatInt(off+ln-1, 10)
	var sum uint32
	ok := false
	err := c.exec(ctx, host, path, specHead, func(h, p string) *wire.Request {
		req := wire.NewRequest("HEAD", h, p)
		req.Header.Set("Range", rangeVal)
		req.Header.Set("Want-Digest", algo)
		return req
	}, func(_ Replica, resp *Response) error {
		defer resp.Close()
		if resp.StatusCode != 206 {
			// 200 means the Digest (if any) covers the whole object, not
			// our range; anything else is a refusal. Either way: no commit.
			return nil
		}
		if want, got := digest.FromDigestHeader(resp.Header.Get("Digest"), algo); got {
			sum = binary.BigEndian.Uint32(want.Sum)
			ok = true
		}
		return nil
	})
	return sum, ok && err == nil
}

// localizeMismatch narrows a whole-object checksum mismatch to the first
// offending chunk by comparing the client-side sums accumulated during the
// transfer against per-range digests fetched with HEADs — the payload is
// never re-read. Returns nil when no server on the ring will commit to
// range digests; the caller falls back to the whole-object span.
func (c *Client) localizeMismatch(ctx context.Context, replicas []Replica, path, algo string, sums []chunkSum) *ChecksumError {
	for _, cs := range sums {
		for _, rep := range c.health.order(replicas) {
			want, ok := c.chunkServerDigest(ctx, rep.Host, rep.Path, algo, cs.off, cs.ln)
			if !ok {
				continue
			}
			if want != cs.sum {
				return &ChecksumError{
					Path: path, Algo: algo, Off: cs.off, Length: cs.ln,
					Got:  fmt.Sprintf("%08x", cs.sum),
					Want: fmt.Sprintf("%08x", want),
				}
			}
			break
		}
	}
	return nil
}

// DownloadMultiStreamTo downloads host/path into w without materializing
// the object: every chunk streams straight from its response body to
// w.WriteAt through at most one pooled 64 KiB buffer, so memory stays
// O(64 KiB × streams) regardless of object and chunk size. When w is a
// real *os.File and verification is off, chunks skip userspace entirely —
// the raw socket is handed to the file's ReadFrom and the kernel splice
// path moves the payload (Snapshot's KernelBytesDown counts the wins).
//
// With Options.VerifyTransfers, every chunk is tee'd through an
// incremental digest as it streams; the per-chunk sums combine
// (adler32/crc32 combine math) into the whole-object value, verified
// against the server's checksum at zero extra reads. A mismatch fails the
// download with ErrChecksumMismatch naming the offending byte span.
// Per-chunk Want-Digest — which makes the server hash each range before
// its first body byte — stays off the hot path when the whole-object
// checksum combines and there is a single replica; it is used inline when
// chunks can fail over between replicas (a corrupt replica then costs one
// retry, not the transfer) or when the server checksum cannot combine
// (md5). On a whole-object mismatch the offending chunk is localized
// after the fact with payload-free HEAD+Range+Want-Digest probes.
//
// Chunks are spread over the Metalink replicas when one is available;
// without one they all stream from the primary, still in parallel over
// MaxStreams pooled connections. Chunks complete out of order, so w's
// WriteAt must tolerate concurrent disjoint writes (os.File does). Returns
// the object size written.
func (c *Client) DownloadMultiStreamTo(ctx context.Context, host, path string, w io.WriterAt) (int64, error) {
	replicas := []Replica{{Host: host, Path: path}}
	size := int64(-1)
	want := ""
	if c.opts.Strategy != StrategyNone {
		if ml, err := c.GetMetalink(ctx, host, path); err == nil {
			replicas = metalinkReplicas(replicas, ml)
			size = ml.Size
			want = ml.Checksum
		}
	}
	if size < 0 || (want == "" && c.opts.VerifyTransfers) {
		// Stat fills in whichever is missing — a HEAD also reports the
		// server's checksum, so verification never costs a data read.
		var inf Info
		var err error
		for _, r := range c.health.order(replicas) {
			if inf, err = c.Stat(ctx, r.Host, r.Path); err == nil {
				break
			}
		}
		if err != nil && size < 0 {
			return 0, fmt.Errorf("davix: cannot determine size: %w", err)
		}
		if err == nil {
			if inf.Dir {
				return 0, fmt.Errorf("davix: download %s: is a collection", path)
			}
			if size < 0 {
				size = inf.Size
			}
			if want == "" {
				want = inf.Checksum
			}
		}
	}
	if size == 0 {
		return 0, nil
	}

	verify := c.opts.VerifyTransfers
	algo := digest.Adler32
	var wantSum uint32
	haveWant := false
	if verify && want != "" {
		cs, err := digest.Parse(want)
		if err != nil {
			if errors.Is(err, digest.ErrUnsupported) {
				return 0, fmt.Errorf("%w: %s: %v", ErrChecksumUnsupported, path, err)
			}
			return 0, fmt.Errorf("davix: %s: bad server checksum: %w", path, err)
		}
		if digest.Combinable(cs.Algo) {
			algo = cs.Algo
			wantSum = binary.BigEndian.Uint32(cs.Sum)
			haveWant = true
		}
		// Order-dependent algorithms (md5) cannot combine across parallel
		// chunks; those fall back to per-chunk Want-Digest verification
		// under the default 32-bit algorithm.
	}
	// Per-chunk server digests cost the server a pre-body hash of every
	// range; only pay that when the inline comparison buys something the
	// rollup cannot give: corrupt-replica failover mid-transfer, or any
	// verification at all when the server checksum does not combine.
	perChunk := verify && (!haveWant || len(replicas) > 1)
	var (
		rollupMu       sync.Mutex
		rollup         *digest.Rollup
		sums           []chunkSum
		verifiedChunks int
		nChunks        int
	)
	if verify {
		rollup, _ = digest.NewRollup(algo)
	}

	// Checkpointed resume: journal completed chunks to the sidecar and skip
	// the chunks a previous interrupted run already proved intact on disk.
	// Journaling needs per-chunk digests, so it forces the tee on (and the
	// kernel splice path off) even when verification is otherwise disabled.
	ck, skip := c.downloadCheckpoint(w, path, size, algo, want)
	sumChunks := verify || ck != nil

	// The kernel fast path needs a real file target and no digest tee.
	fastName := ""
	if f, ok := w.(*os.File); ok && !verify && ck == nil && !c.opts.LegacyChunkBuffers {
		fastName = f.Name()
	}

	err := c.forEachChunk(ctx, 0, size, c.opts.MaxStreams, func(cctx context.Context, idx int, off, ln int64) error {
		if sum, ok := skip[off]; ok {
			// Proven intact against its journaled digest — already on disk.
			if rollup != nil {
				rollupMu.Lock()
				rollup.Add(off, ln, sum)
				sums = append(sums, chunkSum{off, ln, sum})
				nChunks++
				rollupMu.Unlock()
			}
			return nil
		}
		if c.opts.LegacyChunkBuffers {
			buf := bufpool.Get(int(ln))
			defer bufpool.Put(buf)
			if err := c.readChunkReplicas(cctx, replicas, idx, off, buf); err != nil {
				return err
			}
			if _, err := w.WriteAt(buf, off); err != nil {
				return err
			}
			c.recordBytePath(obs.Down, path, obs.PathPooled, ln)
			if rollup != nil || ck != nil {
				sum := digest.Sum32(algo, buf)
				if ck != nil {
					ck.append(off, ln, sum)
				}
				if rollup != nil {
					rollupMu.Lock()
					rollup.Add(off, ln, sum)
					sums = append(sums, chunkSum{off, ln, sum})
					nChunks++
					rollupMu.Unlock()
				}
			}
			return nil
		}
		res, err := c.scatterChunkReplicas(cctx, replicas, idx, off, ln, w, fastName, algo, sumChunks, perChunk)
		if err != nil {
			return err
		}
		if ck != nil && res.summed {
			ck.append(off, ln, res.sum)
		}
		if rollup != nil && res.summed {
			rollupMu.Lock()
			rollup.Add(off, ln, res.sum)
			sums = append(sums, chunkSum{off, ln, res.sum})
			nChunks++
			if res.verified {
				verifiedChunks++
			}
			rollupMu.Unlock()
		}
		return nil
	})
	if err != nil {
		if ck != nil {
			ck.close(true)
		}
		return 0, err
	}
	if rollup != nil && haveWant {
		got, rerr := rollup.Sum(size)
		if rerr != nil {
			if ck != nil {
				ck.close(true)
			}
			return 0, rerr
		}
		if got != wantSum {
			c.metrics.checksumMismatches.Add(1)
			if ck != nil {
				// The journal vouched for bytes the rollup just condemned —
				// none of it can be believed; the next attempt starts clean.
				ck.close(false)
			}
			// Narrow the blame to a chunk when a server will commit to
			// per-range digests — HEAD probes only, no payload re-reads.
			if ce := c.localizeMismatch(ctx, replicas, path, algo, sums); ce != nil {
				return 0, ce
			}
			return 0, &ChecksumError{
				Path: path, Algo: algo, Off: 0, Length: size,
				Got:  fmt.Sprintf("%08x", got),
				Want: fmt.Sprintf("%08x", wantSum),
			}
		}
		c.metrics.transfersVerified.Add(1)
	} else if rollup != nil && nChunks > 0 && verifiedChunks == nChunks {
		// No combinable server checksum, but every chunk matched the
		// server's per-range Digest — the transfer is end-to-end verified.
		c.metrics.transfersVerified.Add(1)
	}
	if ck != nil {
		ck.close(false) // complete: the sidecar has served its purpose
	}
	return size, nil
}

// CopyStream copies srcHost/srcPath to destURL through this client: the
// pull-mode third-party copy that complements the push-mode Copy. Ranged
// GETs from the source (with Metalink replica failover) are pipelined into
// Content-Range PUTs at the destination through pooled buffers, with the
// in-flight window bounded by Options.UploadParallelism — the object is
// never materialized in client memory. The first chunk probes the
// destination: it resolves the head-node redirect once for every sibling
// and detects ranged-PUT support. Destinations that reject ranged PUTs
// (and UploadParallelism=1) instead stream the chunks sequentially through
// one ordinary PUT — still O(chunk) memory.
func (c *Client) CopyStream(ctx context.Context, srcHost, srcPath, destURL string) error {
	dHost, dPath, err := metalink.SplitURL(destURL)
	if err != nil {
		return fmt.Errorf("davix: bad destination URL %q: %w", destURL, err)
	}
	if dHost == "" {
		return errors.New("davix: empty host in destination URL")
	}

	var inf Info
	err = c.withFailover(ctx, srcHost, srcPath, func(r Replica) error {
		var err error
		inf, err = c.Stat(ctx, r.Host, r.Path)
		return err
	})
	if err != nil {
		return err
	}
	if inf.Dir {
		return fmt.Errorf("davix: copy %s: is a collection", srcPath)
	}
	size := inf.Size
	if size == 0 {
		return c.Put(ctx, dHost, dPath, nil)
	}
	replicas := c.replicasFor(ctx, srcHost, srcPath)

	cs := c.opts.ChunkSize
	nChunks := int((size + cs - 1) / cs)
	par := c.uploadParallelism(nChunks)
	if par <= 1 || nChunks <= 1 {
		return c.copyStreamPipe(ctx, replicas, dHost, dPath, size)
	}

	// The source Stat's checksum (when its server reported one) is the
	// ground truth the destination must match if commit verification runs.
	want := inf.Checksum
	return c.multiStreamPut(ctx, dHost, dPath, size, par,
		func(cctx context.Context, idx int, off int64, buf []byte) error {
			return c.readChunkReplicas(cctx, replicas, idx, off, buf)
		},
		func() error { return c.copyStreamPipe(ctx, replicas, dHost, dPath, size) },
		func() string { return want },
		nil)
}

// copyStreamPipe pulls the source sequentially, chunk by pooled chunk,
// into a pipe feeding one streaming PUT at the destination — the serial
// mode of the pull copy and the fallback for destinations without ranged
// PUT. Memory stays O(chunk); the object is never assembled.
func (c *Client) copyStreamPipe(ctx context.Context, replicas []Replica, dHost, dPath string, size int64) error {
	pr, pw := io.Pipe()
	go func() {
		cs := c.opts.ChunkSize
		var err error
		for off := int64(0); off < size; off += cs {
			ln := min(cs, size-off)
			buf := bufpool.Get(int(ln))
			if err = c.readChunkReplicas(ctx, replicas, int(off/cs), off, buf); err == nil {
				_, err = pw.Write(buf)
			}
			bufpool.Put(buf)
			if err != nil {
				break
			}
		}
		pw.CloseWithError(err)
	}()
	err := c.PutReader(ctx, dHost, dPath, pr, size)
	// Unblock the producer if the PUT failed before draining the pipe.
	pr.CloseWithError(errors.New("davix: copy aborted"))
	return err
}
