package core

import (
	"context"
	"fmt"
	"io"

	"godavix/internal/rangev"
)

// File is a remote object opened for random-access reads, the engine under
// the paper's TDavixFile. It implements io.Reader, io.ReaderAt, io.Seeker
// and the vectored ReadVec that TTreeCache-style callers use. All reads
// transparently fail over to Metalink replicas under StrategyFailover.
//
// A File is safe for concurrent ReadAt/ReadVec; Read/Seek share a cursor
// and need external synchronization.
type File struct {
	client *Client
	ctx    context.Context
	host   string
	path   string
	size   int64
	off    int64
}

// Open stats host/path (with failover) and returns a File positioned at 0.
func (c *Client) Open(ctx context.Context, host, path string) (*File, error) {
	var inf Info
	err := c.withFailover(ctx, host, path, func(r Replica) error {
		var err error
		inf, err = c.Stat(ctx, r.Host, r.Path)
		return err
	})
	if err != nil {
		return nil, err
	}
	if inf.Dir {
		return nil, fmt.Errorf("davix: open %s: is a collection", path)
	}
	return &File{client: c, ctx: ctx, host: host, path: path, size: inf.Size}, nil
}

// Size returns the object size learned at Open.
func (f *File) Size() int64 { return f.size }

// Path returns the object path.
func (f *File) Path() string { return f.path }

// ReadAt reads len(p) bytes at offset off, failing over across replicas.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off >= f.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > f.size {
		want = f.size - off
	}
	if want == 0 {
		return 0, nil
	}
	var got []byte
	err := f.client.withFailover(f.ctx, f.host, f.path, func(r Replica) error {
		var err error
		got, err = f.client.getRangeOnce(f.ctx, r.Host, r.Path, off, want)
		return err
	})
	if err != nil {
		return 0, err
	}
	n := copy(p, got)
	if int64(n) < int64(len(p)) {
		return n, io.EOF
	}
	return n, nil
}

// ReadVec performs a vectored read of ranges into dsts with failover.
func (f *File) ReadVec(ranges []rangev.Range, dsts [][]byte) error {
	if err := validateVec(ranges, dsts); err != nil {
		return err
	}
	return f.client.withFailover(f.ctx, f.host, f.path, func(r Replica) error {
		return f.client.readVecOnce(f.ctx, r.Host, r.Path, ranges, dsts)
	})
}

// Read implements io.Reader using the shared cursor.
func (f *File) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = f.off + offset
	case io.SeekEnd:
		abs = f.size + offset
	default:
		return 0, fmt.Errorf("davix: seek: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("davix: seek: negative position %d", abs)
	}
	f.off = abs
	return abs, nil
}

// Close releases the file handle. Connections belong to the client pool,
// so Close is currently a bookkeeping no-op kept for API symmetry.
func (f *File) Close() error { return nil }
