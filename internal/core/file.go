package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"godavix/internal/blockcache"
	"godavix/internal/rangev"
)

// File is a remote object opened for random-access reads, the engine under
// the paper's TDavixFile. It implements io.Reader, io.ReaderAt, io.Seeker
// and the vectored ReadVec that TTreeCache-style callers use. All reads
// transparently fail over to Metalink replicas under StrategyFailover, and
// with Options.CacheSize set they are served through the client's shared
// block cache (with read-ahead on sequential scans).
//
// A File is safe for concurrent ReadAt/ReadVec; Read/Seek share a cursor
// and need external synchronization.
type File struct {
	client *Client
	ctx    context.Context
	host   string
	path   string
	size   int64
	off    int64
	closed atomic.Bool
}

// Open stats host/path (with failover) and returns a File positioned at 0.
func (c *Client) Open(ctx context.Context, host, path string) (*File, error) {
	var inf Info
	err := c.withFailover(ctx, host, path, func(r Replica) error {
		var err error
		inf, err = c.Stat(ctx, r.Host, r.Path)
		return err
	})
	if err != nil {
		return nil, err
	}
	if inf.Dir {
		return nil, fmt.Errorf("davix: open %s: is a collection", path)
	}
	return &File{client: c, ctx: ctx, host: host, path: path, size: inf.Size}, nil
}

// Size returns the object size learned at Open.
func (f *File) Size() int64 { return f.size }

// Path returns the object path.
func (f *File) Path() string { return f.path }

// ReadAt reads len(p) bytes at offset off, failing over across replicas.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed.Load() {
		return 0, ErrFileClosed
	}
	if off >= f.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > f.size {
		want = f.size - off
	}
	if want == 0 {
		return 0, nil
	}
	var n int
	if f.client.cache != nil {
		m, err := f.client.cache.ReadThrough(f.ctx, cacheKey(f.host, f.path), f.size,
			p[:want], off, f.client.cacheFetch(f.host, f.path))
		if err != nil {
			return 0, err
		}
		n = m
	} else {
		got, err := f.client.getRange(f.ctx, f.host, f.path, off, want)
		if err != nil {
			return 0, err
		}
		n = copy(p, got)
	}
	if int64(n) < int64(len(p)) {
		return n, io.EOF
	}
	return n, nil
}

// ReadVec performs a vectored read of ranges into dsts with failover,
// serving cache-resident fragments from memory when caching is enabled.
func (f *File) ReadVec(ranges []rangev.Range, dsts [][]byte) error {
	if f.closed.Load() {
		return ErrFileClosed
	}
	return f.client.ReadVec(f.ctx, f.host, f.path, ranges, dsts)
}

// ReadVecAsyncCtx starts a vectored read in the background and returns a
// buffered channel yielding its single completion error. Cancelling ctx
// abandons the fetch mid-flight (the channel then yields the cancellation
// error); the File's own context cancels it too. rootio's window pipeline
// uses this to keep the next analysis windows' transfers in flight under
// the current window's decode/compute — the async overlap the xrootd
// baseline gets from kXR_readv.
func (f *File) ReadVecAsyncCtx(ctx context.Context, ranges []rangev.Range, dsts [][]byte) <-chan error {
	done := make(chan error, 1)
	if f.closed.Load() {
		done <- ErrFileClosed
		return done
	}
	var total int64
	for _, r := range ranges {
		total += r.Len
	}
	f.client.metrics.prefetchIssued.Add(1)
	f.client.metrics.prefetchBytes.Add(total)
	f.client.trace.EmitPrefetchIssued(f.path, len(ranges), total)
	go func() {
		inner, cancel := context.WithCancel(ctx)
		stop := context.AfterFunc(f.ctx, cancel)
		err := f.client.ReadVec(inner, f.host, f.path, ranges, dsts)
		stop()
		cancel()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			f.client.metrics.prefetchCancelled.Add(1)
		}
		f.client.trace.EmitPrefetchSettled(f.path, total, err)
		done <- err
	}()
	return done
}

// PrefetchHint hands byte ranges the caller knows it will read soon to
// the client's learned read-ahead planner, which may fetch them as
// coalesced speculation under the prefetch budget. A no-op without a
// cache — and under the default sequential planner, which takes no
// foreknowledge.
func (f *File) PrefetchHint(ranges []rangev.Range) {
	if f.closed.Load() || f.client.cache == nil {
		return
	}
	spans := make([]blockcache.Span, len(ranges))
	for i, r := range ranges {
		spans[i] = blockcache.Span{Off: r.Off, Len: r.Len}
	}
	f.client.cache.Hint(cacheKey(f.host, f.path), f.size, spans, f.client.cacheFetch(f.host, f.path))
}

// Read implements io.Reader using the shared cursor.
func (f *File) Read(p []byte) (int, error) {
	if f.closed.Load() {
		return 0, ErrFileClosed
	}
	n, err := f.ReadAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed.Load() {
		return 0, ErrFileClosed
	}
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = f.off + offset
	case io.SeekEnd:
		abs = f.size + offset
	default:
		return 0, fmt.Errorf("davix: seek: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("davix: seek: negative position %d", abs)
	}
	f.off = abs
	return abs, nil
}

// Close marks the handle closed — subsequent reads and seeks return
// ErrFileClosed, as does a second Close — and releases the file's blocks
// from the client's shared cache. The cache is keyed by host/path, so
// closing one handle also drops blocks another still-open handle on the
// same object had warmed; callers wanting cross-open reuse should keep the
// File open. Connections belong to the client pool and stay pooled.
func (f *File) Close() error {
	if f.closed.Swap(true) {
		return ErrFileClosed
	}
	if f.client.cache != nil {
		f.client.cache.Invalidate(cacheKey(f.host, f.path))
	}
	return nil
}
