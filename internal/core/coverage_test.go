package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"

	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/netsim"
	"godavix/internal/rangev"
	"godavix/internal/storage"
	"godavix/internal/wire"
)

// TestResponseCloseDrainsSmallRemainder: closing a response with a small
// unread tail drains it and recycles the connection instead of discarding.
func TestResponseCloseDrainsSmallRemainder(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/f", make([]byte, 1024))
	ctx := context.Background()

	resp, err := e.client.Do(ctx, dpm1, wire.NewRequest("GET", dpm1, "/f"))
	if err != nil {
		t.Fatal(err)
	}
	// Read only part of the body, then Close.
	io.ReadFull(resp.Body, make([]byte, 100))
	if err := resp.Close(); err != nil {
		t.Fatal(err)
	}
	// The connection must have been recycled (one dial total).
	if _, err := e.client.Get(ctx, dpm1, "/f"); err != nil {
		t.Fatal(err)
	}
	if e.net.Dials() != 1 {
		t.Fatalf("dials = %d, want 1 (remainder drained and recycled)", e.net.Dials())
	}
}

// rangeIgnorantServer answers every GET with the full object (HTTP/1.1 200,
// no Range support) — the fallback path of GetRange and ReadVec.
func rangeIgnorantServer(t *testing.T, l net.Listener, blob []byte) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 8192)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", len(blob))
					c.Write(blob)
				}
			}(c)
		}
	}()
}

func TestGetRangeAgainstRangeIgnorantServer(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	blob := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(blob)
	l, err := e.net.Listen("old:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rangeIgnorantServer(t, l, blob)
	ctx := context.Background()

	got, err := e.client.GetRange(ctx, "old:80", "/f", 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob[100:150]) {
		t.Fatal("fallback slice mismatch")
	}

	// Past-EOF offset yields a 416-style error.
	if _, err := e.client.GetRange(ctx, "old:80", "/f", 10_000, 10); err == nil {
		t.Fatal("past-EOF range accepted")
	}

	// Vectored read falls back to the full body too.
	ranges := []rangev.Range{{Off: 0, Len: 16}, {Off: 4000, Len: 96}}
	dsts := [][]byte{make([]byte, 16), make([]byte, 96)}
	if err := e.client.ReadVec(ctx, "old:80", "/f", ranges, dsts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dsts[1], blob[4000:4096]) {
		t.Fatal("vectored fallback mismatch")
	}
}

// TestMultiStreamWithoutMetalinkSize: the metalink omits the size; the
// client must stat a replica to learn it.
func TestMultiStreamWithoutMetalinkSize(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80", ChunkSize: 1 << 10, MaxStreams: 2})
	blob := make([]byte, 5<<10)
	rand.New(rand.NewSource(2)).Read(blob)
	for _, r := range []string{"dpm1:80", "dpm2:80"} {
		e.startServer(t, r, httpserv.Options{})
		e.stores[r].Put("/f", blob)
	}
	ml := &metalink.Metalink{
		Name: "f", Size: -1, // unknown
		URLs: []metalink.URL{
			{Loc: "http://dpm1:80/f", Priority: 1},
			{Loc: "http://dpm2:80/f", Priority: 2},
		},
	}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})

	got, err := e.client.DownloadMultiStream(context.Background(), "dpm1:80", "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("content mismatch")
	}
}

func TestMultiStreamEmptyObject(t *testing.T) {
	e := newEnv(t, Options{MetalinkHost: "fed:80"})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/empty", nil)
	ml := &metalink.Metalink{
		Name: "empty", Size: 0,
		URLs: []metalink.URL{{Loc: "http://dpm1:80/empty", Priority: 1}},
	}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})
	got, err := e.client.DownloadMultiStream(context.Background(), dpm1, "/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty download: %d bytes err=%v", len(got), err)
	}
}

// TestConcurrentMixedWorkload stresses the client with parallel gets,
// vectored reads and stats sharing one pool — the paper's "thread-safe
// query dispatch" property.
func TestConcurrentMixedWorkload(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := make([]byte, 32<<10)
	rand.New(rand.NewSource(3)).Read(blob)
	e.stores[dpm1].Put("/f", blob)
	ctx := context.Background()

	errCh := make(chan error, 48)
	for i := 0; i < 16; i++ {
		go func(i int) {
			_, err := e.client.GetRange(ctx, dpm1, "/f", int64(i)*100, 100)
			errCh <- err
		}(i)
		go func() {
			_, err := e.client.Stat(ctx, dpm1, "/f")
			errCh <- err
		}()
		go func(i int) {
			ranges := []rangev.Range{{Off: int64(i) * 512, Len: 64}, {Off: 16 << 10, Len: 128}}
			dsts := [][]byte{make([]byte, 64), make([]byte, 128)}
			errCh <- e.client.ReadVec(ctx, dpm1, "/f", ranges, dsts)
		}(i)
	}
	for i := 0; i < 48; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// TestWANProfileStillCorrect runs a small end-to-end read on the WAN
// profile to ensure shaping never corrupts data.
func TestWANProfileStillCorrect(t *testing.T) {
	n := netsim.New(netsim.WAN())
	st := storage.NewMemStore()
	srv := httpserv.New(st, httpserv.Options{})
	l, err := n.Listen(dpm1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	client, err := NewClient(Options{Dialer: n, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	blob := make([]byte, 256<<10)
	rand.New(rand.NewSource(4)).Read(blob)
	st.Put("/f", blob)
	got, err := client.Get(context.Background(), dpm1, "/f")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("WAN get: %d bytes err=%v", len(got), err)
	}
}
