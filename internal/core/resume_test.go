package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"godavix/internal/digest"
	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/obs"
)

// ckRecBytes encodes one well-formed journal record.
func ckRecBytes(off, ln int64, sum uint32) []byte {
	var rec [ckRecSize]byte
	binary.BigEndian.PutUint64(rec[0:], uint64(off))
	binary.BigEndian.PutUint64(rec[8:], uint64(ln))
	binary.BigEndian.PutUint32(rec[16:], sum)
	binary.BigEndian.PutUint32(rec[20:], crc32.ChecksumIEEE(rec[:20]))
	return rec[:]
}

func TestCheckpointTornRecordTruncated(t *testing.T) {
	name := filepath.Join(t.TempDir(), "f.davix-ck")
	hdr := ckHeader{dir: 'D', size: 4096, algo: digest.Adler32, aux: "sum"}
	raw := hdr.encode()
	raw = append(raw, ckRecBytes(0, 1024, 0x11)...)
	raw = append(raw, ckRecBytes(1024, 1024, 0x22)...)
	// A torn append: half a record, as a crash mid-write would leave it.
	raw = append(raw, ckRecBytes(2048, 1024, 0x33)[:11]...)
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ck, recs, _, err := openCheckpoint(name, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].off != 0 || recs[1].off != 1024 {
		t.Fatalf("recs = %v, want the 2 intact records only", recs)
	}
	// The torn tail is truncated away so the next append never interleaves
	// with garbage.
	ck.append(2048, 1024, 0x33)
	ck.close(true)
	reread, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(hdr.encode()) + 3*ckRecSize; len(reread) != want {
		t.Fatalf("journal length = %d, want %d (torn bytes replaced, not appended past)", len(reread), want)
	}
	ck2, recs2, _, err := openCheckpoint(name, hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.close(false)
	if len(recs2) != 3 || recs2[2].off != 2048 {
		t.Fatalf("recs after repair = %v", recs2)
	}
}

func TestCheckpointRecordCorruptionStopsScan(t *testing.T) {
	name := filepath.Join(t.TempDir(), "f.davix-ck")
	hdr := ckHeader{dir: 'D', size: 4096, algo: digest.Adler32}
	raw := hdr.encode()
	raw = append(raw, ckRecBytes(0, 1024, 0x11)...)
	bad := ckRecBytes(1024, 1024, 0x22)
	bad[5] ^= 0xff // record crc no longer matches
	raw = append(raw, bad...)
	raw = append(raw, ckRecBytes(2048, 1024, 0x33)...)
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ck, recs, _, err := openCheckpoint(name, hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.close(false)
	// Scanning stops at the corrupt record: the record after it is NOT
	// believed either, because appends past a torn region cannot be ordered.
	if len(recs) != 1 || recs[0].off != 0 {
		t.Fatalf("recs = %v, want only the record before the corruption", recs)
	}
}

func TestCheckpointHeaderIdentity(t *testing.T) {
	dir := t.TempDir()

	// A journal from a different transfer identity is reset wholesale.
	name := filepath.Join(dir, "a.davix-ck")
	old := ckHeader{dir: 'U', size: 4096, algo: digest.Adler32, aux: "h /p"}
	raw := append(old.encode(), ckRecBytes(0, 1024, 0x11)...)
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, recs, _, err := openCheckpoint(name, ckHeader{dir: 'D', size: 4096, algo: digest.Adler32, aux: "h /p"})
	if err != nil {
		t.Fatal(err)
	}
	ck.close(false)
	if len(recs) != 0 {
		t.Fatalf("direction flip kept %v", recs)
	}

	// An empty aux on either side is tolerated: a fleet that cannot answer a
	// checksum probe mid-outage must not condemn a valid journal.
	name2 := filepath.Join(dir, "b.davix-ck")
	old2 := ckHeader{dir: 'D', size: 4096, algo: digest.Adler32, aux: "sha1:abc"}
	if err := os.WriteFile(name2, append(old2.encode(), ckRecBytes(0, 1024, 0x11)...), 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, recs2, _, err := openCheckpoint(name2, ckHeader{dir: 'D', size: 4096, algo: digest.Adler32, aux: ""})
	if err != nil {
		t.Fatal(err)
	}
	ck2.close(false)
	if len(recs2) != 1 {
		t.Fatalf("empty-aux probe reset a valid journal: recs = %v", recs2)
	}

	// Two real but different checksums: the object changed, reset.
	name3 := filepath.Join(dir, "c.davix-ck")
	if err := os.WriteFile(name3, append(old2.encode(), ckRecBytes(0, 1024, 0x11)...), 0o644); err != nil {
		t.Fatal(err)
	}
	ck3, recs3, _, err := openCheckpoint(name3, ckHeader{dir: 'D', size: 4096, algo: digest.Adler32, aux: "sha1:other"})
	if err != nil {
		t.Fatal(err)
	}
	ck3.close(false)
	if len(recs3) != 0 {
		t.Fatalf("checksum mismatch kept %v", recs3)
	}
}

// resumeEnv wires two replicas behind a metalink federation with blob at /f.
func resumeEnv(t *testing.T, copts Options, blob []byte) *testEnv {
	t.Helper()
	e := newEnv(t, copts)
	var urls []metalink.URL
	for i, r := range []string{"dpm1:80", "dpm2:80"} {
		e.startServer(t, r, httpserv.Options{})
		e.stores[r].Put("/f", blob)
		urls = append(urls, metalink.URL{Loc: "http://" + r + "/f", Priority: i + 1})
	}
	ml := &metalink.Metalink{Name: "f", Size: int64(len(blob)), URLs: urls}
	e.startServer(t, "fed:80", httpserv.Options{
		Metalinks: func(string) *metalink.Metalink { return ml },
	})
	return e
}

// cancelAfterChunks builds a trace that cancels the transfer after n
// successful chunk completions, summing the successful lengths into total.
func cancelAfterChunks(n int, cancel context.CancelFunc, total *atomic.Int64) *obs.ClientTrace {
	var done atomic.Int64
	return &obs.ClientTrace{
		ChunkDone: func(dir obs.Direction, path string, idx int, off, ln int64, err error) {
			if err != nil {
				return
			}
			total.Add(ln)
			if cancel != nil && done.Add(1) == int64(n) {
				cancel()
			}
		},
	}
}

func TestDownloadResumeRefetchesOnlyMissing(t *testing.T) {
	const size, cs = 64 << 10, 4 << 10
	blob := make([]byte, size)
	rand.New(rand.NewSource(51)).Read(blob)

	// Phase 1: cancel after 4 chunks; the sidecar must survive.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var phase1 atomic.Int64
	e1 := resumeEnv(t, Options{
		MetalinkHost: "fed:80", ChunkSize: cs, MaxStreams: 2, Resume: true,
		Trace: cancelAfterChunks(4, cancel1, &phase1),
	}, blob)
	dst := filepath.Join(t.TempDir(), "f.dat")
	f, err := os.OpenFile(dst, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.client.DownloadMultiStreamTo(ctx1, "dpm1:80", "/f", f); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted download err = %v, want context.Canceled", err)
	}
	f.Close()
	if _, err := os.Stat(dst + CheckpointSuffix); err != nil {
		t.Fatalf("interrupted transfer left no sidecar: %v", err)
	}

	// Phase 2: a fresh client resumes, re-fetching only what phase 1 never
	// journaled.
	var phase2 atomic.Int64
	e2 := resumeEnv(t, Options{
		MetalinkHost: "fed:80", ChunkSize: cs, MaxStreams: 2, Resume: true,
		Trace: cancelAfterChunks(0, nil, &phase2),
	}, blob)
	f2, err := os.OpenFile(dst, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := e2.client.DownloadMultiStreamTo(context.Background(), "dpm1:80", "/f", f2); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("resumed content mismatch (err=%v)", err)
	}
	m := e2.client.Metrics()
	if m.ResumedBytes == 0 {
		t.Fatal("resume verified nothing despite a journaled phase 1")
	}
	// Skipped chunks emit no ChunkDone: refetched + resumed must tile the
	// object exactly.
	if phase2.Load() != size-m.ResumedBytes {
		t.Fatalf("refetched %d bytes, want %d (resumed %d of %d)", phase2.Load(), size-m.ResumedBytes, m.ResumedBytes, size)
	}
	if _, err := os.Stat(dst + CheckpointSuffix); !os.IsNotExist(err) {
		t.Fatalf("completed transfer left sidecar behind (err=%v)", err)
	}
}

func TestResumeRejectsCorruptLocalBytes(t *testing.T) {
	const size, cs = 32 << 10, 4 << 10
	blob := make([]byte, size)
	rand.New(rand.NewSource(53)).Read(blob)

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var phase1 atomic.Int64
	e1 := resumeEnv(t, Options{
		MetalinkHost: "fed:80", ChunkSize: cs, MaxStreams: 1, Resume: true,
		Trace: cancelAfterChunks(3, cancel1, &phase1),
	}, blob)
	dst := filepath.Join(t.TempDir(), "f.dat")
	f, err := os.OpenFile(dst, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.client.DownloadMultiStreamTo(ctx1, "dpm1:80", "/f", f); err == nil {
		t.Fatal("expected interruption")
	}
	f.Close()

	// Flip one journaled byte on disk. The journal still lists the chunk;
	// only the re-hash can notice.
	f3, err := os.OpenFile(dst, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f3.WriteAt([]byte{blob[100] ^ 0xff}, 100); err != nil {
		t.Fatal(err)
	}
	f3.Close()

	e2 := resumeEnv(t, Options{
		MetalinkHost: "fed:80", ChunkSize: cs, MaxStreams: 1, Resume: true,
	}, blob)
	f2, err := os.OpenFile(dst, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := e2.client.DownloadMultiStreamTo(context.Background(), "dpm1:80", "/f", f2); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dst)
	if !bytes.Equal(got, blob) {
		t.Fatal("corrupt local chunk survived resume")
	}
	if m := e2.client.Metrics(); m.ResumeVerifyFailures != 1 {
		t.Fatalf("verify failures = %d, want exactly the poisoned chunk", m.ResumeVerifyFailures)
	}
}

func TestCheckpointAppendFaultKeepsTransferAlive(t *testing.T) {
	const size, cs = 32 << 10, 4 << 10
	blob := make([]byte, size)
	rand.New(rand.NewSource(57)).Read(blob)

	// Every journal append fails. The transfer must neither notice nor leave
	// a sidecar behind.
	ckAppendHook = func(f *os.File, rec []byte) (int, error) {
		return 0, errors.New("injected torn write")
	}
	defer func() { ckAppendHook = nil }()

	e := resumeEnv(t, Options{
		MetalinkHost: "fed:80", ChunkSize: cs, MaxStreams: 2, Resume: true,
	}, blob)
	dst := filepath.Join(t.TempDir(), "f.dat")
	f, err := os.OpenFile(dst, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := e.client.DownloadMultiStreamTo(context.Background(), "dpm1:80", "/f", f); err != nil {
		t.Fatalf("transfer failed because journaling failed: %v", err)
	}
	got, _ := os.ReadFile(dst)
	if !bytes.Equal(got, blob) {
		t.Fatal("content mismatch")
	}
	if _, err := os.Stat(dst + CheckpointSuffix); !os.IsNotExist(err) {
		t.Fatalf("dead journal left a sidecar (err=%v)", err)
	}
}

func TestCancelBeforeProgressLeavesNoSidecar(t *testing.T) {
	blob := make([]byte, 16<<10)
	rand.New(rand.NewSource(59)).Read(blob)
	e := resumeEnv(t, Options{
		MetalinkHost: "fed:80", ChunkSize: 4 << 10, MaxStreams: 2, Resume: true,
	}, blob)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the first chunk can complete
	dst := filepath.Join(t.TempDir(), "f.dat")
	f, err := os.OpenFile(dst, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := e.client.DownloadMultiStreamTo(ctx, "dpm1:80", "/f", f); err == nil {
		t.Fatal("expected cancellation")
	}
	if _, err := os.Stat(dst + CheckpointSuffix); !os.IsNotExist(err) {
		t.Fatalf("zero-progress cancel left a sidecar (err=%v)", err)
	}
}

func TestUploadResumeReattaches(t *testing.T) {
	const size, cs = 64 << 10, 4 << 10
	blob := make([]byte, size)
	rand.New(rand.NewSource(61)).Read(blob)
	src := filepath.Join(t.TempDir(), "src.dat")
	if err := os.WriteFile(src, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 1: cancel after a few fan-out chunks.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var phase1 atomic.Int64
	e1 := newEnv(t, Options{
		ChunkSize: cs, MaxStreams: 2, Resume: true,
		Trace: cancelAfterChunks(4, cancel1, &phase1),
	})
	e1.startServer(t, dpm1, httpserv.Options{})
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.client.UploadMultiStream(ctx1, dpm1, "/up", f, size); err == nil {
		t.Fatal("expected interruption")
	}
	f.Close()
	if _, err := os.Stat(src + CheckpointSuffix); err != nil {
		t.Fatalf("interrupted upload left no sidecar: %v", err)
	}

	// Phase 2: a fresh client on the same fabric resumes against the same
	// server-side partial assembly.
	c2, err := NewClient(Options{Dialer: e1.net, ChunkSize: cs, MaxStreams: 2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	f2, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := c2.UploadMultiStream(context.Background(), dpm1, "/up", f2, size); err != nil {
		t.Fatal(err)
	}
	got, _, err := e1.stores[dpm1].Get("/up")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("uploaded content mismatch (err=%v)", err)
	}
	if m := c2.Metrics(); m.ResumedBytes == 0 {
		t.Fatal("upload resume re-sent everything despite a journal")
	}
	if _, err := os.Stat(src + CheckpointSuffix); !os.IsNotExist(err) {
		t.Fatalf("completed upload left sidecar behind (err=%v)", err)
	}
}
