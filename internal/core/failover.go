package core

import (
	"context"
	"errors"
	"net"

	"godavix/internal/metalink"
)

// Replica identifies one location of a resource.
type Replica struct {
	// Host is the server address ("dpm2:80").
	Host string
	// Path is the resource path on that server.
	Path string
}

// replicaUnavailable classifies err as "this replica is unavailable, try
// another" (paper §2.4: offline server, connection refused/reset, 5xx)
// versus a semantic failure every replica would reproduce (404, 403, bad
// request).
func replicaUnavailable(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return retryableStatus(se.Code)
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// Everything else (aborted connections, unexpected EOF, malformed
	// responses from a dying server) counts as replica unavailability —
	// except caller cancellation, which must propagate untouched.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// replicasFor resolves the replica list for host/path: the primary first,
// then the Metalink replicas in priority order (duplicates excluded).
// Metalink resolution failures degrade to primary-only.
func (c *Client) replicasFor(ctx context.Context, host, path string) []Replica {
	reps := []Replica{{Host: host, Path: path}}
	if c.opts.Strategy == StrategyNone {
		return reps
	}
	ml, err := c.GetMetalink(ctx, host, path)
	if err != nil {
		return reps
	}
	return metalinkReplicas(reps, ml)
}

// withFailover runs op against the primary replica and, if it reports
// unavailability, transparently retries against each Metalink replica in
// priority order — the paper's default "fail-over" strategy, which costs
// nothing when the primary is healthy.
func (c *Client) withFailover(ctx context.Context, host, path string, op func(Replica) error) error {
	primary := Replica{Host: host, Path: path}
	err := op(primary)
	if err == nil || c.opts.Strategy == StrategyNone || !replicaUnavailable(err) {
		return err
	}
	firstErr := err

	ml, mlErr := c.GetMetalink(ctx, host, path)
	if mlErr != nil {
		return firstErr
	}
	tried := map[Replica]bool{primary: true}
	for _, u := range ml.URLs {
		h, p, err := metalink.SplitURL(u.Loc)
		if err != nil {
			continue
		}
		rep := Replica{Host: h, Path: p}
		if tried[rep] {
			continue
		}
		tried[rep] = true
		if ctx.Err() != nil {
			return ctx.Err()
		}
		err = op(rep)
		if err == nil || !replicaUnavailable(err) {
			return err
		}
	}
	return errors.Join(ErrAllReplicasFailed, firstErr)
}
