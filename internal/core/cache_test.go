package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"godavix/internal/blockcache"
	"godavix/internal/httpserv"
	"godavix/internal/rangev"
)

// cachedOptions enables the full caching stack on an otherwise-default
// client. Metalink is off so request counts are exact.
func cachedOptions() Options {
	return Options{
		Strategy:  StrategyNone,
		CacheSize: 1 << 20,
		BlockSize: 1 << 10,
		StatTTL:   time.Minute,
	}
}

func TestCachedReadAtServesRepeatsFromMemory(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := make([]byte, 8<<10)
	rand.New(rand.NewSource(11)).Read(blob)
	e.stores[dpm1].Put("/f", blob)

	f, err := e.client.Open(ctx, dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 2048)
	for i := 0; i < 5; i++ {
		n, err := f.ReadAt(p, 1024)
		if err != nil || n != len(p) || !bytes.Equal(p, blob[1024:3072]) {
			t.Fatalf("read %d: n=%d err=%v", i, n, err)
		}
	}
	if gets := e.srvs[dpm1].RequestsByMethod("GET"); gets != 2 {
		t.Fatalf("server GETs = %d, want 2 (blocks fetched once)", gets)
	}
	st := e.client.CacheStats()
	if st.Misses != 2 || st.Hits != 8 {
		t.Fatalf("stats = %+v, want 2 misses / 8 hits", st)
	}
}

func TestCachedGetRangeAndGetPopulate(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := make([]byte, 3000) // ends mid-block
	rand.New(rand.NewSource(12)).Read(blob)
	e.stores[dpm1].Put("/f", blob)

	got, err := e.client.GetRange(ctx, dpm1, "/f", 100, 500)
	if err != nil || !bytes.Equal(got, blob[100:600]) {
		t.Fatalf("range = %d bytes, err=%v", len(got), err)
	}
	// Same range again: served from the cached block.
	gets := e.srvs[dpm1].RequestsByMethod("GET")
	if _, err := e.client.GetRange(ctx, dpm1, "/f", 100, 500); err != nil {
		t.Fatal(err)
	}
	if now := e.srvs[dpm1].RequestsByMethod("GET"); now != gets {
		t.Fatalf("GETs grew %d -> %d on cached range", gets, now)
	}

	// A range crossing EOF comes back short, like a range-clamping server.
	got, err = e.client.GetRange(ctx, dpm1, "/f", 2500, 5000)
	if err != nil || !bytes.Equal(got, blob[2500:]) {
		t.Fatalf("eof range = %d bytes, err=%v", len(got), err)
	}

	// Same when the object size is an exact block multiple: the walk into
	// the nonexistent next block must not turn the short read into a 416.
	aligned := make([]byte, 4096) // 4 blocks of 1 KiB exactly
	rand.New(rand.NewSource(15)).Read(aligned)
	e.stores[dpm1].Put("/aligned", aligned)
	got, err = e.client.GetRange(ctx, dpm1, "/aligned", 4000, 500)
	if err != nil || !bytes.Equal(got, aligned[4000:]) {
		t.Fatalf("aligned eof range = %d bytes, err=%v", len(got), err)
	}
	// Entirely past EOF still errors like the uncached path.
	if _, err := e.client.GetRange(ctx, dpm1, "/aligned", 8192, 100); err == nil {
		t.Fatal("range fully past EOF succeeded")
	}

	// A full-object Get populates every block: the follow-up range read is
	// free.
	e.stores[dpm1].Put("/g", blob)
	if _, err := e.client.Get(ctx, dpm1, "/g"); err != nil {
		t.Fatal(err)
	}
	gets = e.srvs[dpm1].RequestsByMethod("GET")
	got, err = e.client.GetRange(ctx, dpm1, "/g", 2048, 952)
	if err != nil || !bytes.Equal(got, blob[2048:]) {
		t.Fatalf("range after Get: %d bytes, err=%v", len(got), err)
	}
	if now := e.srvs[dpm1].RequestsByMethod("GET"); now != gets {
		t.Fatalf("GETs grew %d -> %d after populating Get", gets, now)
	}
}

func TestCacheInvalidationOnPutAndDelete(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	v1 := bytes.Repeat([]byte{'1'}, 2048)
	v2 := bytes.Repeat([]byte{'2'}, 2048)
	if err := e.client.Put(ctx, dpm1, "/f", v1); err != nil {
		t.Fatal(err)
	}
	got, err := e.client.GetRange(ctx, dpm1, "/f", 0, 2048)
	if err != nil || !bytes.Equal(got, v1) {
		t.Fatal("warm-up read failed")
	}

	// Put must drop the stale blocks and stat entry.
	if err := e.client.Put(ctx, dpm1, "/f", v2); err != nil {
		t.Fatal(err)
	}
	got, err = e.client.GetRange(ctx, dpm1, "/f", 0, 2048)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("read after Put returned stale data")
	}
	inf, err := e.client.Stat(ctx, dpm1, "/f")
	if err != nil || inf.Size != 2048 {
		t.Fatalf("stat after Put = %+v err=%v", inf, err)
	}

	// Delete must drop blocks and the positive stat entry.
	if err := e.client.Delete(ctx, dpm1, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.client.Stat(ctx, dpm1, "/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after Delete = %v, want ErrNotFound", err)
	}
}

func TestStatCacheTTLAndNegativeEntries(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	e.stores[dpm1].Put("/f", []byte("abc"))

	for i := 0; i < 4; i++ {
		inf, err := e.client.Stat(ctx, dpm1, "/f")
		if err != nil || inf.Size != 3 {
			t.Fatalf("stat %d = %+v err=%v", i, inf, err)
		}
	}
	if heads := e.srvs[dpm1].RequestsByMethod("HEAD"); heads != 1 {
		t.Fatalf("server HEADs = %d, want 1 (stat TTL)", heads)
	}

	// A missing path is cached negatively: repeated stats cost one HEAD.
	for i := 0; i < 4; i++ {
		if _, err := e.client.Stat(ctx, dpm1, "/nope"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("stat missing %d = %v", i, err)
		}
	}
	if heads := e.srvs[dpm1].RequestsByMethod("HEAD"); heads != 2 {
		t.Fatalf("server HEADs = %d, want 2 (negative cache)", heads)
	}
	st := e.client.CacheStats()
	if st.StatHits != 6 || st.StatMisses != 2 {
		t.Fatalf("stat counters = %d/%d, want 6/2", st.StatHits, st.StatMisses)
	}

	// Creating the object invalidates the negative entry immediately.
	if err := e.client.Put(ctx, dpm1, "/nope", []byte("now exists")); err != nil {
		t.Fatal(err)
	}
	inf, err := e.client.Stat(ctx, dpm1, "/nope")
	if err != nil || inf.Size != 10 {
		t.Fatalf("stat after create = %+v err=%v (negative entry stuck)", inf, err)
	}
}

func TestCachedReadVecServesResidentFragments(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := make([]byte, 16<<10)
	rand.New(rand.NewSource(13)).Read(blob)
	e.stores[dpm1].Put("/f", blob)

	ranges := []rangev.Range{{Off: 0, Len: 2048}, {Off: 4096, Len: 1024}, {Off: 8192, Len: 3072}}
	dsts := [][]byte{make([]byte, 2048), make([]byte, 1024), make([]byte, 3072)}
	if err := e.client.ReadVec(ctx, dpm1, "/f", ranges, dsts); err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		if !bytes.Equal(dsts[i], blob[r.Off:r.Off+r.Len]) {
			t.Fatalf("fragment %d corrupt", i)
		}
	}

	// The fragments were block-aligned, so a repeat is fully resident.
	gets := e.srvs[dpm1].RequestsByMethod("GET")
	for i := range dsts {
		dsts[i] = make([]byte, ranges[i].Len)
	}
	if err := e.client.ReadVec(ctx, dpm1, "/f", ranges, dsts); err != nil {
		t.Fatal(err)
	}
	if now := e.srvs[dpm1].RequestsByMethod("GET"); now != gets {
		t.Fatalf("GETs grew %d -> %d on fully cached ReadVec", gets, now)
	}
	for i, r := range ranges {
		if !bytes.Equal(dsts[i], blob[r.Off:r.Off+r.Len]) {
			t.Fatalf("cached fragment %d corrupt", i)
		}
	}
}

func TestCachedConcurrentReadAt(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	blob := make([]byte, 64<<10)
	rand.New(rand.NewSource(14)).Read(blob)
	e.stores[dpm1].Put("/f", blob)

	f, err := e.client.Open(ctx, dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			p := make([]byte, 1500)
			for i := 0; i < 50; i++ {
				off := rng.Int63n(int64(len(blob)) - int64(len(p)))
				n, err := f.ReadAt(p, off)
				if err != nil || n != len(p) {
					t.Errorf("read at %d: n=%d err=%v", off, n, err)
					return
				}
				if !bytes.Equal(p, blob[off:off+int64(len(p))]) {
					t.Errorf("corrupt read at %d", off)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := e.client.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats = %+v, want both hits and misses", st)
	}
	if st.Misses > 64 {
		t.Fatalf("misses = %d for a 64-block file (single-flight broken?)", st.Misses)
	}
}

func TestFileCloseSemantics(t *testing.T) {
	e := newEnv(t, cachedOptions())
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	e.stores[dpm1].Put("/f", []byte("to be closed"))
	f, err := e.client.Open(ctx, dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 4)
	if _, err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("first Close = %v", err)
	}

	if _, err := f.ReadAt(p, 0); !errors.Is(err, ErrFileClosed) {
		t.Fatalf("ReadAt after Close = %v", err)
	}
	if _, err := f.Read(p); !errors.Is(err, ErrFileClosed) {
		t.Fatalf("Read after Close = %v", err)
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, ErrFileClosed) {
		t.Fatalf("Seek after Close = %v", err)
	}
	if err := f.ReadVec([]rangev.Range{{Off: 0, Len: 4}}, [][]byte{p}); !errors.Is(err, ErrFileClosed) {
		t.Fatalf("ReadVec after Close = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrFileClosed) {
		t.Fatalf("second Close = %v", err)
	}

	// Close released the file's cached blocks: a fresh handle refetches.
	gets := e.srvs[dpm1].RequestsByMethod("GET")
	f2, err := e.client.Open(ctx, dpm1, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if now := e.srvs[dpm1].RequestsByMethod("GET"); now != gets+1 {
		t.Fatalf("GETs %d -> %d, want one refetch after Close released blocks", gets, now)
	}
}

func TestZeroCacheOptionsKeepUncachedBehaviour(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	ctx := context.Background()

	e.stores[dpm1].Put("/f", bytes.Repeat([]byte{'x'}, 4096))
	for i := 0; i < 3; i++ {
		if _, err := e.client.GetRange(ctx, dpm1, "/f", 0, 1024); err != nil {
			t.Fatal(err)
		}
	}
	if gets := e.srvs[dpm1].RequestsByMethod("GET"); gets != 3 {
		t.Fatalf("GETs = %d, want 3 (no cache)", gets)
	}
	if st := e.client.CacheStats(); st != (blockcache.Stats{}) {
		t.Fatalf("stats on uncached client = %+v, want zeros", st)
	}
}
