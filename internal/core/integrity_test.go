package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/storage"
)

// TestDownloadVerifiedCatchesCorruption proves the inline-integrity claim
// end to end: the server flips exactly one bit of the payload while its
// X-Checksum and Digest headers keep advertising the pristine content, and
// the verified multi-stream download must fail with ErrChecksumMismatch
// naming a byte span that contains the flipped byte. A non-verifying
// client (below) swallows the same corruption silently — that contrast is
// the whole point of VerifyTransfers.
func TestDownloadVerifiedCatchesCorruption(t *testing.T) {
	const chunk = 4 << 10
	const corruptAt = 9000 // inside chunk 2: [8192, 12288)
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: chunk, MaxStreams: 4, VerifyTransfers: true})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := uploadBlob(48<<10, 47)
	e.stores[dpm1].Put("/f", blob)
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{CorruptXOR: 0x01, CorruptAt: corruptAt})

	w := &bufWriterAt{b: make([]byte, len(blob))}
	_, err := e.client.DownloadMultiStreamTo(context.Background(), dpm1, "/f", w)
	if !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("err = %v, want ErrChecksumMismatch", err)
	}
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want a *ChecksumError inside", err)
	}
	if corruptAt < ce.Off || corruptAt >= ce.Off+ce.Length {
		t.Fatalf("reported span [%d,%d) does not contain the flipped byte at %d",
			ce.Off, ce.Off+ce.Length, corruptAt)
	}
	// The per-range Digest pinpointed the chunk, not just the object.
	if ce.Length >= int64(len(blob)) {
		t.Fatalf("span [%d,%d) is the whole object; want chunk-exact", ce.Off, ce.Off+ce.Length)
	}
	if m := e.client.Metrics(); m.ChecksumMismatches == 0 {
		t.Fatal("ChecksumMismatches not counted")
	}
}

// TestDownloadUnverifiedMissesCorruption is the control: without
// VerifyTransfers the same single-bit flip sails through, which is exactly
// why the verified path exists.
func TestDownloadUnverifiedMissesCorruption(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, MaxStreams: 4})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := uploadBlob(48<<10, 48)
	e.stores[dpm1].Put("/f", blob)
	e.srvs[dpm1].SetFault("/f", httpserv.Fault{CorruptXOR: 0x01, CorruptAt: 9000})

	w := &bufWriterAt{b: make([]byte, len(blob))}
	if _, err := e.client.DownloadMultiStreamTo(context.Background(), dpm1, "/f", w); err != nil {
		t.Fatalf("unverified download failed: %v", err)
	}
	if bytes.Equal(w.b, blob) {
		t.Fatal("corruption fault did not corrupt anything")
	}
}

// TestDownloadVerifiedPasses checks the happy path: chunk digests combine
// into the whole-object adler32, match the server checksum, and the byte
// accounting classifies every payload byte onto the pooled path (netsim
// pipes cannot run the kernel path, and verification forbids it anyway).
func TestDownloadVerifiedPasses(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, MaxStreams: 4, VerifyTransfers: true})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := uploadBlob(48<<10, 49)
	e.stores[dpm1].Put("/f", blob)

	w := &bufWriterAt{b: make([]byte, len(blob))}
	n, err := e.client.DownloadMultiStreamTo(context.Background(), dpm1, "/f", w)
	if err != nil || n != int64(len(blob)) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(w.b, blob) {
		t.Fatal("content mismatch")
	}
	m := e.client.Metrics()
	if m.TransfersVerified != 1 {
		t.Fatalf("TransfersVerified = %d, want 1", m.TransfersVerified)
	}
	if m.ChecksumMismatches != 0 {
		t.Fatalf("ChecksumMismatches = %d, want 0", m.ChecksumMismatches)
	}
	if m.KernelBytesDown != 0 {
		t.Fatalf("KernelBytesDown = %d, want 0 over netsim", m.KernelBytesDown)
	}
	// Every payload byte is classified exactly once — the byte-path
	// counters must reconcile with the object size, not double-count.
	if m.PooledBytesDown != int64(len(blob)) {
		t.Fatalf("PooledBytesDown = %d, want %d", m.PooledBytesDown, len(blob))
	}
}

// TestPutReaderVerified streams an upload through the digest tee: the
// server echoes the Digest of what it stored, the client compares it
// against the sum it accumulated inline, and the stat cache ends up primed
// with the checksum at zero extra reads.
func TestPutReaderVerified(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, VerifyTransfers: true, StatTTL: time.Minute})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := uploadBlob(128<<10, 50)

	err := e.client.PutReader(context.Background(), dpm1, "/up", bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.stores[dpm1].Get("/up")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("stored %d bytes err=%v", len(got), err)
	}
	m := e.client.Metrics()
	if m.TransfersVerified != 1 {
		t.Fatalf("TransfersVerified = %d, want 1", m.TransfersVerified)
	}
	// The digest accumulated inline primed the stat cache: the follow-up
	// Stat is a memory hit that already knows the checksum.
	puts := e.srvs[dpm1].RequestsByMethod("HEAD")
	inf, err := e.client.Stat(context.Background(), dpm1, "/up")
	if err != nil {
		t.Fatal(err)
	}
	if inf.Checksum != storage.Checksum(blob) {
		t.Fatalf("primed checksum %q, want %q", inf.Checksum, storage.Checksum(blob))
	}
	if e.srvs[dpm1].RequestsByMethod("HEAD") != puts {
		t.Fatal("Stat after verified PutReader hit the server")
	}
}

// TestUploadMultiStreamInlineDigest runs the chunked upload with
// verification on: per-chunk sums combine into the whole-object adler32
// with zero re-reads of the source, and the assembled object matches.
func TestUploadMultiStreamInlineDigest(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, ChunkSize: 4 << 10, UploadParallelism: 4, VerifyTransfers: true})
	e.startServer(t, dpm1, httpserv.Options{})
	blob := uploadBlob(40<<10, 51)

	err := e.client.UploadMultiStream(context.Background(), dpm1, "/multi", bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	got, inf, err := e.stores[dpm1].Get("/multi")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("stored %d bytes err=%v", len(got), err)
	}
	if inf.Checksum != storage.Checksum(blob) {
		t.Fatalf("server checksum %q, want %q", inf.Checksum, storage.Checksum(blob))
	}
}
