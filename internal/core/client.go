// Package core implements the davix engine: HTTP request execution over the
// dynamic connection pool (paper §2.2), vectored multi-range reads
// (paper §2.3), Metalink-driven replica failover and multi-stream downloads
// (paper §2.4), and the POSIX-like remote file API the ROOT integration
// (TDavixFile) exposes.
package core

import (
	"context"
	"crypto/tls"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"

	"godavix/internal/blockcache"
	"godavix/internal/metalink"
	"godavix/internal/obs"
	"godavix/internal/pool"
	"godavix/internal/rangev"
	"godavix/internal/s3"
	"godavix/internal/wire"
)

// Strategy selects the §2.4 replica-usage policy.
type Strategy int

const (
	// StrategyFailover retries unavailable resources replica-by-replica in
	// Metalink priority order (the paper's default: resilience at no
	// performance cost).
	StrategyFailover Strategy = iota
	// StrategyMultiStream downloads different chunks from different
	// replicas in parallel (maximizes client bandwidth, loads servers).
	StrategyMultiStream
	// StrategyNone disables Metalink handling entirely.
	StrategyNone
)

// Options configures a Client.
type Options struct {
	// Dialer establishes transport connections (netsim.Network or a real
	// TCP dialer). Required.
	Dialer pool.Dialer

	// Pool tunes the connection pool.
	Pool pool.Options

	// RequestTimeout bounds each individual request round trip (header
	// received); 0 means no timeout beyond ctx.
	RequestTimeout time.Duration

	// CoalesceGap is the data-sieving threshold for vectored reads: holes
	// of at most this many bytes are fetched and discarded to merge
	// neighbouring fragments into one range (default 0: merge only
	// touching fragments).
	CoalesceGap int64

	// MaxRangesPerRequest splits very large vectored reads into several
	// multi-range requests, respecting server header-size limits
	// (default 256).
	MaxRangesPerRequest int

	// VectorParallelism bounds how many of a vectored read's multi-range
	// batches are in flight concurrently, each on its own pooled
	// connection. 0 (the default) opens one connection per batch, capped
	// by Pool.MaxPerHost; 1 restores fully serial dispatch.
	VectorParallelism int

	// LegacyVecScatter switches multipart responses back to the
	// materialize-then-scatter path (every part buffered before copying).
	// Only the vecpar benchmark sets it, to quantify what the streaming
	// scatter saves; it is not exposed in the public API.
	LegacyVecScatter bool

	// WalkParallelism bounds how many PROPFINDs a Walk keeps in flight
	// concurrently across pooled connections. 0 (the default) uses
	// defaultWalkParallelism capped by Pool.MaxPerHost; 1 restores the
	// serial depth-first recursion. Entry delivery order is identical
	// at every setting.
	WalkParallelism int

	// LegacyPropfindDecode switches PROPFIND responses back to the
	// materialize-then-Unmarshal multistatus path. Only the meta
	// benchmark sets it, to quantify what the streaming decoder saves;
	// it is not exposed in the public API.
	LegacyPropfindDecode bool

	// LegacyChunkBuffers switches DownloadMultiStreamTo back to the
	// chunk-materialize path (each chunk fetched whole into a pooled
	// ChunkSize buffer before one WriteAt). Only the zerocopy benchmark
	// sets it, to quantify what the streaming scatter and the kernel
	// fast path save; it is not exposed in the public API.
	LegacyChunkBuffers bool

	// UploadParallelism bounds how many ChunkSize chunks of one
	// UploadMultiStream (or pull-mode CopyStream) are in flight
	// concurrently, each as a Content-Range PUT on its own pooled
	// connection. 0 (the default) uses defaultUploadParallelism capped by
	// Pool.MaxPerHost; 1 restores the single-stream whole-body PUT, which
	// is byte-identical on the wire to Put (the paper-faithful path).
	UploadParallelism int

	// Strategy selects the Metalink policy (default StrategyFailover).
	Strategy Strategy

	// MetalinkHost, when set, is the federation front-end queried for
	// Metalink documents ("fed:80"). When empty the original host itself
	// is asked (?metalink).
	MetalinkHost string

	// MaxStreams bounds parallel per-replica streams in multi-stream mode
	// (default 4).
	MaxStreams int

	// ChunkSize is the multi-stream chunk granularity (default 1 MiB).
	ChunkSize int64

	// UserAgent is sent on every request (default "godavix/1.0").
	UserAgent string

	// MaxRedirects bounds how many 3xx redirects a request follows
	// (default 5). DPM-style storage systems redirect data operations
	// from the head node to disk nodes.
	MaxRedirects int

	// RetryPolicy bounds the engine's retry-with-backoff layer for
	// idempotent operations. The zero value (and any Attempts < 1) is
	// normalized to Attempts=1: no retries, the seed semantics.
	RetryPolicy RetryPolicy

	// HealthThreshold is how many consecutive host-level failures demote
	// a host on the per-host health scoreboard (breaker opens; replica
	// rings then prefer other hosts). 0 uses the default of 3; negative
	// disables the scoreboard.
	HealthThreshold int

	// HealthProbeAfter is how long a demoted host stays skipped before a
	// single half-open probe request is let through (default 2s).
	HealthProbeAfter time.Duration

	// Auth, when non-nil, is attached to every request.
	Auth *Credentials

	// S3, when non-nil, signs every request with AWS Signature V4 —
	// davix's cloud-storage mode (paper §1: S3 REST APIs over HTTP).
	S3 *s3.Credentials

	// VerifyChecksums enables end-to-end integrity checking: full-object
	// GETs are compared against the server's X-Checksum header and
	// multi-stream downloads against the Metalink checksum.
	VerifyChecksums bool

	// VerifyTransfers enables inline end-to-end integrity for streaming
	// transfers: tee'd incremental digests accumulate per chunk during
	// multi-stream uploads and downloads and combine into the whole-object
	// value (adler32/crc32 combine math), verified against the server's
	// Digest/Want-Digest headers or checksum property at zero extra reads.
	// Failures surface as ErrChecksumMismatch naming the offending byte
	// span; known-but-unimplemented server algorithms fail with
	// ErrChecksumUnsupported instead of being skipped. Verification needs
	// to observe every byte in userspace, so it routes transfers onto the
	// pooled-buffer path (the kernel sendfile/splice path reports itself
	// via Snapshot counters when this is off).
	VerifyTransfers bool

	// HedgeDelay tunes hedged chunk reads for multi-replica downloads:
	// when a chunk read outlives this latency budget, the engine races a
	// duplicate request against the next-ranked healthy replica; the first
	// complete result wins and the loser is cancelled. Zero (the default)
	// derives the budget from the engine's live per-op P99 once enough
	// chunk samples exist; a positive value fixes the budget; a negative
	// value disables hedging. Hedging never engages with a single replica.
	HedgeDelay time.Duration

	// Resume enables checkpointed transfers: DownloadMultiStreamTo and
	// UploadMultiStream journal each completed chunk (offset, length,
	// digest) to a sidecar file next to the local *os.File, and an
	// interrupted transfer restarted with the same geometry re-verifies
	// the journaled chunks against their recorded digests, re-fetching
	// only what is missing or no longer matches. The sidecar is removed
	// when the transfer completes (or when nothing was journaled).
	Resume bool

	// TLS, when non-nil, upgrades every pooled connection to a TLS client
	// session with this configuration. A ClientSessionCache shared across
	// all pool shards is installed when the config does not bring its own,
	// so reconnect-heavy profiles resume sessions instead of paying full
	// handshakes (pool.Stats.TLSResumes counts the saves).
	TLS *tls.Config

	// CacheSize enables the shared client-side block cache: the total
	// number of remote-data bytes kept in memory across all files
	// (0 disables caching; every read then hits the network as before).
	CacheSize int64

	// BlockSize is the cache page granularity in bytes (default 64 KiB;
	// meaningful only with CacheSize > 0).
	BlockSize int64

	// ReadAhead is how many blocks past a detected sequential scan the
	// cache prefetches asynchronously through the pool (0 disables;
	// requires CacheSize > 0).
	ReadAhead int

	// PrefetchDepth enables learned prefetch (requires CacheSize > 0 for
	// the planner side): > 0 replaces the cache's sequential read-ahead
	// with the stride/sparse planner keeping that many predicted reads in
	// flight, makes File.PrefetchHint feed layout foreknowledge into it,
	// and sizes the rootio window pipeline riding File.ReadVecAsyncCtx.
	// 0 (the default) keeps the historical behaviour exactly.
	PrefetchDepth int

	// PrefetchBudget bounds the speculative bytes the cache keeps in
	// flight at once, so speculation never starves demand reads. 0 picks
	// the default (16 MiB when PrefetchDepth > 0, unlimited otherwise);
	// negative means explicitly unlimited.
	PrefetchBudget int64

	// StatTTL caches Stat/Open metadata — including negative 404 results —
	// for this duration, absorbing stat storms (0 disables).
	StatTTL time.Duration

	// Trace, when non-nil, installs httptrace-style hooks the engine fires
	// as operations progress: requests, retries, redirects, failovers,
	// breaker trips, pool and cache activity, chunk progress. Hooks run
	// inline on the hot path and may fire concurrently; nil costs nothing.
	Trace *obs.ClientTrace

	// Logger, when non-nil, emits structured slog events for the same
	// trace stream (resilience events at Warn, completed operations at
	// Info, per-request detail at Debug). Composes with Trace: both fire.
	Logger *slog.Logger
}

// Credentials carries request authentication. Exactly one mechanism
// should be set.
type Credentials struct {
	// Bearer is an OAuth-style token ("Authorization: Bearer <t>"), the
	// WLCG token-based auth davix grew to support.
	Bearer string
	// Username/Password select HTTP Basic auth.
	Username, Password string
}

// header renders the Authorization header value.
func (cr *Credentials) header() string {
	if cr.Bearer != "" {
		return "Bearer " + cr.Bearer
	}
	return "Basic " + base64.StdEncoding.EncodeToString([]byte(cr.Username+":"+cr.Password))
}

// withDefaults validates and normalizes the options once, in New, so the
// hot path never sees nonsense values: zero means "use the documented
// default", and negative sizes/counts that have no meaning are normalized
// the same way rather than reaching arithmetic as-is.
func (o Options) withDefaults() Options {
	if o.MaxRangesPerRequest <= 0 {
		o.MaxRangesPerRequest = 256
	}
	if o.MaxRedirects <= 0 {
		o.MaxRedirects = 5
	}
	if o.MaxStreams <= 0 {
		o.MaxStreams = 4
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1 << 20
	}
	if o.UserAgent == "" {
		o.UserAgent = "godavix/1.0"
	}
	// Parallelism knobs: 0 already means "derive from the pool"; negative
	// values have no meaning and collapse to the same derivation.
	if o.VectorParallelism < 0 {
		o.VectorParallelism = 0
	}
	if o.WalkParallelism < 0 {
		o.WalkParallelism = 0
	}
	if o.UploadParallelism < 0 {
		o.UploadParallelism = 0
	}
	if o.CoalesceGap < 0 {
		o.CoalesceGap = 0
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	// Cache knobs: negative disables, like zero.
	if o.CacheSize < 0 {
		o.CacheSize = 0
	}
	if o.BlockSize < 0 {
		o.BlockSize = 0
	}
	if o.ReadAhead < 0 {
		o.ReadAhead = 0
	}
	if o.PrefetchDepth < 0 {
		o.PrefetchDepth = 0
	}
	if o.PrefetchBudget == 0 && o.PrefetchDepth > 0 {
		o.PrefetchBudget = 16 << 20
	}
	if o.PrefetchBudget < 0 {
		o.PrefetchBudget = 0
	}
	if o.StatTTL < 0 {
		o.StatTTL = 0
	}
	// Retry budget: Attempts < 1 means no retries; backoff fields only
	// matter once retries are possible.
	if o.RetryPolicy.Attempts < 1 {
		o.RetryPolicy.Attempts = 1
	}
	if o.RetryPolicy.BaseBackoff <= 0 {
		o.RetryPolicy.BaseBackoff = 50 * time.Millisecond
	}
	if o.RetryPolicy.CapBackoff <= 0 {
		o.RetryPolicy.CapBackoff = 2 * time.Second
	}
	if o.RetryPolicy.CapBackoff < o.RetryPolicy.BaseBackoff {
		o.RetryPolicy.CapBackoff = o.RetryPolicy.BaseBackoff
	}
	// Health scoreboard: 0 = default threshold, negative = disabled
	// (kept negative so NewClient knows to build a disabled board).
	if o.HealthThreshold == 0 {
		o.HealthThreshold = 3
	}
	if o.HealthProbeAfter <= 0 {
		o.HealthProbeAfter = 2 * time.Second
	}
	return o
}

// Client executes HTTP I/O through a shared connection pool. It is safe
// for concurrent use; the pool grows with the level of concurrency, which
// is the paper's dispatch design (Figure 2).
type Client struct {
	pool *pool.Pool
	opts Options

	// metrics collects the client-wide counters behind Metrics().
	metrics metrics
	// trace is the merged Options.Trace + Options.Logger hook set (nil
	// when neither is configured; every emit site is nil-safe).
	trace *obs.ClientTrace
	// health is the per-host scoreboard reordering replica rings.
	health *healthBoard

	// cache is the shared block cache (nil when Options.CacheSize == 0).
	cache *blockcache.Cache
	// statc is the TTL'd metadata cache (nil when Options.StatTTL == 0).
	statc *blockcache.StatCache[Info]
	// bgCancel stops the cache's background prefetches at Close.
	bgCancel context.CancelFunc
}

// NewClient creates a Client.
func NewClient(opts Options) (*Client, error) {
	if opts.Dialer == nil {
		return nil, errors.New("davix: Options.Dialer is required")
	}
	opts = opts.withDefaults()
	c := &Client{opts: opts}
	c.trace = obs.Merge(opts.Trace, obs.SlogTrace(opts.Logger))
	c.health = newHealthBoard(opts.HealthThreshold, opts.HealthProbeAfter)
	c.health.trace = c.trace
	// Every connection counts its wire bytes into the client metrics. TLS,
	// when configured, wraps OVER the counting layer so the counters see
	// ciphertext — the bytes that actually crossed the wire.
	poolOpts := opts.Pool
	poolOpts.TLS = opts.TLS
	c.pool = pool.New(countingDialer{d: opts.Dialer, m: &c.metrics}, poolOpts)
	if opts.CacheSize > 0 {
		bg, cancel := context.WithCancel(context.Background())
		c.bgCancel = cancel
		cfg := blockcache.Config{
			Capacity:   opts.CacheSize,
			BlockSize:  opts.BlockSize,
			ReadAhead:  opts.ReadAhead,
			Background: bg,
		}
		if opts.PrefetchDepth > 0 {
			cfg.Planner = blockcache.NewStridePlanner(opts.PrefetchDepth)
			cfg.FetchVec = c.cacheFetchVec()
			cfg.PrefetchBudget = opts.PrefetchBudget
		}
		cfg.OnPrefetchIssued = func(key string, spans int, bytes int64) {
			c.metrics.prefetchIssued.Add(1)
			c.metrics.prefetchBytes.Add(bytes)
			c.trace.EmitPrefetchIssued(prettyKey(key), spans, bytes)
		}
		cfg.OnPrefetchSettled = func(key string, bytes int64, err error) {
			c.trace.EmitPrefetchSettled(prettyKey(key), bytes, err)
		}
		if tr := c.trace; tr != nil {
			if tr.CacheHit != nil {
				cfg.OnHit = func(key string, blocks int64) { tr.CacheHit(prettyKey(key), blocks) }
			}
			if tr.CacheMiss != nil {
				cfg.OnMiss = func(key string, blocks int64) { tr.CacheMiss(prettyKey(key), blocks) }
			}
		}
		c.cache = blockcache.New(cfg)
	}
	if opts.StatTTL > 0 {
		c.statc = blockcache.NewStatCache[Info](opts.StatTTL)
	}
	return c, nil
}

// Close stops background prefetches and releases all pooled connections.
func (c *Client) Close() {
	if c.bgCancel != nil {
		c.bgCancel()
	}
	c.pool.Close()
}

// CacheStats reports the block-cache and stat-cache counters. All zeros
// when caching is disabled.
func (c *Client) CacheStats() blockcache.Stats {
	var st blockcache.Stats
	if c.cache != nil {
		st = c.cache.Stats()
	}
	if c.statc != nil {
		st.StatHits, st.StatMisses = c.statc.Counters()
	}
	return st
}

// cacheKey names host/path in the shared caches. Replicated reads cache
// under the primary name the caller asked for.
func cacheKey(host, path string) string { return host + "\x00" + path }

// prettyKey renders a cacheKey for trace consumers ("host/path" instead of
// the NUL-separated internal form).
func prettyKey(key string) string { return strings.Replace(key, "\x00", "", 1) }

// invalidateCache drops cached blocks and metadata for host/path after a
// mutation (Put, Delete, Mkdir) so readers never see stale data from this
// client. It returns the block cache's post-invalidation generation (zero
// without a cache) for writers that follow up with a write-through
// PutSpan.
func (c *Client) invalidateCache(host, path string) uint64 {
	var gen uint64
	if c.cache != nil {
		gen = c.cache.Invalidate(cacheKey(host, path))
	}
	if c.statc != nil {
		c.statc.Invalidate(cacheKey(host, path))
	}
	return gen
}

// cacheFetch returns the Fetch the block cache uses to fill pages of
// host/path: a plain range GET with the same replica failover as any
// uncached read.
func (c *Client) cacheFetch(host, path string) blockcache.Fetch {
	return func(ctx context.Context, off, length int64) ([]byte, error) {
		return c.getRange(ctx, host, path, off, length)
	}
}

// cacheFetchVec returns the vectored fetch the cache's prefetch planner
// uses for coalesced speculation: one multi-range request through the
// pooled engine, with the same replica failover as demand reads. It
// bypasses the cached read path — the cache installs the blocks itself.
func (c *Client) cacheFetchVec() blockcache.FetchVec {
	return func(ctx context.Context, key string, spans []blockcache.Span, dsts [][]byte) error {
		host, path, _ := strings.Cut(key, "\x00")
		ranges := make([]rangev.Range, len(spans))
		for i, sp := range spans {
			ranges[i] = rangev.Range{Off: sp.Off, Len: sp.Len}
		}
		return c.withFailover(ctx, host, path, func(r Replica) error {
			return c.readVecOnce(ctx, r.Host, r.Path, ranges, dsts)
		})
	}
}

// PoolStats exposes connection pool counters (dials, reuses, discards).
func (c *Client) PoolStats() pool.Stats { return c.pool.Stats() }

// CloseIdlePool drops pooled idle connections for host, e.g. once the host
// is known to be down.
func (c *Client) CloseIdlePool(host string) { c.pool.CloseIdle(host) }

// Response couples a parsed wire response with the pooled connection it
// arrived on. Closing the Response recycles or discards the connection.
type Response struct {
	*wire.Response
	conn   *pool.Conn
	client *Client
	closed bool
	// dropWire marks an exchange whose wire bytes must not be charged to
	// BytesUp/BytesDown: an abandoned redirect hop, whose request is about
	// to be re-sent in full to the next target.
	dropWire bool
}

// Close finishes the response: a fully-consumed keep-alive body recycles
// the connection; anything else discards it. Either way, the exchange's
// pending wire bytes are settled into the client counters first (committed
// normally, dropped for an abandoned redirect hop).
func (r *Response) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	recycle := r.KeepAlive && r.Consumed()
	if !recycle && r.KeepAlive {
		// Try to drain a small remainder so the connection stays usable.
		if _, err := io.CopyN(io.Discard, r.Body, 64<<10); err == io.EOF && r.Consumed() {
			recycle = true
		}
	}
	if cc, ok := r.conn.NetConn().(*countingConn); ok {
		if r.dropWire {
			cc.drop()
		} else {
			cc.flush()
		}
	}
	if recycle {
		r.client.pool.Put(r.conn)
	} else {
		r.client.pool.Discard(r.conn)
	}
	return nil
}

// ReadAllAndClose drains the body and closes the response. Known-length
// bodies are read with one exactly-sized allocation (wire.Response.ReadAll).
func (r *Response) ReadAllAndClose() ([]byte, error) {
	b, err := r.ReadAll()
	cerr := r.Close()
	if err == nil {
		err = cerr
	}
	return b, err
}

// Do executes req against host, borrowing a pooled connection. On a stale
// recycled connection (write or header-read failure) the request is
// retried once on a fresh connection, mirroring davix's session-recycling
// robustness; requests with bodies cannot be replayed here (the body is
// partially consumed), which is why engine operations go through exec's
// doHop instead, rebuilding the request per attempt. The caller must Close
// the returned Response.
func (c *Client) Do(ctx context.Context, host string, req *wire.Request) (*Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, reused, err := c.doOnce(ctx, host, req, host)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt > 0 || !reused || req.Body != nil || ctx.Err() != nil {
			return nil, lastErr
		}
		// The replay is about to happen; count it only now.
		c.metrics.retries.Add(1)
		c.trace.EmitRetry(req.Method, host, 1, err)
	}
}

// doOnce performs exactly one pooled round trip, reporting whether the
// connection had been used before (the signal that justifies a transparent
// replay). authHost scopes Bearer/Basic credentials: they are attached only
// when the request targets that host, so a cross-host redirect hop never
// leaks them to a neighbouring node.
func (c *Client) doOnce(ctx context.Context, host string, req *wire.Request, authHost string) (*Response, bool, error) {
	conn, err := c.pool.Get(ctx, host)
	if err != nil {
		return nil, false, err
	}
	reused := conn.Uses() > 1
	c.trace.EmitConnAcquired(host, reused)
	// Cancellation must reach a round trip blocked writing the request or
	// awaiting response headers: connection I/O only honours deadlines, so
	// a cancelled ctx (a settled hedge race, an abandoned transfer) would
	// otherwise pin this goroutine until the server answers. The slammed
	// deadline poisons the connection, so every path below that saw the
	// hook fire discards it rather than recycling it.
	stop := context.AfterFunc(ctx, func() {
		conn.NetConn().SetDeadline(time.Unix(1, 0))
	})
	resp, err := c.roundTrip(ctx, conn, req, authHost)
	if !stop() {
		// The hook fired: ctx is done, so ctx.Err() is non-nil. Report the
		// cancellation itself, not the i/o timeout the slammed deadline
		// manufactured — callers classify context errors specially (they
		// must propagate, never trigger failover).
		err = ctx.Err()
	}
	if err != nil {
		c.pool.Discard(conn)
		return nil, reused, err
	}
	return &Response{Response: resp, conn: conn, client: c}, reused, nil
}

// roundTrip writes req and reads the response header on conn.
func (c *Client) roundTrip(ctx context.Context, conn *pool.Conn, req *wire.Request, authHost string) (*wire.Response, error) {
	if err := c.applyDeadline(ctx, conn); err != nil {
		return nil, err
	}
	c.prepare(req, authHost)
	c.metrics.requests.Add(1)
	c.trace.EmitRequest(req.Method, req.Host, req.Path)
	if err := req.Write(conn.NetConn()); err != nil {
		return nil, fmt.Errorf("davix: write request: %w", err)
	}
	resp, err := wire.ReadResponse(conn.Reader(), req.Method)
	if err != nil {
		return nil, fmt.Errorf("davix: read response: %w", err)
	}
	return resp, nil
}

// deadlineFor resolves the I/O deadline RequestTimeout and ctx impose
// (zero when unbounded).
func (c *Client) deadlineFor(ctx context.Context) time.Time {
	deadline := time.Time{}
	if c.opts.RequestTimeout > 0 {
		deadline = time.Now().Add(c.opts.RequestTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	return deadline
}

// applyDeadline arms conn's I/O deadline from RequestTimeout and ctx.
func (c *Client) applyDeadline(ctx context.Context, conn *pool.Conn) error {
	return conn.NetConn().SetDeadline(c.deadlineFor(ctx))
}

// prepare stamps the standing headers (User-Agent, auth, S3 signature) on
// req before it is written to a connection. Bearer/Basic credentials are
// attached only when the request targets authHost — the host the caller's
// chain started at — so a cross-host redirect hop (head node bouncing to a
// neighbouring disk node) never receives them. S3 requests are instead
// signed fresh for every request: SigV4 covers the Host header, so each
// hop gets a signature valid for its own host, never a replayable one.
func (c *Client) prepare(req *wire.Request, authHost string) {
	if req.Header == nil {
		req.Header = wire.Header{}
	}
	if req.Header.Get("User-Agent") == "" {
		req.Header.Set("User-Agent", c.opts.UserAgent)
	}
	if c.opts.Auth != nil && req.Host == authHost && req.Header.Get("Authorization") == "" {
		req.Header.Set("Authorization", c.opts.Auth.header())
	}
	if c.opts.S3 != nil {
		s3.Sign(req, *c.opts.S3, time.Now())
	}
}

// statusErr builds a StatusError for req/resp after discarding the body.
func statusErr(resp *Response, method, path string) error {
	// Capture the header before Discard tears the response down: a 503
	// from a shedding gateway carries the backoff it wants honoured.
	ra := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	resp.Discard()
	resp.Close()
	return &StatusError{Code: resp.StatusCode, Status: resp.Status,
		Method: method, Path: path, RetryAfter: ra}
}

// ErrNoMetalink reports a server that answered a Metalink negotiation with
// something other than a Metalink document (typically the object itself).
var ErrNoMetalink = errors.New("davix: server returned no metalink")

// GetMetalink fetches the Metalink document for path. The federation host
// is preferred when configured; otherwise the resource's own host is asked.
// A server that ignores the Accept negotiation and streams the object body
// instead yields ErrNoMetalink without the probe consuming the payload.
func (c *Client) GetMetalink(ctx context.Context, host, path string) (*metalink.Metalink, error) {
	target := host
	if c.opts.MetalinkHost != "" {
		target = c.opts.MetalinkHost
	}
	var ml *metalink.Metalink
	err := c.exec(ctx, target, path, specMetalink, func(h, p string) *wire.Request {
		req := wire.NewRequest("GET", h, p)
		req.Header.Set("Accept", metalink.MediaType)
		return req
	}, func(_ Replica, resp *Response) error {
		if resp.StatusCode != 200 {
			return statusErr(resp, "GET(metalink)", path)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, metalink.MediaType) {
			// The server ignored the negotiation and is streaming the
			// object itself. A discovery probe must never cost a payload
			// read: Close drains at most 64KiB before giving the
			// connection up, instead of draining an object-sized body
			// just to fail the Metalink decode.
			resp.Close()
			return ErrNoMetalink
		}
		body, err := resp.ReadAllAndClose()
		if err != nil {
			return err
		}
		ml, err = metalink.Decode(body)
		return err
	})
	if err != nil {
		return nil, err
	}
	return ml, nil
}
