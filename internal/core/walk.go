package core

import (
	"context"
	"errors"
	"sync"
)

// SkipDir can be returned from a WalkFunc to skip descending into the
// current collection.
var SkipDir = errors.New("davix: skip this directory")

// WalkFunc is invoked once per namespace entry during Walk.
type WalkFunc func(info Info) error

// defaultWalkParallelism is the fan-out used when Options.WalkParallelism
// is zero and the pool imposes no per-host cap.
const defaultWalkParallelism = 8

// walkSpeculate scales the speculation frontier: a walk keeps at most
// parallelism*walkSpeculate directories listed-but-unconsumed ahead of the
// emitter, so memory and goroutine count stay bounded on arbitrarily large
// namespaces while the PROPFIND pipeline never starves.
const walkSpeculate = 8

// walkParallelism resolves the PROPFIND fan-out for Walk. An explicit
// Options.WalkParallelism wins; the default is defaultWalkParallelism
// capped by the pool's MaxPerHost, so a walk never starves other traffic
// of pool slots. 1 restores the serial depth-first recursion.
func (c *Client) walkParallelism() int {
	par := c.opts.WalkParallelism
	if par <= 0 {
		par = defaultWalkParallelism
		if m := c.opts.Pool.MaxPerHost; m > 0 && par > m {
			par = m
		}
	}
	return par
}

// Walk traverses the remote namespace rooted at host/path depth-first in
// lexical order (the davix-ls -r behaviour), calling fn for every entry
// including the root. Collections are enumerated with PROPFIND depth 1;
// fn may return SkipDir to prune a subtree or any other error to abort.
//
// With WalkParallelism > 1 (the default) the PROPFINDs for discovered
// collections are issued concurrently across pooled connections, while a
// merge stage still delivers entries to fn in exactly the serial order:
// fn is never called concurrently and the emission sequence is
// byte-identical to a serial walk. Listings are speculative — a subtree
// later pruned with SkipDir may already have issued PROPFINDs; pruning
// cancels that subtree's remaining in-flight work, and an error from fn
// (or ctx) cancels the whole fleet. Speculation is bounded: no matter how
// large the namespace, only a fixed window of directories is held listed
// ahead of the callback.
func (c *Client) Walk(ctx context.Context, host, path string, fn WalkFunc) error {
	inf, err := c.Stat(ctx, host, path)
	if err != nil {
		return err
	}
	par := c.walkParallelism()
	if par <= 1 || !inf.Dir {
		return c.walkSerial(ctx, host, inf, fn)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w := &walker{
		c:       c,
		host:    host,
		fn:      fn,
		sem:     make(chan struct{}, par),
		tickets: make(chan struct{}, par*walkSpeculate),
	}
	root := newWalkNode(inf, wctx, cancel)
	go w.expand(root)
	return w.emit(ctx, root)
}

// walkSerial is the seed's depth-first recursion, used for WalkParallelism=1
// (the meta benchmark's serial baseline) and for single-file roots.
func (c *Client) walkSerial(ctx context.Context, host string, inf Info, fn WalkFunc) error {
	if err := fn(inf); err != nil {
		if err == SkipDir {
			return nil
		}
		return err
	}
	if !inf.Dir {
		return nil
	}
	entries, err := c.List(ctx, host, inf.Path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := c.walkSerial(ctx, host, e, fn); err != nil {
			return err
		}
	}
	return nil
}

// walkNode is one collection in the traversal tree. Its listing is
// produced asynchronously by walker.expand and consumed by walker.emit.
type walkNode struct {
	info Info
	// ctx scopes this node's subtree; cancel stops its in-flight listing
	// and every descendant's.
	ctx    context.Context
	cancel context.CancelFunc

	// done is closed once entries/children/err are final.
	done chan struct{}
	// urgent is closed (via rush) when the emitter is blocked on — or
	// about to need — this node, letting it bypass the speculation-ticket
	// queue so the walk can never stall behind its own throttle.
	urgent     chan struct{}
	urgentOnce sync.Once
	// consumed is closed by the emitter once it has finished the node's
	// subtree; the node's speculation ticket is released then.
	consumed chan struct{}
	// ticketed records whether this node holds a speculation ticket
	// (written by the parent's spawner before the node's goroutine
	// starts, read only by that goroutine).
	ticketed bool

	// entries is the collection's listing in lexical (server) order.
	entries []Info
	// children holds one node per entry, nil for non-collections;
	// indexes parallel entries.
	children []*walkNode
	// err is the listing failure, surfaced only if the merge stage
	// actually descends into this node (a pruned subtree's speculative
	// errors are discarded, matching serial semantics).
	err error
}

func newWalkNode(inf Info, ctx context.Context, cancel context.CancelFunc) *walkNode {
	return &walkNode{
		info:     inf,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		urgent:   make(chan struct{}),
		consumed: make(chan struct{}),
	}
}

// rush marks the node as needed by the emitter soon: its listing may start
// without a speculation ticket. Idempotent.
func (n *walkNode) rush() {
	n.urgentOnce.Do(func() { close(n.urgent) })
}

// walker drives one parallel Walk: expand goroutines fan PROPFINDs out
// across the pool (at most cap(sem) in flight, at most cap(tickets)
// directories speculated ahead of the emitter) while emit merges results
// back into deterministic depth-first order.
type walker struct {
	c    *Client
	host string
	fn   WalkFunc
	// sem bounds concurrent PROPFINDs.
	sem chan struct{}
	// tickets bounds listed-but-unconsumed directories (the speculation
	// frontier). The emitter's urgency signal bypasses it.
	tickets chan struct{}
}

// expand produces n's listing, schedules the listing of its child
// collections in emission order, and finally parks until the emitter has
// consumed the node before returning its speculation ticket.
func (w *walker) expand(n *walkNode) {
	w.list(n)
	w.spawnChildren(n)
	if n.ticketed {
		select {
		case <-n.consumed:
		case <-n.ctx.Done():
		}
		<-w.tickets
	}
}

// list runs the PROPFIND for n and publishes entries/children.
func (w *walker) list(n *walkNode) {
	defer close(n.done)
	select {
	case w.sem <- struct{}{}:
	case <-n.ctx.Done():
		n.err = n.ctx.Err()
		return
	}
	entries, err := w.c.List(n.ctx, w.host, n.info.Path)
	<-w.sem
	if err != nil {
		n.err = err
		return
	}
	n.entries = entries
	n.children = make([]*walkNode, len(entries))
	for i, e := range entries {
		if !e.Dir {
			continue
		}
		cctx, cancel := context.WithCancel(n.ctx)
		n.children[i] = newWalkNode(e, cctx, cancel)
	}
}

// spawnChildren starts each child collection's expand, in emission order,
// gated on a speculation ticket — or immediately when the emitter reports
// it is blocked on that child. The in-order gating is what makes the
// urgency bypass deadlock-free: the child the emitter needs next is always
// the first one this loop is waiting to start.
func (w *walker) spawnChildren(n *walkNode) {
	for _, child := range n.children {
		if child == nil {
			continue
		}
		select {
		case w.tickets <- struct{}{}:
			child.ticketed = true
		case <-child.urgent:
		case <-child.ctx.Done():
			// Pruned or cancelled before it ever started; mark it so a
			// racing emitter sees the cancellation, not an empty listing.
			child.err = child.ctx.Err()
			close(child.done)
			continue
		}
		go w.expand(child)
	}
}

// emit delivers n's subtree to fn in depth-first lexical order. It is the
// single sequential consumer: fn never runs concurrently with itself.
func (w *walker) emit(ctx context.Context, n *walkNode) error {
	// Completed subtrees release their context (and, via consumed, their
	// speculation ticket) immediately rather than holding them until the
	// walk finishes.
	defer n.cancel()
	defer close(n.consumed)
	if err := w.fn(n.info); err != nil {
		if err == SkipDir {
			// Prune: stop the subtree's in-flight listings right away.
			n.cancel()
			return nil
		}
		return err
	}
	n.rush()
	<-n.done
	if n.err != nil {
		return n.err
	}
	// Rush the first parallelism child collections: they are the listings
	// this walk needs soonest, and prioritizing them keeps the depth-first
	// critical path pipelined even when every speculation ticket is held
	// by a later subtree.
	rushed := 0
	for _, child := range n.children {
		if child == nil {
			continue
		}
		child.rush()
		if rushed++; rushed == cap(w.sem) {
			break
		}
	}
	for i, e := range n.entries {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		child := n.children[i]
		if child == nil {
			// Plain file: emit inline. SkipDir on a non-collection is a
			// no-op beyond not descending, as in the serial walk.
			if err := w.fn(e); err != nil && err != SkipDir {
				return err
			}
			continue
		}
		if err := w.emit(ctx, child); err != nil {
			return err
		}
		n.children[i] = nil // allow the finished subtree to be collected
	}
	return nil
}
