package core

import (
	"context"
	"errors"
)

// SkipDir can be returned from a WalkFunc to skip descending into the
// current collection.
var SkipDir = errors.New("davix: skip this directory")

// WalkFunc is invoked once per namespace entry during Walk.
type WalkFunc func(info Info) error

// Walk traverses the remote namespace rooted at host/path depth-first in
// lexical order (the davix-ls -r behaviour), calling fn for every entry
// including the root. Collections are enumerated with PROPFIND depth 1;
// fn may return SkipDir to prune a subtree or any other error to abort.
func (c *Client) Walk(ctx context.Context, host, path string, fn WalkFunc) error {
	inf, err := c.Stat(ctx, host, path)
	if err != nil {
		return err
	}
	return c.walk(ctx, host, inf, fn)
}

func (c *Client) walk(ctx context.Context, host string, inf Info, fn WalkFunc) error {
	if err := fn(inf); err != nil {
		if err == SkipDir && inf.Dir {
			return nil
		}
		if err == SkipDir {
			return nil
		}
		return err
	}
	if !inf.Dir {
		return nil
	}
	entries, err := c.List(ctx, host, inf.Path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := c.walk(ctx, host, e, fn); err != nil {
			return err
		}
	}
	return nil
}
