package core

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"context"

	"godavix/internal/bufpool"
)

// Hedged chunk reads: a multi-replica chunk fetch that outlives a latency
// budget gets a duplicate request raced against the next-ranked replica.
// The health scoreboard routes around replicas that fail; hedging covers
// the gap it cannot see — a replica that answers, slowly. The primary leg
// streams straight into the destination (keeping the kernel splice path);
// the standby leg streams into a private pooled buffer and is committed
// with a single WriteAt only after the primary leg has fully exited, so a
// cancelled loser can never touch bytes the winner committed.

// hedgeMinSamples is how many chunk reads the live histogram must hold
// before the auto-derived budget engages. Below it the P99 of a handful of
// samples is noise, and a cold client would hedge its very first chunks.
const hedgeMinSamples = 64

// hedgeBudget resolves the latency budget beyond which a chunk read is
// hedged: Options.HedgeDelay when positive, disabled when negative, and in
// auto mode (zero) the live P99 of the chunk-read histogram once it holds
// enough samples.
func (c *Client) hedgeBudget() (time.Duration, bool) {
	d := c.opts.HedgeDelay
	if d < 0 {
		return 0, false
	}
	if d > 0 {
		return d, true
	}
	v, ok := c.metrics.ops.Load(specChunk.op)
	if !ok {
		return 0, false
	}
	h := v.(*opHist)
	counts := make([]int64, latBuckets)
	var total int64
	for b := range h.buckets {
		n := h.buckets[b].Load()
		counts[b] = n
		total += n
	}
	if total < hedgeMinSamples {
		return 0, false
	}
	return quantile(counts, total, 0.99), true
}

// hedgeStandby picks the hedge target: the first replica after the
// primary's ring slot on a different host. Same-host "replicas" (alternate
// paths) share the straggler's fate and are never worth racing.
func hedgeStandby(ring []Replica, idx int) (Replica, bool) {
	primary := ring[idx%len(ring)]
	for i := 1; i < len(ring); i++ {
		rep := ring[(idx+i)%len(ring)]
		if rep.Host != primary.Host {
			return rep, true
		}
	}
	return Replica{}, false
}

// chunkBuf adapts a pooled chunk-sized buffer to io.WriterAt at a fixed
// object offset, counting delivered bytes so a cancelled hedge leg reports
// exactly how much duplicate payload it cost.
type chunkBuf struct {
	base int64
	buf  []byte
	n    atomic.Int64
}

func (b *chunkBuf) WriteAt(p []byte, off int64) (int, error) {
	i := off - b.base
	if i < 0 || i+int64(len(p)) > int64(len(b.buf)) {
		return 0, errors.New("davix: hedge buffer write outside chunk")
	}
	copy(b.buf[i:], p)
	b.n.Add(int64(len(p)))
	return len(p), nil
}

// hedgeLeg is one side of a hedged race.
type hedgeLeg struct {
	res scatterResult
	err error
}

// scatterChunkHedged fetches chunk idx covering [off, off+ln) with a
// latency hedge. It returns handled=false when the race could not settle
// the chunk — no distinct standby host, or both legs failed transiently —
// and the caller falls back to the serial ring walk.
func (c *Client) scatterChunkHedged(ctx context.Context, ring []Replica, idx int, off, ln int64, dst io.WriterAt, fastName, algo string, sum, perChunk bool, budget time.Duration) (scatterResult, bool, error) {
	standby, ok := hedgeStandby(ring, idx)
	if !ok {
		return scatterResult{}, false, nil
	}
	primary := ring[idx%len(ring)]
	objPath := primary.Path

	run := func(ctx context.Context, rep Replica, w io.WriterAt, fast string) hedgeLeg {
		r, err := c.getRangeScatter(ctx, rep.Host, rep.Path, objPath, off, ln, w, fast, algo, sum, perChunk)
		if err == nil && r.n != ln {
			err = fmt.Errorf("davix: short chunk from %s: %d < %d", rep.Host, r.n, ln)
		}
		return hedgeLeg{res: r, err: err}
	}

	// Primary leg: straight into dst, splice path intact.
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pch := make(chan hedgeLeg, 1)
	go func() { pch <- run(pctx, primary, dst, fastName) }()

	timer := time.NewTimer(budget)
	defer timer.Stop()

	select {
	case l := <-pch:
		// Settled within budget: the common case, no hedge. A transient
		// failure hands the chunk back to the serial ring walk.
		if l.err == nil {
			return l.res, true, nil
		}
		if ctx.Err() != nil {
			return scatterResult{}, true, ctx.Err()
		}
		return scatterResult{}, false, nil
	case <-ctx.Done():
		<-pch // ctx cancellation aborts the blocked body read promptly
		return scatterResult{}, true, ctx.Err()
	case <-timer.C:
	}

	// Budget blown: race a duplicate request against the standby, into a
	// private buffer so the loser can never touch committed bytes.
	c.metrics.hedgesIssued.Add(1)
	c.trace.EmitHedgeIssued(objPath, idx, off, ln, standby.Host)
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	hbuf := &chunkBuf{base: off, buf: bufpool.Get(int(ln))}
	hch := make(chan hedgeLeg, 1)
	go func() { hch <- run(hctx, standby, hbuf, "") }()

	var pl, hl *hedgeLeg
	var winner *hedgeLeg
	hedgeWon := false
	for pl == nil || hl == nil {
		select {
		case l := <-pch:
			pl = &l
			if winner == nil && l.err == nil {
				winner = pl
				hcancel()
			}
		case l := <-hch:
			hl = &l
			if winner == nil && l.err == nil {
				winner = hl
				hedgeWon = true
				pcancel()
			}
		}
	}

	if winner == nil {
		bufpool.Put(hbuf.buf)
		if ctx.Err() != nil {
			return scatterResult{}, true, ctx.Err()
		}
		return scatterResult{}, false, nil
	}

	var wasted int64
	if hedgeWon {
		// Both legs have exited; the straggler can no longer write, so the
		// single commit below is the last touch on this chunk's bytes.
		wasted = pl.res.n
		if _, err := dst.WriteAt(hbuf.buf[:ln], off); err != nil {
			bufpool.Put(hbuf.buf)
			return scatterResult{}, true, err
		}
		c.metrics.hedgeWins.Add(1)
	} else {
		wasted = hbuf.n.Load()
	}
	bufpool.Put(hbuf.buf)
	c.metrics.hedgeWastedBytes.Add(wasted)
	c.trace.EmitHedgeSettled(objPath, idx, hedgeWon, wasted)
	return winner.res, true, nil
}
