package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"godavix/internal/httpserv"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"seconds", "3", 3 * time.Second},
		{"seconds-zero", "0", 0},
		{"seconds-negative", "-5", 0},
		{"seconds-spaces", "  7  ", 7 * time.Second},
		{"http-date-future", now.Add(90 * time.Second).Format("Mon, 02 Jan 2006 15:04:05 GMT"), 90 * time.Second},
		{"http-date-past", now.Add(-time.Minute).Format("Mon, 02 Jan 2006 15:04:05 GMT"), 0},
		{"garbage", "soon", 0},
		{"float-rejected", "1.5", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.v, now); got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	// Identity jitter makes the computed backoff deterministic.
	pol := RetryPolicy{
		Attempts:    3,
		BaseBackoff: 10 * time.Millisecond,
		CapBackoff:  2 * time.Second,
		Jitter:      func(d time.Duration) time.Duration { return d },
	}
	cases := []struct {
		name string
		err  error
		n    int
		want time.Duration
	}{
		{"no-status-error", errors.New("conn reset"), 1, 10 * time.Millisecond},
		{"status-without-retry-after", &StatusError{Code: 503}, 1, 10 * time.Millisecond},
		{"retry-after-stretches", &StatusError{Code: 503, RetryAfter: time.Second}, 1, time.Second},
		{"retry-after-below-backoff", &StatusError{Code: 503, RetryAfter: time.Millisecond}, 2, 20 * time.Millisecond},
		{"retry-after-capped", &StatusError{Code: 503, RetryAfter: time.Minute}, 1, 2 * time.Second},
		{"wrapped-status-error", fmt.Errorf("attempt failed: %w",
			&StatusError{Code: 503, RetryAfter: 500 * time.Millisecond}), 1, 500 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryDelay(pol, tc.n, tc.err); got != tc.want {
				t.Fatalf("retryDelay = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestRetryAfterCapturedFromShed drives a real gateway shed through the
// engine: with the admission limit saturated, the 503 surfaced to the
// caller carries the server-advertised Retry-After.
func TestRetryAfterCapturedFromShed(t *testing.T) {
	e := newEnv(t, Options{RetryPolicy: RetryPolicy{Attempts: 1}})
	e.startServer(t, dpm1, httpserv.Options{
		Limits: httpserv.Limits{
			MaxInFlight: 1,
			QueueDepth:  1,
			QueueWait:   5 * time.Millisecond,
		},
	})
	ctx := context.Background()
	if err := e.client.Put(ctx, dpm1, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Park two requests in a delay fault: one holds the single in-flight
	// slot, one fills the queue, so the probe below must be shed.
	e.srvs[dpm1].SetFault("/slow", httpserv.Fault{Delay: 400 * time.Millisecond, Remaining: 2})
	for i := 0; i < 2; i++ {
		go e.client.Get(ctx, dpm1, "/slow")
	}
	deadline := time.Now().Add(2 * time.Second)
	for snapCounter(e.srvs[dpm1], "inflight")+snapCounter(e.srvs[dpm1], "admission_queue") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("parked requests never occupied the gateway")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := e.client.Get(ctx, dpm1, "/f")
	if err == nil {
		t.Fatal("Get succeeded past a saturated gateway")
	}
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.Code != 503 {
		t.Fatalf("code = %d, want 503", se.Code)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0 from the shed's header", se.RetryAfter)
	}
}

func snapCounter(s *httpserv.Server, name string) int64 {
	for _, c := range s.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
