package core

import (
	"context"
	"errors"
	"fmt"

	"godavix/internal/metalink"
)

// DownloadMultiStream implements the paper's §2.4 "multi-stream" strategy:
// the resource is split into ChunkSize chunks and each chunk is fetched
// from a different replica in parallel (MaxStreams goroutines, replicas
// assigned round-robin). A chunk whose replica fails is retried on the
// next replica, so the download succeeds as long as one replica holds
// every byte. The paper notes this maximizes client bandwidth at the cost
// of server load.
func (c *Client) DownloadMultiStream(ctx context.Context, host, path string) ([]byte, error) {
	ml, err := c.GetMetalink(ctx, host, path)
	if err != nil {
		return nil, fmt.Errorf("davix: multi-stream needs a metalink: %w", err)
	}
	return c.downloadFromMetalink(ctx, ml, Replica{Host: host, Path: path})
}

// downloadFromMetalink drives the chunked parallel download.
func (c *Client) downloadFromMetalink(ctx context.Context, ml *metalink.Metalink, primary Replica) ([]byte, error) {
	replicas := metalinkReplicas([]Replica{primary}, ml)

	size := ml.Size
	if size < 0 {
		// Metalink without size: stat any live replica, preferring ones
		// the health scoreboard has not demoted.
		var err error
		for _, r := range c.health.order(replicas) {
			var inf Info
			if inf, err = c.Stat(ctx, r.Host, r.Path); err == nil {
				size = inf.Size
				break
			}
		}
		if size < 0 {
			return nil, fmt.Errorf("davix: cannot determine size: %w", err)
		}
	}
	if size == 0 {
		return []byte{}, nil
	}

	// Each chunk reads straight into its slice of the shared output
	// buffer — chunks are disjoint, so no extra copy and no per-chunk
	// allocation. The first chunk failure cancels the sibling streams.
	out := make([]byte, size)
	err := c.forEachChunk(ctx, 0, size, c.opts.MaxStreams, func(cctx context.Context, idx int, off, ln int64) error {
		return c.readChunkReplicas(cctx, replicas, idx, off, out[off:off+ln])
	})
	if err != nil {
		return nil, err
	}
	if c.opts.VerifyTransfers && ml.Checksum != "" {
		// The object is materialized anyway, so whole-buffer verification
		// against the Metalink checksum is free of extra reads.
		if err := verifyChecksum(out, ml.Checksum, primary.Path, true); err != nil {
			if errors.Is(err, ErrChecksumMismatch) {
				c.metrics.checksumMismatches.Add(1)
			}
			return nil, err
		}
		c.metrics.transfersVerified.Add(1)
	}
	return out, nil
}
