package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"godavix/internal/metalink"
)

// DownloadMultiStream implements the paper's §2.4 "multi-stream" strategy:
// the resource is split into ChunkSize chunks and each chunk is fetched
// from a different replica in parallel (MaxStreams goroutines, replicas
// assigned round-robin). A chunk whose replica fails is retried on the
// next replica, so the download succeeds as long as one replica holds
// every byte. The paper notes this maximizes client bandwidth at the cost
// of server load.
func (c *Client) DownloadMultiStream(ctx context.Context, host, path string) ([]byte, error) {
	ml, err := c.GetMetalink(ctx, host, path)
	if err != nil {
		return nil, fmt.Errorf("davix: multi-stream needs a metalink: %w", err)
	}
	return c.downloadFromMetalink(ctx, ml, Replica{Host: host, Path: path})
}

// downloadFromMetalink drives the chunked parallel download.
func (c *Client) downloadFromMetalink(ctx context.Context, ml *metalink.Metalink, primary Replica) ([]byte, error) {
	replicas := []Replica{primary}
	seen := map[Replica]bool{primary: true}
	for _, u := range ml.URLs {
		h, p, err := metalink.SplitURL(u.Loc)
		if err != nil {
			continue
		}
		r := Replica{Host: h, Path: p}
		if !seen[r] {
			seen[r] = true
			replicas = append(replicas, r)
		}
	}

	size := ml.Size
	if size < 0 {
		// Metalink without size: stat any live replica.
		var err error
		for _, r := range replicas {
			var inf Info
			if inf, err = c.Stat(ctx, r.Host, r.Path); err == nil {
				size = inf.Size
				break
			}
		}
		if size < 0 {
			return nil, fmt.Errorf("davix: cannot determine size: %w", err)
		}
	}
	if size == 0 {
		return []byte{}, nil
	}

	nChunks := int((size + c.opts.ChunkSize - 1) / c.opts.ChunkSize)
	out := make([]byte, size)
	type chunk struct {
		idx      int
		off, len int64
	}
	work := make(chan chunk, nChunks)
	for i := 0; i < nChunks; i++ {
		off := int64(i) * c.opts.ChunkSize
		ln := c.opts.ChunkSize
		if off+ln > size {
			ln = size - off
		}
		work <- chunk{idx: i, off: off, len: ln}
	}
	close(work)

	streams := c.opts.MaxStreams
	if streams > nChunks {
		streams = nChunks
	}
	// The first chunk failure cancels the sibling streams through dctx:
	// in-flight chunk requests abort and the remaining work queue is
	// abandoned instead of being drained attempt-by-attempt before the
	// error can be returned.
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		firstEr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstEr == nil {
			firstEr = err
			cancel()
		}
		errMu.Unlock()
	}
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(streamID int) {
			defer wg.Done()
			for ck := range work {
				if dctx.Err() != nil {
					setErr(ctx.Err())
					return
				}
				// Spread chunks across replicas; on failure walk the ring.
				// Each chunk reads straight into its slice of the shared
				// output buffer — chunks are disjoint, so no extra copy and
				// no per-chunk allocation.
				var lastErr error
				ok := false
				for attempt := 0; attempt < len(replicas); attempt++ {
					rep := replicas[(ck.idx+attempt)%len(replicas)]
					n, err := c.getRangeInto(dctx, rep.Host, rep.Path, ck.off, out[ck.off:ck.off+ck.len])
					if err == nil && int64(n) == ck.len {
						ok = true
						break
					}
					if err == nil {
						err = fmt.Errorf("davix: short chunk from %s: %d < %d", rep.Host, n, ck.len)
					}
					lastErr = err
					if dctx.Err() != nil || !replicaUnavailable(err) {
						break
					}
				}
				if !ok {
					setErr(errors.Join(ErrAllReplicasFailed, lastErr))
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}
