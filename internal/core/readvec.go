package core

import (
	"context"
	"fmt"
	"io"

	"godavix/internal/rangev"
	"godavix/internal/wire"
)

// ReadVec performs the paper's §2.3 vectored read: the requested fragments
// are coalesced (data sieving with Options.CoalesceGap), shipped as one or
// more HTTP multi-range requests, and the multipart/byteranges responses
// are scattered back into dsts. dsts[i] receives ranges[i] and must be at
// least ranges[i].Len bytes long.
//
// One network round trip typically serves hundreds of fragment reads,
// which is what lets HTTP compete with the HPC protocols' aggressive
// caching in the paper's Figure 4.
func (c *Client) ReadVec(ctx context.Context, host, path string, ranges []rangev.Range, dsts [][]byte) error {
	if err := validateVec(ranges, dsts); err != nil {
		return err
	}
	if c.cache != nil {
		return c.readVecCached(ctx, host, path, ranges, dsts)
	}
	return c.withFailover(ctx, host, path, func(r Replica) error {
		return c.readVecOnce(ctx, r.Host, r.Path, ranges, dsts)
	})
}

// readVecCached serves fragments wholly resident in the block cache from
// memory and ships only the rest as a multi-range request, afterwards
// caching every block the fetched fragments fully cover. A TreeCache window
// that revisits baskets thus shrinks each wire request to the cold subset.
func (c *Client) readVecCached(ctx context.Context, host, path string, ranges []rangev.Range, dsts [][]byte) error {
	key := cacheKey(host, path)
	var missR []rangev.Range
	var missD [][]byte
	for i, r := range ranges {
		if !c.cache.PeekSpan(key, dsts[i][:r.Len], r.Off) {
			missR = append(missR, r)
			missD = append(missD, dsts[i])
		}
	}
	if len(missR) == 0 {
		return nil
	}
	gen := c.cache.Generation()
	err := c.withFailover(ctx, host, path, func(r Replica) error {
		return c.readVecOnce(ctx, r.Host, r.Path, missR, missD)
	})
	if err != nil {
		return err
	}
	for i, r := range missR {
		c.cache.PutSpan(key, gen, r.Off, missD[i][:r.Len], false)
	}
	return nil
}

// validateVec checks the request shape before any network traffic, so
// caller bugs never trigger replica failover.
func validateVec(ranges []rangev.Range, dsts [][]byte) error {
	if err := rangev.Validate(ranges); err != nil {
		return err
	}
	if len(dsts) != len(ranges) {
		return fmt.Errorf("davix: %d ranges but %d destination buffers", len(ranges), len(dsts))
	}
	for i, r := range ranges {
		if int64(len(dsts[i])) < r.Len {
			return fmt.Errorf("davix: destination %d too small: %d < %d", i, len(dsts[i]), r.Len)
		}
	}
	return nil
}

// readVecOnce executes the vectored read against exactly one replica.
func (c *Client) readVecOnce(ctx context.Context, host, path string, ranges []rangev.Range, dsts [][]byte) error {
	if err := validateVec(ranges, dsts); err != nil {
		return err
	}
	frames := rangev.Coalesce(ranges, c.opts.CoalesceGap)
	for start := 0; start < len(frames); start += c.opts.MaxRangesPerRequest {
		end := start + c.opts.MaxRangesPerRequest
		if end > len(frames) {
			end = len(frames)
		}
		if err := c.readVecBatch(ctx, host, path, frames[start:end], ranges, dsts); err != nil {
			return err
		}
	}
	return nil
}

// readVecBatch executes one multi-range request for a batch of frames.
func (c *Client) readVecBatch(ctx context.Context, host, path string, frames []rangev.Frame, ranges []rangev.Range, dsts [][]byte) error {
	resp, err := c.doFollow(ctx, host, path, func(h, p string) *wire.Request {
		req := wire.NewRequest("GET", h, p)
		req.Header.Set("Range", rangev.RangeHeader(frames))
		return req
	})
	if err != nil {
		return err
	}

	switch resp.StatusCode {
	case 206:
		if boundary, ok := rangev.IsMultipartByteranges(resp.Header.Get("Content-Type")); ok {
			parts, perr := rangev.ReadMultipart(resp.Body, boundary)
			if cerr := resp.Close(); perr == nil {
				perr = cerr
			}
			if perr != nil {
				return perr
			}
			return rangev.ScatterParts(parts, frames, ranges, dsts)
		}
		// Single Content-Range part: the server coalesced (or we sent one
		// frame); scatter straight out of the body.
		off, length, _, err := rangev.ParseContentRange(resp.Header.Get("Content-Range"))
		if err != nil {
			resp.Discard()
			resp.Close()
			return fmt.Errorf("%w: %v", ErrVectorUnsupported, err)
		}
		data := make([]byte, length)
		if _, err := io.ReadFull(resp.Body, data); err != nil {
			resp.Close()
			return err
		}
		if err := resp.Close(); err != nil {
			return err
		}
		for _, f := range frames {
			if f.Off < off || f.End() > off+length {
				return fmt.Errorf("%w: single part [%d,+%d) does not cover frame [%d,+%d)",
					ErrVectorUnsupported, off, length, f.Off, f.Len)
			}
			if err := rangev.Scatter(f, off, data, ranges, dsts); err != nil {
				return err
			}
		}
		return nil

	case 200:
		// Range-ignorant server: the full body covers every frame.
		body, err := resp.ReadAllAndClose()
		if err != nil {
			return err
		}
		for _, f := range frames {
			if f.End() > int64(len(body)) {
				return fmt.Errorf("%w: body size %d < frame end %d", ErrVectorUnsupported, len(body), f.End())
			}
			if err := rangev.Scatter(f, 0, body, ranges, dsts); err != nil {
				return err
			}
		}
		return nil

	default:
		return statusErr(resp, "GET(vector)", path)
	}
}
