package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"godavix/internal/rangev"
	"godavix/internal/wire"
)

// ReadVec performs the paper's §2.3 vectored read: the requested fragments
// are coalesced (data sieving with Options.CoalesceGap), shipped as one or
// more HTTP multi-range requests, and the multipart/byteranges responses
// are scattered back into dsts. dsts[i] receives ranges[i] and must be at
// least ranges[i].Len bytes long.
//
// One network round trip typically serves hundreds of fragment reads,
// which is what lets HTTP compete with the HPC protocols' aggressive
// caching in the paper's Figure 4. When the read splits into several
// multi-range batches, the batches are dispatched concurrently across
// pooled connections (see Options.VectorParallelism) — the §2.2 pool grows
// with demand, so independent batches never queue behind each other on one
// borrowed session.
func (c *Client) ReadVec(ctx context.Context, host, path string, ranges []rangev.Range, dsts [][]byte) error {
	if err := validateVec(ranges, dsts); err != nil {
		return err
	}
	if c.cache != nil {
		return c.readVecCached(ctx, host, path, ranges, dsts)
	}
	return c.withFailover(ctx, host, path, func(r Replica) error {
		return c.readVecOnce(ctx, r.Host, r.Path, ranges, dsts)
	})
}

// readVecCached serves fragments wholly resident in the block cache from
// memory and ships only the rest as a multi-range request, afterwards
// caching every block the fetched fragments fully cover. A TreeCache window
// that revisits baskets thus shrinks each wire request to the cold subset.
func (c *Client) readVecCached(ctx context.Context, host, path string, ranges []rangev.Range, dsts [][]byte) error {
	key := cacheKey(host, path)
	var missR []rangev.Range
	var missD [][]byte
	for i, r := range ranges {
		if !c.cache.PeekSpan(key, dsts[i][:r.Len], r.Off) {
			missR = append(missR, r)
			missD = append(missD, dsts[i])
		}
	}
	if len(missR) == 0 {
		return nil
	}
	gen := c.cache.Generation()
	err := c.withFailover(ctx, host, path, func(r Replica) error {
		return c.readVecOnce(ctx, r.Host, r.Path, missR, missD)
	})
	if err != nil {
		return err
	}
	for i, r := range missR {
		c.cache.PutSpan(key, gen, r.Off, missD[i][:r.Len], false)
	}
	return nil
}

// validateVec checks the request shape before any network traffic, so
// caller bugs never trigger replica failover. It runs exactly once per
// ReadVec, in the public entry point — the per-replica retry path must not
// re-pay it on every failover attempt.
func validateVec(ranges []rangev.Range, dsts [][]byte) error {
	if err := rangev.Validate(ranges); err != nil {
		return err
	}
	if len(dsts) != len(ranges) {
		return fmt.Errorf("davix: %d ranges but %d destination buffers", len(ranges), len(dsts))
	}
	for i, r := range ranges {
		if int64(len(dsts[i])) < r.Len {
			return fmt.Errorf("davix: destination %d too small: %d < %d", i, len(dsts[i]), r.Len)
		}
	}
	return nil
}

// readVecOnce executes the vectored read against exactly one replica. The
// coalesced frames are cut into MaxRangesPerRequest batches; with more than
// one batch and parallelism available, the batches fan out concurrently,
// each on its own pooled connection.
func (c *Client) readVecOnce(ctx context.Context, host, path string, ranges []rangev.Range, dsts [][]byte) error {
	frames := rangev.Coalesce(ranges, c.opts.CoalesceGap)
	per := c.opts.MaxRangesPerRequest
	nBatches := (len(frames) + per - 1) / per
	if par := c.vectorParallelism(nBatches); par > 1 {
		return c.readVecParallel(ctx, host, path, frames, ranges, dsts, par)
	}
	for start := 0; start < len(frames); start += per {
		end := start + per
		if end > len(frames) {
			end = len(frames)
		}
		if err := c.readVecBatch(ctx, host, path, frames[start:end], ranges, dsts); err != nil {
			return err
		}
	}
	return nil
}

// vectorParallelism resolves the fan-out for a vectored read that splits
// into nBatches multi-range requests. Options.VectorParallelism wins when
// set; the default is one connection per batch, capped by the pool's
// MaxPerHost so vector reads cannot starve other traffic of pool slots.
func (c *Client) vectorParallelism(nBatches int) int {
	par := c.opts.VectorParallelism
	if par <= 0 {
		par = nBatches
		if m := c.opts.Pool.MaxPerHost; m > 0 && par > m {
			par = m
		}
	}
	if par > nBatches {
		par = nBatches
	}
	return par
}

// readVecParallel dispatches the frame batches concurrently, at most par in
// flight. Batches write disjoint destination buffers (each caller range is
// a member of exactly one frame, and each frame sits in exactly one batch),
// so scattering needs no coordination. The first batch error cancels the
// remaining work; the error recorded before cancellation is the one
// returned, so replica failover still sees the genuine failure rather than
// a sibling's context.Canceled.
func (c *Client) readVecParallel(ctx context.Context, host, path string, frames []rangev.Frame, ranges []rangev.Range, dsts [][]byte, par int) error {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, par)
	per := c.opts.MaxRangesPerRequest
	for start := 0; start < len(frames); start += per {
		end := start + per
		if end > len(frames) {
			end = len(frames)
		}
		batch := frames[start:end]
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-gctx.Done():
				return
			}
			defer func() { <-sem }()
			if err := c.readVecBatch(gctx, host, path, batch, ranges, dsts); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		// Cancellation can drain queued batches without any of them
		// recording an error; success must never be reported while dsts
		// are only partially filled (readVecCached would cache garbage).
		firstErr = ctx.Err()
	}
	return firstErr
}

// readVecBatch executes one multi-range request for a batch of frames.
// Failover stays at the ReadVec level (the whole vectored read moves to the
// next replica together), so the engine applies redirects and the retry
// budget only.
func (c *Client) readVecBatch(ctx context.Context, host, path string, frames []rangev.Frame, ranges []rangev.Range, dsts [][]byte) error {
	return c.exec(ctx, host, path, specVector, func(h, p string) *wire.Request {
		req := wire.NewRequest("GET", h, p)
		req.Header.Set("Range", rangev.RangeHeader(frames))
		return req
	}, func(_ Replica, resp *Response) error {
		return c.scatterVecResponse(resp, path, frames, ranges, dsts)
	})
}

// scatterVecResponse consumes one multi-range response, scattering the
// payload into dsts.
func (c *Client) scatterVecResponse(resp *Response, path string, frames []rangev.Frame, ranges []rangev.Range, dsts [][]byte) error {
	switch resp.StatusCode {
	case 206:
		if boundary, ok := rangev.IsMultipartByteranges(resp.Header.Get("Content-Type")); ok {
			if c.opts.LegacyVecScatter {
				parts, perr := rangev.ReadMultipart(resp.Body, boundary)
				defer rangev.ReleaseParts(parts)
				if cerr := resp.Close(); perr == nil {
					perr = cerr
				}
				if perr != nil {
					return perr
				}
				return rangev.ScatterParts(parts, frames, ranges, dsts)
			}
			// Streaming scatter: part payloads land in dsts as they arrive,
			// never materialized — the batch costs no payload allocations.
			if err := rangev.ScatterMultipart(resp.Body, boundary, frames, ranges, dsts); err != nil {
				resp.Close()
				return err
			}
			return resp.Close()
		}
		// Single Content-Range part: the server coalesced (or we sent one
		// frame); scatter straight out of the stream.
		off, length, _, err := rangev.ParseContentRange(resp.Header.Get("Content-Range"))
		if err != nil {
			resp.Discard()
			resp.Close()
			return fmt.Errorf("%w: %v", ErrVectorUnsupported, err)
		}
		for _, f := range frames {
			if f.Off < off || f.End() > off+length {
				resp.Discard()
				resp.Close()
				return fmt.Errorf("%w: single part [%d,+%d) does not cover frame [%d,+%d)",
					ErrVectorUnsupported, off, length, f.Off, f.Len)
			}
		}
		if err := rangev.StreamScatter(resp.Body, off, frames, ranges, dsts); err != nil {
			resp.Close()
			return err
		}
		return resp.Close()

	case 200:
		// Range-ignorant server: the full body covers every frame. Stream
		// the prefix the frames actually need instead of buffering the
		// entire object; Close then drains a small remainder for recycling
		// or drops the connection when the unread tail is large.
		maxEnd := frames[len(frames)-1].End()
		if resp.ContentLength >= 0 && maxEnd > resp.ContentLength {
			resp.Discard()
			resp.Close()
			return fmt.Errorf("%w: body size %d < frame end %d", ErrVectorUnsupported, resp.ContentLength, maxEnd)
		}
		if err := rangev.StreamScatter(resp.Body, 0, frames, ranges, dsts); err != nil {
			resp.Close()
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("%w: body ends before frame end %d", ErrVectorUnsupported, maxEnd)
			}
			return err
		}
		return resp.Close()

	default:
		return statusErr(resp, "GET(vector)", path)
	}
}
