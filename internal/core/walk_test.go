package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/storage"
)

func buildTree(t *testing.T, e *testEnv) {
	t.Helper()
	st := e.stores[dpm1]
	st.Put("/data/run1/a.rnt", []byte("aa"))
	st.Put("/data/run1/b.rnt", []byte("bbb"))
	st.Put("/data/run2/c.rnt", []byte("c"))
	st.Put("/data/readme", []byte("r"))
}

func TestWalkVisitsEverything(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	buildTree(t, e)

	var paths []string
	err := e.client.Walk(context.Background(), dpm1, "/data", func(inf Info) error {
		paths = append(paths, inf.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"/data",
		"/data/readme",
		"/data/run1",
		"/data/run1/a.rnt",
		"/data/run1/b.rnt",
		"/data/run2",
		"/data/run2/c.rnt",
	}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths[%d] = %q, want %q (all: %v)", i, paths[i], want[i], paths)
		}
	}
}

func TestWalkSkipDir(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	buildTree(t, e)

	var paths []string
	err := e.client.Walk(context.Background(), dpm1, "/data", func(inf Info) error {
		if inf.Path == "/data/run1" {
			return SkipDir
		}
		paths = append(paths, inf.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if p == "/data/run1/a.rnt" || p == "/data/run1/b.rnt" {
			t.Fatalf("descended into skipped dir: %v", paths)
		}
	}
}

func TestWalkAbortsOnError(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	buildTree(t, e)

	boom := errors.New("boom")
	count := 0
	err := e.client.Walk(context.Background(), dpm1, "/data", func(inf Info) error {
		count++
		if count == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if count != 2 {
		t.Fatalf("visited %d entries after abort", count)
	}
}

func TestWalkSingleFile(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/lonely", []byte("x"))

	var paths []string
	err := e.client.Walk(context.Background(), dpm1, "/lonely", func(inf Info) error {
		paths = append(paths, inf.Path)
		return nil
	})
	if err != nil || len(paths) != 1 || paths[0] != "/lonely" {
		t.Fatalf("paths = %v err = %v", paths, err)
	}
}

func TestWalkMissingRoot(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	err := e.client.Walk(context.Background(), dpm1, "/ghost", func(Info) error { return nil })
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

// mkdirAll creates p and any missing ancestors on the test store.
func mkdirAll(t *testing.T, e *testEnv, p string) {
	t.Helper()
	for i := 1; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if err := e.stores[dpm1].Mkdir(p[:i]); err != nil && !errors.Is(err, storage.ErrExists) {
				t.Fatal(err)
			}
		}
	}
}

// buildRandomTree populates a pseudo-random nested namespace and returns
// the number of entries created.
func buildRandomTree(t *testing.T, e *testEnv, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st := e.stores[dpm1]
	mkdirAll(t, e, "/tree")
	n := 0
	var grow func(prefix string, depth int)
	grow = func(prefix string, depth int) {
		files := rng.Intn(4)
		for i := 0; i < files; i++ {
			st.Put(fmt.Sprintf("%s/f%d.rnt", prefix, i), make([]byte, rng.Intn(64)))
			n++
		}
		if depth == 0 {
			return
		}
		dirs := 1 + rng.Intn(3)
		for i := 0; i < dirs; i++ {
			sub := fmt.Sprintf("%s/d%d", prefix, i)
			if err := st.Mkdir(sub); err != nil {
				t.Fatal(err)
			}
			n++
			grow(sub, depth-1)
		}
	}
	grow("/tree", 4)
	return n
}

// collectWalk runs one Walk with the given parallelism and returns the
// emitted paths in order.
func collectWalk(t *testing.T, e *testEnv, par int, root string) []string {
	t.Helper()
	client, err := NewClient(Options{
		Dialer:          e.net,
		Strategy:        StrategyNone,
		WalkParallelism: par,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var paths []string
	err = client.Walk(context.Background(), dpm1, root, func(inf Info) error {
		paths = append(paths, inf.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestWalkParallelOrderMatchesSerial is the determinism bar: at every
// parallelism level, the emission sequence must be byte-identical to the
// serial walk over a pseudo-random nested tree.
func TestWalkParallelOrderMatchesSerial(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	n := buildRandomTree(t, e, 42)

	serial := collectWalk(t, e, 1, "/tree")
	if len(serial) != n+1 { // +1 for the root
		t.Fatalf("serial walk emitted %d entries, tree has %d", len(serial), n+1)
	}
	for _, par := range []int{2, 4, 16} {
		got := collectWalk(t, e, par, "/tree")
		if len(got) != len(serial) {
			t.Fatalf("par=%d emitted %d entries, serial %d", par, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("par=%d entry %d = %q, serial has %q", par, i, got[i], serial[i])
			}
		}
	}
}

// TestWalkParallelSkipDir prunes subtrees mid-parallel-walk and asserts no
// pruned entry is emitted and order is preserved for the rest.
func TestWalkParallelSkipDir(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, WalkParallelism: 8})
	e.startServer(t, dpm1, httpserv.Options{})
	buildRandomTree(t, e, 7)

	var kept []string
	err := e.client.Walk(context.Background(), dpm1, "/tree", func(inf Info) error {
		if inf.Dir && inf.Path != "/tree" && inf.Path[len(inf.Path)-2:] == "d0" {
			return SkipDir
		}
		kept = append(kept, inf.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range kept {
		for i := 0; i+2 < len(p); i++ {
			if p[i:i+3] == "d0/" {
				t.Fatalf("entry under pruned subtree emitted: %q", p)
			}
		}
	}
}

// TestWalkParallelAbortsOnError: an fn error must stop the walk at exactly
// the serial position; nothing after it is emitted.
func TestWalkParallelAbortsOnError(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, WalkParallelism: 8})
	e.startServer(t, dpm1, httpserv.Options{})
	buildRandomTree(t, e, 11)

	serial := collectWalk(t, e, 1, "/tree")
	boom := errors.New("boom")
	stopAt := len(serial) / 2
	var seen []string
	err := e.client.Walk(context.Background(), dpm1, "/tree", func(inf Info) error {
		if len(seen) == stopAt {
			return boom
		}
		seen = append(seen, inf.Path)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(seen) != stopAt {
		t.Fatalf("emitted %d entries after abort at %d", len(seen), stopAt)
	}
	for i := range seen {
		if seen[i] != serial[i] {
			t.Fatalf("entry %d = %q before abort, serial has %q", i, seen[i], serial[i])
		}
	}
}

// TestWalkMidWalkCancellation cancels the context from inside fn; the walk
// must return the context error and the fleet must wind down without
// panics or leaked emissions.
func TestWalkMidWalkCancellation(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, WalkParallelism: 8})
	e.startServer(t, dpm1, httpserv.Options{})
	buildRandomTree(t, e, 23)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	count := 0
	err := e.client.Walk(ctx, dpm1, "/tree", func(inf Info) error {
		count++
		if count == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count < 5 {
		t.Fatalf("cancelled too early: %d emissions", count)
	}
}

// TestWalkPrimesStatCache: after a Walk with StatTTL enabled, stat-ing
// every visited entry must not send a single additional request — the
// PROPFIND results already primed the metadata cache.
func TestWalkPrimesStatCache(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, StatTTL: time.Minute})
	e.startServer(t, dpm1, httpserv.Options{})
	buildTree(t, e)

	ctx := context.Background()
	var infos []Info
	err := e.client.Walk(ctx, dpm1, "/data", func(inf Info) error {
		infos = append(infos, inf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	before := e.srvs[dpm1].Requests()
	for _, inf := range infos {
		got, err := e.client.Stat(ctx, dpm1, inf.Path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dir != inf.Dir || got.Size != inf.Size {
			t.Fatalf("stat %s = %+v, walk saw %+v", inf.Path, got, inf)
		}
	}
	if after := e.srvs[dpm1].Requests(); after != before {
		t.Fatalf("stat storm sent %d requests; cache not primed", after-before)
	}
	if hits, _ := e.client.statc.Counters(); hits < int64(len(infos)) {
		t.Fatalf("stat cache hits = %d, want >= %d", hits, len(infos))
	}
}

// TestWalkSpeculationBounded: the engine must not expand the whole
// namespace ahead of a slow consumer — goroutines (a proxy for retained
// listings) stay bounded by the speculation window, not the tree size.
func TestWalkSpeculationBounded(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, WalkParallelism: 2})
	e.startServer(t, dpm1, httpserv.Options{})
	st := e.stores[dpm1]
	mkdirAll(t, e, "/wide")
	const dirs = 300
	for i := 0; i < dirs; i++ {
		if err := st.Mkdir(fmt.Sprintf("/wide/d%03d", i)); err != nil {
			t.Fatal(err)
		}
		st.Put(fmt.Sprintf("/wide/d%03d/f", i), []byte("x"))
	}

	base := runtime.NumGoroutine()
	peak := 0
	count := 0
	err := e.client.Walk(context.Background(), dpm1, "/wide", func(inf Info) error {
		count++
		if count%20 == 0 {
			// Give speculation time to run as far ahead as it ever will.
			time.Sleep(2 * time.Millisecond)
			if g := runtime.NumGoroutine(); g > peak {
				peak = g
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1+2*dirs {
		t.Fatalf("emitted %d entries", count)
	}
	// Unbounded speculation would park one goroutine per directory (~300+
	// above base). The ticket window for parallelism 2 allows 8 speculated
	// nodes plus per-connection server goroutines; 100 is a generous bound
	// that still fails an O(tree) regression.
	if peak > base+100 {
		t.Fatalf("goroutines peaked at %d (base %d): speculation not bounded", peak, base)
	}
}

// TestWalkSkipDirCancelsInFlight: pruning a huge subtree must cancel its
// speculative listings — the server must see far fewer PROPFINDs than the
// subtree holds.
func TestWalkSkipDirCancelsInFlight(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone, WalkParallelism: 2})
	e.startServer(t, dpm1, httpserv.Options{})
	st := e.stores[dpm1]
	// /slow/pruned holds 64 subdirectories; /slow/z* entries come after.
	mkdirAll(t, e, "/slow/pruned")
	for i := 0; i < 64; i++ {
		if err := st.Mkdir(fmt.Sprintf("/slow/pruned/sub%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Put("/slow/zfile", []byte("z"))
	// Slow every PROPFIND down so pruning lands while listings are queued.
	e.srvs[dpm1].SetFault("*", httpserv.Fault{Delay: 2 * time.Millisecond})

	err := e.client.Walk(context.Background(), dpm1, "/slow", func(inf Info) error {
		if inf.Path == "/slow/pruned" {
			return SkipDir
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Serial semantics: /slow, /slow/pruned (pruned), /slow/zfile. The
	// speculative engine may have started some of the 64 subtree listings
	// before the prune, but must not run all of them to completion.
	if pf := e.srvs[dpm1].RequestsByMethod("PROPFIND"); pf > 40 {
		t.Fatalf("server saw %d PROPFINDs despite pruning a 64-dir subtree", pf)
	}
}
