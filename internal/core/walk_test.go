package core

import (
	"context"
	"errors"
	"testing"

	"godavix/internal/httpserv"
)

func buildTree(t *testing.T, e *testEnv) {
	t.Helper()
	st := e.stores[dpm1]
	st.Put("/data/run1/a.rnt", []byte("aa"))
	st.Put("/data/run1/b.rnt", []byte("bbb"))
	st.Put("/data/run2/c.rnt", []byte("c"))
	st.Put("/data/readme", []byte("r"))
}

func TestWalkVisitsEverything(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	buildTree(t, e)

	var paths []string
	err := e.client.Walk(context.Background(), dpm1, "/data", func(inf Info) error {
		paths = append(paths, inf.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"/data",
		"/data/readme",
		"/data/run1",
		"/data/run1/a.rnt",
		"/data/run1/b.rnt",
		"/data/run2",
		"/data/run2/c.rnt",
	}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths[%d] = %q, want %q (all: %v)", i, paths[i], want[i], paths)
		}
	}
}

func TestWalkSkipDir(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	buildTree(t, e)

	var paths []string
	err := e.client.Walk(context.Background(), dpm1, "/data", func(inf Info) error {
		if inf.Path == "/data/run1" {
			return SkipDir
		}
		paths = append(paths, inf.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if p == "/data/run1/a.rnt" || p == "/data/run1/b.rnt" {
			t.Fatalf("descended into skipped dir: %v", paths)
		}
	}
}

func TestWalkAbortsOnError(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	buildTree(t, e)

	boom := errors.New("boom")
	count := 0
	err := e.client.Walk(context.Background(), dpm1, "/data", func(inf Info) error {
		count++
		if count == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if count != 2 {
		t.Fatalf("visited %d entries after abort", count)
	}
}

func TestWalkSingleFile(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	e.stores[dpm1].Put("/lonely", []byte("x"))

	var paths []string
	err := e.client.Walk(context.Background(), dpm1, "/lonely", func(inf Info) error {
		paths = append(paths, inf.Path)
		return nil
	})
	if err != nil || len(paths) != 1 || paths[0] != "/lonely" {
		t.Fatalf("paths = %v err = %v", paths, err)
	}
}

func TestWalkMissingRoot(t *testing.T) {
	e := newEnv(t, Options{Strategy: StrategyNone})
	e.startServer(t, dpm1, httpserv.Options{})
	err := e.client.Walk(context.Background(), dpm1, "/ghost", func(Info) error { return nil })
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}
