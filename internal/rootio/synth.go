package rootio

import (
	"bytes"
	"encoding/binary"
	"math/rand"
)

// SynthSpec describes a synthetic HEP-like dataset, standing in for the
// paper's 700 MB ROOT file with ~12000 particle events. Branch payload
// sizes follow a simple two-population model: a few wide branches (jet
// collections) and many narrow ones (scalars), matching the scattered
// small-read pattern of real TTrees.
type SynthSpec struct {
	// Events is the number of events (paper: ~12000).
	Events int
	// Branches is the number of columns (default 12).
	Branches int
	// MeanPayload is the average per-branch payload in bytes (default 512).
	MeanPayload int
	// EventsPerBasket groups events into baskets (default 256).
	EventsPerBasket int
	// Seed makes generation reproducible.
	Seed int64
}

func (s SynthSpec) withDefaults() SynthSpec {
	if s.Events == 0 {
		s.Events = 12000
	}
	if s.Branches == 0 {
		s.Branches = 12
	}
	if s.MeanPayload == 0 {
		s.MeanPayload = 512
	}
	if s.EventsPerBasket == 0 {
		s.EventsPerBasket = 256
	}
	return s
}

// BranchNames returns the synthetic branch names for the spec.
func (s SynthSpec) BranchNames() []string {
	s = s.withDefaults()
	names := make([]string, s.Branches)
	base := []string{"px", "py", "pz", "E", "charge", "nHits", "jets", "tracks", "muons", "electrons", "met", "vertex"}
	for i := range names {
		if i < len(base) {
			names[i] = base[i]
		} else {
			names[i] = "branch" + string(rune('A'+i-len(base)))
		}
	}
	return names
}

// Synthesize produces a complete RNT file image for the spec. The payload
// bytes mix structured counters with pseudo-random data so zlib achieves a
// realistic (partial) compression ratio.
func Synthesize(spec SynthSpec) ([]byte, error) {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	var buf bytes.Buffer
	w, err := NewWriter(&buf, spec.BranchNames(), WriterOptions{EventsPerBasket: spec.EventsPerBasket})
	if err != nil {
		return nil, err
	}

	values := make([][]byte, spec.Branches)
	for ev := 0; ev < spec.Events; ev++ {
		for bi := range values {
			values[bi] = synthPayload(rng, ev, bi, spec.MeanPayload)
		}
		if err := w.WriteEvent(values); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// synthPayload builds one event/branch payload. Branch 0..2 are "wide"
// (collections, ~4x mean, variable); the rest are narrow scalars.
func synthPayload(rng *rand.Rand, ev, branch, mean int) []byte {
	size := mean / 2
	if branch < 3 {
		size = mean*2 + rng.Intn(mean*4)
	} else {
		size += rng.Intn(mean)
	}
	if size < 8 {
		size = 8
	}
	p := make([]byte, size)
	binary.BigEndian.PutUint32(p[0:4], uint32(ev))
	binary.BigEndian.PutUint32(p[4:8], uint32(branch))
	// Half structured (compressible), half random (incompressible).
	for i := 8; i < size/2; i++ {
		p[i] = byte(i % 17)
	}
	rng.Read(p[size/2:])
	return p
}

// VerifyPayload checks that a payload read back carries the expected
// event/branch tag — a cheap end-to-end integrity probe used by the
// analysis examples and benches.
func VerifyPayload(p []byte, ev uint64, branch int) bool {
	if len(p) < 8 {
		return false
	}
	return binary.BigEndian.Uint32(p[0:4]) == uint32(ev) &&
		binary.BigEndian.Uint32(p[4:8]) == uint32(branch)
}
