package rootio

import (
	"fmt"
	"sort"
)

// TrainingCache reproduces the ROOT TTreeCache learning phase: for the
// first trainEvents events, per-branch reads are served on demand while
// the cache records which branches the analysis actually touches. After
// training it switches to a TreeCache restricted to the observed branch
// set, so the vectored fills transfer only the columns the analysis needs
// — typically a small fraction of the file.
//
// A branch first touched after training triggers a transparent retrain
// (the new branch joins the set and the windowed cache is rebuilt), so
// correctness never depends on the training window being representative.
// The rebuild hands the widened branch set to the prefetch pipeline and
// cancels any fills in flight for the stale set.
type TrainingCache struct {
	reader      *Reader
	window      uint64
	trainEvents uint64
	depth       int

	used    map[int]bool
	trained bool
	tc      *TreeCache
	pos     map[int]int // branch index -> position in tc.branches

	retrains int
}

// NewTrainingCache creates a TrainingCache over r. trainEvents bounds the
// learning phase (0 selects 100, ROOT's entry-range default spirit);
// windowEvents is the post-training TreeCache window. The prefetch depth
// is the TreeCache automatic default.
func NewTrainingCache(r *Reader, trainEvents, windowEvents uint64) *TrainingCache {
	return NewTrainingCacheDepth(r, trainEvents, windowEvents, -1)
}

// NewTrainingCacheDepth is NewTrainingCache with an explicit prefetch
// depth for the post-training window pipeline (see NewTreeCacheDepth).
func NewTrainingCacheDepth(r *Reader, trainEvents, windowEvents uint64, depth int) *TrainingCache {
	if trainEvents == 0 {
		trainEvents = 100
	}
	return &TrainingCache{
		reader:      r,
		window:      windowEvents,
		trainEvents: trainEvents,
		depth:       depth,
		used:        make(map[int]bool),
	}
}

// UsedBranches returns the branch positions learned so far, sorted.
func (t *TrainingCache) UsedBranches() []int {
	out := make([]int, 0, len(t.used))
	for bi := range t.used {
		out = append(out, bi)
	}
	sort.Ints(out)
	return out
}

// Trained reports whether the learning phase has finished.
func (t *TrainingCache) Trained() bool { return t.trained }

// Retrains counts how many times a post-training branch miss forced a
// cache rebuild.
func (t *TrainingCache) Retrains() int { return t.retrains }

// Branch returns branch bi of event ev. During training it reads on
// demand and records usage; afterwards it serves from the windowed
// vectored cache.
func (t *TrainingCache) Branch(ev uint64, bi int) ([]byte, error) {
	if bi < 0 || bi >= len(t.reader.idx.Branches) {
		return nil, fmt.Errorf("rootio: branch %d out of range", bi)
	}
	if !t.trained {
		t.used[bi] = true
		// Batch the demand reads: one vectored fetch brings this event's
		// basket for every branch learned so far (already-decoded baskets
		// are skipped by loadBaskets), instead of a one-branch round trip
		// per Branch call — O(events) fetches during training instead of
		// O(events × branches).
		keys := make([]basketKey, 0, len(t.used))
		for _, ubi := range t.UsedBranches() {
			bk, err := t.reader.basketFor(ubi, ev)
			if err != nil {
				return nil, err
			}
			keys = append(keys, basketKey{branch: ubi, basket: bk})
		}
		if err := t.reader.loadBaskets(keys); err != nil {
			return nil, err
		}
		vals, err := t.reader.ReadEvent(ev, []int{bi})
		if err != nil {
			return nil, err
		}
		if ev+1 >= t.trainEvents {
			t.finishTraining()
		}
		return vals[0], nil
	}
	if !t.used[bi] {
		// Late branch discovery: widen the set and rebuild.
		t.used[bi] = true
		t.retrains++
		t.rebuild()
	}
	vals, err := t.tc.Event(ev)
	if err != nil {
		return nil, err
	}
	if i, ok := t.pos[bi]; ok {
		return vals[i], nil
	}
	return nil, fmt.Errorf("rootio: branch %d missing from trained set", bi)
}

func (t *TrainingCache) finishTraining() {
	t.trained = true
	t.rebuild()
}

func (t *TrainingCache) rebuild() {
	if t.tc != nil {
		t.tc.Close() // cancels fills in flight for the stale branch set
	}
	t.reader.DropCache()
	t.tc = NewTreeCacheDepth(t.reader, t.window, t.UsedBranches(), t.depth)
	t.pos = make(map[int]int, len(t.tc.branches))
	for i, ubi := range t.tc.branches {
		t.pos[ubi] = i
	}
}

// Fills reports the vectored fill count of the post-training cache.
func (t *TrainingCache) Fills() int64 {
	if t.tc == nil {
		return 0
	}
	return t.tc.Fills()
}

// PrefetchStats reports the post-training pipeline's speculation
// accounting (see TreeCache.PrefetchStats).
func (t *TrainingCache) PrefetchStats() (issued, wasted, cancelled int64) {
	if t.tc == nil {
		return 0, 0, 0
	}
	return t.tc.PrefetchStats()
}

// Close releases the underlying TreeCache.
func (t *TrainingCache) Close() {
	if t.tc != nil {
		t.tc.Close()
	}
}
