package rootio

import (
	"fmt"
	"sort"
)

// TrainingCache reproduces the ROOT TTreeCache learning phase: for the
// first trainEvents events, per-branch reads are served on demand while
// the cache records which branches the analysis actually touches. After
// training it switches to a TreeCache restricted to the observed branch
// set, so the vectored fills transfer only the columns the analysis needs
// — typically a small fraction of the file.
//
// A branch first touched after training triggers a transparent retrain
// (the new branch joins the set and the windowed cache is rebuilt), so
// correctness never depends on the training window being representative.
type TrainingCache struct {
	reader      *Reader
	window      uint64
	trainEvents uint64

	used    map[int]bool
	trained bool
	tc      *TreeCache

	retrains int
}

// NewTrainingCache creates a TrainingCache over r. trainEvents bounds the
// learning phase (0 selects 100, ROOT's entry-range default spirit);
// windowEvents is the post-training TreeCache window.
func NewTrainingCache(r *Reader, trainEvents, windowEvents uint64) *TrainingCache {
	if trainEvents == 0 {
		trainEvents = 100
	}
	return &TrainingCache{
		reader:      r,
		window:      windowEvents,
		trainEvents: trainEvents,
		used:        make(map[int]bool),
	}
}

// UsedBranches returns the branch positions learned so far, sorted.
func (t *TrainingCache) UsedBranches() []int {
	out := make([]int, 0, len(t.used))
	for bi := range t.used {
		out = append(out, bi)
	}
	sort.Ints(out)
	return out
}

// Trained reports whether the learning phase has finished.
func (t *TrainingCache) Trained() bool { return t.trained }

// Retrains counts how many times a post-training branch miss forced a
// cache rebuild.
func (t *TrainingCache) Retrains() int { return t.retrains }

// Branch returns branch bi of event ev. During training it reads on
// demand and records usage; afterwards it serves from the windowed
// vectored cache.
func (t *TrainingCache) Branch(ev uint64, bi int) ([]byte, error) {
	if bi < 0 || bi >= len(t.reader.idx.Branches) {
		return nil, fmt.Errorf("rootio: branch %d out of range", bi)
	}
	if !t.trained {
		t.used[bi] = true
		if ev+1 >= t.trainEvents {
			t.finishTraining()
		}
		vals, err := t.reader.ReadEvent(ev, []int{bi})
		if err != nil {
			return nil, err
		}
		return vals[0], nil
	}
	if !t.used[bi] {
		// Late branch discovery: widen the set and rebuild.
		t.used[bi] = true
		t.retrains++
		t.rebuild()
	}
	vals, err := t.tc.Event(ev)
	if err != nil {
		return nil, err
	}
	// tc serves branches in UsedBranches() order; locate bi.
	for i, ubi := range t.tc.branches {
		if ubi == bi {
			return vals[i], nil
		}
	}
	return nil, fmt.Errorf("rootio: branch %d missing from trained set", bi)
}

func (t *TrainingCache) finishTraining() {
	t.trained = true
	t.rebuild()
}

func (t *TrainingCache) rebuild() {
	if t.tc != nil {
		t.tc.Close()
	}
	t.reader.DropCache()
	t.tc = NewTreeCache(t.reader, t.window, t.UsedBranches())
}

// Fills reports the vectored fill count of the post-training cache.
func (t *TrainingCache) Fills() int64 {
	if t.tc == nil {
		return 0
	}
	return t.tc.Fills()
}

// Close releases the underlying TreeCache.
func (t *TrainingCache) Close() {
	if t.tc != nil {
		t.tc.Close()
	}
}
