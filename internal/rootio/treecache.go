package rootio

import (
	"context"
	"fmt"
	"sort"

	"godavix/internal/rangev"
)

// TreeCache gathers the baskets needed by the next window of events into a
// single vectored read — the TTreeCache role in the paper's Figure 3. The
// davix path turns the gathered request into one HTTP multi-range query;
// the xrootd path into one readv.
//
// With a prefetch depth D > 0 the cache runs the windows as a pipeline:
// while the reader processes window W, the fills for windows W+1..W+D are
// already in flight as background coalesced vectored reads, so transfer
// overlaps decode/compute exactly like the xrootd async path. A depth of 0
// is the synchronous cache of the paper's HTTP column: every fill is one
// blocking round trip, byte-for-byte the legacy behaviour.
type TreeCache struct {
	reader   *Reader
	branches []int
	window   uint64 // events per fill
	depth    int    // windows prefetched ahead; 0 = synchronous fills

	curStart uint64 // first event of the filled window; curStart==^0 when none
	fills    int64

	// pending holds the in-flight speculative fills for windows after the
	// current one, in ascending window order.
	pending []*pendingFill

	// Speculation accounting: issued counts compressed bytes requested by
	// pipelined (non-demand) fills, wasted the issued bytes discarded
	// before any event consumed them, cancelled the fills cut mid-flight
	// by a pattern jump, a retrain rebuild, or Close.
	issuedBytes    int64
	wastedBytes    int64
	cancelledFills int64
}

// pendingFill is an in-flight asynchronous window fetch.
type pendingFill struct {
	start uint64
	keys  []basketKey
	dsts  [][]byte // per-key views, aligned with keys
	bytes int64
	done  <-chan error
	// cancel aborts the underlying fetch when the window is retired before
	// its fill is consumed (nil for fills on non-cancellable sources).
	cancel context.CancelFunc
}

// NewTreeCache creates a TreeCache over r reading the given branch
// positions (nil = all branches) with the given window size in events
// (0 selects 1000). The prefetch depth is automatic: one window ahead when
// the Source provides an asynchronous vectored read, zero (synchronous)
// otherwise — the legacy behaviour. Use NewTreeCacheDepth to pipeline
// deeper.
func NewTreeCache(r *Reader, windowEvents uint64, branches []int) *TreeCache {
	return NewTreeCacheDepth(r, windowEvents, branches, -1)
}

// NewTreeCacheDepth creates a TreeCache with an explicit prefetch depth:
// the number of windows beyond the current one kept in flight. Depth 0
// disables speculation entirely — fills are synchronous and byte-identical
// to the legacy TreeCache. A negative depth selects the automatic default
// (1 with an asynchronous source, else 0). A positive depth needs the
// Source to support asynchronous or hinted prefetch; without either it
// degrades to 0.
func NewTreeCacheDepth(r *Reader, windowEvents uint64, branches []int, depth int) *TreeCache {
	if windowEvents == 0 {
		windowEvents = 1000
	}
	if branches == nil {
		branches = make([]int, len(r.idx.Branches))
		for i := range branches {
			branches[i] = i
		}
	}
	async := r.src.ReadVecAsyncCtx != nil || r.src.ReadVecAsync != nil
	if depth < 0 {
		if async {
			depth = 1
		} else {
			depth = 0
		}
	}
	if depth > 0 && !async && r.src.Hint == nil {
		depth = 0
	}
	return &TreeCache{
		reader:   r,
		branches: branches,
		window:   windowEvents,
		depth:    depth,
		curStart: ^uint64(0),
	}
}

// Fills reports how many window fetches have been issued (each is one
// network round trip on the davix path).
func (tc *TreeCache) Fills() int64 { return tc.fills }

// Depth reports the effective prefetch depth.
func (tc *TreeCache) Depth() int { return tc.depth }

// PrefetchStats reports the speculation accounting: compressed bytes
// issued by pipelined window fills, issued bytes discarded before any
// event consumed them, and fills cancelled mid-flight.
func (tc *TreeCache) PrefetchStats() (issued, wasted, cancelled int64) {
	return tc.issuedBytes, tc.wastedBytes, tc.cancelledFills
}

// windowKeys computes the basket set covering events [start, start+window).
func (tc *TreeCache) windowKeys(start uint64) ([]basketKey, error) {
	end := start + tc.window
	if end > tc.reader.idx.Events {
		end = tc.reader.idx.Events
	}
	var keys []basketKey
	for _, bi := range tc.branches {
		first, err := tc.reader.basketFor(bi, start)
		if err != nil {
			return nil, err
		}
		last, err := tc.reader.basketFor(bi, end-1)
		if err != nil {
			return nil, err
		}
		for bk := first; bk <= last; bk++ {
			keys = append(keys, basketKey{branch: bi, basket: bk})
		}
	}
	return keys, nil
}

// startFillSync fetches the window at start with one blocking vectored
// read, one range per basket — the legacy synchronous fill, preserved
// byte-for-byte for depth 0.
func (tc *TreeCache) startFillSync(start uint64) (*pendingFill, error) {
	keys, err := tc.windowKeys(start)
	if err != nil {
		return nil, err
	}
	ranges := make([]rangev.Range, len(keys))
	dsts := make([][]byte, len(keys))
	var total int64
	for i, k := range keys {
		b := tc.reader.idx.Branches[k.branch].Baskets[k.basket]
		ranges[i] = rangev.Range{Off: b.Offset, Len: b.CompressedSize}
		dsts[i] = make([]byte, b.CompressedSize)
		total += b.CompressedSize
	}
	tc.fills++
	pf := &pendingFill{start: start, keys: keys, dsts: dsts, bytes: total}
	ch := make(chan error, 1)
	ch <- tc.reader.src.ReadVec(ranges, dsts)
	pf.done = ch
	return pf, nil
}

// coalesceFill lays the window's baskets out as merged read ranges:
// baskets adjacent on disk share one contiguous buffer (and thus one range
// of the vectored request), and each basket's destination is a view into
// its run buffer — no second copy when the fill lands.
func coalesceFill(r *Reader, keys []basketKey) (ranges []rangev.Range, runDsts [][]byte, perKey [][]byte, total int64) {
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ba := r.idx.Branches[keys[order[a]].branch].Baskets[keys[order[a]].basket]
		bb := r.idx.Branches[keys[order[b]].branch].Baskets[keys[order[b]].basket]
		return ba.Offset < bb.Offset
	})
	perKey = make([][]byte, len(keys))
	type run struct {
		off, ln int64
		members []int // key indices in disk order
	}
	var runs []run
	for _, ki := range order {
		b := r.idx.Branches[keys[ki].branch].Baskets[keys[ki].basket]
		total += b.CompressedSize
		if n := len(runs); n > 0 && runs[n-1].off+runs[n-1].ln == b.Offset {
			runs[n-1].ln += b.CompressedSize
			runs[n-1].members = append(runs[n-1].members, ki)
			continue
		}
		runs = append(runs, run{off: b.Offset, ln: b.CompressedSize, members: []int{ki}})
	}
	ranges = make([]rangev.Range, len(runs))
	runDsts = make([][]byte, len(runs))
	for i, ru := range runs {
		buf := make([]byte, ru.ln)
		ranges[i] = rangev.Range{Off: ru.off, Len: ru.ln}
		runDsts[i] = buf
		var at int64
		for _, ki := range ru.members {
			b := r.idx.Branches[keys[ki].branch].Baskets[keys[ki].basket]
			perKey[ki] = buf[at : at+b.CompressedSize]
			at += b.CompressedSize
		}
	}
	return ranges, runDsts, perKey, total
}

// startFillAsync begins fetching the window at start in the background,
// with adjacent basket ranges merged into contiguous reads and a cancel
// handle for retiring the window before the fill lands.
func (tc *TreeCache) startFillAsync(start uint64) (*pendingFill, error) {
	keys, err := tc.windowKeys(start)
	if err != nil {
		return nil, err
	}
	ranges, runDsts, perKey, total := coalesceFill(tc.reader, keys)
	tc.fills++
	pf := &pendingFill{start: start, keys: keys, dsts: perKey, bytes: total}
	if tc.reader.src.ReadVecAsyncCtx != nil {
		ctx, cancel := context.WithCancel(context.Background())
		pf.cancel = cancel
		pf.done = tc.reader.src.ReadVecAsyncCtx(ctx, ranges, runDsts)
	} else {
		pf.done = tc.reader.src.ReadVecAsync(ranges, runDsts)
	}
	return pf, nil
}

// finishFill waits for pf and decodes its baskets into the reader cache.
func (tc *TreeCache) finishFill(pf *pendingFill) error {
	if err := <-pf.done; err != nil {
		return err
	}
	return tc.reader.decodeInto(pf.keys, pf.dsts)
}

// discard retires an unconsumed speculative fill: the fetch is cancelled
// (when the source allows it) and its bytes are booked as waste.
func (tc *TreeCache) discard(pf *pendingFill) {
	if pf.cancel != nil {
		pf.cancel()
	}
	tc.cancelledFills++
	tc.wastedBytes += pf.bytes
}

// Event returns the selected branches' payloads for event ev. Sequential
// iteration is the optimized path: entering a new window consumes its
// pipelined fill (or triggers one vectored fetch) and tops the pipeline
// back up to the configured depth.
func (tc *TreeCache) Event(ev uint64) ([][]byte, error) {
	if ev >= tc.reader.idx.Events {
		return nil, fmt.Errorf("rootio: event %d out of range", ev)
	}
	ws := ev - ev%tc.window
	if tc.curStart != ws {
		if err := tc.enterWindow(ws); err != nil {
			return nil, err
		}
	}
	return tc.reader.ReadEvent(ev, tc.branches)
}

// enterWindow makes ws the current window: uses the matching pipelined
// fill when one is in flight, cancels fills the access pattern jumped
// away from, tops the pipeline back up, then awaits and decodes ws.
func (tc *TreeCache) enterWindow(ws uint64) error {
	// Evict the previous window's decoded baskets to bound memory.
	tc.reader.DropCache()

	// Partition the in-flight fills: the one for ws is consumed, fills
	// still inside the new lookahead stay, everything else was a pattern
	// jump and is cancelled mid-flight.
	var cur *pendingFill
	horizon := ws + tc.window*uint64(tc.depth)
	keep := tc.pending[:0]
	for _, pf := range tc.pending {
		switch {
		case pf.start == ws:
			cur = pf
		case pf.start > ws && pf.start <= horizon:
			keep = append(keep, pf)
		default:
			tc.discard(pf)
		}
	}
	tc.pending = keep

	var err error
	if cur == nil {
		if tc.depth > 0 && tc.asyncCapable() {
			cur, err = tc.startFillAsync(ws)
		} else {
			cur, err = tc.startFillSync(ws)
		}
		if err != nil {
			return err
		}
	} else {
		tc.consumeIssued(cur)
	}

	// Overlap: top the pipeline back up before decoding this window, so
	// the next windows' transfers ride under this window's compute.
	tc.topUp(ws)

	if err := tc.finishFill(cur); err != nil {
		return err
	}
	tc.curStart = ws
	return nil
}

// consumeIssued marks a speculative fill as consumed (its bytes were not
// wasted). Bytes are booked at issue time; nothing to do beyond the hook
// point, kept for symmetry and future accounting.
func (tc *TreeCache) consumeIssued(*pendingFill) {}

// asyncCapable reports whether the source supports background fills.
func (tc *TreeCache) asyncCapable() bool {
	return tc.reader.src.ReadVecAsyncCtx != nil || tc.reader.src.ReadVecAsync != nil
}

// topUp issues speculative fills (or layout hints) for the windows
// following ws until the pipeline holds depth windows.
func (tc *TreeCache) topUp(ws uint64) {
	if tc.depth <= 0 {
		return
	}
	async := tc.asyncCapable()
	var hinted []rangev.Range
	for d := 1; d <= tc.depth; d++ {
		nxt := ws + tc.window*uint64(d)
		if nxt >= tc.reader.idx.Events {
			break
		}
		if tc.pendingFor(nxt) != nil {
			continue
		}
		if async {
			pf, err := tc.startFillAsync(nxt)
			if err != nil {
				return // demand fill will surface the problem when reached
			}
			tc.issuedBytes += pf.bytes
			tc.pending = append(tc.pending, pf)
			continue
		}
		// Hint-only source: hand the upcoming basket layout to the
		// planner-backed read-ahead instead of fetching ourselves.
		keys, err := tc.windowKeys(nxt)
		if err != nil {
			return
		}
		for _, k := range keys {
			b := tc.reader.idx.Branches[k.branch].Baskets[k.basket]
			hinted = append(hinted, rangev.Range{Off: b.Offset, Len: b.CompressedSize})
		}
	}
	if len(hinted) > 0 && tc.reader.src.Hint != nil {
		tc.reader.src.Hint(hinted)
	}
}

// pendingFor returns the in-flight fill for the window at start, if any.
func (tc *TreeCache) pendingFor(start uint64) *pendingFill {
	for _, pf := range tc.pending {
		if pf.start == start {
			return pf
		}
	}
	return nil
}

// Close abandons and cancels any in-flight prefetch.
func (tc *TreeCache) Close() {
	for _, pf := range tc.pending {
		tc.discard(pf)
	}
	tc.pending = nil
}
