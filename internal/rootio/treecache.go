package rootio

import (
	"fmt"

	"godavix/internal/rangev"
)

// TreeCache gathers the baskets needed by the next window of events into a
// single vectored read — the TTreeCache role in the paper's Figure 3. The
// davix path turns the gathered request into one HTTP multi-range query;
// the xrootd path into one readv. When the Source supports asynchronous
// vectored reads, the next window is prefetched while the current one is
// being processed (double buffering), which hides the round-trip latency
// on high-RTT links.
type TreeCache struct {
	reader   *Reader
	branches []int
	window   uint64 // events per fill
	prefetch bool

	curStart uint64 // first event of the filled window; curStart==^0 when none
	fills    int64

	next *pendingFill
}

// pendingFill is an in-flight asynchronous window fetch.
type pendingFill struct {
	start uint64
	keys  []basketKey
	dsts  [][]byte
	done  <-chan error
}

// NewTreeCache creates a TreeCache over r reading the given branch
// positions (nil = all branches) with the given window size in events
// (0 selects 1000). Prefetching activates automatically when the Source
// provides ReadVecAsync.
func NewTreeCache(r *Reader, windowEvents uint64, branches []int) *TreeCache {
	if windowEvents == 0 {
		windowEvents = 1000
	}
	if branches == nil {
		branches = make([]int, len(r.idx.Branches))
		for i := range branches {
			branches[i] = i
		}
	}
	return &TreeCache{
		reader:   r,
		branches: branches,
		window:   windowEvents,
		prefetch: r.src.ReadVecAsync != nil,
		curStart: ^uint64(0),
	}
}

// Fills reports how many window fetches have been issued (each is one
// network round trip on the davix path).
func (tc *TreeCache) Fills() int64 { return tc.fills }

// windowKeys computes the basket set covering events [start, start+window).
func (tc *TreeCache) windowKeys(start uint64) ([]basketKey, error) {
	end := start + tc.window
	if end > tc.reader.idx.Events {
		end = tc.reader.idx.Events
	}
	var keys []basketKey
	for _, bi := range tc.branches {
		first, err := tc.reader.basketFor(bi, start)
		if err != nil {
			return nil, err
		}
		last, err := tc.reader.basketFor(bi, end-1)
		if err != nil {
			return nil, err
		}
		for bk := first; bk <= last; bk++ {
			keys = append(keys, basketKey{branch: bi, basket: bk})
		}
	}
	return keys, nil
}

// startFill begins fetching the window at start, asynchronously when the
// source allows it.
func (tc *TreeCache) startFill(start uint64) (*pendingFill, error) {
	keys, err := tc.windowKeys(start)
	if err != nil {
		return nil, err
	}
	ranges := make([]rangev.Range, len(keys))
	dsts := make([][]byte, len(keys))
	for i, k := range keys {
		b := tc.reader.idx.Branches[k.branch].Baskets[k.basket]
		ranges[i] = rangev.Range{Off: b.Offset, Len: b.CompressedSize}
		dsts[i] = make([]byte, b.CompressedSize)
	}
	tc.fills++
	pf := &pendingFill{start: start, keys: keys, dsts: dsts}
	if tc.prefetch {
		pf.done = tc.reader.src.ReadVecAsync(ranges, dsts)
		return pf, nil
	}
	ch := make(chan error, 1)
	ch <- tc.reader.src.ReadVec(ranges, dsts)
	pf.done = ch
	return pf, nil
}

// finishFill waits for pf and decodes its baskets into the reader cache.
func (tc *TreeCache) finishFill(pf *pendingFill) error {
	if err := <-pf.done; err != nil {
		return err
	}
	return tc.reader.decodeInto(pf.keys, pf.dsts)
}

// Event returns the selected branches' payloads for event ev. Sequential
// iteration is the optimized path: entering a new window triggers one
// vectored fill and (with prefetch) the asynchronous fill of the window
// after it.
func (tc *TreeCache) Event(ev uint64) ([][]byte, error) {
	if ev >= tc.reader.idx.Events {
		return nil, fmt.Errorf("rootio: event %d out of range", ev)
	}
	ws := ev - ev%tc.window
	if tc.curStart != ws {
		if err := tc.enterWindow(ws); err != nil {
			return nil, err
		}
	}
	return tc.reader.ReadEvent(ev, tc.branches)
}

// enterWindow makes ws the current window: uses the prefetched fill when it
// matches, otherwise fetches synchronously; then kicks off the next
// window's prefetch.
func (tc *TreeCache) enterWindow(ws uint64) error {
	// Evict the previous window's decoded baskets to bound memory.
	tc.reader.DropCache()

	var cur *pendingFill
	if tc.next != nil && tc.next.start == ws {
		cur = tc.next
		tc.next = nil
	} else {
		// Discard a mismatched prefetch (random access pattern).
		if tc.next != nil {
			<-tc.next.done
			tc.next = nil
		}
		pf, err := tc.startFill(ws)
		if err != nil {
			return err
		}
		cur = pf
	}

	// Overlap: start fetching the next window before decoding this one.
	if tc.prefetch {
		if nxt := ws + tc.window; nxt < tc.reader.idx.Events {
			pf, err := tc.startFill(nxt)
			if err == nil {
				tc.next = pf
			}
		}
	}

	if err := tc.finishFill(cur); err != nil {
		return err
	}
	tc.curStart = ws
	return nil
}

// Close abandons any in-flight prefetch.
func (tc *TreeCache) Close() {
	if tc.next != nil {
		<-tc.next.done
		tc.next = nil
	}
}
