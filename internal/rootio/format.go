// Package rootio implements "RNT", a ROOT-inspired columnar event-file
// format, plus the TreeCache read-ahead machinery of the paper's Figure 3.
//
// A HEP dataset is a sequence of events; each event has one payload per
// branch (column). Payloads are grouped per branch into baskets of
// consecutive events, and each basket is zlib-compressed and written
// contiguously. Reading a subset of events for a subset of branches
// therefore touches many small scattered byte ranges — exactly the access
// pattern that motivates davix's vectored multi-range I/O.
//
// Layout:
//
//	"RNT1" | version u32
//	basket blobs (zlib), concatenated in write order
//	index: nbranches u32 { nameLen u16 name nbaskets u32
//	       { off u64 csize u32 usize u32 firstEvent u64 nEvents u32 } }
//	       totalEvents u64
//	trailer: indexOff u64 indexLen u32 "RNTI"
package rootio

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Format constants.
var (
	magicHead = []byte("RNT1")
	magicTail = []byte("RNTI")
)

const (
	formatVersion = 1
	headerLen     = 8  // magic + version
	trailerLen    = 16 // indexOff + indexLen + magic
)

// Format errors.
var (
	ErrBadMagic   = errors.New("rootio: bad magic (not an RNT file)")
	ErrCorrupt    = errors.New("rootio: corrupt file")
	ErrClosed     = errors.New("rootio: writer closed")
	ErrNoBranches = errors.New("rootio: at least one branch required")
)

// BasketInfo locates one compressed basket inside the file.
type BasketInfo struct {
	// Offset is the byte position of the compressed blob.
	Offset int64
	// CompressedSize and UncompressedSize describe the blob.
	CompressedSize, UncompressedSize int64
	// FirstEvent is the index of the basket's first event.
	FirstEvent uint64
	// NumEvents is how many events the basket holds.
	NumEvents uint32
}

// BranchIndex is the full basket list of one branch.
type BranchIndex struct {
	// Name is the branch name.
	Name string
	// Baskets are ordered by FirstEvent.
	Baskets []BasketInfo
}

// Index is the file's table of contents.
type Index struct {
	// Branches in declaration order.
	Branches []BranchIndex
	// Events is the total event count.
	Events uint64
}

// WriterOptions tunes file production.
type WriterOptions struct {
	// EventsPerBasket groups this many events per branch basket
	// (default 256).
	EventsPerBasket int
	// CompressionLevel is the zlib level (default zlib.DefaultCompression).
	CompressionLevel int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.EventsPerBasket == 0 {
		o.EventsPerBasket = 256
	}
	if o.CompressionLevel == 0 {
		o.CompressionLevel = zlib.DefaultCompression
	}
	return o
}

// Writer produces an RNT file streamed to an io.Writer.
type Writer struct {
	w      io.Writer
	opts   WriterOptions
	index  Index
	offset int64
	closed bool

	// buffered per-branch payloads for the current basket window
	pending [][][]byte
	events  uint64
}

// NewWriter starts an RNT file with the given branch names.
func NewWriter(w io.Writer, branches []string, opts WriterOptions) (*Writer, error) {
	if len(branches) == 0 {
		return nil, ErrNoBranches
	}
	wr := &Writer{w: w, opts: opts.withDefaults()}
	for _, b := range branches {
		wr.index.Branches = append(wr.index.Branches, BranchIndex{Name: b})
	}
	wr.pending = make([][][]byte, len(branches))
	var hdr [headerLen]byte
	copy(hdr[0:4], magicHead)
	binary.BigEndian.PutUint32(hdr[4:8], formatVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	wr.offset = headerLen
	return wr, nil
}

// WriteEvent appends one event; values[i] is the payload of branch i.
func (w *Writer) WriteEvent(values [][]byte) error {
	if w.closed {
		return ErrClosed
	}
	if len(values) != len(w.index.Branches) {
		return fmt.Errorf("rootio: event has %d values, file has %d branches", len(values), len(w.index.Branches))
	}
	for i, v := range values {
		cp := make([]byte, len(v))
		copy(cp, v)
		w.pending[i] = append(w.pending[i], cp)
	}
	w.events++
	if len(w.pending[0]) >= w.opts.EventsPerBasket {
		return w.flushBaskets()
	}
	return nil
}

// flushBaskets writes one basket per branch for the buffered events.
func (w *Writer) flushBaskets() error {
	n := len(w.pending[0])
	if n == 0 {
		return nil
	}
	firstEvent := w.events - uint64(n)
	for bi := range w.pending {
		raw := encodeBasket(w.pending[bi])
		var comp bytes.Buffer
		zw, err := zlib.NewWriterLevel(&comp, w.opts.CompressionLevel)
		if err != nil {
			return err
		}
		if _, err := zw.Write(raw); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		if _, err := w.w.Write(comp.Bytes()); err != nil {
			return err
		}
		w.index.Branches[bi].Baskets = append(w.index.Branches[bi].Baskets, BasketInfo{
			Offset:           w.offset,
			CompressedSize:   int64(comp.Len()),
			UncompressedSize: int64(len(raw)),
			FirstEvent:       firstEvent,
			NumEvents:        uint32(n),
		})
		w.offset += int64(comp.Len())
		w.pending[bi] = w.pending[bi][:0]
	}
	return nil
}

// Close flushes pending baskets and writes the index and trailer.
func (w *Writer) Close() error {
	if w.closed {
		return ErrClosed
	}
	if err := w.flushBaskets(); err != nil {
		return err
	}
	w.closed = true
	w.index.Events = w.events
	idx := encodeIndex(&w.index)
	if _, err := w.w.Write(idx); err != nil {
		return err
	}
	var tr [trailerLen]byte
	binary.BigEndian.PutUint64(tr[0:8], uint64(w.offset))
	binary.BigEndian.PutUint32(tr[8:12], uint32(len(idx)))
	copy(tr[12:16], magicTail)
	_, err := w.w.Write(tr[:])
	return err
}

// encodeBasket serializes event payloads: nEvents u32 { len u32 bytes }.
func encodeBasket(events [][]byte) []byte {
	size := 4
	for _, e := range events {
		size += 4 + len(e)
	}
	out := make([]byte, 0, size)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(events)))
	out = append(out, tmp[:]...)
	for _, e := range events {
		binary.BigEndian.PutUint32(tmp[:], uint32(len(e)))
		out = append(out, tmp[:]...)
		out = append(out, e...)
	}
	return out
}

// decodeBasket reverses encodeBasket.
func decodeBasket(raw []byte) ([][]byte, error) {
	if len(raw) < 4 {
		return nil, ErrCorrupt
	}
	n := binary.BigEndian.Uint32(raw[0:4])
	raw = raw[4:]
	events := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(raw) < 4 {
			return nil, ErrCorrupt
		}
		l := binary.BigEndian.Uint32(raw[0:4])
		raw = raw[4:]
		if uint32(len(raw)) < l {
			return nil, ErrCorrupt
		}
		events = append(events, raw[:l:l])
		raw = raw[l:]
	}
	return events, nil
}

// encodeIndex serializes the table of contents.
func encodeIndex(idx *Index) []byte {
	var buf bytes.Buffer
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(idx.Branches)))
	buf.Write(tmp[:4])
	for _, br := range idx.Branches {
		binary.BigEndian.PutUint16(tmp[:2], uint16(len(br.Name)))
		buf.Write(tmp[:2])
		buf.WriteString(br.Name)
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(br.Baskets)))
		buf.Write(tmp[:4])
		for _, b := range br.Baskets {
			binary.BigEndian.PutUint64(tmp[:8], uint64(b.Offset))
			buf.Write(tmp[:8])
			binary.BigEndian.PutUint32(tmp[:4], uint32(b.CompressedSize))
			buf.Write(tmp[:4])
			binary.BigEndian.PutUint32(tmp[:4], uint32(b.UncompressedSize))
			buf.Write(tmp[:4])
			binary.BigEndian.PutUint64(tmp[:8], b.FirstEvent)
			buf.Write(tmp[:8])
			binary.BigEndian.PutUint32(tmp[:4], b.NumEvents)
			buf.Write(tmp[:4])
		}
	}
	binary.BigEndian.PutUint64(tmp[:8], idx.Events)
	buf.Write(tmp[:8])
	return buf.Bytes()
}

// decodeIndex reverses encodeIndex.
func decodeIndex(raw []byte) (*Index, error) {
	rd := bytes.NewReader(raw)
	read := func(n int) ([]byte, error) {
		b := make([]byte, n)
		if _, err := io.ReadFull(rd, b); err != nil {
			return nil, ErrCorrupt
		}
		return b, nil
	}
	b, err := read(4)
	if err != nil {
		return nil, err
	}
	nb := binary.BigEndian.Uint32(b)
	if nb > 1<<20 {
		return nil, ErrCorrupt
	}
	idx := &Index{}
	for i := uint32(0); i < nb; i++ {
		b, err := read(2)
		if err != nil {
			return nil, err
		}
		nameLen := binary.BigEndian.Uint16(b)
		nameB, err := read(int(nameLen))
		if err != nil {
			return nil, err
		}
		br := BranchIndex{Name: string(nameB)}
		b, err = read(4)
		if err != nil {
			return nil, err
		}
		nbk := binary.BigEndian.Uint32(b)
		if nbk > 1<<24 {
			return nil, ErrCorrupt
		}
		for j := uint32(0); j < nbk; j++ {
			b, err = read(28)
			if err != nil {
				return nil, err
			}
			br.Baskets = append(br.Baskets, BasketInfo{
				Offset:           int64(binary.BigEndian.Uint64(b[0:8])),
				CompressedSize:   int64(binary.BigEndian.Uint32(b[8:12])),
				UncompressedSize: int64(binary.BigEndian.Uint32(b[12:16])),
				FirstEvent:       binary.BigEndian.Uint64(b[16:24]),
				NumEvents:        binary.BigEndian.Uint32(b[24:28]),
			})
		}
		idx.Branches = append(idx.Branches, br)
	}
	b, err = read(8)
	if err != nil {
		return nil, err
	}
	idx.Events = binary.BigEndian.Uint64(b)
	return idx, nil
}
