package rootio

import (
	"bytes"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"godavix/internal/rangev"
)

// buildFile writes events through the Writer and returns the image plus
// the original payloads.
func buildFile(t *testing.T, branches []string, events [][][]byte, opts WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, branches, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := w.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func randomEvents(seed int64, n, branches, mean int) [][][]byte {
	rng := rand.New(rand.NewSource(seed))
	events := make([][][]byte, n)
	for i := range events {
		ev := make([][]byte, branches)
		for b := range ev {
			p := make([]byte, rng.Intn(mean*2)+1)
			rng.Read(p)
			ev[b] = p
		}
		events[i] = ev
	}
	return events
}

func TestWriteReadRoundTrip(t *testing.T) {
	branches := []string{"a", "b", "c"}
	events := randomEvents(1, 1000, 3, 64)
	img := buildFile(t, branches, events, WriterOptions{EventsPerBasket: 100})

	r, err := OpenReader(BytesSource(img))
	if err != nil {
		t.Fatal(err)
	}
	if r.Events() != 1000 {
		t.Fatalf("events = %d", r.Events())
	}
	if got := r.Branches(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("branches = %v", got)
	}
	// Spot check events across baskets.
	for _, ev := range []uint64{0, 99, 100, 555, 999} {
		got, err := r.ReadEvent(ev, nil)
		if err != nil {
			t.Fatal(err)
		}
		for b := range branches {
			if !bytes.Equal(got[b], events[ev][b]) {
				t.Fatalf("event %d branch %d mismatch", ev, b)
			}
		}
	}
}

func TestPartialBasketFlushOnClose(t *testing.T) {
	branches := []string{"x"}
	events := randomEvents(2, 50, 1, 16) // < EventsPerBasket
	img := buildFile(t, branches, events, WriterOptions{EventsPerBasket: 256})
	r, err := OpenReader(BytesSource(img))
	if err != nil {
		t.Fatal(err)
	}
	if r.Events() != 50 {
		t.Fatalf("events = %d", r.Events())
	}
	got, err := r.ReadEvent(49, nil)
	if err != nil || !bytes.Equal(got[0], events[49][0]) {
		t.Fatalf("tail event mismatch: %v", err)
	}
}

func TestBranchSubsetRead(t *testing.T) {
	branches := []string{"a", "b", "c", "d"}
	events := randomEvents(3, 300, 4, 32)
	img := buildFile(t, branches, events, WriterOptions{EventsPerBasket: 64})
	r, _ := OpenReader(BytesSource(img))

	sel := []int{1, 3}
	got, err := r.ReadEvent(200, sel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], events[200][1]) || !bytes.Equal(got[1], events[200][3]) {
		t.Fatal("subset read mismatch")
	}
}

func TestBranchIndexOf(t *testing.T) {
	img := buildFile(t, []string{"px", "py"}, randomEvents(4, 10, 2, 8), WriterOptions{})
	r, _ := OpenReader(BytesSource(img))
	if r.BranchIndexOf("py") != 1 || r.BranchIndexOf("nope") != -1 {
		t.Fatal("BranchIndexOf wrong")
	}
}

func TestOpenReaderRejectsGarbage(t *testing.T) {
	if _, err := OpenReader(BytesSource([]byte("not an rnt file at all..."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := OpenReader(BytesSource(nil)); err == nil {
		t.Fatal("empty accepted")
	}
	// Valid file with corrupted trailer magic.
	img := buildFile(t, []string{"a"}, randomEvents(5, 10, 1, 8), WriterOptions{})
	img[len(img)-1] ^= 0xff
	if _, err := OpenReader(BytesSource(img)); err == nil {
		t.Fatal("corrupt trailer accepted")
	}
}

func TestWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, nil, WriterOptions{}); err != ErrNoBranches {
		t.Fatalf("err = %v", err)
	}
	w, _ := NewWriter(&buf, []string{"a", "b"}, WriterOptions{})
	if err := w.WriteEvent([][]byte{{1}}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	w.Close()
	if err := w.WriteEvent([][]byte{{1}, {2}}); err != ErrClosed {
		t.Fatalf("write after close err = %v", err)
	}
	if err := w.Close(); err != ErrClosed {
		t.Fatalf("double close err = %v", err)
	}
}

func TestReadEventOutOfRange(t *testing.T) {
	img := buildFile(t, []string{"a"}, randomEvents(6, 10, 1, 8), WriterOptions{})
	r, _ := OpenReader(BytesSource(img))
	if _, err := r.ReadEvent(10, nil); err == nil {
		t.Fatal("out-of-range event accepted")
	}
}

// TestFormatRoundTripProperty: arbitrary event payload sets survive
// write → read, across basket boundaries.
func TestFormatRoundTripProperty(t *testing.T) {
	prop := func(seed int64, nEv uint8, nBr uint8, basket uint8) bool {
		n := int(nEv%64) + 1
		br := int(nBr%4) + 1
		bk := int(basket%16) + 1
		events := randomEvents(seed, n, br, 32)
		branches := make([]string, br)
		for i := range branches {
			branches[i] = string(rune('a' + i))
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, branches, WriterOptions{EventsPerBasket: bk})
		if err != nil {
			return false
		}
		for _, ev := range events {
			if err := w.WriteEvent(ev); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := OpenReader(BytesSource(buf.Bytes()))
		if err != nil || r.Events() != uint64(n) {
			return false
		}
		for ev := 0; ev < n; ev++ {
			got, err := r.ReadEvent(uint64(ev), nil)
			if err != nil {
				return false
			}
			for b := 0; b < br; b++ {
				if !bytes.Equal(got[b], events[ev][b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// countingSource wraps a Source counting vectored calls.
func countingSource(src Source, calls *atomic.Int64) Source {
	inner := src.ReadVec
	src.ReadVec = func(ranges []rangev.Range, dsts [][]byte) error {
		calls.Add(1)
		return inner(ranges, dsts)
	}
	return src
}

func TestTreeCacheMatchesNaiveRead(t *testing.T) {
	branches := []string{"a", "b", "c"}
	events := randomEvents(7, 2000, 3, 48)
	img := buildFile(t, branches, events, WriterOptions{EventsPerBasket: 128})

	r1, _ := OpenReader(BytesSource(img))
	r2, _ := OpenReader(BytesSource(img))
	tc := NewTreeCache(r2, 500, nil)
	defer tc.Close()

	for ev := uint64(0); ev < 2000; ev++ {
		naive, err := r1.ReadEvent(ev, nil)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := tc.Event(ev)
		if err != nil {
			t.Fatal(err)
		}
		for b := range naive {
			if !bytes.Equal(naive[b], cached[b]) {
				t.Fatalf("event %d branch %d: treecache != naive", ev, b)
			}
		}
	}
}

func TestTreeCacheReducesVectoredCalls(t *testing.T) {
	events := randomEvents(8, 4096, 2, 32)
	img := buildFile(t, []string{"a", "b"}, events, WriterOptions{EventsPerBasket: 128})

	var calls atomic.Int64
	r, err := OpenReader(countingSource(BytesSource(img), &calls))
	if err != nil {
		t.Fatal(err)
	}
	calls.Store(0) // ignore open-time reads

	tc := NewTreeCache(r, 1024, nil)
	defer tc.Close()
	for ev := uint64(0); ev < 4096; ev++ {
		if _, err := tc.Event(ev); err != nil {
			t.Fatal(err)
		}
	}
	// 4096 events / 1024-event windows = 4 fills.
	if got := calls.Load(); got != 4 {
		t.Fatalf("vectored calls = %d, want 4", got)
	}
	if tc.Fills() != 4 {
		t.Fatalf("fills = %d", tc.Fills())
	}
}

func TestTreeCachePrefetchOverlap(t *testing.T) {
	events := randomEvents(9, 1024, 2, 32)
	img := buildFile(t, []string{"a", "b"}, events, WriterOptions{EventsPerBasket: 64})

	var asyncCalls atomic.Int64
	src := BytesSource(img)
	sync := src.ReadVec
	src.ReadVecAsync = func(ranges []rangev.Range, dsts [][]byte) <-chan error {
		asyncCalls.Add(1)
		ch := make(chan error, 1)
		go func() { ch <- sync(ranges, dsts) }()
		return ch
	}
	r, err := OpenReader(src)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTreeCache(r, 256, nil)
	defer tc.Close()
	for ev := uint64(0); ev < 1024; ev++ {
		got, err := tc.Event(ev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[0], events[ev][0]) {
			t.Fatalf("event %d mismatch under prefetch", ev)
		}
	}
	if asyncCalls.Load() == 0 {
		t.Fatal("async path never used")
	}
}

func TestTreeCacheRandomAccess(t *testing.T) {
	events := randomEvents(10, 1000, 2, 32)
	img := buildFile(t, []string{"a", "b"}, events, WriterOptions{EventsPerBasket: 50})
	r, _ := OpenReader(BytesSource(img))
	tc := NewTreeCache(r, 200, nil)
	defer tc.Close()

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		ev := uint64(rng.Intn(1000))
		got, err := tc.Event(ev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[1], events[ev][1]) {
			t.Fatalf("random event %d mismatch", ev)
		}
	}
}

func TestTreeCacheBranchSubset(t *testing.T) {
	events := randomEvents(12, 500, 4, 32)
	img := buildFile(t, []string{"a", "b", "c", "d"}, events, WriterOptions{EventsPerBasket: 100})

	var calls atomic.Int64
	var bytesRead atomic.Int64
	src := BytesSource(img)
	inner := src.ReadVec
	src.ReadVec = func(ranges []rangev.Range, dsts [][]byte) error {
		calls.Add(1)
		for _, rg := range ranges {
			bytesRead.Add(rg.Len)
		}
		return inner(ranges, dsts)
	}
	r, _ := OpenReader(src)
	baseline := bytesRead.Load()

	tc := NewTreeCache(r, 500, []int{0}) // single branch
	defer tc.Close()
	for ev := uint64(0); ev < 500; ev++ {
		got, err := tc.Event(ev)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || !bytes.Equal(got[0], events[ev][0]) {
			t.Fatalf("subset event %d wrong", ev)
		}
	}
	// Only ~1/4 of basket bytes should have crossed the source.
	used := bytesRead.Load() - baseline
	if used*3 > int64(len(img)) {
		t.Fatalf("single-branch scan read %d of %d bytes", used, len(img))
	}
}

func TestSynthesizeDeterministicAndReadable(t *testing.T) {
	spec := SynthSpec{Events: 500, Branches: 6, MeanPayload: 128, Seed: 42}
	img1, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("synthesis not deterministic")
	}
	r, err := OpenReader(BytesSource(img1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Events() != 500 || len(r.Branches()) != 6 {
		t.Fatalf("synth file: %d events %d branches", r.Events(), len(r.Branches()))
	}
	for _, ev := range []uint64{0, 250, 499} {
		got, err := r.ReadEvent(ev, nil)
		if err != nil {
			t.Fatal(err)
		}
		for b := range got {
			if !VerifyPayload(got[b], ev, b) {
				t.Fatalf("payload tag wrong at event %d branch %d", ev, b)
			}
		}
	}
}

func TestSynthCompresses(t *testing.T) {
	spec := SynthSpec{Events: 1000, Branches: 4, MeanPayload: 256, Seed: 1}
	img, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := OpenReader(BytesSource(img))
	var csum, usum int64
	for _, br := range r.Index().Branches {
		for _, b := range br.Baskets {
			csum += b.CompressedSize
			usum += b.UncompressedSize
		}
	}
	if csum >= usum {
		t.Fatalf("no compression: %d >= %d", csum, usum)
	}
	// But not fully compressible either (half random).
	if csum*3 < usum {
		t.Fatalf("suspiciously compressible: %d vs %d", csum, usum)
	}
}

func TestDropCacheEviction(t *testing.T) {
	events := randomEvents(13, 600, 2, 32)
	img := buildFile(t, []string{"a", "b"}, events, WriterOptions{EventsPerBasket: 100})
	r, _ := OpenReader(BytesSource(img))
	tc := NewTreeCache(r, 200, nil)
	defer tc.Close()

	for ev := uint64(0); ev < 600; ev += 10 {
		if _, err := tc.Event(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Memory bound: at most one window's baskets resident
	// (2 branches × 2 baskets per 200-event window).
	if got := r.cachedBaskets(); got > 8 {
		t.Fatalf("resident baskets = %d, eviction broken", got)
	}
}
