package rootio

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godavix/internal/rangev"
)

// asyncCtxSource wraps a byte-image source with a context-aware
// asynchronous vectored read that records every fill's context and tracks
// how many fills are in flight at once.
type asyncCtxSource struct {
	mu    sync.Mutex
	ctxs  []context.Context
	cur   int64
	max   int64
	delay time.Duration
}

func (a *asyncCtxSource) source(img []byte) Source {
	src := BytesSource(img)
	sync := src.ReadVec
	src.ReadVecAsyncCtx = func(ctx context.Context, ranges []rangev.Range, dsts [][]byte) <-chan error {
		a.mu.Lock()
		a.ctxs = append(a.ctxs, ctx)
		a.cur++
		if a.cur > a.max {
			a.max = a.cur
		}
		a.mu.Unlock()
		ch := make(chan error, 1)
		go func() {
			defer func() {
				a.mu.Lock()
				a.cur--
				a.mu.Unlock()
			}()
			if a.delay > 0 {
				select {
				case <-time.After(a.delay):
				case <-ctx.Done():
					ch <- ctx.Err()
					return
				}
			}
			ch <- sync(ranges, dsts)
		}()
		return ch
	}
	return src
}

func (a *asyncCtxSource) maxInFlight() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.max
}

func (a *asyncCtxSource) cancelledCtxs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, ctx := range a.ctxs {
		if ctx.Err() != nil {
			n++
		}
	}
	return n
}

// TestTreeCacheDepthZeroByteForByte: with depth 0 the cache must put
// exactly the legacy synchronous request stream on the wire — same calls,
// same ranges, same order — even when the source offers the async path.
func TestTreeCacheDepthZeroByteForByte(t *testing.T) {
	events := randomEvents(31, 1500, 3, 32)
	img := buildFile(t, []string{"a", "b", "c"}, events, WriterOptions{EventsPerBasket: 128})

	record := func(src Source, log *[][]rangev.Range) Source {
		inner := src.ReadVec
		src.ReadVec = func(ranges []rangev.Range, dsts [][]byte) error {
			*log = append(*log, append([]rangev.Range(nil), ranges...))
			return inner(ranges, dsts)
		}
		return src
	}

	var legacyLog, depthLog [][]rangev.Range
	r1, err := OpenReader(record(BytesSource(img), &legacyLog))
	if err != nil {
		t.Fatal(err)
	}
	tc1 := NewTreeCache(r1, 400, nil) // sync-only source: automatic depth 0
	defer tc1.Close()

	var asyncCalls atomic.Int64
	src2 := record(BytesSource(img), &depthLog)
	src2.ReadVecAsyncCtx = func(context.Context, []rangev.Range, [][]byte) <-chan error {
		asyncCalls.Add(1)
		ch := make(chan error, 1)
		ch <- errors.New("async path must not be used at depth 0")
		return ch
	}
	r2, err := OpenReader(src2)
	if err != nil {
		t.Fatal(err)
	}
	tc2 := NewTreeCacheDepth(r2, 400, nil, 0)
	defer tc2.Close()

	legacyLog, depthLog = nil, nil // ignore open-time reads
	for ev := uint64(0); ev < 1500; ev++ {
		want, err := tc1.Event(ev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc2.Event(ev)
		if err != nil {
			t.Fatal(err)
		}
		for b := range want {
			if !bytes.Equal(want[b], got[b]) {
				t.Fatalf("event %d branch %d mismatch", ev, b)
			}
		}
	}
	if asyncCalls.Load() != 0 {
		t.Fatalf("depth 0 used the async path %d times", asyncCalls.Load())
	}
	if !reflect.DeepEqual(legacyLog, depthLog) {
		t.Fatalf("depth 0 wire stream differs from legacy: %d vs %d calls", len(depthLog), len(legacyLog))
	}
	if issued, wasted, cancelled := tc2.PrefetchStats(); issued != 0 || wasted != 0 || cancelled != 0 {
		t.Fatalf("depth 0 booked speculation: issued=%d wasted=%d cancelled=%d", issued, wasted, cancelled)
	}
}

// TestTreeCachePipelineKeepsWindowsInFlight: a sequential scan at depth 3
// must hold several window fills in flight at once, read back correctly,
// and waste nothing.
func TestTreeCachePipelineKeepsWindowsInFlight(t *testing.T) {
	events := randomEvents(32, 2048, 2, 32)
	img := buildFile(t, []string{"a", "b"}, events, WriterOptions{EventsPerBasket: 64})

	a := &asyncCtxSource{delay: 2 * time.Millisecond}
	r, err := OpenReader(a.source(img))
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTreeCacheDepth(r, 256, nil, 3)
	defer tc.Close()

	for ev := uint64(0); ev < 2048; ev++ {
		got, err := tc.Event(ev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[0], events[ev][0]) || !bytes.Equal(got[1], events[ev][1]) {
			t.Fatalf("event %d mismatch under pipelining", ev)
		}
	}
	if got := a.maxInFlight(); got < 2 {
		t.Fatalf("pipeline never overlapped fills: max in flight = %d", got)
	}
	if got := tc.Fills(); got != 8 {
		t.Fatalf("fills = %d, want 8 (each window filled exactly once)", got)
	}
	issued, wasted, cancelled := tc.PrefetchStats()
	if issued == 0 {
		t.Fatal("no speculative bytes issued")
	}
	if wasted != 0 || cancelled != 0 {
		t.Fatalf("sequential scan wasted speculation: wasted=%d cancelled=%d", wasted, cancelled)
	}
}

// TestTreeCacheCancelsFillsOnPatternJump: jumping away from the predicted
// windows must cancel their in-flight fills and book the bytes as waste.
func TestTreeCacheCancelsFillsOnPatternJump(t *testing.T) {
	events := randomEvents(33, 2000, 2, 32)
	img := buildFile(t, []string{"a", "b"}, events, WriterOptions{EventsPerBasket: 64})

	a := &asyncCtxSource{}
	r, err := OpenReader(a.source(img))
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTreeCacheDepth(r, 200, nil, 2)
	defer tc.Close()

	if _, err := tc.Event(0); err != nil { // window 0 + fills for windows 1, 2
		t.Fatal(err)
	}
	got, err := tc.Event(1800) // far jump: windows 1, 2 are now dead weight
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], events[1800][0]) {
		t.Fatal("post-jump event mismatch")
	}
	issued, wasted, cancelled := tc.PrefetchStats()
	if cancelled != 2 {
		t.Fatalf("jump cancelled %d fills, want 2", cancelled)
	}
	if wasted == 0 || wasted > issued {
		t.Fatalf("waste accounting off: issued=%d wasted=%d", issued, wasted)
	}
	if got := a.cancelledCtxs(); got != 2 {
		t.Fatalf("%d fill contexts cancelled, want 2", got)
	}
}

// TestTrainingCacheRetrainCancelsPendingFills: a post-training branch miss
// rebuilds the window cache; the fills in flight for the stale branch set
// must be cancelled, and the widened set must read correctly afterwards.
func TestTrainingCacheRetrainCancelsPendingFills(t *testing.T) {
	events := randomEvents(34, 1200, 3, 32)
	img := buildFile(t, []string{"a", "b", "c"}, events, WriterOptions{EventsPerBasket: 64})

	a := &asyncCtxSource{}
	r, err := OpenReader(a.source(img))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainingCacheDepth(r, 50, 200, 2)
	defer tr.Close()

	// Train on branch 0 only, then read past training so the pipeline
	// issues speculative fills for the learned {0} set.
	for ev := uint64(0); ev < 60; ev++ {
		p, err := tr.Branch(ev, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, events[ev][0]) {
			t.Fatalf("event %d branch 0 mismatch", ev)
		}
	}
	if !tr.Trained() {
		t.Fatal("not trained after the training window")
	}
	before := a.cancelledCtxs()

	// First touch of branch 2 after training: transparent retrain.
	p, err := tr.Branch(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, events[60][2]) {
		t.Fatal("late-discovered branch mismatch")
	}
	if tr.Retrains() != 1 {
		t.Fatalf("retrains = %d, want 1", tr.Retrains())
	}
	if after := a.cancelledCtxs(); after <= before {
		t.Fatalf("retrain did not cancel stale in-flight fills (%d before, %d after)", before, after)
	}

	// The widened branch set keeps serving correctly across windows.
	for ev := uint64(61); ev < 1200; ev += 97 {
		for _, bi := range []int{0, 2} {
			p, err := tr.Branch(ev, bi)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(p, events[ev][bi]) {
				t.Fatalf("event %d branch %d mismatch after retrain", ev, bi)
			}
		}
	}
}
