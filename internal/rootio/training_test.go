package rootio

import (
	"bytes"
	"sync/atomic"
	"testing"

	"godavix/internal/rangev"
)

func TestTrainingCacheLearnsBranchSet(t *testing.T) {
	events := randomEvents(20, 1000, 6, 32)
	branches := []string{"px", "py", "pz", "E", "jets", "met"}
	img := buildFile(t, branches, events, WriterOptions{EventsPerBasket: 100})

	var bytesRead atomic.Int64
	src := BytesSource(img)
	inner := src.ReadVec
	src.ReadVec = func(ranges []rangev.Range, dsts [][]byte) error {
		for _, r := range ranges {
			bytesRead.Add(r.Len)
		}
		return inner(ranges, dsts)
	}
	r, err := OpenReader(src)
	if err != nil {
		t.Fatal(err)
	}

	tc := NewTrainingCache(r, 50, 250)
	defer tc.Close()

	// The analysis touches only branches 1 and 4.
	for ev := uint64(0); ev < 1000; ev++ {
		for _, bi := range []int{1, 4} {
			got, err := tc.Branch(ev, bi)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, events[ev][bi]) {
				t.Fatalf("event %d branch %d mismatch", ev, bi)
			}
		}
	}
	if !tc.Trained() {
		t.Fatal("never finished training")
	}
	used := tc.UsedBranches()
	if len(used) != 2 || used[0] != 1 || used[1] != 4 {
		t.Fatalf("used = %v", used)
	}
	if tc.Retrains() != 0 {
		t.Fatalf("retrains = %d", tc.Retrains())
	}
	// Only ~2/6 of the file should have crossed the source (plus training
	// and index overhead).
	if got := bytesRead.Load(); got*2 > int64(len(img)) {
		t.Fatalf("trained scan read %d of %d bytes", got, len(img))
	}
}

func TestTrainingCacheLateBranchRetrains(t *testing.T) {
	events := randomEvents(21, 600, 4, 24)
	img := buildFile(t, []string{"a", "b", "c", "d"}, events, WriterOptions{EventsPerBasket: 64})
	r, _ := OpenReader(BytesSource(img))
	tc := NewTrainingCache(r, 20, 200)
	defer tc.Close()

	for ev := uint64(0); ev < 600; ev++ {
		if _, err := tc.Branch(ev, 0); err != nil {
			t.Fatal(err)
		}
		// Branch 3 only appears after training ended.
		if ev == 400 {
			got, err := tc.Branch(ev, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, events[ev][3]) {
				t.Fatal("late branch content mismatch")
			}
		}
	}
	if tc.Retrains() != 1 {
		t.Fatalf("retrains = %d, want 1", tc.Retrains())
	}
	used := tc.UsedBranches()
	if len(used) != 2 || used[0] != 0 || used[1] != 3 {
		t.Fatalf("used = %v", used)
	}
}

func TestTrainingCacheMatchesNaive(t *testing.T) {
	events := randomEvents(22, 500, 3, 32)
	img := buildFile(t, []string{"a", "b", "c"}, events, WriterOptions{EventsPerBasket: 50})
	r1, _ := OpenReader(BytesSource(img))
	r2, _ := OpenReader(BytesSource(img))
	tc := NewTrainingCache(r2, 30, 100)
	defer tc.Close()

	for ev := uint64(0); ev < 500; ev++ {
		for bi := 0; bi < 3; bi++ {
			naive, err := r1.ReadEvent(ev, []int{bi})
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.Branch(ev, bi)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, naive[0]) {
				t.Fatalf("event %d branch %d mismatch", ev, bi)
			}
		}
	}
}

func TestTrainingCacheBranchOutOfRange(t *testing.T) {
	img := buildFile(t, []string{"a"}, randomEvents(23, 10, 1, 8), WriterOptions{})
	r, _ := OpenReader(BytesSource(img))
	tc := NewTrainingCache(r, 5, 5)
	defer tc.Close()
	if _, err := tc.Branch(0, 7); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
}
