package rootio

import (
	"testing"
)

// TestCorruptBasketDetected: bit flips inside a compressed basket must
// surface as errors, never panics or silent bad data.
func TestCorruptBasketDetected(t *testing.T) {
	events := randomEvents(30, 200, 2, 64)
	img := buildFile(t, []string{"a", "b"}, events, WriterOptions{EventsPerBasket: 50})

	r, err := OpenReader(BytesSource(img))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the first basket and flip bytes in its middle.
	b := r.Index().Branches[0].Baskets[0]
	for i := int64(2); i < b.CompressedSize-2 && i < 32; i++ {
		img[b.Offset+i] ^= 0xff
	}
	r2, err := OpenReader(BytesSource(img))
	if err != nil {
		t.Fatal(err) // index and trailer untouched
	}
	if _, err := r2.ReadEvent(0, []int{0}); err == nil {
		t.Fatal("corrupted basket read succeeded")
	}
	// Other branches remain readable.
	if _, err := r2.ReadEvent(0, []int{1}); err != nil {
		t.Fatalf("clean branch unreadable: %v", err)
	}
}

// TestCorruptIndexDetected: damage in the index area must fail OpenReader.
func TestCorruptIndexDetected(t *testing.T) {
	events := randomEvents(31, 100, 1, 32)
	img := buildFile(t, []string{"a"}, events, WriterOptions{EventsPerBasket: 25})
	// The index sits between the last basket and the trailer. Zero a byte
	// in the branch-count field (start of index).
	// Recover index offset from the trailer.
	idxOff := int64(0)
	for i := 0; i < 8; i++ {
		idxOff = idxOff<<8 | int64(img[len(img)-16+i])
	}
	img[idxOff] = 0xff
	img[idxOff+1] = 0xff
	img[idxOff+2] = 0xff
	img[idxOff+3] = 0xff
	if _, err := OpenReader(BytesSource(img)); err == nil {
		t.Fatal("corrupted index accepted")
	}
}

// TestTruncatedFileDetected: cutting the file mid-basket breaks the
// trailer and must be rejected at open.
func TestTruncatedFileDetected(t *testing.T) {
	events := randomEvents(32, 100, 1, 32)
	img := buildFile(t, []string{"a"}, events, WriterOptions{})
	if _, err := OpenReader(BytesSource(img[:len(img)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

// TestBasketSizeMismatchDetected: an index lying about the uncompressed
// size must error at decode.
func TestBasketSizeMismatchDetected(t *testing.T) {
	events := randomEvents(33, 100, 1, 32)
	img := buildFile(t, []string{"a"}, events, WriterOptions{EventsPerBasket: 50})
	r, err := OpenReader(BytesSource(img))
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the in-memory index: double the uncompressed size.
	r.Index().Branches[0].Baskets[0].UncompressedSize *= 2
	if _, err := r.ReadEvent(0, []int{0}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
