package rootio

import (
	"bytes"
	"compress/zlib"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"godavix/internal/rangev"
)

// Source is the storage access abstraction the Reader pulls bytes through.
// The function-field design keeps rootio decoupled from the transports:
// davix Files, xrootd Files (via adapters) and plain byte slices all fit.
type Source struct {
	// Size is the total file size in bytes.
	Size int64

	// ReadVec fetches the given ranges into dsts (dsts[i] sized to
	// ranges[i].Len). Required.
	ReadVec func(ranges []rangev.Range, dsts [][]byte) error

	// ReadVecAsync, when non-nil, starts the fetch and returns a channel
	// yielding the single completion error. TreeCache uses it to overlap
	// the next window's network fetch with the current window's
	// processing (the sliding-window advantage of §3).
	ReadVecAsync func(ranges []rangev.Range, dsts [][]byte) <-chan error

	// ReadVecAsyncCtx, when non-nil, is preferred over ReadVecAsync: the
	// same background fetch, but cancellable. The window pipeline cancels
	// a fill mid-flight when the access pattern jumps away from its
	// window or a retrain retires the whole branch set.
	ReadVecAsyncCtx func(ctx context.Context, ranges []rangev.Range, dsts [][]byte) <-chan error

	// Hint, when non-nil, registers upcoming byte ranges with the
	// transport's learned read-ahead planner without fetching them here.
	// Sources backed by a block cache use it so speculation rides the
	// pooled engine (with budget and accuracy accounting) instead of the
	// caller's goroutines.
	Hint func(ranges []rangev.Range)
}

// BytesSource adapts an in-memory file image to a Source.
func BytesSource(data []byte) Source {
	return Source{
		Size: int64(len(data)),
		ReadVec: func(ranges []rangev.Range, dsts [][]byte) error {
			for i, r := range ranges {
				if r.Off < 0 || r.End() > int64(len(data)) {
					return fmt.Errorf("rootio: range [%d,+%d) out of bounds", r.Off, r.Len)
				}
				copy(dsts[i][:r.Len], data[r.Off:r.End()])
			}
			return nil
		},
	}
}

// Reader reads events from an RNT file through a Source.
type Reader struct {
	src Source
	idx *Index

	mu    sync.Mutex
	cache map[basketKey][][]byte // decoded basket -> per-event payloads
}

type basketKey struct {
	branch, basket int
}

// OpenReader validates the header/trailer and loads the index
// (two vectored reads in total).
func OpenReader(src Source) (*Reader, error) {
	if src.Size < headerLen+trailerLen {
		return nil, ErrBadMagic
	}
	head := make([]byte, headerLen)
	tail := make([]byte, trailerLen)
	err := src.ReadVec(
		[]rangev.Range{{Off: 0, Len: headerLen}, {Off: src.Size - trailerLen, Len: trailerLen}},
		[][]byte{head, tail},
	)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(head[0:4], magicHead) || !bytes.Equal(tail[12:16], magicTail) {
		return nil, ErrBadMagic
	}
	idxOff := int64(binary.BigEndian.Uint64(tail[0:8]))
	idxLen := int64(binary.BigEndian.Uint32(tail[8:12]))
	if idxOff < headerLen || idxOff+idxLen+trailerLen > src.Size {
		return nil, ErrCorrupt
	}
	idxRaw := make([]byte, idxLen)
	if err := src.ReadVec([]rangev.Range{{Off: idxOff, Len: idxLen}}, [][]byte{idxRaw}); err != nil {
		return nil, err
	}
	idx, err := decodeIndex(idxRaw)
	if err != nil {
		return nil, err
	}
	return &Reader{src: src, idx: idx, cache: make(map[basketKey][][]byte)}, nil
}

// Events returns the total number of events.
func (r *Reader) Events() uint64 { return r.idx.Events }

// Branches returns the branch names in declaration order.
func (r *Reader) Branches() []string {
	names := make([]string, len(r.idx.Branches))
	for i, b := range r.idx.Branches {
		names[i] = b.Name
	}
	return names
}

// BranchIndexOf returns the position of the named branch, or -1.
func (r *Reader) BranchIndexOf(name string) int {
	for i, b := range r.idx.Branches {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// Index exposes the table of contents (read-only by convention).
func (r *Reader) Index() *Index { return r.idx }

// basketFor locates the basket of branch bi containing event ev.
func (r *Reader) basketFor(bi int, ev uint64) (int, error) {
	baskets := r.idx.Branches[bi].Baskets
	lo, hi := 0, len(baskets)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		b := baskets[mid]
		switch {
		case ev < b.FirstEvent:
			hi = mid - 1
		case ev >= b.FirstEvent+uint64(b.NumEvents):
			lo = mid + 1
		default:
			return mid, nil
		}
	}
	return 0, fmt.Errorf("rootio: event %d not covered by branch %q", ev, r.idx.Branches[bi].Name)
}

// loadBaskets fetches and decodes the given baskets in one vectored read.
// Keys already cached are skipped.
func (r *Reader) loadBaskets(keys []basketKey) error {
	r.mu.Lock()
	var need []basketKey
	for _, k := range keys {
		if _, ok := r.cache[k]; !ok {
			need = append(need, k)
		}
	}
	r.mu.Unlock()
	if len(need) == 0 {
		return nil
	}

	ranges := make([]rangev.Range, len(need))
	dsts := make([][]byte, len(need))
	for i, k := range need {
		b := r.idx.Branches[k.branch].Baskets[k.basket]
		ranges[i] = rangev.Range{Off: b.Offset, Len: b.CompressedSize}
		dsts[i] = make([]byte, b.CompressedSize)
	}
	if err := r.src.ReadVec(ranges, dsts); err != nil {
		return err
	}
	return r.decodeInto(need, dsts)
}

// decodeInto decompresses fetched basket blobs into the cache.
func (r *Reader) decodeInto(keys []basketKey, blobs [][]byte) error {
	for i, k := range keys {
		b := r.idx.Branches[k.branch].Baskets[k.basket]
		events, err := inflateBasket(blobs[i], b.UncompressedSize)
		if err != nil {
			return err
		}
		if uint32(len(events)) != b.NumEvents {
			return ErrCorrupt
		}
		r.mu.Lock()
		r.cache[k] = events
		r.mu.Unlock()
	}
	return nil
}

func inflateBasket(blob []byte, usize int64) ([][]byte, error) {
	zr, err := zlib.NewReader(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("rootio: basket inflate: %w", err)
	}
	raw := make([]byte, usize)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, fmt.Errorf("rootio: basket inflate: %w", err)
	}
	zr.Close()
	return decodeBasket(raw)
}

// ReadEvent returns the payloads of event ev for the selected branch
// positions (nil selects every branch). Baskets are fetched on demand —
// without a TreeCache every cold basket costs one network round trip,
// which is precisely the naive pattern of Figure 3's left side.
func (r *Reader) ReadEvent(ev uint64, branches []int) ([][]byte, error) {
	if ev >= r.idx.Events {
		return nil, fmt.Errorf("rootio: event %d out of range (%d events)", ev, r.idx.Events)
	}
	if branches == nil {
		branches = make([]int, len(r.idx.Branches))
		for i := range branches {
			branches[i] = i
		}
	}
	keys := make([]basketKey, len(branches))
	for i, bi := range branches {
		bk, err := r.basketFor(bi, ev)
		if err != nil {
			return nil, err
		}
		keys[i] = basketKey{branch: bi, basket: bk}
	}
	if err := r.loadBaskets(keys); err != nil {
		return nil, err
	}
	out := make([][]byte, len(branches))
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, k := range keys {
		b := r.idx.Branches[k.branch].Baskets[k.basket]
		out[i] = r.cache[k][ev-b.FirstEvent]
	}
	return out, nil
}

// DropCache clears decoded baskets (used between benchmark iterations and
// by the TreeCache's window eviction).
func (r *Reader) DropCache() {
	r.mu.Lock()
	r.cache = make(map[basketKey][][]byte)
	r.mu.Unlock()
}

// cachedBaskets reports how many decoded baskets are resident.
func (r *Reader) cachedBaskets() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
