package rangev

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"sort"
	"strings"
	"sync"

	"godavix/internal/bufpool"
)

// Part is one byterange part extracted from a multipart/byteranges body.
type Part struct {
	// Off is the starting offset declared by the part's Content-Range.
	Off int64
	// Data is the part payload.
	Data []byte
	// Total is the resource size declared by Content-Range (-1 if "*").
	Total int64
}

// IsMultipartByteranges reports whether the Content-Type announces a
// multipart/byteranges payload and returns its boundary.
func IsMultipartByteranges(contentType string) (boundary string, ok bool) {
	mt, params, err := mime.ParseMediaType(contentType)
	if err != nil {
		return "", false
	}
	if !strings.EqualFold(mt, "multipart/byteranges") {
		return "", false
	}
	b := params["boundary"]
	return b, b != ""
}

// ReadMultipart parses a multipart/byteranges body, returning the parts in
// stream order. Servers may reorder or coalesce parts relative to the
// request; callers match parts to frames by offset.
//
// Part payloads are drawn from the shared buffer pool: callers that finish
// scattering should hand the parts to ReleaseParts so steady-state vector
// reads stay allocation-free. Keeping the data (or not releasing) is safe,
// just slower.
func ReadMultipart(body io.Reader, boundary string) ([]Part, error) {
	mr := multipart.NewReader(body, boundary)
	var parts []Part
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			return parts, nil
		}
		if err != nil {
			return parts, fmt.Errorf("rangev: multipart: %w", err)
		}
		cr := p.Header.Get("Content-Range")
		off, length, total, err := ParseContentRange(cr)
		if err != nil {
			p.Close()
			return parts, err
		}
		data := bufpool.Get(int(length))
		if _, err := io.ReadFull(p, data); err != nil {
			p.Close()
			bufpool.Put(data)
			return parts, fmt.Errorf("rangev: multipart part truncated: %w", err)
		}
		p.Close()
		parts = append(parts, Part{Off: off, Data: data, Total: total})
	}
}

// ReleaseParts returns every part payload to the buffer pool and clears the
// Data fields. Call once scattering is complete; the parts must not be
// used afterwards.
func ReleaseParts(parts []Part) {
	for i := range parts {
		bufpool.Put(parts[i].Data)
		parts[i].Data = nil
	}
}

// brPool recycles the buffered readers ScatterMultipart parses with, so the
// steady-state vector-read path does not allocate a 4 KiB reader per batch.
var brPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 4096) }}

// ScatterMultipart parses a multipart/byteranges body and scatters each
// part's payload directly into the destination buffers as the bytes stream
// past — the allocation-free fast path of the §2.3 vectored read. Unlike
// ReadMultipart it never materializes part payloads, builds no header maps,
// and copies through a pooled scratch block, so a response carrying
// hundreds of fragments costs O(parts) small header parses instead of
// O(bytes) of garbage.
//
// Every frame must be covered by exactly one part starting at the frame
// offset (servers echo the requested ranges); parts may arrive in any
// order, and parts matching no frame are drained and ignored.
func ScatterMultipart(body io.Reader, boundary string, frames []Frame, ranges []Range, dsts [][]byte) error {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(body)
	defer func() { br.Reset(nil); brPool.Put(br) }()

	scratch := bufpool.Get(64 << 10)
	defer bufpool.Put(scratch)

	delim := []byte("--" + boundary)
	seen := make([]bool, len(frames))
	covered := 0

	// Skip the preamble: everything up to the first delimiter line.
	closed, err := skipToDelim(br, delim)
	if err != nil {
		return err
	}
	for !closed {
		// Part headers: only Content-Range matters; the rest are skipped
		// without building a header map.
		var off, length int64 = -1, -1
		for {
			line, err := readTrimmedLine(br)
			if err != nil {
				return fmt.Errorf("rangev: multipart headers: %w", err)
			}
			if len(line) == 0 {
				break
			}
			if v, ok := headerValue(line, "Content-Range"); ok {
				off, length, _, err = ParseContentRange(string(v))
				if err != nil {
					return err
				}
			}
		}
		if length < 0 {
			return fmt.Errorf("rangev: multipart part missing Content-Range")
		}

		fi := findFrame(frames, off)
		if fi >= 0 && length < frames[fi].Len {
			return fmt.Errorf("rangev: no part covers frame [%d,+%d)", frames[fi].Off, frames[fi].Len)
		}
		// Stream the payload through scratch, copying member overlaps in
		// place; payload matching no frame (or past the frame end) drains.
		consumed := int64(0)
		for consumed < length {
			n := int64(len(scratch))
			if n > length-consumed {
				n = length - consumed
			}
			if _, err := io.ReadFull(br, scratch[:n]); err != nil {
				return fmt.Errorf("rangev: multipart part truncated: %w", err)
			}
			if fi >= 0 {
				scatterChunk(frames[fi], off+consumed, scratch[:n], ranges, dsts)
			}
			consumed += n
		}
		if fi >= 0 && !seen[fi] {
			seen[fi] = true
			covered++
		}
		if closed, err = skipToDelim(br, delim); err != nil {
			return err
		}
	}
	if covered != len(frames) {
		for i, ok := range seen {
			if !ok {
				return fmt.Errorf("rangev: no part covers frame [%d,+%d)", frames[i].Off, frames[i].Len)
			}
		}
	}
	return nil
}

// skipToDelim consumes lines until a boundary delimiter, reporting whether
// it was the closing "--boundary--" form.
func skipToDelim(br *bufio.Reader, delim []byte) (closed bool, err error) {
	for {
		line, err := readTrimmedLine(br)
		if err != nil {
			return false, fmt.Errorf("rangev: multipart: %w", err)
		}
		if !bytes.HasPrefix(line, delim) {
			continue
		}
		rest := line[len(delim):]
		if len(rest) == 0 {
			return false, nil
		}
		if bytes.Equal(rest, []byte("--")) {
			return true, nil
		}
	}
}

// readTrimmedLine reads one line, stripping the terminator and trailing
// transport padding. The returned slice aliases the reader's buffer and is
// valid only until the next read.
func readTrimmedLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, fmt.Errorf("multipart line exceeds %d bytes", br.Size())
		}
		if err == io.EOF && len(line) > 0 {
			// Final line without a terminator (no epilogue after the close
			// delimiter): still a line.
			return trimLine(line), nil
		}
		return nil, err
	}
	return trimLine(line), nil
}

func trimLine(line []byte) []byte {
	for len(line) > 0 {
		switch line[len(line)-1] {
		case '\n', '\r', ' ', '\t':
			line = line[:len(line)-1]
		default:
			return line
		}
	}
	return line
}

// headerValue matches line against a header name case-insensitively,
// returning the trimmed value bytes.
func headerValue(line []byte, name string) ([]byte, bool) {
	if len(line) <= len(name) || line[len(name)] != ':' {
		return nil, false
	}
	for i := 0; i < len(name); i++ {
		c := line[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		n := name[i]
		if 'A' <= n && n <= 'Z' {
			n += 'a' - 'A'
		}
		if c != n {
			return nil, false
		}
	}
	v := line[len(name)+1:]
	for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
		v = v[1:]
	}
	return v, true
}

// findFrame binary-searches the sorted frames for the one starting at off.
func findFrame(frames []Frame, off int64) int {
	i := sort.Search(len(frames), func(i int) bool { return frames[i].Off >= off })
	if i < len(frames) && frames[i].Off == off {
		return i
	}
	return -1
}

// ScatterParts distributes multipart parts into the destination buffers of
// the original ranges, using the frame membership computed by Coalesce.
// Each frame must be covered by exactly one part starting at the frame
// offset (servers echo the requested ranges); parts are matched by offset.
func ScatterParts(parts []Part, frames []Frame, ranges []Range, dsts [][]byte) error {
	byOff := make(map[int64]*Part, len(parts))
	for i := range parts {
		byOff[parts[i].Off] = &parts[i]
	}
	for _, f := range frames {
		p, ok := byOff[f.Off]
		if !ok || int64(len(p.Data)) < f.Len {
			return fmt.Errorf("rangev: no part covers frame [%d,+%d)", f.Off, f.Len)
		}
		if err := Scatter(f, p.Off, p.Data, ranges, dsts); err != nil {
			return err
		}
	}
	return nil
}
