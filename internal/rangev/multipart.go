package rangev

import (
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"strings"
)

// Part is one byterange part extracted from a multipart/byteranges body.
type Part struct {
	// Off is the starting offset declared by the part's Content-Range.
	Off int64
	// Data is the part payload.
	Data []byte
	// Total is the resource size declared by Content-Range (-1 if "*").
	Total int64
}

// IsMultipartByteranges reports whether the Content-Type announces a
// multipart/byteranges payload and returns its boundary.
func IsMultipartByteranges(contentType string) (boundary string, ok bool) {
	mt, params, err := mime.ParseMediaType(contentType)
	if err != nil {
		return "", false
	}
	if !strings.EqualFold(mt, "multipart/byteranges") {
		return "", false
	}
	b := params["boundary"]
	return b, b != ""
}

// ReadMultipart parses a multipart/byteranges body, returning the parts in
// stream order. Servers may reorder or coalesce parts relative to the
// request; callers match parts to frames by offset.
func ReadMultipart(body io.Reader, boundary string) ([]Part, error) {
	mr := multipart.NewReader(body, boundary)
	var parts []Part
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			return parts, nil
		}
		if err != nil {
			return parts, fmt.Errorf("rangev: multipart: %w", err)
		}
		cr := p.Header.Get("Content-Range")
		off, length, total, err := ParseContentRange(cr)
		if err != nil {
			p.Close()
			return parts, err
		}
		data := make([]byte, length)
		if _, err := io.ReadFull(p, data); err != nil {
			p.Close()
			return parts, fmt.Errorf("rangev: multipart part truncated: %w", err)
		}
		p.Close()
		parts = append(parts, Part{Off: off, Data: data, Total: total})
	}
}

// ScatterParts distributes multipart parts into the destination buffers of
// the original ranges, using the frame membership computed by Coalesce.
// Each frame must be covered by exactly one part starting at the frame
// offset (servers echo the requested ranges); parts are matched by offset.
func ScatterParts(parts []Part, frames []Frame, ranges []Range, dsts [][]byte) error {
	byOff := make(map[int64]*Part, len(parts))
	for i := range parts {
		byOff[parts[i].Off] = &parts[i]
	}
	for _, f := range frames {
		p, ok := byOff[f.Off]
		if !ok || int64(len(p.Data)) < f.Len {
			return fmt.Errorf("rangev: no part covers frame [%d,+%d)", f.Off, f.Len)
		}
		if err := Scatter(f, p.Off, p.Data, ranges, dsts); err != nil {
			return err
		}
	}
	return nil
}
