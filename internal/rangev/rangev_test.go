package rangev

import (
	"bytes"
	"fmt"
	"math/rand"
	"mime/multipart"
	"net/textproto"
	"sort"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Validate(nil); err != ErrNoRanges {
		t.Fatalf("err = %v", err)
	}
	if err := Validate([]Range{{Off: -1, Len: 5}}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := Validate([]Range{{Off: 0, Len: 0}}); err == nil {
		t.Fatal("zero length accepted")
	}
	if err := Validate([]Range{{Off: 0, Len: 1}}); err != nil {
		t.Fatalf("valid range rejected: %v", err)
	}
}

func TestCoalesceMergesTouching(t *testing.T) {
	frames := Coalesce([]Range{{0, 10}, {10, 10}, {30, 5}}, 0)
	if len(frames) != 2 {
		t.Fatalf("frames = %+v", frames)
	}
	if frames[0].Off != 0 || frames[0].Len != 20 {
		t.Fatalf("frame0 = %+v", frames[0])
	}
	if len(frames[0].Members) != 2 || len(frames[1].Members) != 1 {
		t.Fatalf("memberships wrong: %+v", frames)
	}
}

func TestCoalesceGapSieving(t *testing.T) {
	ranges := []Range{{0, 10}, {15, 10}} // 5-byte hole
	if got := Coalesce(ranges, 0); len(got) != 2 {
		t.Fatalf("gap=0: %+v", got)
	}
	got := Coalesce(ranges, 5)
	if len(got) != 1 || got[0].Len != 25 {
		t.Fatalf("gap=5: %+v", got)
	}
	if TotalBytes(got) != 25 {
		t.Fatalf("TotalBytes = %d", TotalBytes(got))
	}
}

func TestCoalesceUnsortedOverlapping(t *testing.T) {
	frames := Coalesce([]Range{{50, 10}, {0, 10}, {55, 20}, {5, 10}}, 0)
	if len(frames) != 2 {
		t.Fatalf("frames = %+v", frames)
	}
	if frames[0].Off != 0 || frames[0].End() != 15 {
		t.Fatalf("frame0 = %+v", frames[0])
	}
	if frames[1].Off != 50 || frames[1].End() != 75 {
		t.Fatalf("frame1 = %+v", frames[1])
	}
}

// TestCoalesceProperty: frames are sorted, disjoint, each member range is
// fully contained in its frame, and every input range is a member of
// exactly one frame.
func TestCoalesceProperty(t *testing.T) {
	prop := func(seed int64, n uint8, gapSmall uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%32) + 1
		gap := int64(gapSmall % 16)
		ranges := make([]Range, count)
		for i := range ranges {
			ranges[i] = Range{Off: r.Int63n(1000), Len: r.Int63n(50) + 1}
		}
		frames := Coalesce(ranges, gap)

		seen := make(map[int]int)
		for fi, f := range frames {
			if fi > 0 && frames[fi-1].End()+gap > f.Off {
				return false // frames must be separated by more than gap
			}
			for _, m := range f.Members {
				seen[m]++
				rg := ranges[m]
				if rg.Off < f.Off || rg.End() > f.End() {
					return false
				}
			}
		}
		if len(seen) != count {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeHeader(t *testing.T) {
	frames := Coalesce([]Range{{0, 100}, {200, 50}}, 0)
	if got := RangeHeader(frames); got != "bytes=0-99,200-249" {
		t.Fatalf("header = %q", got)
	}
}

func TestParseContentRange(t *testing.T) {
	off, length, total, err := ParseContentRange("bytes 200-249/700")
	if err != nil || off != 200 || length != 50 || total != 700 {
		t.Fatalf("got %d %d %d %v", off, length, total, err)
	}
	_, _, total, err = ParseContentRange("bytes 0-0/*")
	if err != nil || total != -1 {
		t.Fatalf("star total: %d %v", total, err)
	}
	for _, bad := range []string{
		"", "bytes", "bytes a-b/10", "bytes 5-2/10", "bytes 0-1/x", "items 0-1/10",
	} {
		if _, _, _, err := ParseContentRange(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestScatter(t *testing.T) {
	data := []byte("0123456789")
	ranges := []Range{{Off: 102, Len: 3}, {Off: 106, Len: 2}}
	frame := Frame{Off: 100, Len: 10, Members: []int{0, 1}}
	dsts := [][]byte{make([]byte, 3), make([]byte, 2)}
	if err := Scatter(frame, 100, data, ranges, dsts); err != nil {
		t.Fatal(err)
	}
	if string(dsts[0]) != "234" || string(dsts[1]) != "67" {
		t.Fatalf("dsts = %q %q", dsts[0], dsts[1])
	}
}

func TestScatterOutOfCover(t *testing.T) {
	frame := Frame{Off: 0, Len: 5, Members: []int{0}}
	err := Scatter(frame, 0, []byte("abc"), []Range{{Off: 2, Len: 5}}, [][]byte{make([]byte, 5)})
	if err == nil {
		t.Fatal("expected coverage error")
	}
}

// buildMultipart emits a multipart/byteranges body the way an HTTP server
// would, using stdlib multipart for interop.
func buildMultipart(t *testing.T, parts []Part, total int64) (body []byte, contentType string) {
	t.Helper()
	var buf bytes.Buffer
	w := multipart.NewWriter(&buf)
	for _, p := range parts {
		h := textproto.MIMEHeader{}
		h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", p.Off, p.Off+int64(len(p.Data))-1, total))
		pw, err := w.CreatePart(h)
		if err != nil {
			t.Fatal(err)
		}
		pw.Write(p.Data)
	}
	w.Close()
	return buf.Bytes(), "multipart/byteranges; boundary=" + w.Boundary()
}

func TestIsMultipartByteranges(t *testing.T) {
	if _, ok := IsMultipartByteranges("text/plain"); ok {
		t.Fatal("text/plain accepted")
	}
	if _, ok := IsMultipartByteranges("multipart/byteranges"); ok {
		t.Fatal("missing boundary accepted")
	}
	b, ok := IsMultipartByteranges(`multipart/byteranges; boundary=XYZ`)
	if !ok || b != "XYZ" {
		t.Fatalf("boundary = %q ok=%v", b, ok)
	}
}

func TestReadMultipart(t *testing.T) {
	want := []Part{
		{Off: 0, Data: []byte("aaaa")},
		{Off: 100, Data: []byte("bb")},
	}
	body, ct := buildMultipart(t, want, 700)
	boundary, ok := IsMultipartByteranges(ct)
	if !ok {
		t.Fatal("content type not recognized")
	}
	got, err := ReadMultipart(bytes.NewReader(body), boundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Off != 0 || string(got[0].Data) != "aaaa" ||
		got[1].Off != 100 || string(got[1].Data) != "bb" || got[1].Total != 700 {
		t.Fatalf("parts = %+v", got)
	}
}

// TestVectoredRoundTrip is the end-to-end §2.3 property: for arbitrary
// fragment sets over a random blob, coalesce → serve multipart → scatter
// reproduces exactly the requested bytes.
func TestVectoredRoundTrip(t *testing.T) {
	prop := func(seed int64, n uint8, gapSmall uint8) bool {
		r := rand.New(rand.NewSource(seed))
		blob := make([]byte, 4096)
		r.Read(blob)
		count := int(n%24) + 1
		gap := int64(gapSmall % 64)

		ranges := make([]Range, count)
		for i := range ranges {
			off := r.Int63n(int64(len(blob) - 64))
			ranges[i] = Range{Off: off, Len: r.Int63n(63) + 1}
		}
		frames := Coalesce(ranges, gap)

		// Server side: one part per frame, shuffled to simulate reordering.
		parts := make([]Part, len(frames))
		for i, f := range frames {
			parts[i] = Part{Off: f.Off, Data: blob[f.Off:f.End()]}
		}
		r.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })

		dsts := make([][]byte, count)
		for i := range dsts {
			dsts[i] = make([]byte, ranges[i].Len)
		}
		if err := ScatterParts(parts, frames, ranges, dsts); err != nil {
			return false
		}
		for i, d := range dsts {
			if !bytes.Equal(d, blob[ranges[i].Off:ranges[i].End()]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterPartsMissingFrame(t *testing.T) {
	frames := []Frame{{Off: 0, Len: 4, Members: []int{0}}}
	ranges := []Range{{Off: 0, Len: 4}}
	err := ScatterParts([]Part{{Off: 50, Data: []byte("xxxx")}}, frames, ranges, [][]byte{make([]byte, 4)})
	if err == nil {
		t.Fatal("expected missing-frame error")
	}
}

func TestCoalesceDeterministic(t *testing.T) {
	ranges := []Range{{10, 5}, {0, 5}, {20, 5}}
	a := Coalesce(ranges, 100)
	b := Coalesce(ranges, 100)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("a=%+v b=%+v", a, b)
	}
	if !sort.IntsAreSorted(a[0].Members) {
		// Members follow sorted range order; with these inputs that is 1,0,2.
		want := []int{1, 0, 2}
		for i, m := range a[0].Members {
			if m != want[i] {
				t.Fatalf("members = %v", a[0].Members)
			}
		}
	}
}
