// Package rangev implements the vectored ("packed") I/O machinery of the
// paper's §2.3: gathering many small random reads into one HTTP/1.1
// multi-range request, and scattering the multipart/byteranges response
// back into the caller's fragments.
//
// A HEP analysis reads thousands of small scattered segments (compressed
// ROOT baskets) per file. Issuing them individually pays one network round
// trip each; davix instead coalesces them (a data-sieving pass with a
// configurable gap threshold) and ships a single
//
//	Range: bytes=a-b,c-d,...
//
// request, which "virtually eliminates the need for I/O multiplexing".
package rangev

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"godavix/internal/bufpool"
)

// Range describes one requested fragment of a remote resource.
type Range struct {
	// Off is the byte offset of the fragment.
	Off int64
	// Len is the fragment length in bytes; must be > 0.
	Len int64
}

// End returns the exclusive end offset.
func (r Range) End() int64 { return r.Off + r.Len }

// Validation errors.
var (
	ErrInvalidRange = errors.New("rangev: invalid range")
	ErrNoRanges     = errors.New("rangev: no ranges")
)

// Validate checks that every range has positive length and non-negative
// offset.
func Validate(ranges []Range) error {
	if len(ranges) == 0 {
		return ErrNoRanges
	}
	for _, r := range ranges {
		if r.Off < 0 || r.Len <= 0 {
			return fmt.Errorf("%w: off=%d len=%d", ErrInvalidRange, r.Off, r.Len)
		}
	}
	return nil
}

// Frame is a coalesced contiguous span that covers one or more requested
// ranges. Members indexes into the original request slice.
type Frame struct {
	// Off and Len delimit the span actually fetched from the server.
	Off, Len int64
	// Members lists the indices of the caller ranges served by this frame.
	Members []int
}

// End returns the exclusive end offset of the frame.
func (f Frame) End() int64 { return f.Off + f.Len }

// Coalesce sorts the requested ranges and merges any two spans whose gap is
// at most gap bytes (data sieving: reading a small hole is cheaper than an
// extra part). gap = 0 merges only touching/overlapping ranges. The
// returned frames are sorted, non-overlapping, and collectively cover every
// requested byte.
func Coalesce(ranges []Range, gap int64) []Frame {
	if len(ranges) == 0 {
		return nil
	}
	idx := make([]int, len(ranges))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := ranges[idx[a]], ranges[idx[b]]
		if ra.Off != rb.Off {
			return ra.Off < rb.Off
		}
		return ra.End() < rb.End()
	})

	var frames []Frame
	cur := Frame{Off: ranges[idx[0]].Off, Len: ranges[idx[0]].Len, Members: []int{idx[0]}}
	for _, i := range idx[1:] {
		r := ranges[i]
		if r.Off <= cur.End()+gap {
			if r.End() > cur.End() {
				cur.Len = r.End() - cur.Off
			}
			cur.Members = append(cur.Members, i)
			continue
		}
		frames = append(frames, cur)
		cur = Frame{Off: r.Off, Len: r.Len, Members: []int{i}}
	}
	return append(frames, cur)
}

// TotalBytes sums the lengths of the frames (bytes that will cross the
// network), used to bound sieving waste.
func TotalBytes(frames []Frame) int64 {
	var n int64
	for _, f := range frames {
		n += f.Len
	}
	return n
}

// RangeHeader renders the frames as an HTTP Range header value:
// "bytes=0-99,200-249".
func RangeHeader(frames []Frame) string {
	var b strings.Builder
	b.WriteString("bytes=")
	for i, f := range frames {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d-%d", f.Off, f.End()-1)
	}
	return b.String()
}

// ParseContentRange parses a "bytes first-last/total" Content-Range value.
// total is -1 when the server sent "*".
func ParseContentRange(v string) (off, length, total int64, err error) {
	const pfx = "bytes "
	if !strings.HasPrefix(v, pfx) {
		return 0, 0, 0, fmt.Errorf("rangev: bad Content-Range %q", v)
	}
	spec, totStr, ok := strings.Cut(v[len(pfx):], "/")
	if !ok {
		return 0, 0, 0, fmt.Errorf("rangev: bad Content-Range %q", v)
	}
	first, last, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, 0, 0, fmt.Errorf("rangev: bad Content-Range %q", v)
	}
	off, err = strconv.ParseInt(strings.TrimSpace(first), 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("rangev: bad Content-Range %q", v)
	}
	end, err := strconv.ParseInt(strings.TrimSpace(last), 10, 64)
	if err != nil || end < off {
		return 0, 0, 0, fmt.Errorf("rangev: bad Content-Range %q", v)
	}
	if t := strings.TrimSpace(totStr); t == "*" {
		total = -1
	} else {
		total, err = strconv.ParseInt(t, 10, 64)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("rangev: bad Content-Range %q", v)
		}
	}
	return off, end - off + 1, total, nil
}

// StreamScatter consumes body — a stream whose first byte sits at absolute
// offset bodyOff — and scatters the member ranges of the given frames into
// dsts as the bytes flow past, using a pooled scratch block instead of
// buffering the whole body. frames must be sorted and non-overlapping (the
// Coalesce output order) and every frame must start at or after bodyOff.
//
// Reading stops at the end of the last frame; the caller decides what to do
// with the remainder of the stream (drain it for connection recycling, or
// drop the connection when the tail is large). A body that ends before the
// last frame byte yields an error wrapping io.ErrUnexpectedEOF.
func StreamScatter(body io.Reader, bodyOff int64, frames []Frame, ranges []Range, dsts [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	maxEnd := frames[len(frames)-1].End()
	scratch := bufpool.Get(64 << 10)
	defer bufpool.Put(scratch)

	pos := bodyOff
	fi := 0
	for pos < maxEnd {
		n, err := body.Read(scratch)
		if n > 0 {
			chunkEnd := pos + int64(n)
			for fi < len(frames) && frames[fi].End() <= pos {
				fi++
			}
			for j := fi; j < len(frames) && frames[j].Off < chunkEnd; j++ {
				scatterChunk(frames[j], pos, scratch[:n], ranges, dsts)
			}
			pos = chunkEnd
		}
		if err != nil {
			if err == io.EOF {
				if pos < maxEnd {
					return fmt.Errorf("rangev: body ends at %d before frame end %d: %w",
						pos, maxEnd, io.ErrUnexpectedEOF)
				}
				return nil
			}
			return err
		}
	}
	return nil
}

// scatterChunk copies the overlap between one streamed chunk (spanning
// [pos, pos+len(chunk)) in absolute offsets) and each member range of f
// into the destination buffers — the shared inner loop of every streaming
// scatter path.
func scatterChunk(f Frame, pos int64, chunk []byte, ranges []Range, dsts [][]byte) {
	chunkEnd := pos + int64(len(chunk))
	for _, m := range f.Members {
		r := ranges[m]
		lo, hi := r.Off, r.End()
		if lo < pos {
			lo = pos
		}
		if hi > chunkEnd {
			hi = chunkEnd
		}
		if lo < hi {
			copy(dsts[m][lo-r.Off:hi-r.Off], chunk[lo-pos:hi-pos])
		}
	}
}

// Scatter copies the bytes of a fetched frame (frame data spanning
// [frameOff, frameOff+len(data))) into the member ranges' destination
// buffers. dsts[i] corresponds to ranges[i] and must be at least
// ranges[i].Len long.
func Scatter(frame Frame, frameOff int64, data []byte, ranges []Range, dsts [][]byte) error {
	for _, m := range frame.Members {
		r := ranges[m]
		start := r.Off - frameOff
		if start < 0 || start+r.Len > int64(len(data)) {
			return fmt.Errorf("rangev: frame [%d,+%d) does not cover member range [%d,+%d)",
				frameOff, len(data), r.Off, r.Len)
		}
		copy(dsts[m][:r.Len], data[start:start+r.Len])
	}
	return nil
}
