package rangev

import (
	"bytes"
	"fmt"
	"math/rand"
	"mime/multipart"
	"net/textproto"
	"strings"
	"testing"
	"testing/quick"

	"godavix/internal/bufpool"
)

// serveFrames builds a multipart/byteranges body carrying one part per
// frame (optionally shuffled), the way an HTTP server answers a multi-range
// request.
func serveFrames(t *testing.T, blob []byte, frames []Frame, shuffle *rand.Rand) (body []byte, boundary string) {
	t.Helper()
	parts := make([]Part, len(frames))
	for i, f := range frames {
		parts[i] = Part{Off: f.Off, Data: blob[f.Off:f.End()]}
	}
	if shuffle != nil {
		shuffle.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	}
	var buf bytes.Buffer
	w := multipart.NewWriter(&buf)
	for _, p := range parts {
		h := textproto.MIMEHeader{}
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", p.Off, p.Off+int64(len(p.Data))-1, len(blob)))
		pw, err := w.CreatePart(h)
		if err != nil {
			t.Fatal(err)
		}
		pw.Write(p.Data)
	}
	w.Close()
	return buf.Bytes(), w.Boundary()
}

// TestScatterMultipartRoundTrip is the §2.3 property for the streaming
// parser: arbitrary fragment sets, coalesced, served shuffled, scatter back
// byte-exact.
func TestScatterMultipartRoundTrip(t *testing.T) {
	prop := func(seed int64, n uint8, gapSmall uint8) bool {
		r := rand.New(rand.NewSource(seed))
		blob := make([]byte, 4096)
		r.Read(blob)
		count := int(n%24) + 1
		gap := int64(gapSmall % 64)

		ranges := make([]Range, count)
		for i := range ranges {
			off := r.Int63n(int64(len(blob) - 64))
			ranges[i] = Range{Off: off, Len: r.Int63n(63) + 1}
		}
		frames := Coalesce(ranges, gap)
		body, boundary := serveFrames(t, blob, frames, r)

		dsts := make([][]byte, count)
		for i := range dsts {
			dsts[i] = make([]byte, ranges[i].Len)
		}
		if err := ScatterMultipart(bytes.NewReader(body), boundary, frames, ranges, dsts); err != nil {
			t.Logf("scatter: %v", err)
			return false
		}
		for i, d := range dsts {
			if !bytes.Equal(d, blob[ranges[i].Off:ranges[i].End()]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterMultipartMissingFrame(t *testing.T) {
	blob := []byte("0123456789")
	frames := []Frame{
		{Off: 0, Len: 4, Members: []int{0}},
		{Off: 6, Len: 2, Members: []int{1}},
	}
	ranges := []Range{{Off: 0, Len: 4}, {Off: 6, Len: 2}}
	// Server answers only the first frame.
	body, boundary := serveFrames(t, blob, frames[:1], nil)
	dsts := [][]byte{make([]byte, 4), make([]byte, 2)}
	err := ScatterMultipart(bytes.NewReader(body), boundary, frames, ranges, dsts)
	if err == nil || !strings.Contains(err.Error(), "no part covers frame [6,+2)") {
		t.Fatalf("err = %v", err)
	}
}

func TestScatterMultipartShortPart(t *testing.T) {
	blob := []byte("0123456789")
	// Part declares [0,+2) but the frame needs [0,+4).
	served := []Frame{{Off: 0, Len: 2}}
	body, boundary := serveFrames(t, blob, served, nil)
	frames := []Frame{{Off: 0, Len: 4, Members: []int{0}}}
	ranges := []Range{{Off: 0, Len: 4}}
	err := ScatterMultipart(bytes.NewReader(body), boundary, frames, ranges, [][]byte{make([]byte, 4)})
	if err == nil {
		t.Fatal("expected short-part error")
	}
}

func TestScatterMultipartIgnoresUnrequestedPart(t *testing.T) {
	blob := []byte("abcdefghij")
	served := []Frame{
		{Off: 0, Len: 3},
		{Off: 8, Len: 2}, // not requested
	}
	body, boundary := serveFrames(t, blob, served, nil)
	frames := []Frame{{Off: 0, Len: 3, Members: []int{0}}}
	ranges := []Range{{Off: 0, Len: 3}}
	dst := make([]byte, 3)
	if err := ScatterMultipart(bytes.NewReader(body), boundary, frames, ranges, [][]byte{dst}); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "abc" {
		t.Fatalf("dst = %q", dst)
	}
}

func TestScatterMultipartTruncatedBody(t *testing.T) {
	blob := make([]byte, 256)
	frames := []Frame{{Off: 0, Len: 200, Members: []int{0}}}
	ranges := []Range{{Off: 0, Len: 200}}
	body, boundary := serveFrames(t, blob, frames, nil)
	err := ScatterMultipart(bytes.NewReader(body[:len(body)/2]), boundary, frames, ranges, [][]byte{make([]byte, 200)})
	if err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestScatterMultipartMissingContentRange(t *testing.T) {
	var buf bytes.Buffer
	w := multipart.NewWriter(&buf)
	pw, _ := w.CreatePart(textproto.MIMEHeader{"Content-Type": {"text/plain"}})
	pw.Write([]byte("xx"))
	w.Close()
	frames := []Frame{{Off: 0, Len: 2, Members: []int{0}}}
	ranges := []Range{{Off: 0, Len: 2}}
	err := ScatterMultipart(&buf, w.Boundary(), frames, ranges, [][]byte{make([]byte, 2)})
	if err == nil || !strings.Contains(err.Error(), "Content-Range") {
		t.Fatalf("err = %v", err)
	}
}

// TestStreamScatterRoundTrip checks the single-stream scatter (206 single
// part / 200 fallback) against a sliding chunk boundary: member copies must
// be byte-exact regardless of how the reader fragments the body.
func TestStreamScatterRoundTrip(t *testing.T) {
	blob := make([]byte, 300<<10) // spans multiple 64 KiB scratch chunks
	rand.New(rand.NewSource(9)).Read(blob)
	ranges := []Range{
		{Off: 10, Len: 100},
		{Off: 64<<10 - 50, Len: 200}, // straddles a scratch boundary
		{Off: 128 << 10, Len: 64 << 10},
		{Off: 290 << 10, Len: 512},
	}
	frames := Coalesce(ranges, 0)
	dsts := make([][]byte, len(ranges))
	for i := range dsts {
		dsts[i] = make([]byte, ranges[i].Len)
	}
	// one-byte-at-a-time reader stresses partial chunk arithmetic
	if err := StreamScatter(iotestOneByte{bytes.NewReader(blob)}, 0, frames, ranges, dsts); err != nil {
		t.Fatal(err)
	}
	for i, d := range dsts {
		if !bytes.Equal(d, blob[ranges[i].Off:ranges[i].End()]) {
			t.Fatalf("range %d mismatch", i)
		}
	}
}

func TestStreamScatterOffsetBase(t *testing.T) {
	blob := []byte("..abcdef..")
	// Body starts at absolute offset 100; range wants [102,+4) = "cdef"...
	// actually bytes at body indices 4..8.
	ranges := []Range{{Off: 104, Len: 4}}
	frames := Coalesce(ranges, 0)
	dst := make([]byte, 4)
	if err := StreamScatter(bytes.NewReader(blob), 100, frames, ranges, [][]byte{dst}); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "cdef" {
		t.Fatalf("dst = %q", dst)
	}
}

func TestStreamScatterTruncated(t *testing.T) {
	ranges := []Range{{Off: 0, Len: 10}}
	frames := Coalesce(ranges, 0)
	err := StreamScatter(strings.NewReader("12345"), 0, frames, ranges, [][]byte{make([]byte, 10)})
	if err == nil {
		t.Fatal("expected truncation error")
	}
}

type iotestOneByte struct{ r *bytes.Reader }

func (o iotestOneByte) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// TestVectorPathAllocsDrop pins the ISSUE-2 acceptance bar: the pooled
// streaming scatter must cost less than half the allocations of the seed's
// materialize-then-scatter path on a steady-state multi-range response.
func TestVectorPathAllocsDrop(t *testing.T) {
	blob := make([]byte, 1<<20)
	rand.New(rand.NewSource(4)).Read(blob)
	const k = 128
	ranges := make([]Range, k)
	for i := range ranges {
		ranges[i] = Range{Off: int64(i) * 8192, Len: 512}
	}
	frames := Coalesce(ranges, 0)
	var tt testing.T
	body, boundary := serveFrames(&tt, blob, frames, nil)
	dsts := make([][]byte, k)
	for i := range dsts {
		dsts[i] = make([]byte, 512)
	}

	streaming := testing.AllocsPerRun(20, func() {
		if err := ScatterMultipart(bytes.NewReader(body), boundary, frames, ranges, dsts); err != nil {
			t.Fatal(err)
		}
	})
	// Seed path: parse every part into a fresh buffer, then scatter. Pool
	// disabled to reproduce the pre-pool behaviour exactly.
	bufpool.SetEnabled(false)
	defer bufpool.SetEnabled(true)
	seed := testing.AllocsPerRun(20, func() {
		parts, err := ReadMultipart(bytes.NewReader(body), boundary)
		if err != nil {
			t.Fatal(err)
		}
		if err := ScatterParts(parts, frames, ranges, dsts); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: streaming=%.1f seed=%.1f (%.0f%% drop)", streaming, seed, 100*(1-streaming/seed))
	if streaming > seed/2 {
		t.Fatalf("streaming scatter %.1f allocs/op not ≤ half of seed %.1f", streaming, seed)
	}
}

func BenchmarkScatterMultipart(b *testing.B) {
	blob := make([]byte, 1<<20)
	rand.New(rand.NewSource(4)).Read(blob)
	const k = 128
	ranges := make([]Range, k)
	for i := range ranges {
		ranges[i] = Range{Off: int64(i) * 8192, Len: 512}
	}
	frames := Coalesce(ranges, 0)
	parts := make([]Part, len(frames))
	for i, f := range frames {
		parts[i] = Part{Off: f.Off, Data: blob[f.Off:f.End()]}
	}
	var buf bytes.Buffer
	w := multipart.NewWriter(&buf)
	for _, p := range parts {
		h := textproto.MIMEHeader{}
		h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", p.Off, p.Off+int64(len(p.Data))-1, len(blob)))
		pw, _ := w.CreatePart(h)
		pw.Write(p.Data)
	}
	w.Close()
	body := buf.Bytes()
	dsts := make([][]byte, k)
	for i := range dsts {
		dsts[i] = make([]byte, 512)
	}
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			if err := ScatterMultipart(bytes.NewReader(body), w.Boundary(), frames, ranges, dsts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			parts, err := ReadMultipart(bytes.NewReader(body), w.Boundary())
			if err != nil {
				b.Fatal(err)
			}
			if err := ScatterParts(parts, frames, ranges, dsts); err != nil {
				b.Fatal(err)
			}
			ReleaseParts(parts)
		}
	})
}
