package httpserv

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"godavix/internal/metalink"
	"godavix/internal/rangev"
	"godavix/internal/storage"
	"godavix/internal/webdav"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, storage.Store) {
	t.Helper()
	st := storage.NewMemStore()
	srv := New(st, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, st
}

func TestGetPutDeleteLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/store/f", strings.NewReader("hello dpm"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/store/f")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello dpm" {
		t.Fatalf("GET body = %q", body)
	}
	if resp.Header.Get("X-Checksum") == "" || resp.Header.Get("Accept-Ranges") != "bytes" {
		t.Fatalf("headers = %+v", resp.Header)
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/store/f", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}

	resp, _ = http.Get(ts.URL + "/store/f")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete = %d", resp.StatusCode)
	}
}

func TestSingleRange(t *testing.T) {
	_, ts, st := newTestServer(t, Options{})
	st.Put("/f", []byte("0123456789"))

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/f", nil)
	req.Header.Set("Range", "bytes=2-5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "2345" {
		t.Fatalf("body = %q", body)
	}
	off, length, total, err := rangev.ParseContentRange(resp.Header.Get("Content-Range"))
	if err != nil || off != 2 || length != 4 || total != 10 {
		t.Fatalf("content-range: %d %d %d %v", off, length, total, err)
	}
}

func TestMultiRangeMultipart(t *testing.T) {
	_, ts, st := newTestServer(t, Options{})
	blob := make([]byte, 1000)
	for i := range blob {
		blob[i] = byte(i)
	}
	st.Put("/f", blob)

	ranges := []rangev.Range{{Off: 10, Len: 5}, {Off: 500, Len: 20}, {Off: 990, Len: 10}}
	frames := rangev.Coalesce(ranges, 0)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/f", nil)
	req.Header.Set("Range", rangev.RangeHeader(frames))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	boundary, ok := rangev.IsMultipartByteranges(resp.Header.Get("Content-Type"))
	if !ok {
		t.Fatalf("content-type = %q", resp.Header.Get("Content-Type"))
	}
	parts, err := rangev.ReadMultipart(resp.Body, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	dsts := make([][]byte, len(ranges))
	for i := range dsts {
		dsts[i] = make([]byte, ranges[i].Len)
	}
	if err := rangev.ScatterParts(parts, frames, ranges, dsts); err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		want := blob[r.Off:r.End()]
		if string(dsts[i]) != string(want) {
			t.Fatalf("range %d mismatch", i)
		}
	}
}

func TestHeadReportsSize(t *testing.T) {
	_, ts, st := newTestServer(t, Options{})
	st.Put("/f", make([]byte, 12345))
	resp, err := http.Head(ts.URL + "/f")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.ContentLength != 12345 {
		t.Fatalf("content-length = %d", resp.ContentLength)
	}
}

func TestMkcolAndPropfind(t *testing.T) {
	_, ts, st := newTestServer(t, Options{})
	req, _ := http.NewRequest("MKCOL", ts.URL+"/data", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("MKCOL = %d", resp.StatusCode)
	}
	st.Put("/data/a", []byte("1"))
	st.Put("/data/b", []byte("22"))

	req, _ = http.NewRequest("PROPFIND", ts.URL+"/data", nil)
	req.Header.Set("Depth", "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("PROPFIND = %d", resp.StatusCode)
	}
	entries, err := webdav.DecodeMultistatus(body)
	if err != nil {
		t.Fatal(err)
	}
	// Self + two children.
	if len(entries) != 3 || !entries[0].Dir || entries[1].Href != "/data/a" || entries[2].Size != 2 {
		t.Fatalf("entries = %+v", entries)
	}

	// Depth 0: only self.
	req, _ = http.NewRequest("PROPFIND", ts.URL+"/data", nil)
	req.Header.Set("Depth", "0")
	resp, _ = http.DefaultClient.Do(req)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	entries, _ = webdav.DecodeMultistatus(body)
	if len(entries) != 1 {
		t.Fatalf("depth 0 entries = %d", len(entries))
	}
}

func TestMetalinkNegotiation(t *testing.T) {
	ml := &metalink.Metalink{
		Name: "f",
		Size: 3,
		URLs: []metalink.URL{{Loc: "http://dpm2:80/f", Priority: 1}},
	}
	_, ts, st := newTestServer(t, Options{
		Metalinks: func(p string) *metalink.Metalink {
			if p == "/f" {
				return ml
			}
			return nil
		},
	})
	st.Put("/f", []byte("abc"))

	// Plain GET returns data.
	resp, _ := http.Get(ts.URL + "/f")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "abc" {
		t.Fatalf("plain GET = %q", body)
	}

	// Accept negotiation returns the metalink.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/f", nil)
	req.Header.Set("Accept", metalink.MediaType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != metalink.MediaType {
		t.Fatalf("content-type = %q", got)
	}
	decoded, err := metalink.Decode(body)
	if err != nil || decoded.URLs[0].Loc != "http://dpm2:80/f" {
		t.Fatalf("decoded = %+v err=%v", decoded, err)
	}

	// Query-string negotiation too.
	resp, _ = http.Get(ts.URL + "/f?metalink")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := metalink.Decode(body); err != nil {
		t.Fatalf("?metalink decode: %v", err)
	}

	// Unknown path: 404.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/other", nil)
	req.Header.Set("Accept", metalink.MediaType)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing metalink status = %d", resp.StatusCode)
	}
}

func TestFaultStatusInjection(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{})
	st.Put("/f", []byte("x"))
	srv.SetFault("/f", Fault{Status: http.StatusServiceUnavailable, Remaining: 2})

	for i := 0; i < 2; i++ {
		resp, _ := http.Get(ts.URL + "/f")
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
	// Fault expired after two uses.
	resp, _ := http.Get(ts.URL + "/f")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after fault expiry = %d", resp.StatusCode)
	}
}

func TestFaultDelay(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{})
	st.Put("/slow", []byte("x"))
	srv.SetFault("/slow", Fault{Delay: 50 * time.Millisecond})
	start := time.Now()
	resp, _ := http.Get(ts.URL + "/slow")
	resp.Body.Close()
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("delay fault not applied")
	}
}

func TestWildcardFault(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{})
	st.Put("/a", []byte("x"))
	srv.SetFault("*", Fault{Status: 500, Remaining: 1})
	resp, _ := http.Get(ts.URL + "/a")
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("wildcard fault status = %d", resp.StatusCode)
	}
	srv.ClearFault("*")
	resp, _ = http.Get(ts.URL + "/a")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("after clear = %d", resp.StatusCode)
	}
}

func TestDisableKeepAlive(t *testing.T) {
	_, ts, st := newTestServer(t, Options{DisableKeepAlive: true})
	st.Put("/f", []byte("x"))
	resp, err := http.Get(ts.URL + "/f")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if !resp.Close && resp.Header.Get("Connection") != "close" {
		t.Fatal("keep-alive not disabled")
	}
}

func TestRequestCounters(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{})
	st.Put("/f", []byte("x"))
	for i := 0; i < 3; i++ {
		resp, _ := http.Get(fmt.Sprintf("%s/f?i=%d", ts.URL, i))
		resp.Body.Close()
	}
	resp, _ := http.Head(ts.URL + "/f")
	resp.Body.Close()
	if srv.Requests() != 4 {
		t.Fatalf("requests = %d", srv.Requests())
	}
	if srv.RequestsByMethod("GET") != 3 || srv.RequestsByMethod("HEAD") != 1 {
		t.Fatalf("by method: GET=%d HEAD=%d",
			srv.RequestsByMethod("GET"), srv.RequestsByMethod("HEAD"))
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	req, _ := http.NewRequest("PATCH", ts.URL+"/f", nil)
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestOptionsAdvertisesDAV(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	req, _ := http.NewRequest(http.MethodOptions, ts.URL+"/", nil)
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.Header.Get("DAV") != "1" || !strings.Contains(resp.Header.Get("Allow"), "PROPFIND") {
		t.Fatalf("headers = %+v", resp.Header)
	}
}

// putRange sends one Content-Range chunk and returns the status code.
func putRange(t *testing.T, url string, body []byte, start, end, total int64) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPut, url, strings.NewReader(string(body)))
	req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, end, total))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestRangedPutAssemblesOutOfOrder: chunks arrive out of order and with an
// overlap; commit happens exactly when [0,total) is covered.
func TestRangedPutAssemblesOutOfOrder(t *testing.T) {
	_, ts, st := newTestServer(t, Options{})
	blob := []byte("0123456789abcdef")
	url := ts.URL + "/ranged"

	if code := putRange(t, url, blob[8:16], 8, 15, 16); code != http.StatusAccepted {
		t.Fatalf("tail chunk status = %d, want 202", code)
	}
	if _, err := st.Stat("/ranged"); err == nil {
		t.Fatal("object committed before full coverage")
	}
	// Overlapping middle chunk, then the head: still assembles correctly.
	if code := putRange(t, url, blob[4:12], 4, 11, 16); code != http.StatusAccepted {
		t.Fatalf("middle chunk status = %d, want 202", code)
	}
	if code := putRange(t, url, blob[0:4], 0, 3, 16); code != http.StatusCreated {
		t.Fatalf("final chunk status = %d, want 201", code)
	}
	got, _, err := st.Get("/ranged")
	if err != nil || string(got) != string(blob) {
		t.Fatalf("assembled %q err=%v", got, err)
	}
}

// TestRangedPutRejectsMalformed: bad ranges, length mismatches, and total
// conflicts are refused without corrupting state.
func TestRangedPutRejectsMalformed(t *testing.T) {
	_, ts, st := newTestServer(t, Options{})
	url := ts.URL + "/bad"

	for _, cr := range []string{
		"bytes 4-1/16",  // end before start
		"bytes 0-16/16", // end past total
		"bytes 0-3/*",   // indeterminate total
		"chunks 0-3/16", // wrong unit
		"bytes zero-3/16",
	} {
		req, _ := http.NewRequest(http.MethodPut, url, strings.NewReader("xxxx"))
		req.Header.Set("Content-Range", cr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("Content-Range %q status = %d, want 400", cr, resp.StatusCode)
		}
	}
	// Body length must match the promised range.
	if code := putRange(t, url, []byte("xx"), 0, 3, 16); code != http.StatusBadRequest {
		t.Fatalf("short body status = %d, want 400", code)
	}
	// A different total than the upload in progress is a conflict.
	if code := putRange(t, url, []byte("xxxx"), 0, 3, 16); code != http.StatusAccepted {
		t.Fatalf("first chunk status = %d, want 202", code)
	}
	if code := putRange(t, url, []byte("xxxx"), 4, 7, 32); code != http.StatusConflict {
		t.Fatalf("total mismatch status = %d, want 409", code)
	}
	if _, err := st.Stat("/bad"); err == nil {
		t.Fatal("malformed uploads committed an object")
	}
}

// TestRangedPutDisabled: with DisableRangedPut the server refuses partial
// PUTs with 400 (RFC 9110 §14.4) and never stores chunk bodies.
func TestRangedPutDisabled(t *testing.T) {
	_, ts, st := newTestServer(t, Options{DisableRangedPut: true})
	if code := putRange(t, ts.URL+"/off", []byte("xxxx"), 0, 3, 8); code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	if _, err := st.Stat("/off"); err == nil {
		t.Fatal("chunk stored despite DisableRangedPut")
	}
}

// TestWholePutAbandonsPartial: a whole-body PUT replaces any half-built
// ranged upload for the path.
func TestWholePutAbandonsPartial(t *testing.T) {
	_, ts, st := newTestServer(t, Options{})
	url := ts.URL + "/swap"
	if code := putRange(t, url, []byte("aaaa"), 0, 3, 8); code != http.StatusAccepted {
		t.Fatalf("chunk status = %d", code)
	}
	req, _ := http.NewRequest(http.MethodPut, url, strings.NewReader("whole"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Completing the old ranged upload now starts a fresh assembly rather
	// than resurrecting the abandoned one.
	if code := putRange(t, url, []byte("bbbb"), 4, 7, 8); code != http.StatusAccepted {
		t.Fatalf("post-replace chunk status = %d, want 202 (fresh assembly)", code)
	}
	got, _, err := st.Get("/swap")
	if err != nil || string(got) != "whole" {
		t.Fatalf("stored %q err=%v", got, err)
	}
}
