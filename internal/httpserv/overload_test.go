package httpserv

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"godavix/internal/obs"
)

func snapValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	for _, c := range s.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("snapshot has no counter %q", name)
	return 0
}

// TestAdmissionShedsWithRetryAfter floods a 2-slot gateway whose handler
// blocks, and checks the overflow is shed with 503 + Retry-After while
// admitted requests complete once unblocked.
func TestAdmissionShedsWithRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	var shedSeen atomic.Int64
	srv, ts, st := newTestServer(t, Options{
		Limits: Limits{MaxInFlight: 2, QueueDepth: 1, QueueWait: 20 * time.Millisecond},
		Trace: &obs.ServerTrace{
			Shed: func(client, reason string, ra time.Duration) { shedSeen.Add(1) },
		},
	})
	if err := st.Put("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	srv.SetFault("/slow", Fault{Delay: time.Hour, Remaining: -1})
	_ = gate

	// Fill both slots and the single queue seat with requests that park in
	// the delay fault.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := http.Client{Timeout: 2 * time.Second}
			c.Get(ts.URL + "/slow")
		}()
	}
	// Wait until all three occupy the admission controller.
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.inflight.Load()+srv.adm.queued.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("slots never filled: inflight=%d queued=%d",
				srv.adm.inflight.Load(), srv.adm.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	if shedSeen.Load() == 0 {
		t.Fatal("shed trace hook never fired")
	}
	if got := snapValue(t, srv, "shed_total"); got == 0 {
		t.Fatal("shed_total = 0 after shed")
	}
	// The parked requests hold Timeout'd clients; let them expire.
	wg.Wait()
}

// TestPerClientConcurrencyCap checks one client cannot occupy more than its
// per-client share while another client is still admitted.
func TestPerClientConcurrencyCap(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{
		Limits: Limits{MaxInFlight: 8, PerClientConcurrency: 1, QueueWait: 10 * time.Millisecond},
	})
	if err := st.Put("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	srv.SetFault("/slow", Fault{Delay: 200 * time.Millisecond, Remaining: -1})

	// Hog: one bearer identity parks a request in the delay fault.
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/slow", nil)
		req.Header.Set("Authorization", "Bearer hog")
		close(started)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.inflight.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("hog request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// The hog's second request is shed by its concurrency cap...
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/f", nil)
	req.Header.Set("Authorization", "Bearer hog")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hog second request status = %d, want 503", resp.StatusCode)
	}

	// ...while a different client sails through.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/f", nil)
	req2.Header.Set("Authorization", "Bearer polite")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("other client status = %d, want 200", resp2.StatusCode)
	}
	if got := snapValue(t, srv, "shed_client_concurrency_total"); got != 1 {
		t.Fatalf("shed_client_concurrency_total = %d, want 1", got)
	}
	<-done
}

// TestPerClientRateLimit exhausts one client's token bucket and checks the
// overflow is shed with the rate reason.
func TestPerClientRateLimit(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{
		Limits: Limits{MaxInFlight: 32, PerClientRate: 0.001, PerClientBurst: 2},
	})
	if err := st.Put("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	codes := []int{}
	for i := 0; i < 4; i++ {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/f", nil)
		req.Header.Set("Authorization", "Bearer bursty")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	want := []int{200, 200, 503, 503}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("request %d status = %d, want %d (all: %v)", i, codes[i], want[i], codes)
		}
	}
	if got := snapValue(t, srv, "shed_client_rate_total"); got != 2 {
		t.Fatalf("shed_client_rate_total = %d, want 2", got)
	}
}

// TestBodyStallKilled is the slow-loris test: a client that trickles its
// upload slower than BodyStallTimeout is cut off, and the stall counter
// records the kill.
func TestBodyStallKilled(t *testing.T) {
	srv, ts, _ := newTestServer(t, Options{
		Limits: Limits{BodyStallTimeout: 30 * time.Millisecond},
	})

	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte("begin-"))
		time.Sleep(400 * time.Millisecond) // far past the stall deadline
		pw.Write([]byte("end"))
		pw.Close()
	}()
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/f", pr)
	req.ContentLength = int64(len("begin-end"))
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			t.Fatal("stalled upload committed")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.stallKills.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stall kill never recorded")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHealthyUploadUnaffectedByStallGuard checks a normal-speed upload
// commits under an armed BodyStallTimeout.
func TestHealthyUploadUnaffectedByStallGuard(t *testing.T) {
	_, ts, st := newTestServer(t, Options{
		Limits: Limits{BodyStallTimeout: 200 * time.Millisecond},
	})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/f", strings.NewReader("payload"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	if data, _, err := st.Get("/f"); err != nil || string(data) != "payload" {
		t.Fatalf("stored = %q, %v", data, err)
	}
}

// TestPartialUploadTTLReaped is the leak regression test: an assembly whose
// commit chunk never arrives must be reaped by the janitor with no further
// requests, returning the partial-uploads gauge to zero.
func TestPartialUploadTTLReaped(t *testing.T) {
	var reaped atomic.Int64
	srv, ts, _ := newTestServer(t, Options{
		Limits: Limits{PartialTTL: 40 * time.Millisecond},
		Trace: &obs.ServerTrace{
			PartialReaped: func(path string, age time.Duration) { reaped.Add(1) },
		},
	})

	// First chunk of a two-chunk upload; the second never comes.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/f", strings.NewReader("aaaa"))
	req.Header.Set("Content-Range", "bytes 0-3/8")
	req.Header.Set("X-Upload-Id", "crashed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk status = %d, want 202", resp.StatusCode)
	}
	if got := snapValue(t, srv, "partial_uploads"); got != 1 {
		t.Fatalf("partial_uploads = %d after chunk, want 1", got)
	}

	// No further requests: the janitor alone must reclaim the assembly.
	deadline := time.Now().Add(2 * time.Second)
	for snapValue(t, srv, "partial_uploads") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("partial_uploads stuck at %d after TTL", snapValue(t, srv, "partial_uploads"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reaped.Load() == 0 {
		t.Fatal("PartialReaped trace hook never fired")
	}
	if got := snapValue(t, srv, "partial_reaped_total"); got != 1 {
		t.Fatalf("partial_reaped_total = %d, want 1", got)
	}
}

// TestFaultDropAfterGet checks the DropAfter fault cuts a download
// mid-body after exactly N bytes.
func TestFaultDropAfterGet(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{})
	if err := st.Put("/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	srv.SetFault("/f", Fault{DropAfter: 4})
	resp, err := http.Get(ts.URL + "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength != 10 {
		t.Fatalf("Content-Length = %d, want 10 (full size declared)", resp.ContentLength)
	}
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read completed with %d bytes, want mid-body cut", len(body))
	}
	if len(body) != 4 {
		t.Fatalf("received %d bytes before cut, want 4", len(body))
	}
}

// TestFaultDropAfterPut checks the DropAfter fault kills an upload's
// connection after draining N bytes, with no HTTP response.
func TestFaultDropAfterPut(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{})
	srv.SetFault("/f", Fault{DropAfter: 4})
	body := strings.Repeat("x", 1<<16)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/f", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("PUT got response %d, want connection failure", resp.StatusCode)
	}
	if _, err := st.Stat("/f"); err == nil {
		t.Fatal("dropped upload committed to the store")
	}
}

// TestFaultStallBodyGet checks the StallBody fault pauses a download
// mid-body but then completes it byte-identically.
func TestFaultStallBodyGet(t *testing.T) {
	srv, ts, st := newTestServer(t, Options{})
	if err := st.Put("/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	srv.SetFault("/f", Fault{StallBody: 80 * time.Millisecond})
	start := time.Now()
	resp, err := http.Get(ts.URL + "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "0123456789" {
		t.Fatalf("body = %q", body)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("download finished in %v, want >= stall pause", d)
	}
}

// TestLocalCopyAndMove covers same-server COPY and MOVE through the store's
// two-key namespace operations.
func TestLocalCopyAndMove(t *testing.T) {
	_, ts, st := newTestServer(t, Options{})
	if err := st.Put("/a", []byte("data")); err != nil {
		t.Fatal(err)
	}

	do := func(method, path, dest string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(method, ts.URL+path, nil)
		req.Header.Set("Destination", dest)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Path-only Destination.
	if resp := do("COPY", "/a", "/copied"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("COPY status = %d, want 201", resp.StatusCode)
	}
	if data, _, err := st.Get("/copied"); err != nil || string(data) != "data" {
		t.Fatalf("copied = %q, %v", data, err)
	}
	if _, err := st.Stat("/a"); err != nil {
		t.Fatalf("COPY removed the source: %v", err)
	}

	// Absolute-URL Destination on this same server.
	if resp := do("MOVE", "/a", ts.URL+"/moved"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("MOVE status = %d, want 201", resp.StatusCode)
	}
	if _, err := st.Stat("/a"); err == nil {
		t.Fatal("MOVE left the source behind")
	}
	if data, _, err := st.Get("/moved"); err != nil || string(data) != "data" {
		t.Fatalf("moved = %q, %v", data, err)
	}

	// Cross-server MOVE is refused.
	if resp := do("MOVE", "/moved", "http://elsewhere:80/x"); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("cross-server MOVE status = %d, want 501", resp.StatusCode)
	}
}

// ctxProbeCopier records whether the context handed to downstream storage
// work carried a deadline.
type ctxProbeCopier struct {
	hasDeadline bool
	remaining   time.Duration
}

func (c *ctxProbeCopier) Put(ctx context.Context, host, path string, data []byte) error {
	var dl time.Time
	dl, c.hasDeadline = ctx.Deadline()
	if c.hasDeadline {
		c.remaining = time.Until(dl)
	}
	return nil
}

// TestRequestBudgetCancelsContext checks the whole-request budget reaches
// downstream storage work (here a TPC push) through the request context, so
// an abandoned or overlong request cancels its server-side work.
func TestRequestBudgetCancelsContext(t *testing.T) {
	cp := &ctxProbeCopier{}
	_, ts, st := newTestServer(t, Options{
		Copier: cp,
		Limits: Limits{RequestBudget: 500 * time.Millisecond},
	})
	if err := st.Put("/a", []byte("data")); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("COPY", ts.URL+"/a", nil)
	req.Header.Set("Destination", "http://elsewhere:80/x")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("COPY status = %d, want 201", resp.StatusCode)
	}
	if !cp.hasDeadline {
		t.Fatal("downstream context carried no deadline under RequestBudget")
	}
	if cp.remaining > 510*time.Millisecond {
		t.Fatalf("context deadline %v away, want <= the budget", cp.remaining)
	}
}
