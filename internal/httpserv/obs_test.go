package httpserv

import (
	"bytes"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"godavix/internal/obs"
	"godavix/internal/storage"
)

// TestSnapshotCounters: the server's Snapshot must expose total requests,
// sorted per-method counters and the partial-upload gauge.
func TestSnapshotCounters(t *testing.T) {
	srv, ts, _ := newTestServer(t, Options{})

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/store/f", strings.NewReader("x"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/store/f")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	snap := srv.Snapshot()
	if got := counterValue(t, snap, "requests_total"); got != 3 {
		t.Errorf("requests_total = %d, want 3", got)
	}
	if got := counterValue(t, snap, "requests_get_total"); got != 2 {
		t.Errorf("requests_get_total = %d, want 2", got)
	}
	if got := counterValue(t, snap, "requests_put_total"); got != 1 {
		t.Errorf("requests_put_total = %d, want 1", got)
	}
	if got := counterValue(t, snap, "partial_uploads"); got != 0 {
		t.Errorf("partial_uploads = %d, want 0", got)
	}
	// Per-method counters come out sorted for stable exposition.
	var methods []string
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "requests_") && c.Name != "requests_total" {
			methods = append(methods, c.Name)
		}
	}
	if len(methods) != 2 || methods[0] != "requests_get_total" || methods[1] != "requests_put_total" {
		t.Errorf("method counters = %v, want sorted [requests_get_total requests_put_total]", methods)
	}
}

// counterValue finds name in s, failing the test when absent.
func counterValue(t *testing.T, s obs.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("snapshot has no counter %q: %+v", name, s.Counters)
	return 0
}

// TestServeHandlerDebugSurface drives the exact dpm-server wiring — access
// log outermost, then the debug mux, then the storage handler — over a real
// listener: data requests work, /metrics serves Prometheus text with the
// server's counters, /debug/vars and /debug/pprof answer, and every
// request (debug endpoints included) writes one access-log line.
func TestServeHandlerDebugSurface(t *testing.T) {
	st := storage.NewMemStore()
	st.Put("/store/f", []byte("payload"))
	srv := New(st, Options{})

	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))
	h := obs.AccessLog(logger, obs.DebugMux("dpmserver", srv.Snapshot, srv))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.ServeHandler(l, h)
	base := "http://" + l.Addr().String()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	if code, body, _ := get("/store/f"); code != 200 || body != "payload" {
		t.Fatalf("data GET = %d %q", code, body)
	}
	code, body, hdr := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE dpmserver_requests_total counter",
		"dpmserver_requests_get_total",
		"# TYPE dpmserver_partial_uploads gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if code, body, _ := get("/debug/vars"); code != 200 || !strings.Contains(body, "dpmserver") {
		t.Fatalf("/debug/vars = %d, body %q", code, body)
	}
	if code, _, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	// The snapshot reflects what the data namespace actually served (debug
	// endpoints are handled above the Server, so they do not count here).
	snap := srv.Snapshot()
	if got := counterValue(t, snap, "requests_total"); got != 1 {
		t.Errorf("requests_total = %d, want 1 (only the data GET hits the Server)", got)
	}
	if got := counterValue(t, snap, "requests_get_total"); got != 1 {
		t.Errorf("requests_get_total = %d, want 1", got)
	}

	// One access-log line per request, debug endpoints included.
	mu.Lock()
	lines := strings.Count(buf.String(), "\n")
	logged := buf.String()
	mu.Unlock()
	if lines != 4 {
		t.Errorf("access log has %d lines, want 4:\n%s", lines, logged)
	}
	for _, want := range []string{"path=/store/f", "path=/metrics", "path=/debug/vars", "status=200"} {
		if !strings.Contains(logged, want) {
			t.Errorf("access log missing %q:\n%s", want, logged)
		}
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
