package httpserv

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"godavix/internal/obs"
)

// Limits configures the gateway's overload defences. The zero value
// disables every limit, preserving the unbounded test-fixture behaviour;
// any admission field > 0 arms the admission controller.
type Limits struct {
	// MaxInFlight bounds requests executing concurrently across all
	// clients (the weighted-semaphore width). 0 = unlimited.
	MaxInFlight int
	// QueueDepth bounds how many admitted-but-waiting requests may queue
	// for an in-flight slot before new arrivals are shed. Defaults to
	// MaxInFlight when that is set.
	QueueDepth int
	// QueueWait is the longest a request may sit in the queue before it
	// is shed with 503 (the queue deadline). Default 100ms.
	QueueWait time.Duration
	// PerClientConcurrency caps one client's simultaneous in-flight
	// requests (client = bearer token, else remote host). 0 = unlimited.
	PerClientConcurrency int
	// PerClientRate refills each client's token bucket at this many
	// requests per second. 0 = unlimited.
	PerClientRate float64
	// PerClientBurst is the bucket capacity; defaults to
	// max(1, PerClientRate).
	PerClientBurst int

	// RequestBudget is the whole-request wall-clock budget: the request
	// context is cancelled and the connection's write deadline armed so a
	// response cannot dribble out forever. 0 = no budget.
	RequestBudget time.Duration
	// BodyStallTimeout arms a read deadline before every request-body
	// read: a client that stops sending mid-body (slow loris) is cut off
	// after this long, not held forever. 0 = no stall detection.
	BodyStallTimeout time.Duration
	// ReadHeaderTimeout / IdleTimeout pass through to the http.Server.
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration

	// PartialTTL overrides how long an idle ranged-upload assembly
	// survives before the janitor reaps it. Defaults to one minute.
	PartialTTL time.Duration
	// RetryAfterFloor is the minimum Retry-After advertised on a shed;
	// the actual value scales with queue pressure and is jittered so a
	// shed cohort does not return in lockstep. Default 1s.
	RetryAfterFloor time.Duration
}

// admissionEnabled reports whether any admission limit is armed.
func (l Limits) admissionEnabled() bool {
	return l.MaxInFlight > 0 || l.PerClientConcurrency > 0 || l.PerClientRate > 0
}

// Shed reasons, also the label in shed_<reason>_total counters.
const (
	shedCapacity    = "capacity"
	shedConcurrency = "client_concurrency"
	shedRate        = "client_rate"
)

// clientState is one client's fairness bookkeeping: live request count and
// token bucket.
type clientState struct {
	inflight int
	tokens   float64
	last     time.Time // last bucket refill
	lastSeen time.Time // drives pruning of idle clients
}

// admission is the weighted-semaphore admission controller: a slot channel
// bounds global in-flight work, a counter bounds the wait queue, and a
// per-client table enforces fairness before a request may even compete for
// a slot.
type admission struct {
	lim   Limits
	trace *obs.ServerTrace

	slots chan struct{} // nil when MaxInFlight == 0

	inflight       atomic.Int64
	queued         atomic.Int64
	admittedTotal  atomic.Int64
	admittedQueued atomic.Int64
	shedByReason   [3]atomic.Int64 // capacity, concurrency, rate

	mu      sync.Mutex
	clients map[string]*clientState

	rng atomic.Uint64 // xorshift state for Retry-After jitter
}

func newAdmission(lim Limits, trace *obs.ServerTrace) *admission {
	if lim.QueueDepth <= 0 {
		lim.QueueDepth = lim.MaxInFlight
	}
	if lim.QueueWait <= 0 {
		lim.QueueWait = 100 * time.Millisecond
	}
	if lim.RetryAfterFloor <= 0 {
		lim.RetryAfterFloor = time.Second
	}
	if lim.PerClientRate > 0 && lim.PerClientBurst <= 0 {
		lim.PerClientBurst = int(math.Max(1, lim.PerClientRate))
	}
	a := &admission{
		lim:     lim,
		trace:   trace,
		clients: make(map[string]*clientState),
	}
	if lim.MaxInFlight > 0 {
		a.slots = make(chan struct{}, lim.MaxInFlight)
	}
	a.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return a
}

// clientKey identifies the fairness principal of a request: the bearer
// token when one is presented (so a NATed site shares fate by credential,
// not address), else the remote host.
func clientKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return "token:" + strings.TrimSpace(tok)
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr // netsim addrs carry no port
	}
	return host
}

// admit runs the full admission decision for client. On success it returns
// a release func and ok=true; on shed it returns the reason and the
// Retry-After to advertise.
func (a *admission) admit(ctx context.Context, client string) (release func(), reason string, retryAfter time.Duration, ok bool) {
	// Per-client fairness gate first: a hog is turned away before it can
	// occupy queue space others need.
	perClient := a.lim.PerClientConcurrency > 0 || a.lim.PerClientRate > 0
	if perClient {
		if reason, ok := a.admitClient(client); !ok {
			ra := a.retryAfter()
			a.shedFor(reason).Add(1)
			a.trace.EmitShed(client, reason, ra)
			return nil, reason, ra, false
		}
	}
	releaseClient := func() {
		if perClient {
			a.releaseClient(client)
		}
	}

	if a.slots == nil { // no global bound
		a.inflight.Add(1)
		a.admittedTotal.Add(1)
		a.trace.EmitAdmitted(client, false, 0)
		return func() { a.inflight.Add(-1); releaseClient() }, "", 0, true
	}

	grant := func(queued bool, wait time.Duration) func() {
		a.inflight.Add(1)
		a.admittedTotal.Add(1)
		if queued {
			a.admittedQueued.Add(1)
		}
		a.trace.EmitAdmitted(client, queued, wait)
		return func() {
			a.inflight.Add(-1)
			<-a.slots
			releaseClient()
		}
	}

	select {
	case a.slots <- struct{}{}:
		return grant(false, 0), "", 0, true
	default:
	}

	// No free slot: compete for a bounded queue position.
	if a.queued.Add(1) > int64(a.lim.QueueDepth) {
		a.queued.Add(-1)
		releaseClient()
		ra := a.retryAfter()
		a.shedFor(shedCapacity).Add(1)
		a.trace.EmitShed(client, shedCapacity, ra)
		return nil, shedCapacity, ra, false
	}
	start := time.Now()
	timer := time.NewTimer(a.lim.QueueWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		return grant(true, time.Since(start)), "", 0, true
	case <-timer.C:
	case <-ctx.Done():
	}
	// Queue deadline passed or the client abandoned the request.
	a.queued.Add(-1)
	releaseClient()
	ra := a.retryAfter()
	a.shedFor(shedCapacity).Add(1)
	a.trace.EmitShed(client, shedCapacity, ra)
	return nil, shedCapacity, ra, false
}

// admitClient applies the per-client concurrency cap and token bucket.
func (a *admission) admitClient(client string) (reason string, ok bool) {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.clients[client]
	if cs == nil {
		if len(a.clients) >= 16384 {
			a.pruneClientsLocked(now)
		}
		cs = &clientState{tokens: float64(a.lim.PerClientBurst), last: now}
		a.clients[client] = cs
	}
	cs.lastSeen = now
	if a.lim.PerClientConcurrency > 0 && cs.inflight >= a.lim.PerClientConcurrency {
		return shedConcurrency, false
	}
	if a.lim.PerClientRate > 0 {
		cs.tokens = math.Min(float64(a.lim.PerClientBurst),
			cs.tokens+now.Sub(cs.last).Seconds()*a.lim.PerClientRate)
		cs.last = now
		if cs.tokens < 1 {
			return shedRate, false
		}
		cs.tokens--
	}
	cs.inflight++
	return "", true
}

func (a *admission) releaseClient(client string) {
	a.mu.Lock()
	if cs := a.clients[client]; cs != nil {
		cs.inflight--
	}
	a.mu.Unlock()
}

// pruneClientsLocked evicts idle clients so the fairness table cannot grow
// without bound under address churn. Caller holds a.mu.
func (a *admission) pruneClientsLocked(now time.Time) {
	cutoff := now.Add(-time.Minute)
	for k, cs := range a.clients {
		if cs.inflight == 0 && cs.lastSeen.Before(cutoff) {
			delete(a.clients, k)
		}
	}
}

func (a *admission) shedFor(reason string) *atomic.Int64 {
	switch reason {
	case shedConcurrency:
		return &a.shedByReason[1]
	case shedRate:
		return &a.shedByReason[2]
	default:
		return &a.shedByReason[0]
	}
}

func (a *admission) shedTotal() int64 {
	return a.shedByReason[0].Load() + a.shedByReason[1].Load() + a.shedByReason[2].Load()
}

// retryAfter derives the backoff advertised on a shed: the configured
// floor, scaled up with queue pressure (a fuller queue pushes clients
// further away) and jittered ±25% so a shed cohort does not come back as a
// synchronized thundering herd.
func (a *admission) retryAfter() time.Duration {
	load := 1.0
	if a.lim.QueueDepth > 0 {
		load += float64(a.queued.Load()) / float64(a.lim.QueueDepth)
	}
	d := float64(a.lim.RetryAfterFloor) * load
	// xorshift64* step for the jitter; quality is irrelevant, decorrelation
	// across sheds is the point.
	for {
		old := a.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if a.rng.CompareAndSwap(old, x) {
			frac := float64(x%1000) / 1000 // [0,1)
			d *= 0.75 + 0.5*frac
			break
		}
	}
	return time.Duration(d)
}

// retryAfterHeader renders d as the Retry-After header value: integer
// seconds, rounded up, never below 1 (the header has no sub-second form).
func retryAfterHeader(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// stallReader guards a request body against slow-loris senders: before
// every Read it arms the connection's read deadline, so a client that goes
// quiet mid-body is cut off after stall rather than pinning a slot
// forever. On clean EOF the deadline is disarmed so keep-alive reuse is
// unaffected.
type stallReader struct {
	body   io.ReadCloser
	ctrl   *http.ResponseController
	stall  time.Duration
	budget time.Time // absolute whole-request deadline; zero = none
	srv    *Server
	client string
	killed bool
}

func (sr *stallReader) Read(p []byte) (int, error) {
	dl := time.Now().Add(sr.stall)
	if !sr.budget.IsZero() && sr.budget.Before(dl) {
		dl = sr.budget
	}
	// Unsupported conns (no deadline support) degrade to unprotected reads.
	_ = sr.ctrl.SetReadDeadline(dl)
	n, err := sr.body.Read(p)
	if err != nil {
		if errIsTimeout(err) && !sr.killed {
			sr.killed = true
			sr.srv.stallKills.Add(1)
			sr.srv.opts.Trace.EmitSlowClient(sr.client, "read-stall")
		} else {
			_ = sr.ctrl.SetReadDeadline(time.Time{})
		}
	}
	return n, err
}

func (sr *stallReader) Close() error { return sr.body.Close() }

func errIsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
