// Package httpserv implements the storage-server side of the paper's
// testbed: a DPM-like HTTP/1.1 + WebDAV front-end over a storage.Store.
//
// It intentionally builds on net/http: the paper's whole argument is that
// davix talks to *standard* HTTP services, so the server here is a stock
// HTTP stack (with single- and multi-range support via http.ServeContent)
// while the client side is the custom optimized layer. Knobs exist to
// disable keep-alive (to measure the Figure-2 effect) and to inject faults
// (to exercise the §2.4 Metalink failover).
package httpserv

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"godavix/internal/digest"
	"godavix/internal/metalink"
	"godavix/internal/obs"
	"godavix/internal/s3"
	"godavix/internal/storage"
	"godavix/internal/webdav"
)

// MetalinkProvider resolves the Metalink document for a namespace path.
// Returning nil means no replica information is available.
type MetalinkProvider func(path string) *metalink.Metalink

// Options configures a Server.
type Options struct {
	// DisableKeepAlive forces Connection: close on every response,
	// emulating an HTTP/1.0-era server (Figure 2 baseline).
	DisableKeepAlive bool

	// Metalinks, when set, answers Metalink negotiation (an Accept:
	// application/metalink+xml GET, or ?metalink) for any path.
	Metalinks MetalinkProvider

	// Redirect, when set, lets this server act as a DPM head node: data
	// operations (GET/HEAD/PUT) whose path it maps are answered with a
	// 302 to the disk node returned ("http://disk1:80/pool/f"); metadata
	// operations are always handled locally.
	Redirect func(method, path string) (location string, ok bool)

	// Authorize, when set, validates the Authorization header of every
	// request; a false return yields 401.
	Authorize func(authorization string) bool

	// Copier, when set, enables WebDAV third-party COPY: the server
	// pushes the source object to the URL in the Destination header
	// through this client (HTTP-TPC push mode, as deployed on the WLCG).
	// *core.Client satisfies this interface.
	Copier Copier

	// S3Secrets, when set, makes the server require a valid AWS SigV4
	// signature on every request; it maps access keys to secrets
	// (return "" for unknown keys).
	S3Secrets func(accessKey string) string

	// DisableRangedPut makes the server refuse PUTs carrying a
	// Content-Range header with 400, the RFC 9110 §14.4 behaviour of an
	// origin that does not implement partial PUTs. Used to exercise the
	// client's single-stream upload fallback.
	DisableRangedPut bool

	// Limits arms the gateway's overload defences: admission control,
	// per-client fairness, deadlines, stall protection. The zero value
	// keeps the historical unbounded test-fixture behaviour.
	Limits Limits

	// Trace, when set, receives gateway events (admissions, sheds,
	// slow-client kills, reaped assemblies). Nil is free.
	Trace *obs.ServerTrace
}

// Copier pushes an object to another storage server.
type Copier interface {
	// Put uploads data to path on host.
	Put(ctx context.Context, host, path string, data []byte) error
}

// Fault describes injected misbehaviour for a path ("*" matches all).
type Fault struct {
	// Status, when non-zero, is returned instead of serving the request.
	Status int
	// Delay is slept before handling (creates head-of-line blocking).
	Delay time.Duration
	// Abort, when true, kills the connection without writing a response
	// (models a server crash mid-request).
	Abort bool
	// TruncateBody, when positive, serves only that many body bytes and
	// then aborts the connection (models a transfer cut mid-stream).
	TruncateBody int64
	// CorruptXOR, when non-zero, serves GET responses from a copy of the
	// object whose byte at offset CorruptAt has been XORed with it, while
	// X-Checksum and Digest headers keep advertising the pristine content
	// — models silent storage or wire corruption that only end-to-end
	// integrity verification can catch.
	CorruptXOR byte
	// CorruptAt is the absolute object offset of the flipped byte.
	CorruptAt int64
	// DropAfter, when positive, kills the TCP connection after N body
	// bytes have moved: a GET serves N payload bytes then aborts, a
	// bodied request drains N upload bytes then aborts — a mid-transfer
	// connection drop, not a status code.
	DropAfter int64
	// StallBody, when positive, pauses mid-body for that long: a GET
	// writes half the payload, flushes, and goes silent before finishing;
	// a bodied request stops draining the upload at the halfway point.
	// Models a stalled server so client-side stall detection has a real
	// adversary.
	StallBody time.Duration
	// Remaining, when positive, auto-expires the fault after that many
	// requests; negative means unlimited.
	Remaining int
	// After, when positive, lets that many matching requests through
	// unharmed before the fault starts firing — e.g. pass a multi-stream
	// upload's probe chunk and fail a sibling.
	After int
}

// Server is a DPM-like storage server.
type Server struct {
	store storage.Store
	opts  Options

	mu     sync.Mutex
	faults map[string]*Fault

	// partials assembles in-progress ranged (Content-Range) uploads, one
	// per path and upload id (the client's X-Upload-Id keeps concurrent
	// uploads to one path from interleaving into a corrupt blend), until
	// every byte of the declared total has arrived.
	partialMu sync.Mutex
	partials  map[partialKey]*partialUpload
	// janitorOn (under partialMu) records whether the TTL janitor
	// goroutine is running; it exits when the table empties or on Close.
	janitorOn bool

	// adm is the admission controller; nil when no limit is armed.
	adm *admission

	requests      atomic.Int64
	byMethod      sync.Map // method -> *atomic.Int64
	stallKills    atomic.Int64
	partialReaped atomic.Int64

	closeCh   chan struct{}
	closeOnce sync.Once
}

// Ranged-upload assembly bounds: total size and concurrent-assembly caps
// refuse runaway requests, and assemblies idle past partialTTL are swept
// when a new one is created — an aborted multi-stream upload cannot pin
// its buffer forever.
const (
	maxPartialTotal = 1 << 30
	maxPartials     = 64
	partialTTL      = time.Minute
)

// partialKey identifies one upload assembly: the target path plus the
// client's X-Upload-Id ("" when the client sent none).
type partialKey struct {
	path string
	id   string
}

// partialUpload is a ranged upload being assembled: the full-size buffer
// plus the sorted disjoint intervals already written, so out-of-order and
// overlapping chunks are both handled and commit happens exactly when the
// whole [0, total) range is covered.
type partialUpload struct {
	data      []byte
	intervals []ivl // sorted, non-overlapping
	// writers counts chunk bodies currently streaming into data; the
	// committing request waits for them so the zero-copy handoff to the
	// store never races a late duplicate's copy.
	writers sync.WaitGroup
	// active mirrors the writers count under partialMu so the idle sweep
	// never drops an assembly whose chunk body is still streaming.
	active int
	// lastTouch drives the idle sweep.
	lastTouch time.Time
}

type ivl struct{ start, end int64 } // [start, end)

// add merges [start, end) into the coverage set and reports the total
// number of bytes covered afterwards.
func (p *partialUpload) add(start, end int64) int64 {
	merged := make([]ivl, 0, len(p.intervals)+1)
	covered := int64(0)
	cur := ivl{start, end}
	placed := false
	for _, iv := range p.intervals {
		switch {
		case iv.end < cur.start:
			merged = append(merged, iv)
		case cur.end < iv.start:
			if !placed {
				merged = append(merged, cur)
				placed = true
			}
			merged = append(merged, iv)
		default: // overlap or touch: absorb into cur
			cur.start = min(cur.start, iv.start)
			cur.end = max(cur.end, iv.end)
		}
	}
	if !placed {
		merged = append(merged, cur)
	}
	p.intervals = merged
	for _, iv := range merged {
		covered += iv.end - iv.start
	}
	return covered
}

// New creates a Server over store.
func New(store storage.Store, opts Options) *Server {
	s := &Server{
		store:    store,
		opts:     opts,
		faults:   make(map[string]*Fault),
		partials: make(map[partialKey]*partialUpload),
		closeCh:  make(chan struct{}),
	}
	if opts.Limits.admissionEnabled() {
		s.adm = newAdmission(opts.Limits, opts.Trace)
	}
	return s
}

// Close stops the Server's background maintenance (the partial-upload
// janitor). The Server keeps serving requests; abandoned assemblies are
// then only swept opportunistically on new-assembly creation.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closeCh) })
}

// partialTTLValue is the configured assembly TTL (Limits.PartialTTL, else
// the historical one-minute default).
func (s *Server) partialTTLValue() time.Duration {
	if s.opts.Limits.PartialTTL > 0 {
		return s.opts.Limits.PartialTTL
	}
	return partialTTL
}

// SetFault installs (or replaces) a fault for path p ("*" = every path).
func (s *Server) SetFault(p string, f Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.Remaining == 0 {
		f.Remaining = -1
	}
	cp := f
	s.faults[p] = &cp
}

// ClearFault removes the fault for p.
func (s *Server) ClearFault(p string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.faults, p)
}

// takeFault fetches the active fault for p, consuming one use.
func (s *Server) takeFault(p string) *Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range []string{p, "*"} {
		f, ok := s.faults[key]
		if !ok {
			continue
		}
		if f.After > 0 {
			f.After--
			return nil
		}
		if f.Remaining > 0 {
			f.Remaining--
			if f.Remaining == 0 {
				delete(s.faults, key)
			}
		}
		cp := *f
		return &cp
	}
	return nil
}

// Requests reports the total number of requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

// RequestsByMethod reports how many requests used the given method.
func (s *Server) RequestsByMethod(method string) int64 {
	v, ok := s.byMethod.Load(method)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

// Snapshot renders the server's counters in the exposition shape: total
// requests, per-method counts (sorted), and in-progress ranged-upload
// assemblies. Safe to call concurrently with in-flight requests.
func (s *Server) Snapshot() obs.Snapshot {
	type mc struct {
		method string
		n      int64
	}
	var methods []mc
	s.byMethod.Range(func(k, v any) bool {
		methods = append(methods, mc{k.(string), v.(*atomic.Int64).Load()})
		return true
	})
	sort.Slice(methods, func(i, j int) bool { return methods[i].method < methods[j].method })
	s.partialMu.Lock()
	partials := int64(len(s.partials))
	s.partialMu.Unlock()
	out := obs.Snapshot{Counters: []obs.Counter{
		{Name: "requests_total", Help: "HTTP requests served.", Value: s.requests.Load()},
	}}
	for _, m := range methods {
		out.Counters = append(out.Counters, obs.Counter{
			Name:  "requests_" + strings.ToLower(m.method) + "_total",
			Help:  "Requests served with method " + m.method + ".",
			Value: m.n,
		})
	}
	out.Counters = append(out.Counters, obs.Counter{
		Name: "partial_uploads", Help: "Ranged-upload assemblies currently in progress.",
		Value: partials, Gauge: true,
	}, obs.Counter{
		Name: "partial_reaped_total", Help: "Abandoned ranged-upload assemblies reaped by TTL.",
		Value: s.partialReaped.Load(),
	}, obs.Counter{
		Name: "stall_kills_total", Help: "Connections cut for stalling mid-body (slow loris).",
		Value: s.stallKills.Load(),
	})
	if a := s.adm; a != nil {
		a.mu.Lock()
		tracked := int64(len(a.clients))
		active := int64(0)
		for _, cs := range a.clients {
			if cs.inflight > 0 {
				active++
			}
		}
		a.mu.Unlock()
		out.Counters = append(out.Counters,
			obs.Counter{Name: "inflight", Help: "Requests currently executing.",
				Value: a.inflight.Load(), Gauge: true},
			obs.Counter{Name: "admission_queue", Help: "Requests waiting for an in-flight slot.",
				Value: a.queued.Load(), Gauge: true},
			obs.Counter{Name: "admitted_total", Help: "Requests admitted.",
				Value: a.admittedTotal.Load()},
			obs.Counter{Name: "admitted_queued_total", Help: "Admitted requests that waited in the queue.",
				Value: a.admittedQueued.Load()},
			obs.Counter{Name: "shed_total", Help: "Requests shed with 503.",
				Value: a.shedTotal()},
			obs.Counter{Name: "shed_capacity_total", Help: "Sheds for global capacity (queue full or queue deadline).",
				Value: a.shedByReason[0].Load()},
			obs.Counter{Name: "shed_client_concurrency_total", Help: "Sheds for the per-client concurrency cap.",
				Value: a.shedByReason[1].Load()},
			obs.Counter{Name: "shed_client_rate_total", Help: "Sheds for the per-client rate limit.",
				Value: a.shedByReason[2].Load()},
			obs.Counter{Name: "clients_tracked", Help: "Clients in the fairness table.",
				Value: tracked, Gauge: true},
			obs.Counter{Name: "clients_active", Help: "Clients with at least one request in flight.",
				Value: active, Gauge: true},
		)
	}
	return out
}

// Serve runs an HTTP server on l until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	return s.ServeHandler(l, s)
}

// ServeHandler runs an HTTP server on l with h as the root handler —
// normally this Server wrapped in observability middleware (access log,
// debug endpoints). Keep-alive policy follows Options.DisableKeepAlive
// regardless of the wrapping.
func (s *Server) ServeHandler(l net.Listener, h http.Handler) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: s.opts.Limits.ReadHeaderTimeout,
		IdleTimeout:       s.opts.Limits.IdleTimeout,
	}
	srv.SetKeepAlivesEnabled(!s.opts.DisableKeepAlive)
	err := srv.Serve(l)
	if errors.Is(err, net.ErrClosed) || errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ServeHTTP implements http.Handler: the overload-defence layer (admission,
// deadlines, stall protection) wrapped around the WebDAV dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	v, _ := s.byMethod.LoadOrStore(r.Method, &atomic.Int64{})
	v.(*atomic.Int64).Add(1)

	// Admission first: a shed request costs one header parse and a 503 —
	// it never allocates buffers, touches the store, or holds a slot.
	if s.adm != nil {
		release, reason, ra, ok := s.adm.admit(r.Context(), clientKey(r))
		if !ok {
			w.Header().Set("Retry-After", retryAfterHeader(ra))
			http.Error(w, "overloaded: "+reason, http.StatusServiceUnavailable)
			return
		}
		defer release()
	}

	lim := s.opts.Limits
	if lim.RequestBudget > 0 {
		// Whole-request budget: cancels downstream work (TPC pushes honour
		// the context) and arms the connection write deadline so a response
		// cannot dribble to an undraining client forever. The deadline is
		// disarmed on the way out so keep-alive reuse is unaffected.
		ctx, cancel := context.WithTimeout(r.Context(), lim.RequestBudget)
		defer cancel()
		r = r.WithContext(ctx)
		rc := http.NewResponseController(w)
		_ = rc.SetWriteDeadline(time.Now().Add(lim.RequestBudget))
		defer rc.SetWriteDeadline(time.Time{})
	}
	if lim.BodyStallTimeout > 0 && r.Body != nil && bodiedMethod(r.Method) {
		var budget time.Time
		if lim.RequestBudget > 0 {
			budget = time.Now().Add(lim.RequestBudget)
		}
		r.Body = &stallReader{
			body:   r.Body,
			ctrl:   http.NewResponseController(w),
			stall:  lim.BodyStallTimeout,
			budget: budget,
			srv:    s,
			client: clientKey(r),
		}
	}

	s.handle(w, r)
}

// bodiedMethod reports whether requests of this method carry a body the
// stall guard should watch.
func bodiedMethod(m string) bool {
	switch m {
	case http.MethodPut, http.MethodPost, http.MethodPatch, "PROPFIND":
		return true
	}
	return false
}

// handle is the WebDAV dispatch under the defence layer.
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	p := storage.Clean(r.URL.Path)

	if s.opts.Authorize != nil && !s.opts.Authorize(r.Header.Get("Authorization")) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="godavix", Basic realm="godavix"`)
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	if s.opts.S3Secrets != nil {
		err := s3.VerifyRequest(r.Method, r.URL.RequestURI(), r.Host,
			r.Header.Get("Authorization"), r.Header.Get("X-Amz-Date"),
			r.Header.Get("X-Amz-Content-Sha256"), s.opts.S3Secrets, time.Now(), 0)
		if err != nil {
			http.Error(w, "signature verification failed: "+err.Error(), http.StatusForbidden)
			return
		}
	}

	if f := s.takeFault(p); f != nil {
		if f.Delay > 0 {
			// The head-of-line delay honours cancellation: an abandoned
			// client (or an expired request budget) releases the slot
			// instead of pinning it for the full injected delay.
			select {
			case <-time.After(f.Delay):
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			}
		}
		if f.Abort {
			panic(http.ErrAbortHandler)
		}
		if f.TruncateBody > 0 && r.Method == http.MethodGet {
			s.serveTruncated(w, p, f.TruncateBody)
			return
		}
		if f.DropAfter > 0 {
			if r.Method == http.MethodGet {
				// Downstream drop: serve DropAfter payload bytes, then cut.
				s.serveTruncated(w, p, f.DropAfter)
				return
			}
			// Upstream drop: drain DropAfter upload bytes, then cut the
			// connection with no response at all.
			io.CopyN(io.Discard, r.Body, f.DropAfter)
			panic(http.ErrAbortHandler)
		}
		if f.StallBody > 0 {
			if r.Method == http.MethodGet {
				s.serveStalled(w, p, f.StallBody)
				return
			}
			// Bodied request: stop draining at the halfway point for the
			// stall, then continue normally — the client sees its upload
			// freeze mid-body.
			r.Body = &pauseBody{rc: r.Body, pause: f.StallBody, at: r.ContentLength / 2}
		}
		if f.CorruptXOR != 0 && r.Method == http.MethodGet {
			s.serveCorrupt(w, r, p, f)
			return
		}
		if f.Status != 0 {
			http.Error(w, fmt.Sprintf("injected fault %d", f.Status), f.Status)
			return
		}
	}
	if s.opts.DisableKeepAlive {
		w.Header().Set("Connection", "close")
	}

	// DPM head-node behaviour: hand data operations off to disk nodes.
	if s.opts.Redirect != nil && !wantsMetalink(r) {
		switch r.Method {
		case http.MethodGet, http.MethodHead, http.MethodPut:
			if loc, ok := s.opts.Redirect(r.Method, p); ok {
				w.Header().Set("Location", loc)
				w.WriteHeader(http.StatusFound)
				return
			}
		}
	}

	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.serveGet(w, r, p)
	case http.MethodPut:
		s.servePut(w, r, p)
	case "COPY":
		s.serveCopy(w, r, p)
	case "MOVE":
		s.serveMove(w, r, p)
	case http.MethodDelete:
		s.serveDelete(w, p)
	case "MKCOL":
		s.serveMkcol(w, p)
	case "PROPFIND":
		s.servePropfind(w, r, p)
	case http.MethodOptions:
		w.Header().Set("Allow", "OPTIONS, GET, HEAD, PUT, DELETE, MKCOL, PROPFIND, COPY, MOVE")
		w.Header().Set("DAV", "1")
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// wantsMetalink reports whether the request negotiates a Metalink document.
func wantsMetalink(r *http.Request) bool {
	if r.URL.Query().Has("metalink") {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), metalink.MediaType)
}

func (s *Server) serveGet(w http.ResponseWriter, r *http.Request, p string) {
	if s.opts.Metalinks != nil && wantsMetalink(r) {
		if ml := s.opts.Metalinks(p); ml != nil {
			body, err := metalink.Encode(ml)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", metalink.MediaType)
			w.Header().Set("Content-Length", fmt.Sprint(len(body)))
			w.WriteHeader(http.StatusOK)
			if r.Method != http.MethodHead {
				w.Write(body)
			}
			return
		}
		http.Error(w, "no metalink available", http.StatusNotFound)
		return
	}

	data, inf, err := s.store.Get(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("X-Checksum", inf.Checksum)
	w.Header().Set("Content-Type", "application/octet-stream")
	setDigestHeader(w, r, data)
	// ServeContent implements If-Range, single-range (206 +
	// Content-Range) and multi-range (multipart/byteranges) semantics —
	// the standards-compliant server behaviour the davix client targets.
	http.ServeContent(w, r, path.Base(p), inf.ModTime, bytes.NewReader(data))
}

// serveCorrupt is the CorruptXOR fault: the body comes from a flipped copy
// of the object while every integrity header (X-Checksum, Digest) keeps
// describing the pristine content, so a verifying client must detect the
// damage and a non-verifying one must not.
func (s *Server) serveCorrupt(w http.ResponseWriter, r *http.Request, p string, f *Fault) {
	data, inf, err := s.store.Get(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	bad := make([]byte, len(data))
	copy(bad, data)
	if f.CorruptAt >= 0 && f.CorruptAt < int64(len(bad)) {
		bad[f.CorruptAt] ^= f.CorruptXOR
	}
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("X-Checksum", inf.Checksum)
	w.Header().Set("Content-Type", "application/octet-stream")
	setDigestHeader(w, r, data)
	http.ServeContent(w, r, path.Base(p), inf.ModTime, bytes.NewReader(bad))
}

// setDigestHeader answers a Want-Digest request (RFC 3230 style, hex
// values per the WLCG convention) with the digest of the payload this
// response will carry: the single requested range when the request names
// one, the whole object otherwise. Multi-range and conditional requests
// are left without a Digest — the framing is not a single contiguous
// payload there. pristine is always the true stored content, so a
// corruption fault advertises the digest the bytes should have had.
func setDigestHeader(w http.ResponseWriter, r *http.Request, pristine []byte) {
	algo := strings.ToLower(strings.TrimSpace(r.Header.Get("Want-Digest")))
	if i := strings.IndexAny(algo, ",;"); i >= 0 {
		algo = strings.TrimSpace(algo[:i])
	}
	if algo == "" || !digest.Supported(algo) {
		return
	}
	body := pristine
	if rng := r.Header.Get("Range"); rng != "" {
		start, end, ok := parseSingleRange(rng, int64(len(pristine)))
		if !ok {
			return
		}
		body = pristine[start:end]
	}
	h, err := digest.New(algo)
	if err != nil {
		return
	}
	h.Write(body)
	w.Header().Set("Digest", algo+"="+hex.EncodeToString(h.Sum(nil)))
}

// parseSingleRange parses a one-range "bytes=a-b" / "bytes=a-" / "bytes=-n"
// header the way http.ServeContent will resolve it against size, returning
// the half-open [start, end) span. Multi-range or malformed headers report
// ok=false.
func parseSingleRange(rng string, size int64) (start, end int64, ok bool) {
	spec, found := strings.CutPrefix(rng, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	lo, hi, found := strings.Cut(strings.TrimSpace(spec), "-")
	if !found {
		return 0, 0, false
	}
	if lo == "" {
		// Suffix range: last hi bytes.
		n, err := strconv.ParseInt(hi, 10, 64)
		if err != nil || n <= 0 {
			return 0, 0, false
		}
		if n > size {
			n = size
		}
		return size - n, size, true
	}
	a, err := strconv.ParseInt(lo, 10, 64)
	if err != nil || a < 0 || a >= size {
		return 0, 0, false
	}
	b := size - 1
	if hi != "" {
		if b, err = strconv.ParseInt(hi, 10, 64); err != nil || b < a {
			return 0, 0, false
		}
		if b > size-1 {
			b = size - 1
		}
	}
	return a, b + 1, true
}

func (s *Server) servePut(w http.ResponseWriter, r *http.Request, p string) {
	if cr := r.Header.Get("Content-Range"); cr != "" {
		if s.opts.DisableRangedPut {
			// RFC 9110 §14.4: an origin that cannot honour Content-Range
			// on PUT must reject the request rather than store a chunk as
			// the whole object.
			http.Error(w, "Content-Range on PUT not supported", http.StatusBadRequest)
			return
		}
		s.serveRangedPut(w, r, p, cr)
		return
	}
	if r.ContentLength > maxPartialTotal {
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return
	}
	data, err := readBody(r)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), code)
		return
	}
	// A whole-body PUT replaces the object: any half-assembled ranged
	// upload for the path (every upload id) is abandoned.
	s.partialMu.Lock()
	for k := range s.partials {
		if k.path == p {
			delete(s.partials, k)
		}
	}
	s.partialMu.Unlock()
	if err := s.store.Put(p, data); err != nil {
		writeStoreErr(w, err)
		return
	}
	// Echo what was actually stored: a verifying client compares this
	// against the digest it accumulated while streaming the body, closing
	// the upload's end-to-end integrity loop at zero extra reads.
	setStoredDigest(w, data)
	w.WriteHeader(http.StatusCreated)
}

// setStoredDigest attaches the Digest of committed upload bytes to a PUT
// response (adler32, the WLCG default this testbed standardizes on).
func setStoredDigest(w http.ResponseWriter, data []byte) {
	w.Header().Set("Digest",
		digest.Adler32+"="+fmt.Sprintf("%08x", digest.Sum32(digest.Adler32, data)))
}

// errBodyTooLarge marks a request body over the maxPartialTotal cap.
var errBodyTooLarge = errors.New("httpserv: body too large")

// readBody drains a request body. Content-Length-framed bodies land in one
// exactly-sized allocation instead of io.ReadAll's grow-and-copy loop —
// uploads are this server's hottest write path. A body shorter than its
// declared length (connection cut mid-upload) is an error: truncated
// uploads must never commit. Chunked bodies are bounded by the same
// maxPartialTotal cap the length-framed paths enforce.
func readBody(r *http.Request) ([]byte, error) {
	if r.ContentLength < 0 {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxPartialTotal+1))
		if err == nil && int64(len(b)) > maxPartialTotal {
			return nil, errBodyTooLarge
		}
		return b, err
	}
	buf := make([]byte, r.ContentLength)
	if _, err := io.ReadFull(r.Body, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// parseContentRange parses a "bytes start-end/total" upload range. The
// total must be concrete (no "*"): commit is decided by coverage of it.
func parseContentRange(cr string) (start, end, total int64, ok bool) {
	rest, found := strings.CutPrefix(cr, "bytes ")
	if !found {
		return 0, 0, 0, false
	}
	span, totalStr, found := strings.Cut(rest, "/")
	if !found {
		return 0, 0, 0, false
	}
	startStr, endStr, found := strings.Cut(span, "-")
	if !found {
		return 0, 0, 0, false
	}
	var err error
	if start, err = strconv.ParseInt(startStr, 10, 64); err != nil {
		return 0, 0, 0, false
	}
	if end, err = strconv.ParseInt(endStr, 10, 64); err != nil {
		return 0, 0, 0, false
	}
	if total, err = strconv.ParseInt(totalStr, 10, 64); err != nil {
		return 0, 0, 0, false
	}
	if start < 0 || end < start || total <= end {
		return 0, 0, 0, false
	}
	return start, end, total, true
}

// ownedPutter is the optional zero-copy commit path a Store may offer
// (MemStore does): the server hands over the assembled buffer instead of
// having it copied again.
type ownedPutter interface {
	PutOwned(p string, data []byte) error
}

// serveRangedPut assembles one Content-Range chunk into the path's partial
// upload, committing to the store when every byte of the declared total
// has arrived: 202 Accepted per partial chunk, 201 Created on commit. The
// davix client PUTs disjoint chunks concurrently over pooled connections;
// out-of-order and duplicate arrivals are both tolerated. Chunk bodies
// stream directly into the assembly buffer — concurrent chunks copy in
// parallel, only the interval bookkeeping is serialized.
func (s *Server) serveRangedPut(w http.ResponseWriter, r *http.Request, p, cr string) {
	start, end, total, ok := parseContentRange(cr)
	if !ok {
		http.Error(w, "malformed Content-Range: "+cr, http.StatusBadRequest)
		return
	}
	want := end - start + 1
	if r.ContentLength >= 0 && r.ContentLength != want {
		http.Error(w, fmt.Sprintf("body is %d bytes, Content-Range promises %d", r.ContentLength, want), http.StatusBadRequest)
		return
	}
	if total > maxPartialTotal {
		http.Error(w, "upload total too large", http.StatusRequestEntityTooLarge)
		return
	}
	key := partialKey{path: p, id: r.Header.Get("X-Upload-Id")}

	s.partialMu.Lock()
	pu := s.partials[key]
	if pu == nil {
		s.sweepPartialsLocked()
		if len(s.partials) >= maxPartials {
			s.partialMu.Unlock()
			http.Error(w, "too many uploads in progress", http.StatusServiceUnavailable)
			return
		}
		// Allocate the assembly buffer outside the lock; another chunk may
		// win the race, in which case ours is dropped.
		s.partialMu.Unlock()
		fresh := &partialUpload{data: make([]byte, total)}
		s.partialMu.Lock()
		if pu = s.partials[key]; pu == nil {
			// Re-check the cap: other first chunks may have inserted while
			// the lock was released for the allocation.
			if len(s.partials) >= maxPartials {
				s.partialMu.Unlock()
				http.Error(w, "too many uploads in progress", http.StatusServiceUnavailable)
				return
			}
			pu = fresh
			s.partials[key] = pu
			s.maybeStartJanitorLocked()
		}
	}
	if int64(len(pu.data)) != total {
		s.partialMu.Unlock()
		http.Error(w, "total differs from upload in progress", http.StatusConflict)
		return
	}
	pu.lastTouch = time.Now()
	// Registered under the lock while pu is current: the committer deletes
	// the map entry under this lock before Wait, so every Add
	// happens-before its Wait.
	pu.writers.Add(1)
	pu.active++
	s.partialMu.Unlock()

	// Stream the body straight into place. A failed read leaves the
	// interval unmarked, so a retry simply overwrites the garbage.
	_, err := io.ReadFull(r.Body, pu.data[start:end+1])
	if err == nil && r.ContentLength < 0 { // chunked body: refuse trailing bytes
		var one [1]byte
		if n, _ := r.Body.Read(one[:]); n > 0 {
			err = errors.New("body longer than Content-Range promises")
		}
	}
	pu.writers.Done()

	s.partialMu.Lock()
	pu.active--
	pu.lastTouch = time.Now()
	if err != nil {
		s.partialMu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The assembly may have been replaced (whole-body PUT) or committed
	// while we copied; only count coverage toward the buffer the bytes
	// actually landed in.
	if s.partials[key] != pu {
		s.partialMu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		return
	}
	covered := pu.add(start, end+1)
	var data []byte
	if covered == total {
		data = pu.data
		delete(s.partials, key)
	}
	s.partialMu.Unlock()

	if data == nil {
		w.WriteHeader(http.StatusAccepted)
		return
	}
	// Quiesce late duplicate chunks before the zero-copy handoff: the
	// store may retain data (PutOwned), so no writer may touch it after
	// this point.
	pu.writers.Wait()
	if op, ok := s.store.(ownedPutter); ok {
		err = op.PutOwned(p, data)
	} else {
		err = s.store.Put(p, data)
	}
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	setStoredDigest(w, data)
	w.WriteHeader(http.StatusCreated)
}

// sweepPartialsLocked drops assemblies idle past the TTL, never one with a
// chunk body still streaming in. Caller holds partialMu.
func (s *Server) sweepPartialsLocked() {
	now := time.Now()
	cutoff := now.Add(-s.partialTTLValue())
	for k, pu := range s.partials {
		if pu.active == 0 && pu.lastTouch.Before(cutoff) {
			delete(s.partials, k)
			s.partialReaped.Add(1)
			s.opts.Trace.EmitPartialReaped(k.path, now.Sub(pu.lastTouch))
		}
	}
}

// maybeStartJanitorLocked launches the TTL janitor if it is not already
// running — called when an assembly is created, so a server that never sees
// a ranged upload never runs the goroutine. Caller holds partialMu.
func (s *Server) maybeStartJanitorLocked() {
	if s.janitorOn {
		return
	}
	select {
	case <-s.closeCh:
		return
	default:
	}
	s.janitorOn = true
	go s.janitor()
}

// janitor periodically reaps abandoned assemblies: an aborted multi-stream
// upload's buffer is reclaimed after the TTL even if no further ranged PUT
// ever arrives (the historical sweep only ran on new-assembly creation, so
// the last crashed upload leaked forever). Exits when the table empties —
// the next assembly restarts it — or when the Server is closed.
func (s *Server) janitor() {
	tick := s.partialTTLValue() / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-s.closeCh:
			s.partialMu.Lock()
			s.janitorOn = false
			s.partialMu.Unlock()
			return
		}
		s.partialMu.Lock()
		s.sweepPartialsLocked()
		if len(s.partials) == 0 {
			s.janitorOn = false
			s.partialMu.Unlock()
			return
		}
		s.partialMu.Unlock()
	}
}

func (s *Server) serveDelete(w http.ResponseWriter, p string) {
	if err := s.store.Delete(p); err != nil {
		writeStoreErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) serveMkcol(w http.ResponseWriter, p string) {
	if err := s.store.Mkdir(p); err != nil {
		writeStoreErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// servePropfind streams the 207 multistatus body entry by entry: the
// listing is fetched before headers go out (so store errors still map to
// proper statuses), but the XML is generated incrementally rather than
// materialized — the response size no longer scales server memory with the
// collection size, mirroring the client's streaming multistatus decoder.
func (s *Server) servePropfind(w http.ResponseWriter, r *http.Request, p string) {
	inf, err := s.store.Stat(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	var children []storage.Info
	if inf.Dir && r.Header.Get("Depth") != "0" {
		if children, err = s.store.List(p); err != nil {
			writeStoreErr(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", webdav.ContentType)
	w.WriteHeader(http.StatusMultiStatus)
	mw := webdav.NewMultistatusWriter(w)
	mw.WriteEntry(webdav.Entry{Href: inf.Path, Size: inf.Size, Dir: inf.Dir, ModTime: inf.ModTime})
	for _, c := range children {
		if mw.WriteEntry(webdav.Entry{Href: c.Path, Size: c.Size, Dir: c.Dir, ModTime: c.ModTime}) != nil {
			return // client gone; nothing useful left to send
		}
	}
	mw.Close()
}

// serveTruncated declares the full object length but sends only n bytes
// before killing the connection, so the client observes a mid-body cut.
func (s *Server) serveTruncated(w http.ResponseWriter, p string, n int64) {
	data, _, err := s.store.Get(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	if n > int64(len(data)) {
		n = int64(len(data))
	}
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data[:n])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// localDest resolves a Destination header against this server: a path-only
// Destination, or an absolute URL whose host (modulo default port) is this
// server's own, names a local namespace path.
func localDest(r *http.Request, dest string) (string, bool) {
	if strings.HasPrefix(dest, "/") {
		return storage.Clean(dest), true
	}
	dHost, dPath, err := metalink.SplitURL(dest)
	if err != nil {
		return "", false
	}
	if hostEq(dHost, r.Host) {
		return storage.Clean(dPath), true
	}
	return "", false
}

// hostEq compares two host[:port] strings, treating a missing port as :80.
func hostEq(a, b string) bool {
	norm := func(h string) string {
		if _, _, err := net.SplitHostPort(h); err != nil {
			return h + ":80"
		}
		return h
	}
	return norm(a) == norm(b)
}

// serveCopy implements WebDAV COPY. A Destination on this server is a local
// namespace copy through the store's two-key path; a foreign Destination is
// third-party push copy — the object is uploaded to the Destination URL by
// the server itself, so the data never flows through the requesting client
// (the WLCG HTTP-TPC pattern).
func (s *Server) serveCopy(w http.ResponseWriter, r *http.Request, p string) {
	dest := r.Header.Get("Destination")
	if dest == "" {
		http.Error(w, "missing Destination header", http.StatusBadRequest)
		return
	}
	if dPath, ok := localDest(r, dest); ok {
		if err := s.store.Copy(p, dPath); err != nil {
			writeStoreErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
		return
	}
	if s.opts.Copier == nil {
		http.Error(w, "third-party copy not enabled", http.StatusNotImplemented)
		return
	}
	dHost, dPath, err := metalink.SplitURL(dest)
	if err != nil {
		http.Error(w, "bad Destination: "+err.Error(), http.StatusBadRequest)
		return
	}
	data, _, err := s.store.Get(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	if err := s.opts.Copier.Put(r.Context(), dHost, dPath, data); err != nil {
		http.Error(w, "push failed: "+err.Error(), http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// serveMove implements WebDAV MOVE for Destinations on this server; a
// cross-server MOVE (push + delete) is not offered.
func (s *Server) serveMove(w http.ResponseWriter, r *http.Request, p string) {
	dest := r.Header.Get("Destination")
	if dest == "" {
		http.Error(w, "missing Destination header", http.StatusBadRequest)
		return
	}
	dPath, ok := localDest(r, dest)
	if !ok {
		http.Error(w, "cross-server MOVE not supported", http.StatusNotImplemented)
		return
	}
	if err := s.store.Move(p, dPath); err != nil {
		writeStoreErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// serveStalled is the StallBody fault's GET side: declare the full length,
// send half, flush, go silent for the stall, then finish. A client with
// stall detection should cut the connection during the pause.
func (s *Server) serveStalled(w http.ResponseWriter, p string, pause time.Duration) {
	data, inf, err := s.store.Get(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.Header().Set("X-Checksum", inf.Checksum)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	half := len(data) / 2
	w.Write(data[:half])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	time.Sleep(pause)
	w.Write(data[half:])
}

// pauseBody is the StallBody fault's upload side: the server stops draining
// the request body once at the configured byte mark, freezing the client's
// upload mid-stream.
type pauseBody struct {
	rc     io.ReadCloser
	pause  time.Duration
	at     int64
	n      int64
	paused bool
}

func (b *pauseBody) Read(p []byte) (int, error) {
	if !b.paused && b.n >= b.at {
		b.paused = true
		time.Sleep(b.pause)
	}
	n, err := b.rc.Read(p)
	b.n += int64(n)
	return n, err
}

func (b *pauseBody) Close() error { return b.rc.Close() }

func writeStoreErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, storage.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, storage.ErrExists):
		http.Error(w, err.Error(), http.StatusMethodNotAllowed)
	case errors.Is(err, storage.ErrIsDir), errors.Is(err, storage.ErrNotDir):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
