// Package httpserv implements the storage-server side of the paper's
// testbed: a DPM-like HTTP/1.1 + WebDAV front-end over a storage.Store.
//
// It intentionally builds on net/http: the paper's whole argument is that
// davix talks to *standard* HTTP services, so the server here is a stock
// HTTP stack (with single- and multi-range support via http.ServeContent)
// while the client side is the custom optimized layer. Knobs exist to
// disable keep-alive (to measure the Figure-2 effect) and to inject faults
// (to exercise the §2.4 Metalink failover).
package httpserv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"godavix/internal/metalink"
	"godavix/internal/s3"
	"godavix/internal/storage"
	"godavix/internal/webdav"
)

// MetalinkProvider resolves the Metalink document for a namespace path.
// Returning nil means no replica information is available.
type MetalinkProvider func(path string) *metalink.Metalink

// Options configures a Server.
type Options struct {
	// DisableKeepAlive forces Connection: close on every response,
	// emulating an HTTP/1.0-era server (Figure 2 baseline).
	DisableKeepAlive bool

	// Metalinks, when set, answers Metalink negotiation (an Accept:
	// application/metalink+xml GET, or ?metalink) for any path.
	Metalinks MetalinkProvider

	// Redirect, when set, lets this server act as a DPM head node: data
	// operations (GET/HEAD/PUT) whose path it maps are answered with a
	// 302 to the disk node returned ("http://disk1:80/pool/f"); metadata
	// operations are always handled locally.
	Redirect func(method, path string) (location string, ok bool)

	// Authorize, when set, validates the Authorization header of every
	// request; a false return yields 401.
	Authorize func(authorization string) bool

	// Copier, when set, enables WebDAV third-party COPY: the server
	// pushes the source object to the URL in the Destination header
	// through this client (HTTP-TPC push mode, as deployed on the WLCG).
	// *core.Client satisfies this interface.
	Copier Copier

	// S3Secrets, when set, makes the server require a valid AWS SigV4
	// signature on every request; it maps access keys to secrets
	// (return "" for unknown keys).
	S3Secrets func(accessKey string) string
}

// Copier pushes an object to another storage server.
type Copier interface {
	// Put uploads data to path on host.
	Put(ctx context.Context, host, path string, data []byte) error
}

// Fault describes injected misbehaviour for a path ("*" matches all).
type Fault struct {
	// Status, when non-zero, is returned instead of serving the request.
	Status int
	// Delay is slept before handling (creates head-of-line blocking).
	Delay time.Duration
	// Abort, when true, kills the connection without writing a response
	// (models a server crash mid-request).
	Abort bool
	// TruncateBody, when positive, serves only that many body bytes and
	// then aborts the connection (models a transfer cut mid-stream).
	TruncateBody int64
	// Remaining, when positive, auto-expires the fault after that many
	// requests; negative means unlimited.
	Remaining int
}

// Server is a DPM-like storage server.
type Server struct {
	store storage.Store
	opts  Options

	mu     sync.Mutex
	faults map[string]*Fault

	requests atomic.Int64
	byMethod sync.Map // method -> *atomic.Int64
}

// New creates a Server over store.
func New(store storage.Store, opts Options) *Server {
	return &Server{
		store:  store,
		opts:   opts,
		faults: make(map[string]*Fault),
	}
}

// SetFault installs (or replaces) a fault for path p ("*" = every path).
func (s *Server) SetFault(p string, f Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.Remaining == 0 {
		f.Remaining = -1
	}
	cp := f
	s.faults[p] = &cp
}

// ClearFault removes the fault for p.
func (s *Server) ClearFault(p string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.faults, p)
}

// takeFault fetches the active fault for p, consuming one use.
func (s *Server) takeFault(p string) *Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range []string{p, "*"} {
		f, ok := s.faults[key]
		if !ok {
			continue
		}
		if f.Remaining > 0 {
			f.Remaining--
			if f.Remaining == 0 {
				delete(s.faults, key)
			}
		}
		cp := *f
		return &cp
	}
	return nil
}

// Requests reports the total number of requests served.
func (s *Server) Requests() int64 { return s.requests.Load() }

// RequestsByMethod reports how many requests used the given method.
func (s *Server) RequestsByMethod(method string) int64 {
	v, ok := s.byMethod.Load(method)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

// Serve runs an HTTP server on l until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s}
	srv.SetKeepAlivesEnabled(!s.opts.DisableKeepAlive)
	err := srv.Serve(l)
	if errors.Is(err, net.ErrClosed) || errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	v, _ := s.byMethod.LoadOrStore(r.Method, &atomic.Int64{})
	v.(*atomic.Int64).Add(1)

	p := storage.Clean(r.URL.Path)

	if s.opts.Authorize != nil && !s.opts.Authorize(r.Header.Get("Authorization")) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="godavix", Basic realm="godavix"`)
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	if s.opts.S3Secrets != nil {
		err := s3.VerifyRequest(r.Method, r.URL.RequestURI(), r.Host,
			r.Header.Get("Authorization"), r.Header.Get("X-Amz-Date"),
			r.Header.Get("X-Amz-Content-Sha256"), s.opts.S3Secrets, time.Now(), 0)
		if err != nil {
			http.Error(w, "signature verification failed: "+err.Error(), http.StatusForbidden)
			return
		}
	}

	if f := s.takeFault(p); f != nil {
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Abort {
			panic(http.ErrAbortHandler)
		}
		if f.TruncateBody > 0 && r.Method == http.MethodGet {
			s.serveTruncated(w, p, f.TruncateBody)
			return
		}
		if f.Status != 0 {
			http.Error(w, fmt.Sprintf("injected fault %d", f.Status), f.Status)
			return
		}
	}
	if s.opts.DisableKeepAlive {
		w.Header().Set("Connection", "close")
	}

	// DPM head-node behaviour: hand data operations off to disk nodes.
	if s.opts.Redirect != nil && !wantsMetalink(r) {
		switch r.Method {
		case http.MethodGet, http.MethodHead, http.MethodPut:
			if loc, ok := s.opts.Redirect(r.Method, p); ok {
				w.Header().Set("Location", loc)
				w.WriteHeader(http.StatusFound)
				return
			}
		}
	}

	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.serveGet(w, r, p)
	case http.MethodPut:
		s.servePut(w, r, p)
	case "COPY":
		s.serveCopy(w, r, p)
	case http.MethodDelete:
		s.serveDelete(w, p)
	case "MKCOL":
		s.serveMkcol(w, p)
	case "PROPFIND":
		s.servePropfind(w, r, p)
	case http.MethodOptions:
		w.Header().Set("Allow", "OPTIONS, GET, HEAD, PUT, DELETE, MKCOL, PROPFIND, COPY")
		w.Header().Set("DAV", "1")
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// wantsMetalink reports whether the request negotiates a Metalink document.
func wantsMetalink(r *http.Request) bool {
	if r.URL.Query().Has("metalink") {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), metalink.MediaType)
}

func (s *Server) serveGet(w http.ResponseWriter, r *http.Request, p string) {
	if s.opts.Metalinks != nil && wantsMetalink(r) {
		if ml := s.opts.Metalinks(p); ml != nil {
			body, err := metalink.Encode(ml)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", metalink.MediaType)
			w.Header().Set("Content-Length", fmt.Sprint(len(body)))
			w.WriteHeader(http.StatusOK)
			if r.Method != http.MethodHead {
				w.Write(body)
			}
			return
		}
		http.Error(w, "no metalink available", http.StatusNotFound)
		return
	}

	data, inf, err := s.store.Get(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("X-Checksum", inf.Checksum)
	w.Header().Set("Content-Type", "application/octet-stream")
	// ServeContent implements If-Range, single-range (206 +
	// Content-Range) and multi-range (multipart/byteranges) semantics —
	// the standards-compliant server behaviour the davix client targets.
	http.ServeContent(w, r, path.Base(p), inf.ModTime, bytes.NewReader(data))
}

func (s *Server) servePut(w http.ResponseWriter, r *http.Request, p string) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.store.Put(p, data); err != nil {
		writeStoreErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) serveDelete(w http.ResponseWriter, p string) {
	if err := s.store.Delete(p); err != nil {
		writeStoreErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) serveMkcol(w http.ResponseWriter, p string) {
	if err := s.store.Mkdir(p); err != nil {
		writeStoreErr(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) servePropfind(w http.ResponseWriter, r *http.Request, p string) {
	inf, err := s.store.Stat(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	entries := []webdav.Entry{{Href: inf.Path, Size: inf.Size, Dir: inf.Dir, ModTime: inf.ModTime}}
	if inf.Dir && r.Header.Get("Depth") != "0" {
		children, err := s.store.List(p)
		if err != nil {
			writeStoreErr(w, err)
			return
		}
		for _, c := range children {
			entries = append(entries, webdav.Entry{Href: c.Path, Size: c.Size, Dir: c.Dir, ModTime: c.ModTime})
		}
	}
	body, err := webdav.EncodeMultistatus(entries)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", webdav.ContentType)
	w.WriteHeader(http.StatusMultiStatus)
	w.Write(body)
}

// serveTruncated declares the full object length but sends only n bytes
// before killing the connection, so the client observes a mid-body cut.
func (s *Server) serveTruncated(w http.ResponseWriter, p string, n int64) {
	data, _, err := s.store.Get(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	if n > int64(len(data)) {
		n = int64(len(data))
	}
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data[:n])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// serveCopy implements third-party push copy: the object at p is uploaded
// to the Destination URL by the server itself, so the data never flows
// through the requesting client — the WLCG HTTP-TPC pattern.
func (s *Server) serveCopy(w http.ResponseWriter, r *http.Request, p string) {
	if s.opts.Copier == nil {
		http.Error(w, "third-party copy not enabled", http.StatusNotImplemented)
		return
	}
	dest := r.Header.Get("Destination")
	if dest == "" {
		http.Error(w, "missing Destination header", http.StatusBadRequest)
		return
	}
	dHost, dPath, err := metalink.SplitURL(dest)
	if err != nil {
		http.Error(w, "bad Destination: "+err.Error(), http.StatusBadRequest)
		return
	}
	data, _, err := s.store.Get(p)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	if err := s.opts.Copier.Put(r.Context(), dHost, dPath, data); err != nil {
		http.Error(w, "push failed: "+err.Error(), http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func writeStoreErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, storage.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, storage.ErrExists):
		http.Error(w, err.Error(), http.StatusMethodNotAllowed)
	case errors.Is(err, storage.ErrIsDir), errors.Is(err, storage.ErrNotDir):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
