// Package digest implements the incremental-checksum machinery behind the
// client's inline transfer integrity: hash constructors for the algorithms
// davix-compatible storage speaks (adler32, crc32, crc32c, md5), strict
// "algo:hex" checksum-string parsing, and the combine math that merges
// per-chunk digests of a multi-stream transfer into the whole-object value
// without ever re-reading a byte.
//
// adler32 and the crc32 family are combinable: the digest of A||B is a pure
// function of digest(A), digest(B) and len(B), so chunks hashed out of order
// by concurrent workers roll up in O(chunks) time. md5 is not — it is only
// available on single-stream paths where bytes arrive in order.
package digest

import (
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/adler32"
	"hash/crc32"
	"sort"
	"strings"
)

// Algorithm names as they appear on the wire (X-Checksum headers, Metalink
// hashes, RFC 3230 Digest tokens). Compare case-insensitively.
const (
	Adler32 = "adler32"
	CRC32   = "crc32"
	CRC32C  = "crc32c"
	MD5     = "md5"
)

// ErrUnsupported reports a checksum whose algorithm the client does not
// implement. Callers that must verify treat it as fatal; opportunistic
// callers may ignore it.
var ErrUnsupported = errors.New("digest: unsupported checksum algorithm")

// ErrMalformed reports a checksum string that does not parse as algo:hex
// with the digest length the algorithm requires.
var ErrMalformed = errors.New("digest: malformed checksum")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// size returns the digest length in bytes for a supported algorithm.
func size(algo string) (int, bool) {
	switch algo {
	case Adler32, CRC32, CRC32C:
		return 4, true
	case MD5:
		return md5.Size, true
	}
	return 0, false
}

// Supported reports whether algo names an algorithm this package implements.
func Supported(algo string) bool {
	_, ok := size(strings.ToLower(algo))
	return ok
}

// Combinable reports whether per-chunk digests of algo can be merged into
// the whole-object digest (true for adler32 and the crc32 family).
func Combinable(algo string) bool {
	switch strings.ToLower(algo) {
	case Adler32, CRC32, CRC32C:
		return true
	}
	return false
}

// New returns a fresh incremental hash for algo, or ErrUnsupported.
func New(algo string) (hash.Hash, error) {
	switch strings.ToLower(algo) {
	case Adler32:
		return adler32.New(), nil
	case CRC32:
		return crc32.NewIEEE(), nil
	case CRC32C:
		return crc32.New(castagnoli), nil
	case MD5:
		return md5.New(), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnsupported, algo)
}

// Checksum is a parsed algo:hex checksum value.
type Checksum struct {
	// Algo is the lower-cased algorithm name.
	Algo string
	// Sum is the decoded digest, length-checked for Algo.
	Sum []byte
}

// String renders the checksum back to wire form.
func (c Checksum) String() string {
	return c.Algo + ":" + hex.EncodeToString(c.Sum)
}

// Parse splits an "algo:hex" checksum string strictly: the algorithm must be
// known (else ErrUnsupported), the payload must be valid hex of exactly the
// algorithm's digest length (else ErrMalformed). Whitespace around the value
// is tolerated; nothing else is.
func Parse(s string) (Checksum, error) {
	s = strings.TrimSpace(s)
	algo, val, ok := strings.Cut(s, ":")
	if !ok || algo == "" || val == "" {
		return Checksum{}, fmt.Errorf("%w: %q", ErrMalformed, s)
	}
	algo = strings.ToLower(algo)
	n, known := size(algo)
	if !known {
		return Checksum{}, fmt.Errorf("%w: %q", ErrUnsupported, algo)
	}
	sum, err := hex.DecodeString(val)
	if err != nil {
		return Checksum{}, fmt.Errorf("%w: %q: %v", ErrMalformed, s, err)
	}
	if len(sum) != n {
		return Checksum{}, fmt.Errorf("%w: %q: %s digest must be %d bytes, got %d",
			ErrMalformed, s, algo, n, len(sum))
	}
	return Checksum{Algo: algo, Sum: sum}, nil
}

// FromDigestHeader scans an RFC 3230-style Digest header value
// ("adler32=03da0195, md5=...") for an entry under algo. Values are
// hex-encoded, the WLCG storage convention davix-era servers follow.
// A missing or malformed entry reports ok=false — the header is an
// optional server hint, not a hard contract like Parse's input.
func FromDigestHeader(v, algo string) (Checksum, bool) {
	n, known := size(algo)
	if !known {
		return Checksum{}, false
	}
	for _, part := range strings.Split(v, ",") {
		name, val, found := strings.Cut(part, "=")
		if !found || !strings.EqualFold(strings.TrimSpace(name), algo) {
			continue
		}
		sum, err := hex.DecodeString(strings.TrimSpace(val))
		if err != nil || len(sum) != n {
			return Checksum{}, false
		}
		return Checksum{Algo: algo, Sum: sum}, true
	}
	return Checksum{}, false
}

// Sum32 computes the 32-bit digest of b under algo (adler32/crc32/crc32c
// only; callers must not pass md5).
func Sum32(algo string, b []byte) uint32 {
	switch strings.ToLower(algo) {
	case Adler32:
		return adler32.Checksum(b)
	case CRC32:
		return crc32.ChecksumIEEE(b)
	case CRC32C:
		return crc32.Checksum(b, castagnoli)
	}
	panic("digest: Sum32 on non-32-bit algorithm " + algo)
}

const adlerMod = 65521

// CombineAdler32 returns adler32(A||B) given a = adler32(A), b = adler32(B)
// and the length of B, per the zlib adler32_combine construction:
// s1(A||B) = s1(A) + s1(B) - 1 and s2(A||B) = s2(A) + len(B)*s1(A) + s2(B)
// - len(B), everything mod 65521 (s1 of the empty string is 1, hence the
// -1 and -len(B) corrections).
func CombineAdler32(a, b uint32, lenB int64) uint32 {
	rem := uint32(lenB % adlerMod)
	s1 := (a&0xffff + b&0xffff + adlerMod - 1) % adlerMod
	s2 := ((a>>16)&0xffff + (rem*(a&0xffff))%adlerMod + (b>>16)&0xffff +
		2*adlerMod - rem) % adlerMod
	return s2<<16 | s1
}

// crc32Combine merges crc(A) and crc(B) into crc(A||B) for the given
// (reflected) polynomial, using the GF(2) matrix-squaring method from zlib:
// advance crcA through len(B) zero bytes, then xor with crcB.
func crc32Combine(crcA, crcB uint32, lenB int64, poly uint32) uint32 {
	if lenB <= 0 {
		return crcA // A||"" == A (crc of empty B is 0, no zero-advance)
	}
	var even, odd [32]uint32 // GF(2) operator matrices

	// odd = operator for one zero bit: a right shift with polynomial feedback.
	odd[0] = poly
	row := uint32(1)
	for n := 1; n < 32; n++ {
		odd[n] = row
		row <<= 1
	}
	// even = odd squared = operator for two zero bits.
	gf2MatrixSquare(&even, &odd)
	// odd = even squared = operator for four zero bits.
	gf2MatrixSquare(&odd, &even)

	// Apply len(B) zero BYTES to crcA: consume len2 bits 2 at a time,
	// squaring the operator each round (zlib crc32_combine).
	crc := crcA
	len2 := lenB
	for {
		gf2MatrixSquare(&even, &odd)
		if len2&1 != 0 {
			crc = gf2MatrixTimes(&even, crc)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if len2&1 != 0 {
			crc = gf2MatrixTimes(&odd, crc)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc ^ crcB
}

func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	i := 0
	for vec != 0 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
		i++
	}
	return sum
}

func gf2MatrixSquare(square, mat *[32]uint32) {
	for n := 0; n < 32; n++ {
		square[n] = gf2MatrixTimes(mat, mat[n])
	}
}

// CombineCRC32 returns crc32(A||B) for the IEEE polynomial.
func CombineCRC32(a, b uint32, lenB int64) uint32 {
	return crc32Combine(a, b, lenB, 0xedb88320)
}

// CombineCRC32C returns crc32c(A||B) for the Castagnoli polynomial.
func CombineCRC32C(a, b uint32, lenB int64) uint32 {
	return crc32Combine(a, b, lenB, 0x82f63b78)
}

// Combine merges digest a of A and digest b of B into the digest of A||B
// under algo. Only combinable algorithms are accepted.
func Combine(algo string, a, b uint32, lenB int64) uint32 {
	switch strings.ToLower(algo) {
	case Adler32:
		return CombineAdler32(a, b, lenB)
	case CRC32:
		return CombineCRC32(a, b, lenB)
	case CRC32C:
		return CombineCRC32C(a, b, lenB)
	}
	panic("digest: Combine on non-combinable algorithm " + algo)
}

// Rollup accumulates per-chunk 32-bit digests posted out of order by
// concurrent transfer workers and folds them, in chunk order, into the
// whole-object digest. Safe for concurrent Add calls is NOT promised —
// callers serialize (the transfer layer posts under its own lock or from a
// single goroutine after workers finish their chunk).
type Rollup struct {
	algo   string
	chunks []chunkSum
}

type chunkSum struct {
	off int64
	n   int64
	sum uint32
}

// NewRollup returns a rollup for a combinable algorithm, or ErrUnsupported
// when algo is unknown / non-combinable.
func NewRollup(algo string) (*Rollup, error) {
	algo = strings.ToLower(algo)
	if !Combinable(algo) {
		return nil, fmt.Errorf("%w: %q is not chunk-combinable", ErrUnsupported, algo)
	}
	return &Rollup{algo: algo}, nil
}

// Add records the digest of the n bytes at offset off.
func (r *Rollup) Add(off, n int64, sum uint32) {
	r.chunks = append(r.chunks, chunkSum{off: off, n: n, sum: sum})
}

// Sum folds the recorded chunks in offset order into the whole-object
// digest. It errors if the chunks do not tile [0, total) exactly — a gap or
// overlap means the transfer lost track of a span and any digest would lie.
func (r *Rollup) Sum(total int64) (uint32, error) {
	sort.Slice(r.chunks, func(i, j int) bool { return r.chunks[i].off < r.chunks[j].off })
	var (
		pos int64
		acc uint32
	)
	// Digest of the empty prefix.
	acc = Sum32(r.algo, nil)
	for _, c := range r.chunks {
		if c.off != pos {
			return 0, fmt.Errorf("digest: chunk gap at byte %d (next chunk starts at %d)", pos, c.off)
		}
		acc = Combine(r.algo, acc, c.sum, c.n)
		pos += c.n
	}
	if pos != total {
		return 0, fmt.Errorf("digest: chunks cover %d of %d bytes", pos, total)
	}
	return acc, nil
}
