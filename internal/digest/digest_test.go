package digest

import (
	"bytes"
	"crypto/md5"
	"errors"
	"hash/adler32"
	"hash/crc32"
	"math/rand"
	"testing"
)

func testBuf(n int) []byte {
	rng := rand.New(rand.NewSource(int64(n) + 7))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestCombineMatchesWholeBuffer(t *testing.T) {
	data := testBuf(1 << 20)
	splits := [][]int{
		{0},                        // empty A
		{len(data)},                // empty B
		{1}, {7}, {65536}, {65521}, // around the adler modulus
		{len(data) / 2}, {len(data) - 1},
	}
	for _, algo := range []string{Adler32, CRC32, CRC32C} {
		for _, s := range splits {
			cut := s[0]
			a, b := data[:cut], data[cut:]
			want := Sum32(algo, data)
			got := Combine(algo, Sum32(algo, a), Sum32(algo, b), int64(len(b)))
			if got != want {
				t.Errorf("%s split %d: combine=%08x whole=%08x", algo, cut, got, want)
			}
		}
	}
}

func TestCombineManyChunks(t *testing.T) {
	data := testBuf(777777)
	for _, algo := range []string{Adler32, CRC32, CRC32C} {
		r, err := NewRollup(algo)
		if err != nil {
			t.Fatal(err)
		}
		// Uneven chunking, added out of order.
		type span struct{ off, n int64 }
		var spans []span
		for off := int64(0); off < int64(len(data)); {
			n := int64(100000)
			if off+n > int64(len(data)) {
				n = int64(len(data)) - off
			}
			spans = append(spans, span{off, n})
			off += n
		}
		rand.Shuffle(len(spans), func(i, j int) { spans[i], spans[j] = spans[j], spans[i] })
		for _, sp := range spans {
			r.Add(sp.off, sp.n, Sum32(algo, data[sp.off:sp.off+sp.n]))
		}
		got, err := r.Sum(int64(len(data)))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if want := Sum32(algo, data); got != want {
			t.Errorf("%s: rollup=%08x whole=%08x", algo, got, want)
		}
	}
}

func TestRollupDetectsGapsAndOverlaps(t *testing.T) {
	r, _ := NewRollup(Adler32)
	r.Add(0, 10, 1)
	r.Add(20, 10, 1) // gap at 10
	if _, err := r.Sum(30); err == nil {
		t.Error("gap not detected")
	}
	r2, _ := NewRollup(Adler32)
	r2.Add(0, 10, 1)
	if _, err := r2.Sum(20); err == nil {
		t.Error("short coverage not detected")
	}
}

func TestStdlibAgreement(t *testing.T) {
	data := testBuf(12345)
	if Sum32(Adler32, data) != adler32.Checksum(data) {
		t.Error("adler32 disagrees with stdlib")
	}
	if Sum32(CRC32, data) != crc32.ChecksumIEEE(data) {
		t.Error("crc32 disagrees with stdlib")
	}
	if Sum32(CRC32C, data) != crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli)) {
		t.Error("crc32c disagrees with stdlib")
	}
}

func TestParseStrict(t *testing.T) {
	good := []string{
		"adler32:00f8018d",
		"ADLER32:00F8018D",
		" crc32:deadbeef ",
		"crc32c:00000000",
		"md5:d41d8cd98f00b204e9800998ecf8427e",
	}
	for _, s := range good {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q) = %v, want nil", s, err)
		}
	}
	malformed := []string{
		"",
		"adler32",            // no colon
		"adler32:",           // empty payload
		":deadbeef",          // empty algo
		"adler32:xyzw1234",   // non-hex
		"adler32:abcd",       // too short
		"adler32:0011223344", // too long
		"md5:deadbeef",       // md5 must be 16 bytes
	}
	for _, s := range malformed {
		if _, err := Parse(s); !errors.Is(err, ErrMalformed) {
			t.Errorf("Parse(%q) = %v, want ErrMalformed", s, err)
		}
	}
	if _, err := Parse("sha256:" + "00"[0:2] + "deadbeef"); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown algo: got %v, want ErrUnsupported", err)
	}
}

func TestNewHashes(t *testing.T) {
	data := testBuf(999)
	for _, algo := range []string{Adler32, CRC32, CRC32C, MD5} {
		h, err := New(algo)
		if err != nil {
			t.Fatal(err)
		}
		// Feed in two writes to exercise incrementality.
		h.Write(data[:100])
		h.Write(data[100:])
		switch algo {
		case MD5:
			want := md5.Sum(data)
			if !bytes.Equal(h.Sum(nil), want[:]) {
				t.Error("md5 incremental mismatch")
			}
		default:
			var whole [4]byte
			w := Sum32(algo, data)
			whole[0], whole[1], whole[2], whole[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
			if !bytes.Equal(h.Sum(nil), whole[:]) {
				t.Errorf("%s incremental mismatch", algo)
			}
		}
	}
	if _, err := New("sha1"); !errors.Is(err, ErrUnsupported) {
		t.Errorf("New(sha1) = %v, want ErrUnsupported", err)
	}
}

func TestCombinable(t *testing.T) {
	if !Combinable("adler32") || !Combinable("CRC32") || !Combinable("crc32c") {
		t.Error("32-bit algos must be combinable")
	}
	if Combinable("md5") || Combinable("sha256") {
		t.Error("md5/sha256 must not be combinable")
	}
	if _, err := NewRollup("md5"); err == nil {
		t.Error("NewRollup(md5) must fail")
	}
}
