package wire

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"testing/quick"
)

func TestHeaderBasics(t *testing.T) {
	h := Header{}
	h.Set("content-type", "text/plain")
	if got := h.Get("Content-Type"); got != "text/plain" {
		t.Fatalf("Get = %q", got)
	}
	h.Add("X-Multi", "a")
	h.Add("x-multi", "b")
	if got := h.Values("X-Multi"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Values = %v", got)
	}
	h.Del("X-MULTI")
	if h.Get("X-Multi") != "" {
		t.Fatal("Del did not remove key")
	}

	h.Set("A", "1")
	c := h.Clone()
	c.Set("A", "2")
	if h.Get("A") != "1" {
		t.Fatal("Clone is not a deep copy")
	}
}

func TestHasToken(t *testing.T) {
	cases := []struct {
		value, token string
		want         bool
	}{
		{"close", "close", true},
		{"keep-alive, Upgrade", "upgrade", true},
		{"keep-alive", "close", false},
		{"", "close", false},
		{"Close", "close", true},
	}
	for _, c := range cases {
		if got := hasToken(c.value, c.token); got != c.want {
			t.Errorf("hasToken(%q,%q) = %v, want %v", c.value, c.token, got, c.want)
		}
	}
}

// TestRequestInterop serializes requests with our writer and parses them
// with net/http's server-side reader: a strong standards-compliance check.
func TestRequestInterop(t *testing.T) {
	req := NewRequest("GET", "dpm1:80", "/store/f.rnt?x=1")
	req.Header.Set("Range", "bytes=0-99")
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := http.ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Method != "GET" || parsed.URL.Path != "/store/f.rnt" {
		t.Fatalf("parsed %s %s", parsed.Method, parsed.URL)
	}
	if parsed.Host != "dpm1:80" {
		t.Fatalf("host = %q", parsed.Host)
	}
	if parsed.Header.Get("Range") != "bytes=0-99" {
		t.Fatalf("range = %q", parsed.Header.Get("Range"))
	}
}

func TestRequestBodyContentLength(t *testing.T) {
	req := NewRequest("PUT", "h:1", "/obj")
	req.SetBodyBytes([]byte("payload"))
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := http.ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ContentLength != 7 {
		t.Fatalf("content-length = %d", parsed.ContentLength)
	}
	b, _ := io.ReadAll(parsed.Body)
	if string(b) != "payload" {
		t.Fatalf("body = %q", b)
	}
}

func TestRequestChunkedBody(t *testing.T) {
	req := NewRequest("PUT", "h:1", "/obj")
	req.Body = strings.NewReader("streaming data without length")
	req.ContentLength = -1
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := http.ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(parsed.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "streaming data without length" {
		t.Fatalf("body = %q", b)
	}
}

func TestRequestCloseHeader(t *testing.T) {
	req := NewRequest("GET", "h:1", "/")
	req.Close = true
	var buf bytes.Buffer
	req.Write(&buf)
	if !strings.Contains(buf.String(), "Connection: close\r\n") {
		t.Fatalf("missing Connection: close in %q", buf.String())
	}
}

func TestEmptyPathBecomesSlash(t *testing.T) {
	req := NewRequest("GET", "h:1", "")
	var buf bytes.Buffer
	req.Write(&buf)
	if !strings.HasPrefix(buf.String(), "GET / HTTP/1.1\r\n") {
		t.Fatalf("request line: %q", buf.String())
	}
}

func readResp(t *testing.T, raw, method string) *Response {
	t.Helper()
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), method)
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	return resp
}

func TestReadResponseContentLength(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Type: text/plain\r\n\r\nhellorest-of-stream"
	resp := readResp(t, raw, "GET")
	if resp.StatusCode != 200 || resp.ContentLength != 5 || !resp.KeepAlive {
		t.Fatalf("resp = %+v", resp)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil || string(b) != "hello" {
		t.Fatalf("body = %q, err = %v", b, err)
	}
	if !resp.Consumed() {
		t.Fatal("body should be consumed")
	}
}

func TestReadResponseChunked(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n"
	resp := readResp(t, raw, "GET")
	if resp.ContentLength != -1 {
		t.Fatalf("content length = %d", resp.ContentLength)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil || string(b) != "Wikipedia" {
		t.Fatalf("body = %q, err = %v", b, err)
	}
	if !resp.Consumed() || !resp.KeepAlive {
		t.Fatal("chunked body should be consumed and keep-alive")
	}
}

func TestReadResponseChunkedWithExtensionsAndTrailers(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n"
	resp := readResp(t, raw, "GET")
	b, err := io.ReadAll(resp.Body)
	if err != nil || string(b) != "hello" {
		t.Fatalf("body = %q, err = %v", b, err)
	}
	if !resp.Consumed() {
		t.Fatal("not consumed")
	}
}

func TestReadResponseHead(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 700\r\n\r\n"
	resp := readResp(t, raw, "HEAD")
	b, _ := io.ReadAll(resp.Body)
	if len(b) != 0 {
		t.Fatalf("HEAD body = %q", b)
	}
	// ContentLength header is advisory for HEAD; framing is zero.
	if !resp.Consumed() {
		t.Fatal("HEAD should be immediately consumed")
	}
	if resp.Header.Get("Content-Length") != "700" {
		t.Fatal("content-length header lost")
	}
}

func TestReadResponse204NoBody(t *testing.T) {
	raw := "HTTP/1.1 204 No Content\r\n\r\nHTTP/1.1 200 OK\r\n"
	resp := readResp(t, raw, "DELETE")
	if resp.StatusCode != 204 || !resp.Consumed() {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestReadResponseCloseDelimited(t *testing.T) {
	raw := "HTTP/1.0 200 OK\r\n\r\nall the way to eof"
	resp := readResp(t, raw, "GET")
	if resp.KeepAlive {
		t.Fatal("close-delimited must not be keep-alive")
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil || string(b) != "all the way to eof" {
		t.Fatalf("body = %q err = %v", b, err)
	}
}

func TestKeepAliveMatrix(t *testing.T) {
	cases := []struct {
		raw  string
		want bool
	}{
		{"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n", true},
		{"HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n", false},
		{"HTTP/1.0 200 OK\r\nContent-Length: 0\r\n\r\n", false},
		{"HTTP/1.0 200 OK\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n", true},
	}
	for i, c := range cases {
		resp := readResp(t, c.raw, "GET")
		if resp.KeepAlive != c.want {
			t.Errorf("case %d: keepalive = %v, want %v", i, resp.KeepAlive, c.want)
		}
	}
}

func TestReadResponseMalformed(t *testing.T) {
	for _, raw := range []string{
		"garbage\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 99 Too Low\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: xyz\r\n\r\n",
	} {
		_, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), "GET")
		if err == nil {
			t.Errorf("expected parse error for %q", raw)
		}
	}
}

func TestReadResponseTruncatedBody(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort"
	resp := readResp(t, raw, "GET")
	_, err := io.ReadAll(resp.Body)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestDiscardEnablesReuse(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbodyHTTP/1.1 204 No Content\r\n\r\n"
	br := bufio.NewReader(strings.NewReader(raw))
	resp, err := ReadResponse(br, "GET")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Discard(); err != nil {
		t.Fatal(err)
	}
	next, err := ReadResponse(br, "GET")
	if err != nil {
		t.Fatal(err)
	}
	if next.StatusCode != 204 {
		t.Fatalf("pipelined second response = %d", next.StatusCode)
	}
}

// TestChunkedRoundTrip: property — arbitrary bodies survive our chunked
// writer followed by our chunked reader.
func TestChunkedRoundTrip(t *testing.T) {
	prop := func(body []byte) bool {
		var buf bytes.Buffer
		if err := writeChunked(&buf, bytes.NewReader(body)); err != nil {
			return false
		}
		cb := &chunkedBody{br: bufio.NewReader(&buf)}
		got, err := io.ReadAll(cb)
		if err != nil {
			return false
		}
		return bytes.Equal(got, body)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestResponseHeaderRoundTrip: headers written by our Header.Write are
// parsed back identically.
func TestResponseHeaderRoundTrip(t *testing.T) {
	h := Header{}
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Etag", `"abc123"`)
	h.Add("X-Replica", "dpm1")
	h.Add("X-Replica", "dpm2")

	var buf bytes.Buffer
	io.WriteString(&buf, "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n")
	// Write remaining headers (Header.Write adds the terminating CRLF).
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	resp := readResp(t, buf.String(), "GET")
	if resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatal("content-type lost")
	}
	if got := resp.Header.Values("X-Replica"); len(got) != 2 {
		t.Fatalf("x-replica = %v", got)
	}
}
