// Package wire implements the HTTP/1.1 client wire protocol used by the
// davix engine: request serialization, response parsing (content-length,
// chunked and close-delimited bodies), and keep-alive accounting.
//
// davix deliberately speaks plain standards-compliant HTTP/1.1 — the paper's
// compatibility requirement rules out SPDY/SCTP/MUX — so this package is a
// from-scratch, minimal, allocation-conscious HTTP implementation on top of
// any net.Conn (real TCP or netsim).
package wire

import (
	"fmt"
	"io"
	"net/textproto"
	"sort"
	"strings"
)

// Header is a case-insensitive (canonicalized) HTTP header map.
type Header map[string][]string

// canonical returns the canonical form of a header key ("content-type" →
// "Content-Type").
func canonical(key string) string { return textproto.CanonicalMIMEHeaderKey(key) }

// Set replaces the value of key.
func (h Header) Set(key, value string) { h[canonical(key)] = []string{value} }

// Add appends value to key.
func (h Header) Add(key, value string) {
	ck := canonical(key)
	h[ck] = append(h[ck], value)
}

// Get returns the first value of key, or "".
func (h Header) Get(key string) string {
	v := h[canonical(key)]
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// Values returns all values of key.
func (h Header) Values(key string) []string { return h[canonical(key)] }

// Del removes key.
func (h Header) Del(key string) { delete(h, canonical(key)) }

// Clone returns a deep copy of h.
func (h Header) Clone() Header {
	c := make(Header, len(h))
	for k, vs := range h {
		c[k] = append([]string(nil), vs...)
	}
	return c
}

// Write serializes the header block in sorted key order (deterministic
// output simplifies testing) followed by the terminating CRLF.
func (h Header) Write(w io.Writer) error {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range h[k] {
			if _, err := fmt.Fprintf(w, "%s: %s\r\n", k, v); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\r\n")
	return err
}

// hasToken reports whether the comma-separated header value contains token
// (case-insensitive). Used for Connection and Transfer-Encoding checks.
func hasToken(value, token string) bool {
	for _, part := range strings.Split(value, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}
