package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// TestReadResponseNeverPanics: arbitrary byte soup must yield an error or
// a parsed response, never a panic or hang.
func TestReadResponseNeverPanics(t *testing.T) {
	prop := func(garbage []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(garbage)), "GET")
		if err == nil {
			// Whatever parsed must be internally consistent.
			if resp.StatusCode < 100 || resp.StatusCode > 599 {
				return false
			}
			resp.Discard()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestReadResponsePrefixedGarbage: a valid status line followed by garbage
// headers must error cleanly.
func TestReadResponsePrefixedGarbage(t *testing.T) {
	for _, raw := range []string{
		"HTTP/1.1 200 OK\r\n\x00\x01\x02\r\n\r\n",
		"HTTP/1.1 200 OK\r\nno-colon-here\r\n\r\n",
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nZZZ\r\n",
	} {
		resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), "GET")
		if err != nil {
			continue
		}
		// Chunked garbage surfaces on body read.
		if _, err := resp.Body.Read(make([]byte, 16)); err == nil {
			t.Errorf("no error for %q", raw)
		}
	}
}

// TestChunkedHugeDeclaredSize: a chunk header declaring a huge size with a
// short body errors instead of allocating unboundedly.
func TestChunkedHugeDeclaredSize(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nffffffffff\r\nxx"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), "GET")
	if err != nil {
		return
	}
	buf := make([]byte, 64)
	for i := 0; i < 10; i++ {
		if _, err := resp.Body.Read(buf); err != nil {
			return // errored cleanly
		}
	}
	t.Fatal("huge chunk read did not terminate")
}

// TestHeaderWriteDeterministic: repeated serialization is byte-identical
// (sorted keys), which the tests and goldens rely on.
func TestHeaderWriteDeterministic(t *testing.T) {
	h := Header{}
	h.Set("Zeta", "1")
	h.Set("Alpha", "2")
	h.Add("Mid", "a")
	h.Add("Mid", "b")
	var b1, b2 bytes.Buffer
	h.Write(&b1)
	h.Write(&b2)
	if b1.String() != b2.String() {
		t.Fatal("header serialization not deterministic")
	}
	if !strings.HasPrefix(b1.String(), "Alpha: 2\r\n") {
		t.Fatalf("not sorted: %q", b1.String())
	}
}
