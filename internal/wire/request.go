package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"

	"godavix/internal/bufpool"
)

// Request is an outbound HTTP/1.1 request.
type Request struct {
	// Method is the HTTP method ("GET", "PUT", "PROPFIND", ...).
	Method string

	// Host is the authority for the Host header and connection routing
	// ("dpm1:80").
	Host string

	// Path is the origin-form request target ("/store/file.rnt"); an empty
	// Path is sent as "/". A query string may be included.
	Path string

	// Header holds additional request headers. Host, Content-Length and
	// Transfer-Encoding are managed by Write.
	Header Header

	// Body is the request payload. If ContentLength is negative and Body is
	// non-nil the body is sent chunked.
	Body io.Reader

	// ContentLength is the body size; -1 with a non-nil Body selects
	// chunked transfer encoding, 0 with nil Body means no body.
	ContentLength int64

	// Close requests that the server close the connection after responding
	// (sends "Connection: close").
	Close bool
}

// NewRequest returns a bodyless request with an initialized header map.
func NewRequest(method, host, path string) *Request {
	return &Request{Method: method, Host: host, Path: path, Header: Header{}}
}

// SetBodyBytes attaches b as the request body with a known length.
func (r *Request) SetBodyBytes(b []byte) {
	r.Body = bytes.NewReader(b)
	r.ContentLength = int64(len(b))
}

// Write serializes the request to w in HTTP/1.1 wire format. A large
// file-backed body going to a connection that can ingest readers directly
// (io.ReaderFrom — net.TCPConn and the client's counting wrapper) skips the
// buffered writer: the headers are flushed and the body handed to the
// connection as an io.LimitedReader over the file, which is the exact shape
// the runtime's sendfile probe unwraps. Everything else keeps the coalesced
// buffered path.
func (r *Request) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 4096)
	if err := r.writeHeaderTo(bw); err != nil {
		return err
	}
	if r.directBodyOK(w) {
		if err := bw.Flush(); err != nil {
			return err
		}
		return r.writeBodyDirect(w)
	}
	if err := r.writeBodyTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteHeader serializes only the request line and headers (declaring the
// body framing the headers promise, but sending no body bytes). Used by
// Expect: 100-continue flows, where the caller waits for the server's
// interim response before streaming the body with WriteBody.
func (r *Request) WriteHeader(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 4096)
	if err := r.writeHeaderTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBody streams the request body using the framing the headers declared
// (Content-Length copy or chunked transfer encoding). It must follow a
// WriteHeader on the same connection. File-backed bodies going to an
// io.ReaderFrom connection are handed over directly (no buffered writer in
// between) so the kernel sendfile path engages.
func (r *Request) WriteBody(w io.Writer) error {
	if r.directBodyOK(w) {
		return r.writeBodyDirect(w)
	}
	bw := bufio.NewWriterSize(w, 4096)
	if err := r.writeBodyTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// directBodyMin is the smallest body worth the separate header flush the
// direct handoff costs: below this, coalescing header and body into one
// buffered write wins.
const directBodyMin = 64 << 10

// DirectBody reports whether Write/WriteBody will hand the body to w whole
// (the zero-copy handoff) rather than copy it through pooled buffers —
// callers use it to classify the transfer's byte path.
func (r *Request) DirectBody(w io.Writer) bool { return r.directBodyOK(w) }

// directBodyOK reports whether the body should bypass the buffered writer
// and be handed to w whole: a known-length file-backed body of useful size,
// going to a connection that ingests readers (io.ReaderFrom). TLS
// connections do not implement ReaderFrom, so they keep the buffered path
// naturally.
func (r *Request) directBodyOK(w io.Writer) bool {
	if r.Body == nil || r.ContentLength < directBodyMin {
		return false
	}
	if _, ok := w.(io.ReaderFrom); !ok {
		return false
	}
	return FileBacked(r.Body)
}

// writeBodyDirect hands the body to w as an io.LimitedReader so w's
// ReadFrom — and, underneath it on a real socket, sendfile(2) — moves the
// bytes without a userspace copy.
func (r *Request) writeBodyDirect(w io.Writer) error {
	n, err := io.Copy(w, io.LimitReader(r.Body, r.ContentLength))
	if err == nil && n < r.ContentLength {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// FileBacked reports whether body bottoms out in an *os.File — the shape
// the kernel zero-copy paths (sendfile on send, splice on receive) accept.
// io.LimitedReader layers are unwrapped the same way the runtime does.
func FileBacked(body io.Reader) bool {
	for {
		switch b := body.(type) {
		case *os.File:
			return true
		case *io.LimitedReader:
			body = b.R
		default:
			return false
		}
	}
}

// writeHeaderTo renders the request line and headers, choosing the body
// framing (Content-Length versus chunked) that writeBodyTo will honour.
func (r *Request) writeHeaderTo(bw *bufio.Writer) error {
	path := r.Path
	if path == "" {
		path = "/"
	}
	if _, err := fmt.Fprintf(bw, "%s %s HTTP/1.1\r\n", r.Method, path); err != nil {
		return err
	}

	h := Header{}
	for k, vs := range r.Header {
		h[k] = vs
	}
	h.Set("Host", r.Host)
	if r.Close {
		h.Set("Connection", "close")
	}
	switch {
	case r.Body == nil:
		// Methods that conventionally carry bodies get an explicit zero.
		if r.Method == "PUT" || r.Method == "POST" {
			h.Set("Content-Length", "0")
		}
	case r.ContentLength >= 0:
		h.Set("Content-Length", strconv.FormatInt(r.ContentLength, 10))
	default:
		h.Set("Transfer-Encoding", "chunked")
	}
	return h.Write(bw)
}

// writeBodyTo copies the body with the framing writeHeaderTo declared,
// through a pooled 64 KiB buffer: io.Copy's native path through the bufio
// buffer would chop a multi-MiB upload into 4 KiB writes, and the
// per-write cost (a syscall on real TCP) dominates large uploads long
// before the bytes do.
func (r *Request) writeBodyTo(bw *bufio.Writer) error {
	if r.Body == nil {
		return nil
	}
	if r.ContentLength < 0 {
		return writeChunked(bw, r.Body)
	}
	buf := bufpool.Get(64 << 10)
	defer bufpool.Put(buf)
	// The wrappers hide bufio's ReaderFrom and any WriterTo so CopyBuffer
	// actually honours the buffer size.
	n, err := io.CopyBuffer(
		struct{ io.Writer }{bw},
		struct{ io.Reader }{io.LimitReader(r.Body, r.ContentLength)},
		buf)
	if err == nil && n < r.ContentLength {
		// A body shorter than its declared length would desync the
		// connection framing; surface it like io.CopyN did.
		err = io.ErrUnexpectedEOF
	}
	return err
}

// writeChunked copies body to w using chunked transfer encoding.
func writeChunked(w io.Writer, body io.Reader) error {
	buf := make([]byte, 16*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := fmt.Fprintf(w, "%x\r\n", n); werr != nil {
				return werr
			}
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr
			}
			if _, werr := io.WriteString(w, "\r\n"); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			_, werr := io.WriteString(w, "0\r\n\r\n")
			return werr
		}
		if err != nil {
			return err
		}
	}
}
