package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/textproto"
	"strconv"
	"strings"
)

// Response is a parsed HTTP response. Body must be drained (read to EOF) or
// closed before the underlying connection can be reused; KeepAlive reports
// whether reuse is permitted at all.
type Response struct {
	// StatusCode is the numeric status (200, 206, 404, ...).
	StatusCode int

	// Status is the full status line reason ("206 Partial Content").
	Status string

	// Proto is the protocol version string ("HTTP/1.1").
	Proto string

	// Header holds the response headers.
	Header Header

	// Body streams the message body. It reads io.EOF exactly at the end of
	// the message; for keep-alive framing the connection is then positioned
	// at the next response.
	Body io.ReadCloser

	// ContentLength is the declared body length, or -1 when unknown
	// (chunked or close-delimited).
	ContentLength int64

	// KeepAlive reports whether the connection may be reused after the
	// body has been fully consumed.
	KeepAlive bool
}

// Parse errors.
var (
	ErrMalformedResponse = errors.New("wire: malformed response")
	ErrBodyNotConsumed   = errors.New("wire: previous body not consumed")
)

// ReadResponse parses one response for the given request method from br.
func ReadResponse(br *bufio.Reader, method string) (*Response, error) {
	tp := textproto.NewReader(br)
	line, err := tp.ReadLine()
	if err != nil {
		return nil, err
	}
	proto, rest, ok := strings.Cut(line, " ")
	if !ok || !strings.HasPrefix(proto, "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformedResponse, line)
	}
	codeStr, _, _ := strings.Cut(rest, " ")
	code, err := strconv.Atoi(codeStr)
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("%w: status code in %q", ErrMalformedResponse, line)
	}

	mh, err := tp.ReadMIMEHeader()
	if err != nil {
		return nil, fmt.Errorf("%w: headers: %v", ErrMalformedResponse, err)
	}
	h := Header(mh)

	resp := &Response{
		StatusCode: code,
		Status:     rest,
		Proto:      proto,
		Header:     h,
	}

	// Keep-alive: HTTP/1.1 defaults to persistent unless "Connection: close";
	// HTTP/1.0 requires an explicit keep-alive.
	conn := h.Get("Connection")
	switch proto {
	case "HTTP/1.1":
		resp.KeepAlive = !hasToken(conn, "close")
	case "HTTP/1.0":
		resp.KeepAlive = hasToken(conn, "keep-alive")
	default:
		resp.KeepAlive = false
	}

	// Body framing per RFC 7230 §3.3.3.
	switch {
	case method == "HEAD" || code/100 == 1 || code == 204 || code == 304:
		resp.ContentLength = 0
		resp.Body = &fixedBody{r: br, remaining: 0}
	case hasToken(h.Get("Transfer-Encoding"), "chunked"):
		resp.ContentLength = -1
		resp.Body = &chunkedBody{br: br}
	case h.Get("Content-Length") != "":
		n, err := strconv.ParseInt(h.Get("Content-Length"), 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: content-length %q", ErrMalformedResponse, h.Get("Content-Length"))
		}
		resp.ContentLength = n
		resp.Body = &fixedBody{r: br, remaining: n}
	default:
		// Close-delimited: body runs to connection EOF; never reusable.
		resp.ContentLength = -1
		resp.KeepAlive = false
		resp.Body = &eofBody{r: br}
	}
	return resp, nil
}

// Consumed reports whether the body has been fully read, leaving the
// connection positioned at the next response.
func (r *Response) Consumed() bool {
	switch b := r.Body.(type) {
	case *fixedBody:
		return b.remaining == 0
	case *chunkedBody:
		return b.done
	case *eofBody:
		return b.done
	}
	return false
}

// ReadAll reads the remaining body to EOF. Content-Length-framed bodies
// are read into a single exactly-sized allocation instead of io.ReadAll's
// grow-and-copy loop — on the vector-read and cache-fill hot paths this
// halves the per-response allocation work.
func (r *Response) ReadAll() ([]byte, error) {
	if fb, ok := r.Body.(*fixedBody); ok {
		b := make([]byte, fb.remaining)
		_, err := io.ReadFull(r.Body, b)
		return b, err
	}
	return io.ReadAll(r.Body)
}

// WriteBodyTo streams the rest of a Content-Length-framed body into dst,
// returning the bytes written and how many of them were read from raw
// rather than the response's buffered reader. The buffered prefix — bytes
// the header parse already pulled into the bufio.Reader — is drained into
// dst first; the remainder is then copied from raw, the connection
// underneath the buffering, as an io.LimitedReader. When dst is an
// *os.File and raw a real socket, that copy is the runtime's splice path:
// the payload never enters a userspace buffer. The body is left fully
// consumed (Consumed() true) on success, so the connection can recycle.
//
// Callers own the byte accounting for the raw portion: those reads bypass
// any counting wrapper above raw. Non-fixed bodies and raw == nil fall
// back to a plain copy from Body.
func (r *Response) WriteBodyTo(dst io.Writer, raw io.Reader) (n, direct int64, err error) {
	fb, okFixed := r.Body.(*fixedBody)
	var br *bufio.Reader
	if okFixed {
		br, _ = fb.r.(*bufio.Reader)
	}
	if !okFixed || br == nil || raw == nil {
		m, cerr := io.Copy(dst, r.Body)
		return m, 0, cerr
	}
	// 1. Drain what the bufio layer already holds.
	for fb.remaining > 0 && br.Buffered() > 0 {
		take := br.Buffered()
		if int64(take) > fb.remaining {
			take = int(fb.remaining)
		}
		peek, perr := br.Peek(take)
		if perr != nil {
			return n, direct, perr
		}
		m, werr := dst.Write(peek)
		br.Discard(m)
		fb.remaining -= int64(m)
		n += int64(m)
		if werr != nil {
			return n, direct, werr
		}
	}
	// 2. Move the remainder straight off the connection.
	if fb.remaining > 0 {
		m, cerr := io.Copy(dst, io.LimitReader(raw, fb.remaining))
		fb.remaining -= m
		n += m
		direct += m
		if cerr != nil {
			return n, direct, cerr
		}
		if fb.remaining > 0 {
			return n, direct, io.ErrUnexpectedEOF
		}
	}
	return n, direct, nil
}

// Discard drains and closes the body so the connection can be recycled.
func (r *Response) Discard() error {
	_, err := io.Copy(io.Discard, r.Body)
	if cerr := r.Body.Close(); err == nil {
		err = cerr
	}
	return err
}

// fixedBody reads exactly remaining bytes.
type fixedBody struct {
	r         io.Reader
	remaining int64
}

func (b *fixedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF && b.remaining > 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *fixedBody) Close() error { return nil }

// chunkedBody decodes chunked transfer encoding, including the final CRLF
// and (ignored) trailers.
type chunkedBody struct {
	br        *bufio.Reader
	chunkLeft int64
	done      bool
	err       error
}

func (b *chunkedBody) Read(p []byte) (int, error) {
	if b.err != nil {
		return 0, b.err
	}
	if b.done {
		return 0, io.EOF
	}
	if b.chunkLeft == 0 {
		if err := b.nextChunk(); err != nil {
			b.err = err
			return 0, err
		}
		if b.done {
			return 0, io.EOF
		}
	}
	if int64(len(p)) > b.chunkLeft {
		p = p[:b.chunkLeft]
	}
	n, err := b.br.Read(p)
	b.chunkLeft -= int64(n)
	if b.chunkLeft == 0 && err == nil {
		// Consume the chunk-terminating CRLF.
		err = b.expectCRLF()
	}
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if err != nil {
		b.err = err
	}
	return n, err
}

func (b *chunkedBody) nextChunk() error {
	line, err := readLine(b.br)
	if err != nil {
		return err
	}
	// Strip chunk extensions.
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 64)
	if err != nil || size < 0 {
		return fmt.Errorf("%w: chunk size %q", ErrMalformedResponse, line)
	}
	if size == 0 {
		// Trailers until blank line.
		for {
			l, err := readLine(b.br)
			if err != nil {
				return err
			}
			if l == "" {
				b.done = true
				return nil
			}
		}
	}
	b.chunkLeft = size
	return nil
}

func (b *chunkedBody) expectCRLF() error {
	line, err := readLine(b.br)
	if err != nil {
		return err
	}
	if line != "" {
		return fmt.Errorf("%w: missing chunk CRLF", ErrMalformedResponse)
	}
	return nil
}

func (b *chunkedBody) Close() error { return nil }

// eofBody reads to connection EOF.
type eofBody struct {
	r    io.Reader
	done bool
}

func (b *eofBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		b.done = true
	}
	return n, err
}

func (b *eofBody) Close() error { return nil }

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
