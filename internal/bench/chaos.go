package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/obs"
)

// The chaos harness drives the self-healing transfer machinery (hedged
// chunk reads, checkpointed resume) through seeded fault schedules on the
// resil testbed and asserts its correctness invariants rather than just
// timing it:
//
//   - zero corrupted bytes are ever committed, on any seed;
//   - a resumed transfer moves exactly size - ResumedBytes fresh bytes —
//     verified journal chunks are skipped, nothing else is;
//   - hedging cuts the P99 of a fleet with one slow-but-healthy replica by
//     at least 2x while duplicate traffic stays under 10% of the payload.
//
// Violations are returned as an error (failing CI), not table footnotes.
const (
	// chaosSlowDelay is the sick replica's per-request head-of-line delay
	// in the hedging scenario: it answers perfectly, slowly — the exact
	// failure mode the health scoreboard cannot see.
	chaosSlowDelay = 40 * time.Millisecond
	// chaosHedgeDelay is the fixed hedge budget raced against the delay.
	// It must clear a healthy chunk's service time with margin (MaxStreams
	// concurrent 128 KiB chunks take a few ms on the simulated LAN) or
	// spurious hedges add duplicate load instead of cutting latency, while
	// staying far enough under chaosSlowDelay that a hedged slow chunk is
	// still a large win.
	chaosHedgeDelay = 8 * time.Millisecond
	chaosUpPath     = "/store/chaos-up.dat"
)

// chaosSeeds are the fault-schedule seeds. Every seed derives its own
// fault inventory, interruption point and local-corruption offset, and
// every seed must uphold every invariant.
var chaosSeeds = []int64{17, 42, 99}

// chunkRec is one successful ChunkDone observation.
type chunkRec struct {
	idx int
	off int64
	ln  int64
}

// chunkLog collects successful chunk completions from a ClientTrace; chunk
// callbacks run concurrently, hence the lock.
type chunkLog struct {
	mu   sync.Mutex
	recs []chunkRec
}

func (l *chunkLog) add(r chunkRec) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, r)
	return len(l.recs)
}

// total sums the observed chunk lengths; fanOnly excludes upload probe
// events (idx 0), which are re-sent on every attempt and never journaled.
func (l *chunkLog) total(fanOnly bool) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, r := range l.recs {
		if fanOnly && r.idx == 0 {
			continue
		}
		n += r.ln
	}
	return n
}

func (l *chunkLog) first() chunkRec {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs[0]
}

// chaosTrace records successful completions of dir into log and, when
// cancelAfter > 0, cancels the transfer as the Nth success completes —
// the deterministic "pull the plug mid-transfer" switch.
func chaosTrace(dir obs.Direction, log *chunkLog, cancelAfter int, cancel context.CancelFunc) *obs.ClientTrace {
	return &obs.ClientTrace{
		ChunkDone: func(d obs.Direction, path string, idx int, off, length int64, err error) {
			if d != dir || err != nil {
				return
			}
			n := log.add(chunkRec{idx: idx, off: off, ln: length})
			if cancelAfter > 0 && n == cancelAfter {
				cancel()
			}
		},
	}
}

// chaosClientOpts is the self-healing client under test: multi-replica
// downloads via the federation, retry budget, end-to-end verification,
// checkpointed resume.
func chaosClientOpts(n *netsim.Network, trace *obs.ClientTrace) core.Options {
	return core.Options{
		Dialer:          n,
		MetalinkHost:    FedAddr,
		ChunkSize:       resilChunk,
		MaxStreams:      4,
		RetryPolicy:     core.RetryPolicy{Attempts: 3},
		VerifyTransfers: true,
		Resume:          true,
		Trace:           trace,
	}
}

// chaosHedgeRun times repeated multi-stream downloads against a fleet
// where one replica answers every request after a long fixed delay,
// with hedging off (negative budget) versus a fixed budget well under the
// delay. Returns the two wall-clock samples and the hedged client's
// counters.
func chaosHedgeRun(repeats int) (base, hedged *Sample, m core.Metrics, err error) {
	blob := make([]byte, resilSize)
	rand.New(rand.NewSource(71)).Read(blob)
	n, srvs, closeBed, err := resilTestbed(netsim.LAN(), blob)
	if err != nil {
		return nil, nil, core.Metrics{}, err
	}
	defer closeBed()
	// dpm2 is slow but correct: 200s all day, after chaosSlowDelay. No
	// failures means no breaker trips — only a latency hedge routes
	// around it.
	srvs["dpm2:80"].SetFault(resilPath, httpserv.Fault{Delay: chaosSlowDelay})

	run := func(budget time.Duration) (*Sample, core.Metrics, error) {
		client, err := core.NewClient(core.Options{
			Dialer:       n,
			MetalinkHost: FedAddr,
			ChunkSize:    resilChunk,
			MaxStreams:   4,
			RetryPolicy:  core.RetryPolicy{Attempts: 2},
			HedgeDelay:   budget,
		})
		if err != nil {
			return nil, core.Metrics{}, err
		}
		defer client.Close()
		ctx := context.Background()
		download := func() error {
			got, err := client.DownloadMultiStream(ctx, "dpm1:80", resilPath)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, blob) {
				return fmt.Errorf("bench: chaos hedge: downloaded bytes differ from source")
			}
			return nil
		}
		if err := download(); err != nil { // untimed warm-up pays the dials
			return nil, core.Metrics{}, err
		}
		s := &Sample{}
		for rep := 0; rep < repeats; rep++ {
			timer := startTimer()
			if err := download(); err != nil {
				return nil, core.Metrics{}, err
			}
			s.AddDuration(timer())
		}
		return s, client.Metrics(), nil
	}

	if base, _, err = run(-1); err != nil {
		return nil, nil, core.Metrics{}, err
	}
	if hedged, m, err = run(chaosHedgeDelay); err != nil {
		return nil, nil, core.Metrics{}, err
	}
	return base, hedged, m, nil
}

// chaosDownloadCycle runs one seeded download / interrupt / corrupt /
// resume cycle and returns the cycle's accounting plus any invariant
// violations.
func chaosDownloadCycle(seed int64) (detail string, violations []string, err error) {
	blob := make([]byte, resilSize)
	rand.New(rand.NewSource(seed)).Read(blob)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	n, srvs, closeBed, err := resilTestbed(netsim.LAN(), blob)
	if err != nil {
		return "", nil, err
	}
	defer closeBed()

	// Seeded fault inventory: a replica serving silently corrupted bytes
	// (integrity headers still describe the pristine object), a 503 storm,
	// and mid-body connection drops. Later picks may land on the same
	// replica and replace an earlier fault — that variety is the point.
	srvs[resilReplicas[rng.Intn(3)]].SetFault(resilPath, httpserv.Fault{
		CorruptXOR: 0x5a, CorruptAt: rng.Int63n(resilSize), Remaining: 2 + rng.Intn(3)})
	srvs[resilReplicas[rng.Intn(3)]].SetFault(resilPath, httpserv.Fault{
		Status: 503, Remaining: 1 + rng.Intn(3)})
	srvs[resilReplicas[rng.Intn(3)]].SetFault(resilPath, httpserv.Fault{
		DropAfter: 1 + rng.Int63n(resilChunk), Remaining: 1 + rng.Intn(2)})

	tmpf, err := os.CreateTemp("", "davix-chaos-*.dat")
	if err != nil {
		return "", nil, err
	}
	sidecar := tmpf.Name() + core.CheckpointSuffix
	defer func() {
		tmpf.Close()
		os.Remove(tmpf.Name())
		os.Remove(sidecar)
	}()

	// Phase 1: download until cancelAfter chunks have committed, then pull
	// the plug from inside the chunk-completion callback.
	cancelAfter := 3 + rng.Intn(5)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	log1 := &chunkLog{}
	client1, err := core.NewClient(chaosClientOpts(n, chaosTrace(obs.Down, log1, cancelAfter, cancel1)))
	if err != nil {
		return "", nil, err
	}
	_, derr := client1.DownloadMultiStreamTo(ctx1, "dpm1:80", resilPath, tmpf)
	client1.Close()
	if derr == nil {
		violations = append(violations, fmt.Sprintf("seed %d: interrupted download reported success", seed))
	}
	if len(log1.recs) == 0 {
		violations = append(violations, fmt.Sprintf("seed %d: no chunks committed before interruption", seed))
		return "", violations, nil
	}
	if _, err := os.Stat(sidecar); err != nil {
		violations = append(violations, fmt.Sprintf("seed %d: no checkpoint sidecar after interruption: %v", seed, err))
		return "", violations, nil
	}

	// Corrupt one journaled chunk in the local partial file: resume must
	// refuse to trust the journal entry and re-fetch exactly that chunk.
	bad := log1.first()
	flipAt := bad.off + bad.ln/2
	b := make([]byte, 1)
	if _, err := tmpf.ReadAt(b, flipAt); err != nil {
		return "", nil, err
	}
	b[0] ^= 0xff
	if _, err := tmpf.WriteAt(b, flipAt); err != nil {
		return "", nil, err
	}

	// Phase 2: resume under a fresh 503 storm with a fresh client (cold
	// metrics, cold health scoreboard — nothing carries over but the
	// sidecar and the partial file).
	srvs[resilReplicas[rng.Intn(3)]].SetFault(resilPath, httpserv.Fault{Status: 503, Remaining: 2})
	log2 := &chunkLog{}
	client2, err := core.NewClient(chaosClientOpts(n, chaosTrace(obs.Down, log2, 0, nil)))
	if err != nil {
		return "", nil, err
	}
	_, rerr := client2.DownloadMultiStreamTo(context.Background(), "dpm1:80", resilPath, tmpf)
	m2 := client2.Metrics()
	client2.Close()
	if rerr != nil {
		violations = append(violations, fmt.Sprintf("seed %d: resume failed: %v", seed, rerr))
		return "", violations, nil
	}

	got := make([]byte, resilSize)
	if _, err := tmpf.ReadAt(got, 0); err != nil {
		return "", nil, err
	}
	if !bytes.Equal(got, blob) {
		violations = append(violations, fmt.Sprintf("seed %d: corrupted bytes committed to the resumed download", seed))
	}
	// Every phase-1 committed chunk except the one corrupted locally must
	// be resumed from the journal, and the re-fetched bytes must cover
	// exactly the rest of the object.
	wantResumed := log1.total(false) - bad.ln
	if m2.ResumedBytes != wantResumed {
		violations = append(violations, fmt.Sprintf("seed %d: ResumedBytes = %d, want %d", seed, m2.ResumedBytes, wantResumed))
	}
	if m2.ResumeVerifyFailures != 1 {
		violations = append(violations, fmt.Sprintf("seed %d: ResumeVerifyFailures = %d, want 1", seed, m2.ResumeVerifyFailures))
	}
	if refetched := log2.total(false); refetched != resilSize-m2.ResumedBytes {
		violations = append(violations, fmt.Sprintf("seed %d: re-fetched %d bytes, want %d", seed, refetched, resilSize-m2.ResumedBytes))
	}
	if _, err := os.Stat(sidecar); !os.IsNotExist(err) {
		violations = append(violations, fmt.Sprintf("seed %d: sidecar survived a completed download", seed))
	}
	detail = fmt.Sprintf("interrupted after %d chunks, resumed %d B, re-fetched %d B, %d journal entry re-verified bad",
		len(log1.recs), m2.ResumedBytes, log2.total(false), m2.ResumeVerifyFailures)
	return detail, violations, nil
}

// chaosUploadCycle runs one seeded upload / interrupt / resume cycle.
func chaosUploadCycle(seed int64) (detail string, violations []string, err error) {
	blob := make([]byte, resilSize)
	rand.New(rand.NewSource(seed + 7)).Read(blob)
	rng := rand.New(rand.NewSource(seed ^ 0x0b5e))
	n, srvs, closeBed, err := resilTestbed(netsim.LAN(), blob)
	if err != nil {
		return "", nil, err
	}
	defer closeBed()

	srcf, err := os.CreateTemp("", "davix-chaos-src-*.dat")
	if err != nil {
		return "", nil, err
	}
	sidecar := srcf.Name() + core.CheckpointSuffix
	defer func() {
		srcf.Close()
		os.Remove(srcf.Name())
		os.Remove(sidecar)
	}()
	if _, err := srcf.Write(blob); err != nil {
		return "", nil, err
	}

	// Phase 1: upload until cancelAfter fan-out chunks are acknowledged,
	// then pull the plug.
	cancelAfter := 3 + rng.Intn(3)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	log1 := &chunkLog{}
	client1, err := core.NewClient(chaosClientOpts(n, chaosTrace(obs.Up, log1, cancelAfter, cancel1)))
	if err != nil {
		return "", nil, err
	}
	uerr := client1.UploadMultiStream(ctx1, "dpm1:80", chaosUpPath, srcf, resilSize)
	client1.Close()
	if uerr == nil {
		violations = append(violations, fmt.Sprintf("seed %d: interrupted upload reported success", seed))
	}
	if _, err := os.Stat(sidecar); err != nil {
		violations = append(violations, fmt.Sprintf("seed %d: no upload sidecar after interruption: %v", seed, err))
		return "", violations, nil
	}

	// Phase 2: resume under a 503 storm on the destination.
	srvs["dpm1:80"].SetFault(chaosUpPath, httpserv.Fault{Status: 503, Remaining: 2})
	log2 := &chunkLog{}
	client2, err := core.NewClient(chaosClientOpts(n, chaosTrace(obs.Up, log2, 0, nil)))
	if err != nil {
		return "", nil, err
	}
	rerr := client2.UploadMultiStream(context.Background(), "dpm1:80", chaosUpPath, srcf, resilSize)
	m2 := client2.Metrics()
	client2.Close()
	if rerr != nil {
		violations = append(violations, fmt.Sprintf("seed %d: upload resume failed: %v", seed, rerr))
		return "", violations, nil
	}

	// The journal must account for every phase-1 acknowledged fan-out
	// chunk (the probe is always re-sent), and the re-sent bytes must
	// cover exactly the rest.
	wantResumed := log1.total(true)
	if m2.ResumedBytes != wantResumed {
		violations = append(violations, fmt.Sprintf("seed %d: upload ResumedBytes = %d, want %d", seed, m2.ResumedBytes, wantResumed))
	}
	if resent := log2.total(false); resent != resilSize-m2.ResumedBytes {
		violations = append(violations, fmt.Sprintf("seed %d: re-sent %d bytes, want %d", seed, resent, resilSize-m2.ResumedBytes))
	}
	if _, err := os.Stat(sidecar); !os.IsNotExist(err) {
		violations = append(violations, fmt.Sprintf("seed %d: upload sidecar survived completion", seed))
	}

	// What landed must be the source, byte for byte — checked through a
	// plain client (no federation, no resume) against the destination.
	plain, err := core.NewClient(core.Options{Dialer: n})
	if err != nil {
		return "", nil, err
	}
	got, gerr := plain.Get(context.Background(), "dpm1:80", chaosUpPath)
	plain.Close()
	if gerr != nil {
		return "", nil, gerr
	}
	if !bytes.Equal(got, blob) {
		violations = append(violations, fmt.Sprintf("seed %d: uploaded object differs from source", seed))
	}
	detail = fmt.Sprintf("interrupted after %d chunks, resumed %d B, re-sent %d B",
		len(log1.recs), m2.ResumedBytes, log2.total(false))
	return detail, violations, nil
}

// Chaos is the deterministic fault harness for the self-healing transfer
// machinery. Unlike the timing experiments it enforces contracts: any
// violated invariant fails the run with an error instead of producing a
// worse-looking row.
func Chaos(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title:   "Chaos: hedged reads and checkpointed resume under injected faults",
		Columns: []string{"scenario", "outcome", "detail"},
	}
	var violations []string

	reps := opts.Repeats * 2
	if reps < 10 {
		reps = 10
	}
	base, hedged, m, err := chaosHedgeRun(reps)
	if err != nil {
		return nil, err
	}
	baseP99, hedgedP99 := base.Quantile(0.99), hedged.Quantile(0.99)
	ratio := baseP99 / hedgedP99
	if ratio < 2 {
		violations = append(violations, fmt.Sprintf(
			"hedging cut slow-replica P99 only %.2fx (%.1fms -> %.1fms), want >= 2x",
			ratio, baseP99*1e3, hedgedP99*1e3))
	}
	if m.HedgesIssued == 0 || m.HedgeWins == 0 {
		violations = append(violations, fmt.Sprintf(
			"hedging never engaged: issued=%d wins=%d", m.HedgesIssued, m.HedgeWins))
	}
	payload := int64(reps+1) * resilSize // timed repeats plus warm-up
	if m.HedgeWastedBytes > payload/10 {
		violations = append(violations, fmt.Sprintf(
			"hedge duplicate traffic %d B exceeds 10%% of the %d B payload", m.HedgeWastedBytes, payload))
	}
	table.AddRow("hedged reads, one slow replica",
		fmt.Sprintf("P99 %.1fms -> %.1fms (%.1fx)", baseP99*1e3, hedgedP99*1e3, ratio),
		fmt.Sprintf("hedges=%d wins=%d wasted=%dB (%.2f%% of payload)",
			m.HedgesIssued, m.HedgeWins, m.HedgeWastedBytes,
			100*float64(m.HedgeWastedBytes)/float64(payload)))

	for _, seed := range chaosSeeds {
		detail, v, err := chaosDownloadCycle(seed)
		if err != nil {
			return nil, err
		}
		violations = append(violations, v...)
		outcome := "ok"
		if len(v) > 0 {
			outcome = "VIOLATION"
			detail = strings.Join(v, "; ")
		}
		table.AddRow(fmt.Sprintf("download interrupt+resume, seed %d", seed), outcome, detail)
	}
	for _, seed := range chaosSeeds {
		detail, v, err := chaosUploadCycle(seed)
		if err != nil {
			return nil, err
		}
		violations = append(violations, v...)
		outcome := "ok"
		if len(v) > 0 {
			outcome = "VIOLATION"
			detail = strings.Join(v, "; ")
		}
		table.AddRow(fmt.Sprintf("upload interrupt+resume, seed %d", seed), outcome, detail)
	}

	table.Notes = []string{
		fmt.Sprintf("seeds %v drive the fault schedule: corrupt-replica bytes, 503 storms, mid-body drops, and the interruption point", chaosSeeds),
		"invariants: no corrupted commit on any seed; resumed + re-transferred bytes == object size; a locally corrupted journal chunk is re-verified and re-fetched",
		fmt.Sprintf("hedging scenario: one replica answers after %v, hedge budget %v; contract is >= 2x P99 cut at <= 10%% duplicate traffic", chaosSlowDelay, chaosHedgeDelay),
	}
	if len(violations) > 0 {
		return nil, fmt.Errorf("bench: chaos invariants violated:\n  %s", strings.Join(violations, "\n  "))
	}
	return table, nil
}
