package bench

import (
	"strings"
	"testing"
)

// TestServerLoadSmoke runs the gateway chaos scenario at a small client
// count: every correctness invariant inside ServerLoad (zero
// accepted-then-failed, Retry-After on every shed, abusers cut, droppers
// never committed) is asserted by the scenario itself, so a nil error is
// the test.
func TestServerLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load scenario takes a few seconds")
	}
	table, err := ServerLoad(Options{Clients: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 { // LAN/WAN x at-limit/overload
		t.Fatalf("rows = %d, want 4", len(table.Rows))
	}
	for _, row := range table.Rows {
		if len(row) != len(table.Columns) {
			t.Fatalf("row %v: %d cells, want %d", row, len(row), len(table.Columns))
		}
	}
	var sawOverload bool
	for _, row := range table.Rows {
		if strings.Contains(row[1], "overload") {
			sawOverload = true
			if row[6] == "0" {
				t.Fatalf("overload row shed nothing: %v", row)
			}
		}
	}
	if !sawOverload {
		t.Fatal("no overload regime row in table")
	}
}
