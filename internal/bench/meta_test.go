package bench

import (
	"testing"

	"godavix/internal/netsim"
)

// TestMetaWalkSpeedupWAN pins the ISSUE-3 acceptance bar: the concurrent
// namespace walk must cut deep-tree wall-clock by at least 4x on the WAN
// profile versus the serial baseline, with identical emission order.
func TestMetaWalkSpeedupWAN(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	serial, serialOrder, err := runMetaWalk(netsim.WAN(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	parallel, parallelOrder, err := runMetaWalk(netsim.WAN(), metaConns, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("WAN serial %.3fs parallel %.3fs (%.2fx)",
		serial.Mean(), parallel.Mean(), serial.Mean()/parallel.Mean())
	if parallelOrder != serialOrder {
		t.Fatal("parallel walk order diverged from serial")
	}
	if parallel.Min()*4 > serial.Min() {
		t.Fatalf("parallel (%.3fs) not 4x faster than serial (%.3fs)",
			parallel.Min(), serial.Min())
	}
}

// TestMetaDecodeAllocsDrop pins the other half of the bar: streaming
// multistatus decoding must allocate at most half of what the seed's
// materialize-then-Unmarshal path pays for a 10k-entry collection.
func TestMetaDecodeAllocsDrop(t *testing.T) {
	streaming, err := metaDecodeAllocs(true, 3)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := metaDecodeAllocs(false, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("allocs/op: streaming=%.0f seed=%.0f (%.0f%% drop)",
		streaming, seed, 100*(1-streaming/seed))
	if streaming > seed/2 {
		t.Fatalf("streaming %.0f allocs/op not ≤ half of seed %.0f", streaming, seed)
	}
}

// TestMetaOrderIdenticalLAN is the cheap always-on determinism check on the
// bench tree (the timing test above is skipped under -short).
func TestMetaOrderIdenticalLAN(t *testing.T) {
	_, serialOrder, err := runMetaWalk(netsim.LAN(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, parallelOrder, err := runMetaWalk(netsim.LAN(), metaConns, 1)
	if err != nil {
		t.Fatal(err)
	}
	if serialOrder == "" || serialOrder != parallelOrder {
		t.Fatal("parallel walk order diverged from serial")
	}
}

// TestMetaTableRuns exercises the experiment end to end.
func TestMetaTableRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	table, err := Meta(Options{Repeats: 1, Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

// BenchmarkMetaWalkWAN lets `go test -bench` compare serial and parallel
// namespace walks directly.
func BenchmarkMetaWalkWAN(b *testing.B) {
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", metaConns}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := runMetaWalk(netsim.WAN(), mode.par, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetaDecodeAllocs reports the streaming-vs-seed multistatus
// decoder ablation.
func BenchmarkMetaDecodeAllocs(b *testing.B) {
	for _, mode := range []struct {
		name      string
		streaming bool
	}{{"streaming", true}, {"seed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := metaDecodeAllocs(mode.streaming, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
