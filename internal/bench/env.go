// Package bench implements the paper's evaluation (§3): the testbed
// environment (storage servers over a simulated network), the ROOT-style
// analysis job, and one experiment per figure of the paper, each emitting
// the rows the paper reports.
package bench

import (
	"context"
	"fmt"
	"io"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/rangev"
	"godavix/internal/rootio"
	"godavix/internal/storage"
	"godavix/internal/xrootd"
)

// Standard testbed addresses.
const (
	HTTPAddr = "dpm1:80"
	XrdAddr  = "dpm1:1094"
	FedAddr  = "fed:80"
)

// Env is one instantiation of the paper's testbed: a storage node serving
// the same namespace over both HTTP (DPM-like) and the xrootd-like
// protocol, reachable through a netsim fabric with a given latency class.
type Env struct {
	// Net is the simulated fabric.
	Net *netsim.Network
	// Store is the shared backing namespace.
	Store *storage.MemStore
	// HTTPServer and XrdServer expose request counters.
	HTTPServer *httpserv.Server
	// XrdServer is the xrootd-like server.
	XrdServer *xrootd.Server

	closers []func()
}

// NewEnv builds the testbed on the given network profile.
func NewEnv(prof netsim.Profile, httpOpts httpserv.Options) (*Env, error) {
	e := &Env{
		Net:   netsim.New(prof),
		Store: storage.NewMemStore(),
	}
	e.HTTPServer = httpserv.New(e.Store, httpOpts)
	hl, err := e.Net.Listen(HTTPAddr)
	if err != nil {
		return nil, err
	}
	e.closers = append(e.closers, func() { hl.Close() })
	go e.HTTPServer.Serve(hl)

	e.XrdServer = xrootd.NewServer(e.Store)
	xl, err := e.Net.Listen(XrdAddr)
	if err != nil {
		e.Close()
		return nil, err
	}
	e.closers = append(e.closers, func() { xl.Close() })
	go e.XrdServer.Serve(xl)
	return e, nil
}

// Close tears the testbed down.
func (e *Env) Close() {
	for i := len(e.closers) - 1; i >= 0; i-- {
		e.closers[i]()
	}
	e.closers = nil
}

// NewHTTPClient creates a davix client on the fabric.
func (e *Env) NewHTTPClient(opts core.Options) (*core.Client, error) {
	opts.Dialer = e.Net
	return core.NewClient(opts)
}

// NewXrdClient creates an xrootd client on the fabric.
func (e *Env) NewXrdClient() *xrootd.Client {
	return xrootd.NewClient(e.Net, XrdAddr)
}

// HTTPSource adapts a davix File to a rootio Source. Plain davix performs
// vectored reads synchronously — the paper's HTTP path has no asynchronous
// prefetch, which is exactly what costs it on the WAN.
func HTTPSource(f *core.File) rootio.Source {
	return rootio.Source{
		Size:    f.Size(),
		ReadVec: f.ReadVec,
	}
}

// HTTPSourceAsync adds a goroutine-based asynchronous vectored read on top
// of the davix File. This is NOT in the paper — it is the repository's
// "future work" ablation showing that HTTP plus prefetch would close the
// WAN gap (see EXPERIMENTS.md).
func HTTPSourceAsync(f *core.File) rootio.Source {
	src := HTTPSource(f)
	src.ReadVecAsync = func(ranges []rangev.Range, dsts [][]byte) <-chan error {
		ch := make(chan error, 1)
		go func() { ch <- f.ReadVec(ranges, dsts) }()
		return ch
	}
	return src
}

// HTTPSourcePipelined exposes the davix File's cancellable asynchronous
// vectored read and its learned read-ahead hint to rootio, letting the
// TreeCache keep the next windows' transfers in flight under the current
// window's decode/compute — the overlap the xrootd baseline gets from
// kXR_readv, now on the HTTP path.
func HTTPSourcePipelined(f *core.File) rootio.Source {
	src := HTTPSource(f)
	src.ReadVecAsyncCtx = f.ReadVecAsyncCtx
	src.Hint = f.PrefetchHint
	return src
}

// HTTPSourceReadAt adapts a davix File to rootio through plain ReadAt
// calls: every range becomes a separate read through the client's block
// cache, so the cache's sequential read-ahead — not the vectored path —
// serves the workload. This is the "naive read-ahead" baseline of the
// analysis experiment.
func HTTPSourceReadAt(f *core.File) rootio.Source {
	return rootio.Source{
		Size: f.Size(),
		ReadVec: func(ranges []rangev.Range, dsts [][]byte) error {
			for i, r := range ranges {
				if _, err := f.ReadAt(dsts[i][:r.Len], r.Off); err != nil && err != io.EOF {
					return err
				}
			}
			return nil
		},
	}
}

// XrdSource adapts an xrootd File to a rootio Source, exposing both the
// synchronous and asynchronous (sliding-window style) vectored reads.
func XrdSource(ctx context.Context, f *xrootd.File) rootio.Source {
	toChunks := func(ranges []rangev.Range) []xrootd.Chunk {
		chunks := make([]xrootd.Chunk, len(ranges))
		for i, r := range ranges {
			chunks[i] = xrootd.Chunk{Offset: r.Off, Length: int32(r.Len)}
		}
		return chunks
	}
	return rootio.Source{
		Size: f.Size(),
		ReadVec: func(ranges []rangev.Range, dsts [][]byte) error {
			return f.ReadV(ctx, toChunks(ranges), dsts)
		},
		ReadVecAsync: func(ranges []rangev.Range, dsts [][]byte) <-chan error {
			return f.ReadVAsync(ctx, toChunks(ranges), dsts)
		},
	}
}

// InstallDataset synthesizes the RNT event file and stores it at path on
// the env's shared store, returning the file image size.
func (e *Env) InstallDataset(path string, spec rootio.SynthSpec) (int64, error) {
	img, err := rootio.Synthesize(spec)
	if err != nil {
		return 0, err
	}
	if err := e.Store.Put(path, img); err != nil {
		return 0, err
	}
	return int64(len(img)), nil
}

// OpenHTTP opens the dataset through davix.
func (e *Env) OpenHTTP(ctx context.Context, c *core.Client, path string) (*core.File, error) {
	f, err := c.Open(ctx, HTTPAddr, path)
	if err != nil {
		return nil, fmt.Errorf("bench: open http: %w", err)
	}
	return f, nil
}

// OpenXrd opens the dataset through the xrootd client.
func (e *Env) OpenXrd(ctx context.Context, c *xrootd.Client, path string) (*xrootd.File, error) {
	f, err := c.Open(ctx, path)
	if err != nil {
		return nil, fmt.Errorf("bench: open xrootd: %w", err)
	}
	return f, nil
}
