package bench

import (
	"testing"

	"godavix/internal/netsim"
)

// TestXferSpeedupLAN pins the ISSUE-4 acceptance bar: the 16-chunk
// multi-stream upload must beat the serial Put by a wide margin on the LAN
// profile (the bench reports ~4.5x; 3x here keeps the regression floor
// clear of shared-runner timing noise).
func TestXferSpeedupLAN(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race instrumentation swamps the simulated 16 MiB transfer")
	}
	serial, err := runXferUpload(netsim.LAN(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runXferUpload(netsim.LAN(), xferConns, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LAN serial %.3fs parallel %.3fs (%.2fx)",
		serial.Mean(), parallel.Mean(), serial.Mean()/parallel.Mean())
	if parallel.Min()*3 > serial.Min() {
		t.Fatalf("parallel upload (%.3fs) not 3x faster than serial Put (%.3fs)",
			parallel.Min(), serial.Min())
	}
}

// TestXferUploadAllocsAreChunkBound: PutReader must move an 8 MiB object
// while allocating orders of magnitude less than materialize-then-Put —
// O(chunk), not O(file).
func TestXferUploadAllocsAreChunkBound(t *testing.T) {
	streaming, err := putAllocBytes(true, 5)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := putAllocBytes(false, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("B/op: streaming=%.0f materialize=%.0f", streaming, seed)
	if streaming > seed/50 {
		t.Fatalf("PutReader allocates %.0f B/op, not chunk-bound vs %.0f B/op materialized", streaming, seed)
	}
}

// TestXferDownloadAllocsDropWriterAt: downloading into an io.WriterAt must
// shed the O(file) output buffer that DownloadMultiStream assembles.
func TestXferDownloadAllocsDropWriterAt(t *testing.T) {
	to, err := downloadAllocBytes(true, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := downloadAllocBytes(false, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("B/op: writerAt=%.0f materialize=%.0f", to, buf)
	// The materializing path must pay at least the 8 MiB object on top.
	if buf-to < float64(xferAllocMB<<20)/2 {
		t.Fatalf("WriterAt path (%.0f B/op) does not shed the O(file) buffer vs %.0f B/op", to, buf)
	}
}

// TestXferTableRuns exercises the experiment end to end at tiny scale.
func TestXferTableRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	table, err := Xfer(Options{Repeats: 1, Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

// BenchmarkXferUploadLAN lets `go test -bench` compare the serial and
// multi-stream uploads directly.
func BenchmarkXferUploadLAN(b *testing.B) {
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"multistream", xferConns}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runXferUpload(netsim.LAN(), mode.par, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
