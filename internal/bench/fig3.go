package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/rangev"
)

// startTimer returns a function reporting the elapsed time since the call.
func startTimer() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration { return time.Since(t0) }
}

// Fig3 measures the paper's Figure 3 mechanism: K scattered fragment reads
// issued (a) as K individual ranged GETs, (b) as one davix vectored
// multi-range request, (c) as one xrootd readv. The vectored forms turn K
// round trips into one, "drastically reducing the number of remote network
// I/O operations".
func Fig3(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const (
		blobSize = 8 << 20
		fragLen  = 256
	)
	table := &Table{
		Title:   "Figure 3: K fragment reads — individual GETs vs vectored multi-range vs xrootd readv",
		Columns: []string{"link", "K", "individual", "davix vectored", "xrootd readv", "HTTP reqs (indiv/vec)"},
		Notes:   []string{fmt.Sprintf("fragments of %d bytes scattered over a %d MiB object", fragLen, blobSize>>20)},
	}

	rng := rand.New(rand.NewSource(99))
	blob := make([]byte, blobSize)
	rng.Read(blob)

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.PAN()} {
		for _, k := range []int{16, 64, 256} {
			env, err := NewEnv(prof, httpserv.Options{})
			if err != nil {
				return nil, err
			}
			env.Store.Put("/blob", blob)

			ranges := make([]rangev.Range, k)
			dsts := make([][]byte, k)
			frng := rand.New(rand.NewSource(int64(k)))
			for i := range ranges {
				ranges[i] = rangev.Range{Off: frng.Int63n(blobSize - fragLen), Len: fragLen}
				dsts[i] = make([]byte, fragLen)
			}

			indiv, vec, xrd := &Sample{}, &Sample{}, &Sample{}
			var indivReqs, vecReqs int64
			for rep := 0; rep < opts.Repeats; rep++ {
				client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
				if err != nil {
					env.Close()
					return nil, err
				}
				ctx := context.Background()

				before := env.HTTPServer.RequestsByMethod("GET")
				timer := startTimer()
				for i, r := range ranges {
					data, err := client.GetRange(ctx, HTTPAddr, "/blob", r.Off, r.Len)
					if err != nil {
						client.Close()
						env.Close()
						return nil, err
					}
					copy(dsts[i], data)
				}
				indiv.AddDuration(timer())
				indivReqs = env.HTTPServer.RequestsByMethod("GET") - before

				before = env.HTTPServer.RequestsByMethod("GET")
				timer = startTimer()
				if err := client.ReadVec(ctx, HTTPAddr, "/blob", ranges, dsts); err != nil {
					client.Close()
					env.Close()
					return nil, err
				}
				vec.AddDuration(timer())
				vecReqs = env.HTTPServer.RequestsByMethod("GET") - before
				client.Close()

				xc := env.NewXrdClient()
				xf, err := xc.Open(ctx, "/blob")
				if err != nil {
					xc.Close()
					env.Close()
					return nil, err
				}
				chunks := make([]rangev.Range, k)
				copy(chunks, ranges)
				timer = startTimer()
				if err := XrdSource(ctx, xf).ReadVec(ranges, dsts); err != nil {
					xc.Close()
					env.Close()
					return nil, err
				}
				xrd.AddDuration(timer())
				xc.Close()
			}
			table.AddRow(
				prof.Name,
				fmt.Sprint(k),
				Millis(indiv),
				Millis(vec),
				Millis(xrd),
				fmt.Sprintf("%d/%d", indivReqs, vecReqs),
			)
			env.Close()
		}
	}
	return table, nil
}

// Fig3GapAblation sweeps the data-sieving coalescing gap: larger gaps merge
// more fragments into fewer parts at the cost of transferring hole bytes.
// This ablates the CoalesceGap design choice called out in DESIGN.md.
func Fig3GapAblation(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const (
		blobSize = 4 << 20
		k        = 128
		fragLen  = 128
		stride   = 1024 // fragments regularly spaced: hole = stride-fragLen
	)
	table := &Table{
		Title:   "Ablation: vectored-read coalescing gap (data sieving threshold)",
		Columns: []string{"gap", "time", "frames", "bytes fetched"},
		Notes:   []string{fmt.Sprintf("%d fragments of %dB with %dB holes, PAN link", k, fragLen, stride-fragLen)},
	}
	blob := make([]byte, blobSize)
	rand.New(rand.NewSource(7)).Read(blob)

	ranges := make([]rangev.Range, k)
	dsts := make([][]byte, k)
	for i := range ranges {
		ranges[i] = rangev.Range{Off: int64(i * stride), Len: fragLen}
		dsts[i] = make([]byte, fragLen)
	}

	for _, gap := range []int64{0, 256, 1024, 4096} {
		env, err := NewEnv(netsim.PAN(), httpserv.Options{})
		if err != nil {
			return nil, err
		}
		env.Store.Put("/blob", blob)
		client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone, CoalesceGap: gap})
		if err != nil {
			env.Close()
			return nil, err
		}
		ctx := context.Background()

		s := &Sample{}
		for rep := 0; rep < opts.Repeats; rep++ {
			timer := startTimer()
			if err := client.ReadVec(ctx, HTTPAddr, "/blob", ranges, dsts); err != nil {
				client.Close()
				env.Close()
				return nil, err
			}
			s.AddDuration(timer())
		}
		frames := rangev.Coalesce(ranges, gap)
		table.AddRow(
			fmt.Sprint(gap),
			Millis(s),
			fmt.Sprint(len(frames)),
			fmt.Sprint(rangev.TotalBytes(frames)),
		)
		client.Close()
		env.Close()
	}
	return table, nil
}
