package bench

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/storage"
	"godavix/internal/wire"
)

// ServerLoad is the gateway chaos benchmark: N simulated clients (mixed
// GET/PUT/PROPFIND over raw HTTP/1.1) hammer one dpm-server instance with
// admission control armed, first at the admission limit, then at twice the
// limit with misbehaving cohorts added — slow-loris writers that declare a
// body and never send it, droppers that cut the connection mid-upload, and
// oversized bodies past the 1 GiB cap. The scenario asserts the overload
// contract: well-behaved clients see zero failed-after-accept requests,
// the excess is shed with 503 + Retry-After, abusers are cut by the stall
// guard, and dropped uploads never commit. Goodput and latency quantiles
// for both regimes land in BENCH_server.json.
func ServerLoad(o Options) (*Table, error) {
	o = o.withDefaults()
	table := &Table{
		Title: "Server: gateway under overload (admission control + chaos cohorts)",
		Columns: []string{"link", "regime", "clients", "goodput",
			"P50", "P99", "shed", "stalled", "errors"},
		Notes: []string{
			fmt.Sprintf("admission limit %d in-flight, queue %d; both regimes add %d slow-loris + %d droppers + %d oversized; overload runs 2x clients",
				o.Clients, queueDepthFor(o.Clients), lorisCount, dropperCount, oversizedCount),
			"per-connection bandwidth is the client's fair share of the link at the admission limit (gateway NIC is the shared bottleneck)",
			"contract: overload goodput within 20% of at-limit, P99 within 3x, zero accepted-then-failed requests",
		},
	}

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.WAN()} {
		atLimit, overload, err := serverLoadProfile(prof, o)
		if err != nil {
			return nil, fmt.Errorf("bench server (%s): %w", prof.Name, err)
		}
		for _, res := range []*loadResult{atLimit, overload} {
			table.AddRow(prof.Name, res.regime, fmt.Sprint(res.clients),
				fmt.Sprintf("%.0f op/s", res.goodput),
				fmt.Sprintf("%.1fms", res.lat.Quantile(0.50)*1000),
				fmt.Sprintf("%.1fms", res.lat.Quantile(0.99)*1000),
				fmt.Sprint(res.shed), fmt.Sprint(res.stalled), fmt.Sprint(res.errs))
		}
		table.Notes = append(table.Notes, fmt.Sprintf(
			"%s: overload goodput %.0f%% of at-limit, P99 %.2fx at-limit P99",
			prof.Name, 100*ratio(overload.goodput, atLimit.goodput),
			ratio(overload.lat.Quantile(0.99), atLimit.lat.Quantile(0.99))))
	}
	return table, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Misbehaving cohort sizes for the overload regime.
const (
	lorisCount     = 8
	dropperCount   = 8
	oversizedCount = 4
)

const (
	baseWindow  = 700 * time.Millisecond
	getObjSize  = 128 << 10
	seedObjects = 16
	// putObjSize is sized so the shaped body transfer dominates a client's
	// request cycle: the simulated kernel send buffer makes response writes
	// free for the server, so admission slots are really held only while a
	// body is being read — uploads are what contend for the gateway.
	putObjSize = 128 << 10
	// clientRetryCap bounds how long a shed client honours Retry-After —
	// the same cap discipline core.RetryPolicy.CapBackoff applies, scaled
	// to the bench window.
	clientRetryCap = 40 * time.Millisecond
	// lorisRestDelay paces a stall-killed slow-loris between reconnects,
	// keeping the cohort a persistent nuisance rather than a slot-consuming
	// flood (the flood case is the rate limiter's job, not this scenario's).
	lorisRestDelay = 150 * time.Millisecond
	// minShare floors the per-client bandwidth share so extreme -clients
	// values keep requests inside the request budget.
	minShare = 256 << 10
)

func queueDepthFor(limit int) int {
	q := limit / 4
	if q < 1 {
		q = 1
	}
	return q
}

// loadShape derives the per-regime tuning from the link profile and the
// admission limit. The stock profiles give every connection the full link
// rate; on a gateway running at its admission limit the NIC is the shared
// bottleneck, so each client is given its fair share (floored so huge
// client counts stay inside the request budget). The stall timeout and
// measurement window scale with that share: the client stack writes
// uploads in 64 KiB bursts, so at low per-client rates consecutive body
// segments are legitimately far apart and the stall guard must sit above
// that gap, and the window must still fit several stall-kill cycles.
type loadShape struct {
	prof       netsim.Profile
	stallAfter time.Duration
	window     time.Duration
}

func shapeFor(prof netsim.Profile, limit int) loadShape {
	share := prof.Bandwidth / int64(limit)
	if share < minShare {
		share = minShare
	}
	prof.Bandwidth = share
	segGap := time.Duration(float64(64<<10) / float64(share) * float64(time.Second))
	stall := 4 * segGap
	if stall < 60*time.Millisecond {
		stall = 60 * time.Millisecond
	}
	window := baseWindow
	if w := 4 * stall; w > window {
		window = w
	}
	return loadShape{prof: prof, stallAfter: stall, window: window}
}

// loadResult is one regime's measurement.
type loadResult struct {
	regime  string
	clients int
	goodput float64 // successful well-behaved ops per second
	lat     *Sample // per-op latency, successful well-behaved ops
	shed    int64   // 503s received by well-behaved clients
	stalled int64   // server-side stall kills (abusers cut)
	errs    int64   // well-behaved requests accepted then failed
}

// serverLoadProfile measures both regimes on one link profile. The ISSUE's
// overload contract is asserted; a violated performance bound gets one
// re-measure before failing, since the bound compares two wall-clock runs
// on a shared machine.
func serverLoadProfile(prof netsim.Profile, o Options) (atLimit, overload *loadResult, err error) {
	shape := shapeFor(prof, o.Clients)
	for attempt := 0; ; attempt++ {
		atLimit, err = runRegime(shape, o, "at-limit", o.Clients)
		if err != nil {
			return nil, nil, err
		}
		overload, err = runRegime(shape, o, "overload-2x", 2*o.Clients)
		if err != nil {
			return nil, nil, err
		}
		violation := overloadContract(atLimit, overload)
		if violation == "" {
			return atLimit, overload, nil
		}
		if attempt >= 1 {
			return nil, nil, errors.New(violation)
		}
	}
}

// overloadContract checks the scenario's load-dependent guarantees,
// returning a description of the first violation or "" when all hold.
// These compare two timing-sensitive runs, so the caller grants one
// re-measure before treating a violation as real.
func overloadContract(atLimit, overload *loadResult) string {
	switch {
	case overload.shed == 0:
		return "overload regime shed nothing"
	// Slow-loris kills are demonstrated wherever the cohort holds a slot:
	// under full overload the admission gate sheds most of their
	// reconnects before a body read ever starts (the cheaper outcome), so
	// the guaranteed kills come from the head start the cohorts get on an
	// empty gateway.
	case atLimit.stalled+overload.stalled == 0:
		return "no slow-loris writer was stall-killed in either regime"
	case overload.goodput < 0.8*atLimit.goodput:
		return fmt.Sprintf("overload goodput %.0f op/s fell below 80%% of at-limit %.0f op/s",
			overload.goodput, atLimit.goodput)
	case overload.lat.Quantile(0.99) > 3*atLimit.lat.Quantile(0.99):
		return fmt.Sprintf("overload P99 %.1fms exceeds 3x at-limit P99 %.1fms",
			overload.lat.Quantile(0.99)*1000, atLimit.lat.Quantile(0.99)*1000)
	}
	return ""
}

// runRegime builds a fresh gateway with admission armed and drives it with
// wellClients well-behaved clients plus the chaos cohorts for the
// measurement window. The cohorts run in both regimes so the goodput and
// latency comparison is apples-to-apples.
func runRegime(shape loadShape, o Options, name string, wellClients int) (*loadResult, error) {
	network := netsim.New(shape.prof)
	store := storage.NewMemStore()
	srv := httpserv.New(store, httpserv.Options{
		Limits: httpserv.Limits{
			MaxInFlight:          o.Clients,
			QueueDepth:           queueDepthFor(o.Clients),
			QueueWait:            250 * time.Millisecond,
			PerClientConcurrency: 4,
			BodyStallTimeout:     shape.stallAfter,
			RequestBudget:        2 * time.Second,
			PartialTTL:           500 * time.Millisecond,
		},
	})
	defer srv.Close()
	l, err := network.ListenBacklog(HTTPAddr, 1024)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go srv.Serve(l)

	seed := bytes.Repeat([]byte("dpm-load!"), getObjSize/8)[:getObjSize]
	for i := 0; i < seedObjects; i++ {
		if err := store.Put(fmt.Sprintf("/data/obj-%d.rnt", i), seed); err != nil {
			return nil, err
		}
	}

	deadline := time.Now().Add(shape.window)
	var (
		okOps   atomic.Int64
		shed    atomic.Int64
		errsCt  atomic.Int64
		noRetry atomic.Int64 // 503s missing Retry-After (contract violation)
		latMu   sync.Mutex
		lat     = &Sample{}
		wg      sync.WaitGroup
	)

	for i := 0; i < wellClients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := &Sample{}
			wellClient(network, id, deadline, local, &okOps, &shed, &errsCt, &noRetry)
			latMu.Lock()
			lat.values = append(lat.values, local.values...)
			latMu.Unlock()
		}(i)
	}
	for i := 0; i < lorisCount; i++ {
		wg.Add(1)
		go func(id int) { defer wg.Done(); lorisClient(network, id, deadline) }(i)
	}
	for i := 0; i < dropperCount; i++ {
		wg.Add(1)
		go func(id int) { defer wg.Done(); dropperClient(network, id, deadline) }(i)
	}
	for i := 0; i < oversizedCount; i++ {
		wg.Add(1)
		go func(id int) { defer wg.Done(); oversizedClient(network, id, deadline) }(i)
	}
	wg.Wait()

	res := &loadResult{
		regime:  name,
		clients: wellClients,
		goodput: float64(okOps.Load()) / shape.window.Seconds(),
		lat:     lat,
		shed:    shed.Load(),
		errs:    errsCt.Load(),
	}
	for _, c := range srv.Snapshot().Counters {
		if c.Name == "stall_kills_total" {
			res.stalled = c.Value
		}
	}

	// The overload contract's correctness half, asserted per regime.
	if res.errs > 0 {
		return nil, fmt.Errorf("%s: %d well-behaved requests were accepted then failed", name, res.errs)
	}
	if n := noRetry.Load(); n > 0 {
		return nil, fmt.Errorf("%s: %d sheds arrived without a Retry-After header", name, n)
	}
	for i := 0; i < dropperCount; i++ {
		if _, err := store.Stat(fmt.Sprintf("/abuse/drop-%d.rnt", i)); !errors.Is(err, storage.ErrNotFound) {
			return nil, fmt.Errorf("%s: dropped upload /abuse/drop-%d.rnt committed (err=%v)", name, i, err)
		}
	}
	if okOps.Load() == 0 {
		return nil, fmt.Errorf("%s: no well-behaved request succeeded", name)
	}
	return res, nil
}

// cohortHeadStart delays the well-behaved rush so the chaos cohorts
// connect to an empty gateway first and are deterministically admitted:
// the scenario must prove the stall guard evicts an abuser that is
// already holding a slot when the rush arrives, not merely that the
// admission gate can starve one out.
const cohortHeadStart = 5 * time.Millisecond

// wellClient is one law-abiding load generator: serial mixed ops over a
// keep-alive connection, honouring Retry-After (capped) on 503 and
// retrying a connection-level failure once on a fresh dial.
func wellClient(network *netsim.Network, id int, deadline time.Time, lat *Sample,
	okOps, shed, errsCt, noRetry *atomic.Int64) {
	time.Sleep(cohortHeadStart)
	token := fmt.Sprintf("client-%d", id)
	rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
	putBody := bytes.Repeat([]byte{byte(id%251 + 1)}, putObjSize)
	var conn net.Conn
	var br *bufio.Reader
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	redial := func() bool {
		if conn != nil {
			conn.Close()
		}
		c, err := network.Dial(HTTPAddr)
		if err != nil {
			conn, br = nil, nil
			return false
		}
		conn, br = c, bufio.NewReader(c)
		return true
	}
	seq := 0
	for time.Now().Before(deadline) {
		if conn == nil && !redial() {
			return
		}
		seq++
		var req *wire.Request
		switch r := rng.Intn(20); {
		case r < 17:
			// Write-heavy mix: uploads are what hold admission slots, so
			// they carry the contention. Each client overwrites its own two
			// objects to keep the store's footprint flat.
			req = wire.NewRequest("PUT", HTTPAddr, fmt.Sprintf("/load/c%d-%d.rnt", id, seq%2))
			req.SetBodyBytes(putBody)
		case r < 19:
			req = wire.NewRequest("GET", HTTPAddr, fmt.Sprintf("/data/obj-%d.rnt", rng.Intn(seedObjects)))
		default:
			req = wire.NewRequest("PROPFIND", HTTPAddr, "/data")
			req.Header.Set("Depth", "1")
		}
		req.Header.Set("Authorization", "Bearer "+token)

		status, retryAfter, took, ok := doOp(conn, br, req)
		if !ok {
			// One fresh-connection retry before calling it an error: a
			// keep-alive conn torn down between ops is normal lifecycle.
			if !redial() {
				return
			}
			status, retryAfter, took, ok = doOp(conn, br, req)
			if !ok {
				errsCt.Add(1)
				conn.Close()
				conn = nil
				continue
			}
		}
		switch {
		case status == 503:
			shed.Add(1)
			if retryAfter <= 0 {
				noRetry.Add(1)
			}
			// Honour the server's backoff request, capped the way the real
			// client caps it at RetryPolicy.CapBackoff.
			pause := retryAfter
			if pause > clientRetryCap {
				pause = clientRetryCap
			}
			time.Sleep(pause)
		case status >= 200 && status < 300, status == 207:
			okOps.Add(1)
			lat.AddDuration(took)
		default:
			errsCt.Add(1)
		}
	}
}

// doOp writes one request and reads its response on the given connection,
// reporting the status, any Retry-After, the exchange latency, and whether
// the exchange completed at the HTTP layer at all.
func doOp(conn net.Conn, br *bufio.Reader, req *wire.Request) (status int, retryAfter, took time.Duration, ok bool) {
	// Rewind the body for a retry.
	if req.Body != nil {
		if s, isSeeker := req.Body.(*bytes.Reader); isSeeker {
			s.Seek(0, 0)
		}
	}
	start := time.Now()
	if err := req.Write(conn); err != nil {
		return 0, 0, 0, false
	}
	resp, err := wire.ReadResponse(br, req.Method)
	if err != nil {
		return 0, 0, 0, false
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if err := resp.Discard(); err != nil {
		return 0, 0, 0, false
	}
	return resp.StatusCode, retryAfter, time.Since(start), true
}

// lorisClient declares an upload body and never sends a byte of it: the
// gateway's stall guard must cut it. On each kill it redials and starts
// over.
func lorisClient(network *netsim.Network, id int, deadline time.Time) {
	for time.Now().Before(deadline) {
		conn, err := network.Dial(HTTPAddr)
		if err != nil {
			return
		}
		req := wire.NewRequest("PUT", HTTPAddr, fmt.Sprintf("/abuse/loris-%d.rnt", id))
		req.Header.Set("Authorization", fmt.Sprintf("Bearer loris-%d", id))
		// The non-nil Body makes WriteHeader declare the Content-Length; we
		// then never send a byte of it.
		req.Body = bytes.NewReader(nil)
		req.ContentLength = 64 << 10
		if err := req.WriteHeader(conn); err != nil {
			conn.Close()
			continue
		}
		// Park until the server cuts us (read returns) or the window ends.
		conn.SetReadDeadline(deadline)
		br := bufio.NewReader(conn)
		wire.ReadResponse(br, req.Method)
		conn.Close()
		time.Sleep(lorisRestDelay)
	}
}

// dropperClient starts an upload and cuts the connection halfway through
// the promised body — the classic mid-body client crash. The gateway must
// never commit these.
func dropperClient(network *netsim.Network, id int, deadline time.Time) {
	const dropperHalf = 32 << 10
	half := bytes.Repeat([]byte{0xdd}, dropperHalf)
	for time.Now().Before(deadline) {
		conn, err := network.Dial(HTTPAddr)
		if err != nil {
			return
		}
		req := wire.NewRequest("PUT", HTTPAddr, fmt.Sprintf("/abuse/drop-%d.rnt", id))
		req.Header.Set("Authorization", fmt.Sprintf("Bearer drop-%d", id))
		req.Body = bytes.NewReader(nil)
		req.ContentLength = 2 * dropperHalf // promise double what we send
		if err := req.WriteHeader(conn); err == nil {
			conn.Write(half)
		}
		conn.Close()
		time.Sleep(50 * time.Millisecond)
	}
}

// oversizedClient announces a body past the gateway's 1 GiB assembly cap
// and expects an immediate 413 with nothing read.
func oversizedClient(network *netsim.Network, id int, deadline time.Time) {
	for time.Now().Before(deadline) {
		conn, err := network.Dial(HTTPAddr)
		if err != nil {
			return
		}
		req := wire.NewRequest("PUT", HTTPAddr, fmt.Sprintf("/abuse/huge-%d.rnt", id))
		req.Header.Set("Authorization", fmt.Sprintf("Bearer huge-%d", id))
		req.Body = bytes.NewReader(nil)
		req.ContentLength = 2 << 30 // 2 GiB, over the cap
		if err := req.WriteHeader(conn); err == nil {
			conn.SetReadDeadline(deadline)
			br := bufio.NewReader(conn)
			wire.ReadResponse(br, req.Method)
		}
		conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
}
