package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"mime/multipart"
	"net"
	"net/textproto"
	"runtime"
	"time"

	"godavix/internal/bufpool"
	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/pool"
	"godavix/internal/rangev"
)

// vecpar-benchmark geometry: enough well-spread fragments that the read
// splits into many multi-range batches, which is where the parallel batch
// dispatch earns its keep.
const (
	vecParBlobSize = 8 << 20
	vecParK        = 512 // fragments per vectored read
	vecParFragLen  = 512
	vecParPerReq   = 32 // ranges per request -> 16 batches
	vecParConns    = 8  // MaxPerHost for the parallel client
	vecParPath     = "/store/vec.dat"
)

// vecParRanges spreads K fragments evenly so no two coalesce: every batch
// really costs the server one multipart response.
func vecParRanges() ([]rangev.Range, [][]byte) {
	stride := int64(vecParBlobSize / vecParK)
	ranges := make([]rangev.Range, vecParK)
	dsts := make([][]byte, vecParK)
	for i := range ranges {
		ranges[i] = rangev.Range{Off: int64(i) * stride, Len: vecParFragLen}
		dsts[i] = make([]byte, vecParFragLen)
	}
	return ranges, dsts
}

// runVecPar times `repeats` vectored reads with the given parallelism on a
// fresh testbed, after one untimed warm-up read that pays the dials and
// slow-start (the §2.2 session recycling the pool exists to amortize).
func runVecPar(prof netsim.Profile, parallelism, repeats int) (*Sample, error) {
	env, err := NewEnv(prof, httpserv.Options{})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	blob := make([]byte, vecParBlobSize)
	rand.New(rand.NewSource(21)).Read(blob)
	if err := env.Store.Put(vecParPath, blob); err != nil {
		return nil, err
	}
	client, err := env.NewHTTPClient(core.Options{
		Strategy:            core.StrategyNone,
		MaxRangesPerRequest: vecParPerReq,
		VectorParallelism:   parallelism,
		Pool:                pool.Options{MaxPerHost: vecParConns},
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	ctx := context.Background()
	ranges, dsts := vecParRanges()
	if err := client.ReadVec(ctx, HTTPAddr, vecParPath, ranges, dsts); err != nil {
		return nil, err
	}
	s := &Sample{}
	for rep := 0; rep < repeats; rep++ {
		timer := startTimer()
		if err := client.ReadVec(ctx, HTTPAddr, vecParPath, ranges, dsts); err != nil {
			return nil, err
		}
		s.AddDuration(timer())
	}
	return s, nil
}

// replayConn is a net.Conn that discards writes and serves one canned HTTP
// response over and over — the client's steady-state view of a perfectly
// recycled keep-alive session, with zero server-side allocation noise.
type replayConn struct {
	resp []byte
	pos  int
}

func (c *replayConn) Read(p []byte) (int, error) {
	if c.pos == len(c.resp) {
		c.pos = 0
	}
	n := copy(p, c.resp[c.pos:])
	c.pos += n
	return n, nil
}

func (c *replayConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *replayConn) Close() error                     { return nil }
func (c *replayConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *replayConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *replayConn) SetDeadline(time.Time) error      { return nil }
func (c *replayConn) SetReadDeadline(time.Time) error  { return nil }
func (c *replayConn) SetWriteDeadline(time.Time) error { return nil }

// vecParResponse renders the 206 multipart/byteranges response a server
// would send for the vecpar fragment set as one canned byte blob.
func vecParResponse(blob []byte, frames []rangev.Frame) ([]byte, error) {
	var body bytes.Buffer
	w := multipart.NewWriter(&body)
	if err := w.SetBoundary("vecparbd"); err != nil {
		return nil, err
	}
	for _, f := range frames {
		h := textproto.MIMEHeader{}
		h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", f.Off, f.End()-1, len(blob)))
		pw, err := w.CreatePart(h)
		if err != nil {
			return nil, err
		}
		pw.Write(blob[f.Off:f.End()])
	}
	w.Close()
	head := fmt.Sprintf("HTTP/1.1 206 Partial Content\r\n"+
		"Content-Type: multipart/byteranges; boundary=vecparbd\r\n"+
		"Content-Length: %d\r\n\r\n", body.Len())
	return append([]byte(head), body.Bytes()...), nil
}

// vecParAllocs measures client-side allocations per vectored read against
// a canned-response replay connection (no in-process server to muddy the
// counter). streaming=true is the PR-2 path (streaming scatter + pooled
// buffers); streaming=false reproduces the seed behaviour (each part
// materialized in a fresh buffer, then scattered).
func vecParAllocs(streaming bool, repeats int) (float64, error) {
	if !streaming {
		bufpool.SetEnabled(false)
		defer bufpool.SetEnabled(true)
	}
	blob := make([]byte, vecParBlobSize)
	rand.New(rand.NewSource(21)).Read(blob)
	ranges, dsts := vecParRanges()
	resp, err := vecParResponse(blob, rangev.Coalesce(ranges, 0))
	if err != nil {
		return 0, err
	}
	client, err := core.NewClient(core.Options{
		Dialer: pool.DialerFunc(func(ctx context.Context, addr string) (net.Conn, error) {
			return &replayConn{resp: resp}, nil
		}),
		Strategy:            core.StrategyNone,
		MaxRangesPerRequest: vecParK, // one batch: a stable request per read
		LegacyVecScatter:    !streaming,
	})
	if err != nil {
		return 0, err
	}
	defer client.Close()

	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm the conn, the pools, and the caches
		if err := client.ReadVec(ctx, "replay:80", vecParPath, ranges, dsts); err != nil {
			return 0, err
		}
	}
	if repeats <= 0 {
		repeats = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < repeats; i++ {
		if err := client.ReadVec(ctx, "replay:80", vecParPath, ranges, dsts); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(repeats), nil
}

// VecPar measures the PR-2 parallel vectored-read pipeline: serial versus
// concurrent multi-range batches on the LAN and WAN profiles, plus the
// pooled-versus-unpooled buffer ablation. Not in the paper — the paper's
// davix ships batches serially; this quantifies what the §2.2 dynamic pool
// buys when the §2.3 vectored read is allowed to use all of it at once.
func VecPar(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title: "Parallel vectored reads: serial vs concurrent batches, streaming vs seed scatter",
		Columns: []string{"link", "serial", fmt.Sprintf("parallel(%d conns)", vecParConns),
			"speedup", "allocs/op streaming", "allocs/op seed"},
		Notes: []string{
			fmt.Sprintf("%d fragments x %d B, %d ranges/request -> %d batches, blob %d MiB",
				vecParK, vecParFragLen, vecParPerReq, (vecParK+vecParPerReq-1)/vecParPerReq, vecParBlobSize>>20),
			"warm connections (one untimed read first); allocs measured client-side on a canned-response replay conn",
		},
	}

	pooledAllocs, err := vecParAllocs(true, opts.Repeats*2)
	if err != nil {
		return nil, err
	}
	unpooledAllocs, err := vecParAllocs(false, opts.Repeats*2)
	if err != nil {
		return nil, err
	}

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.WAN()} {
		serial, err := runVecPar(prof, 1, opts.Repeats)
		if err != nil {
			return nil, err
		}
		parallel, err := runVecPar(prof, 0, opts.Repeats)
		if err != nil {
			return nil, err
		}
		table.AddRow(
			prof.Name,
			formatDur(serial),
			formatDur(parallel),
			fmt.Sprintf("%.2fx", serial.Mean()/parallel.Mean()),
			fmt.Sprintf("%.0f", pooledAllocs),
			fmt.Sprintf("%.0f", unpooledAllocs),
		)
	}
	return table, nil
}

// formatDur picks ms formatting for sub-second samples.
func formatDur(s *Sample) string {
	if s.Mean() < time.Second.Seconds() {
		return Millis(s)
	}
	return Seconds(s)
}
