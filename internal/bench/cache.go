package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"godavix/internal/blockcache"
	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
)

// Cache-benchmark geometry: a file of cacheFileSize bytes read in
// cacheChunk pieces (one cache block per piece).
const (
	cacheFileSize = 2 << 20
	cacheChunk    = 64 << 10
	cachePath     = "/store/cache.dat"
)

// cachedOpts is the client configuration under test: block cache sized for
// the whole file, read-ahead deep enough to keep a WAN pipe busy, and a
// stat TTL absorbing the Open-time HEAD on reopen.
func cachedOpts() core.Options {
	return core.Options{
		Strategy:  core.StrategyNone,
		CacheSize: 8 << 20,
		BlockSize: cacheChunk,
		ReadAhead: 8,
		StatTTL:   time.Minute,
	}
}

// uncachedOpts is the baseline: today's direct-to-network read path.
func uncachedOpts() core.Options {
	return core.Options{Strategy: core.StrategyNone}
}

// cacheDataset builds the deterministic file image served in every run.
func cacheDataset(size int) []byte {
	data := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(data)
	return data
}

// cacheRepeatedRead reads the same `hot` leading chunks of the file over
// and over (`passes` full passes) — the block-reuse pattern of a shared
// analysis working set.
func cacheRepeatedRead(ctx context.Context, f *core.File, hot, passes int) error {
	buf := make([]byte, cacheChunk)
	for p := 0; p < passes; p++ {
		for i := 0; i < hot; i++ {
			if _, err := f.ReadAt(buf, int64(i)*cacheChunk); err != nil {
				return err
			}
		}
	}
	return nil
}

// cacheSequentialScan reads the whole file front to back in chunk steps —
// the pattern the read-ahead prefetcher is built for.
func cacheSequentialScan(ctx context.Context, f *core.File) error {
	buf := make([]byte, cacheChunk)
	size := f.Size()
	for off := int64(0); off < size; off += cacheChunk {
		if _, err := f.ReadAt(buf, off); err != nil {
			return err
		}
	}
	return nil
}

// runCacheWorkload times one cold-client execution of workload on a fresh
// WAN testbed, returning the wall-clock of the read loop (Open excluded),
// the client cache counters, and how many GETs reached the server.
func runCacheWorkload(copts core.Options, workload func(context.Context, *core.File) error) (time.Duration, blockcache.Stats, int64, error) {
	env, err := NewEnv(netsim.WAN(), httpserv.Options{})
	if err != nil {
		return 0, blockcache.Stats{}, 0, err
	}
	defer env.Close()
	if err := env.Store.Put(cachePath, cacheDataset(cacheFileSize)); err != nil {
		return 0, blockcache.Stats{}, 0, err
	}
	client, err := env.NewHTTPClient(copts)
	if err != nil {
		return 0, blockcache.Stats{}, 0, err
	}
	defer client.Close()

	ctx := context.Background()
	f, err := env.OpenHTTP(ctx, client, cachePath)
	if err != nil {
		return 0, blockcache.Stats{}, 0, err
	}
	gets0 := env.HTTPServer.RequestsByMethod("GET")
	timer := startTimer()
	if err := workload(ctx, f); err != nil {
		return 0, blockcache.Stats{}, 0, err
	}
	elapsed := timer()
	// Let in-flight read-ahead prefetches land before snapshotting: the
	// server counts a GET on arrival, while the client's Prefetched counter
	// only increments on completion, so an immediate snapshot can catch the
	// two mid-flight and disagree.
	gets := env.HTTPServer.RequestsByMethod("GET") - gets0
	for i := 0; i < 40; i++ {
		time.Sleep(25 * time.Millisecond)
		now := env.HTTPServer.RequestsByMethod("GET") - gets0
		if now == gets && i > 0 {
			break
		}
		gets = now
	}
	return elapsed, client.CacheStats(), gets, nil
}

// CacheBench measures the client-side block cache + read-ahead subsystem
// (internal/blockcache) on the WAN profile: a repeated-read working set and
// a sequential whole-file scan, cached versus uncached. This experiment is
// not in the paper — it quantifies the §2.2–§2.3 round-trip-hiding idea
// extended to a client page cache.
func CacheBench(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title:   "Block cache: repeated-read and sequential-scan on WAN, cached vs uncached",
		Columns: []string{"workload", "uncached", "cached", "speedup", "hit rate", "GETs uncached", "GETs cached"},
		Notes: []string{
			fmt.Sprintf("file %d KiB, block %d KiB, read-ahead 8, WAN profile (%v RTT)",
				cacheFileSize>>10, cacheChunk>>10, netsim.WAN().RTT),
			"cached clients start cold each repeat; hits accrue within one run",
		},
	}

	workloads := []struct {
		name string
		run  func(context.Context, *core.File) error
	}{
		{"repeated-read (8 hot blocks x 8 passes)", func(ctx context.Context, f *core.File) error {
			return cacheRepeatedRead(ctx, f, 8, 8)
		}},
		{"sequential-scan (full file)", cacheSequentialScan},
	}

	for _, w := range workloads {
		base := &Sample{}
		cached := &Sample{}
		var baseGets, cachedGets int64
		var stats blockcache.Stats
		for rep := 0; rep < opts.Repeats; rep++ {
			d, _, g, err := runCacheWorkload(uncachedOpts(), w.run)
			if err != nil {
				return nil, err
			}
			base.AddDuration(d)
			baseGets = g

			d, st, g, err := runCacheWorkload(cachedOpts(), w.run)
			if err != nil {
				return nil, err
			}
			cached.AddDuration(d)
			cachedGets = g
			stats = st
		}
		hitRate := 0.0
		if total := stats.Hits + stats.Misses; total > 0 {
			hitRate = float64(stats.Hits) / float64(total)
		}
		table.AddRow(
			w.name,
			Seconds(base),
			Seconds(cached),
			fmt.Sprintf("%.2fx", base.Mean()/cached.Mean()),
			fmt.Sprintf("%.0f%%", hitRate*100),
			fmt.Sprint(baseGets),
			fmt.Sprint(cachedGets),
		)
	}
	return table, nil
}
