package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/pool"
	"godavix/internal/storage"
	"godavix/internal/xrootd"
)

// WindowAblation sweeps the TreeCache window size for the WAN analysis
// job: smaller windows mean more vectored fills, each paying one round
// trip on the synchronous davix path (DESIGN.md §5).
func WindowAblation(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title:   "Ablation: TreeCache window size (WAN, davix/HTTP sync)",
		Columns: []string{"window (events)", "fills", "time"},
		Notes:   []string{"smaller windows = more round trips for the synchronous HTTP path"},
	}
	env, err := NewEnv(netsim.WAN(), httpserv.Options{})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if _, err := env.InstallDataset(DatasetPath, opts.Spec); err != nil {
		return nil, err
	}
	for _, window := range []uint64{750, 1500, 3000, 6000} {
		s := &Sample{}
		var fills int64
		o := opts
		o.Window = window
		for rep := 0; rep < opts.Repeats; rep++ {
			res, err := runHTTPAnalysis(env, o, 1.0)
			if err != nil {
				return nil, err
			}
			s.AddDuration(res.Duration)
			fills = res.Fills
		}
		table.AddRow(fmt.Sprint(window), fmt.Sprint(fills), Seconds(s))
	}
	return table, nil
}

// PoolSizeAblation measures the paper's "pool size proportional to the
// level of concurrency" choice: N concurrent GETs through pools capped at
// 1, 4 and unlimited connections (DESIGN.md §5).
func PoolSizeAblation(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const (
		concurrency = 16
		requests    = 64
		objSize     = 32 << 10
	)
	table := &Table{
		Title:   "Ablation: pool size vs concurrency (16 workers, 64 GETs, PAN)",
		Columns: []string{"MaxPerHost", "time", "dials"},
		Notes:   []string{"cap 0 = grow with concurrency (the paper's design)"},
	}
	for _, cap := range []int{1, 4, 0} {
		env, err := NewEnv(netsim.PAN(), httpserv.Options{})
		if err != nil {
			return nil, err
		}
		env.Store.Put("/obj", make([]byte, objSize))
		client, err := env.NewHTTPClient(core.Options{
			Strategy: core.StrategyNone,
			Pool:     pool.Options{MaxPerHost: cap},
		})
		if err != nil {
			env.Close()
			return nil, err
		}
		ctx := context.Background()

		s := &Sample{}
		for rep := 0; rep < opts.Repeats; rep++ {
			timer := startTimer()
			var wg sync.WaitGroup
			errs := make(chan error, concurrency)
			work := make(chan int, requests)
			for i := 0; i < requests; i++ {
				work <- i
			}
			close(work)
			for w := 0; w < concurrency; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						if _, err := client.Get(ctx, HTTPAddr, "/obj"); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			select {
			case err := <-errs:
				client.Close()
				env.Close()
				return nil, err
			default:
			}
			s.AddDuration(timer())
		}
		capLabel := fmt.Sprint(cap)
		if cap == 0 {
			capLabel = "unlimited"
		}
		table.AddRow(capLabel, Seconds(s), fmt.Sprint(env.Net.Dials()))
		client.Close()
		env.Close()
	}
	return table, nil
}

// PrefetchAblation runs the WAN analysis over xrootd with and without the
// asynchronous sliding-window prefetch, isolating the mechanism the paper
// credits for XRootD's WAN advantage (DESIGN.md §5).
func PrefetchAblation(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	// Use a small window so the job has many fills: prefetch hides one
	// round trip + transfer per fill, which is invisible with 1-2 fills.
	opts.Window = eightFillWindow(opts.Spec)
	table := &Table{
		Title:   "Ablation: xrootd sliding-window prefetch on/off (WAN)",
		Columns: []string{"prefetch", "fills", "time"},
		Notes:   []string{"without prefetch the xrootd path serializes exactly like sync HTTP"},
	}
	env, err := NewEnv(netsim.WAN(), httpserv.Options{})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	if _, err := env.InstallDataset(DatasetPath, opts.Spec); err != nil {
		return nil, err
	}
	ctx := context.Background()

	for _, prefetch := range []bool{true, false} {
		s := &Sample{}
		var fills int64
		for rep := 0; rep < opts.Repeats; rep++ {
			client := env.NewXrdClient()
			f, err := env.OpenXrd(ctx, client, DatasetPath)
			if err != nil {
				client.Close()
				return nil, err
			}
			src := XrdSource(ctx, f)
			if !prefetch {
				src.ReadVecAsync = nil // demand paging only
			}
			res, err := RunAnalysis(src, 1.0, opts.Window, nil)
			client.Close()
			if err != nil {
				return nil, err
			}
			s.AddDuration(res.Duration)
			fills = res.Fills
		}
		table.AddRow(fmt.Sprint(prefetch), fmt.Sprint(fills), Seconds(s))
	}
	return table, nil
}

// FederationCompare contrasts the two resilience designs of §2.4: the
// XRootD hierarchical federation (manager redirects the client to a live
// replica) versus davix's Metalink failover, measuring read latency with
// a healthy primary and after killing it.
func FederationCompare(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const blobSize = 128 << 10
	table := &Table{
		Title:   "§2.4: xrootd federation vs davix Metalink failover (PAN)",
		Columns: []string{"mechanism", "healthy read", "read after primary death"},
	}
	blob := make([]byte, blobSize)

	// --- xrootd federation ---
	{
		n := netsim.New(netsim.PAN())
		servers := []string{"ds1:1094", "ds2:1094"}
		for _, addr := range servers {
			st := storage.NewMemStore()
			st.Put("/f", blob)
			srv := xrootd.NewServer(st)
			l, err := n.Listen(addr)
			if err != nil {
				return nil, err
			}
			defer l.Close()
			go srv.Serve(l)
		}
		mgr := xrootd.NewManager(n, servers, 10*time.Millisecond)
		ml, err := n.Listen("mgr:1094")
		if err != nil {
			return nil, err
		}
		defer ml.Close()
		go mgr.Serve(ml)

		cl := xrootd.NewCluster(n, "mgr:1094")
		defer cl.Close()
		ctx := context.Background()
		f, err := cl.Open(ctx, "/f")
		if err != nil {
			return nil, err
		}

		healthy := &Sample{}
		buf := make([]byte, 4096)
		for rep := 0; rep < opts.Repeats; rep++ {
			timer := startTimer()
			if _, err := f.ReadAt(ctx, buf, int64(rep)*4096); err != nil {
				return nil, err
			}
			healthy.AddDuration(timer())
		}
		n.SetDown("ds1:1094", true)
		time.Sleep(15 * time.Millisecond)
		timer := startTimer()
		if _, err := f.ReadAt(ctx, buf, 0); err != nil {
			return nil, fmt.Errorf("xrootd federation failover: %w", err)
		}
		table.AddRow("xrootd federation", Millis(healthy), fmt.Sprintf("%.1fms", timer().Seconds()*1000))
	}

	// --- davix metalink ---
	{
		env, err := newFedEnv(netsim.PAN(), 2, blob, "/f")
		if err != nil {
			return nil, err
		}
		defer env.Close()
		client, err := core.NewClient(core.Options{
			Dialer:       env.net,
			Strategy:     core.StrategyFailover,
			MetalinkHost: FedAddr,
		})
		if err != nil {
			return nil, err
		}
		defer client.Close()
		ctx := context.Background()
		f, err := client.Open(ctx, env.replicas[0], "/f")
		if err != nil {
			return nil, err
		}

		healthy := &Sample{}
		buf := make([]byte, 4096)
		for rep := 0; rep < opts.Repeats; rep++ {
			timer := startTimer()
			if _, err := f.ReadAt(buf, int64(rep)*4096); err != nil {
				return nil, err
			}
			healthy.AddDuration(timer())
		}
		env.net.SetDown(env.replicas[0], true)
		time.Sleep(15 * time.Millisecond)
		timer := startTimer()
		if _, err := f.ReadAt(buf, 0); err != nil {
			return nil, fmt.Errorf("metalink failover: %w", err)
		}
		table.AddRow("davix metalink", Millis(healthy), fmt.Sprintf("%.1fms", timer().Seconds()*1000))
	}
	return table, nil
}
