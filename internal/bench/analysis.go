package bench

import (
	"fmt"
	"time"

	"godavix/internal/rootio"
)

// AnalysisResult summarizes one run of the ROOT-style analysis job.
type AnalysisResult struct {
	// Duration is the wall-clock execution time (the paper's Figure 4
	// metric).
	Duration time.Duration
	// Events is how many events were processed.
	Events uint64
	// Fills is how many vectored window fetches the TreeCache issued.
	Fills int64
	// Sum is the analysis "physics result" (payload byte sum), kept so the
	// compiler cannot elide the per-event work.
	Sum uint64
}

// eventComputeSteps is the fixed per-event reconstruction work (FNV
// steps). See the calibration note inside RunAnalysis.
const eventComputeSteps = 80000

// spinFold is the per-event physics kernel: fold every payload byte once,
// then a fixed FNV reconstruction spin of the given step count. Shared by
// RunAnalysis (compute-bound calibration) and the learned-prefetch
// analysis experiment (transfer-bound calibration).
func spinFold(payloads [][]byte, steps int) uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	for _, p := range payloads {
		for _, b := range p {
			h = (h ^ uint64(b)) * 1099511628211
		}
	}
	for i := 0; i < steps; i++ {
		h = (h ^ uint64(i)) * 1099511628211
	}
	return h
}

// RunAnalysis executes the paper's §3 workload against a data source: open
// the event file, then iterate a fraction of the events through a
// TreeCache, doing a fixed amount of per-event computation (payload
// checksum), exactly like a ROOT selection loop. fraction 1.0 reads 100%
// of the events, 0.1 the first 10%, matching "a fraction or the totality
// of around 12000 particle events".
func RunAnalysis(src rootio.Source, fraction float64, window uint64, branches []int) (AnalysisResult, error) {
	start := time.Now()
	r, err := rootio.OpenReader(src)
	if err != nil {
		return AnalysisResult{}, err
	}
	total := r.Events()
	limit := uint64(float64(total) * fraction)
	if limit > total {
		limit = total
	}
	tc := rootio.NewTreeCache(r, window, branches)
	defer tc.Close()

	var sum uint64
	for ev := uint64(0); ev < limit; ev++ {
		payloads, err := tc.Event(ev)
		if err != nil {
			return AnalysisResult{}, fmt.Errorf("bench: event %d: %w", ev, err)
		}
		// Per-event physics: fold every payload byte once (data integrity
		// couples the result to the transport), then a fixed reconstruction
		// spin. The spin is calibrated so computation dominates wire time
		// the way a real ROOT selection does — the paper's LAN runs are
		// compute-bound (~97 s jobs against ~6 s of transfer), which is
		// why HTTP and XRootD tie on low-latency links.
		sum += spinFold(payloads, eventComputeSteps)
	}
	return AnalysisResult{
		Duration: time.Since(start),
		Events:   limit,
		Fills:    tc.Fills(),
		Sum:      sum,
	}, nil
}
