package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/netsim"
	"godavix/internal/rangev"
	"godavix/internal/storage"
)

// resil-benchmark geometry: enough chunks that the per-chunk cost of a
// sick replica dominates once, and a vector-read shape matching the vecpar
// healthy-path baseline.
const (
	resilSize  = 2 << 20   // 2 MiB object
	resilChunk = 128 << 10 // 128 KiB chunks -> 16 chunks
	resilPath  = "/store/resil.dat"
	// resilDelay is the sick replica's per-request latency: the timeout a
	// dead-but-dialable disk node costs every chunk that still asks it.
	resilDelay = 5 * time.Millisecond
)

// resilReplicas are the three storage nodes of the failover testbed.
var resilReplicas = []string{"dpm1:80", "dpm2:80", "dpm3:80"}

// resilTestbed builds three replicas of one object plus a federation
// endpoint on a fresh fabric. close tears everything down.
func resilTestbed(prof netsim.Profile, blob []byte) (n *netsim.Network, srvs map[string]*httpserv.Server, close func(), err error) {
	n = netsim.New(prof)
	srvs = map[string]*httpserv.Server{}
	var closers []func()
	close = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	listen := func(addr string, srv *httpserv.Server) error {
		l, lerr := n.Listen(addr)
		if lerr != nil {
			return lerr
		}
		closers = append(closers, func() { l.Close() })
		go srv.Serve(l)
		return nil
	}
	for _, addr := range resilReplicas {
		st := storage.NewMemStore()
		if err = st.Put(resilPath, blob); err != nil {
			close()
			return nil, nil, nil, err
		}
		srv := httpserv.New(st, httpserv.Options{})
		srvs[addr] = srv
		if err = listen(addr, srv); err != nil {
			close()
			return nil, nil, nil, err
		}
	}
	fed := httpserv.New(storage.NewMemStore(), httpserv.Options{
		Metalinks: func(p string) *metalink.Metalink {
			ml := &metalink.Metalink{Name: "resil", Size: int64(len(blob))}
			for i, r := range resilReplicas {
				ml.URLs = append(ml.URLs, metalink.URL{Loc: "http://" + r + p, Priority: i + 1})
			}
			return ml
		},
	})
	if err = listen(FedAddr, fed); err != nil {
		close()
		return nil, nil, nil, err
	}
	return n, srvs, close, nil
}

// resilClientOpts returns the client configuration with the resilience
// features on (retry budget + health scoreboard) or stripped back to the
// seed semantics (no retries, no scoreboard).
func resilClientOpts(n *netsim.Network, resilient bool) core.Options {
	opts := core.Options{
		Dialer:       n,
		MetalinkHost: FedAddr,
		ChunkSize:    resilChunk,
		MaxStreams:   4,
	}
	if resilient {
		opts.RetryPolicy = core.RetryPolicy{Attempts: 3}
		// Long cooldown: the demoted node stays demoted for the whole run.
		opts.HealthProbeAfter = 30 * time.Second
	} else {
		opts.RetryPolicy = core.RetryPolicy{Attempts: 1}
		opts.HealthThreshold = -1
	}
	return opts
}

// runDeadPrimary times repeated multi-stream downloads while the primary
// replica is sick (every request answered 503 after resilDelay). With the
// scoreboard the primary is demoted after a handful of failures and later
// chunks skip it outright; without it every chunk whose ring starts at the
// primary pays the delay, every download, forever.
func runDeadPrimary(withHealth bool, repeats int) (*Sample, core.Metrics, error) {
	blob := make([]byte, resilSize)
	rand.New(rand.NewSource(61)).Read(blob)
	n, srvs, closeBed, err := resilTestbed(netsim.LAN(), blob)
	if err != nil {
		return nil, core.Metrics{}, err
	}
	defer closeBed()
	srvs["dpm1:80"].SetFault(resilPath, httpserv.Fault{Status: 503, Delay: resilDelay})

	// Toggle only the scoreboard (no retry budget on either side) so the
	// row isolates what the breaker itself buys.
	opts := resilClientOpts(n, withHealth)
	opts.RetryPolicy = core.RetryPolicy{Attempts: 1}
	client, err := core.NewClient(opts)
	if err != nil {
		return nil, core.Metrics{}, err
	}
	defer client.Close()

	ctx := context.Background()
	download := func() error {
		got, err := client.DownloadMultiStream(ctx, "dpm1:80", resilPath)
		if err != nil {
			return err
		}
		if len(got) != len(blob) {
			return fmt.Errorf("bench: resil download: %d bytes, want %d", len(got), len(blob))
		}
		return nil
	}
	// One untimed warm-up pays the dials (and, with the scoreboard on,
	// trips the breaker — the steady state being measured).
	if err := download(); err != nil {
		return nil, core.Metrics{}, err
	}
	s := &Sample{}
	for rep := 0; rep < repeats; rep++ {
		timer := startTimer()
		if err := download(); err != nil {
			return nil, core.Metrics{}, err
		}
		s.AddDuration(timer())
	}
	return s, client.Metrics(), nil
}

// runHealthyPath times the two PR 2-4 baseline workloads — a parallel
// vectored read and a multi-stream download — on an all-healthy testbed,
// with the resilience features on versus stripped. The delta is the pure
// bookkeeping cost of the engine layers when nothing fails.
func runHealthyPath(resilient bool, repeats int) (vec, ms *Sample, err error) {
	blob := make([]byte, resilSize)
	rand.New(rand.NewSource(62)).Read(blob)
	n, _, closeBed, err := resilTestbed(netsim.LAN(), blob)
	if err != nil {
		return nil, nil, err
	}
	defer closeBed()
	client, err := core.NewClient(resilClientOpts(n, resilient))
	if err != nil {
		return nil, nil, err
	}
	defer client.Close()
	ctx := context.Background()

	const k = 64
	rng := rand.New(rand.NewSource(63))
	ranges := make([]rangev.Range, k)
	dsts := make([][]byte, k)
	for i := range ranges {
		ranges[i] = rangev.Range{Off: rng.Int63n(resilSize - 512), Len: 512}
		dsts[i] = make([]byte, 512)
	}
	readVec := func() error { return client.ReadVec(ctx, "dpm1:80", resilPath, ranges, dsts) }
	download := func() error {
		_, err := client.DownloadMultiStream(ctx, "dpm1:80", resilPath)
		return err
	}
	if err := readVec(); err != nil {
		return nil, nil, err
	}
	if err := download(); err != nil {
		return nil, nil, err
	}
	// Each sample amortizes several operations: the per-op engine cost is
	// microseconds, and single-op timings on a parallel workload are
	// dominated by goroutine scheduling noise.
	const perSample = 3
	vec, ms = &Sample{}, &Sample{}
	for rep := 0; rep < repeats*2; rep++ {
		timer := startTimer()
		for i := 0; i < perSample; i++ {
			if err := readVec(); err != nil {
				return nil, nil, err
			}
		}
		vec.Add(timer().Seconds() / perSample)
		timer = startTimer()
		for i := 0; i < perSample; i++ {
			if err := download(); err != nil {
				return nil, nil, err
			}
		}
		ms.Add(timer().Seconds() / perSample)
	}
	return vec, ms, nil
}

// Resil measures the PR-5 resilience engine: what the per-host health
// scoreboard saves when a replica goes dark mid-fleet (dead-primary
// recovery wall-clock, breaker on vs off) and what the engine layers cost
// on the healthy path versus the stripped seed semantics (target: <= 5%
// on the PR 2-4 vecpar/xfer-style workloads).
func Resil(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title:   "Resilience engine: dead-primary recovery and healthy-path overhead",
		Columns: []string{"scenario", "engine off", "engine on", "on vs off"},
	}

	offDead, _, err := runDeadPrimary(false, opts.Repeats)
	if err != nil {
		return nil, err
	}
	onDead, m, err := runDeadPrimary(true, opts.Repeats)
	if err != nil {
		return nil, err
	}
	table.AddRow("dead-primary recovery (LAN, 16 chunks)",
		formatDur(offDead), formatDur(onDead),
		fmt.Sprintf("%.2fx faster", offDead.Mean()/onDead.Mean()))

	offVec, offMS, err := runHealthyPath(false, opts.Repeats)
	if err != nil {
		return nil, err
	}
	onVec, onMS, err := runHealthyPath(true, opts.Repeats)
	if err != nil {
		return nil, err
	}
	table.AddRow("healthy vectored read (64 ranges)",
		formatDur(offVec), formatDur(onVec), Pct(offVec.Mean(), onVec.Mean()))
	table.AddRow("healthy multi-stream download",
		formatDur(offMS), formatDur(onMS), Pct(offMS.Mean(), onMS.Mean()))

	table.Notes = []string{
		fmt.Sprintf("sick primary answers 503 after %v; scoreboard demotes it after %d consecutive failures, later chunks skip it",
			resilDelay, 3),
		fmt.Sprintf("engine-on client metrics for the dead-primary run: requests=%d retries=%d failovers=%d breaker_trips=%d bytes_down=%d",
			m.Requests, m.Retries, m.Failovers, m.BreakerTrips, m.BytesDown),
		"healthy-path rows measure pure engine bookkeeping (retry budget armed, scoreboard on, nothing failing); target <= +5%",
	}
	return table, nil
}
