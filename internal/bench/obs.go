package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/netsim"
	"godavix/internal/obs"
)

// obs-benchmark geometry: the resil healthy-path shape (2 MiB in 128 KiB
// chunks, 16 chunk events per direction per transfer) so the trace-hook
// overhead rows are comparable with the engine-overhead rows.
const (
	obsSize   = 2 << 20
	obsChunk  = 128 << 10
	obsPath   = "/store/obs.dat"
	obsUpPath = "/store/obs-up.dat"
)

// countingTrace subscribes to every hook with an atomic increment — the
// cheapest real consumer, so the delta against a nil trace measures the
// plumbing (closure call + arguments), not a consumer's work. Chunk bytes
// are accumulated per direction to cross-check the engine's event stream
// against the known object size.
type countingTrace struct {
	events             atomic.Int64
	chunksUp           atomic.Int64
	chunksDown         atomic.Int64
	bytesUp, bytesDown atomic.Int64
}

func (ct *countingTrace) trace() *obs.ClientTrace {
	n := func() { ct.events.Add(1) }
	return &obs.ClientTrace{
		OpStart:      func(string, string, string) { n() },
		OpDone:       func(string, string, string, time.Duration, error) { n() },
		Request:      func(string, string, string) { n() },
		ConnAcquired: func(string, bool) { n() },
		Redirect:     func(string, string, string) { n() },
		Retry:        func(string, string, int, error) { n() },
		Failover:     func(string, string, error) { n() },
		BreakerTrip:  func(string) { n() },
		CacheHit:     func(string, int64) { n() },
		CacheMiss:    func(string, int64) { n() },
		ChunkStart:   func(obs.Direction, string, int, int64, int64) { n() },
		ChunkDone: func(dir obs.Direction, _ string, _ int, _, length int64, err error) {
			n()
			if err != nil {
				return
			}
			if dir == obs.Up {
				ct.chunksUp.Add(1)
				ct.bytesUp.Add(length)
			} else {
				ct.chunksDown.Add(1)
				ct.bytesDown.Add(length)
			}
		},
	}
}

// runObs times multi-stream downloads and uploads with the trace hooks nil
// or fully subscribed, returning the samples, the trace counters, and how
// many transfers ran in each direction (warm-up included — every traced
// transfer emits events).
func runObs(traced bool, repeats int) (dl, ul *Sample, ct *countingTrace, transfers int, err error) {
	blob := make([]byte, obsSize)
	rand.New(rand.NewSource(71)).Read(blob)
	// A single-replica Metalink satisfies DownloadMultiStream's replica
	// discovery without a separate federation node.
	env, err := NewEnv(netsim.LAN(), httpserv.Options{
		Metalinks: func(p string) *metalink.Metalink {
			if p != obsPath {
				return nil
			}
			return &metalink.Metalink{Name: "obs", Size: obsSize,
				URLs: []metalink.URL{{Loc: "http://" + HTTPAddr + p, Priority: 1}}}
		},
	})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	defer env.Close()
	if err = env.Store.Put(obsPath, blob); err != nil {
		return nil, nil, nil, 0, err
	}

	opts := core.Options{
		ChunkSize:         obsChunk,
		MaxStreams:        4,
		UploadParallelism: 4,
	}
	ct = &countingTrace{}
	if traced {
		opts.Trace = ct.trace()
	}
	client, err := env.NewHTTPClient(opts)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	defer client.Close()

	ctx := context.Background()
	src := bytes.NewReader(blob)
	download := func() error {
		got, derr := client.DownloadMultiStream(ctx, HTTPAddr, obsPath)
		if derr != nil {
			return derr
		}
		if len(got) != obsSize {
			return fmt.Errorf("bench: obs download: %d bytes, want %d", len(got), obsSize)
		}
		return nil
	}
	upload := func() error {
		return client.UploadMultiStream(ctx, HTTPAddr, obsUpPath, src, obsSize)
	}

	// Warm-up pays the dials; it emits events like every other transfer,
	// so it counts toward the byte cross-check.
	if err = download(); err != nil {
		return nil, nil, nil, 0, err
	}
	if err = upload(); err != nil {
		return nil, nil, nil, 0, err
	}
	transfers = 1

	// Amortize several transfers per sample, like the resil healthy-path
	// rows: per-event cost is nanoseconds and single-transfer timings on a
	// parallel workload drown in scheduling noise.
	const perSample = 3
	dl, ul = &Sample{}, &Sample{}
	for rep := 0; rep < repeats*2; rep++ {
		timer := startTimer()
		for i := 0; i < perSample; i++ {
			if err = download(); err != nil {
				return nil, nil, nil, 0, err
			}
		}
		dl.Add(timer().Seconds() / perSample)
		timer = startTimer()
		for i := 0; i < perSample; i++ {
			if err = upload(); err != nil {
				return nil, nil, nil, 0, err
			}
		}
		ul.Add(timer().Seconds() / perSample)
		transfers += perSample
	}
	return dl, ul, ct, transfers, nil
}

// Obs measures the observability plane: what a fully subscribed ClientTrace
// (every hook incrementing an atomic) costs on multi-stream transfers
// versus nil hooks (target: within noise, <= 2%), and cross-checks the
// chunk event stream — the bytes reported by ChunkDone must sum exactly to
// transfers x object size in each direction.
func Obs(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title:   "Observability plane: trace-hook overhead and chunk-event accounting",
		Columns: []string{"scenario", "hooks nil", "hooks subscribed", "subscribed vs nil"},
	}

	dlOff, ulOff, _, _, err := runObs(false, opts.Repeats)
	if err != nil {
		return nil, err
	}
	dlOn, ulOn, ct, transfers, err := runObs(true, opts.Repeats)
	if err != nil {
		return nil, err
	}

	// The event stream must reconstruct the transfers exactly: a missing or
	// duplicated chunk event is a correctness bug, not a tuning matter.
	want := int64(transfers) * obsSize
	if got := ct.bytesUp.Load(); got != want {
		return nil, fmt.Errorf("bench: obs: upload ChunkDone bytes sum to %d, want %d", got, want)
	}
	if got := ct.bytesDown.Load(); got != want {
		return nil, fmt.Errorf("bench: obs: download ChunkDone bytes sum to %d, want %d", got, want)
	}

	table.AddRow("multi-stream download (2 MiB, LAN)",
		formatDur(dlOff), formatDur(dlOn), Pct(dlOff.Mean(), dlOn.Mean()))
	table.AddRow("multi-stream upload (2 MiB, LAN)",
		formatDur(ulOff), formatDur(ulOn), Pct(ulOff.Mean(), ulOn.Mean()))
	table.Notes = []string{
		fmt.Sprintf("subscribed run emitted %d events over %d transfers per direction (%d down / %d up chunk completions)",
			ct.events.Load(), transfers, ct.chunksDown.Load(), ct.chunksUp.Load()),
		fmt.Sprintf("ChunkDone byte totals reconcile exactly: %d bytes per direction = %d transfers x %d MiB",
			want, transfers, obsSize>>20),
		"every hook subscribed with an atomic increment; nil hooks cost one pointer check per event site",
	}
	return table, nil
}
