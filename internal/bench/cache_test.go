package bench

import (
	"context"
	"testing"

	"godavix/internal/core"
)

// TestCacheBenchSpeedup pins the ISSUE-1 acceptance bar: on the WAN
// profile the block cache + read-ahead must cut wall-clock by at least 2x
// on both the repeated-read and the sequential-scan workload.
func TestCacheBenchSpeedup(t *testing.T) {
	workloads := []struct {
		name string
		run  func(context.Context, *core.File) error
	}{
		{"repeated-read", func(ctx context.Context, f *core.File) error {
			return cacheRepeatedRead(ctx, f, 4, 6)
		}},
		{"sequential-scan", cacheSequentialScan},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			base, _, baseGets, err := runCacheWorkload(uncachedOpts(), w.run)
			if err != nil {
				t.Fatal(err)
			}
			cached, stats, cachedGets, err := runCacheWorkload(cachedOpts(), w.run)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("uncached %v (%d GETs) cached %v (%d GETs) stats %+v",
				base, baseGets, cached, cachedGets, stats)
			if cached*2 > base {
				t.Fatalf("cached %v not 2x faster than uncached %v", cached, base)
			}
			if stats.Hits == 0 {
				t.Fatalf("no cache hits recorded: %+v", stats)
			}
			// Counter consistency: every block either hit, missed, joined a
			// flight, or was prefetched; the server saw one GET per
			// miss+prefetch at most (joins and hits are free).
			if got := stats.Misses + stats.Prefetched; cachedGets > got {
				t.Fatalf("server GETs %d > misses+prefetched %d", cachedGets, got)
			}
		})
	}
}

// TestCacheBenchReadAheadEngages verifies the sequential-scan run actually
// exercises the prefetcher rather than winning on LRU reuse.
func TestCacheBenchReadAheadEngages(t *testing.T) {
	_, stats, _, err := runCacheWorkload(cachedOpts(), cacheSequentialScan)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Prefetched == 0 {
		t.Fatalf("sequential scan never prefetched: %+v", stats)
	}
	if stats.Hits+stats.SingleFlightJoins == 0 {
		t.Fatalf("scan never consumed prefetched blocks: %+v", stats)
	}
}
