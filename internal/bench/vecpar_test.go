package bench

import (
	"testing"

	"godavix/internal/netsim"
)

// TestVecParSpeedupWAN pins the ISSUE-2 acceptance bar: concurrent batch
// dispatch must cut multi-batch vectored-read wall-clock by at least 2x on
// the WAN profile versus the serial baseline.
func TestVecParSpeedupWAN(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	serial, err := runVecPar(netsim.WAN(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runVecPar(netsim.WAN(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("WAN serial %.3fs parallel %.3fs (%.2fx)",
		serial.Mean(), parallel.Mean(), serial.Mean()/parallel.Mean())
	if parallel.Min()*2 > serial.Min() {
		t.Fatalf("parallel (%.3fs) not 2x faster than serial (%.3fs)",
			parallel.Min(), serial.Min())
	}
}

// TestVecParAllocsDrop pins the other half of the bar: the streaming,
// buffer-pooled steady state must allocate at most half of what the seed's
// materialize-then-scatter path pays for the same vectored read.
func TestVecParAllocsDrop(t *testing.T) {
	streaming, err := vecParAllocs(true, 5)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := vecParAllocs(false, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("allocs/op: streaming=%.0f seed=%.0f (%.0f%% drop)",
		streaming, seed, 100*(1-streaming/seed))
	if streaming > seed/2 {
		t.Fatalf("streaming %.0f allocs/op not ≤ half of seed %.0f", streaming, seed)
	}
}

// TestVecParTableRuns exercises the experiment end to end at tiny scale.
func TestVecParTableRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	table, err := VecPar(Options{Repeats: 1, Spec: tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

// BenchmarkVecParWAN lets `go test -bench` compare serial and parallel
// batch dispatch directly; allocations are reported so a pooling
// regression fails loudly in review.
func BenchmarkVecParWAN(b *testing.B) {
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runVecPar(netsim.WAN(), mode.par, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVecParAllocs reports the streaming-vs-seed scatter ablation.
func BenchmarkVecParAllocs(b *testing.B) {
	for _, mode := range []struct {
		name      string
		streaming bool
	}{{"streaming", true}, {"seed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := vecParAllocs(mode.streaming, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
